package essat_test

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/essat/essat"
)

// ExampleRun simulates the paper's deployment under DTS-SS and checks the
// headline properties hold: single-digit duty cycle with sub-second
// query latency.
func ExampleRun() {
	sc := essat.DefaultScenario(essat.DTSSS, 1)
	sc.Duration = 30 * time.Second
	rng := rand.New(rand.NewSource(1))
	sc.Queries = essat.QueryClasses(rng, 1.0, 1, 10*time.Second)

	res, err := essat.Run(sc)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("duty cycle below 10%%: %v\n", res.DutyCycle < 0.10)
	fmt.Printf("latency below 1s: %v\n", res.Latency.Mean < time.Second)
	// Output:
	// duty cycle below 10%: true
	// latency below 1s: true
}

// ExampleQueryClasses builds the paper's three-class workload.
func ExampleQueryClasses() {
	rng := rand.New(rand.NewSource(7))
	specs := essat.QueryClasses(rng, 2.0, 1, time.Second)
	for _, s := range specs {
		fmt.Printf("Q%d: period %v\n", s.Class, s.Period)
	}
	// Output:
	// Q1: period 500ms
	// Q2: period 1s
	// Q3: period 1.5s
}

// ExampleScenario_failures injects node deaths and shows the §4.3
// recovery keeping data flowing.
func ExampleScenario_failures() {
	sc := essat.DefaultScenario(essat.DTSSS, 3)
	sc.Duration = 40 * time.Second
	sc.QueryCfg.FailureThreshold = 3
	sc.Failures = []essat.Failure{{At: 15 * time.Second, Node: -1}}
	rng := rand.New(rand.NewSource(3))
	sc.Queries = essat.QueryClasses(rng, 1.0, 1, 5*time.Second)

	res, err := essat.Run(sc)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("survivor coverage above 90%%: %v\n",
		res.Coverage/float64(res.TreeSize-1) > 0.9)
	// Output:
	// survivor coverage above 90%: true
}
