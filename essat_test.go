package essat_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/essat/essat"
)

// quickScenario returns a fast full-stack scenario on the public API.
func quickScenario(p essat.Protocol, seed int64) essat.Scenario {
	sc := essat.DefaultScenario(p, seed)
	sc.Duration = 25 * time.Second
	sc.MeasureFrom = 5 * time.Second
	rng := rand.New(rand.NewSource(seed * 17))
	sc.Queries = essat.QueryClasses(rng, 1.0, 1, 5*time.Second)
	return sc
}

func TestPublicAPIRun(t *testing.T) {
	res, err := essat.Run(quickScenario(essat.DTSSS, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeSize < 40 {
		t.Fatalf("tree size = %d, implausibly small for the default deployment", res.TreeSize)
	}
	if res.DutyCycle <= 0 || res.DutyCycle > 0.5 {
		t.Fatalf("DTS-SS duty cycle = %v, out of plausible range", res.DutyCycle)
	}
	if res.Latency.N == 0 {
		t.Fatal("no latency samples")
	}
}

func TestAllProtocolsListed(t *testing.T) {
	ps := essat.AllProtocols()
	if len(ps) != 7 {
		t.Fatalf("AllProtocols = %v, want 7 entries", ps)
	}
	seen := map[essat.Protocol]bool{}
	for _, p := range ps {
		seen[p] = true
	}
	for _, want := range []essat.Protocol{essat.DTSSS, essat.STSSS, essat.NTSSS, essat.SPAN, essat.PSM, essat.SYNC, essat.TMAC} {
		if !seen[want] {
			t.Fatalf("missing protocol %s", want)
		}
	}
}

func TestQueryClassesRatios(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	specs := essat.QueryClasses(rng, 2.0, 2, 10*time.Second)
	if len(specs) != 6 {
		t.Fatalf("got %d specs, want 6", len(specs))
	}
	// Rate ratio 6:3:2 → periods 0.5s, 1s, 1.5s.
	wantPeriods := map[int]time.Duration{1: 500 * time.Millisecond, 2: time.Second, 3: 1500 * time.Millisecond}
	for _, s := range specs {
		if s.Period != wantPeriods[s.Class] {
			t.Fatalf("class %d period = %v, want %v", s.Class, s.Period, wantPeriods[s.Class])
		}
		if s.Phase < 0 || s.Phase >= 10*time.Second {
			t.Fatalf("phase %v out of range", s.Phase)
		}
	}
	// IDs must be unique.
	ids := map[essat.QueryID]bool{}
	for _, s := range specs {
		if ids[s.ID] {
			t.Fatalf("duplicate query ID %d", s.ID)
		}
		ids[s.ID] = true
	}
}

// TestHeadlineClaim reproduces the abstract's headline numbers in a quick
// setting: DTS-SS duty cycle 38-87% lower than SPAN, and query latency
// 36-98% lower than PSM and SYNC.
func TestHeadlineClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack comparison")
	}
	run := func(p essat.Protocol) *essat.Result {
		res, err := essat.Run(quickScenario(p, 2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dts := run(essat.DTSSS)
	span := run(essat.SPAN)
	psm := run(essat.PSM)
	sync := run(essat.SYNC)

	dutyReduction := 1 - dts.DutyCycle/span.DutyCycle
	if dutyReduction < 0.38 {
		t.Errorf("DTS-SS duty only %.0f%% lower than SPAN, paper claims 38-87%%", dutyReduction*100)
	}
	t.Logf("duty: DTS-SS %.1f%% vs SPAN %.1f%% (%.0f%% lower)",
		dts.DutyCycle*100, span.DutyCycle*100, dutyReduction*100)

	for _, base := range []*essat.Result{psm, sync} {
		latReduction := 1 - float64(dts.Latency.Mean)/float64(base.Latency.Mean)
		if latReduction < 0.36 {
			t.Errorf("DTS-SS latency only %.0f%% lower than %s, paper claims 36-98%%",
				latReduction*100, base.Protocol)
		}
		t.Logf("latency: DTS-SS %v vs %s %v (%.0f%% lower)",
			dts.Latency.Mean.Round(time.Millisecond), base.Protocol,
			base.Latency.Mean.Round(time.Millisecond), latReduction*100)
	}
}

func TestDeterministicResults(t *testing.T) {
	a, err := essat.Run(quickScenario(essat.DTSSS, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := essat.Run(quickScenario(essat.DTSSS, 5))
	if err != nil {
		t.Fatal(err)
	}
	if a.DutyCycle != b.DutyCycle || a.Latency.Mean != b.Latency.Mean || a.Events != b.Events {
		t.Fatalf("identical scenarios diverged: %+v vs %+v", a, b)
	}
	c, err := essat.Run(quickScenario(essat.DTSSS, 6))
	if err != nil {
		t.Fatal(err)
	}
	if a.Events == c.Events && a.DutyCycle == c.DutyCycle {
		t.Fatal("different seeds produced identical results")
	}
}

func TestFigureDriversQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure drivers are slow")
	}
	o := essat.Options{Duration: 8 * time.Second, Seeds: 1, Nodes: 40}
	fig, err := essat.Fig2Deadline(o, []time.Duration{100 * time.Millisecond, 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	essat.PrintFigure(&sb, fig)
	out := sb.String()
	if !strings.Contains(out, "fig2") || !strings.Contains(out, "0.1") {
		t.Fatalf("unexpected figure rendering:\n%s", out)
	}

	fig9, err := essat.Fig9BreakEven(o, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig9.Series) != 4 {
		t.Fatalf("Fig9 series = %d, want 4 TBE values", len(fig9.Series))
	}
}

func TestScenarioValidation(t *testing.T) {
	sc := essat.DefaultScenario(essat.DTSSS, 1)
	if _, err := essat.Run(sc); err == nil {
		t.Error("scenario without queries accepted")
	}
	sc = quickScenario("BOGUS", 1)
	if _, err := essat.Run(sc); err == nil {
		t.Error("unknown protocol accepted")
	}
}
