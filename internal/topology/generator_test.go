package topology

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestGeneratorRegistry(t *testing.T) {
	names := GeneratorNames()
	want := []string{Uniform, Grid, Clusters, Corridor}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("GeneratorNames() = %v, want %v", names, want)
	}
	for _, name := range want {
		if _, ok := LookupGenerator(name); !ok {
			t.Errorf("generator %q not registered", name)
		}
	}
	if _, ok := LookupGenerator("moebius"); ok {
		t.Error("LookupGenerator accepted an unregistered name")
	}
	if _, err := New(rand.New(rand.NewSource(1)), Config{NumNodes: 10, AreaSide: 100, Range: 30, Generator: "moebius"}); err == nil {
		t.Error("New accepted an unregistered generator")
	}
}

func TestGeneratorsPlaceInBounds(t *testing.T) {
	cfg := Config{NumNodes: 50, AreaSide: 400, Range: 125}
	for _, name := range GeneratorNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			g, _ := LookupGenerator(name)
			pts, err := g.Generate(rand.New(rand.NewSource(3)), withGen(cfg, name))
			if err != nil {
				t.Fatal(err)
			}
			if len(pts) != cfg.NumNodes {
				t.Fatalf("placed %d nodes, want %d", len(pts), cfg.NumNodes)
			}
			for i, p := range pts {
				if p.X < 0 || p.X > cfg.AreaSide || p.Y < 0 || p.Y > cfg.AreaSide {
					t.Fatalf("node %d at %v outside the %g m square", i, p, cfg.AreaSide)
				}
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	cfg := Config{NumNodes: 40, AreaSide: 300, Range: 100}
	for _, name := range GeneratorNames() {
		g, _ := LookupGenerator(name)
		a, err := g.Generate(rand.New(rand.NewSource(7)), withGen(cfg, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.Generate(rand.New(rand.NewSource(7)), withGen(cfg, name))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same rng seed produced different placements", name)
		}
	}
}

// TestNewUniformMatchesNewRandom is the byte-identity guard for the
// default path: dispatching through the registry must consume the rng
// exactly as the legacy constructor.
func TestNewUniformMatchesNewRandom(t *testing.T) {
	cfg := Config{NumNodes: 80, AreaSide: 500, Range: 125}
	a, err := NewRandom(rand.New(rand.NewSource(42)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(rand.New(rand.NewSource(42)), cfg) // empty Generator
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Positions(), b.Positions()) {
		t.Fatal("New with empty generator differs from NewRandom")
	}
}

func TestGridShape(t *testing.T) {
	g, _ := LookupGenerator(Grid)
	cfg := Config{NumNodes: 9, AreaSide: 300, Range: 150, Generator: Grid}
	pts, err := g.Generate(rand.New(rand.NewSource(1)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 9 nodes in 300 m → 3×3 grid at cell centers 50, 150, 250.
	want := []float64{50, 150, 250}
	for i, p := range pts {
		if p.X != want[i%3] || p.Y != want[i/3] {
			t.Fatalf("node %d at %v, want (%g, %g)", i, p, want[i%3], want[i/3])
		}
	}
	// Negative jitter is rejected.
	cfg.Params = map[string]float64{"jitter": -1}
	if _, err := g.Generate(rand.New(rand.NewSource(1)), cfg); err == nil {
		t.Error("grid accepted negative jitter")
	}
}

func TestCorridorShape(t *testing.T) {
	g, _ := LookupGenerator(Corridor)
	cfg := Config{
		NumNodes: 30, AreaSide: 600, Range: 125,
		Generator: Corridor, Params: map[string]float64{"width": 60},
	}
	pts, err := g.Generate(rand.New(rand.NewSource(2)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	slot := cfg.AreaSide / float64(cfg.NumNodes)
	for i, p := range pts {
		if p.Y < 270 || p.Y > 330 {
			t.Fatalf("node %d at %v outside the 60 m band around y=300", i, p)
		}
		if p.X < float64(i)*slot || p.X >= float64(i+1)*slot {
			t.Fatalf("node %d at %v outside its x stratum [%g, %g)", i, p, float64(i)*slot, float64(i+1)*slot)
		}
	}
}

func TestClustersShape(t *testing.T) {
	g, _ := LookupGenerator(Clusters)
	cfg := Config{
		NumNodes: 60, AreaSide: 500, Range: 125,
		Generator: Clusters, Params: map[string]float64{"clusters": 2, "spread": 10},
	}
	pts, err := g.Generate(rand.New(rand.NewSource(5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With tiny spread, nodes hug their two centers: every node must be
	// near the centroid of its own (round-robin) cluster.
	for parity := 0; parity < 2; parity++ {
		var members []int
		for i := range pts {
			if i%2 == parity {
				members = append(members, i)
			}
		}
		var cx, cy float64
		for _, i := range members {
			cx += pts[i].X
			cy += pts[i].Y
		}
		cx /= float64(len(members))
		cy /= float64(len(members))
		for _, i := range members {
			dx, dy := pts[i].X-cx, pts[i].Y-cy
			if dx*dx+dy*dy > 60*60 {
				t.Fatalf("node %d at %v strays %g+ m from its cluster center (%g, %g)", i, pts[i], 60.0, cx, cy)
			}
		}
	}
}

func withGen(cfg Config, name string) Config {
	cfg.Generator = name
	return cfg
}
