package topology

import (
	"fmt"
	"math"
	"sort"
)

// Partition is a spatial decomposition of a deployment into K shards for
// the parallel event loop: contiguous vertical bands of grid columns,
// built with the same range-sized bucketing as the neighbor spatial
// hash. Crossing a band edge therefore always spans at least one column
// of width >= the candidate-neighbor radius, so a node's neighbors are
// confined to its own shard and the two adjacent ones — the property the
// conservative cross-shard latency relies on.
//
// Shards may be empty (K larger than the number of occupied columns);
// the scheduler simply has nothing to run there.
type Partition struct {
	// K is the shard count.
	K int
	// Assign maps NodeID -> shard index, dense over the deployment.
	Assign []int32
	// Members lists each shard's nodes in ascending NodeID order.
	Members [][]NodeID
}

// PartitionGrid cuts the deployment into k contiguous vertical bands of
// spatial-hash columns, balancing node counts greedily. k must be in
// [1, 64]; the 64 cap matches the per-transmission routing bitmask in
// the channel mesh.
func PartitionGrid(t *Topology, k int) (*Partition, error) {
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("topology: shard count must be in [1,64], got %d", k)
	}
	n := t.NumNodes()
	p := &Partition{
		K:       k,
		Assign:  make([]int32, n),
		Members: make([][]NodeID, k),
	}

	// Column width: the candidate-neighbor radius, exactly the spatial
	// hash's cell side, so adjacent-band locality holds by construction.
	cell := t.NeighborRange()
	minX, maxX := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		x := t.Position(NodeID(i)).X
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
	}
	ncols := int((maxX-minX)/cell) + 1
	colOf := func(id NodeID) int {
		c := int((t.Position(id).X - minX) / cell)
		if c >= ncols {
			c = ncols - 1
		}
		return c
	}
	counts := make([]int, ncols)
	for i := 0; i < n; i++ {
		counts[colOf(NodeID(i))]++
	}

	// Greedy contiguous split: walk columns left to right, closing shard
	// s once the running count reaches its cumulative target (s+1)·n/k.
	// Columns are atomic, so a dense column can overshoot; later shards
	// absorb the imbalance, and trailing shards may come out empty.
	colShard := make([]int32, ncols)
	shard, cum := 0, 0
	for c := 0; c < ncols; c++ {
		colShard[c] = int32(shard)
		cum += counts[c]
		for shard < k-1 && cum >= (shard+1)*n/k && cum > 0 {
			shard++
		}
	}

	for i := 0; i < n; i++ {
		s := colShard[colOf(NodeID(i))]
		p.Assign[i] = s
		p.Members[s] = append(p.Members[s], NodeID(i))
	}
	for s := range p.Members {
		m := p.Members[s]
		sort.Slice(m, func(a, b int) bool { return m[a] < m[b] })
	}
	return p, nil
}

// Shard returns the shard index of node id.
func (p *Partition) Shard(id NodeID) int { return int(p.Assign[id]) }

// BoundaryNodes returns, in ascending ID order, every node with at least
// one candidate neighbor assigned to a different shard — the nodes whose
// transmissions cross the mesh.
func (p *Partition) BoundaryNodes(t *Topology) []NodeID {
	var out []NodeID
	for i := range p.Assign {
		id := NodeID(i)
		for _, nb := range t.Neighbors(id) {
			if p.Assign[nb] != p.Assign[id] {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// CrossEdges counts directed neighbor pairs that span shards, a
// coupling measure for diagnostics and tests.
func (p *Partition) CrossEdges(t *Topology) int {
	total := 0
	for i := range p.Assign {
		for _, nb := range t.Neighbors(NodeID(i)) {
			if p.Assign[nb] != p.Assign[i] {
				total++
			}
		}
	}
	return total
}
