package topology

import (
	"math"
	"math/rand"
	"testing"
)

func buildTopo(t *testing.T, seed int64, cfg Config) *Topology {
	t.Helper()
	topo, err := New(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestPartitionCovers: every node lands in exactly one shard, Members
// agrees with Assign, and member lists are ID-sorted.
func TestPartitionCovers(t *testing.T) {
	topo := buildTopo(t, 7, DefaultConfig())
	for _, k := range []int{1, 2, 4, 7} {
		p, err := PartitionGrid(topo, k)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for s, members := range p.Members {
			prev := NodeID(-1)
			for _, id := range members {
				if p.Assign[id] != int32(s) {
					t.Fatalf("k=%d: node %d in Members[%d] but assigned %d", k, id, s, p.Assign[id])
				}
				if id <= prev {
					t.Fatalf("k=%d: Members[%d] not strictly ascending", k, s)
				}
				prev = id
			}
			total += len(members)
		}
		if total != topo.NumNodes() {
			t.Fatalf("k=%d: %d nodes partitioned, want %d", k, total, topo.NumNodes())
		}
	}
}

// TestPartitionBandLocality pins the property the conservative lookahead
// relies on: bands are at least one neighbor-range-wide column, so a
// node whose column is interior to its shard (neither the shard's first
// nor last column) can have no cross-shard neighbors.
func TestPartitionBandLocality(t *testing.T) {
	topo := buildTopo(t, 11, DefaultConfig())
	p, err := PartitionGrid(topo, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct the partitioner's column bucketing.
	cell := topo.NeighborRange()
	minX := math.Inf(1)
	for i := 0; i < topo.NumNodes(); i++ {
		minX = math.Min(minX, topo.Position(NodeID(i)).X)
	}
	colOf := func(id NodeID) int { return int((topo.Position(id).X - minX) / cell) }
	colLo := make(map[int32]int)
	colHi := make(map[int32]int)
	for i := range p.Assign {
		s, c := p.Assign[i], colOf(NodeID(i))
		if lo, ok := colLo[s]; !ok || c < lo {
			colLo[s] = c
		}
		if hi, ok := colHi[s]; !ok || c > hi {
			colHi[s] = c
		}
	}

	boundary := make(map[NodeID]bool)
	for _, id := range p.BoundaryNodes(topo) {
		boundary[id] = true
	}
	if len(boundary) == 0 {
		t.Fatal("no boundary nodes in a 4-shard default deployment")
	}
	for i := range p.Assign {
		id := NodeID(i)
		s, c := p.Assign[i], colOf(id)
		if c > colLo[s] && c < colHi[s] && boundary[id] {
			t.Errorf("node %d is interior to shard %d (col %d in [%d,%d]) yet has cross-shard neighbors",
				id, s, c, colLo[s], colHi[s])
		}
	}

	// Every boundary node is, by the band construction, within one cell
	// (the lookahead's propagation radius) of a shard edge.
	for id := range boundary {
		s, c := p.Assign[id], colOf(id)
		if c != colLo[s] && c != colHi[s] {
			t.Errorf("boundary node %d sits in column %d, not at shard %d's edge [%d,%d]",
				id, c, s, colLo[s], colHi[s])
		}
	}
}

// TestPartitionEmptyShards: more shards than occupied columns leaves
// trailing shards empty without losing any node. A 100 m area at 125 m
// range is a single column, so every node lands in shard 0.
func TestPartitionEmptyShards(t *testing.T) {
	topo := buildTopo(t, 3, Config{NumNodes: 12, AreaSide: 100, Range: 125})
	p, err := PartitionGrid(topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Members[0]); got != topo.NumNodes() {
		t.Fatalf("single-column deployment: shard 0 has %d of %d nodes", got, topo.NumNodes())
	}
	for s := 1; s < 8; s++ {
		if len(p.Members[s]) != 0 {
			t.Errorf("shard %d should be empty, has %d nodes", s, len(p.Members[s]))
		}
	}
	if n := len(p.BoundaryNodes(topo)); n != 0 {
		t.Errorf("single-shard occupancy has %d boundary nodes, want 0", n)
	}
	if n := p.CrossEdges(topo); n != 0 {
		t.Errorf("single-shard occupancy has %d cross edges, want 0", n)
	}
}

// TestPartitionInvalidK: the [1,64] bound is enforced (64 is the mesh's
// routing-bitmask width).
func TestPartitionInvalidK(t *testing.T) {
	topo := buildTopo(t, 5, Config{NumNodes: 10, AreaSide: 300, Range: 125})
	for _, k := range []int{0, -1, 65} {
		if _, err := PartitionGrid(topo, k); err == nil {
			t.Errorf("k=%d: expected an error", k)
		}
	}
}

// TestPartitionDeterminism: the same topology partitions identically
// every time — the parallel engine's determinism starts here.
func TestPartitionDeterminism(t *testing.T) {
	topo := buildTopo(t, 9, DefaultConfig())
	a, err := PartitionGrid(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionGrid(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("node %d assigned %d then %d", i, a.Assign[i], b.Assign[i])
		}
	}
}
