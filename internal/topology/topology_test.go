package topology

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/essat/essat/internal/geom"
)

func mustFromPositions(t *testing.T, pts []geom.Point, r float64) *Topology {
	t.Helper()
	topo, err := FromPositions(pts, r)
	if err != nil {
		t.Fatalf("FromPositions: %v", err)
	}
	return topo
}

func TestNewRandomValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewRandom(rng, Config{NumNodes: 0, AreaSide: 10, Range: 5}); err == nil {
		t.Error("want error for zero nodes")
	}
	if _, err := NewRandom(rng, Config{NumNodes: 5, AreaSide: -1, Range: 5}); err == nil {
		t.Error("want error for negative area")
	}
	if _, err := NewRandom(rng, Config{NumNodes: 5, AreaSide: 10, Range: 0}); err == nil {
		t.Error("want error for zero range")
	}
}

func TestChainTopology(t *testing.T) {
	topo := mustFromPositions(t, geom.LinePlacement(5, 100), 125)
	// Each interior node reaches exactly its two neighbors at 100m spacing
	// with 125m range.
	if got := topo.Degree(0); got != 1 {
		t.Fatalf("Degree(0) = %d, want 1", got)
	}
	if got := topo.Degree(2); got != 2 {
		t.Fatalf("Degree(2) = %d, want 2", got)
	}
	if !topo.Connected(1, 2) {
		t.Error("adjacent chain nodes not connected")
	}
	if topo.Connected(0, 2) {
		t.Error("nodes 200m apart connected with 125m range")
	}
	if topo.Connected(3, 3) {
		t.Error("node connected to itself")
	}
}

func TestNeighborSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo, err := NewRandom(rng, Config{NumNodes: 30, AreaSide: 300, Range: 100})
		if err != nil {
			return false
		}
		for i := 0; i < topo.NumNodes(); i++ {
			for _, nb := range topo.Neighbors(NodeID(i)) {
				found := false
				for _, back := range topo.Neighbors(nb) {
					if back == NodeID(i) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelsChain(t *testing.T) {
	topo := mustFromPositions(t, geom.LinePlacement(5, 100), 125)
	levels := topo.Levels(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if levels[i] != want {
			t.Fatalf("levels[%d] = %d, want %d", i, levels[i], want)
		}
	}
}

func TestLevelsUnreachable(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 1000}}
	topo := mustFromPositions(t, pts, 125)
	levels := topo.Levels(0)
	if levels[2] != -1 {
		t.Fatalf("levels[2] = %d, want -1 (unreachable)", levels[2])
	}
}

func TestCentralNode(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 1}, {X: 0, Y: 10}, {X: 10, Y: 10}}
	topo := mustFromPositions(t, pts, 50)
	// Centroid is (5, 4.2); node 2 at (5,1) is closest.
	if got := topo.CentralNode(); got != 2 {
		t.Fatalf("CentralNode = %d, want 2", got)
	}
	if got := topo.CentralNodeOf(geom.Point{X: 0, Y: 0}); got != 0 {
		t.Fatalf("CentralNodeOf(origin) = %d, want 0", got)
	}
}

func TestWithinDistance(t *testing.T) {
	topo := mustFromPositions(t, geom.LinePlacement(5, 100), 125)
	got := topo.WithinDistance(0, 300)
	if len(got) != 3 {
		t.Fatalf("WithinDistance = %v, want 3 nodes", got)
	}
	for _, id := range got {
		if id == 0 {
			t.Fatal("WithinDistance includes the node itself")
		}
	}
}

func TestPaperScaleDeploymentIsMostlyConnected(t *testing.T) {
	// With 80 nodes in 500x500 and 125m range the expected node degree is
	// ~15, so the network should be connected in nearly every seed. Check a
	// handful of seeds and require the vast majority of nodes reachable.
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		topo, err := NewRandom(rng, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		root := topo.CentralNode()
		levels := topo.Levels(root)
		reachable := 0
		for _, l := range levels {
			if l >= 0 {
				reachable++
			}
		}
		if reachable < 70 {
			t.Errorf("seed %d: only %d/80 nodes reachable", seed, reachable)
		}
	}
}

func TestIsConnectedSubset(t *testing.T) {
	topo := mustFromPositions(t, geom.LinePlacement(5, 100), 125)
	if !topo.IsConnectedSubset(0, []NodeID{1, 2, 3}) {
		t.Error("contiguous chain prefix should be connected")
	}
	if topo.IsConnectedSubset(0, []NodeID{1, 3}) {
		t.Error("chain with gap should not be connected")
	}
}

func TestPositionsReturnsCopy(t *testing.T) {
	topo := mustFromPositions(t, geom.LinePlacement(3, 100), 125)
	ps := topo.Positions()
	ps[0] = geom.Point{X: 999}
	if topo.Position(0).X == 999 {
		t.Error("Positions() exposed internal storage")
	}
}

// naiveNeighbors is the reference O(N²) all-pairs adjacency build the
// spatial hash replaced; the hash must reproduce it exactly.
func naiveNeighbors(pts []geom.Point, rangeM float64) [][]NodeID {
	neighbors := make([][]NodeID, len(pts))
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].InRange(pts[j], rangeM) {
				neighbors[i] = append(neighbors[i], NodeID(j))
				neighbors[j] = append(neighbors[j], NodeID(i))
			}
		}
	}
	return neighbors
}

// TestSpatialHashMatchesAllPairs checks, over random deployments of
// varied density (including degenerate ones: range larger than the area,
// range much smaller than the area, coincident points), that the
// grid-bucket build produces neighbor lists identical — order included —
// to the all-pairs scan.
func TestSpatialHashMatchesAllPairs(t *testing.T) {
	cases := []struct {
		n    int
		side float64
		rng  float64
	}{
		{1, 100, 50},
		{2, 100, 200},    // range covers everything
		{30, 300, 100},   // paper-like density
		{200, 500, 125},  // dense
		{100, 10000, 30}, // sparse: grid would dwarf N, cells widen
		{50, 100, 1e6},   // absurd range: single cell
	}
	for _, tc := range cases {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			pts := geom.UniformPlacement(rng, tc.n, tc.side)
			if tc.n > 3 {
				pts[1] = pts[0] // coincident pair
			}
			flat, offsets := buildNeighbors(pts, tc.rng)
			want := naiveNeighbors(pts, tc.rng)
			for i := range pts {
				g, w := flat[offsets[i]:offsets[i+1]], want[i]
				if len(g) != len(w) {
					t.Fatalf("n=%d side=%g range=%g seed=%d: node %d has %d neighbors, want %d",
						tc.n, tc.side, tc.rng, seed, i, len(g), len(w))
				}
				for k := range g {
					if g[k] != w[k] {
						t.Fatalf("n=%d side=%g range=%g seed=%d: node %d neighbors %v, want %v",
							tc.n, tc.side, tc.rng, seed, i, g, w)
					}
				}
			}
		}
	}
}

// BenchmarkNeighborBuild measures topology construction at the large
// scenario tier's scale. With the spatial hash this grows linearly in N
// at fixed density (the naive all-pairs build was quadratic).
func BenchmarkNeighborBuild(b *testing.B) {
	for _, n := range []int{80, 1000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// Fixed density: scale the area with N, keep 125 m range.
			side := 500 * math.Sqrt(float64(n)/80)
			rng := rand.New(rand.NewSource(1))
			pts := geom.UniformPlacement(rng, n, side)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := FromPositions(pts, 125); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
