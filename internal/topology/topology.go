// Package topology models the static deployment of a sensor network: node
// positions, the disc connectivity graph induced by radio range, and root
// selection. It corresponds to the experimental setup of the ESSAT paper
// (§5): nodes placed uniformly at random in a square, unit-disc links, and
// the root chosen as the node closest to the center of the area.
package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/essat/essat/internal/geom"
)

// NodeID identifies a node in a deployment. IDs are dense, starting at 0.
type NodeID int

// Topology is an immutable deployment: positions plus the connectivity
// graph implied by the communication range. When a gray-zone propagation
// model can deliver past the nominal range, the neighbor graph is built
// from the wider candidate radius (NeighborRange) instead; the channel's
// per-delivery verdict then decides which candidate links actually work.
type Topology struct {
	positions []geom.Point
	rangeM    float64 // nominal communication range
	neighborR float64 // candidate radius (>= rangeM)
	// Neighbor lists in CSR (compressed sparse row) form: node i's
	// neighbors are flat[offsets[i]:offsets[i+1]], sorted ascending.
	// One flat slab instead of N headers keeps the adjacency compact and
	// cache-friendly, and makes the whole graph two allocations.
	flat    []NodeID
	offsets []int32
}

// Config describes a deployment: its scale plus the placement generator
// that shapes it.
type Config struct {
	// NumNodes is the number of nodes to place.
	NumNodes int
	// AreaSide is the side of the square deployment area in meters.
	AreaSide float64
	// Range is the nominal communication range in meters.
	Range float64
	// NeighborRange widens the candidate-neighbor radius beyond Range
	// for propagation models whose gray zone reaches past the nominal
	// range (the experiment layer sets it from the model's MaxRange).
	// Zero or anything at most Range keeps the unit-disc radius.
	NeighborRange float64
	// Generator selects the placement shape by registry name ("uniform",
	// "grid", "clusters", "corridor"); empty selects uniform-random, the
	// paper's deployment. See New.
	Generator string
	// Params passes generator-specific knobs (e.g. grid "jitter",
	// clusters "clusters"/"spread", corridor "width"); see each
	// generator's doc.
	Params map[string]float64
}

// DefaultConfig returns the deployment used throughout the paper's
// evaluation: 80 nodes in a 500x500 m² area with 125 m range.
func DefaultConfig() Config {
	return Config{NumNodes: 80, AreaSide: 500, Range: 125}
}

// NewRandom places cfg.NumNodes nodes uniformly at random using rng,
// ignoring cfg.Generator. Prefer New, which dispatches on it.
func NewRandom(rng *rand.Rand, cfg Config) (*Topology, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pts := geom.UniformPlacement(rng, cfg.NumNodes, cfg.AreaSide)
	return fromPositions(pts, cfg.Range, cfg.NeighborRange)
}

// FromPositions builds a topology from explicit positions, computing the
// neighbor lists for the given communication range.
//
// The build uses a spatial hash: nodes are bucketed into a grid of
// range-sized cells and each node is compared only against nodes in its
// 3×3 cell neighborhood, so construction is O(N·degree) — linear in N
// for uniform densities — instead of the O(N²) all-pairs scan. Neighbor
// lists come out in ascending NodeID order, identical to the all-pairs
// build, so run results do not depend on the construction algorithm.
func FromPositions(pts []geom.Point, rangeM float64) (*Topology, error) {
	return fromPositions(pts, rangeM, 0)
}

// fromPositions builds the topology with an explicit candidate radius;
// neighborR <= rangeM falls back to the unit-disc radius.
func fromPositions(pts []geom.Point, rangeM, neighborR float64) (*Topology, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("topology: no positions")
	}
	if rangeM <= 0 {
		return nil, fmt.Errorf("topology: range must be positive, got %g", rangeM)
	}
	if neighborR < rangeM {
		neighborR = rangeM
	}
	flat, offsets := buildNeighbors(pts, neighborR)
	t := &Topology{
		positions: append([]geom.Point(nil), pts...),
		rangeM:    rangeM,
		neighborR: neighborR,
		flat:      flat,
		offsets:   offsets,
	}
	return t, nil
}

// buildNeighbors computes the unit-disc adjacency in CSR form with a
// grid-bucket spatial hash. Each node's segment is sorted ascending by
// NodeID, identical to the all-pairs build.
func buildNeighbors(pts []geom.Point, rangeM float64) ([]NodeID, []int32) {
	offsets := make([]int32, len(pts)+1)
	flat := make([]NodeID, 0, 8*len(pts))

	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := minX, minY
	for _, p := range pts[1:] {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	// Cell side of (at least) one communication range keeps the candidate
	// scan to the 3×3 neighborhood; widen the cells when the deployment is
	// so sparse relative to the range that the grid would dwarf the node
	// count (cells only grow, so the 3×3 ring always covers the range).
	cell := rangeM
	for int((maxX-minX)/cell)*int((maxY-minY)/cell) > 4*len(pts)+64 {
		cell *= 2
	}
	const ring = 1
	nx := int((maxX-minX)/cell) + 1
	ny := int((maxY-minY)/cell) + 1

	cellOf := func(p geom.Point) (int, int) {
		return int((p.X - minX) / cell), int((p.Y - minY) / cell)
	}
	buckets := make([][]NodeID, nx*ny)
	for i, p := range pts {
		cx, cy := cellOf(p)
		buckets[cy*nx+cx] = append(buckets[cy*nx+cx], NodeID(i))
	}

	for i, p := range pts {
		cx, cy := cellOf(p)
		start := len(flat)
		for dy := -ring; dy <= ring; dy++ {
			y := cy + dy
			if y < 0 || y >= ny {
				continue
			}
			for dx := -ring; dx <= ring; dx++ {
				x := cx + dx
				if x < 0 || x >= nx {
					continue
				}
				for _, j := range buckets[y*nx+x] {
					if j != NodeID(i) && p.InRange(pts[j], rangeM) {
						flat = append(flat, j)
					}
				}
			}
		}
		// Bucket traversal visits candidates in cell order; restore the
		// ascending-ID order the all-pairs build produced.
		seg := flat[start:]
		sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
		offsets[i+1] = int32(len(flat))
	}
	return flat, offsets
}

// NumNodes returns the number of nodes in the deployment.
func (t *Topology) NumNodes() int { return len(t.positions) }

// Range returns the nominal communication range in meters.
func (t *Topology) Range() float64 { return t.rangeM }

// NeighborRange returns the candidate-neighbor radius in meters; it
// equals Range unless a gray-zone propagation model widened it.
func (t *Topology) NeighborRange() float64 { return t.neighborR }

// Position returns the position of node id.
func (t *Topology) Position(id NodeID) geom.Point { return t.positions[id] }

// Positions returns a copy of all node positions, indexed by NodeID.
func (t *Topology) Positions() []geom.Point {
	return append([]geom.Point(nil), t.positions...)
}

// Neighbors returns the nodes within communication range of id. The
// returned slice is a view into the shared CSR slab and must not be
// modified.
func (t *Topology) Neighbors(id NodeID) []NodeID {
	return t.flat[t.offsets[id]:t.offsets[id+1]]
}

// Degree returns the number of neighbors of id.
func (t *Topology) Degree(id NodeID) int {
	return int(t.offsets[id+1] - t.offsets[id])
}

// Connected reports whether a and b can hear each other at all: within
// the candidate-neighbor radius (the nominal range under the unit-disc
// default, the model's MaxRange under gray-zone propagation).
func (t *Topology) Connected(a, b NodeID) bool {
	return a != b && t.positions[a].InRange(t.positions[b], t.neighborR)
}

// CentralNode returns the node closest to the center of the bounding area,
// the paper's root-selection policy.
func (t *Topology) CentralNode() NodeID {
	return NodeID(geom.Closest(t.positions, geom.Centroid(t.positions)))
}

// CentralNodeOf returns the node closest to an explicit area center, for
// deployments where the centroid of placed nodes is not the area center.
func (t *Topology) CentralNodeOf(center geom.Point) NodeID {
	return NodeID(geom.Closest(t.positions, center))
}

// Levels returns the hop distance from root to every node via BFS over the
// connectivity graph, with -1 for unreachable nodes.
func (t *Topology) Levels(root NodeID) []int {
	levels := make([]int, len(t.positions))
	for i := range levels {
		levels[i] = -1
	}
	levels[root] = 0
	queue := []NodeID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.Neighbors(cur) {
			if levels[nb] == -1 {
				levels[nb] = levels[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return levels
}

// WithinDistance returns the IDs of all nodes whose Euclidean distance to
// node id is at most d meters, excluding id itself. The paper restricts the
// routing tree to nodes within 300 m of the root.
func (t *Topology) WithinDistance(id NodeID, d float64) []NodeID {
	var out []NodeID
	p := t.positions[id]
	for j := range t.positions {
		if NodeID(j) == id {
			continue
		}
		if p.InRange(t.positions[j], d) {
			out = append(out, NodeID(j))
		}
	}
	return out
}

// IsConnectedSubset reports whether every node in ids can reach root using
// only hops within the set (root included implicitly).
func (t *Topology) IsConnectedSubset(root NodeID, ids []NodeID) bool {
	in := make(map[NodeID]bool, len(ids)+1)
	in[root] = true
	for _, id := range ids {
		in[id] = true
	}
	seen := map[NodeID]bool{root: true}
	queue := []NodeID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.Neighbors(cur) {
			if in[nb] && !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	for _, id := range ids {
		if !seen[id] {
			return false
		}
	}
	return true
}
