// Package topology models the static deployment of a sensor network: node
// positions, the disc connectivity graph induced by radio range, and root
// selection. It corresponds to the experimental setup of the ESSAT paper
// (§5): nodes placed uniformly at random in a square, unit-disc links, and
// the root chosen as the node closest to the center of the area.
package topology

import (
	"fmt"
	"math/rand"

	"github.com/essat/essat/internal/geom"
)

// NodeID identifies a node in a deployment. IDs are dense, starting at 0.
type NodeID int

// Topology is an immutable deployment: positions plus the connectivity
// graph implied by the communication range.
type Topology struct {
	positions []geom.Point
	rangeM    float64
	neighbors [][]NodeID
}

// Config describes a deployment: its scale plus the placement generator
// that shapes it.
type Config struct {
	// NumNodes is the number of nodes to place.
	NumNodes int
	// AreaSide is the side of the square deployment area in meters.
	AreaSide float64
	// Range is the communication range in meters (unit-disc model).
	Range float64
	// Generator selects the placement shape by registry name ("uniform",
	// "grid", "clusters", "corridor"); empty selects uniform-random, the
	// paper's deployment. See New.
	Generator string
	// Params passes generator-specific knobs (e.g. grid "jitter",
	// clusters "clusters"/"spread", corridor "width"); see each
	// generator's doc.
	Params map[string]float64
}

// DefaultConfig returns the deployment used throughout the paper's
// evaluation: 80 nodes in a 500x500 m² area with 125 m range.
func DefaultConfig() Config {
	return Config{NumNodes: 80, AreaSide: 500, Range: 125}
}

// NewRandom places cfg.NumNodes nodes uniformly at random using rng,
// ignoring cfg.Generator. Prefer New, which dispatches on it.
func NewRandom(rng *rand.Rand, cfg Config) (*Topology, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pts := geom.UniformPlacement(rng, cfg.NumNodes, cfg.AreaSide)
	return FromPositions(pts, cfg.Range)
}

// FromPositions builds a topology from explicit positions, computing the
// neighbor lists for the given communication range.
func FromPositions(pts []geom.Point, rangeM float64) (*Topology, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("topology: no positions")
	}
	if rangeM <= 0 {
		return nil, fmt.Errorf("topology: range must be positive, got %g", rangeM)
	}
	t := &Topology{
		positions: append([]geom.Point(nil), pts...),
		rangeM:    rangeM,
		neighbors: make([][]NodeID, len(pts)),
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].InRange(pts[j], rangeM) {
				t.neighbors[i] = append(t.neighbors[i], NodeID(j))
				t.neighbors[j] = append(t.neighbors[j], NodeID(i))
			}
		}
	}
	return t, nil
}

// NumNodes returns the number of nodes in the deployment.
func (t *Topology) NumNodes() int { return len(t.positions) }

// Range returns the communication range in meters.
func (t *Topology) Range() float64 { return t.rangeM }

// Position returns the position of node id.
func (t *Topology) Position(id NodeID) geom.Point { return t.positions[id] }

// Positions returns a copy of all node positions, indexed by NodeID.
func (t *Topology) Positions() []geom.Point {
	return append([]geom.Point(nil), t.positions...)
}

// Neighbors returns the nodes within communication range of id. The
// returned slice must not be modified.
func (t *Topology) Neighbors(id NodeID) []NodeID { return t.neighbors[id] }

// Degree returns the number of neighbors of id.
func (t *Topology) Degree(id NodeID) int { return len(t.neighbors[id]) }

// Connected reports whether a and b are within communication range.
func (t *Topology) Connected(a, b NodeID) bool {
	return a != b && t.positions[a].InRange(t.positions[b], t.rangeM)
}

// CentralNode returns the node closest to the center of the bounding area,
// the paper's root-selection policy.
func (t *Topology) CentralNode() NodeID {
	return NodeID(geom.Closest(t.positions, geom.Centroid(t.positions)))
}

// CentralNodeOf returns the node closest to an explicit area center, for
// deployments where the centroid of placed nodes is not the area center.
func (t *Topology) CentralNodeOf(center geom.Point) NodeID {
	return NodeID(geom.Closest(t.positions, center))
}

// Levels returns the hop distance from root to every node via BFS over the
// connectivity graph, with -1 for unreachable nodes.
func (t *Topology) Levels(root NodeID) []int {
	levels := make([]int, len(t.positions))
	for i := range levels {
		levels[i] = -1
	}
	levels[root] = 0
	queue := []NodeID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.neighbors[cur] {
			if levels[nb] == -1 {
				levels[nb] = levels[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return levels
}

// WithinDistance returns the IDs of all nodes whose Euclidean distance to
// node id is at most d meters, excluding id itself. The paper restricts the
// routing tree to nodes within 300 m of the root.
func (t *Topology) WithinDistance(id NodeID, d float64) []NodeID {
	var out []NodeID
	p := t.positions[id]
	for j := range t.positions {
		if NodeID(j) == id {
			continue
		}
		if p.InRange(t.positions[j], d) {
			out = append(out, NodeID(j))
		}
	}
	return out
}

// IsConnectedSubset reports whether every node in ids can reach root using
// only hops within the set (root included implicitly).
func (t *Topology) IsConnectedSubset(root NodeID, ids []NodeID) bool {
	in := make(map[NodeID]bool, len(ids)+1)
	in[root] = true
	for _, id := range ids {
		in[id] = true
	}
	seen := map[NodeID]bool{root: true}
	queue := []NodeID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.neighbors[cur] {
			if in[nb] && !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	for _, id := range ids {
		if !seen[id] {
			return false
		}
	}
	return true
}
