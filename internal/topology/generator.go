package topology

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/essat/essat/internal/geom"
	"github.com/essat/essat/internal/registry"
)

// The registered deployment shapes. Uniform is the paper's §5 setup;
// the others model common real deployments: engineered grids, clustered
// installations around points of interest, and corridor/line networks
// (pipelines, roads, perimeters).
const (
	Uniform  = "uniform"
	Grid     = "grid"
	Clusters = "clusters"
	Corridor = "corridor"
)

// Generator places the nodes of one deployment shape inside the
// cfg.AreaSide square. Implementations must be deterministic in rng:
// the same rng state and config always yield the same positions.
type Generator interface {
	// Name is the registry key ("uniform", "grid", ...).
	Name() string
	// Generate returns exactly cfg.NumNodes points inside
	// [0, cfg.AreaSide]², reading shape knobs from cfg.Params.
	Generate(rng *rand.Rand, cfg Config) ([]geom.Point, error)
}

var generators = registry.New[string, Generator]("topology generator")

// RegisterGenerator adds g under its name. rank orders GeneratorNames()
// for presentation (lower first); ties break by name. It panics on
// duplicates.
func RegisterGenerator(rank int, g Generator) {
	generators.Register(g.Name(), rank, g)
}

// LookupGenerator returns the generator registered under name.
func LookupGenerator(name string) (Generator, bool) { return generators.Lookup(name) }

// GeneratorNames lists every registered generator in presentation order.
func GeneratorNames() []string { return generators.Names() }

// New builds the deployment described by cfg, dispatching on
// cfg.Generator through the registry. An empty Generator selects
// uniform-random placement, byte-identical to NewRandom.
func New(rng *rand.Rand, cfg Config) (*Topology, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	name := cfg.Generator
	if name == "" {
		name = Uniform
	}
	g, ok := LookupGenerator(name)
	if !ok {
		return nil, fmt.Errorf("topology: unknown generator %q (registered: %v)", name, GeneratorNames())
	}
	pts, err := g.Generate(rng, cfg)
	if err != nil {
		return nil, err
	}
	return fromPositions(pts, cfg.Range, cfg.NeighborRange)
}

// Replay draws the placement cfg describes from rng and discards it,
// consuming exactly the random numbers New would. Deployment caches use
// it on a hit: the expensive adjacency build is skipped, but the run
// engine's rng stream stays identical to an uncached build, so cached
// and uncached runs are byte-for-byte the same.
func Replay(rng *rand.Rand, cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	name := cfg.Generator
	if name == "" {
		name = Uniform
	}
	g, ok := LookupGenerator(name)
	if !ok {
		return fmt.Errorf("topology: unknown generator %q (registered: %v)", name, GeneratorNames())
	}
	_, err := g.Generate(rng, cfg)
	return err
}

func (c Config) validate() error {
	if c.NumNodes <= 0 {
		return fmt.Errorf("topology: NumNodes must be positive, got %d", c.NumNodes)
	}
	if c.AreaSide <= 0 || c.Range <= 0 {
		return fmt.Errorf("topology: AreaSide and Range must be positive, got %g and %g", c.AreaSide, c.Range)
	}
	return nil
}

// Param returns the generator knob under key, or def when absent.
func (c Config) Param(key string, def float64) float64 {
	if v, ok := c.Params[key]; ok {
		return v
	}
	return def
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func init() {
	RegisterGenerator(10, uniformGen{})
	RegisterGenerator(20, gridGen{})
	RegisterGenerator(30, clustersGen{})
	RegisterGenerator(40, corridorGen{})
}

// uniformGen draws every position uniformly at random from the square —
// the paper's deployment. No Params.
type uniformGen struct{}

func (uniformGen) Name() string { return Uniform }

func (uniformGen) Generate(rng *rand.Rand, cfg Config) ([]geom.Point, error) {
	return geom.UniformPlacement(rng, cfg.NumNodes, cfg.AreaSide), nil
}

// gridGen places nodes at the cell centers of the near-square grid that
// covers the area, row-major. Params: "jitter" displaces each node
// uniformly by up to ±jitter meters per axis (default 0, a perfect
// engineered grid).
type gridGen struct{}

func (gridGen) Name() string { return Grid }

func (gridGen) Generate(rng *rand.Rand, cfg Config) ([]geom.Point, error) {
	n, side := cfg.NumNodes, cfg.AreaSide
	jitter := cfg.Param("jitter", 0)
	if jitter < 0 {
		return nil, fmt.Errorf("topology: grid jitter must be non-negative, got %g", jitter)
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	dx := side / float64(cols)
	dy := side / float64(rows)
	pts := make([]geom.Point, n)
	for i := range pts {
		r, c := i/cols, i%cols
		p := geom.Point{X: (float64(c) + 0.5) * dx, Y: (float64(r) + 0.5) * dy}
		if jitter > 0 {
			p.X = clamp(p.X+(2*rng.Float64()-1)*jitter, 0, side)
			p.Y = clamp(p.Y+(2*rng.Float64()-1)*jitter, 0, side)
		}
		pts[i] = p
	}
	return pts, nil
}

// clustersGen scatters Gaussian clusters around uniformly placed
// centers, round-robin so clusters stay balanced. Params: "clusters"
// (number of clusters, default 4) and "spread" (per-axis standard
// deviation in meters, default AreaSide/8).
type clustersGen struct{}

func (clustersGen) Name() string { return Clusters }

func (clustersGen) Generate(rng *rand.Rand, cfg Config) ([]geom.Point, error) {
	n, side := cfg.NumNodes, cfg.AreaSide
	k := int(cfg.Param("clusters", 4))
	if k <= 0 {
		return nil, fmt.Errorf("topology: clusters must be positive, got %d", k)
	}
	spread := cfg.Param("spread", side/8)
	if spread <= 0 {
		return nil, fmt.Errorf("topology: cluster spread must be positive, got %g", spread)
	}
	centers := geom.UniformPlacement(rng, k, side)
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[i%k]
		pts[i] = geom.Point{
			X: clamp(c.X+rng.NormFloat64()*spread, 0, side),
			Y: clamp(c.Y+rng.NormFloat64()*spread, 0, side),
		}
	}
	return pts, nil
}

// corridorGen stretches the deployment along a horizontal band through
// the middle of the area (a pipeline, road, or perimeter segment). The
// x axis is stratified — node i lands uniformly inside the i-th of
// NumNodes equal slots — so the chain has no gaps wider than two slots.
// Params: "width" (band height in meters, default AreaSide/5).
type corridorGen struct{}

func (corridorGen) Name() string { return Corridor }

func (corridorGen) Generate(rng *rand.Rand, cfg Config) ([]geom.Point, error) {
	n, side := cfg.NumNodes, cfg.AreaSide
	width := cfg.Param("width", side/5)
	if width <= 0 || width > side {
		return nil, fmt.Errorf("topology: corridor width must be in (0, AreaSide], got %g", width)
	}
	y0 := (side - width) / 2
	slot := side / float64(n)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: (float64(i) + rng.Float64()) * slot,
			Y: y0 + rng.Float64()*width,
		}
	}
	return pts, nil
}
