package routing

import (
	"fmt"
	"sort"
	"time"

	"github.com/essat/essat/internal/mac"
	"github.com/essat/essat/internal/phy"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

// FromParents builds a tree from explicit parent pointers. Every key of
// parents becomes a member; entries whose parent chain does not reach root
// are rejected. Levels are the parent-chain depths and ranks are computed
// bottom-up.
func FromParents(topo *topology.Topology, root NodeID, parents map[NodeID]NodeID) (*Tree, error) {
	n := topo.NumNodes()
	if root < 0 || int(root) >= n {
		return nil, fmt.Errorf("routing: root %d out of range [0,%d)", root, n)
	}
	t := &Tree{
		topo:     topo,
		root:     root,
		parent:   make([]NodeID, n),
		children: make([][]NodeID, n),
		level:    make([]int, n),
		rank:     make([]int, n),
		member:   make([]bool, n),
		alive:    make([]bool, n),
	}
	for i := range t.parent {
		t.parent[i] = None
		t.level[i] = -1
	}
	t.member[root] = true
	t.alive[root] = true
	t.level[root] = 0

	for child, p := range parents {
		if child == root {
			return nil, fmt.Errorf("routing: root cannot have a parent")
		}
		if !topo.Connected(child, p) {
			return nil, fmt.Errorf("routing: %d and its parent %d are not neighbors", child, p)
		}
		t.parent[child] = p
		t.member[child] = true
		t.alive[child] = true
	}
	for child := range parents {
		t.children[t.parent[child]] = append(t.children[t.parent[child]], child)
	}
	// Children in ID order: the map iteration above would otherwise vary
	// per-child processing order (and thus event order) across runs.
	for i := range t.children {
		sort.Slice(t.children[i], func(a, b int) bool { return t.children[i][a] < t.children[i][b] })
	}
	// Levels via the parent chains; detect orphan chains and cycles.
	var depth func(id NodeID, hops int) (int, error)
	depth = func(id NodeID, hops int) (int, error) {
		if hops > n {
			return 0, fmt.Errorf("routing: cycle through node %d", id)
		}
		if t.level[id] >= 0 {
			return t.level[id], nil
		}
		p := t.parent[id]
		if p == None {
			return 0, fmt.Errorf("routing: node %d does not reach the root", id)
		}
		d, err := depth(p, hops+1)
		if err != nil {
			return 0, err
		}
		t.level[id] = d + 1
		return d + 1, nil
	}
	for child := range parents {
		if _, err := depth(child, 0); err != nil {
			return nil, err
		}
	}
	t.RecomputeRanks()
	return t, nil
}

// FloodConfig parameterizes the simulated setup flood.
type FloodConfig struct {
	// MaxDist restricts membership to nodes within this distance of the
	// root (0 = unlimited); the paper uses 300 m.
	MaxDist float64
	// Jitter is the maximum random delay before a node rebroadcasts the
	// setup request. Larger jitter lets more candidate parents arrive
	// before a node commits, making trees shallower.
	Jitter time.Duration
	// SetupBytes is the on-air size of a setup request.
	SetupBytes int
	// Duration bounds the flood simulation.
	Duration time.Duration
	// Rounds is the number of flood rounds (default 1). Under
	// probabilistic propagation a single flood can strand nodes whose
	// every inbound setup frame faded; in each extra round, spread
	// evenly across Duration, every committed node rebroadcasts its
	// level once more so stragglers still join the tree.
	Rounds int
	// MACCfg and ChannelCfg default to the standard parameters when zero.
	MACCfg     mac.Config
	ChannelCfg phy.Config
}

// DefaultFloodConfig returns the setup used for the paper's experiments.
func DefaultFloodConfig() FloodConfig {
	return FloodConfig{
		MaxDist:    300,
		Jitter:     20 * time.Millisecond,
		SetupBytes: 14,
		Duration:   5 * time.Second,
	}
}

// setupMsg is the flooded setup request carrying the sender's tree level.
type setupMsg struct {
	level int
}

// floodStation is one node's state during the setup flood.
type floodStation struct {
	id        NodeID
	eligible  bool
	committed bool
	bestLvl   int
	bestFrom  NodeID
	mac       *mac.MAC
}

type floodRx struct {
	st  *floodStation
	fn  func(st *floodStation, msg setupMsg, from NodeID)
	mac *mac.MAC
}

func (r *floodRx) Deliver(src phy.NodeID, payload any, bytes int) {
	if msg, ok := payload.(setupMsg); ok {
		r.fn(r.st, msg, src)
	}
}

// BuildFlood constructs the routing tree the way the paper's query service
// does (§5): the root floods a setup request over the CSMA/CA MAC; each
// node picks the lowest-level sender heard before its own (jittered)
// rebroadcast as its parent. Contention and jitter produce the deeper,
// less regular trees observed in the paper's ns-2 runs, in contrast to
// the idealized min-hop trees of BuildBFS.
//
// The flood runs in its own throwaway simulation seeded with seed; the
// resulting tree is returned for use in the real run.
func BuildFlood(seed int64, topo *topology.Topology, root NodeID, cfg FloodConfig) (*Tree, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.SetupBytes <= 0 {
		cfg.SetupBytes = 14
	}
	if cfg.Jitter <= 0 {
		cfg.Jitter = 20 * time.Millisecond
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	macCfg := cfg.MACCfg
	if macCfg.SlotTime == 0 {
		macCfg = mac.DefaultConfig()
	}
	chCfg := cfg.ChannelCfg
	if chCfg.BitRate == 0 {
		// Default the rate parameters but keep the propagation model:
		// the setup flood must cross the same channel as the run itself.
		prop := chCfg.Propagation
		chCfg = phy.DefaultConfig()
		chCfg.Propagation = prop
	}

	eng := sim.New(seed)
	ch, err := phy.NewChannel(eng, topo, chCfg)
	if err != nil {
		return nil, err
	}
	rootPos := topo.Position(root)

	stations := make([]*floodStation, topo.NumNodes())

	onSetup := func(st *floodStation, msg setupMsg, from NodeID) {
		if !st.eligible || st.committed || st.id == root {
			return
		}
		if st.bestFrom == None || msg.level < st.bestLvl {
			first := st.bestFrom == None
			st.bestLvl = msg.level
			st.bestFrom = from
			if first {
				// Commit after a short jitter; whatever lower-level parent
				// arrives in the window still wins.
				delay := time.Duration(eng.Rand().Int63n(int64(cfg.Jitter)))
				eng.After(delay, func() {
					st.committed = true
					st.mac.Send(phy.Broadcast, setupMsg{level: st.bestLvl + 1}, cfg.SetupBytes, nil)
				})
			}
		}
	}

	for i := 0; i < topo.NumNodes(); i++ {
		id := NodeID(i)
		st := &floodStation{
			id:       id,
			eligible: cfg.MaxDist <= 0 || rootPos.InRange(topo.Position(id), cfg.MaxDist),
			bestFrom: None,
		}
		rx := &floodRx{st: st, fn: onSetup}
		r := radio.New(eng, radio.Config{})
		st.mac = mac.New(eng, ch, id, r, macCfg, rx)
		stations[i] = st
	}

	eng.Schedule(0, func() {
		stations[root].committed = true
		stations[root].mac.Send(phy.Broadcast, setupMsg{level: 0}, cfg.SetupBytes, nil)
	})
	// Retry rounds: everyone already in the tree re-announces, giving
	// nodes whose first-round frames all faded another chance to hear a
	// parent. Stations are visited in ID order, so rounds stay
	// deterministic.
	for round := 1; round < cfg.Rounds; round++ {
		at := cfg.Duration * time.Duration(round) / time.Duration(cfg.Rounds)
		eng.Schedule(at, func() {
			for _, st := range stations {
				if !st.committed {
					continue
				}
				lvl := 0
				if st.id != root {
					lvl = st.bestLvl + 1
				}
				st.mac.Send(phy.Broadcast, setupMsg{level: lvl}, cfg.SetupBytes, nil)
			}
		})
	}
	eng.Run(cfg.Duration)

	parents := make(map[NodeID]NodeID)
	for _, st := range stations {
		if st.id != root && st.bestFrom != None {
			parents[st.id] = st.bestFrom
		}
	}
	return FromParents(topo, root, parents)
}
