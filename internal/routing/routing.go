// Package routing builds and maintains the aggregation tree the query
// service routes over.
//
// The paper's setup protocol: the root floods a setup request; every node
// picks, among the neighbors it heard the request from, the one with the
// lowest level as its parent. BuildBFS constructs the equivalent tree
// directly from the connectivity graph ("the routing tree is setup before
// the start of the experiments", §5), with deterministic lowest-ID
// tie-breaking among equal-level candidates.
//
// The tree also tracks each node's rank — the maximum hop count to any of
// its descendants, zero for leaves (§4.2.1) — which the STS traffic shaper
// schedules by, and supports the §4.3 maintenance operations: removing a
// failed node and re-parenting its children.
package routing

import (
	"fmt"
	"sort"

	"github.com/essat/essat/internal/topology"
)

// NodeID aliases the shared node identifier type.
type NodeID = topology.NodeID

// None marks the absence of a parent.
const None NodeID = -1

// Tree is a rooted aggregation tree over a subset of deployment nodes.
type Tree struct {
	topo     *topology.Topology
	root     NodeID
	parent   []NodeID
	children [][]NodeID
	level    []int
	rank     []int
	member   []bool
	alive    []bool
}

// BuildBFS constructs the tree rooted at root covering every node that is
// (a) within maxDist meters of the root (0 means no distance limit) and
// (b) reachable from the root through such nodes. Parents are chosen with
// the paper's policy: the lowest-level neighbor, ties broken by lowest ID.
func BuildBFS(topo *topology.Topology, root NodeID, maxDist float64) (*Tree, error) {
	n := topo.NumNodes()
	if root < 0 || int(root) >= n {
		return nil, fmt.Errorf("routing: root %d out of range [0,%d)", root, n)
	}
	eligible := make([]bool, n)
	rootPos := topo.Position(root)
	for i := 0; i < n; i++ {
		eligible[i] = maxDist <= 0 || rootPos.InRange(topo.Position(NodeID(i)), maxDist)
	}
	if !eligible[root] {
		return nil, fmt.Errorf("routing: root excluded by distance limit")
	}

	t := &Tree{
		topo:     topo,
		root:     root,
		parent:   make([]NodeID, n),
		children: make([][]NodeID, n),
		level:    make([]int, n),
		rank:     make([]int, n),
		member:   make([]bool, n),
		alive:    make([]bool, n),
	}
	for i := range t.parent {
		t.parent[i] = None
		t.level[i] = -1
	}
	t.level[root] = 0
	t.member[root] = true
	t.alive[root] = true

	// Under gray-zone propagation the candidate graph reaches past the
	// nominal range onto links that fade most frames; an idealized
	// min-hop build over it would systematically pick those longest,
	// weakest links as tree edges. Restrict the BFS to nominal-range
	// links — the reliable core the paper's connectivity assumes. With
	// the unit-disc default the two radii coincide and nothing changes.
	grayZone := topo.NeighborRange() > topo.Range()

	queue := []NodeID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Deterministic order: Neighbors already ascends by construction,
		// but sort defensively since parent choice depends on visit order.
		nbs := append([]NodeID(nil), topo.Neighbors(cur)...)
		sort.Slice(nbs, func(i, j int) bool { return nbs[i] < nbs[j] })
		for _, nb := range nbs {
			if !eligible[nb] || t.member[nb] {
				continue
			}
			if grayZone && !topo.Position(cur).InRange(topo.Position(nb), topo.Range()) {
				continue
			}
			t.member[nb] = true
			t.alive[nb] = true
			t.level[nb] = t.level[cur] + 1
			t.parent[nb] = cur
			t.children[cur] = append(t.children[cur], nb)
			queue = append(queue, nb)
		}
	}
	t.RecomputeRanks()
	return t, nil
}

// Clone returns a deep copy of the tree sharing the immutable topology.
// Deployment caches hand each run its own clone: runs mutate their tree
// (failure marking, re-parenting, detachment) and must never corrupt the
// cached template.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		topo:     t.topo,
		root:     t.root,
		parent:   append([]NodeID(nil), t.parent...),
		children: make([][]NodeID, len(t.children)),
		level:    append([]int(nil), t.level...),
		rank:     append([]int(nil), t.rank...),
		member:   append([]bool(nil), t.member...),
		alive:    append([]bool(nil), t.alive...),
	}
	for i, cs := range t.children {
		if len(cs) > 0 {
			c.children[i] = append([]NodeID(nil), cs...)
		}
	}
	return c
}

// Root returns the tree root.
func (t *Tree) Root() NodeID { return t.root }

// IsMember reports whether id participates in the tree (it may have since
// failed; see Alive).
func (t *Tree) IsMember(id NodeID) bool { return t.member[id] }

// Alive reports whether id is a live tree member.
func (t *Tree) Alive(id NodeID) bool { return t.member[id] && t.alive[id] }

// Parent returns id's parent, or None for the root and non-members.
func (t *Tree) Parent(id NodeID) NodeID {
	if !t.member[id] {
		return None
	}
	return t.parent[id]
}

// Children returns id's children. The returned slice must not be modified.
func (t *Tree) Children(id NodeID) []NodeID { return t.children[id] }

// Level returns id's hop distance from the root, or -1 for non-members.
func (t *Tree) Level(id NodeID) int {
	if !t.member[id] {
		return -1
	}
	return t.level[id]
}

// Rank returns id's rank: the maximum hop count to any descendant
// (0 for leaves), or -1 for non-members.
func (t *Tree) Rank(id NodeID) int {
	if !t.member[id] {
		return -1
	}
	return t.rank[id]
}

// MaxRank returns M, the rank of the root.
func (t *Tree) MaxRank() int { return t.rank[t.root] }

// IsLeaf reports whether id is a live member with no live children.
func (t *Tree) IsLeaf(id NodeID) bool {
	if !t.Alive(id) {
		return false
	}
	return len(t.children[id]) == 0
}

// Members returns all live member IDs in ascending order.
func (t *Tree) Members() []NodeID {
	var out []NodeID
	for i := range t.member {
		if t.member[i] && t.alive[i] {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Size returns the number of live members.
func (t *Tree) Size() int {
	n := 0
	for i := range t.member {
		if t.member[i] && t.alive[i] {
			n++
		}
	}
	return n
}

// SubtreeSize returns the number of live nodes in the subtree rooted at
// id, including id itself: the number of source samples an aggregate from
// id can cover.
func (t *Tree) SubtreeSize(id NodeID) int {
	if !t.Alive(id) {
		return 0
	}
	n := 1
	for _, c := range t.children[id] {
		n += t.SubtreeSize(c)
	}
	return n
}

// InSubtree reports whether candidate lies in the subtree rooted at id.
func (t *Tree) InSubtree(id, candidate NodeID) bool {
	for cur := candidate; cur != None; cur = t.parent[cur] {
		if cur == id {
			return true
		}
	}
	return false
}

// Path returns the tree route from a to b: up from a to their lowest
// common ancestor, then down to b. Both endpoints are included. Returns
// nil if either endpoint is not a live member.
func (t *Tree) Path(a, b NodeID) []NodeID {
	if !t.Alive(a) || !t.Alive(b) {
		return nil
	}
	// Ancestors of a, in order, with positions.
	up := []NodeID{a}
	pos := map[NodeID]int{a: 0}
	for cur := a; cur != t.root; {
		cur = t.parent[cur]
		if cur == None {
			return nil // orphaned mid-recovery
		}
		pos[cur] = len(up)
		up = append(up, cur)
	}
	// Walk b upward to the first shared ancestor.
	var down []NodeID
	lca := b
	for {
		if _, ok := pos[lca]; ok {
			break
		}
		down = append(down, lca)
		lca = t.parent[lca]
		if lca == None {
			return nil
		}
	}
	path := append([]NodeID(nil), up[:pos[lca]+1]...)
	for i := len(down) - 1; i >= 0; i-- {
		path = append(path, down[i])
	}
	return path
}

// RecomputeRanks recomputes every member's rank bottom-up. It runs after
// any structural change.
func (t *Tree) RecomputeRanks() {
	var walk func(id NodeID) int
	walk = func(id NodeID) int {
		r := 0
		for _, c := range t.children[id] {
			if cr := walk(c) + 1; cr > r {
				r = cr
			}
		}
		t.rank[id] = r
		return r
	}
	walk(t.root)
}

func (t *Tree) recomputeLevels() {
	var walk func(id NodeID, lvl int)
	walk = func(id NodeID, lvl int) {
		t.level[id] = lvl
		for _, c := range t.children[id] {
			walk(c, lvl+1)
		}
	}
	walk(t.root, 0)
}

// detach removes the child edge parent→child. It does not alter ranks.
func (t *Tree) detach(child NodeID) {
	p := t.parent[child]
	if p == None {
		return
	}
	cs := t.children[p]
	for i, c := range cs {
		if c == child {
			t.children[p] = append(cs[:i:i], cs[i+1:]...)
			break
		}
	}
	t.parent[child] = None
}

// Reparent moves child under newParent, recomputing levels and ranks.
// It fails if the move would create a cycle (newParent inside child's
// subtree), if either node is not a member, if newParent is dead, or if
// the two nodes are not radio neighbors. A child that was (perhaps
// falsely) marked dead is revived: a node initiating a re-parent is
// evidently alive, and this is how a victim of false-positive failure
// detection rejoins the tree.
func (t *Tree) Reparent(child, newParent NodeID) error {
	if child == t.root {
		return fmt.Errorf("routing: cannot reparent the root")
	}
	if !t.member[child] || !t.Alive(newParent) {
		return fmt.Errorf("routing: reparent %d under %d: not usable members", child, newParent)
	}
	t.alive[child] = true
	if t.InSubtree(child, newParent) {
		return fmt.Errorf("routing: reparent %d under %d would create a cycle", child, newParent)
	}
	if !t.topo.Connected(child, newParent) {
		return fmt.Errorf("routing: %d and %d are not radio neighbors", child, newParent)
	}
	t.detach(child)
	t.parent[child] = newParent
	t.children[newParent] = append(t.children[newParent], child)
	t.recomputeLevels()
	t.RecomputeRanks()
	return nil
}

// FindNewParent returns the best new parent for orphan following the
// paper's policy — the live neighboring tree member with the lowest level
// that is outside orphan's own subtree — or None if no candidate exists.
// Nodes in exclude (e.g. the suspected-failed old parent) are skipped.
func (t *Tree) FindNewParent(orphan NodeID, exclude ...NodeID) NodeID {
	best := None
	bestLevel := -1
	for _, nb := range t.topo.Neighbors(orphan) {
		if !t.Alive(nb) || t.InSubtree(orphan, nb) {
			continue
		}
		skip := false
		for _, x := range exclude {
			if nb == x {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		if best == None || t.level[nb] < bestLevel {
			best, bestLevel = nb, t.level[nb]
		}
	}
	return best
}

// DetachChild removes the edge from child's parent to child (the §4.3
// parent-side recovery: "the parent removes its dependency on the failed
// node") and recomputes ranks. The child keeps its subtree and must
// re-parent itself; until then it is orphaned and its reports go nowhere.
func (t *Tree) DetachChild(child NodeID) {
	if child == t.root || !t.member[child] {
		return
	}
	t.detach(child)
	t.RecomputeRanks()
}

// MarkDead records id as failed and removes it from its parent's children
// (the parent-side §4.3 detection). Unlike MarkFailed it leaves id's child
// edges in place: each child discovers the failure through its own
// transmission failures and re-parents itself (child-side recovery).
// Dead nodes are skipped by FindNewParent. No-op for the root or for
// already-dead nodes.
func (t *Tree) MarkDead(id NodeID) {
	if id == t.root || !t.member[id] || !t.alive[id] {
		return
	}
	t.alive[id] = false
	t.detach(id)
	t.RecomputeRanks()
}

// MarkFailed records id as dead and detaches it from its parent. Its
// children become orphans that must be re-parented individually (the
// paper's child-side recovery); they remain members. Returns the orphaned
// children. Marking the root failed panics: the base station is assumed
// powered and reliable.
func (t *Tree) MarkFailed(id NodeID) []NodeID {
	if id == t.root {
		panic("routing: cannot fail the root")
	}
	if !t.member[id] || !t.alive[id] {
		return nil
	}
	t.alive[id] = false
	t.detach(id)
	orphans := append([]NodeID(nil), t.children[id]...)
	for _, c := range orphans {
		t.parent[c] = None
	}
	t.children[id] = nil
	t.RecomputeRanks()
	return orphans
}

// RanksHistogram returns, for each rank value 0..MaxRank, the live member
// IDs with that rank. Used by the per-rank duty-cycle experiment (Fig. 5).
func (t *Tree) RanksHistogram() [][]NodeID {
	out := make([][]NodeID, t.MaxRank()+1)
	for _, id := range t.Members() {
		r := t.rank[id]
		out[r] = append(out[r], id)
	}
	return out
}

// Validate checks structural invariants: parent/child symmetry, levels
// consistent with parents, ranks consistent bottom-up, and acyclicity.
// It returns the first violation found, or nil.
func (t *Tree) Validate() error {
	for i := range t.member {
		id := NodeID(i)
		if !t.member[i] || !t.alive[i] {
			continue
		}
		p := t.parent[id]
		if id == t.root {
			if p != None {
				return fmt.Errorf("root has parent %d", p)
			}
			continue
		}
		if p == None {
			return fmt.Errorf("non-root member %d has no parent", id)
		}
		found := false
		for _, c := range t.children[p] {
			if c == id {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("node %d not in children of its parent %d", id, p)
		}
		if t.level[id] != t.level[p]+1 {
			return fmt.Errorf("node %d level %d, parent level %d", id, t.level[id], t.level[p])
		}
		want := 0
		for _, c := range t.children[id] {
			if r := t.rank[c] + 1; r > want {
				want = r
			}
		}
		if t.rank[id] != want {
			return fmt.Errorf("node %d rank %d, want %d", id, t.rank[id], want)
		}
	}
	// Acyclicity: walking parents from any member reaches the root.
	for i := range t.member {
		if !t.member[i] || !t.alive[i] {
			continue
		}
		steps := 0
		for cur := NodeID(i); cur != t.root; cur = t.parent[cur] {
			if cur == None || steps > len(t.member) {
				return fmt.Errorf("node %d does not reach root", i)
			}
			steps++
		}
	}
	return nil
}
