package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/essat/essat/internal/geom"
	"github.com/essat/essat/internal/topology"
)

func chainTree(t *testing.T, n int) (*topology.Topology, *Tree) {
	t.Helper()
	topo, err := topology.FromPositions(geom.LinePlacement(n, 100), 125)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildBFS(topo, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return topo, tree
}

// yTree builds:
//
//	0 - 1 - 2
//	     \
//	      3
//
// node 1 at (100,0) has children 2 at (200,0) and 3 at (100,100).
func yTree(t *testing.T) (*topology.Topology, *Tree) {
	t.Helper()
	pts := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}, {X: 100, Y: 100}}
	topo, err := topology.FromPositions(pts, 125)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildBFS(topo, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return topo, tree
}

func TestBuildChain(t *testing.T) {
	_, tree := chainTree(t, 5)
	if tree.Root() != 0 {
		t.Fatalf("root = %d", tree.Root())
	}
	for i := 1; i < 5; i++ {
		if got := tree.Parent(NodeID(i)); got != NodeID(i-1) {
			t.Fatalf("Parent(%d) = %d, want %d", i, got, i-1)
		}
		if got := tree.Level(NodeID(i)); got != i {
			t.Fatalf("Level(%d) = %d, want %d", i, got, i)
		}
	}
	// Rank: leaf node 4 has rank 0; root has rank 4 = M.
	if got := tree.Rank(4); got != 0 {
		t.Fatalf("Rank(4) = %d, want 0", got)
	}
	if got := tree.MaxRank(); got != 4 {
		t.Fatalf("MaxRank = %d, want 4", got)
	}
	if !tree.IsLeaf(4) || tree.IsLeaf(2) {
		t.Fatal("leaf detection wrong")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestYTreeRanks(t *testing.T) {
	_, tree := yTree(t)
	// Children of 1: nodes 2 and 3, both leaves.
	if got := len(tree.Children(1)); got != 2 {
		t.Fatalf("node 1 has %d children, want 2", got)
	}
	if tree.Rank(1) != 1 || tree.Rank(0) != 2 {
		t.Fatalf("ranks: r(1)=%d r(0)=%d, want 1, 2", tree.Rank(1), tree.Rank(0))
	}
	if tree.SubtreeSize(1) != 3 || tree.SubtreeSize(0) != 4 {
		t.Fatalf("subtree sizes wrong: %d, %d", tree.SubtreeSize(1), tree.SubtreeSize(0))
	}
}

func TestDistanceLimitExcludesFarNodes(t *testing.T) {
	topo, err := topology.FromPositions(geom.LinePlacement(6, 100), 125)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildBFS(topo, 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes at 0,100,200,300 are within 300m; 400,500 are not.
	if !tree.IsMember(3) || tree.IsMember(4) {
		t.Fatalf("membership wrong: member(3)=%v member(4)=%v", tree.IsMember(3), tree.IsMember(4))
	}
	if tree.Level(4) != -1 || tree.Rank(4) != -1 || tree.Parent(4) != None {
		t.Fatal("non-member should have sentinel level/rank/parent")
	}
	if got := tree.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
}

func TestUnreachableWithinDistanceExcluded(t *testing.T) {
	// Node 2 is within distance but only reachable through node 1 which is
	// excluded by distance: 0 at origin, 1 at 400m, 2 at 500m. Limit 350m
	// excludes 1, making 2 unreachable... use a geometry where hop-through
	// is cut: 0-(200)-X where X within distance but out of radio range.
	pts := []geom.Point{{X: 0}, {X: 300}}
	topo, err := topology.FromPositions(pts, 125)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildBFS(topo, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tree.IsMember(1) {
		t.Fatal("radio-unreachable node became a member")
	}
}

func TestLowestLevelParentSelection(t *testing.T) {
	// Diamond: root 0; nodes 1,2 at level 1; node 3 reachable from both 1
	// and 2. Lowest-ID tie-break picks 1.
	pts := []geom.Point{
		{X: 0, Y: 0},
		{X: 100, Y: 50},
		{X: 100, Y: -50},
		{X: 200, Y: 0},
	}
	topo, err := topology.FromPositions(pts, 125)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildBFS(topo, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Parent(3); got != 1 {
		t.Fatalf("Parent(3) = %d, want 1 (lowest-ID tie-break)", got)
	}
}

func TestReparent(t *testing.T) {
	// Chain 0-1-2-3-4 plus node 5 near node 1; move 5 from 1 to... it is
	// only connected to 1. Use the Y tree: move 3 under 2? They are 141m
	// apart with 125m range: not neighbors. Build a denser square.
	pts := []geom.Point{
		{X: 0, Y: 0},    // 0 root
		{X: 100, Y: 0},  // 1
		{X: 0, Y: 100},  // 2
		{X: 100, Y: 80}, // 3: neighbor of 1 and 2 (within 125 of both)
	}
	topo, err := topology.FromPositions(pts, 125)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildBFS(topo, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Parent(3) != 1 {
		t.Fatalf("precondition: Parent(3) = %d, want 1", tree.Parent(3))
	}
	if err := tree.Reparent(3, 2); err != nil {
		t.Fatalf("Reparent: %v", err)
	}
	if tree.Parent(3) != 2 {
		t.Fatalf("Parent(3) = %d after reparent, want 2", tree.Parent(3))
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after reparent: %v", err)
	}
	// Node 1 became a leaf; its rank must have dropped to 0.
	if got := tree.Rank(1); got != 0 {
		t.Fatalf("Rank(1) = %d after losing its child, want 0", got)
	}
}

func TestReparentRejectsCycle(t *testing.T) {
	_, tree := chainTree(t, 3)
	if err := tree.Reparent(1, 2); err == nil {
		t.Fatal("reparenting a node under its own descendant must fail")
	}
}

func TestReparentRejectsNonNeighbor(t *testing.T) {
	_, tree := chainTree(t, 4)
	if err := tree.Reparent(3, 0); err == nil {
		t.Fatal("reparenting across >range distance must fail")
	}
}

func TestReparentRejectsRoot(t *testing.T) {
	_, tree := chainTree(t, 3)
	if err := tree.Reparent(0, 1); err == nil {
		t.Fatal("reparenting the root must fail")
	}
}

func TestMarkFailed(t *testing.T) {
	_, tree := yTree(t)
	orphans := tree.MarkFailed(1)
	if len(orphans) != 2 {
		t.Fatalf("orphans = %v, want [2 3]", orphans)
	}
	if tree.Alive(1) {
		t.Fatal("failed node still alive")
	}
	if tree.IsMember(1) != true {
		t.Fatal("failed node should remain a (dead) member for bookkeeping")
	}
	if tree.Size() != 3 {
		t.Fatalf("Size = %d after failure, want 3", tree.Size())
	}
	for _, o := range orphans {
		if tree.Parent(o) != None {
			t.Fatalf("orphan %d still has parent %d", o, tree.Parent(o))
		}
	}
}

func TestMarkFailedRootPanics(t *testing.T) {
	_, tree := chainTree(t, 3)
	defer func() {
		if recover() == nil {
			t.Error("failing the root did not panic")
		}
	}()
	tree.MarkFailed(0)
}

func TestFindNewParent(t *testing.T) {
	// Square mesh where node 3 can fall back from 1 to 2.
	pts := []geom.Point{
		{X: 0, Y: 0},
		{X: 100, Y: 0},
		{X: 0, Y: 100},
		{X: 100, Y: 80},
	}
	topo, err := topology.FromPositions(pts, 125)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildBFS(topo, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree.MarkFailed(1)
	np := tree.FindNewParent(3)
	if np != 2 {
		t.Fatalf("FindNewParent(3) = %d, want 2", np)
	}
	if err := tree.Reparent(3, np); err != nil {
		t.Fatalf("Reparent onto found parent: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after recovery: %v", err)
	}
}

func TestFindNewParentNoCandidate(t *testing.T) {
	_, tree := chainTree(t, 3)
	tree.MarkFailed(1)
	if got := tree.FindNewParent(2); got != None {
		t.Fatalf("FindNewParent = %d, want None (only neighbor is dead)", got)
	}
}

func TestRanksHistogram(t *testing.T) {
	_, tree := chainTree(t, 4)
	h := tree.RanksHistogram()
	if len(h) != 4 {
		t.Fatalf("histogram has %d rank buckets, want 4", len(h))
	}
	for r, ids := range h {
		if len(ids) != 1 {
			t.Fatalf("rank %d has %d nodes, want 1 on a chain", r, len(ids))
		}
	}
}

// TestTreeInvariantsProperty builds trees over random deployments and
// checks Validate plus the rank/level relationships hold.
func TestTreeInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo, err := topology.NewRandom(rng, topology.Config{NumNodes: 40, AreaSide: 400, Range: 125})
		if err != nil {
			return false
		}
		root := topo.CentralNode()
		tree, err := BuildBFS(topo, root, 300)
		if err != nil {
			return false
		}
		if err := tree.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Every member's rank is strictly less than its parent's, and
		// rank + level <= M + ... (rank of child < rank of parent).
		for _, id := range tree.Members() {
			if id == tree.Root() {
				continue
			}
			if tree.Rank(id) >= tree.Rank(tree.Parent(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBadRootErrors(t *testing.T) {
	topo, _ := topology.FromPositions(geom.LinePlacement(3, 100), 125)
	if _, err := BuildBFS(topo, 99, 0); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}
