package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/essat/essat/internal/geom"
	"github.com/essat/essat/internal/topology"
)

func TestPathOnChain(t *testing.T) {
	_, tree := chainTree(t, 5)
	got := tree.Path(4, 2)
	want := []NodeID{4, 3, 2}
	if len(got) != len(want) {
		t.Fatalf("Path(4,2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Path(4,2) = %v, want %v", got, want)
		}
	}
}

func TestPathThroughLCA(t *testing.T) {
	_, tree := yTree(t)
	// 2 and 3 are siblings under 1: path goes 2 → 1 → 3.
	got := tree.Path(2, 3)
	want := []NodeID{2, 1, 3}
	if len(got) != 3 || got[0] != 2 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("Path(2,3) = %v, want %v", got, want)
	}
	// Reverse direction mirrors.
	rev := tree.Path(3, 2)
	if len(rev) != 3 || rev[0] != 3 || rev[2] != 2 {
		t.Fatalf("Path(3,2) = %v", rev)
	}
}

func TestPathToAncestorAndSelfEdge(t *testing.T) {
	_, tree := chainTree(t, 4)
	got := tree.Path(3, 0)
	if len(got) != 4 || got[0] != 3 || got[3] != 0 {
		t.Fatalf("Path(3,0) = %v", got)
	}
	// Path to self: single node.
	self := tree.Path(2, 2)
	if len(self) != 1 || self[0] != 2 {
		t.Fatalf("Path(2,2) = %v", self)
	}
}

func TestPathDeadEndpoint(t *testing.T) {
	_, tree := yTree(t)
	tree.MarkDead(3)
	if got := tree.Path(2, 3); got != nil {
		t.Fatalf("Path to dead node = %v, want nil", got)
	}
}

// TestPathProperty: on random trees, every returned path is a valid walk
// along tree edges connecting the endpoints, visiting no node twice.
func TestPathProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo, err := topology.NewRandom(rng, topology.Config{NumNodes: 30, AreaSide: 350, Range: 125})
		if err != nil {
			return false
		}
		tree, err := BuildBFS(topo, topo.CentralNode(), 0)
		if err != nil {
			return false
		}
		members := tree.Members()
		if len(members) < 2 {
			return true
		}
		for trial := 0; trial < 10; trial++ {
			a := members[rng.Intn(len(members))]
			b := members[rng.Intn(len(members))]
			path := tree.Path(a, b)
			if path == nil || path[0] != a || path[len(path)-1] != b {
				return false
			}
			seen := map[NodeID]bool{}
			for i, id := range path {
				if seen[id] {
					return false
				}
				seen[id] = true
				if i == 0 {
					continue
				}
				prev := path[i-1]
				// Consecutive nodes must share a tree edge.
				if tree.Parent(id) != prev && tree.Parent(prev) != id {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPathUsesGeometry(t *testing.T) {
	// Ensure geom import is exercised for this file's fixtures.
	_ = geom.Point{}
}
