package routing

import (
	"math/rand"
	"testing"

	"github.com/essat/essat/internal/geom"
	"github.com/essat/essat/internal/topology"
)

func TestFromParentsChain(t *testing.T) {
	topo, err := topology.FromPositions(geom.LinePlacement(4, 100), 125)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := FromParents(topo, 0, map[NodeID]NodeID{1: 0, 2: 1, 3: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Level(3) != 3 || tree.Rank(0) != 3 {
		t.Fatalf("levels/ranks wrong: level(3)=%d rank(0)=%d", tree.Level(3), tree.Rank(0))
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFromParentsRejectsNonNeighborEdge(t *testing.T) {
	topo, _ := topology.FromPositions(geom.LinePlacement(4, 100), 125)
	if _, err := FromParents(topo, 0, map[NodeID]NodeID{3: 0}); err == nil {
		t.Fatal("edge between nodes 300m apart accepted")
	}
}

func TestFromParentsRejectsCycle(t *testing.T) {
	topo, _ := topology.FromPositions(geom.LinePlacement(4, 100), 125)
	if _, err := FromParents(topo, 0, map[NodeID]NodeID{1: 2, 2: 1}); err == nil {
		t.Fatal("parent cycle accepted")
	}
}

func TestFromParentsRejectsOrphanChain(t *testing.T) {
	topo, _ := topology.FromPositions(geom.LinePlacement(4, 100), 125)
	// 3's chain (3→2) never reaches the root.
	if _, err := FromParents(topo, 0, map[NodeID]NodeID{3: 2}); err == nil {
		t.Fatal("orphan chain accepted")
	}
}

func TestFromParentsRejectsRootParent(t *testing.T) {
	topo, _ := topology.FromPositions(geom.LinePlacement(2, 100), 125)
	if _, err := FromParents(topo, 0, map[NodeID]NodeID{0: 1}); err == nil {
		t.Fatal("root with a parent accepted")
	}
}

func TestBuildFloodChain(t *testing.T) {
	topo, err := topology.FromPositions(geom.LinePlacement(5, 100), 125)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildFlood(1, topo, 0, DefaultFloodConfig())
	if err != nil {
		t.Fatal(err)
	}
	// On a chain there is exactly one possible tree.
	if tree.Size() != 4 { // 300m limit excludes nodes 4 (400m)
		t.Fatalf("Size = %d, want 4 (300m limit)", tree.Size())
	}
	for i := 1; i <= 3; i++ {
		if tree.Parent(NodeID(i)) != NodeID(i-1) {
			t.Fatalf("Parent(%d) = %d", i, tree.Parent(NodeID(i)))
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuildFloodNoDistanceLimit(t *testing.T) {
	topo, _ := topology.FromPositions(geom.LinePlacement(5, 100), 125)
	cfg := DefaultFloodConfig()
	cfg.MaxDist = 0
	tree, err := BuildFlood(1, topo, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 5 {
		t.Fatalf("Size = %d, want all 5", tree.Size())
	}
}

func TestBuildFloodRandomDeploymentsProduceValidTrees(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		topo, err := topology.NewRandom(rng, topology.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		root := topo.CentralNode()
		tree, err := BuildFlood(seed, topo, root, DefaultFloodConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The flood should cover nearly every node within 300m of the root.
		eligible := len(topo.WithinDistance(root, 300)) + 1
		if tree.Size() < eligible*8/10 {
			t.Errorf("seed %d: tree covers %d of %d eligible nodes", seed, tree.Size(), eligible)
		}
		// Flood trees are at least as deep as the min-hop tree.
		bfs, err := BuildBFS(topo, root, 300)
		if err != nil {
			t.Fatal(err)
		}
		if tree.MaxRank() < bfs.MaxRank() {
			t.Errorf("seed %d: flood tree shallower (%d) than BFS (%d)?", seed, tree.MaxRank(), bfs.MaxRank())
		}
	}
}

func TestBuildFloodDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	topo, err := topology.NewRandom(rng, topology.Config{NumNodes: 40, AreaSide: 400, Range: 125})
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildFlood(7, topo, 0, DefaultFloodConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildFlood(7, topo, 0, DefaultFloodConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < topo.NumNodes(); i++ {
		if a.Parent(NodeID(i)) != b.Parent(NodeID(i)) {
			t.Fatalf("node %d parent differs across identical floods", i)
		}
	}
}
