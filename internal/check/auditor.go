// Package check implements the cross-layer invariant auditor: an
// optional, pure observer of a running simulation that validates
// physics and protocol rules the hot-path rewrites must never break,
// and folds everything it sees into a canonical trace digest.
//
// The auditor hooks into four layers through their observer interfaces
// (sim.Observer, phy.Observer, mac.Observer, core.SleepObserver), into
// every radio via the existing Subscribe listener, and into the root's
// metric sink via WrapSink. All hooks run synchronously on the single
// simulation goroutine, in event order, and touch nothing: no events
// are scheduled, no random numbers drawn, no layer state mutated. A run
// with the auditor enabled is therefore byte-identical to the same run
// without it — which the golden-trace regression suite depends on.
//
// Invariants checked:
//
//   - scheduler: events fire monotonically in (at, seq), never at a
//     negative time (rule "event-order");
//   - PHY: no frame leaves a radio that is sleeping, transitioning, or
//     crashed/disabled (rule "tx-awake");
//   - MAC: no data transmission while the station's NAV is set (rule
//     "nav-respected");
//   - radio/energy: per-state time accounting is non-negative and sums
//     to elapsed time, and cumulative energy never decreases (rules
//     "time-conserved", "energy-monotone");
//   - Safe Sleep: the radio only sleeps through free periods strictly
//     longer than the break-even time (rule "break-even");
//   - query: reports reaching the root belong to a registered query,
//     to a non-negative interval, and never arrive before their
//     interval's nominal start (rule "report-registered").
//
// The digest is an FNV-1a 64-bit hash over a canonical record stream:
// every fired event's (at, seq), every transmission and delivery, every
// radio transition, and every root-side report. Two runs with the same
// digest executed the same trace; checked-in golden digests turn that
// into a regression suite (see testdata/golden.json).
package check

import (
	"fmt"
	"time"

	"github.com/essat/essat/internal/core"
	"github.com/essat/essat/internal/mac"
	"github.com/essat/essat/internal/phy"
	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
)

// Violation is one observed invariant breach.
type Violation struct {
	// At is the virtual time of the breach.
	At time.Duration
	// Rule names the invariant ("tx-awake", "event-order", ...).
	Rule string
	// Detail describes the breach.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%v [%s] %s", v.At, v.Rule, v.Detail)
}

// Summary is the auditor's end-of-run report, attached to a Result.
type Summary struct {
	// Digest is the canonical trace digest (16 hex digits, FNV-1a 64).
	Digest string
	// Events is the number of scheduler events audited.
	Events uint64
	// Violations holds the first retained breaches (capped); Total is
	// the full count.
	Violations []Violation
	Total      int
}

// maxRetained bounds the violations kept verbatim; the total keeps
// counting past it.
const maxRetained = 32

// record type tags for the digest stream.
const (
	tagEvent byte = iota + 1
	tagTx
	tagDeliver
	tagRadio
	tagReport
	tagInterval
)

// Auditor validates cross-layer invariants and accumulates the trace
// digest. Create one per run with New, wire it via the layer observer
// hooks, and read Summary after the run.
type Auditor struct {
	clock func() time.Duration

	h          uint64 // running FNV-1a 64 state
	events     uint64
	violations []Violation
	total      int

	started      bool
	lastAt       time.Duration
	lastSeq      uint64
	everRegister map[query.ID]query.Spec
	radios       []watchedRadio
}

type watchedRadio struct {
	id         query.NodeID
	r          *radio.Radio
	lastEnergy float64
}

// The auditor implements every layer's observer interface.
var (
	_ sim.Observer       = (*Auditor)(nil)
	_ phy.Observer       = (*Auditor)(nil)
	_ mac.Observer       = (*Auditor)(nil)
	_ core.SleepObserver = (*Auditor)(nil)
)

// New returns an auditor timestamping violations with clock.
func New(clock func() time.Duration) *Auditor {
	const fnvOffset = 14695981039346656037
	return &Auditor{
		clock:        clock,
		h:            fnvOffset,
		everRegister: make(map[query.ID]query.Spec),
	}
}

// violate records a breach at the current clock reading.
func (a *Auditor) violate(rule, format string, args ...any) {
	a.violateAt(a.clock(), rule, format, args...)
}

// violateAt records a breach at an explicit time — used where the
// breach's own timestamp is more precise than the engine clock (the
// event-order hook runs before the clock advances to the popped event).
func (a *Auditor) violateAt(at time.Duration, rule, format string, args ...any) {
	a.total++
	if len(a.violations) < maxRetained {
		a.violations = append(a.violations, Violation{
			At:     at,
			Rule:   rule,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// mix folds a tagged record of unsigned values into the digest.
func (a *Auditor) mix(tag byte, vals ...uint64) {
	const fnvPrime = 1099511628211
	h := a.h
	h = (h ^ uint64(tag)) * fnvPrime
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * fnvPrime
			v >>= 8
		}
	}
	a.h = h
}

// Summary returns the end-of-run report.
func (a *Auditor) Summary() *Summary {
	return &Summary{
		Digest:     fmt.Sprintf("%016x", a.h),
		Events:     a.events,
		Violations: append([]Violation(nil), a.violations...),
		Total:      a.total,
	}
}

// Violations returns the retained breaches.
func (a *Auditor) Violations() []Violation { return a.violations }

// Clean reports whether no invariant was breached.
func (a *Auditor) Clean() bool { return a.total == 0 }

// Digest returns the current trace digest.
func (a *Auditor) Digest() string { return fmt.Sprintf("%016x", a.h) }

// --- scheduler -------------------------------------------------------------

// EventFired implements sim.Observer: pops must be monotone in
// (at, seq) — the timer wheel's cascade and overflow promotion must
// never reorder or time-travel.
func (a *Auditor) EventFired(at time.Duration, seq uint64) {
	a.events++
	a.mix(tagEvent, uint64(at), seq)
	if at < 0 {
		a.violateAt(at, "event-order", "event at negative time %v", at)
	}
	if a.started {
		if at < a.lastAt || (at == a.lastAt && seq <= a.lastSeq) {
			a.violateAt(at, "event-order", "pop (%v, seq %d) after (%v, seq %d)", at, seq, a.lastAt, a.lastSeq)
		}
	}
	a.started = true
	a.lastAt, a.lastSeq = at, seq
}

// --- PHY -------------------------------------------------------------------

// TxStarted implements phy.Observer: a frame may only leave a powered,
// enabled radio (Idle or Rx at the instant transmission begins).
func (a *Auditor) TxStarted(f *phy.Frame, state radio.State, enabled bool) {
	a.mix(tagTx, uint64(f.ID), uint64(int64(f.Src)), uint64(int64(f.Dst)), uint64(f.Bytes))
	if !enabled {
		a.violate("tx-awake", "node %d transmitting while disabled/crashed", f.Src)
	}
	if state != radio.Idle && state != radio.Rx {
		a.violate("tx-awake", "node %d transmitting with radio %v", f.Src, state)
	}
}

// Delivered implements phy.Observer (digest only: deliveries have no
// invariant of their own beyond what the radio accounting covers).
func (a *Auditor) Delivered(f *phy.Frame, dst phy.NodeID) {
	a.mix(tagDeliver, uint64(f.ID), uint64(int64(dst)))
}

// --- MAC -------------------------------------------------------------------

// DataTransmit implements mac.Observer: the virtual-carrier-sense
// deadline must have passed before a station contends its data frame.
func (a *Auditor) DataTransmit(id phy.NodeID, now, navUntil time.Duration) {
	if now < navUntil {
		a.violate("nav-respected", "node %d transmitting at %v inside NAV (until %v)", id, now, navUntil)
	}
}

// --- Safe Sleep ------------------------------------------------------------

// Slept implements core.SleepObserver: Safe Sleep's own rule is to
// sleep only through free periods strictly longer than tBE.
func (a *Auditor) Slept(node query.NodeID, now, twakeup, breakEven time.Duration) {
	if twakeup-now <= breakEven {
		a.violate("break-even", "node %d sleeping through %v <= tBE %v", node, twakeup-now, breakEven)
	}
}

// --- radio / energy --------------------------------------------------------

// WatchRadio subscribes the auditor to a radio's state changes: every
// transition is digested, time accounting re-validated, and cumulative
// energy checked monotone. Call before the simulation starts.
func (a *Auditor) WatchRadio(id query.NodeID, r *radio.Radio, profile radio.PowerProfile) {
	a.radios = append(a.radios, watchedRadio{id: id, r: r})
	idx := len(a.radios) - 1
	r.Subscribe(func(old, new radio.State) {
		a.radioChanged(idx, old, new, profile)
	})
}

func (a *Auditor) radioChanged(idx int, old, new radio.State, profile radio.PowerProfile) {
	w := &a.radios[idx]
	now := a.clock()
	a.mix(tagRadio, uint64(int64(w.id)), uint64(old), uint64(new), uint64(now))

	// Time conservation: the per-state ledger must be non-negative and
	// sum exactly to elapsed virtual time.
	var sum time.Duration
	for s := radio.Off; s <= radio.TurningOff; s++ {
		d := w.r.TimeIn(s)
		if d < 0 {
			a.violate("time-conserved", "node %d spent negative time %v in %v", w.id, d, s)
		}
		sum += d
	}
	if sum != now {
		a.violate("time-conserved", "node %d state times sum to %v at %v", w.id, sum, now)
	}

	// Energy: consumption is a non-decreasing, non-negative integral.
	e := w.r.Energy(profile)
	if e < w.lastEnergy || e < 0 {
		a.violate("energy-monotone", "node %d energy fell from %g J to %g J", w.id, w.lastEnergy, e)
	}
	w.lastEnergy = e
}

// --- query reports ---------------------------------------------------------

// RegisterQuery tells the auditor a query exists. Queries registered
// mid-run by the dynamics layer are added the same way; deregistered
// queries stay known, since late pass-through reports may legitimately
// arrive after removal.
func (a *Auditor) RegisterQuery(spec query.Spec) {
	a.everRegister[spec.ID] = spec
}

// WrapSink interposes the auditor between the root agent and the metric
// sink, validating every root-side observation before forwarding it
// unchanged. inner may be nil (audit-only sink).
func (a *Auditor) WrapSink(inner query.Sink) query.Sink {
	return &sinkTap{a: a, inner: inner}
}

type sinkTap struct {
	a     *Auditor
	inner query.Sink
}

func (t *sinkTap) ReportArrived(q query.ID, k int, latency time.Duration, coverage int) {
	t.a.checkReport("report", q, k, latency, coverage)
	t.a.mix(tagReport, uint64(int64(q)), uint64(int64(k)), uint64(latency), uint64(int64(coverage)))
	if t.inner != nil {
		t.inner.ReportArrived(q, k, latency, coverage)
	}
}

func (t *sinkTap) IntervalClosed(q query.ID, k int, latency time.Duration, coverage int) {
	t.a.checkReport("interval", q, k, latency, coverage)
	t.a.mix(tagInterval, uint64(int64(q)), uint64(int64(k)), uint64(latency), uint64(int64(coverage)))
	if t.inner != nil {
		t.inner.IntervalClosed(q, k, latency, coverage)
	}
}

func (a *Auditor) checkReport(what string, q query.ID, k int, latency time.Duration, coverage int) {
	spec, known := a.everRegister[q]
	if !known {
		a.violate("report-registered", "%s for unregistered query %d", what, q)
		return
	}
	if k < 0 {
		a.violate("report-registered", "%s for query %d with negative interval %d", what, q, k)
		return
	}
	if latency < 0 {
		a.violate("report-registered", "%s for query %d interval %d arrived %v before its start %v",
			what, q, k, -latency, spec.IntervalStart(k))
	}
	if coverage < 1 {
		a.violate("report-registered", "%s for query %d interval %d with coverage %d", what, q, k, coverage)
	}
}
