package check

import (
	"fmt"
	"strconv"
)

// maxRetained mirrors the auditor's violation retention cap for the
// combined report.
const combineMaxRetained = 32

// Combine folds the per-shard summaries of a parallel run into one
// report. Each shard's auditor observed a sequential sub-trace; the
// combined digest is FNV-1a over the shard digests in shard order, so
// it is deterministic for a fixed (seed, shard count, lookahead) and
// changes if any shard's trace changes. A single summary is returned
// unchanged — a 1-shard combination is its shard's report.
func Combine(parts []*Summary) *Summary {
	if len(parts) == 1 {
		return parts[0]
	}
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	out := &Summary{}
	for _, p := range parts {
		d, err := strconv.ParseUint(p.Digest, 16, 64)
		if err != nil {
			// A malformed digest cannot silently vanish from the fold.
			d = ^uint64(0)
		}
		for i := 0; i < 8; i++ {
			h = (h ^ (d & 0xff)) * fnvPrime
			d >>= 8
		}
		out.Events += p.Events
		out.Total += p.Total
		for _, v := range p.Violations {
			if len(out.Violations) < combineMaxRetained {
				out.Violations = append(out.Violations, v)
			}
		}
	}
	out.Digest = fmt.Sprintf("%016x", h)
	return out
}
