package check

import (
	"strings"
	"testing"
	"time"

	"github.com/essat/essat/internal/phy"
	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
)

func newTestAuditor() (*Auditor, *sim.Engine) {
	eng := sim.New(1)
	return New(eng.Now), eng
}

// TestInvariantsFire drives each auditor hook with a deliberately
// corrupted observation and verifies the matching rule trips — the
// auditor must not only pass clean runs, it must actually catch broken
// ones.
func TestInvariantsFire(t *testing.T) {
	frame := &phy.Frame{ID: 7, Src: 3, Dst: 4, Bytes: 52}
	spec := query.Spec{ID: 1, Period: time.Second, Phase: 100 * time.Millisecond}

	cases := []struct {
		name    string
		rule    string
		corrupt func(a *Auditor)
	}{
		{
			name: "event pops travel back in time",
			rule: "event-order",
			corrupt: func(a *Auditor) {
				a.EventFired(20*time.Millisecond, 5)
				a.EventFired(10*time.Millisecond, 6)
			},
		},
		{
			name: "event pops repeat a (at, seq) pair",
			rule: "event-order",
			corrupt: func(a *Auditor) {
				a.EventFired(20*time.Millisecond, 5)
				a.EventFired(20*time.Millisecond, 5)
			},
		},
		{
			name: "event at negative time",
			rule: "event-order",
			corrupt: func(a *Auditor) {
				a.EventFired(-time.Millisecond, 0)
			},
		},
		{
			name: "transmission from a powered-down radio",
			rule: "tx-awake",
			corrupt: func(a *Auditor) {
				a.TxStarted(frame, radio.Off, true)
			},
		},
		{
			name: "transmission from a disabled (crashed) station",
			rule: "tx-awake",
			corrupt: func(a *Auditor) {
				a.TxStarted(frame, radio.Idle, false)
			},
		},
		{
			name: "transmission while transitioning",
			rule: "tx-awake",
			corrupt: func(a *Auditor) {
				a.TxStarted(frame, radio.TurningOn, true)
			},
		},
		{
			name: "data transmit inside the NAV",
			rule: "nav-respected",
			corrupt: func(a *Auditor) {
				a.DataTransmit(3, 10*time.Millisecond, 12*time.Millisecond)
			},
		},
		{
			name: "sleep through a sub-break-even gap",
			rule: "break-even",
			corrupt: func(a *Auditor) {
				a.Slept(3, 0, 2*time.Millisecond, 3*time.Millisecond)
			},
		},
		{
			name: "report from an unregistered query",
			rule: "report-registered",
			corrupt: func(a *Auditor) {
				a.WrapSink(nil).ReportArrived(99, 0, time.Millisecond, 1)
			},
		},
		{
			name: "report for a negative interval",
			rule: "report-registered",
			corrupt: func(a *Auditor) {
				a.RegisterQuery(spec)
				a.WrapSink(nil).ReportArrived(spec.ID, -1, time.Millisecond, 1)
			},
		},
		{
			name: "report arriving before its interval started",
			rule: "report-registered",
			corrupt: func(a *Auditor) {
				a.RegisterQuery(spec)
				a.WrapSink(nil).ReportArrived(spec.ID, 3, -time.Millisecond, 1)
			},
		},
		{
			name: "interval closed with zero coverage",
			rule: "report-registered",
			corrupt: func(a *Auditor) {
				a.RegisterQuery(spec)
				a.WrapSink(nil).IntervalClosed(spec.ID, 0, time.Millisecond, 0)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, _ := newTestAuditor()
			tc.corrupt(a)
			if a.Clean() {
				t.Fatalf("corrupted observation did not trip any invariant")
			}
			found := false
			for _, v := range a.Violations() {
				if v.Rule == tc.rule {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("expected rule %q to fire, got %v", tc.rule, a.Violations())
			}
		})
	}
}

// TestCleanObservationsStayClean feeds the auditor a well-formed
// observation sequence and expects no violations.
func TestCleanObservationsStayClean(t *testing.T) {
	a, _ := newTestAuditor()
	spec := query.Spec{ID: 1, Period: time.Second}
	a.RegisterQuery(spec)
	a.EventFired(0, 0)
	a.EventFired(0, 1)
	a.EventFired(time.Millisecond, 2)
	a.TxStarted(&phy.Frame{ID: 1, Src: 2, Dst: 3, Bytes: 52}, radio.Idle, true)
	a.DataTransmit(2, 10*time.Millisecond, 10*time.Millisecond) // NAV expired exactly now: legal
	a.Slept(2, 0, 10*time.Millisecond, 3*time.Millisecond)
	sink := a.WrapSink(nil)
	sink.ReportArrived(1, 0, 50*time.Millisecond, 3)
	sink.IntervalClosed(1, 0, 60*time.Millisecond, 3)
	if !a.Clean() {
		t.Fatalf("clean sequence produced violations: %v", a.Violations())
	}
	if a.Summary().Events != 3 {
		t.Fatalf("Events = %d, want 3", a.Summary().Events)
	}
}

// TestRadioWatchCatchesAccountingDrift builds a real radio, then
// verifies the watcher accepts its (correct) accounting, and that the
// digest reflects transitions.
func TestRadioWatchCatchesAccountingDrift(t *testing.T) {
	a, eng := newTestAuditor()
	r := radio.New(eng, radio.Config{TurnOnDelay: time.Millisecond, TurnOffDelay: time.Millisecond})
	a.WatchRadio(5, r, radio.Mica2Power())
	eng.Schedule(10*time.Millisecond, r.TurnOff)
	eng.Schedule(30*time.Millisecond, r.TurnOn)
	eng.Run(50 * time.Millisecond)
	if !a.Clean() {
		t.Fatalf("correct radio accounting flagged: %v", a.Violations())
	}
	if a.Digest() == New(eng.Now).Digest() {
		t.Fatal("radio transitions did not reach the digest")
	}
}

// TestDigestDeterministicAndSensitive: identical observation streams
// hash identically; a one-record difference changes the hash.
func TestDigestDeterministicAndSensitive(t *testing.T) {
	feed := func(n int) string {
		a, _ := newTestAuditor()
		for i := 0; i < n; i++ {
			a.EventFired(time.Duration(i)*time.Millisecond, uint64(i))
		}
		return a.Digest()
	}
	if feed(10) != feed(10) {
		t.Fatal("identical streams produced different digests")
	}
	if feed(10) == feed(11) {
		t.Fatal("different streams produced identical digests")
	}
}

// TestViolationCapAndTotal: retained violations are capped, the total
// keeps counting, and Summary carries both.
func TestViolationCapAndTotal(t *testing.T) {
	a, _ := newTestAuditor()
	for i := 0; i < maxRetained+10; i++ {
		a.TxStarted(&phy.Frame{ID: uint64(i), Src: 1, Dst: 2, Bytes: 1}, radio.Off, true)
	}
	s := a.Summary()
	if len(s.Violations) != maxRetained {
		t.Fatalf("retained %d violations, want cap %d", len(s.Violations), maxRetained)
	}
	if s.Total != maxRetained+10 {
		t.Fatalf("Total = %d, want %d", s.Total, maxRetained+10)
	}
	if !strings.Contains(s.Violations[0].String(), "tx-awake") {
		t.Fatalf("violation string %q missing rule", s.Violations[0])
	}
}
