package core

import (
	"fmt"
	"time"

	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/sim"
)

// This file implements the second communication pattern sketched in §3:
// periodic peer-to-peer flows, as used by distributed signal-processing
// applications where "multiple sensor nodes sample and exchange data at
// application-specific sampling frequencies for data fusion."
//
// A peer flow is routed along the tree (up from the source to the lowest
// common ancestor, then down to the destination) with STS-like slotting:
// the node at hop h of the path relays message k during the slot starting
// at φ + k·P + l·h, and Safe Sleep wakes each relay just in time for the
// previous hop's slot. Like the collection path, late messages are
// relayed immediately.

// P2PSpec describes one periodic peer-to-peer flow.
type P2PSpec struct {
	// ID must be unique across queries, dissemination and peer flows at a
	// node: Safe Sleep bookkeeping shares one ID space.
	ID query.ID
	// Src produces a message every Period starting at Phase; Dst consumes.
	Src, Dst query.NodeID
	Period   time.Duration
	Phase    time.Duration
	// HopAllowance is l, the per-hop relay slot. Zero selects 20 ms.
	HopAllowance time.Duration
	// Bytes is the on-air message size. Zero selects 52.
	Bytes int
}

func (s P2PSpec) validate() error {
	if s.Period <= 0 {
		return fmt.Errorf("p2p %d: period must be positive", s.ID)
	}
	if s.Phase < 0 {
		return fmt.Errorf("p2p %d: negative phase", s.ID)
	}
	if s.Src == s.Dst {
		return fmt.Errorf("p2p %d: src == dst", s.ID)
	}
	return nil
}

func (s P2PSpec) hop() time.Duration {
	if s.HopAllowance <= 0 {
		return 20 * time.Millisecond
	}
	return s.HopAllowance
}

func (s P2PSpec) bytes() int {
	if s.Bytes <= 0 {
		return 52
	}
	return s.Bytes
}

func (s P2PSpec) releaseTime(k int) time.Duration {
	return s.Phase + time.Duration(k)*s.Period
}

// P2PMessage is one peer-to-peer payload in flight.
type P2PMessage struct {
	Flow     query.ID
	Interval int
	Value    float64
}

// P2PStats counts peer-flow outcomes at one node.
type P2PStats struct {
	// Originated counts messages this node generated as a source.
	Originated uint64
	// Relayed counts confirmed next-hop deliveries.
	Relayed uint64
	// RelayFailures counts next-hop deliveries that exhausted retries.
	RelayFailures uint64
	// Consumed counts messages accepted as the destination.
	Consumed uint64
	// LatencySum accumulates release→consumption delay over Consumed.
	LatencySum time.Duration
}

type p2pFlow struct {
	spec P2PSpec
	// path is the full route (src..dst); myIdx is this node's hop index,
	// -1 if the node is not on the path.
	path  []query.NodeID
	myIdx int
	got   map[int]bool
}

// P2P runs the peer-to-peer pattern at one node.
type P2P struct {
	eng     *sim.Engine
	env     DisseminationEnv
	ss      *SafeSleep
	deliver func(msg *P2PMessage)
	flows   map[query.ID]*p2pFlow
	stats   P2PStats
}

// NewP2P creates the peer-flow handler; deliver (which may be nil)
// receives messages consumed at the destination.
func NewP2P(eng *sim.Engine, env DisseminationEnv, ss *SafeSleep, deliver func(*P2PMessage)) *P2P {
	return &P2P{eng: eng, env: env, ss: ss, deliver: deliver, flows: make(map[query.ID]*p2pFlow)}
}

// Stats returns a copy of the node's peer-flow counters.
func (p *P2P) Stats() P2PStats { return p.stats }

// Register installs a flow with its routed path (computed by the caller
// from the tree). Nodes off the path ignore the flow.
func (p *P2P) Register(spec P2PSpec, path []query.NodeID) error {
	if err := spec.validate(); err != nil {
		return err
	}
	if _, dup := p.flows[spec.ID]; dup {
		return fmt.Errorf("p2p %d: already registered", spec.ID)
	}
	if len(path) < 2 || path[0] != spec.Src || path[len(path)-1] != spec.Dst {
		return fmt.Errorf("p2p %d: path must run src→dst", spec.ID)
	}
	self := p.env.Self()
	fl := &p2pFlow{spec: spec, path: path, myIdx: -1, got: make(map[int]bool)}
	for i, id := range path {
		if id == self {
			fl.myIdx = i
			break
		}
	}
	p.flows[spec.ID] = fl
	if fl.myIdx < 0 {
		return nil // not on the path
	}
	switch fl.myIdx {
	case 0:
		p.eng.Schedule(spec.Phase, func() { p.generate(fl, 0) })
	default:
		p.armReceive(fl, 0)
	}
	return nil
}

// slot returns the start of hop h's relay slot for message k.
func (fl *p2pFlow) slot(k, h int) time.Duration {
	return fl.spec.releaseTime(k) + time.Duration(h)*fl.spec.hop()
}

func (p *P2P) armReceive(fl *p2pFlow, k int) {
	if p.ss == nil {
		return
	}
	// Expect the previous hop's relay at its slot. The synthetic child
	// key -3 keeps peer-flow expectations separate from query children.
	p.ss.UpdateNextReceive(fl.spec.ID, -3, fl.slot(k, fl.myIdx-1))
}

func (p *P2P) generate(fl *p2pFlow, k int) {
	p.eng.Schedule(fl.spec.releaseTime(k+1), func() { p.generate(fl, k+1) })
	p.stats.Originated++
	p.relay(fl, &P2PMessage{Flow: fl.spec.ID, Interval: k, Value: float64(k)})
}

// HandleMessage processes a peer message arriving from the previous hop.
func (p *P2P) HandleMessage(from query.NodeID, msg *P2PMessage) {
	fl, ok := p.flows[msg.Flow]
	if !ok || fl.myIdx < 0 {
		return
	}
	if fl.got[msg.Interval] {
		return
	}
	fl.got[msg.Interval] = true
	delete(fl.got, msg.Interval-8)

	if fl.myIdx == len(fl.path)-1 {
		p.stats.Consumed++
		p.stats.LatencySum += p.eng.Now() - fl.spec.releaseTime(msg.Interval)
		if p.deliver != nil {
			p.deliver(msg)
		}
		p.armReceive(fl, msg.Interval+1)
		return
	}
	p.armReceive(fl, msg.Interval+1)
	p.relay(fl, msg)
}

// relay forwards msg to the next hop at this node's slot, immediately if
// the slot already passed.
func (p *P2P) relay(fl *p2pFlow, msg *P2PMessage) {
	next := fl.path[fl.myIdx+1]
	sendAt := fl.slot(msg.Interval, fl.myIdx)
	if now := p.eng.Now(); sendAt < now {
		sendAt = now
	}
	if p.ss != nil {
		p.ss.UpdateNextSend(fl.spec.ID, sendAt)
	}
	p.eng.Schedule(sendAt, func() {
		p.env.SendData(next, msg, fl.spec.bytes(), func(ok bool) {
			if ok {
				p.stats.Relayed++
			} else {
				p.stats.RelayFailures++
			}
		})
		if p.ss != nil {
			p.ss.UpdateNextSend(fl.spec.ID, fl.slot(msg.Interval+1, fl.myIdx))
		}
	})
}
