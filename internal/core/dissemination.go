package core

import (
	"fmt"
	"time"

	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/sim"
)

// This file implements the extension sketched in §3 of the paper: "ESSAT
// can also be extended to support other communication patterns such as
// peer-to-peer communication or data dissemination." Dissemination is
// the mirror image of collection: the root produces a command every
// period and it travels *down* the tree, with Safe Sleep waking each
// node just in time for its parent's forwarding slot.
//
// The shaping is STS-like but keyed by tree level (distance from the
// root) instead of rank: a node at level L expects its parent's copy at
// r(k) = φ + k·P + l·L and forwards to its children at
// s(k) = φ + k·P + l·(L+1), where l is a per-hop allowance. Late copies
// (MAC contention) are forwarded immediately, exactly like late reports
// on the collection path.

// DisseminationSpec describes a periodic downstream flow.
type DisseminationSpec struct {
	// ID must be unique across queries AND dissemination flows at a node:
	// Safe Sleep bookkeeping shares one ID space. Use a disjoint range.
	ID query.ID
	// Period between commands; Phase is the first command's release time.
	Period time.Duration
	Phase  time.Duration
	// HopAllowance is l, the per-hop forwarding slot. Zero selects 20 ms.
	HopAllowance time.Duration
	// Bytes is the on-air size of a command. Zero selects 52.
	Bytes int
}

func (s DisseminationSpec) validate() error {
	if s.Period <= 0 {
		return fmt.Errorf("dissemination %d: period must be positive", s.ID)
	}
	if s.Phase < 0 {
		return fmt.Errorf("dissemination %d: negative phase", s.ID)
	}
	return nil
}

func (s DisseminationSpec) hop() time.Duration {
	if s.HopAllowance <= 0 {
		return 20 * time.Millisecond
	}
	return s.HopAllowance
}

func (s DisseminationSpec) bytes() int {
	if s.Bytes <= 0 {
		return 52
	}
	return s.Bytes
}

func (s DisseminationSpec) releaseTime(k int) time.Duration {
	return s.Phase + time.Duration(k)*s.Period
}

// Command is one disseminated message traveling down the tree.
type Command struct {
	Flow     query.ID
	Interval int
	Value    float64
}

// DisseminationEnv is the node context a Disseminator needs: the downward
// topology view plus a send path. The node package's Node satisfies it
// together with core.Env.
type DisseminationEnv interface {
	Env
	// Children returns the node's current tree children.
	Children() []query.NodeID
	// SendData transmits a payload to a neighbor with delivery callback.
	SendData(dst query.NodeID, payload any, bytes int, cb func(ok bool))
}

// DisseminationStats counts per-node dissemination outcomes.
type DisseminationStats struct {
	// Received counts commands received from the parent.
	Received uint64
	// Forwarded counts per-child forward deliveries confirmed by the MAC.
	Forwarded uint64
	// ForwardFailures counts per-child forwards that exhausted retries.
	ForwardFailures uint64
	// Late counts commands that arrived after their expected slot.
	Late uint64
	// LatencySum accumulates release→reception latency over Received.
	LatencySum time.Duration
}

type dissemFlow struct {
	spec  DisseminationSpec
	got   map[int]bool
	nextK int
}

// Disseminator runs the downstream pattern at one node. The root instance
// generates commands; every other instance forwards its parent's copies
// to its children, with Safe Sleep scheduled around the per-level slots.
type Disseminator struct {
	eng     *sim.Engine
	env     DisseminationEnv
	ss      *SafeSleep
	level   func() int
	deliver func(cmd *Command)
	flows   map[query.ID]*dissemFlow
	stats   DisseminationStats
}

// NewDisseminator creates the downstream handler. level reports the
// node's current tree level (0 at the root). deliver, which may be nil,
// receives every accepted command (the "application").
func NewDisseminator(eng *sim.Engine, env DisseminationEnv, ss *SafeSleep, level func() int, deliver func(*Command)) *Disseminator {
	if level == nil {
		panic("core: nil level func")
	}
	return &Disseminator{
		eng:     eng,
		env:     env,
		ss:      ss,
		level:   level,
		deliver: deliver,
		flows:   make(map[query.ID]*dissemFlow),
	}
}

// Stats returns a copy of the node's dissemination counters.
func (d *Disseminator) Stats() DisseminationStats { return d.stats }

// Register installs a flow. At the root it schedules command generation;
// elsewhere it arms the Safe Sleep reception schedule.
func (d *Disseminator) Register(spec DisseminationSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	if _, dup := d.flows[spec.ID]; dup {
		return fmt.Errorf("dissemination %d: already registered", spec.ID)
	}
	fl := &dissemFlow{spec: spec, got: make(map[int]bool)}
	d.flows[spec.ID] = fl
	if d.env.IsRoot() {
		d.eng.Schedule(spec.Phase, func() { d.generate(fl, 0) })
		return nil
	}
	d.armReceive(fl, 0)
	return nil
}

// recvTime is r(k) = φ + k·P + l·level for this node's current level.
func (d *Disseminator) recvTime(fl *dissemFlow, k int) time.Duration {
	return fl.spec.releaseTime(k) + time.Duration(d.level())*fl.spec.hop()
}

func (d *Disseminator) armReceive(fl *dissemFlow, k int) {
	if d.ss == nil {
		return
	}
	// The command comes from the parent; key the expectation by the flow
	// with a synthetic "child" of -2 (the parent may change, and SS only
	// needs one slot per flow on the downstream side).
	d.ss.UpdateNextReceive(fl.spec.ID, -2, d.recvTime(fl, k))
}

// generate runs at the root: produce command k and forward it.
func (d *Disseminator) generate(fl *dissemFlow, k int) {
	d.eng.Schedule(fl.spec.releaseTime(k+1), func() { d.generate(fl, k+1) })
	cmd := &Command{Flow: fl.spec.ID, Interval: k, Value: float64(k)}
	if d.deliver != nil {
		d.deliver(cmd)
	}
	d.forward(fl, cmd)
}

// HandleCommand processes a command received from the parent.
func (d *Disseminator) HandleCommand(from query.NodeID, cmd *Command) {
	fl, ok := d.flows[cmd.Flow]
	if !ok {
		return
	}
	if fl.got[cmd.Interval] {
		return // duplicate via re-parent handoff
	}
	fl.got[cmd.Interval] = true
	delete(fl.got, cmd.Interval-8)
	d.stats.Received++
	now := d.eng.Now()
	d.stats.LatencySum += now - fl.spec.releaseTime(cmd.Interval)
	if now > d.recvTime(fl, cmd.Interval)+fl.spec.hop() {
		d.stats.Late++
	}
	if d.deliver != nil {
		d.deliver(cmd)
	}
	// Expect the next command and forward this one down.
	d.armReceive(fl, cmd.Interval+1)
	d.forward(fl, cmd)
}

// forward sends cmd to every current child at the node's forwarding slot
// s(k) = φ + k·P + l·(level+1), immediately if that slot already passed.
func (d *Disseminator) forward(fl *dissemFlow, cmd *Command) {
	children := d.env.Children()
	if len(children) == 0 {
		return
	}
	sendAt := fl.spec.releaseTime(cmd.Interval) + time.Duration(d.level()+1)*fl.spec.hop()
	if now := d.eng.Now(); sendAt < now {
		sendAt = now
	}
	if d.ss != nil {
		d.ss.UpdateNextSend(fl.spec.ID, sendAt)
	}
	d.eng.Schedule(sendAt, func() {
		for _, c := range children {
			d.env.SendData(c, cmd, fl.spec.bytes(), func(ok bool) {
				if ok {
					d.stats.Forwarded++
				} else {
					d.stats.ForwardFailures++
				}
			})
		}
		if d.ss != nil {
			// Next forwarding slot.
			d.ss.UpdateNextSend(fl.spec.ID,
				fl.spec.releaseTime(cmd.Interval+1)+time.Duration(d.level()+1)*fl.spec.hop())
		}
	})
}
