package core

import (
	"time"

	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/sim"
)

// specFor returns the spec with the given ID, or a zero Spec if absent —
// the same tolerance for lookups after removal that a map gives. Shapers
// track a handful of queries, so a linear scan over an arena-backed slice
// beats a per-shaper map (and its per-run allocation).
func specFor(specs []query.Spec, q query.ID) query.Spec {
	for i := range specs {
		if specs[i].ID == q {
			return specs[i]
		}
	}
	return query.Spec{}
}

// dropSpec removes the spec with the given ID, preserving order.
func dropSpec(specs []query.Spec, q query.ID) []query.Spec {
	for i := range specs {
		if specs[i].ID == q {
			return append(specs[:i], specs[i+1:]...)
		}
	}
	return specs
}

// ShaperStats counts traffic-shaper events.
type ShaperStats struct {
	// PhaseShifts counts DTS phase shifts (late report → postponed s(k+1)).
	PhaseShifts uint64
	// PhaseUpdatesSent counts reports that carried a piggybacked phase.
	PhaseUpdatesSent uint64
	// PhaseRequestsSent counts explicit resynchronization requests.
	PhaseRequestsSent uint64
	// Buffered counts reports held back until their expected send time.
	Buffered uint64
}

// --- NTS ---------------------------------------------------------------

// NTS is "no traffic shaping" (§4.2.1): every node shares the expected
// send and reception times s(k) = r(k) = φ + k·P, and aggregated reports
// are forwarded greedily the moment they are ready. It never delays a
// report (no latency penalty) but nodes of rank d stay awake ~(d−1)·Tagg
// per interval waiting for their subtrees (Eq. 1).
type NTS struct {
	env Env
	ss  *SafeSleep
	// TimeoutDeadline is D in the NTS timeout tTO(d) = (d+1)·D/M; the
	// paper's experiments use the query period, which is what a zero
	// value selects.
	TimeoutDeadline time.Duration

	specs []query.Spec
	stats ShaperStats
}

var _ query.Shaper = (*NTS)(nil)

// NewNTS creates the no-shaping policy bound to env and ss.
func NewNTS(env Env, ss *SafeSleep) *NTS {
	n := sim.ArenaGrab[NTS](ss.eng, "core.nts")
	*n = NTS{env: env, ss: ss,
		specs: sim.ArenaSlice[query.Spec](ss.eng, "core.nts.specs", 2)[:0]}
	return n
}

// Name implements query.Shaper.
func (n *NTS) Name() string { return "NTS" }

// Stats returns shaper counters.
func (n *NTS) Stats() ShaperStats { return n.stats }

// QueryAdded implements query.Shaper.
func (n *NTS) QueryAdded(spec query.Spec, children []query.NodeID) {
	n.specs = append(n.specs, spec)
	if !n.env.IsRoot() {
		n.ss.UpdateNextSend(spec.ID, spec.IntervalStart(0))
	}
	for _, c := range children {
		n.ss.UpdateNextReceive(spec.ID, c, spec.IntervalStart(0))
	}
}

// ReportReady implements query.Shaper: NTS forwards immediately.
func (n *NTS) ReportReady(q query.ID, k int, readyAt time.Duration) (time.Duration, time.Duration) {
	return readyAt, query.NoPhase
}

// ReportSent implements query.Shaper: snext advances to the next period.
func (n *NTS) ReportSent(q query.ID, k int) {
	n.ss.UpdateNextSend(q, specFor(n.specs, q).IntervalStart(k+1))
}

// ReportFailed implements query.Shaper: the schedule is query-derived,
// so it advances exactly as if the report had been delivered.
func (n *NTS) ReportFailed(q query.ID, k int) { n.ReportSent(q, k) }

// ReportReceived implements query.Shaper: rnext(c) = φ + (k+1)·P.
func (n *NTS) ReportReceived(q query.ID, c query.NodeID, k int, phase time.Duration) {
	n.ss.UpdateNextReceive(q, c, specFor(n.specs, q).IntervalStart(k+1))
}

// IntervalClosed advances rnext for children that never reported, so a
// lost report cannot pin the radio on forever.
func (n *NTS) IntervalClosed(q query.ID, k int, missing []query.NodeID) {
	spec := specFor(n.specs, q)
	for _, c := range missing {
		n.ss.UpdateNextReceive(q, c, spec.IntervalStart(k+1))
	}
}

// CollectDeadline implements the §4.3 NTS timeout tTO(d) = (d+1)·D/M
// after the interval start.
func (n *NTS) CollectDeadline(q query.ID, k int) time.Duration {
	spec := specFor(n.specs, q)
	d := n.env.Rank()
	m := n.env.MaxRank()
	if m < 1 {
		m = 1
	}
	deadline := n.TimeoutDeadline
	if deadline <= 0 {
		deadline = spec.Period
	}
	return spec.IntervalStart(k) + time.Duration(d+1)*deadline/time.Duration(m)
}

// QueryRemoved implements query.Shaper.
func (n *NTS) QueryRemoved(q query.ID) {
	n.specs = dropSpec(n.specs, q)
	n.ss.RemoveQuery(q)
}

// ChildAdded implements query.Shaper.
func (n *NTS) ChildAdded(q query.ID, c query.NodeID) {
	// All nodes share the same schedule; expect the child from the next
	// full interval (conservatively: now).
	n.ss.UpdateNextReceive(q, c, n.env.Now())
}

// ChildRemoved implements query.Shaper.
func (n *NTS) ChildRemoved(q query.ID, c query.NodeID) { n.ss.RemoveChild(q, c) }

// ParentChanged implements query.Shaper: NTS schedules are independent of
// the tree, nothing to do (§4.3).
func (n *NTS) ParentChanged(q query.ID) {}

// ControlReceived implements query.Shaper.
func (n *NTS) ControlReceived(from query.NodeID, msg any) {}

// --- STS ---------------------------------------------------------------

// STS is the static traffic shaper (§4.2.2): transmission of each
// interval's reports is paced over an assigned deadline D, allocating the
// same local deadline l = D/M to each rank. A node of rank d expects its
// children's reports by r(k,c) = φ + k·P + l·rank(c) (the child's expected
// send time) and sends at s(k) = φ + k·P + l·d, buffering early reports.
type STS struct {
	env Env
	ss  *SafeSleep
	// Deadline is D. Zero means "use the query period", the paper's §5
	// configuration.
	Deadline time.Duration
	// TimeoutSlack is the constant tTO in the STS collection deadline
	// s(k) + l − tTO (§4.3).
	TimeoutSlack time.Duration
	// NoBuffering disables holding early reports until s(k) (ablation:
	// without it, receivers are asleep when early reports arrive and the
	// shaping guarantee collapses into MAC retries).
	NoBuffering bool

	specs []query.Spec
	stats ShaperStats
}

var _ query.Shaper = (*STS)(nil)

// NewSTS creates a static traffic shaper. deadline <= 0 selects D = P.
func NewSTS(env Env, ss *SafeSleep, deadline time.Duration) *STS {
	s := sim.ArenaGrab[STS](ss.eng, "core.sts")
	*s = STS{
		env:          env,
		ss:           ss,
		Deadline:     deadline,
		TimeoutSlack: 10 * time.Millisecond,
		specs:        sim.ArenaSlice[query.Spec](ss.eng, "core.sts.specs", 2)[:0],
	}
	return s
}

// Name implements query.Shaper.
func (s *STS) Name() string { return "STS" }

// Stats returns shaper counters.
func (s *STS) Stats() ShaperStats { return s.stats }

// local returns l = D/M for query q.
func (s *STS) local(q query.ID) time.Duration {
	d := s.Deadline
	if d <= 0 {
		d = specFor(s.specs, q).Period
	}
	m := s.env.MaxRank()
	if m < 1 {
		m = 1
	}
	return d / time.Duration(m)
}

// sendTime returns s(k) = φ + k·P + l·rank for this node's current rank.
// Rank is read dynamically so STS adapts (at recomputation cost, §4.3)
// after topology changes.
func (s *STS) sendTime(q query.ID, k int) time.Duration {
	return specFor(s.specs, q).IntervalStart(k) + time.Duration(s.env.Rank())*s.local(q)
}

// recvTime returns r(k,c) = the child's expected send time, computed from
// the child's rank. The paper's r(k) = φ+kP+l(d−1) is the special case of
// a child at rank d−1.
func (s *STS) recvTime(q query.ID, k int, c query.NodeID) time.Duration {
	cr := s.env.RankOf(c)
	if cr < 0 {
		cr = 0
	}
	return specFor(s.specs, q).IntervalStart(k) + time.Duration(cr)*s.local(q)
}

// QueryAdded implements query.Shaper.
func (s *STS) QueryAdded(spec query.Spec, children []query.NodeID) {
	s.specs = append(s.specs, spec)
	if !s.env.IsRoot() {
		s.ss.UpdateNextSend(spec.ID, s.sendTime(spec.ID, 0))
	}
	for _, c := range children {
		s.ss.UpdateNextReceive(spec.ID, c, s.recvTime(spec.ID, 0, c))
	}
}

// ReportReady implements query.Shaper: early reports are buffered until
// s(k); late reports go immediately.
func (s *STS) ReportReady(q query.ID, k int, readyAt time.Duration) (time.Duration, time.Duration) {
	st := s.sendTime(q, k)
	if readyAt < st && !s.NoBuffering {
		s.stats.Buffered++
		return st, query.NoPhase
	}
	return readyAt, query.NoPhase
}

// ReportSent implements query.Shaper.
func (s *STS) ReportSent(q query.ID, k int) {
	s.ss.UpdateNextSend(q, s.sendTime(q, k+1))
}

// ReportFailed implements query.Shaper: like NTS, the static schedule
// advances regardless of the delivery outcome.
func (s *STS) ReportFailed(q query.ID, k int) { s.ReportSent(q, k) }

// ReportReceived implements query.Shaper.
func (s *STS) ReportReceived(q query.ID, c query.NodeID, k int, phase time.Duration) {
	s.ss.UpdateNextReceive(q, c, s.recvTime(q, k+1, c))
}

// IntervalClosed implements query.Shaper.
func (s *STS) IntervalClosed(q query.ID, k int, missing []query.NodeID) {
	for _, c := range missing {
		s.ss.UpdateNextReceive(q, c, s.recvTime(q, k+1, c))
	}
}

// CollectDeadline implements the §4.3 STS timeout, s(k) + l − tTO,
// clamped to no earlier than the node's own expected send time s(k).
func (s *STS) CollectDeadline(q query.ID, k int) time.Duration {
	st := s.sendTime(q, k)
	dl := st + s.local(q) - s.TimeoutSlack
	if dl < st {
		dl = st
	}
	return dl
}

// QueryRemoved implements query.Shaper.
func (s *STS) QueryRemoved(q query.ID) {
	s.specs = dropSpec(s.specs, q)
	s.ss.RemoveQuery(q)
}

// ChildAdded implements query.Shaper.
func (s *STS) ChildAdded(q query.ID, c query.NodeID) {
	s.ss.UpdateNextReceive(q, c, s.env.Now())
}

// ChildRemoved implements query.Shaper.
func (s *STS) ChildRemoved(q query.ID, c query.NodeID) { s.ss.RemoveChild(q, c) }

// ParentChanged implements query.Shaper. STS reads ranks dynamically, so
// the §4.3 rank recomputation is implicit; expected times self-correct
// from the next interval.
func (s *STS) ParentChanged(q query.ID) {}

// ControlReceived implements query.Shaper.
func (s *STS) ControlReceived(from query.NodeID, msg any) {}

// --- DTS ---------------------------------------------------------------

// dtsChild is one child's row in a query's synchronization table: the
// former rnext/lastK/resync maps fused into a single struct-of-rows
// slice. Nodes have a handful of children, so linear scans win, and the
// rows live in the per-run arena instead of three maps per query.
type dtsChild struct {
	id    query.NodeID
	rnext time.Duration
	lastK int
	// hasLast distinguishes "no reports seen yet" (a re-added child has
	// unknown history, so no gap detection on its first report).
	hasLast bool
	// resync marks a child whose schedule is unknown after detected
	// packet loss; the node stays awake for it until a phase arrives.
	resync bool
}

type dtsQueryState struct {
	id   query.ID
	spec query.Spec
	// snext is s(k) for the next report to send.
	snext time.Duration
	// pendingNext is s(k+1), computed at ReportReady and committed at
	// ReportSent ("upon completing the sending", §4.1).
	pendingNext time.Duration
	// forcePhase makes the next report carry a phase update even without
	// a shift (resynchronization and re-parenting, §4.3).
	forcePhase bool
	children   []dtsChild
}

// child returns c's row, or nil. The pointer is invalidated by appends.
func (st *dtsQueryState) child(c query.NodeID) *dtsChild {
	for i := range st.children {
		if st.children[i].id == c {
			return &st.children[i]
		}
	}
	return nil
}

// DTS is the dynamic traffic shaper (§4.2.3), a Release-Guard-style
// self-tuning policy. Initially s(0) = r(0) = φ. A report ready by its
// expected send time s(k) is sent exactly at s(k) and s(k+1) = s(k) + P —
// parent and child stay synchronized with no communication. A report
// ready late, at t > s(k), is sent immediately and the schedule
// phase-shifts: s(k+1) = t + P, piggybacked to the parent in the report.
type DTS struct {
	env Env
	ss  *SafeSleep
	// TimeoutSlack is tTO in the DTS collection deadline
	// max_c(r(k,c)) + tTO (§4.3).
	TimeoutSlack time.Duration
	// NoBuffering disables holding early reports until s(k) (ablation).
	// Schedule bookkeeping is unchanged, so early sends hit sleeping
	// receivers and fall back to MAC retries.
	NoBuffering bool

	q     []*dtsQueryState
	stats ShaperStats
}

var _ query.Shaper = (*DTS)(nil)

// NewDTS creates a dynamic traffic shaper.
func NewDTS(env Env, ss *SafeSleep) *DTS {
	d := sim.ArenaGrab[DTS](ss.eng, "core.dts")
	*d = DTS{
		env:          env,
		ss:           ss,
		TimeoutSlack: 50 * time.Millisecond,
		q:            sim.ArenaSlice[*dtsQueryState](ss.eng, "core.dts.q", 2)[:0],
	}
	return d
}

// state returns the per-query state for q, or nil if unknown.
func (d *DTS) state(q query.ID) *dtsQueryState {
	for _, st := range d.q {
		if st.id == q {
			return st
		}
	}
	return nil
}

// Name implements query.Shaper.
func (d *DTS) Name() string { return "DTS" }

// Stats returns shaper counters.
func (d *DTS) Stats() ShaperStats { return d.stats }

// QueryAdded implements query.Shaper: s(0) = r(0) = φ.
func (d *DTS) QueryAdded(spec query.Spec, children []query.NodeID) {
	st := sim.ArenaGrab[dtsQueryState](d.ss.eng, "core.dts.state")
	*st = dtsQueryState{
		id:       spec.ID,
		spec:     spec,
		snext:    spec.IntervalStart(0),
		children: sim.ArenaSlice[dtsChild](d.ss.eng, "core.dts.children", 8)[:0],
	}
	d.q = append(d.q, st)
	if !d.env.IsRoot() {
		d.ss.UpdateNextSend(spec.ID, st.snext)
	}
	r0 := spec.IntervalStart(0)
	for _, c := range children {
		st.children = append(st.children, dtsChild{id: c, rnext: r0, lastK: -1, hasLast: true})
		d.ss.UpdateNextReceive(spec.ID, c, r0)
	}
}

// ReportReady implements query.Shaper.
func (d *DTS) ReportReady(q query.ID, k int, readyAt time.Duration) (time.Duration, time.Duration) {
	st := d.state(q)
	var sendAt time.Duration
	phase := query.NoPhase
	if readyAt <= st.snext {
		// On time: buffer until s(k); schedules stay implicitly aligned.
		sendAt = st.snext
		if readyAt < st.snext {
			if d.NoBuffering {
				sendAt = readyAt
			}
			d.stats.Buffered++
		}
		st.pendingNext = st.snext + st.spec.Period
	} else {
		// Phase shift: send immediately, postpone the next send, and
		// advertise the new phase to the parent.
		sendAt = readyAt
		st.pendingNext = readyAt + st.spec.Period
		phase = st.pendingNext
		d.stats.PhaseShifts++
	}
	if st.forcePhase && phase == query.NoPhase {
		phase = st.pendingNext
	}
	st.forcePhase = false
	if phase != query.NoPhase {
		d.stats.PhaseUpdatesSent++
	}
	d.ss.UpdateNextSend(q, sendAt)
	return sendAt, phase
}

// ReportSent implements query.Shaper: commit s(k+1).
func (d *DTS) ReportSent(q query.ID, k int) {
	st := d.state(q)
	st.snext = st.pendingNext
	d.ss.UpdateNextSend(q, st.snext)
}

// ReportFailed implements query.Shaper: the report is lost, but the
// schedule still advances to the precomputed s(k+1); the next report will
// carry a phase update so the parent (which detects the interval gap)
// resynchronizes (§4.3).
func (d *DTS) ReportFailed(q query.ID, k int) {
	st := d.state(q)
	st.snext = st.pendingNext
	st.forcePhase = true
	d.ss.UpdateNextSend(q, st.snext)
}

// ReportReceived implements query.Shaper. With a piggybacked phase the
// parent adopts it directly; otherwise r(k+1) = r(k) + P. A gap in the
// child's interval numbers means reports (and possibly phase updates)
// were lost: the node requests a phase update and stays awake until
// resynchronized (§4.3).
func (d *DTS) ReportReceived(q query.ID, c query.NodeID, k int, phase time.Duration) {
	st := d.state(q)
	ch := st.child(c)
	if ch == nil {
		// Unknown child (e.g. a report racing a removal): track it afresh,
		// matching the old map semantics of auto-created entries.
		st.children = append(st.children, dtsChild{id: c})
		ch = &st.children[len(st.children)-1]
	}
	gap := ch.hasLast && k > ch.lastK+1
	ch.lastK, ch.hasLast = k, true

	var rn time.Duration
	switch {
	case phase != query.NoPhase:
		ch.rnext, ch.resync = phase, false
		rn = phase
	case gap || ch.resync:
		// Lost report(s) and no phase on this one: the child may have
		// shifted while we were not listening. Stay awake for this child
		// (rnext in the past = busy) and request a phase update —
		// piggybacked on the acknowledgement of the report we just got,
		// falling back to an explicit packet (§4.3).
		ch.resync = true
		rn = d.env.Now()
		ch.rnext = rn
		d.stats.PhaseRequestsSent++
		d.env.RequestPhaseUpdate(c, q)
	default:
		ch.rnext += st.spec.Period
		rn = ch.rnext
	}
	d.ss.UpdateNextReceive(q, c, rn)
}

// IntervalClosed implements query.Shaper. DTS keeps rnext untouched for
// missing children: a stale (past) expected time keeps the node awake
// until the late report or a resynchronization arrives, which is the
// §4.3 "transient energy waste" behavior. Child failure detection
// eventually removes dead children.
func (d *DTS) IntervalClosed(q query.ID, k int, missing []query.NodeID) {}

// CollectDeadline implements the §4.3 DTS timeout max_c(r(k,c)) + tTO.
func (d *DTS) CollectDeadline(q query.ID, k int) time.Duration {
	st := d.state(q)
	dl := st.spec.IntervalStart(k)
	for i := range st.children {
		if t := st.children[i].rnext; t > dl {
			dl = t
		}
	}
	return dl + d.TimeoutSlack
}

// QueryRemoved implements query.Shaper.
func (d *DTS) QueryRemoved(q query.ID) {
	for i, st := range d.q {
		if st.id == q {
			d.q = append(d.q[:i], d.q[i+1:]...)
			break
		}
	}
	d.ss.RemoveQuery(q)
}

// ChildAdded implements query.Shaper: stay awake until the child's first
// report (which carries a phase update) synchronizes the pair.
func (d *DTS) ChildAdded(q query.ID, c query.NodeID) {
	st := d.state(q)
	now := d.env.Now()
	if ch := st.child(c); ch != nil {
		// Re-added child: unknown history, no gap detection on its first
		// report, and any stale resync flag is void.
		ch.rnext, ch.hasLast, ch.resync = now, false, false
	} else {
		st.children = append(st.children, dtsChild{id: c, rnext: now})
	}
	d.ss.UpdateNextReceive(q, c, now)
}

// ChildRemoved implements query.Shaper.
func (d *DTS) ChildRemoved(q query.ID, c query.NodeID) {
	st := d.state(q)
	for i := range st.children {
		if st.children[i].id == c {
			st.children = append(st.children[:i], st.children[i+1:]...)
			break
		}
	}
	d.ss.RemoveChild(q, c)
}

// ParentChanged implements query.Shaper: one phase update on the first
// report to the new parent resynchronizes the pair (§4.3).
func (d *DTS) ParentChanged(q query.ID) {
	d.state(q).forcePhase = true
}

// ControlReceived implements query.Shaper: a PhaseRequest from the parent
// forces a phase update on the next report.
func (d *DTS) ControlReceived(from query.NodeID, msg any) {
	req, ok := msg.(PhaseRequest)
	if !ok {
		return
	}
	if st := d.state(req.Query); st != nil {
		st.forcePhase = true
	}
}
