package core

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
)

// fakeDissemEnv scripts a DisseminationEnv with an instant reliable link.
type fakeDissemEnv struct {
	*fakeEnv
	children []query.NodeID
	sent     []struct {
		dst query.NodeID
		cmd *Command
	}
	failNext bool
}

func (f *fakeDissemEnv) Children() []query.NodeID { return f.children }

func (f *fakeDissemEnv) SendData(dst query.NodeID, payload any, bytes int, cb func(bool)) {
	cmd := payload.(*Command)
	f.sent = append(f.sent, struct {
		dst query.NodeID
		cmd *Command
	}{dst, cmd})
	ok := !f.failNext
	f.failNext = false
	if cb != nil {
		cb(ok)
	}
}

func dissemFixture(t *testing.T, root bool, level int, children []query.NodeID) (*sim.Engine, *fakeDissemEnv, *SafeSleep, *Disseminator) {
	t.Helper()
	eng := sim.New(1)
	r := radio.New(eng, radio.Config{})
	ss := NewSafeSleep(eng, r, SafeSleepOptions{Disabled: true})
	env := &fakeDissemEnv{
		fakeEnv:  &fakeEnv{eng: eng, self: 1, root: root, maxRank: 4, ranks: map[query.NodeID]int{}},
		children: children,
	}
	var delivered []*Command
	d := NewDisseminator(eng, env, ss, func() int { return level }, func(c *Command) {
		delivered = append(delivered, c)
	})
	_ = delivered
	return eng, env, ss, d
}

var dspec = DisseminationSpec{
	ID:           -100, // disjoint from query IDs
	Period:       time.Second,
	Phase:        500 * time.Millisecond,
	HopAllowance: 50 * time.Millisecond,
}

func TestDisseminationRootGenerates(t *testing.T) {
	eng, env, _, d := dissemFixture(t, true, 0, []query.NodeID{2, 3})
	if err := d.Register(dspec); err != nil {
		t.Fatal(err)
	}
	eng.Run(2600 * time.Millisecond)
	// Commands k=0,1,2 released at 0.5s, 1.5s, 2.5s; forwarded to both
	// children at the level-1 slot (+50ms each release).
	if got := len(env.sent); got != 6 {
		t.Fatalf("root forwarded %d copies, want 6 (3 intervals × 2 children)", got)
	}
	if env.sent[0].cmd.Interval != 0 || env.sent[4].cmd.Interval != 2 {
		t.Fatalf("intervals wrong: %+v", env.sent)
	}
	if d.Stats().Forwarded != 6 {
		t.Fatalf("Forwarded = %d", d.Stats().Forwarded)
	}
}

func TestDisseminationForwardSlotTiming(t *testing.T) {
	eng, env, _, d := dissemFixture(t, true, 0, []query.NodeID{2})
	if err := d.Register(dspec); err != nil {
		t.Fatal(err)
	}
	var sentAt time.Duration
	eng.Schedule(549*time.Millisecond, func() {
		if len(env.sent) != 0 {
			t.Error("forwarded before the level-1 slot")
		}
	})
	eng.Schedule(551*time.Millisecond, func() {
		if len(env.sent) == 1 {
			sentAt = eng.Now()
		}
	})
	eng.Run(600 * time.Millisecond)
	if sentAt == 0 {
		t.Fatal("not forwarded at the slot")
	}
}

func TestDisseminationRelayReceivesAndForwards(t *testing.T) {
	eng, env, ss, d := dissemFixture(t, false, 2, []query.NodeID{5})
	if err := d.Register(dspec); err != nil {
		t.Fatal(err)
	}
	// SS expects the parent's copy at r(0) = 0.5s + 2·50ms = 0.6s.
	if got := ss.recvTime(dspec.ID, -2); got != 600*time.Millisecond {
		t.Fatalf("rnext = %v, want 600ms", got)
	}
	// The copy arrives on time.
	eng.Schedule(605*time.Millisecond, func() {
		d.HandleCommand(0, &Command{Flow: dspec.ID, Interval: 0, Value: 7})
	})
	eng.Run(time.Second)
	if d.Stats().Received != 1 {
		t.Fatalf("Received = %d", d.Stats().Received)
	}
	// Forwarded to child 5 at s(0) = 0.5s + 3·50ms = 0.65s.
	if len(env.sent) != 1 || env.sent[0].dst != 5 {
		t.Fatalf("sent = %+v", env.sent)
	}
	// SS now expects interval 1 at 1.6s.
	if got := ss.recvTime(dspec.ID, -2); got != 1600*time.Millisecond {
		t.Fatalf("rnext = %v after k=0, want 1.6s", got)
	}
}

func TestDisseminationDuplicateFiltered(t *testing.T) {
	eng, env, _, d := dissemFixture(t, false, 1, []query.NodeID{5})
	if err := d.Register(dspec); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(600*time.Millisecond, func() {
		cmd := &Command{Flow: dspec.ID, Interval: 0}
		d.HandleCommand(0, cmd)
		d.HandleCommand(9, cmd) // duplicate via handoff
	})
	eng.Run(time.Second)
	if d.Stats().Received != 1 {
		t.Fatalf("Received = %d, want 1 (duplicate filtered)", d.Stats().Received)
	}
	if len(env.sent) != 1 {
		t.Fatalf("forwarded %d, want 1", len(env.sent))
	}
}

func TestDisseminationLateCommandForwardedImmediately(t *testing.T) {
	eng, env, _, d := dissemFixture(t, false, 1, []query.NodeID{5})
	if err := d.Register(dspec); err != nil {
		t.Fatal(err)
	}
	// Slot for level 1 is 0.55s; the copy shows up at 0.9s.
	eng.Schedule(900*time.Millisecond, func() {
		d.HandleCommand(0, &Command{Flow: dspec.ID, Interval: 0})
	})
	eng.Run(901 * time.Millisecond)
	if len(env.sent) != 1 {
		t.Fatal("late command not forwarded immediately")
	}
	if d.Stats().Late != 1 {
		t.Fatalf("Late = %d, want 1", d.Stats().Late)
	}
}

func TestDisseminationLeafDoesNotForward(t *testing.T) {
	eng, env, _, d := dissemFixture(t, false, 3, nil)
	if err := d.Register(dspec); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(700*time.Millisecond, func() {
		d.HandleCommand(0, &Command{Flow: dspec.ID, Interval: 0})
	})
	eng.Run(time.Second)
	if len(env.sent) != 0 {
		t.Fatal("leaf forwarded a command")
	}
}

func TestDisseminationValidation(t *testing.T) {
	_, _, _, d := dissemFixture(t, true, 0, nil)
	if err := d.Register(DisseminationSpec{ID: -1, Period: 0}); err == nil {
		t.Error("zero period accepted")
	}
	if err := d.Register(dspec); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(dspec); err == nil {
		t.Error("duplicate flow accepted")
	}
}

func TestDisseminationForwardFailureCounted(t *testing.T) {
	eng, env, _, d := dissemFixture(t, true, 0, []query.NodeID{2})
	if err := d.Register(dspec); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(540*time.Millisecond, func() { env.failNext = true })
	eng.Run(600 * time.Millisecond)
	if d.Stats().ForwardFailures != 1 {
		t.Fatalf("ForwardFailures = %d, want 1", d.Stats().ForwardFailures)
	}
}
