// Package core implements the paper's primary contribution: the ESSAT
// power-management protocols. Each protocol pairs the Safe Sleep local
// scheduler (§4.1) with a traffic shaper — NTS (§4.2.1), STS (§4.2.2) or
// DTS (§4.2.3) — and includes the §4.3 maintenance mechanisms for packet
// loss and topology changes.
package core

import (
	"time"

	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
)

// Env gives shapers and Safe Sleep access to the node context they need:
// the clock, the node's place in the routing tree, and a control-message
// path. The node package provides the implementation.
type Env interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// Self returns this node's ID.
	Self() query.NodeID
	// IsRoot reports whether this node is the tree root.
	IsRoot() bool
	// Rank returns this node's current rank (max hops to a descendant).
	Rank() int
	// RankOf returns the current rank of another node (used by STS for
	// per-child expected reception times).
	RankOf(n query.NodeID) int
	// MaxRank returns M, the rank of the root.
	MaxRank() int
	// SendControl transmits a small control message to a neighbor.
	SendControl(dst query.NodeID, msg any, bytes int)
	// RequestPhaseUpdate asks child to piggyback a phase update on its
	// next report for q. Implementations piggyback the request on the
	// acknowledgement of the report being processed when possible, and
	// fall back to an explicit control packet (§4.3).
	RequestPhaseUpdate(child query.NodeID, q query.ID)
}

// ControlBytes is the on-air size of ESSAT control messages (same as a
// MAC acknowledgement frame).
const ControlBytes = 14

// PhaseRequest asks a child to piggyback a phase update on its next data
// report (DTS resynchronization after detected packet loss, §4.3).
type PhaseRequest struct {
	Query query.ID
}

type recvKey struct {
	q query.ID
	c query.NodeID
}

// SleepObserver is notified of Safe Sleep decisions, synchronously.
// Observers must be pure (no scheduling, no state changes, no random
// draws) so an observed run stays byte-identical to an unobserved one.
// The invariant auditor (internal/check) uses it to verify the
// break-even rule: SS only sleeps through free periods longer than tBE.
type SleepObserver interface {
	// Slept fires when SS decides to turn the radio off: the free period
	// is twakeup − now, which must exceed breakEven.
	Slept(node query.NodeID, now, twakeup, breakEven time.Duration)
}

// SleepStats counts Safe Sleep decisions.
type SleepStats struct {
	// Sleeps is the number of times the radio was put to sleep.
	Sleeps uint64
	// Suppressed counts free periods too short to sleep through
	// (tsleep <= tBE), where SS kept the radio on.
	Suppressed uint64
}

// SafeSleepOptions configures a SafeSleep scheduler.
type SafeSleepOptions struct {
	// BreakEven is tBE: SS sleeps only through free periods strictly
	// longer than this. Negative means "use the radio's own break-even
	// time". Note this is deliberately a parameter independent of the
	// radio hardware so the paper's TBE sensitivity experiments (Fig. 8,
	// Fig. 9) can sweep it.
	BreakEven time.Duration
	// WakeAhead is how long before the next expected event the radio is
	// woken, normally tOFF→ON. Negative means "use the radio's turn-on
	// delay".
	WakeAhead time.Duration
	// MACBusy reports whether the MAC still has unfinished work; SS never
	// sleeps a node with pending traffic. Nil means "never busy". An
	// interface rather than a func so the standard wiring (the node's
	// MAC) costs no per-node closure; wrap a func with BusyFunc.
	MACBusy BusyReporter
	// Disabled turns SS into a no-op (always-on node): used for SPAN
	// backbone nodes and as an ablation.
	Disabled bool
	// AwakeUntil keeps the radio on until the given time regardless of
	// the schedule (the paper's query setup slot).
	AwakeUntil time.Duration
}

// BusyReporter reports pending work that must keep the radio on.
// *mac.MAC implements it.
type BusyReporter interface {
	Busy() bool
}

// BusyFunc adapts a plain func to BusyReporter (tests, ad-hoc wiring).
type BusyFunc func() bool

// Busy implements BusyReporter.
func (f BusyFunc) Busy() bool { return f() }

// sendEntry and recvEntry are the rows of SafeSleep's expectation tables.
type sendEntry struct {
	q query.ID
	t time.Duration
}

type recvEntry struct {
	key recvKey
	t   time.Duration
}

// SafeSleep is the local sleep scheduler (§4.1, Fig. 1). It tracks, per
// query, the expected reception time of the next data report from each
// child (q.rnext(c)) and the expected send time of the node's next report
// (q.snext), as maintained by the traffic shaper. Whenever the earliest
// expected event is further away than the break-even time, the radio is
// turned off and woken just in time.
type SafeSleep struct {
	eng   *sim.Engine
	radio *radio.Radio
	opts  SafeSleepOptions

	// nextSend and nextRecv are small linear tables (a handful of queries
	// and children per node): CheckState scans them on every radio-idle
	// transition, and linear scans beat map iteration at this size.
	nextSend []sendEntry
	nextRecv []recvEntry

	wakeEv *sim.Event
	wakeAt time.Duration
	obs    SleepObserver
	obsID  query.NodeID
	stats  SleepStats
}

// Event dispatchers shared by every scheduler: the events carry the
// SafeSleep as their argument instead of per-node closures.
func ssWake(x any) {
	ss := x.(*SafeSleep)
	ss.wakeEv = nil
	ss.radio.TurnOn()
}

func ssCheck(x any) { x.(*SafeSleep).CheckState() }

// macNeverBusy is the default BusyReporter: a node with no MAC wired in
// never has pending traffic.
var macNeverBusy BusyReporter = BusyFunc(func() bool { return false })

// NewSafeSleep creates a Safe Sleep scheduler driving the given radio.
func NewSafeSleep(eng *sim.Engine, r *radio.Radio, opts SafeSleepOptions) *SafeSleep {
	if opts.BreakEven < 0 {
		opts.BreakEven = r.Config().BreakEven()
	}
	if opts.WakeAhead < 0 {
		opts.WakeAhead = r.Config().TurnOnDelay
	}
	if opts.MACBusy == nil {
		opts.MACBusy = macNeverBusy
	}
	ss := sim.ArenaGrab[SafeSleep](eng, "core.safesleep")
	*ss = SafeSleep{
		eng:   eng,
		radio: r,
		opts:  opts,
		// Seed the expectation tables with arena-backed capacity. Nodes
		// track a handful of queries and children; appends that outgrow
		// these fall back to the heap, trading a rare allocation for
		// exact reuse in the common shape.
		nextSend: sim.ArenaSlice[sendEntry](eng, "core.ss.send", 4)[:0],
		nextRecv: sim.ArenaSlice[recvEntry](eng, "core.ss.recv", 16)[:0],
	}
	// Re-evaluate whenever the radio settles into Idle: after a wake-up
	// (expectations may have vanished while asleep), after a transmission,
	// and — critically — after overhearing a neighbor's frame addressed to
	// someone else, which would otherwise leave the node awake until its
	// next scheduled event.
	r.SubscribeState(ss)
	return ss
}

// RadioStateChanged implements radio.StateListener: Safe Sleep
// re-evaluates whenever the radio settles into Idle.
func (ss *SafeSleep) RadioStateChanged(old, new radio.State) {
	if new == radio.Idle {
		ss.CheckState()
	}
}

// MACIdle implements mac.IdleSink: re-evaluate once the MAC drains.
func (ss *SafeSleep) MACIdle() { ss.CheckState() }

// Stats returns a copy of the scheduler's counters.
func (ss *SafeSleep) Stats() SleepStats { return ss.stats }

// SetObserver installs a sleep-decision observer reporting decisions as
// node id (nil disables).
func (ss *SafeSleep) SetObserver(id query.NodeID, o SleepObserver) {
	ss.obsID, ss.obs = id, o
}

// Disabled reports whether the scheduler is a no-op.
func (ss *SafeSleep) Disabled() bool { return ss.opts.Disabled }

// HoldAwake keeps the radio on until at least `until` (the paper's query
// setup slot: "during the setup slot, all nodes keep their radio on").
// The radio is woken immediately if asleep.
func (ss *SafeSleep) HoldAwake(until time.Duration) {
	if until <= ss.opts.AwakeUntil {
		return
	}
	ss.opts.AwakeUntil = until
	if ss.opts.Disabled {
		return
	}
	ss.ensureAwake()
	// Re-evaluate when the hold expires so the node can sleep again.
	ss.eng.ScheduleArg(until, ssCheck, ss)
}

// findSend returns the index of q's row in nextSend, or -1.
func (ss *SafeSleep) findSend(q query.ID) int {
	for i := range ss.nextSend {
		if ss.nextSend[i].q == q {
			return i
		}
	}
	return -1
}

// findRecv returns the index of k's row in nextRecv, or -1.
func (ss *SafeSleep) findRecv(k recvKey) int {
	for i := range ss.nextRecv {
		if ss.nextRecv[i].key == k {
			return i
		}
	}
	return -1
}

// UpdateNextSend records q.snext, the node's expected send time for query
// q, and re-evaluates the sleep schedule (updateNextSend in Fig. 1).
func (ss *SafeSleep) UpdateNextSend(q query.ID, t time.Duration) {
	if i := ss.findSend(q); i >= 0 {
		ss.nextSend[i].t = t
	} else {
		ss.nextSend = append(ss.nextSend, sendEntry{q: q, t: t})
	}
	ss.CheckState()
}

// UpdateNextReceive records q.rnext(c) for child c and re-evaluates
// (updateNextReceive in Fig. 1).
func (ss *SafeSleep) UpdateNextReceive(q query.ID, c query.NodeID, t time.Duration) {
	k := recvKey{q, c}
	if i := ss.findRecv(k); i >= 0 {
		ss.nextRecv[i].t = t
	} else {
		ss.nextRecv = append(ss.nextRecv, recvEntry{key: k, t: t})
	}
	ss.CheckState()
}

// RemoveChild forgets the expected reception time for (q, c): §4.3,
// "the stale expected send and reception times of the failed node used
// by SS are removed".
func (ss *SafeSleep) RemoveChild(q query.ID, c query.NodeID) {
	if i := ss.findRecv(recvKey{q, c}); i >= 0 {
		ss.nextRecv = append(ss.nextRecv[:i], ss.nextRecv[i+1:]...)
	}
	ss.CheckState()
}

// RemoveQuery forgets all state for q (query deregistration).
func (ss *SafeSleep) RemoveQuery(q query.ID) {
	for i := 0; i < len(ss.nextSend); i++ {
		if ss.nextSend[i].q == q {
			ss.nextSend = append(ss.nextSend[:i], ss.nextSend[i+1:]...)
			i--
		}
	}
	for i := 0; i < len(ss.nextRecv); i++ {
		if ss.nextRecv[i].key.q == q {
			ss.nextRecv = append(ss.nextRecv[:i], ss.nextRecv[i+1:]...)
			i--
		}
	}
	ss.CheckState()
}

// sendTime returns the recorded snext for q, or zero if absent.
func (ss *SafeSleep) sendTime(q query.ID) time.Duration {
	if i := ss.findSend(q); i >= 0 {
		return ss.nextSend[i].t
	}
	return 0
}

// recvTime returns the recorded rnext for (q, c), or zero if absent.
func (ss *SafeSleep) recvTime(q query.ID, c query.NodeID) time.Duration {
	if i := ss.findRecv(recvKey{q, c}); i >= 0 {
		return ss.nextRecv[i].t
	}
	return 0
}

// hasRecv reports whether an rnext entry exists for (q, c).
func (ss *SafeSleep) hasRecv(q query.ID, c query.NodeID) bool {
	return ss.findRecv(recvKey{q, c}) >= 0
}

// earliest returns the minimum expected event time, and false if no
// events are expected at all.
func (ss *SafeSleep) earliest() (time.Duration, bool) {
	var min time.Duration
	found := false
	for i := range ss.nextSend {
		if t := ss.nextSend[i].t; !found || t < min {
			min, found = t, true
		}
	}
	for i := range ss.nextRecv {
		if t := ss.nextRecv[i].t; !found || t < min {
			min, found = t, true
		}
	}
	return min, found
}

// CheckState implements checkState() from Fig. 1: compute twakeup, and if
// the free period exceeds the break-even time, sleep until
// twakeup − tOFF→ON.
func (ss *SafeSleep) CheckState() {
	if ss.opts.Disabled {
		return
	}
	now := ss.eng.Now()
	twakeup, any := ss.earliest()
	if !any {
		return // nothing scheduled; stay as-is (setup phase)
	}
	if twakeup <= now {
		// Busy: a report is due to be sent or received. Make sure the
		// radio is (coming) on.
		ss.ensureAwake()
		return
	}
	if now < ss.opts.AwakeUntil {
		return // inside the setup slot: stay on
	}
	if ss.opts.MACBusy.Busy() {
		return // unfinished MAC work (queued frames or an owed ACK)
	}
	switch ss.radio.State() {
	case radio.Rx, radio.Tx:
		return // mid-frame; re-evaluated when it completes
	case radio.Off, radio.TurningOff:
		// Already sleeping: just make sure the wake-up is early enough.
		ss.scheduleWake(twakeup)
		return
	}
	tsleep := twakeup - now
	if tsleep <= ss.opts.BreakEven {
		ss.stats.Suppressed++
		return
	}
	ss.stats.Sleeps++
	if ss.obs != nil {
		ss.obs.Slept(ss.obsID, now, twakeup, ss.opts.BreakEven)
	}
	ss.radio.TurnOff()
	ss.scheduleWake(twakeup)
}

func (ss *SafeSleep) ensureAwake() {
	if ss.wakeEv != nil {
		ss.wakeEv.Cancel()
		ss.wakeEv = nil
	}
	ss.radio.TurnOn()
}

func (ss *SafeSleep) scheduleWake(twakeup time.Duration) {
	at := twakeup - ss.opts.WakeAhead
	if now := ss.eng.Now(); at < now {
		at = now
	}
	if ss.wakeEv != nil {
		if ss.wakeAt <= at {
			return // existing wake-up is early enough
		}
		// Pull the armed wake-up earlier in place instead of cancel+rearm.
		ss.wakeEv.RescheduleTo(at)
		ss.wakeAt = at
		return
	}
	ss.wakeAt = at
	ss.wakeEv = ss.eng.ScheduleArg(at, ssWake, ss)
}
