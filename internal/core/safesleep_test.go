package core

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
)

func newSS(t *testing.T, radioCfg radio.Config, opts SafeSleepOptions) (*sim.Engine, *radio.Radio, *SafeSleep) {
	t.Helper()
	eng := sim.New(1)
	r := radio.New(eng, radioCfg)
	return eng, r, NewSafeSleep(eng, r, opts)
}

func TestSleepsUntilNextExpectedEvent(t *testing.T) {
	cfg := radio.Config{TurnOnDelay: 2 * time.Millisecond, TurnOffDelay: time.Millisecond}
	eng, r, ss := newSS(t, cfg, SafeSleepOptions{BreakEven: -1, WakeAhead: -1})

	ss.UpdateNextSend(1, 100*time.Millisecond)
	if r.State() != radio.TurningOff {
		t.Fatalf("radio state = %v, want turning-off after a distant snext", r.State())
	}
	// Must be awake (idle) again exactly at the expected time.
	eng.Run(100 * time.Millisecond)
	if r.State() != radio.Idle {
		t.Fatalf("radio state = %v at twakeup, want idle", r.State())
	}
	// Off period should have been 100ms - 1ms(off) - 2ms(on) = 97ms.
	if got := r.TimeIn(radio.Off); got != 97*time.Millisecond {
		t.Fatalf("TimeIn(Off) = %v, want 97ms", got)
	}
}

func TestShortGapSuppressed(t *testing.T) {
	cfg := radio.Config{TurnOnDelay: 2 * time.Millisecond, TurnOffDelay: time.Millisecond}
	eng, r, ss := newSS(t, cfg, SafeSleepOptions{BreakEven: -1, WakeAhead: -1})

	// Free for 2ms < tBE (3ms): stay awake.
	ss.UpdateNextSend(1, eng.Now()+2*time.Millisecond)
	if r.State() != radio.Idle {
		t.Fatalf("radio state = %v, want idle (gap below break-even)", r.State())
	}
	if ss.Stats().Suppressed != 1 {
		t.Fatalf("Suppressed = %d, want 1", ss.Stats().Suppressed)
	}
	if ss.Stats().Sleeps != 0 {
		t.Fatalf("Sleeps = %d, want 0", ss.Stats().Sleeps)
	}
}

func TestBusyWhenExpectedTimeInPast(t *testing.T) {
	eng, r, ss := newSS(t, radio.Config{}, SafeSleepOptions{})
	eng.Run(50 * time.Millisecond)
	ss.UpdateNextReceive(1, 7, 10*time.Millisecond) // already past
	if r.State() != radio.Idle {
		t.Fatalf("radio state = %v, want idle (busy: overdue reception)", r.State())
	}
	// Even far-future snext must not allow sleep while a reception is due.
	ss.UpdateNextSend(1, time.Second)
	if r.State() != radio.Idle {
		t.Fatal("node slept despite an overdue expected reception")
	}
}

func TestEarliestOfSendAndReceiveWins(t *testing.T) {
	cfg := radio.Config{TurnOnDelay: 2 * time.Millisecond, TurnOffDelay: time.Millisecond}
	eng, r, ss := newSS(t, cfg, SafeSleepOptions{BreakEven: -1, WakeAhead: -1})
	ss.UpdateNextSend(1, 500*time.Millisecond)
	ss.UpdateNextReceive(1, 3, 100*time.Millisecond)
	eng.Run(98 * time.Millisecond)
	if r.State() != radio.Idle && r.State() != radio.TurningOn {
		t.Fatalf("radio state = %v at twakeup-2ms, want waking", r.State())
	}
	eng.Run(100 * time.Millisecond)
	if r.State() != radio.Idle {
		t.Fatalf("radio state = %v at earliest event, want idle", r.State())
	}
}

func TestMACBusyBlocksSleep(t *testing.T) {
	busy := true
	eng, r, ss := newSS(t, radio.Config{}, SafeSleepOptions{
		MACBusy: BusyFunc(func() bool { return busy }),
	})
	ss.UpdateNextSend(1, 500*time.Millisecond)
	if r.State() != radio.Idle {
		t.Fatal("node slept while MAC busy")
	}
	busy = false
	ss.CheckState() // the MAC idle callback path
	if r.State() == radio.Idle {
		t.Fatal("node still awake after MAC drained")
	}
	_ = eng
}

func TestDisabledNeverSleeps(t *testing.T) {
	eng, r, ss := newSS(t, radio.Config{}, SafeSleepOptions{Disabled: true})
	ss.UpdateNextSend(1, time.Second)
	eng.Run(500 * time.Millisecond)
	if r.State() != radio.Idle {
		t.Fatalf("disabled SS changed radio state to %v", r.State())
	}
	if !ss.Disabled() {
		t.Fatal("Disabled() = false")
	}
}

func TestSetupSlotKeepsRadioOn(t *testing.T) {
	eng, r, ss := newSS(t, radio.Config{}, SafeSleepOptions{AwakeUntil: 100 * time.Millisecond})
	ss.UpdateNextSend(1, time.Second)
	if r.State() != radio.Idle {
		t.Fatal("node slept inside the setup slot")
	}
	eng.Run(150 * time.Millisecond)
	ss.CheckState()
	if r.State() == radio.Idle {
		t.Fatal("node failed to sleep after the setup slot ended")
	}
}

func TestRemoveChildUnblocksSleep(t *testing.T) {
	eng, r, ss := newSS(t, radio.Config{}, SafeSleepOptions{})
	eng.Run(50 * time.Millisecond)
	ss.UpdateNextReceive(1, 5, 10*time.Millisecond) // overdue → busy
	ss.UpdateNextSend(1, time.Second)
	if r.State() != radio.Idle {
		t.Fatal("precondition: node should be awake")
	}
	// §4.3: removing the failed child's stale expected time lets the node
	// sleep again.
	ss.RemoveChild(1, 5)
	if r.State() == radio.Idle {
		t.Fatal("node still awake after stale child removal")
	}
}

func TestRemoveQueryClearsAllState(t *testing.T) {
	eng, r, ss := newSS(t, radio.Config{}, SafeSleepOptions{})
	eng.Run(50 * time.Millisecond)
	ss.UpdateNextReceive(1, 5, 10*time.Millisecond)
	ss.UpdateNextReceive(1, 6, 20*time.Millisecond)
	ss.UpdateNextSend(1, 30*time.Millisecond)
	ss.UpdateNextSend(2, time.Second)
	ss.RemoveQuery(1)
	// Only query 2 remains, with a future snext: the node can sleep.
	if r.State() == radio.Idle {
		t.Fatal("node awake despite only a distant expectation remaining")
	}
}

func TestWakeRescheduledWhenEarlierEventAppears(t *testing.T) {
	cfg := radio.Config{}
	eng, r, ss := newSS(t, cfg, SafeSleepOptions{})
	ss.UpdateNextSend(1, time.Second)
	if r.State() != radio.Off {
		t.Fatalf("radio state = %v, want off", r.State())
	}
	// A new earlier expectation (e.g. a re-parented child) must pull the
	// wake-up forward.
	ss.UpdateNextReceive(1, 9, 200*time.Millisecond)
	eng.Run(200 * time.Millisecond)
	if r.State() != radio.Idle {
		t.Fatalf("radio state = %v at the earlier event, want idle", r.State())
	}
	if got := r.TimeIn(radio.Off); got != 200*time.Millisecond {
		t.Fatalf("TimeIn(Off) = %v, want exactly 200ms", got)
	}
}

func TestNoExpectationsNoAction(t *testing.T) {
	eng, r, ss := newSS(t, radio.Config{}, SafeSleepOptions{})
	ss.CheckState()
	eng.Run(100 * time.Millisecond)
	if r.State() != radio.Idle {
		t.Fatalf("radio state = %v with no expectations, want idle", r.State())
	}
}

func TestReSleepAfterReceptionEnds(t *testing.T) {
	eng, r, ss := newSS(t, radio.Config{}, SafeSleepOptions{})
	// Expect a reception at 100ms: sleep until then.
	ss.UpdateNextReceive(1, 3, 100*time.Millisecond)
	if r.State() != radio.Off {
		t.Fatal("precondition: sleeping until the expected reception")
	}
	// The frame arrives at 100ms and lasts 2ms. Mid-reception, the shaper
	// advances rnext into the future (as it does from ReportReceived);
	// CheckState must defer while the radio is in Rx, then the Rx→Idle
	// transition re-evaluates and puts the node back to sleep.
	eng.Schedule(100*time.Millisecond, func() { r.BeginRx() })
	eng.Schedule(101*time.Millisecond, func() { ss.UpdateNextReceive(1, 3, time.Second) })
	eng.Schedule(102*time.Millisecond, func() { r.EndRx() })
	eng.Run(103 * time.Millisecond)
	if r.State() == radio.Idle {
		t.Fatal("node stayed awake after the reception completed")
	}
	eng.Run(time.Second)
	if r.State() != radio.Idle {
		t.Fatalf("radio state = %v at the next expected event, want idle", r.State())
	}
}

func TestBreakEvenZeroSleepsThroughTinyGaps(t *testing.T) {
	eng, r, ss := newSS(t, radio.Config{}, SafeSleepOptions{BreakEven: 0})
	r.RecordSleepIntervals()
	ss.UpdateNextSend(1, eng.Now()+time.Millisecond)
	eng.Run(time.Millisecond)
	if got := len(r.SleepIntervals()); got != 1 {
		t.Fatalf("recorded %d sleep intervals, want 1 (TBE=0 sleeps any gap)", got)
	}
	if r.SleepIntervals()[0] != time.Millisecond {
		t.Fatalf("sleep interval = %v, want 1ms", r.SleepIntervals()[0])
	}
}

func TestDefaultsDeriveFromRadio(t *testing.T) {
	cfg := radio.Mica2Config()
	_, _, ss := newSS(t, cfg, SafeSleepOptions{BreakEven: -1, WakeAhead: -1})
	if ss.opts.BreakEven != cfg.BreakEven() {
		t.Fatalf("BreakEven = %v, want %v", ss.opts.BreakEven, cfg.BreakEven())
	}
	if ss.opts.WakeAhead != cfg.TurnOnDelay {
		t.Fatalf("WakeAhead = %v, want %v", ss.opts.WakeAhead, cfg.TurnOnDelay)
	}
}

// TestSleepAccountingMatchesSchedule drives a periodic send/receive
// pattern and checks the radio sleeps through every free window.
func TestSleepAccountingMatchesSchedule(t *testing.T) {
	eng, r, ss := newSS(t, radio.Config{}, SafeSleepOptions{})
	period := 100 * time.Millisecond
	const intervals = 10
	var q query.ID = 1
	// Simulate: at each period boundary the node "receives" (instant) and
	// re-arms for the next period.
	var arm func(k int)
	arm = func(k int) {
		if k >= intervals {
			return
		}
		at := time.Duration(k) * period
		ss.UpdateNextReceive(q, 2, at)
		eng.Schedule(at, func() {
			ss.UpdateNextReceive(q, 2, at+period)
			arm(k + 1)
		})
	}
	arm(1)
	eng.Run(time.Duration(intervals) * period)
	// With zero-cost transitions, the node should be off essentially the
	// whole time (awake only at the instant boundaries).
	duty := r.DutyCycle()
	if duty > 0.01 {
		t.Fatalf("duty cycle = %.3f, want ~0 with instantaneous events", duty)
	}
}
