package core

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
)

// fakeEnv is a scripted core.Env for shaper unit tests.
type fakeEnv struct {
	eng      *sim.Engine
	self     query.NodeID
	root     bool
	rank     int
	ranks    map[query.NodeID]int
	maxRank  int
	controls []struct {
		dst query.NodeID
		msg any
	}
	phaseReqs []query.NodeID
}

func (f *fakeEnv) Now() time.Duration { return f.eng.Now() }
func (f *fakeEnv) Self() query.NodeID { return f.self }
func (f *fakeEnv) IsRoot() bool       { return f.root }
func (f *fakeEnv) Rank() int          { return f.rank }
func (f *fakeEnv) RankOf(n query.NodeID) int {
	if r, ok := f.ranks[n]; ok {
		return r
	}
	return 0
}
func (f *fakeEnv) MaxRank() int { return f.maxRank }
func (f *fakeEnv) SendControl(dst query.NodeID, msg any, bytes int) {
	f.controls = append(f.controls, struct {
		dst query.NodeID
		msg any
	}{dst, msg})
}
func (f *fakeEnv) RequestPhaseUpdate(child query.NodeID, q query.ID) {
	f.phaseReqs = append(f.phaseReqs, child)
}

func shaperFixture(t *testing.T, rank, maxRank int) (*sim.Engine, *fakeEnv, *SafeSleep) {
	t.Helper()
	eng := sim.New(1)
	r := radio.New(eng, radio.Config{})
	ss := NewSafeSleep(eng, r, SafeSleepOptions{Disabled: true}) // bookkeeping only
	env := &fakeEnv{eng: eng, self: 1, rank: rank, maxRank: maxRank, ranks: map[query.NodeID]int{}}
	return eng, env, ss
}

var testSpec = query.Spec{ID: 1, Period: time.Second, Phase: 2 * time.Second, Class: 1}

// --- NTS ---------------------------------------------------------------

func TestNTSSchedule(t *testing.T) {
	eng, env, ss := shaperFixture(t, 2, 4)
	n := NewNTS(env, ss)
	n.QueryAdded(testSpec, []query.NodeID{7})

	// s(k) = r(k) = φ + kP.
	sendAt, phase := n.ReportReady(1, 0, 2*time.Second)
	if sendAt != 2*time.Second || phase != query.NoPhase {
		t.Fatalf("ReportReady = (%v, %v), want (2s, NoPhase)", sendAt, phase)
	}
	// Late report goes immediately with no penalty.
	sendAt, _ = n.ReportReady(1, 1, 3100*time.Millisecond)
	if sendAt != 3100*time.Millisecond {
		t.Fatalf("late ReportReady = %v, want immediate", sendAt)
	}
	// snext advances on send.
	n.ReportSent(1, 1)
	if got := ss.sendTime(1); got != 4*time.Second {
		t.Fatalf("snext = %v after sending k=1, want 4s", got)
	}
	// rnext advances on receive.
	n.ReportReceived(1, 7, 2, query.NoPhase)
	if got := ss.recvTime(1, 7); got != 5*time.Second {
		t.Fatalf("rnext = %v after receiving k=2, want 5s", got)
	}
	_ = eng
}

func TestNTSTimeoutByRank(t *testing.T) {
	_, env, ss := shaperFixture(t, 2, 4)
	n := NewNTS(env, ss)
	n.QueryAdded(testSpec, nil)
	// tTO(d) = (d+1)·D/M with D = P: (2+1)·1s/4 = 750ms past the start.
	if got := n.CollectDeadline(1, 0); got != 2750*time.Millisecond {
		t.Fatalf("CollectDeadline = %v, want 2.75s", got)
	}
}

func TestNTSIntervalClosedAdvancesMissing(t *testing.T) {
	_, env, ss := shaperFixture(t, 1, 4)
	n := NewNTS(env, ss)
	n.QueryAdded(testSpec, []query.NodeID{7, 8})
	n.IntervalClosed(1, 0, []query.NodeID{8})
	if got := ss.recvTime(1, 8); got != 3*time.Second {
		t.Fatalf("rnext(8) = %v after timeout of k=0, want 3s", got)
	}
	// Child 7 (which did report) is advanced by ReportReceived, not here.
	if got := ss.recvTime(1, 7); got != 2*time.Second {
		t.Fatalf("rnext(7) = %v, want unchanged 2s", got)
	}
}

// --- STS ---------------------------------------------------------------

func TestSTSSchedule(t *testing.T) {
	_, env, ss := shaperFixture(t, 2, 4)
	env.ranks[7] = 1
	s := NewSTS(env, ss, 400*time.Millisecond) // l = D/M = 100ms
	s.QueryAdded(testSpec, []query.NodeID{7})

	// s(k) = φ + kP + l·d = 2s + 200ms.
	sendAt, _ := s.ReportReady(1, 0, 2*time.Second)
	if sendAt != 2200*time.Millisecond {
		t.Fatalf("ReportReady = %v, want 2.2s (buffered until s(0))", sendAt)
	}
	if s.Stats().Buffered != 1 {
		t.Fatalf("Buffered = %d, want 1", s.Stats().Buffered)
	}
	// r(k, c) = φ + kP + l·rank(c) = 2s + 100ms for the rank-1 child.
	if got := ss.recvTime(1, 7); got != 2100*time.Millisecond {
		t.Fatalf("rnext(7) = %v, want 2.1s", got)
	}
	// A late report goes immediately.
	sendAt, _ = s.ReportReady(1, 1, 3500*time.Millisecond)
	if sendAt != 3500*time.Millisecond {
		t.Fatalf("late ReportReady = %v, want immediate", sendAt)
	}
}

func TestSTSDeadlineDefaultsToPeriod(t *testing.T) {
	_, env, ss := shaperFixture(t, 1, 4)
	s := NewSTS(env, ss, 0)
	s.QueryAdded(testSpec, nil)
	// l = P/M = 250ms; s(0) = 2s + 250ms.
	sendAt, _ := s.ReportReady(1, 0, 2*time.Second)
	if sendAt != 2250*time.Millisecond {
		t.Fatalf("ReportReady = %v, want 2.25s", sendAt)
	}
}

func TestSTSRankChangeMovesSchedule(t *testing.T) {
	_, env, ss := shaperFixture(t, 1, 4)
	s := NewSTS(env, ss, 400*time.Millisecond)
	s.QueryAdded(testSpec, nil)
	sendAt, _ := s.ReportReady(1, 0, 2*time.Second)
	if sendAt != 2100*time.Millisecond {
		t.Fatalf("ReportReady = %v, want 2.1s at rank 1", sendAt)
	}
	// After re-parenting the node's rank rises to 3: schedules shift.
	env.rank = 3
	s.ParentChanged(1)
	sendAt, _ = s.ReportReady(1, 1, 3*time.Second)
	if sendAt != 3300*time.Millisecond {
		t.Fatalf("ReportReady = %v after rank change, want 3.3s", sendAt)
	}
}

func TestSTSCollectDeadlineClampedToSendTime(t *testing.T) {
	_, env, ss := shaperFixture(t, 2, 4)
	s := NewSTS(env, ss, 400*time.Millisecond)
	s.TimeoutSlack = time.Second // absurd slack: deadline would precede s(k)
	s.QueryAdded(testSpec, nil)
	if got, want := s.CollectDeadline(1, 0), 2200*time.Millisecond; got != want {
		t.Fatalf("CollectDeadline = %v, want clamped to s(0) = %v", got, want)
	}
}

// --- DTS ---------------------------------------------------------------

func TestDTSOnTimeKeepsSchedule(t *testing.T) {
	_, env, ss := shaperFixture(t, 1, 4)
	d := NewDTS(env, ss)
	d.QueryAdded(testSpec, []query.NodeID{7})

	// Ready exactly at s(0) = φ: no shift, s(1) = φ + P.
	sendAt, phase := d.ReportReady(1, 0, 2*time.Second)
	if sendAt != 2*time.Second || phase != query.NoPhase {
		t.Fatalf("ReportReady = (%v, %v), want (2s, NoPhase)", sendAt, phase)
	}
	d.ReportSent(1, 0)
	if got := ss.sendTime(1); got != 3*time.Second {
		t.Fatalf("snext = %v, want 3s", got)
	}
	if d.Stats().PhaseShifts != 0 {
		t.Fatalf("PhaseShifts = %d, want 0", d.Stats().PhaseShifts)
	}
}

func TestDTSPhaseShiftOnLateReport(t *testing.T) {
	_, env, ss := shaperFixture(t, 1, 4)
	d := NewDTS(env, ss)
	d.QueryAdded(testSpec, nil)

	// Ready 80ms late: send immediately, postpone s(1), piggyback it.
	readyAt := 2080 * time.Millisecond
	sendAt, phase := d.ReportReady(1, 0, readyAt)
	if sendAt != readyAt {
		t.Fatalf("sendAt = %v, want immediate %v", sendAt, readyAt)
	}
	if phase != readyAt+time.Second {
		t.Fatalf("phase = %v, want s(1) = %v", phase, readyAt+time.Second)
	}
	if d.Stats().PhaseShifts != 1 || d.Stats().PhaseUpdatesSent != 1 {
		t.Fatalf("stats = %+v, want 1 shift and 1 update", d.Stats())
	}
	d.ReportSent(1, 0)
	if got := ss.sendTime(1); got != readyAt+time.Second {
		t.Fatalf("snext = %v, want shifted schedule", got)
	}
	// Next interval ready on (shifted) time: no new shift.
	_, phase = d.ReportReady(1, 1, readyAt+time.Second)
	if phase != query.NoPhase {
		t.Fatalf("phase = %v on on-time report, want NoPhase", phase)
	}
}

func TestDTSParentTracksChildPhase(t *testing.T) {
	_, env, ss := shaperFixture(t, 2, 4)
	d := NewDTS(env, ss)
	d.QueryAdded(testSpec, []query.NodeID{7})

	// Report 0 without phase: r(1) = r(0) + P.
	d.ReportReceived(1, 7, 0, query.NoPhase)
	if got := ss.recvTime(1, 7); got != 3*time.Second {
		t.Fatalf("rnext = %v, want 3s", got)
	}
	// Report 1 with a phase update: adopt it directly.
	d.ReportReceived(1, 7, 1, 4200*time.Millisecond)
	if got := ss.recvTime(1, 7); got != 4200*time.Millisecond {
		t.Fatalf("rnext = %v, want the piggybacked 4.2s", got)
	}
}

func TestDTSGapTriggersResync(t *testing.T) {
	eng, env, ss := shaperFixture(t, 2, 4)
	d := NewDTS(env, ss)
	d.QueryAdded(testSpec, []query.NodeID{7})

	d.ReportReceived(1, 7, 0, query.NoPhase)
	eng.Run(5 * time.Second)
	// Interval 1 was lost; report 2 arrives with no phase → gap.
	d.ReportReceived(1, 7, 2, query.NoPhase)
	if len(env.phaseReqs) != 1 || env.phaseReqs[0] != 7 {
		t.Fatalf("phase requests = %v, want one to child 7", env.phaseReqs)
	}
	// The node must stay awake for this child: rnext pinned to now.
	if got := ss.recvTime(1, 7); got != eng.Now() {
		t.Fatalf("rnext = %v, want pinned to now (%v)", got, eng.Now())
	}
	// Still unsynced on the next phase-less report: request again.
	d.ReportReceived(1, 7, 3, query.NoPhase)
	if len(env.phaseReqs) != 2 {
		t.Fatalf("phase requests = %d, want 2 (still resyncing)", len(env.phaseReqs))
	}
	// A phase update ends the resync.
	d.ReportReceived(1, 7, 4, 9*time.Second)
	if got := ss.recvTime(1, 7); got != 9*time.Second {
		t.Fatalf("rnext = %v, want 9s", got)
	}
	d.ReportReceived(1, 7, 5, query.NoPhase)
	if len(env.phaseReqs) != 2 {
		t.Fatal("resync flag not cleared by the phase update")
	}
	if got := ss.recvTime(1, 7); got != 10*time.Second {
		t.Fatalf("rnext = %v, want 10s (normal +P advance resumed)", got)
	}
}

func TestDTSPhaseRequestForcesUpdate(t *testing.T) {
	_, env, ss := shaperFixture(t, 1, 4)
	d := NewDTS(env, ss)
	d.QueryAdded(testSpec, nil)

	d.ControlReceived(9, PhaseRequest{Query: 1})
	_, phase := d.ReportReady(1, 0, 2*time.Second) // on time, would be NoPhase
	if phase == query.NoPhase {
		t.Fatal("phase request did not force a piggybacked update")
	}
	// One-shot: the next on-time report carries nothing.
	d.ReportSent(1, 0)
	_, phase = d.ReportReady(1, 1, 3*time.Second)
	if phase != query.NoPhase {
		t.Fatal("forcePhase not consumed")
	}
}

func TestDTSParentChangedForcesUpdate(t *testing.T) {
	_, env, ss := shaperFixture(t, 1, 4)
	d := NewDTS(env, ss)
	d.QueryAdded(testSpec, nil)
	d.ParentChanged(1)
	_, phase := d.ReportReady(1, 0, 2*time.Second)
	if phase == query.NoPhase {
		t.Fatal("first report to a new parent must carry a phase update")
	}
}

func TestDTSReportFailedAdvancesAndFlags(t *testing.T) {
	_, env, ss := shaperFixture(t, 1, 4)
	d := NewDTS(env, ss)
	d.QueryAdded(testSpec, nil)
	_, _ = d.ReportReady(1, 0, 2*time.Second)
	d.ReportFailed(1, 0)
	if got := ss.sendTime(1); got != 3*time.Second {
		t.Fatalf("snext = %v after failed send, want advanced to 3s", got)
	}
	_, phase := d.ReportReady(1, 1, 3*time.Second)
	if phase == query.NoPhase {
		t.Fatal("report after a loss must carry a phase update for resync")
	}
}

func TestDTSChildAddedStaysAwakeUntilFirstReport(t *testing.T) {
	eng, env, ss := shaperFixture(t, 2, 4)
	d := NewDTS(env, ss)
	d.QueryAdded(testSpec, nil)
	eng.Run(5 * time.Second)
	d.ChildAdded(1, 7)
	if got := ss.recvTime(1, 7); got != eng.Now() {
		t.Fatalf("rnext = %v for a new child, want now (stay awake)", got)
	}
	// First report (with phase, per ParentChanged on the child side)
	// synchronizes without a gap false-positive.
	d.ReportReceived(1, 7, 4, 6*time.Second)
	if len(env.phaseReqs) != 0 {
		t.Fatal("gap detection misfired on a new child's first report")
	}
}

func TestDTSChildRemovedForgetsState(t *testing.T) {
	_, env, ss := shaperFixture(t, 2, 4)
	d := NewDTS(env, ss)
	d.QueryAdded(testSpec, []query.NodeID{7})
	d.ChildRemoved(1, 7)
	if ss.hasRecv(1, 7) {
		t.Fatal("SS still tracks the removed child")
	}
	_ = env
}

func TestDTSCollectDeadline(t *testing.T) {
	_, env, ss := shaperFixture(t, 2, 4)
	d := NewDTS(env, ss)
	d.TimeoutSlack = 50 * time.Millisecond
	d.QueryAdded(testSpec, []query.NodeID{7, 8})
	// Children at r(0)=φ: deadline = max(rnext) + tTO = 2s + 50ms.
	if got := d.CollectDeadline(1, 0); got != 2050*time.Millisecond {
		t.Fatalf("CollectDeadline = %v, want 2.05s", got)
	}
	// After child 8 phase-shifts to 2.4s, the deadline follows.
	d.ReportReceived(1, 8, 0, 3400*time.Millisecond)
	if got := d.CollectDeadline(1, 1); got != 3450*time.Millisecond {
		t.Fatalf("CollectDeadline = %v, want 3.45s", got)
	}
}

func TestShaperNames(t *testing.T) {
	_, env, ss := shaperFixture(t, 1, 4)
	for _, tc := range []struct {
		s    query.Shaper
		want string
	}{
		{NewNTS(env, ss), "NTS"},
		{NewSTS(env, ss, 0), "STS"},
		{NewDTS(env, ss), "DTS"},
	} {
		if tc.s.Name() != tc.want {
			t.Errorf("Name() = %q, want %q", tc.s.Name(), tc.want)
		}
	}
}

func TestRootHasNoSendSchedule(t *testing.T) {
	_, env, ss := shaperFixture(t, 4, 4)
	env.root = true
	for _, s := range []query.Shaper{NewNTS(env, ss), NewSTS(env, ss, 0), NewDTS(env, ss)} {
		s.QueryAdded(query.Spec{ID: query.ID(len(ss.nextSend) + 10), Period: time.Second}, nil)
	}
	if len(ss.nextSend) != 0 {
		t.Fatalf("root acquired %d snext entries, want 0", len(ss.nextSend))
	}
}
