package dynamics

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/topology"
)

// The built-in injector kinds.
const (
	KindCrash    = "crash"
	KindLinkLoss = "linkloss"
	KindBurst    = "burst"
)

func init() {
	Register(KindCrash, 0, newCrash)
	Register(KindLinkLoss, 1, newLinkLoss)
	Register(KindBurst, 2, newBurst)
}

// --- crash/recovery --------------------------------------------------------

// crash takes Count victims down at staggered times from At and, when
// Duration is positive, brings each back after that outage. Victims are
// seed-driven non-root members unless Node pins one.
type crash struct {
	p   Params
	rng *rand.Rand
}

func newCrash(p Params, rng *rand.Rand, _ int) (Injector, error) {
	if p.At < 0 {
		return nil, fmt.Errorf("dynamics/crash: negative start %v", p.At)
	}
	if p.Duration < 0 {
		return nil, fmt.Errorf("dynamics/crash: negative outage %v", p.Duration)
	}
	if p.Count <= 0 {
		p.Count = 1
	}
	return &crash{p: p, rng: rng}, nil
}

func (c *crash) Kind() string { return KindCrash }

func (c *crash) Schedule(h Host) error {
	victims := pickVictims(h, c.p, c.rng, c.p.Count)
	for i, v := range victims {
		v := v
		// Stagger successive crashes by up to one outage (or 1 s for
		// permanent crashes) so a multi-victim schedule is not one
		// simultaneous cliff.
		stagger := time.Second
		if c.p.Duration > 0 {
			stagger = c.p.Duration
		}
		at := c.p.At
		if i > 0 {
			at += time.Duration(c.rng.Int63n(int64(stagger) + 1))
		}
		h.Eng().Schedule(at, func() { h.Crash(v) })
		if c.p.Duration > 0 {
			h.Eng().Schedule(at+c.p.Duration, func() { h.Recover(v) })
		}
	}
	return nil
}

// --- per-link loss ramp ----------------------------------------------------

// linkLoss degrades every link incident to a focal node with a
// triangular loss profile: starting at At the drop probability climbs
// in Steps equal adjustments to Peak at the episode midpoint, then
// falls back to zero by At+Duration. The focal node is seed-driven
// unless Node pins one.
type linkLoss struct {
	p   Params
	rng *rand.Rand
}

func newLinkLoss(p Params, rng *rand.Rand, _ int) (Injector, error) {
	if p.At < 0 {
		return nil, fmt.Errorf("dynamics/linkloss: negative start %v", p.At)
	}
	if p.Duration <= 0 {
		return nil, fmt.Errorf("dynamics/linkloss: episode duration must be positive, got %v", p.Duration)
	}
	if p.Peak <= 0 || p.Peak >= 1 {
		return nil, fmt.Errorf("dynamics/linkloss: peak must be in (0,1), got %g", p.Peak)
	}
	if p.Steps <= 0 {
		p.Steps = 8
	}
	return &linkLoss{p: p, rng: rng}, nil
}

func (l *linkLoss) Kind() string { return KindLinkLoss }

func (l *linkLoss) Schedule(h Host) error {
	victims := pickVictims(h, l.p, l.rng, 1)
	if len(victims) == 0 {
		return fmt.Errorf("dynamics/linkloss: no focal node available")
	}
	focal := victims[0]
	neighbors := append([]topology.NodeID(nil), h.Neighbors(focal)...)
	steps := l.p.Steps
	setAll := func(p float64) {
		for _, nb := range neighbors {
			h.SetLinkLoss(focal, nb, p)
			h.SetLinkLoss(nb, focal, p)
		}
	}
	// Triangular profile: steps adjustments spread across the episode,
	// peaking at the midpoint, plus a final clear at the episode end.
	mid := float64(steps+1) / 2
	for i := 1; i <= steps; i++ {
		at := l.p.At + l.p.Duration*time.Duration(i)/time.Duration(steps+1)
		frac := 1 - math.Abs(float64(i)-mid)/mid
		p := l.p.Peak * frac
		h.Eng().Schedule(at, func() { setAll(p) })
	}
	h.Eng().Schedule(l.p.At+l.p.Duration, func() { setAll(0) })
	return nil
}

// --- traffic burst ---------------------------------------------------------

// burstIDBase keeps burst query IDs out of the way of scenario queries
// and flows (which use small non-negative and negative IDs); each burst
// injector owns a stride of burstIDStride IDs above it.
const (
	burstIDBase   = 1 << 20
	burstIDStride = 4096
)

// burst registers Queries extra queries at Period on every live member
// at time At and deregisters them Duration later: the fire-monitor
// surge from the paper's introduction, as a reusable injector. Phases
// are seed-driven within the first period after At.
type burst struct {
	p   Params
	rng *rand.Rand
	seq int // injector index within the scenario, for ID disjointness
}

func newBurst(p Params, rng *rand.Rand, index int) (Injector, error) {
	if p.At < 0 {
		return nil, fmt.Errorf("dynamics/burst: negative start %v", p.At)
	}
	if p.Duration <= 0 {
		return nil, fmt.Errorf("dynamics/burst: burst length must be positive, got %v", p.Duration)
	}
	if p.Period <= 0 {
		return nil, fmt.Errorf("dynamics/burst: report period must be positive, got %v", p.Period)
	}
	if p.Queries <= 0 {
		p.Queries = 1
	}
	if p.Queries > burstIDStride {
		// Each burst injector owns a stride of the burst ID space; more
		// queries than that would collide with the next injector's.
		return nil, fmt.Errorf("dynamics/burst: at most %d queries per burst, got %d", burstIDStride, p.Queries)
	}
	if p.Period > p.Duration {
		return nil, fmt.Errorf("dynamics/burst: period %v exceeds burst length %v", p.Period, p.Duration)
	}
	return &burst{p: p, rng: rng, seq: index}, nil
}

func (b *burst) Kind() string { return KindBurst }

func (b *burst) Schedule(h Host) error {
	for i := 0; i < b.p.Queries; i++ {
		id := query.ID(burstIDBase + b.seq*burstIDStride + i)
		phase := b.p.At + time.Duration(b.rng.Int63n(int64(b.p.Period)))
		spec := query.Spec{ID: id, Period: b.p.Period, Phase: phase, Class: 0}
		h.Eng().Schedule(b.p.At, func() {
			// Registration failures (ID collision with a scenario query)
			// cannot happen by ID-space construction; ignore defensively.
			_ = h.AddQuery(spec)
		})
		h.Eng().Schedule(b.p.At+b.p.Duration, func() { h.RemoveQuery(id) })
	}
	return nil
}
