package dynamics

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

// fakeHost records injector actions against a 10-node star (root 0).
type fakeHost struct {
	eng     *sim.Engine
	log     []string
	loss    map[[2]topology.NodeID]float64
	crashed map[topology.NodeID]bool
	queries map[query.ID]query.Spec
}

func newFakeHost() *fakeHost {
	return &fakeHost{
		eng:     sim.New(1),
		loss:    map[[2]topology.NodeID]float64{},
		crashed: map[topology.NodeID]bool{},
		queries: map[query.ID]query.Spec{},
	}
}

func (h *fakeHost) Eng() *sim.Engine { return h.eng }
func (h *fakeHost) Members() []topology.NodeID {
	out := make([]topology.NodeID, 10)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}
func (h *fakeHost) Root() topology.NodeID { return 0 }
func (h *fakeHost) Neighbors(id topology.NodeID) []topology.NodeID {
	if id == 0 {
		return nil
	}
	return []topology.NodeID{0, (id % 9) + 1}
}
func (h *fakeHost) Crash(id topology.NodeID) {
	h.crashed[id] = true
	h.log = append(h.log, fmt.Sprintf("%v crash %d", h.eng.Now(), id))
}
func (h *fakeHost) Recover(id topology.NodeID) {
	delete(h.crashed, id)
	h.log = append(h.log, fmt.Sprintf("%v recover %d", h.eng.Now(), id))
}
func (h *fakeHost) SetLinkLoss(a, b topology.NodeID, p float64) {
	h.loss[[2]topology.NodeID{a, b}] = p
}
func (h *fakeHost) AddQuery(spec query.Spec) error {
	h.queries[spec.ID] = spec
	return nil
}
func (h *fakeHost) RemoveQuery(id query.ID) { delete(h.queries, id) }

func schedule(t *testing.T, h Host, kind string, p Params, seed int64) {
	t.Helper()
	inj, err := Build(kind, p, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Schedule(h); err != nil {
		t.Fatal(err)
	}
}

func TestCrashInjectorCrashesAndRecovers(t *testing.T) {
	h := newFakeHost()
	schedule(t, h, KindCrash, Params{At: time.Second, Duration: 2 * time.Second, Count: 3}, 1)
	h.eng.RunAll()
	var crashes, recoveries int
	for _, l := range h.log {
		switch {
		case strings.Contains(l, "crash"):
			crashes++
		case strings.Contains(l, "recover"):
			recoveries++
		}
	}
	if crashes != 3 || recoveries != 3 {
		t.Fatalf("log %v: want 3 crashes and 3 recoveries", h.log)
	}
	if len(h.crashed) != 0 {
		t.Fatalf("nodes still down after recovery: %v", h.crashed)
	}
}

func TestCrashInjectorPermanentWithoutDuration(t *testing.T) {
	h := newFakeHost()
	schedule(t, h, KindCrash, Params{At: time.Second, Count: 2}, 1)
	h.eng.RunAll()
	if len(h.crashed) != 2 {
		t.Fatalf("want 2 permanently crashed nodes, got %v", h.crashed)
	}
}

func TestCrashInjectorNeverTargetsRoot(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		h := newFakeHost()
		schedule(t, h, KindCrash, Params{At: time.Second, Count: 9}, seed)
		h.eng.RunAll()
		if h.crashed[0] {
			t.Fatalf("seed %d crashed the root", seed)
		}
	}
	// A pinned root target is silently dropped.
	h := newFakeHost()
	schedule(t, h, KindCrash, Params{At: time.Second, Node: pin(0)}, 1)
	h.eng.RunAll()
	if len(h.log) != 0 {
		t.Fatalf("pinned-root crash acted: %v", h.log)
	}
}

func TestCrashInjectorDeterministicVictims(t *testing.T) {
	run := func() []string {
		h := newFakeHost()
		schedule(t, h, KindCrash, Params{At: time.Second, Duration: time.Second, Count: 4}, 7)
		h.eng.RunAll()
		return h.log
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed picked different schedules:\n%v\n%v", a, b)
	}
}

func TestLinkLossRampPeaksAndClears(t *testing.T) {
	h := newFakeHost()
	schedule(t, h, KindLinkLoss, Params{At: time.Second, Duration: 4 * time.Second, Peak: 0.5, Steps: 7, Node: pin(3)}, 1)

	// Mid-episode the focal node's links must be lossy in both directions.
	h.eng.Run(3 * time.Second)
	up := h.loss[[2]topology.NodeID{3, 0}]
	down := h.loss[[2]topology.NodeID{0, 3}]
	if up <= 0 || up > 0.5 || down != up {
		t.Fatalf("mid-episode loss up=%g down=%g, want symmetric in (0, 0.5]", up, down)
	}

	// After the episode everything is cleared.
	h.eng.RunAll()
	for k, p := range h.loss {
		if p != 0 {
			t.Fatalf("link %v still lossy (%g) after the episode", k, p)
		}
	}
}

func TestLinkLossValidation(t *testing.T) {
	bad := []Params{
		{At: time.Second, Duration: 0, Peak: 0.5},           // no episode length
		{At: time.Second, Duration: time.Second},            // no peak
		{At: time.Second, Duration: time.Second, Peak: 1.5}, // peak >= 1
		{At: -time.Second, Duration: time.Second, Peak: 0.5},
	}
	for i, p := range bad {
		if _, err := Build(KindLinkLoss, p, 1, 0); err == nil {
			t.Fatalf("params %d accepted: %+v", i, p)
		}
	}
}

func TestBurstAddsAndRemovesQueries(t *testing.T) {
	h := newFakeHost()
	schedule(t, h, KindBurst, Params{At: time.Second, Duration: 5 * time.Second, Period: 500 * time.Millisecond, Queries: 3}, 1)

	h.eng.Run(3 * time.Second)
	if len(h.queries) != 3 {
		t.Fatalf("mid-burst queries = %d, want 3", len(h.queries))
	}
	for id, spec := range h.queries {
		if id < burstIDBase {
			t.Fatalf("burst query ID %d collides with the scenario ID space", id)
		}
		if spec.Phase < time.Second || spec.Phase >= time.Second+spec.Period {
			t.Fatalf("burst phase %v outside first period after start", spec.Phase)
		}
	}
	h.eng.RunAll()
	if len(h.queries) != 0 {
		t.Fatalf("queries survive the burst: %v", h.queries)
	}
}

func TestBurstValidation(t *testing.T) {
	bad := []Params{
		{At: time.Second, Duration: time.Second},                          // no period
		{At: time.Second, Period: time.Second},                            // no length
		{At: time.Second, Duration: time.Second, Period: 2 * time.Second}, // period > length
		{At: -time.Second, Duration: time.Second, Period: 100 * time.Millisecond},
	}
	for i, p := range bad {
		if _, err := Build(KindBurst, p, 1, 0); err == nil {
			t.Fatalf("params %d accepted: %+v", i, p)
		}
	}
}

func TestUnknownKindFails(t *testing.T) {
	if _, err := Build("meteor", Params{}, 1, 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindsListsBuiltins(t *testing.T) {
	want := []string{KindCrash, KindLinkLoss, KindBurst}
	if got := Kinds(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Kinds() = %v, want %v", got, want)
	}
}

func pin(i int) *int { return &i }
