// Package dynamics is the network-dynamics fault/load layer: a registry
// of deterministic, seed-driven injectors that perturb a running
// simulation — node crash/recovery schedules, per-link loss ramps, and
// traffic bursts — so every protocol × topology combination can be
// evaluated under churn instead of only on static, always-healthy
// networks.
//
// Injectors are built from flat Params by registered builders (the same
// registry pattern as protocols and topology generators) and scheduled
// onto the engine during experiment.Build through the Host interface,
// which the experiment layer implements. Every choice an injector makes
// (victims, degraded links, burst phases) comes from its own
// rand.Rand, seeded from the scenario seed and the injector's position,
// never from the engine's stream: two runs of the same scenario perturb
// identically, and adding an injector does not shift the choices of the
// ones before it.
package dynamics

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/registry"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

// Host is the simulation surface injectors drive. The experiment layer
// implements it over the built Sim; injector actions run as ordinary
// engine events and are therefore part of the deterministic trace.
type Host interface {
	// Eng returns the run's engine; injectors schedule through it.
	Eng() *sim.Engine
	// Members returns the routing tree's live members in ID order.
	Members() []topology.NodeID
	// Root returns the tree root (never a valid fault target).
	Root() topology.NodeID
	// Neighbors returns a node's radio neighbors.
	Neighbors(id topology.NodeID) []topology.NodeID
	// Crash takes a node down recoverably; Recover brings it back.
	// Both are no-ops on the root and on nodes already in the target
	// state.
	Crash(id topology.NodeID)
	Recover(id topology.NodeID)
	// SetLinkLoss sets the drop probability of the directed link a→b.
	SetLinkLoss(a, b topology.NodeID, p float64)
	// AddQuery registers a query on every live member (crashed nodes
	// miss it, as they would miss an over-the-air setup); RemoveQuery
	// deregisters it everywhere, including on crashed nodes.
	AddQuery(spec query.Spec) error
	RemoveQuery(id query.ID)
}

// Params is the flat, declarative parameter bag one injector instance
// is built from; each kind reads the fields it needs and validates the
// rest away. The experiment spec layer maps the JSON `dynamics` block
// onto it one-to-one.
type Params struct {
	// At is when the injector starts acting.
	At time.Duration
	// Duration is how long the disturbance lasts (crash outage length,
	// loss-ramp episode length, burst length). Zero means permanent for
	// crashes and is invalid for ramps and bursts.
	Duration time.Duration
	// Node pins the target node; nil (the zero value) lets the
	// injector pick seed-driven victims.
	Node *int
	// Count is how many victims a seed-driven injector picks (crash).
	Count int
	// Peak is the maximum loss probability of a link-loss ramp.
	Peak float64
	// Steps is the number of loss adjustments across a ramp episode.
	Steps int
	// Period is the burst queries' report period.
	Period time.Duration
	// Queries is how many burst queries are injected.
	Queries int
	// Seed perturbs the injector's private random stream; the effective
	// seed also folds in the scenario seed and the injector index.
	Seed int64
}

// Injector is one scheduled disturbance.
type Injector interface {
	// Kind is the registry name the injector was built under.
	Kind() string
	// Schedule arranges the injector's actions on h's engine. It is
	// called once, during experiment.Build, before the run starts.
	Schedule(h Host) error
}

// Builder constructs an injector from params. rng is the injector's
// private seed-derived stream for every choice it must make; index is
// the injector's position in the scenario's dynamics list, for kinds
// that need per-instance identity (the burst injector derives its
// query-ID stride from it).
type Builder func(p Params, rng *rand.Rand, index int) (Injector, error)

var injectors = registry.New[string, Builder]("dynamics injector")

// Register adds a builder under kind. rank orders Kinds() for
// presentation. Register panics on duplicates.
func Register(kind string, rank int, b Builder) {
	injectors.Register(kind, rank, b)
}

// Lookup returns the builder registered under kind.
func Lookup(kind string) (Builder, bool) { return injectors.Lookup(kind) }

// Kinds lists every registered injector kind in presentation order.
func Kinds() []string { return injectors.Names() }

// Build constructs the injector for kind. The private stream is seeded
// from (scenarioSeed, index, p.Seed) so scenarios perturb reproducibly
// and injectors are independent of each other.
func Build(kind string, p Params, scenarioSeed int64, index int) (Injector, error) {
	b, ok := Lookup(kind)
	if !ok {
		return nil, fmt.Errorf("dynamics: unknown injector kind %q (registered: %v)", kind, Kinds())
	}
	seed := scenarioSeed*1_000_003 + int64(index)*7919 + p.Seed
	return b(p, rand.New(rand.NewSource(seed)), index)
}

// pickVictims draws n distinct non-root members from h, or the pinned
// node when p.Node is set. Selection is from the sorted Members list
// with the injector's private stream, so it is reproducible. A pin on
// the root or on a node outside the tree yields no victims (the root
// is never a valid fault target; a non-member has nothing to fault).
func pickVictims(h Host, p Params, rng *rand.Rand, n int) []topology.NodeID {
	members := h.Members()
	if p.Node != nil {
		id := topology.NodeID(*p.Node)
		if id == h.Root() {
			return nil
		}
		for _, m := range members {
			if m == id {
				return []topology.NodeID{id}
			}
		}
		return nil
	}
	var pool []topology.NodeID
	for _, id := range members {
		if id != h.Root() {
			pool = append(pool, id)
		}
	}
	if n > len(pool) {
		n = len(pool)
	}
	// Partial Fisher–Yates over the ID-ordered pool.
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:n]
}
