package baseline

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/geom"
	"github.com/essat/essat/internal/mac"
	"github.com/essat/essat/internal/phy"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

type tmacNet struct {
	eng    *sim.Engine
	radios []*radio.Radio
	macs   []*mac.MAC
	pms    []*TmacPM
	got    [][]any
}

type tmacTap struct {
	net *tmacNet
	id  int
}

func (d *tmacTap) Deliver(src phy.NodeID, payload any, bytes int) {
	d.net.got[d.id] = append(d.net.got[d.id], payload)
}

func newTmacNet(t *testing.T, n int) *tmacNet {
	t.Helper()
	eng := sim.New(1)
	topo, err := topology.FromPositions(geom.LinePlacement(n, 100), 125)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := phy.NewChannel(eng, topo, phy.DefaultConfig())
	net := &tmacNet{eng: eng, got: make([][]any, n)}
	for i := 0; i < n; i++ {
		r := radio.New(eng, radio.Config{})
		m := mac.New(eng, ch, phy.NodeID(i), r, mac.DefaultConfig(), &tmacTap{net: net, id: i})
		pm, err := NewTmacPM(eng, r, m, DefaultTmacConfig())
		if err != nil {
			panic(err)
		}
		net.radios = append(net.radios, r)
		net.macs = append(net.macs, m)
		net.pms = append(net.pms, pm)
	}
	for _, pm := range net.pms {
		pm.Start()
	}
	return net
}

func TestTmacIdleDutyIsTAFraction(t *testing.T) {
	net := newTmacNet(t, 2)
	net.eng.Run(10 * time.Second)
	// No traffic: awake for TA (15ms) of every 200ms frame = 7.5%.
	for i, r := range net.radios {
		duty := r.DutyCycle()
		if duty < 0.06 || duty > 0.10 {
			t.Errorf("idle T-MAC node %d duty = %.3f, want ~0.075", i, duty)
		}
	}
}

func TestTmacDeliversBufferedFrame(t *testing.T) {
	net := newTmacNet(t, 2)
	delivered := false
	net.eng.Schedule(230*time.Millisecond, func() {
		net.pms[0].SubmitReport(1, "report", 52, func(ok bool) { delivered = ok })
	})
	net.eng.Run(time.Second)
	if !delivered {
		t.Fatal("buffered frame never delivered")
	}
	if len(net.got[1]) != 1 {
		t.Fatalf("receiver got %v", net.got[1])
	}
}

func TestTmacActivityExtendsWindow(t *testing.T) {
	net := newTmacNet(t, 2)
	// A burst of 5 frames buffered mid-frame is released at the next
	// frame start (t=200ms) and keeps both nodes awake while the
	// transfers run; an idle node's awake window is only TA=15ms.
	for i := 0; i < 5; i++ {
		net.pms[0].SubmitReport(1, i, 52, nil)
	}
	// The transfers run back-to-back from 200ms (~1ms each); probe that
	// the receiver is awake mid-burst and asleep again well after the
	// last exchange + TA.
	awakeDuring := false
	asleepAfter := false
	net.eng.Schedule(203*time.Millisecond, func() { awakeDuring = net.radios[1].IsOn() })
	net.eng.Schedule(260*time.Millisecond, func() { asleepAfter = !net.radios[1].IsOn() })
	net.eng.Run(399 * time.Millisecond)
	if !awakeDuring {
		t.Error("receiver slept during an active exchange")
	}
	if !asleepAfter {
		t.Error("receiver still awake 45ms after the last activity")
	}
	if len(net.got[1]) != 5 {
		t.Fatalf("receiver got %d frames, want 5", len(net.got[1]))
	}
}

func TestTmacFramesAreSynchronized(t *testing.T) {
	net := newTmacNet(t, 3)
	// At every frame start all nodes are awake simultaneously.
	mismatches := 0
	for f := 0; f < 5; f++ {
		at := time.Duration(f)*200*time.Millisecond + 2*time.Millisecond
		net.eng.Schedule(at, func() {
			for _, r := range net.radios {
				if !r.IsOn() {
					mismatches++
				}
			}
		})
	}
	net.eng.Run(1100 * time.Millisecond)
	if mismatches != 0 {
		t.Fatalf("%d sleeping nodes at frame starts", mismatches)
	}
}

func TestTmacConfigValidation(t *testing.T) {
	eng := sim.New(1)
	r := radio.New(eng, radio.Config{})
	if _, err := NewTmacPM(eng, r, nil, TmacConfig{FramePeriod: 10 * time.Millisecond, TA: 20 * time.Millisecond}); err == nil {
		t.Error("TA > FramePeriod accepted")
	}
}
