package baseline

import (
	"fmt"
	"time"

	"github.com/essat/essat/internal/mac"
	"github.com/essat/essat/internal/node"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
)

// TmacConfig parameterizes the T-MAC baseline (van Dam & Langendoen,
// SenSys'03 — reference [12] of the paper). T-MAC is SYNC with an
// adaptive active window: all nodes wake at synchronized frame starts
// and each stays awake only until no activation event (reception,
// transmission end) has occurred for the timeout TA.
type TmacConfig struct {
	// FramePeriod is the synchronized wake-up period.
	FramePeriod time.Duration
	// TA is the activation timeout: the node sleeps once the channel has
	// been uneventful for this long. Must cover a contention round plus a
	// frame exchange.
	TA time.Duration
}

// DefaultTmacConfig matches the evaluation's 0.2 s frame with a TA
// covering roughly a worst-case contention window plus one exchange.
func DefaultTmacConfig() TmacConfig {
	return TmacConfig{FramePeriod: 200 * time.Millisecond, TA: 15 * time.Millisecond}
}

// TmacPM implements the T-MAC baseline at one node. Reports submitted
// mid-frame are buffered and released at the next synchronized frame
// start, when every node is briefly awake; activity then keeps the
// participants awake (each reception or transmission resets TA) while
// idle nodes drop out early. T-MAC adapts to load like PSM but without
// announcement traffic — and, as the paper argues for all MAC-level
// schemes, without knowing *when* the application will need the radio,
// which is exactly what ESSAT exploits.
type TmacPM struct {
	eng   *sim.Engine
	radio *radio.Radio
	mac   *mac.MAC
	cfg   TmacConfig

	buf          []psmItem
	lastActivity time.Duration
	checkEv      *sim.Event
	checkFn      func() // prebound TA-deadline callback
}

var _ node.PowerManager = (*TmacPM)(nil)
var _ node.ReportGate = (*TmacPM)(nil)

// Validate reports whether the configuration is runnable. It is the
// check NewTmacPM enforces, exposed so config errors become build-time
// errors instead of panics.
func (c TmacConfig) Validate() error {
	if c.FramePeriod <= 0 || c.TA <= 0 || c.TA > c.FramePeriod {
		return fmt.Errorf("baseline: T-MAC needs 0 < TA <= FramePeriod, got TA %v, frame %v", c.TA, c.FramePeriod)
	}
	return nil
}

// NewTmacPM creates a T-MAC power manager for one node. An invalid
// config is an error, not a panic: baselines are reachable from
// declarative specs, and a malformed spec must never take down the
// process hosting the run.
func NewTmacPM(eng *sim.Engine, r *radio.Radio, m *mac.MAC, cfg TmacConfig) (*TmacPM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &TmacPM{eng: eng, radio: r, mac: m, cfg: cfg}
	p.checkFn = func() {
		p.checkEv = nil
		p.maybeSleep()
	}
	// Receptions and transmission completions are activation events.
	r.Subscribe(func(old, new radio.State) {
		if (old == radio.Rx || old == radio.Tx) && new == radio.Idle {
			p.lastActivity = eng.Now()
		}
	})
	m.SetIdleFunc(p.maybeSleep)
	return p, nil
}

// Name implements node.PowerManager.
func (p *TmacPM) Name() string { return "TMAC" }

// Start implements node.PowerManager.
func (p *TmacPM) Start() { p.frameStart() }

// SubmitReport implements node.ReportGate: buffer until the next frame
// start so the receiver is guaranteed awake when the exchange begins.
func (p *TmacPM) SubmitReport(dst node.NodeID, payload any, bytes int, cb func(bool)) {
	p.buf = append(p.buf, psmItem{dst: dst, payload: payload, bytes: bytes, cb: cb})
}

func (p *TmacPM) frameStart() {
	p.eng.After(p.cfg.FramePeriod, p.frameStart)
	p.radio.TurnOn()
	p.lastActivity = p.eng.Now()
	for _, it := range p.buf {
		p.mac.Send(it.dst, it.payload, it.bytes, it.cb)
	}
	p.buf = p.buf[:0]
	p.scheduleCheck()
}

func (p *TmacPM) scheduleCheck() {
	at := p.lastActivity + p.cfg.TA
	if now := p.eng.Now(); at <= now {
		return // deadline already passed; the MAC idle callback re-checks
	}
	if p.checkEv != nil {
		// Move the armed deadline in place: no cancel, no new closure.
		p.checkEv.RescheduleTo(at)
		return
	}
	p.checkEv = p.eng.Schedule(at, p.checkFn)
}

// maybeSleep powers down once TA expired with no activity and no pending
// MAC work. While the TA window is open it re-arms the deadline check;
// while the MAC is busy it waits for the MAC-idle callback instead (the
// transmission's end will also refresh lastActivity).
func (p *TmacPM) maybeSleep() {
	if !p.radio.IsOn() {
		return
	}
	now := p.eng.Now()
	if now < p.lastActivity+p.cfg.TA {
		p.scheduleCheck()
		return
	}
	if p.mac.Busy() {
		return // re-entered from SetIdleFunc when the MAC drains
	}
	if p.checkEv != nil {
		p.checkEv.Cancel()
		p.checkEv = nil
	}
	p.radio.TurnOff()
}
