// Package baseline implements the power-management schemes the paper
// compares ESSAT against (§5):
//
//   - SYNC: a synchronized fixed duty cycle — every node is awake for the
//     same active window of each period (20% at 0.2 s in the paper),
//     the approach of synchronous wake-up protocols like S-MAC.
//   - PSM: IEEE 802.11 power-save with the traffic-advertisement
//     extension: all nodes wake for the ATIM window of every beacon
//     period, announce pending traffic, and only the announced
//     sender/receiver pairs stay up for the data window.
//   - SPAN: a communication-backbone scheme. Following the paper's own
//     configuration, the backbone is the set of non-leaf routing-tree
//     nodes, kept always on, while leaf nodes run NTS-SS. The backbone
//     policy is expressed by disabling Safe Sleep on those nodes (see the
//     experiment wiring), so this package only provides the shared
//     building blocks.
//
// The Greedy shaper gives baseline nodes the protocol-independent query
// mechanics (aggregation deadlines) with no traffic shaping and no sleep
// bookkeeping.
package baseline

import (
	"fmt"
	"time"

	"github.com/essat/essat/internal/mac"
	"github.com/essat/essat/internal/node"
	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
)

// Greedy is a pass-through "shaper": reports are forwarded the moment
// they are ready and no sleep schedule is maintained. Collection
// deadlines default to 3/4 of the query period past the interval start,
// stretched to PerHopDelay·(rank+1) for power managers whose store-and-
// forward latency exceeds the query period (PSM and SYNC wait up to a
// full beacon per hop, so a deeper node must wait proportionally longer
// for its subtree or aggregation degenerates into per-source forwarding).
type Greedy struct {
	// TimeoutFraction of the period to wait for children. Zero selects
	// the 0.75 default.
	TimeoutFraction float64
	// PerHopDelay is the power manager's expected per-hop forwarding
	// delay (e.g. the PSM/SYNC beacon period). Zero disables the stretch.
	PerHopDelay time.Duration

	rank  func() int
	specs map[query.ID]query.Spec
}

var _ query.Shaper = (*Greedy)(nil)

// NewGreedy returns a greedy no-op shaper. rank reports the node's
// current rank and may be nil when PerHopDelay is unused.
func NewGreedy(rank func() int) *Greedy {
	if rank == nil {
		rank = func() int { return 0 }
	}
	return &Greedy{rank: rank, specs: make(map[query.ID]query.Spec)}
}

// Name implements query.Shaper.
func (g *Greedy) Name() string { return "greedy" }

// QueryAdded implements query.Shaper.
func (g *Greedy) QueryAdded(spec query.Spec, children []query.NodeID) { g.specs[spec.ID] = spec }

// ReportReady implements query.Shaper: send immediately, no piggyback.
func (g *Greedy) ReportReady(q query.ID, k int, readyAt time.Duration) (time.Duration, time.Duration) {
	return readyAt, query.NoPhase
}

// ReportSent implements query.Shaper.
func (g *Greedy) ReportSent(q query.ID, k int) {}

// ReportFailed implements query.Shaper.
func (g *Greedy) ReportFailed(q query.ID, k int) {}

// ReportReceived implements query.Shaper.
func (g *Greedy) ReportReceived(q query.ID, c query.NodeID, k int, phase time.Duration) {}

// IntervalClosed implements query.Shaper.
func (g *Greedy) IntervalClosed(q query.ID, k int, missing []query.NodeID) {}

// CollectDeadline implements query.Shaper.
func (g *Greedy) CollectDeadline(q query.ID, k int) time.Duration {
	spec := g.specs[q]
	frac := g.TimeoutFraction
	if frac <= 0 {
		frac = 0.75
	}
	wait := time.Duration(frac * float64(spec.Period))
	if byHops := g.PerHopDelay * time.Duration(g.rank()+1); byHops > wait {
		wait = byHops
	}
	return spec.IntervalStart(k) + wait
}

// QueryRemoved implements query.Shaper.
func (g *Greedy) QueryRemoved(q query.ID) { delete(g.specs, q) }

// ChildAdded implements query.Shaper.
func (g *Greedy) ChildAdded(q query.ID, c query.NodeID) {}

// ChildRemoved implements query.Shaper.
func (g *Greedy) ChildRemoved(q query.ID, c query.NodeID) {}

// ParentChanged implements query.Shaper.
func (g *Greedy) ParentChanged(q query.ID) {}

// ControlReceived implements query.Shaper.
func (g *Greedy) ControlReceived(from query.NodeID, msg any) {}

// --- SYNC -------------------------------------------------------------------

// SyncConfig parameterizes the SYNC fixed-duty-cycle protocol.
type SyncConfig struct {
	// Period of the shared schedule (0.2 s in the paper).
	Period time.Duration
	// ActiveWindow is the awake prefix of each period (20% duty → 40 ms).
	ActiveWindow time.Duration
}

// DefaultSyncConfig returns the paper's SYNC configuration: 20% duty
// cycle with a 0.2 s period.
func DefaultSyncConfig() SyncConfig {
	return SyncConfig{Period: 200 * time.Millisecond, ActiveWindow: 40 * time.Millisecond}
}

// SyncPM keeps the radio on for the first ActiveWindow of every Period,
// synchronized across all nodes. The MAC transmits only while the radio
// is on, so frames queue until the next shared active window.
type SyncPM struct {
	eng   *sim.Engine
	radio *radio.Radio
	cfg   SyncConfig
}

var _ node.PowerManager = (*SyncPM)(nil)

// Validate reports whether the configuration is runnable. It is the
// check NewSyncPM enforces, exposed so config errors become build-time
// errors instead of panics.
func (c SyncConfig) Validate() error {
	if c.Period <= 0 || c.ActiveWindow <= 0 || c.ActiveWindow > c.Period {
		return fmt.Errorf("baseline: SYNC needs 0 < ActiveWindow <= Period, got window %v, period %v", c.ActiveWindow, c.Period)
	}
	return nil
}

// NewSyncPM creates a SYNC power manager for one node. An invalid
// config is an error, not a panic: baselines are reachable from
// declarative specs, and a malformed spec must never take down the
// process hosting the run.
func NewSyncPM(eng *sim.Engine, r *radio.Radio, cfg SyncConfig) (*SyncPM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SyncPM{eng: eng, radio: r, cfg: cfg}, nil
}

// Name implements node.PowerManager.
func (p *SyncPM) Name() string { return "SYNC" }

// Start implements node.PowerManager.
func (p *SyncPM) Start() { p.windowStart() }

func (p *SyncPM) windowStart() {
	p.radio.TurnOn()
	p.eng.After(p.cfg.ActiveWindow, func() { p.radio.TurnOff() })
	p.eng.After(p.cfg.Period, p.windowStart)
}

// --- PSM --------------------------------------------------------------------

// AtimMsg is PSM's traffic announcement, unicast to the receiver during
// the ATIM window: the sender advertises that it holds frames for Dst
// this beacon period. The MAC-level acknowledgement doubles as the
// ATIM-ACK: only acknowledged destinations receive data this beacon.
type AtimMsg struct {
	Dst node.NodeID
}

// PsmConfig parameterizes the PSM baseline.
type PsmConfig struct {
	// BeaconPeriod is the full cycle (0.2 s in the paper).
	BeaconPeriod time.Duration
	// AtimWindow is the all-awake announcement window (0.025 s).
	AtimWindow time.Duration
	// DataWindow is the advertisement window following the ATIM window
	// (0.1 s): an announced receiver stays awake at least this long after
	// the ATIM window, extended while traffic keeps arriving.
	DataWindow time.Duration
	// AtimBytes is the on-air size of an announcement.
	AtimBytes int
}

// DefaultPsmConfig returns the paper's PSM configuration.
func DefaultPsmConfig() PsmConfig {
	return PsmConfig{
		BeaconPeriod: 200 * time.Millisecond,
		AtimWindow:   25 * time.Millisecond,
		DataWindow:   100 * time.Millisecond,
		AtimBytes:    14,
	}
}

type psmItem struct {
	dst      node.NodeID
	payload  any
	bytes    int
	cb       func(bool)
	attempts int
}

// PsmPM implements the PSM baseline at one node. Reports submitted by the
// query agent are buffered; at each beacon the node announces buffered
// destinations in the ATIM window, releases the buffer into the MAC, and
// sleeps once its own queue drained and — if it was announced as a
// receiver — the advertisement window passed with no further traffic.
type PsmPM struct {
	eng   *sim.Engine
	id    node.NodeID
	radio *radio.Radio
	mac   *mac.MAC
	cfg   PsmConfig

	buf       []*psmItem
	acked     map[node.NodeID]bool
	inAtim    bool
	holdUntil time.Duration
	windowEnd time.Duration
	sleepEv   *sim.Event

	// Announcements counts ATIM frames sent (protocol overhead).
	Announcements uint64
	// Rebuffered counts frames whose in-window delivery failed and that
	// were queued again for the next beacon.
	Rebuffered uint64
}

var _ node.PowerManager = (*PsmPM)(nil)
var _ node.ReportGate = (*PsmPM)(nil)
var _ node.ControlSink = (*PsmPM)(nil)

// Validate reports whether the configuration is runnable. It is the
// check NewPsmPM enforces, exposed so config errors become build-time
// errors instead of panics.
func (c PsmConfig) Validate() error {
	if c.BeaconPeriod <= 0 || c.AtimWindow <= 0 || c.AtimWindow > c.BeaconPeriod {
		return fmt.Errorf("baseline: PSM needs 0 < AtimWindow <= BeaconPeriod, got window %v, period %v", c.AtimWindow, c.BeaconPeriod)
	}
	if c.DataWindow < 0 || c.AtimWindow+c.DataWindow > c.BeaconPeriod {
		return fmt.Errorf("baseline: PSM windows (%v + %v) exceed the beacon period %v", c.AtimWindow, c.DataWindow, c.BeaconPeriod)
	}
	return nil
}

// NewPsmPM creates a PSM power manager for one node. An invalid config
// is an error, not a panic: baselines are reachable from declarative
// specs, and a malformed spec must never take down the process hosting
// the run.
func NewPsmPM(eng *sim.Engine, id node.NodeID, r *radio.Radio, m *mac.MAC, cfg PsmConfig) (*PsmPM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &PsmPM{eng: eng, id: id, radio: r, mac: m, cfg: cfg, acked: make(map[node.NodeID]bool)}
	m.SetIdleFunc(p.maybeSleep)
	return p, nil
}

// Name implements node.PowerManager.
func (p *PsmPM) Name() string { return "PSM" }

// Start implements node.PowerManager.
func (p *PsmPM) Start() { p.beaconStart() }

// SubmitReport implements node.ReportGate: buffer until the next beacon's
// announcement cycle.
func (p *PsmPM) SubmitReport(dst node.NodeID, payload any, bytes int, cb func(bool)) {
	p.buf = append(p.buf, &psmItem{dst: dst, payload: payload, bytes: bytes, cb: cb})
}

// HandleControl implements node.ControlSink: an announcement naming this
// node keeps it awake through the advertisement window.
func (p *PsmPM) HandleControl(src node.NodeID, msg any) {
	atim, ok := msg.(AtimMsg)
	if !ok {
		return
	}
	if atim.Dst == p.id {
		p.extendHold(p.beaconBase() + p.cfg.AtimWindow + p.cfg.DataWindow)
	}
}

// beaconBase returns the start time of the current beacon period.
func (p *PsmPM) beaconBase() time.Duration {
	return p.eng.Now() / p.cfg.BeaconPeriod * p.cfg.BeaconPeriod
}

func (p *PsmPM) extendHold(until time.Duration) {
	if until > p.holdUntil {
		p.holdUntil = until
	}
}

// maybeSleep powers the radio down when the node has no in-flight work
// and no reason to keep listening this beacon. Frames still buffered for
// the next beacon do not keep the radio on: that is the point of PSM.
func (p *PsmPM) maybeSleep() {
	now := p.eng.Now()
	if now < p.holdUntil {
		if p.sleepEv == nil || p.sleepEv.Canceled() {
			p.sleepEv = p.eng.Schedule(p.holdUntil, func() {
				p.sleepEv = nil
				p.maybeSleep()
			})
		}
		return
	}
	if p.mac.Busy() {
		return // MAC idle callback will retry
	}
	p.radio.TurnOff()
}

func (p *PsmPM) beaconStart() {
	p.eng.After(p.cfg.BeaconPeriod, p.beaconStart)
	p.radio.TurnOn()
	// Everyone listens through the ATIM window.
	p.holdUntil = p.eng.Now() + p.cfg.AtimWindow
	p.inAtim = true
	p.acked = make(map[node.NodeID]bool)

	if len(p.buf) > 0 {
		announced := make(map[node.NodeID]bool)
		for _, it := range p.buf {
			if announced[it.dst] {
				continue
			}
			announced[it.dst] = true
			p.Announcements++
			dst := it.dst
			p.mac.Send(dst, AtimMsg{Dst: dst}, p.cfg.AtimBytes, func(ok bool) {
				if !ok {
					return // receiver missed the ATIM; retry next beacon
				}
				p.acked[dst] = true
				if !p.inAtim {
					// Late ATIM-ACK: the data window already started.
					p.releaseNext()
				}
			})
		}
	}
	p.eng.After(p.cfg.AtimWindow, p.atimEnd)
}

func (p *PsmPM) atimEnd() {
	// Transfers happen inside the advertisement window, one frame at a
	// time, and only toward destinations whose ATIM was acknowledged (the
	// ACK proves the receiver heard the announcement and will hold).
	// Whatever does not fit is re-announced next beacon. The window is a
	// boundary both ends share, so the receiver can sleep at its end
	// without stranding a sender mid-burst.
	p.inAtim = false
	p.windowEnd = p.eng.Now() + p.cfg.DataWindow
	p.releaseNext()
}

// releaseGuard is the minimum window remainder worth starting a transfer
// in; anything later risks the receiver sleeping mid-exchange.
const releaseGuard = 20 * time.Millisecond

func (p *PsmPM) releaseNext() {
	if p.inAtim || p.mac.QueueLen() > 0 {
		return // a transfer is already in flight; its callback continues
	}
	if p.eng.Now() > p.windowEnd-releaseGuard {
		p.maybeSleep()
		return
	}
	// Pick the first frame whose destination acknowledged an ATIM.
	idx := -1
	for i, it := range p.buf {
		if p.acked[it.dst] {
			idx = i
			break
		}
	}
	if idx < 0 {
		p.maybeSleep()
		return
	}
	it := p.buf[idx]
	p.buf = append(p.buf[:idx:idx], p.buf[idx+1:]...)
	p.mac.Send(it.dst, it.payload, it.bytes, func(ok bool) {
		switch {
		case ok:
			if it.cb != nil {
				it.cb(true)
			}
		case it.attempts < 4:
			// The receiver likely slept at the window boundary; try again
			// next beacon rather than reporting a link failure.
			it.attempts++
			p.Rebuffered++
			p.buf = append(p.buf, it)
		default:
			if it.cb != nil {
				it.cb(false)
			}
		}
		p.releaseNext()
	})
}

// phyBroadcast avoids importing phy just for the constant.
const phyBroadcast node.NodeID = -1
