package baseline

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/geom"
	"github.com/essat/essat/internal/mac"
	"github.com/essat/essat/internal/phy"
	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

// --- Greedy -----------------------------------------------------------------

func TestGreedySendsImmediately(t *testing.T) {
	g := NewGreedy(nil)
	spec := query.Spec{ID: 1, Period: time.Second, Phase: 0}
	g.QueryAdded(spec, nil)
	at, phase := g.ReportReady(1, 3, 1234*time.Millisecond)
	if at != 1234*time.Millisecond || phase != query.NoPhase {
		t.Fatalf("ReportReady = (%v, %v), want immediate with no phase", at, phase)
	}
}

func TestGreedyDeadlineFraction(t *testing.T) {
	g := NewGreedy(nil)
	spec := query.Spec{ID: 1, Period: time.Second, Phase: 2 * time.Second}
	g.QueryAdded(spec, nil)
	if got := g.CollectDeadline(1, 0); got != 2750*time.Millisecond {
		t.Fatalf("CollectDeadline = %v, want 2.75s (0.75P)", got)
	}
	g.TimeoutFraction = 0.5
	if got := g.CollectDeadline(1, 2); got != 4500*time.Millisecond {
		t.Fatalf("CollectDeadline = %v, want 4.5s", got)
	}
}

func TestGreedyPerHopStretch(t *testing.T) {
	rank := 3
	g := NewGreedy(func() int { return rank })
	g.PerHopDelay = 200 * time.Millisecond
	spec := query.Spec{ID: 1, Period: 200 * time.Millisecond, Phase: 0}
	g.QueryAdded(spec, nil)
	// max(0.75·200ms, 200ms·4) = 800ms.
	if got := g.CollectDeadline(1, 0); got != 800*time.Millisecond {
		t.Fatalf("CollectDeadline = %v, want 800ms", got)
	}
	rank = 0
	// max(150ms, 200ms) = 200ms.
	if got := g.CollectDeadline(1, 0); got != 200*time.Millisecond {
		t.Fatalf("CollectDeadline = %v at rank 0, want 200ms", got)
	}
}

// --- SYNC -------------------------------------------------------------------

func TestSyncDutyCycleIsFixed(t *testing.T) {
	eng := sim.New(1)
	r := radio.New(eng, radio.Config{})
	pm, err := NewSyncPM(eng, r, DefaultSyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	pm.Start()
	eng.Run(10 * time.Second)
	duty := r.DutyCycle()
	if duty < 0.19 || duty > 0.21 {
		t.Fatalf("SYNC duty cycle = %.3f, want ~0.20", duty)
	}
}

func TestSyncWindowsAreSynchronized(t *testing.T) {
	eng := sim.New(1)
	r1 := radio.New(eng, radio.Config{})
	r2 := radio.New(eng, radio.Config{})
	pm1, _ := NewSyncPM(eng, r1, DefaultSyncConfig())
	pm2, _ := NewSyncPM(eng, r2, DefaultSyncConfig())
	pm1.Start()
	pm2.Start()
	mismatches := 0
	for probe := 10 * time.Millisecond; probe < 2*time.Second; probe += 17 * time.Millisecond {
		eng.Schedule(probe, func() {
			if r1.IsOn() != r2.IsOn() {
				mismatches++
			}
		})
	}
	eng.Run(2 * time.Second)
	if mismatches != 0 {
		t.Fatalf("%d probe points with unsynchronized radios", mismatches)
	}
}

func TestSyncConfigValidation(t *testing.T) {
	eng := sim.New(1)
	r := radio.New(eng, radio.Config{})
	if _, err := NewSyncPM(eng, r, SyncConfig{Period: time.Second, ActiveWindow: 2 * time.Second}); err == nil {
		t.Error("invalid SYNC config accepted")
	}
}

// --- PSM --------------------------------------------------------------------

type psmNet struct {
	eng    *sim.Engine
	radios []*radio.Radio
	macs   []*mac.MAC
	pms    []*PsmPM
	got    [][]any
}

// deliverTap dispatches data payloads into got and ATIMs into the PM.
type deliverTap struct {
	net *psmNet
	id  int
}

func (d *deliverTap) Deliver(src phy.NodeID, payload any, bytes int) {
	if atim, ok := payload.(AtimMsg); ok {
		d.net.pms[d.id].HandleControl(src, atim)
		return
	}
	d.net.got[d.id] = append(d.net.got[d.id], payload)
}

func newPsmNet(t *testing.T, n int) *psmNet {
	t.Helper()
	eng := sim.New(1)
	topo, err := topology.FromPositions(geom.LinePlacement(n, 100), 125)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := phy.NewChannel(eng, topo, phy.DefaultConfig())
	net := &psmNet{eng: eng, got: make([][]any, n)}
	for i := 0; i < n; i++ {
		r := radio.New(eng, radio.Config{})
		tap := &deliverTap{net: net, id: i}
		m := mac.New(eng, ch, phy.NodeID(i), r, mac.DefaultConfig(), tap)
		pm, err := NewPsmPM(eng, phy.NodeID(i), r, m, DefaultPsmConfig())
		if err != nil {
			panic(err)
		}
		net.radios = append(net.radios, r)
		net.macs = append(net.macs, m)
		net.pms = append(net.pms, pm)
	}
	for _, pm := range net.pms {
		pm.Start()
	}
	return net
}

func TestPsmIdleDutyIsAtimFraction(t *testing.T) {
	net := newPsmNet(t, 2)
	net.eng.Run(10 * time.Second)
	// No traffic: awake only for the 25ms ATIM window of each 200ms beacon.
	for i, r := range net.radios {
		duty := r.DutyCycle()
		if duty < 0.10 || duty > 0.16 {
			t.Errorf("idle PSM node %d duty = %.3f, want ~0.125", i, duty)
		}
	}
}

func TestPsmDeliversBufferedTraffic(t *testing.T) {
	net := newPsmNet(t, 2)
	delivered := false
	// Submit mid-beacon: the frame must wait for the next beacon's ATIM
	// announcement, then transfer in the data window.
	net.eng.Schedule(230*time.Millisecond, func() {
		net.pms[0].SubmitReport(1, "report", 52, func(ok bool) { delivered = ok })
	})
	net.eng.Run(time.Second)
	if !delivered {
		t.Fatal("buffered frame never delivered")
	}
	if len(net.got[1]) != 1 || net.got[1][0] != "report" {
		t.Fatalf("receiver got %v", net.got[1])
	}
	if net.pms[0].Announcements == 0 {
		t.Fatal("no ATIM announcement sent")
	}
}

func TestPsmDeliveryLatencyIsAboutOneBeacon(t *testing.T) {
	net := newPsmNet(t, 2)
	var deliveredAt time.Duration
	submitted := 230 * time.Millisecond
	net.eng.Schedule(submitted, func() {
		net.pms[0].SubmitReport(1, "x", 52, func(ok bool) {
			if ok {
				deliveredAt = net.eng.Now()
			}
		})
	})
	net.eng.Run(2 * time.Second)
	if deliveredAt == 0 {
		t.Fatal("not delivered")
	}
	wait := deliveredAt - submitted
	// Submitted at 230ms; next beacon at 400ms; transfer shortly after the
	// ATIM window (425ms+). Expect 170ms <= wait <= 400ms.
	if wait < 170*time.Millisecond || wait > 400*time.Millisecond {
		t.Fatalf("delivery wait = %v, want roughly one beacon period", wait)
	}
}

func TestPsmReceiverHoldsAfterAnnouncement(t *testing.T) {
	net := newPsmNet(t, 2)
	net.eng.Schedule(230*time.Millisecond, func() {
		net.pms[0].SubmitReport(1, "x", 52, nil)
	})
	// Probe mid-data-window of the transfer beacon (400ms + 60ms): the
	// announced receiver must still be awake.
	awake := false
	net.eng.Schedule(460*time.Millisecond, func() { awake = net.radios[1].IsOn() })
	net.eng.Run(time.Second)
	if !awake {
		t.Fatal("announced receiver slept during the advertisement window")
	}
}

func TestPsmUnannouncedNodeSleepsAfterAtim(t *testing.T) {
	net := newPsmNet(t, 3)
	net.eng.Schedule(230*time.Millisecond, func() {
		net.pms[0].SubmitReport(1, "x", 52, nil)
	})
	// Node 2 (chain end, hears only node 1) has no traffic: it must sleep
	// right after the ATIM window even while 0↔1 transfer.
	asleep := false
	net.eng.Schedule(460*time.Millisecond, func() { asleep = !net.radios[2].IsOn() })
	net.eng.Run(time.Second)
	if !asleep {
		t.Fatal("idle node stayed awake during others' data window")
	}
}

func TestPsmMultiHopForwarding(t *testing.T) {
	net := newPsmNet(t, 3)
	// 0 → 1 at one beacon; the test relays 1 → 2 by resubmitting, which
	// must wait for the following beacon.
	var hop2At time.Duration
	net.eng.Schedule(230*time.Millisecond, func() {
		net.pms[0].SubmitReport(1, "hop1", 52, nil)
	})
	net.eng.Schedule(610*time.Millisecond, func() {
		net.pms[1].SubmitReport(2, "hop2", 52, func(ok bool) {
			if ok {
				hop2At = net.eng.Now()
			}
		})
	})
	net.eng.Run(2 * time.Second)
	if len(net.got[1]) != 1 || len(net.got[2]) != 1 {
		t.Fatalf("deliveries: mid=%v end=%v", net.got[1], net.got[2])
	}
	if hop2At < 800*time.Millisecond {
		t.Fatalf("second hop at %v, want after the 800ms beacon", hop2At)
	}
}

func TestPsmConfigValidation(t *testing.T) {
	eng := sim.New(1)
	r := radio.New(eng, radio.Config{})
	// The invalid config must be rejected before the (nil) MAC is touched.
	if _, err := NewPsmPM(eng, 0, r, nil, PsmConfig{BeaconPeriod: 100 * time.Millisecond, AtimWindow: 80 * time.Millisecond, DataWindow: 80 * time.Millisecond}); err == nil {
		t.Error("invalid PSM config accepted")
	}
}
