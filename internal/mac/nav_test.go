package mac

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/phy"
)

// TestNAVDefersThroughAckExchange: node 0 sends data to node 1 while
// node 2 (in range of 1 but also of 0? on a chain 0-1-2, node 2 hears
// only node 1) — use the star: all mutually in range. A bystander that
// overhears a unicast data frame must not transmit during the SIFS+ACK
// gap even though the physical carrier is idle.
func TestNAVDefersThroughAckExchange(t *testing.T) {
	net := newChain(t, 3, 1, phy.DefaultConfig())
	// Node 1 transmits to node 0; node 2 overhears (1 is its neighbor).
	// Immediately after the data frame ends, node 2 wants to send to 1.
	// Without NAV it would start DIFS at data-end and its frame would
	// overlap node 0's ACK... DIFS (50µs) < SIFS+ACK (10+208µs), so the
	// collision window is real.
	dataEnd := 100*time.Microsecond + net.ch.FrameDuration(52)
	net.eng.Schedule(100*time.Microsecond, func() {
		net.macs[1].Send(0, "data", 52, nil)
	})
	// Queue node 2's frame mid-data so it contends at data end.
	net.eng.Schedule(200*time.Microsecond, func() {
		net.macs[2].Send(1, "interference", 52, nil)
	})
	net.eng.Run(time.Second)

	// Both transfers must succeed: the ACK was protected.
	if net.macs[1].Stats().Sent != 1 {
		t.Fatalf("data send failed: %+v", net.macs[1].Stats())
	}
	if net.macs[2].Stats().Sent != 1 {
		t.Fatalf("bystander send failed: %+v", net.macs[2].Stats())
	}
	// And with zero retries: NAV avoided the collision outright.
	if net.macs[1].Stats().Retries != 0 {
		t.Fatalf("data needed %d retries; NAV should have protected the ACK",
			net.macs[1].Stats().Retries)
	}
	_ = dataEnd
}

// TestEIFSAfterCorruptedReception: two hidden senders collide at the
// middle node; after the corrupted reception ends, the middle node (which
// has its own frame queued) must defer EIFS, not just DIFS.
func TestEIFSAfterCorruptedReception(t *testing.T) {
	net := newChain(t, 4, 2, phy.DefaultConfig())
	// 0 and 2 collide at 1.
	net.eng.Schedule(100*time.Microsecond, func() {
		net.macs[0].Send(1, "a", 52, nil)
		net.macs[2].Send(1, "b", 52, nil)
	})
	// Node 1 has a frame for node 2 queued during the collision.
	var sentAt time.Duration
	net.eng.Schedule(150*time.Microsecond, func() {
		net.macs[1].Send(2, "c", 52, func(ok bool) {
			if ok {
				sentAt = net.eng.Now()
			}
		})
	})
	net.eng.Run(time.Second)
	if sentAt == 0 {
		t.Fatal("node 1's frame never delivered")
	}
	// The corrupted overlap ends ~620µs in; EIFS adds SIFS+ACK+DIFS
	// (~272µs) before node 1 may even start contending. The send must
	// complete no earlier than collision end + EIFS + frame time.
	collisionEnd := 100*time.Microsecond + net.ch.FrameDuration(52)
	eifs := 10*time.Microsecond + net.ch.FrameDuration(14) + 50*time.Microsecond
	if sentAt < collisionEnd+eifs {
		t.Fatalf("node 1 sent at %v, before collision end (%v) + EIFS (%v)",
			sentAt, collisionEnd, eifs)
	}
}

func TestAttachToAckRoundTrip(t *testing.T) {
	net := newChain(t, 2, 3, phy.DefaultConfig())
	type token struct{ V int }

	// Receiver attaches info during Deliver; sender's ack-info callback
	// must observe it.
	attachOK := false
	net.macs[1].SetUpper(&deliverChecker{f: func() {
		attachOK = net.macs[1].AttachToAck(0, token{V: 42})
	}})
	var got any
	net.macs[0].SetAckInfoFunc(func(from phy.NodeID, info any) {
		if from == 1 {
			got = info
		}
	})

	net.macs[0].Send(1, "data", 52, nil)
	net.eng.Run(time.Second)

	if !attachOK {
		t.Fatal("AttachToAck reported no pending ACK during Deliver")
	}
	tok, ok := got.(token)
	if !ok || tok.V != 42 {
		t.Fatalf("ack info = %v, want token{42}", got)
	}
}

func TestAttachToAckOutsideDeliveryFails(t *testing.T) {
	net := newChain(t, 2, 3, phy.DefaultConfig())
	if net.macs[1].AttachToAck(0, "x") {
		t.Fatal("AttachToAck succeeded with no pending ACK")
	}
}

// TestNAVDoesNotDeadlock: pathological back-to-back overheard traffic
// must still let the deferring node transmit eventually.
func TestNAVStarvationFreedom(t *testing.T) {
	net := newChain(t, 3, 4, phy.DefaultConfig())
	// Node 1 blasts 20 frames to node 0; node 2 overhears everything and
	// has one frame of its own.
	for i := 0; i < 20; i++ {
		net.macs[1].Send(0, i, 52, nil)
	}
	done := false
	net.macs[2].Send(1, "mine", 52, func(ok bool) { done = ok })
	net.eng.Run(time.Second)
	if !done {
		t.Fatal("overhearing node starved by NAV")
	}
}
