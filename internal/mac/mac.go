// Package mac implements a CSMA/CA medium-access layer in the style of the
// IEEE 802.11 distributed coordination function, the MAC the ESSAT paper
// simulates under ns-2.
//
// The protocol: a station with a pending frame waits until the medium has
// been idle for DIFS, then counts down a random backoff drawn from the
// contention window, freezing the countdown while the medium is busy.
// Unicast frames are acknowledged after SIFS; a missing ACK doubles the
// contention window and retransmits, up to a retry limit. Broadcast frames
// are sent once, unacknowledged.
//
// The random backoff is the source of the delay jitter that ESSAT's
// traffic shapers exist to absorb: even perfectly periodic application
// traffic arrives aperiodically after a few contended hops.
//
// Power awareness: the MAC observes its radio. While the radio is off the
// MAC holds its queue; transmission resumes when the radio returns. This
// is how power managers (Safe Sleep, SYNC, PSM) gate communication without
// the MAC needing protocol-specific hooks.
package mac

import (
	"fmt"
	"time"

	"github.com/essat/essat/internal/phy"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
)

// Config holds the DCF timing and retry parameters.
type Config struct {
	// SlotTime is the backoff slot length.
	SlotTime time.Duration
	// SIFS is the short interframe space (data→ACK turnaround).
	SIFS time.Duration
	// DIFS is the DCF interframe space a station must observe idle before
	// contending.
	DIFS time.Duration
	// CWMin and CWMax bound the contention window; backoff is drawn
	// uniformly from [0, CW-1].
	CWMin, CWMax int
	// RetryLimit is the number of retransmissions before a unicast frame
	// is reported failed.
	RetryLimit int
	// AckBytes is the on-air size of an acknowledgement frame.
	AckBytes int
}

// DefaultConfig returns 802.11b-like parameters at 1 Mbps.
func DefaultConfig() Config {
	return Config{
		SlotTime:   20 * time.Microsecond,
		SIFS:       10 * time.Microsecond,
		DIFS:       50 * time.Microsecond,
		CWMin:      32,
		CWMax:      1024,
		RetryLimit: 7,
		AckBytes:   14,
	}
}

// Validate reports whether the configuration is runnable: positive
// timing parameters, a sane contention window, and positive frame
// sizes. Hosts that accept configs from untrusted input (declarative
// specs, corpus generators) validate before construction so a bad
// config surfaces as a build error; New panics on an invalid config
// only as a backstop against imperative misuse.
func (c Config) Validate() error {
	if c.SlotTime <= 0 || c.SIFS <= 0 || c.DIFS <= 0 {
		return fmt.Errorf("mac: slot/SIFS/DIFS must be positive")
	}
	if c.CWMin < 1 || c.CWMax < c.CWMin {
		return fmt.Errorf("mac: need 1 <= CWMin <= CWMax, got %d, %d", c.CWMin, c.CWMax)
	}
	if c.RetryLimit < 0 {
		return fmt.Errorf("mac: negative retry limit")
	}
	if c.AckBytes <= 0 {
		return fmt.Errorf("mac: AckBytes must be positive")
	}
	return nil
}

// Observer is notified of MAC decisions, synchronously. Observers must
// be pure (no scheduling, no state changes, no random draws) so that an
// observed run stays byte-identical to an unobserved one. The invariant
// auditor (internal/check) uses it to verify the NAV is respected.
type Observer interface {
	// DataTransmit fires when the station starts a data-frame
	// transmission: now is the current time, navUntil the station's
	// virtual-carrier-sense deadline (now >= navUntil on a correct run).
	DataTransmit(id phy.NodeID, now, navUntil time.Duration)
}

// Upper receives payloads the MAC successfully reassembled for this node.
type Upper interface {
	// Deliver hands a received payload up the stack. Duplicate unicast
	// frames (retransmissions whose ACK was lost) are filtered out.
	Deliver(src phy.NodeID, payload any, bytes int)
}

// AckInfoSink receives information piggybacked on acknowledgements. When
// no SetAckInfoFunc callback is installed, an Upper implementing this
// interface gets the piggybacked payloads directly — the standard node
// wiring, which saves a closure per node per run.
type AckInfoSink interface {
	AckInfo(from phy.NodeID, info any)
}

// SendCallback reports the fate of a queued frame: true once the frame was
// acknowledged (or, for broadcast, transmitted), false when the retry
// limit was exhausted.
type SendCallback func(ok bool)

// Stats counts MAC-level outcomes for one station.
type Stats struct {
	// Enqueued counts frames accepted from the upper layer.
	Enqueued uint64
	// Sent counts frames completed successfully.
	Sent uint64
	// Failed counts frames dropped after exhausting retries.
	Failed uint64
	// Retries counts individual retransmission attempts.
	Retries uint64
	// AcksSent counts acknowledgements transmitted.
	AcksSent uint64
	// Duplicates counts received duplicate data frames (acked, not delivered).
	Duplicates uint64
	// ServiceTime accumulates enqueue→completion time across Sent frames,
	// a proxy for MAC-induced delay.
	ServiceTime time.Duration
}

type frameKind uint8

const (
	kindData frameKind = iota + 1
	kindAck
)

// header is the MAC framing around an upper-layer payload. Headers are
// pooled per station: a received *header is only valid during the
// FrameDelivered callback (the MAC reads it synchronously and never
// retains it).
type header struct {
	kind    frameKind
	seq     uint64
	payload any
}

type txItem struct {
	dst      phy.NodeID
	payload  any
	bytes    int
	cb       SendCallback
	seq      uint64
	attempts int
	enqueued time.Duration
	hdr      *header // on-air framing of the current attempt
}

// MAC is one station's medium-access state machine.
type MAC struct {
	eng   *sim.Engine
	ch    *phy.Channel
	id    phy.NodeID
	radio *radio.Radio
	cfg   Config
	upper Upper

	queue []*txItem
	// cur is the head item while it is in flight (transmitting or
	// awaiting its ACK); the prebound completion timers operate on it so
	// they need not capture the item per transmission.
	cur     *txItem
	cw      int
	backoff int // remaining slots; preserved across freezes

	// Timers; at most one is active at a time.
	difsEv    *sim.Event
	backoffEv *sim.Event
	ackEv     *sim.Event
	txEndEv   *sim.Event

	backoffStarted time.Duration
	waitingAck     bool
	ackPending     int // acknowledgements owed (scheduled after SIFS)
	inTx           bool

	// navUntil is the virtual-carrier-sense deadline: after overhearing a
	// unicast data frame for another node, the station defers through the
	// SIFS + ACK exchange so acknowledgements are never clobbered by new
	// contention (802.11 NAV).
	navUntil time.Duration
	navEv    *sim.Event

	// lastDecode is when this station last decoded any frame; a carrier
	// falling edge with no decode at the same instant means the reception
	// was corrupted or partially missed, triggering an EIFS defer.
	lastDecode time.Duration

	nextSeq uint64
	// Duplicate-detection state, indexed by neighbor position rather
	// than by NodeID: peers is the station's sorted candidate-neighbor
	// list (shared with the topology, read-only), and lastSeq/seen are
	// parallel to it. Frames are only ever delivered from in-range
	// stations, and range is symmetric, so every decodable source
	// appears in peers — this keeps per-node dedup state O(degree)
	// instead of O(N), the difference between ~90 B and ~90 kB per node
	// on the 10k-node tier. Arena-backed when the engine carries one.
	peers   []phy.NodeID
	lastSeq []uint64
	seen    []bool

	// pendingAcks is the FIFO of acknowledgements owed, popped by the
	// prebound SIFS timer callback. SIFS is constant, so scheduling order
	// matches deadline order.
	pendingAcks []ackKey
	// ackHdr is the framing of the in-flight acknowledgement (at most one:
	// a second ACK due mid-transmission is dropped by sendAck).
	ackHdr *header

	// Object freelists keep the contention/ACK hot path allocation-free
	// in the steady state; timer callbacks are shared package-level
	// dispatchers whose events carry the MAC (no per-station closures).
	itemFree []*txItem
	hdrFree  []*header

	// ackInfo holds upper-layer payloads to piggyback on pending ACKs,
	// keyed by (source, sequence) of the data frame being acknowledged.
	// Lazily allocated: most stations never piggyback anything.
	ackInfo   map[ackKey]any
	onAckInfo func(from phy.NodeID, info any)

	onIdle   func()
	idleSink IdleSink
	obs      Observer
	stats    Stats

	// ackSlack, when installed, extends the ACK timeout for specific
	// destinations. The parallel engine uses it for cross-shard peers:
	// the mesh adds one lookahead of latency each way, so the ACK of a
	// boundary-crossing frame arrives a round trip later than the DCF
	// timeout expects.
	ackSlack func(dst phy.NodeID) time.Duration
}

// Timer dispatchers shared by every station: the events carry the MAC as
// their argument, so constructing a station allocates no timer closures.
func macDifsDone(x any)    { x.(*MAC).difsDone() }
func macBackoffDone(x any) { x.(*MAC).backoffDone() }
func macNavExpire(x any) {
	m := x.(*MAC)
	m.navEv = nil
	m.tryContend()
}
func macTxEnd(x any) {
	m := x.(*MAC)
	m.txEndEv = nil
	m.inTx = false
	m.txDone(m.cur)
}
func macAckTimeout(x any) {
	m := x.(*MAC)
	m.ackEv = nil
	m.waitingAck = false
	m.retry(m.cur)
}
func macFireAck(x any) {
	m := x.(*MAC)
	pa := m.pendingAcks[0]
	n := copy(m.pendingAcks, m.pendingAcks[1:])
	m.pendingAcks = m.pendingAcks[:n]
	m.sendAck(pa.src, pa.seq)
}
func macAckSent(x any) {
	m := x.(*MAC)
	if m.ackHdr != nil {
		m.releaseHeader(m.ackHdr)
		m.ackHdr = nil
	}
	m.ackPending--
	m.afterAck()
}

type ackKey struct {
	src phy.NodeID
	seq uint64
}

// New creates a MAC for node id, attaching it to the channel.
func New(eng *sim.Engine, ch *phy.Channel, id phy.NodeID, r *radio.Radio, cfg Config, upper Upper) *MAC {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	peers := ch.Neighbors(id)
	m := sim.ArenaGrab[MAC](eng, "mac.mac")
	*m = MAC{
		eng:        eng,
		ch:         ch,
		id:         id,
		radio:      r,
		cfg:        cfg,
		upper:      upper,
		cw:         cfg.CWMin,
		lastDecode: -1,
		peers:      peers,
		lastSeq:    sim.ArenaSlice[uint64](eng, "mac.lastseq", len(peers)),
		seen:       sim.ArenaSlice[bool](eng, "mac.seen", len(peers)),
	}
	ch.Attach(id, r, m)
	r.SubscribeState(m)
	return m
}

// newHeader takes a header from the pool (or allocates one) and fills it.
func (m *MAC) newHeader(kind frameKind, seq uint64, payload any) *header {
	h := sim.TakeLast(&m.hdrFree)
	if h == nil {
		h = sim.ArenaGrab[header](m.eng, "mac.hdr")
	}
	h.kind, h.seq, h.payload = kind, seq, payload
	return h
}

// releaseHeader recycles a header once every receiver has consumed it
// (channel delivery is synchronous and precedes the sender's completion
// timers at the same instant).
func (m *MAC) releaseHeader(h *header) {
	h.payload = nil
	m.hdrFree = append(m.hdrFree, h)
}

// TransitClone deep-copies a MAC frame payload for cross-shard transit
// under the parallel engine. Sender-side headers are pooled and recycled
// the instant the sender's completion timer fires — before a delayed
// remote delivery would read them — so the channel mesh must copy the
// framing. inner clones the upper-layer payload (pooled report objects
// need copying too); nil or a pass-through inner keeps it aliased, which
// is only safe for value-type or immutable payloads. The clone is
// unpooled: receivers never recycle headers they did not allocate, so it
// is garbage after delivery.
func TransitClone(payload any, inner func(any) any) any {
	h, ok := payload.(*header)
	if !ok {
		if inner != nil {
			return inner(payload)
		}
		return payload
	}
	c := &header{kind: h.kind, seq: h.seq, payload: h.payload}
	if inner != nil && h.payload != nil {
		c.payload = inner(h.payload)
	}
	return c
}

// ID returns the node ID this MAC serves.
func (m *MAC) ID() phy.NodeID { return m.id }

// Stats returns a copy of the station's counters.
func (m *MAC) Stats() Stats { return m.stats }

// SetUpper installs the upper-layer receiver. It must be called before the
// simulation starts if the upper layer was not available at construction.
func (m *MAC) SetUpper(u Upper) { m.upper = u }

// SetAckInfoFunc installs the callback invoked when an acknowledgement
// for one of this station's frames carried piggybacked information.
func (m *MAC) SetAckInfoFunc(f func(from phy.NodeID, info any)) { m.onAckInfo = f }

// SetAckSlack installs a per-destination ACK-timeout extension (nil
// disables). The parallel engine's build path sets it on boundary
// stations so cross-shard unicasts wait out the mesh round trip instead
// of burning their retry budget.
func (m *MAC) SetAckSlack(f func(dst phy.NodeID) time.Duration) { m.ackSlack = f }

// AttachToAck piggybacks info on the acknowledgement this station is about
// to send for the data frame it is currently delivering from src (valid
// only while Upper.Deliver runs). It reports whether an ACK is pending for
// src. ESSAT uses this for DTS phase-update requests (§4.3: "the receiver
// may piggyback the request for a phase update in the acknowledgement").
func (m *MAC) AttachToAck(src phy.NodeID, info any) bool {
	if m.ackPending == 0 {
		return false
	}
	pi := m.peerIndex(src)
	if pi < 0 || !m.seen[pi] {
		return false
	}
	if m.ackInfo == nil {
		m.ackInfo = make(map[ackKey]any)
	}
	m.ackInfo[ackKey{src: src, seq: m.lastSeq[pi]}] = info
	return true
}

// peerIndex returns src's position in the sorted peers list, or -1 when
// src is not a candidate neighbor (which delivery symmetry rules out
// for decoded frames; -1 only defends against direct-driver misuse).
func (m *MAC) peerIndex(src phy.NodeID) int {
	lo, hi := 0, len(m.peers)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.peers[mid] < src {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(m.peers) && m.peers[lo] == src {
		return lo
	}
	return -1
}

// SetObserver installs a MAC decision observer (nil disables).
func (m *MAC) SetObserver(o Observer) { m.obs = o }

// SetIdleFunc installs a callback invoked whenever the MAC drains: queue
// empty, no transmission in flight, no acknowledgement owed. Safe Sleep
// uses it to re-evaluate whether the node may sleep.
func (m *MAC) SetIdleFunc(f func()) { m.onIdle = f }

// IdleSink is the interface form of the drained notification: hot
// per-node subscribers implement it so installing them stores an
// existing object instead of allocating a method-value closure.
type IdleSink interface {
	MACIdle()
}

// SetIdleSink installs an IdleSink, notified alongside any SetIdleFunc
// callback.
func (m *MAC) SetIdleSink(s IdleSink) { m.idleSink = s }

// Busy reports whether the MAC has unfinished work: queued or in-flight
// frames, or an acknowledgement it still owes a peer.
func (m *MAC) Busy() bool {
	return len(m.queue) > 0 || m.ackPending > 0 || m.inTx || m.waitingAck
}

// QueueLen returns the number of frames queued, including the one
// currently contending.
func (m *MAC) QueueLen() int { return len(m.queue) }

// Send queues a payload for transmission to dst (or phy.Broadcast).
// cb may be nil. Delivery is attempted as soon as the medium and the
// node's radio allow.
func (m *MAC) Send(dst phy.NodeID, payload any, bytes int, cb SendCallback) {
	if bytes <= 0 {
		panic(fmt.Sprintf("mac: non-positive frame size %d", bytes))
	}
	if dst == m.id {
		panic("mac: send to self")
	}
	item := sim.TakeLast(&m.itemFree)
	if item == nil {
		item = sim.ArenaGrab[txItem](m.eng, "mac.item")
	}
	*item = txItem{dst: dst, payload: payload, bytes: bytes, cb: cb,
		seq: m.nextSeq, enqueued: m.eng.Now()}
	m.nextSeq++
	m.stats.Enqueued++
	m.queue = append(m.queue, item)
	m.tryContend()
}

// --- contention state machine -------------------------------------------

// tryContend starts or resumes the DIFS/backoff procedure when conditions
// allow. It is idempotent: calling it when a timer is already pending or
// transmission is in progress is a no-op.
func (m *MAC) tryContend() {
	if len(m.queue) == 0 || m.inTx || m.waitingAck || m.ackPending > 0 {
		return
	}
	if m.difsEv != nil || m.backoffEv != nil {
		return // already contending
	}
	if !m.radio.IsOn() {
		return // resumes via radioChanged
	}
	if m.carrierBusy() {
		return // resumes via CarrierChanged(false) or NAV expiry
	}
	m.difsEv = m.eng.AfterArg(m.cfg.DIFS, macDifsDone, m)
}

func (m *MAC) difsDone() {
	m.difsEv = nil
	if m.carrierBusy() {
		// Busy edge and DIFS expiry at the same instant; defer.
		return
	}
	if m.backoff == 0 {
		m.backoff = m.eng.Rand().Intn(m.cw)
	}
	if m.backoff == 0 {
		m.transmit()
		return
	}
	m.backoffStarted = m.eng.Now()
	m.backoffEv = m.eng.AfterArg(time.Duration(m.backoff)*m.cfg.SlotTime, macBackoffDone, m)
}

func (m *MAC) backoffDone() {
	m.backoffEv = nil
	m.backoff = 0
	if m.carrierBusy() || !m.radio.CanReceive() {
		// Beat by a carrier edge in the same instant; refreeze with zero
		// remaining slots — we transmit right after the next DIFS.
		m.tryContend()
		return
	}
	m.transmit()
}

// carrierBusy combines physical carrier sense with the NAV.
func (m *MAC) carrierBusy() bool {
	return m.ch.CarrierBusy(m.id) || m.eng.Now() < m.navUntil
}

// setNAV extends the virtual-carrier-sense deadline and arranges to
// resume contention when it expires. An already-armed NAV timer is moved
// in place (O(1), no cancel tombstone) rather than canceled and rebuilt.
func (m *MAC) setNAV(until time.Duration) {
	if until <= m.navUntil {
		return
	}
	m.navUntil = until
	m.freeze()
	if m.navEv != nil {
		m.navEv.RescheduleTo(until)
	} else {
		m.navEv = m.eng.ScheduleArg(until, macNavExpire, m)
	}
}

// freeze suspends an in-progress countdown, crediting fully elapsed slots.
func (m *MAC) freeze() {
	if m.difsEv != nil {
		m.difsEv.Cancel()
		m.difsEv = nil
	}
	if m.backoffEv != nil {
		m.backoffEv.Cancel()
		m.backoffEv = nil
		elapsed := int((m.eng.Now() - m.backoffStarted) / m.cfg.SlotTime)
		m.backoff -= elapsed
		if m.backoff < 0 {
			m.backoff = 0
		}
	}
}

func (m *MAC) transmit() {
	item := m.queue[0]
	m.cur = item
	m.inTx = true
	if m.obs != nil {
		m.obs.DataTransmit(m.id, m.eng.Now(), m.navUntil)
	}
	item.hdr = m.newHeader(kindData, item.seq, item.payload)
	dur, _ := m.ch.StartTx(m.id, item.dst, item.bytes, item.hdr)
	m.txEndEv = m.eng.AfterArg(dur, macTxEnd, m)
}

func (m *MAC) txDone(item *txItem) {
	// Every receiver decoded (or lost) the frame during the channel's
	// end-of-transmission processing, which ran before this timer.
	if item.hdr != nil {
		m.releaseHeader(item.hdr)
		item.hdr = nil
	}
	if item.dst == phy.Broadcast {
		m.finish(item, true)
		return
	}
	m.waitingAck = true
	timeout := m.cfg.SIFS + m.ch.FrameDuration(m.cfg.AckBytes) + 3*m.cfg.SlotTime
	if m.ackSlack != nil {
		timeout += m.ackSlack(item.dst)
	}
	m.ackEv = m.eng.AfterArg(timeout, macAckTimeout, m)
}

func (m *MAC) retry(item *txItem) {
	item.attempts++
	if item.attempts > m.cfg.RetryLimit {
		m.finish(item, false)
		return
	}
	m.stats.Retries++
	m.cw *= 2
	if m.cw > m.cfg.CWMax {
		m.cw = m.cfg.CWMax
	}
	m.backoff = m.eng.Rand().Intn(m.cw)
	m.tryContend()
}

func (m *MAC) finish(item *txItem, ok bool) {
	m.cur = nil
	// Shift rather than re-slice so the queue's backing array is reused
	// forever (m.queue[1:] would leak capacity and reallocate on append).
	n := copy(m.queue, m.queue[1:])
	m.queue[n] = nil
	m.queue = m.queue[:n]
	m.cw = m.cfg.CWMin
	m.backoff = 0
	if ok {
		m.stats.Sent++
		m.stats.ServiceTime += m.eng.Now() - item.enqueued
	} else {
		m.stats.Failed++
	}
	if item.cb != nil {
		item.cb(ok)
	}
	// The item left the queue and the callback ran: recycle it. The
	// payload and callback references are dropped so the pool does not
	// pin upper-layer objects.
	*item = txItem{}
	m.itemFree = append(m.itemFree, item)
	if len(m.queue) > 0 {
		m.tryContend()
	} else {
		m.notifyIdleIfDrained()
	}
}

func (m *MAC) notifyIdleIfDrained() {
	if (m.onIdle != nil || m.idleSink != nil) && !m.Busy() {
		if m.onIdle != nil {
			m.onIdle()
		}
		if m.idleSink != nil {
			m.idleSink.MACIdle()
		}
	}
}

// --- receive path ---------------------------------------------------------

// FrameDelivered implements phy.Receiver. The channel reports every frame
// this station decoded; frames addressed elsewhere only update the NAV.
func (m *MAC) FrameDelivered(f *phy.Frame) {
	hdr, ok := f.Payload.(*header)
	if !ok {
		panic(fmt.Sprintf("mac: node %d received non-MAC payload %T", m.id, f.Payload))
	}
	m.lastDecode = m.eng.Now()
	if f.Dst != m.id && f.Dst != phy.Broadcast {
		// Overheard unicast data implies a SIFS + ACK exchange follows:
		// defer through it (virtual carrier sense).
		if hdr.kind == kindData {
			m.setNAV(m.eng.Now() + m.cfg.SIFS + m.ch.FrameDuration(m.cfg.AckBytes))
		}
		return
	}
	switch hdr.kind {
	case kindAck:
		m.ackReceived(f.Src, hdr.seq, hdr.payload)
	case kindData:
		m.dataReceived(f, hdr)
	default:
		panic(fmt.Sprintf("mac: unknown frame kind %d", hdr.kind))
	}
}

func (m *MAC) ackReceived(src phy.NodeID, seq uint64, info any) {
	if info != nil {
		if m.onAckInfo != nil {
			m.onAckInfo(src, info)
		} else if s, ok := m.upper.(AckInfoSink); ok {
			s.AckInfo(src, info)
		}
	}
	if !m.waitingAck || len(m.queue) == 0 {
		return // stale ACK
	}
	item := m.queue[0]
	if item.dst != src || item.seq != seq {
		return
	}
	m.waitingAck = false
	if m.ackEv != nil {
		m.ackEv.Cancel()
		m.ackEv = nil
	}
	m.finish(item, true)
}

func (m *MAC) dataReceived(f *phy.Frame, hdr *header) {
	dup := false
	if f.Dst == m.id {
		// Unicast: schedule the ACK first so Busy() is accurate for any
		// upper-layer logic that runs during Deliver.
		if pi := m.peerIndex(f.Src); pi >= 0 {
			dup = m.seen[pi] && m.lastSeq[pi] == hdr.seq
			m.seen[pi] = true
			m.lastSeq[pi] = hdr.seq
		}
		m.ackPending++
		m.pendingAcks = append(m.pendingAcks, ackKey{src: f.Src, seq: hdr.seq})
		m.eng.AfterArg(m.cfg.SIFS, macFireAck, m)
	}
	if dup {
		m.stats.Duplicates++
		return
	}
	m.upper.Deliver(f.Src, hdr.payload, f.Bytes)
}

func (m *MAC) sendAck(dst phy.NodeID, seq uint64) {
	var info any
	if len(m.ackInfo) > 0 {
		if v, ok := m.ackInfo[ackKey{src: dst, seq: seq}]; ok {
			info = v
			delete(m.ackInfo, ackKey{src: dst, seq: seq})
		}
	}
	if !m.radio.IsOn() || m.radio.State() == radio.Tx {
		// Radio gone or busy transmitting at ACK time: drop the ACK; the
		// sender will retransmit.
		m.ackPending--
		m.afterAck()
		return
	}
	m.ackHdr = m.newHeader(kindAck, seq, info)
	dur, _ := m.ch.StartTx(m.id, dst, m.cfg.AckBytes, m.ackHdr)
	m.stats.AcksSent++
	m.eng.AfterArg(dur, macAckSent, m)
}

func (m *MAC) afterAck() {
	if m.ackPending == 0 {
		if len(m.queue) > 0 {
			m.tryContend()
		} else {
			m.notifyIdleIfDrained()
		}
	}
}

// CarrierChanged implements phy.Receiver.
func (m *MAC) CarrierChanged(busy bool) {
	if !m.radio.IsOn() {
		return
	}
	if busy {
		m.freeze()
		return
	}
	// A falling edge with no successful decode at this instant means the
	// reception was corrupted (collision) or its preamble was missed: the
	// medium may still carry an exchange we cannot track, so defer EIFS =
	// SIFS + ACK + DIFS as 802.11 does (protects ACKs from stations that
	// could not read the preceding data frame).
	if m.lastDecode != m.eng.Now() {
		m.setNAV(m.eng.Now() + m.cfg.SIFS + m.ch.FrameDuration(m.cfg.AckBytes) + m.cfg.DIFS)
		return
	}
	m.tryContend()
}

// --- radio gating ----------------------------------------------------------

// RadioStateChanged implements radio.StateListener.
func (m *MAC) RadioStateChanged(old, new radio.State) {
	switch new {
	case radio.Idle:
		if old == radio.TurningOn || old == radio.Off {
			// Woke up (instantly, for zero-delay radios): resume work.
			m.tryContend()
		}
	case radio.TurningOff, radio.Off:
		// Pause: freeze contention, abandon any ACK wait (the frame will
		// be retried on wake without consuming a retry attempt, since the
		// outcome is unknowable while asleep).
		m.freeze()
		if m.ackEv != nil {
			m.ackEv.Cancel()
			m.ackEv = nil
			m.waitingAck = false
		}
	}
}
