package mac

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/geom"
	"github.com/essat/essat/internal/phy"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

type recvRec struct {
	src     phy.NodeID
	payload any
}

type mockUpper struct {
	got []recvRec
}

func (u *mockUpper) Deliver(src phy.NodeID, payload any, bytes int) {
	u.got = append(u.got, recvRec{src: src, payload: payload})
}

type testNet struct {
	eng    *sim.Engine
	ch     *phy.Channel
	radios []*radio.Radio
	macs   []*MAC
	uppers []*mockUpper
}

// newChain builds n nodes in a 100m-spaced chain (adjacent-only links).
func newChain(t *testing.T, n int, seed int64, chCfg phy.Config) *testNet {
	t.Helper()
	eng := sim.New(seed)
	topo, err := topology.FromPositions(geom.LinePlacement(n, 100), 125)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := phy.NewChannel(eng, topo, chCfg)
	net := &testNet{eng: eng, ch: ch}
	for i := 0; i < n; i++ {
		r := radio.New(eng, radio.Config{})
		u := &mockUpper{}
		m := New(eng, ch, phy.NodeID(i), r, DefaultConfig(), u)
		net.radios = append(net.radios, r)
		net.macs = append(net.macs, m)
		net.uppers = append(net.uppers, u)
	}
	return net
}

func TestUnicastWithAck(t *testing.T) {
	net := newChain(t, 2, 1, phy.DefaultConfig())
	var ok *bool
	net.macs[0].Send(1, "ping", 52, func(b bool) { ok = &b })
	net.eng.Run(time.Second)

	if ok == nil || !*ok {
		t.Fatal("send callback not invoked with success")
	}
	if len(net.uppers[1].got) != 1 || net.uppers[1].got[0].payload != "ping" {
		t.Fatalf("upper got %v, want one ping", net.uppers[1].got)
	}
	st := net.macs[0].Stats()
	if st.Sent != 1 || st.Failed != 0 {
		t.Fatalf("sender stats = %+v", st)
	}
	if net.macs[1].Stats().AcksSent != 1 {
		t.Fatalf("receiver sent %d acks, want 1", net.macs[1].Stats().AcksSent)
	}
	if net.macs[0].Busy() {
		t.Fatal("sender still busy after completion")
	}
}

func TestBroadcastNoAck(t *testing.T) {
	net := newChain(t, 3, 1, phy.DefaultConfig())
	done := false
	net.macs[1].Send(phy.Broadcast, "hello", 52, func(b bool) { done = b })
	net.eng.Run(time.Second)
	if !done {
		t.Fatal("broadcast callback not invoked")
	}
	if len(net.uppers[0].got) != 1 || len(net.uppers[2].got) != 1 {
		t.Fatal("broadcast not delivered to both neighbors")
	}
	if net.macs[0].Stats().AcksSent != 0 || net.macs[2].Stats().AcksSent != 0 {
		t.Fatal("broadcast must not be acknowledged")
	}
}

func TestSleepingReceiverExhaustsRetries(t *testing.T) {
	net := newChain(t, 2, 1, phy.DefaultConfig())
	net.radios[1].TurnOff()
	var result *bool
	net.macs[0].Send(1, "x", 52, func(b bool) { result = &b })
	net.eng.Run(time.Second)
	if result == nil {
		t.Fatal("callback never invoked")
	}
	if *result {
		t.Fatal("send to sleeping node reported success")
	}
	st := net.macs[0].Stats()
	if st.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", st.Failed)
	}
	if st.Retries != uint64(DefaultConfig().RetryLimit) {
		t.Fatalf("Retries = %d, want %d", st.Retries, DefaultConfig().RetryLimit)
	}
}

func TestReceiverWakesDuringRetries(t *testing.T) {
	net := newChain(t, 2, 1, phy.DefaultConfig())
	net.radios[1].TurnOff()
	var result *bool
	net.macs[0].Send(1, "x", 52, func(b bool) { result = &b })
	// Wake the receiver after the first couple of attempts fail.
	net.eng.Schedule(2*time.Millisecond, func() { net.radios[1].TurnOn() })
	net.eng.Run(time.Second)
	if result == nil || !*result {
		t.Fatal("retransmission after receiver wake did not succeed")
	}
	if len(net.uppers[1].got) != 1 {
		t.Fatalf("upper got %d deliveries, want 1", len(net.uppers[1].got))
	}
}

func TestSenderRadioOffPausesAndResumes(t *testing.T) {
	net := newChain(t, 2, 1, phy.DefaultConfig())
	net.radios[0].TurnOff()
	got := false
	net.macs[0].Send(1, "x", 52, func(b bool) { got = b })
	net.eng.Run(100 * time.Millisecond)
	if got {
		t.Fatal("frame sent while radio off")
	}
	net.radios[0].TurnOn()
	net.eng.Run(200 * time.Millisecond)
	if !got {
		t.Fatal("frame not sent after radio resumed")
	}
}

func TestQueueDrainsInOrder(t *testing.T) {
	net := newChain(t, 2, 1, phy.DefaultConfig())
	for i := 0; i < 5; i++ {
		net.macs[0].Send(1, i, 52, nil)
	}
	net.eng.Run(time.Second)
	if len(net.uppers[1].got) != 5 {
		t.Fatalf("got %d deliveries, want 5", len(net.uppers[1].got))
	}
	for i, r := range net.uppers[1].got {
		if r.payload != i {
			t.Fatalf("delivery %d = %v, want %d (order violated)", i, r.payload, i)
		}
	}
}

func TestContendingSendersBothSucceed(t *testing.T) {
	// Nodes 0 and 2 both send to node 1 at the same instant; CSMA backoff
	// plus retries must get both frames through.
	net := newChain(t, 3, 7, phy.DefaultConfig())
	oks := 0
	net.macs[0].Send(1, "a", 52, func(b bool) {
		if b {
			oks++
		}
	})
	net.macs[2].Send(1, "b", 52, func(b bool) {
		if b {
			oks++
		}
	})
	net.eng.Run(time.Second)
	if oks != 2 {
		t.Fatalf("%d of 2 contending sends succeeded", oks)
	}
	if len(net.uppers[1].got) != 2 {
		t.Fatalf("receiver got %d frames, want 2", len(net.uppers[1].got))
	}
}

func TestManyContendersAllDeliver(t *testing.T) {
	// A 5-node star cannot exist on a chain; use a dense cluster instead.
	eng := sim.New(3)
	pts := geom.GridPlacement(2, 3, 50) // all within 125m of each other
	topo, err := topology.FromPositions(pts, 125)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := phy.NewChannel(eng, topo, phy.DefaultConfig())
	var macs []*MAC
	var uppers []*mockUpper
	for i := 0; i < 6; i++ {
		r := radio.New(eng, radio.Config{})
		u := &mockUpper{}
		macs = append(macs, New(eng, ch, phy.NodeID(i), r, DefaultConfig(), u))
		uppers = append(uppers, u)
	}
	// Nodes 1..5 all send to node 0 simultaneously.
	succ := 0
	for i := 1; i < 6; i++ {
		macs[i].Send(0, i, 52, func(b bool) {
			if b {
				succ++
			}
		})
	}
	eng.Run(time.Second)
	if succ != 5 {
		t.Fatalf("%d of 5 contending sends succeeded", succ)
	}
	if len(uppers[0].got) != 5 {
		t.Fatalf("hub received %d frames, want 5", len(uppers[0].got))
	}
}

func TestDuplicateFilteringUnderAckLoss(t *testing.T) {
	cfg := phy.DefaultConfig()
	cfg.LossRate = 0.3
	net := newChain(t, 2, 11, cfg)
	const n = 50
	succ := 0
	for i := 0; i < n; i++ {
		i := i
		net.eng.Schedule(time.Duration(i)*20*time.Millisecond, func() {
			net.macs[0].Send(1, i, 52, func(b bool) {
				if b {
					succ++
				}
			})
		})
	}
	net.eng.Run(5 * time.Second)
	// With 30% loss and 7 retries essentially everything gets through.
	if succ < n*9/10 {
		t.Fatalf("only %d/%d sends succeeded under 30%% loss", succ, n)
	}
	seen := make(map[any]int)
	for _, r := range net.uppers[1].got {
		seen[r.payload]++
	}
	for k, c := range seen {
		if c > 1 {
			t.Fatalf("payload %v delivered %d times (dup filter broken)", k, c)
		}
	}
	if net.macs[1].Stats().Duplicates == 0 && net.macs[0].Stats().Retries > 0 {
		// Retries happened; under ACK loss at least some should have been
		// duplicates at the receiver. Not guaranteed for every seed, so
		// only log.
		t.Logf("note: retries=%d but no duplicates observed", net.macs[0].Stats().Retries)
	}
}

func TestHiddenTerminalsEventuallyDeliver(t *testing.T) {
	// 0 and 2 cannot hear each other but share receiver 1: collisions are
	// likely, retries must recover.
	net := newChain(t, 3, 5, phy.DefaultConfig())
	succ := 0
	for i := 0; i < 10; i++ {
		i := i
		at := time.Duration(i) * 5 * time.Millisecond
		net.eng.Schedule(at, func() {
			net.macs[0].Send(1, i, 52, func(b bool) {
				if b {
					succ++
				}
			})
			net.macs[2].Send(1, 100+i, 52, func(b bool) {
				if b {
					succ++
				}
			})
		})
	}
	net.eng.Run(2 * time.Second)
	if succ < 18 {
		t.Fatalf("only %d/20 hidden-terminal sends succeeded", succ)
	}
}

func TestIdleCallback(t *testing.T) {
	net := newChain(t, 2, 1, phy.DefaultConfig())
	idleCalls := 0
	net.macs[0].SetIdleFunc(func() { idleCalls++ })
	net.macs[0].Send(1, "x", 52, nil)
	if idleCalls != 0 {
		t.Fatal("idle callback fired while frame pending")
	}
	net.eng.Run(time.Second)
	if idleCalls == 0 {
		t.Fatal("idle callback not fired after drain")
	}
}

func TestBusyWhileOwingAck(t *testing.T) {
	net := newChain(t, 2, 1, phy.DefaultConfig())
	busyDuringDeliver := false
	checker := &deliverChecker{f: func() { busyDuringDeliver = net.macs[1].Busy() }}
	net.macs[1].SetUpper(checker)
	net.macs[0].Send(1, "x", 52, nil)
	net.eng.Run(time.Second)
	if !busyDuringDeliver {
		t.Fatal("receiver not Busy() while owing the ACK during Deliver")
	}
	if net.macs[1].Busy() {
		t.Fatal("receiver still busy after ACK sent")
	}
}

type deliverChecker struct{ f func() }

func (d *deliverChecker) Deliver(phy.NodeID, any, int) { d.f() }

func TestServiceTimeAccumulates(t *testing.T) {
	net := newChain(t, 2, 1, phy.DefaultConfig())
	net.macs[0].Send(1, "x", 52, nil)
	net.eng.Run(time.Second)
	st := net.macs[0].Stats()
	if st.ServiceTime <= 0 {
		t.Fatalf("ServiceTime = %v, want > 0", st.ServiceTime)
	}
	if st.ServiceTime > 10*time.Millisecond {
		t.Fatalf("ServiceTime = %v, implausibly large for one uncontended frame", st.ServiceTime)
	}
}

func TestSendToSelfPanics(t *testing.T) {
	net := newChain(t, 2, 1, phy.DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("send to self did not panic")
		}
	}()
	net.macs[0].Send(0, "x", 52, nil)
}

func TestConfigValidation(t *testing.T) {
	eng := sim.New(1)
	topo, _ := topology.FromPositions(geom.LinePlacement(2, 100), 125)
	ch, _ := phy.NewChannel(eng, topo, phy.DefaultConfig())
	r := radio.New(eng, radio.Config{})
	bad := DefaultConfig()
	bad.CWMin = 0
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	New(eng, ch, 0, r, bad, &mockUpper{})
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() (uint64, time.Duration) {
		net := newChain(t, 3, 99, phy.DefaultConfig())
		for i := 0; i < 20; i++ {
			i := i
			net.eng.Schedule(time.Duration(i)*time.Millisecond, func() {
				net.macs[0].Send(1, i, 52, nil)
				net.macs[2].Send(1, 100+i, 52, nil)
			})
		}
		net.eng.Run(time.Second)
		return net.eng.Processed(), net.macs[0].Stats().ServiceTime
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("runs diverged: (%d,%v) vs (%d,%v)", e1, s1, e2, s2)
	}
}
