package mac

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/phy"
)

// TestContentionWindowResetAfterSuccess: the CW doubles across retries
// and resets to CWMin once a frame completes, observable through timing:
// after a painful retry sequence, the next uncontended frame must go out
// promptly (small backoff), not with a CWMax-scale delay.
func TestContentionWindowResetAfterSuccess(t *testing.T) {
	net := newChain(t, 2, 9, phy.DefaultConfig())
	// First frame to a sleeping receiver: burns all retries with CW
	// growth up to CWMax.
	net.radios[1].TurnOff()
	failed := false
	net.macs[0].Send(1, "doomed", 52, func(ok bool) { failed = !ok })
	net.eng.Run(2 * time.Second)
	if !failed {
		t.Fatal("precondition: first frame should fail")
	}
	// Receiver wakes; the second frame must complete quickly.
	net.radios[1].TurnOn()
	start := net.eng.Now()
	var doneAt time.Duration
	net.macs[0].Send(1, "easy", 52, func(ok bool) {
		if ok {
			doneAt = net.eng.Now()
		}
	})
	net.eng.Run(start + time.Second)
	if doneAt == 0 {
		t.Fatal("second frame never delivered")
	}
	// CWMin=32 slots × 20µs = 640µs worst backoff + DIFS + frame + ACK:
	// everything under ~3ms. A stale CWMax window would take up to 20ms.
	if doneAt-start > 3*time.Millisecond {
		t.Fatalf("post-reset frame took %v, contention window not reset", doneAt-start)
	}
}

// TestRetryTimingGrows: the gap between successive retransmission
// attempts should grow (binary exponential backoff), measured at the
// channel by transmission count over time toward a deaf receiver.
func TestRetryTimingGrows(t *testing.T) {
	net := newChain(t, 2, 10, phy.DefaultConfig())
	net.radios[1].TurnOff()
	net.macs[0].Send(1, "x", 52, nil)
	// Count transmissions in the first 5ms vs the next 45ms: early
	// attempts cluster (small CW), later ones spread out.
	var early, late uint64
	net.eng.Schedule(5*time.Millisecond, func() { early = net.ch.Stats().Transmissions })
	net.eng.Run(time.Second)
	late = net.ch.Stats().Transmissions
	if early < 2 {
		t.Fatalf("only %d attempts in the first 5ms, want clustered early retries", early)
	}
	if late != uint64(1+DefaultConfig().RetryLimit) {
		t.Fatalf("total attempts = %d, want %d", late, 1+DefaultConfig().RetryLimit)
	}
}

// TestBroadcastDoesNotRetry: broadcast frames are fire-once even when
// nobody hears them.
func TestBroadcastDoesNotRetry(t *testing.T) {
	net := newChain(t, 2, 11, phy.DefaultConfig())
	net.radios[1].TurnOff()
	ok := false
	net.macs[0].Send(phy.Broadcast, "bcast", 52, func(b bool) { ok = b })
	net.eng.Run(time.Second)
	if !ok {
		t.Fatal("broadcast must report success after transmission")
	}
	if got := net.ch.Stats().Transmissions; got != 1 {
		t.Fatalf("broadcast transmitted %d times, want 1", got)
	}
}

// TestInterleavedBidirectionalTraffic: two nodes sending to each other
// simultaneously must both complete (no ACK-direction confusion).
func TestInterleavedBidirectionalTraffic(t *testing.T) {
	net := newChain(t, 2, 12, phy.DefaultConfig())
	done := 0
	for i := 0; i < 10; i++ {
		net.macs[0].Send(1, i, 52, func(b bool) {
			if b {
				done++
			}
		})
		net.macs[1].Send(0, 100+i, 52, func(b bool) {
			if b {
				done++
			}
		})
	}
	net.eng.Run(2 * time.Second)
	if done != 20 {
		t.Fatalf("%d of 20 bidirectional sends completed", done)
	}
	if len(net.uppers[0].got) != 10 || len(net.uppers[1].got) != 10 {
		t.Fatalf("deliveries: %d and %d, want 10 each",
			len(net.uppers[0].got), len(net.uppers[1].got))
	}
}

// TestQueueLenAndBusyLifecycle tracks the public state accessors through
// a frame's life.
func TestQueueLenAndBusyLifecycle(t *testing.T) {
	net := newChain(t, 2, 13, phy.DefaultConfig())
	if net.macs[0].Busy() || net.macs[0].QueueLen() != 0 {
		t.Fatal("fresh MAC should be idle")
	}
	net.macs[0].Send(1, "a", 52, nil)
	net.macs[0].Send(1, "b", 52, nil)
	if net.macs[0].QueueLen() != 2 || !net.macs[0].Busy() {
		t.Fatalf("QueueLen = %d, Busy = %v", net.macs[0].QueueLen(), net.macs[0].Busy())
	}
	net.eng.Run(time.Second)
	if net.macs[0].QueueLen() != 0 || net.macs[0].Busy() {
		t.Fatal("MAC not drained")
	}
}

// TestDeadRadioSilencesStation: after Shutdown, queued frames never go
// out and incoming traffic is ignored.
func TestDeadRadioSilencesStation(t *testing.T) {
	net := newChain(t, 2, 14, phy.DefaultConfig())
	net.macs[1].Send(0, "queued", 52, nil)
	net.radios[1].Shutdown()
	net.ch.Disable(1)
	net.macs[0].Send(1, "tothedead", 52, nil)
	net.eng.Run(time.Second)
	if len(net.uppers[0].got) != 0 {
		t.Fatal("dead station transmitted")
	}
	if len(net.uppers[1].got) != 0 {
		t.Fatal("dead station received")
	}
}
