package experiment

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/essat/essat/internal/topology"
)

// TestProtocolTopologyMatrix runs every registered protocol on every
// registered topology generator through a small scenario, twice, and
// checks (a) determinism — the same seed yields an identical Result —
// and (b) basic invariants: duty cycle in (0,1], coverage within the
// tree size, and latency samples whenever the tree has members.
func TestProtocolTopologyMatrix(t *testing.T) {
	shapes := []struct {
		gen    string
		params map[string]float64
	}{
		{topology.Uniform, nil},
		{topology.Grid, map[string]float64{"jitter": 10}},
		{topology.Clusters, map[string]float64{"clusters": 3, "spread": 70}},
		{topology.Corridor, map[string]float64{"width": 80}},
	}
	build := func(p Protocol, gen string, params map[string]float64) Scenario {
		sc := DefaultScenario(p, 7)
		sc.Topology = topology.Config{
			NumNodes: 36, AreaSide: 360, Range: 125,
			Generator: gen, Params: params,
		}
		sc.Duration = 12 * time.Second
		sc.MeasureFrom = 2 * time.Second
		rng := rand.New(rand.NewSource(99))
		sc.Queries = QueryClasses(rng, 1.0, 1, 3*time.Second)
		return sc
	}
	for _, p := range AllProtocols {
		p := p
		for _, shape := range shapes {
			shape := shape
			t.Run(string(p)+"/"+shape.gen, func(t *testing.T) {
				t.Parallel()
				r1, err := Run(build(p, shape.gen, shape.params))
				if err != nil {
					t.Fatal(err)
				}
				r2, err := Run(build(p, shape.gen, shape.params))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(r1, r2) {
					t.Fatalf("same seed produced different results:\n%+v\nvs\n%+v", r1, r2)
				}
				if r1.DutyCycle <= 0 || r1.DutyCycle > 1 {
					t.Errorf("duty cycle %v out of (0,1]", r1.DutyCycle)
				}
				if r1.TreeSize < 1 {
					t.Errorf("tree has no members")
				}
				if r1.Coverage < 0 || r1.Coverage > float64(r1.TreeSize) {
					t.Errorf("coverage %.2f outside [0, %d]", r1.Coverage, r1.TreeSize)
				}
				if r1.TreeSize > 1 && r1.Latency.N == 0 {
					t.Errorf("no latency samples despite %d tree members", r1.TreeSize)
				}
				if r1.Latency.N > 0 && r1.Latency.Mean <= 0 {
					t.Errorf("non-positive mean latency %v", r1.Latency.Mean)
				}
			})
		}
	}
}

// TestStagedRunMatchesRun checks the explicit build → simulate →
// collect stages against the one-shot Run on an identical scenario.
func TestStagedRunMatchesRun(t *testing.T) {
	direct, err := Run(smokeScenario(DTSSS, 9))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(smokeScenario(DTSSS, 9))
	if err != nil {
		t.Fatal(err)
	}
	if s.Topo == nil || s.Tree == nil || s.Channel == nil || s.Eng == nil || len(s.Nodes) == 0 {
		t.Fatal("Build left exported fields unset")
	}
	s.Simulate()
	staged := s.Collect()
	if !reflect.DeepEqual(direct, staged) {
		t.Fatalf("staged result differs from Run:\n%+v\nvs\n%+v", direct, staged)
	}
}

func TestBuildRejectsUnknownProtocol(t *testing.T) {
	sc := smokeScenario("NO-SUCH", 1)
	if _, err := Build(sc); err == nil {
		t.Fatal("Build accepted an unregistered protocol")
	}
}
