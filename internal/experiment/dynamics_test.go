package experiment

import (
	"math/rand"
	"testing"
	"time"

	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/topology"
)

// dynScenario is a small, fast deployment for workload-dynamics tests.
func dynScenario(seed int64) Scenario {
	sc := DefaultScenario(DTSSS, seed)
	sc.Topology = topology.Config{NumNodes: 40, AreaSide: 400, Range: 125}
	sc.Duration = 40 * time.Second
	sc.MeasureFrom = 20 * time.Second
	return sc
}

func TestQueryStopShrinksWorkload(t *testing.T) {
	// Three 1 Hz-class queries; two are deregistered at 15 s, before the
	// measurement window opens at 20 s. Compare against the same run
	// without stops: post-stop duty must be clearly lower.
	build := func(withStops bool) float64 {
		sc := dynScenario(3)
		rng := rand.New(rand.NewSource(9))
		sc.Queries = QueryClasses(rng, 1.0, 1, 5*time.Second)
		if withStops {
			sc.QueryStops = []QueryStop{
				{At: 15 * time.Second, Query: sc.Queries[0].ID},
				{At: 15 * time.Second, Query: sc.Queries[1].ID},
			}
		}
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res.DutyCycle
	}
	full := build(false)
	reduced := build(true)
	if reduced >= full*0.8 {
		t.Fatalf("duty after deregistering 2 of 3 queries = %.4f, want well below %.4f", reduced, full)
	}
	if reduced <= 0 {
		t.Fatal("remaining query stopped producing")
	}
}

func TestQueryStopKeepsRemainingQueryAlive(t *testing.T) {
	sc := dynScenario(4)
	rng := rand.New(rand.NewSource(9))
	sc.Queries = QueryClasses(rng, 1.0, 1, 5*time.Second)
	keep := sc.Queries[2].ID
	sc.QueryStops = []QueryStop{
		{At: 15 * time.Second, Query: sc.Queries[0].ID},
		{At: 15 * time.Second, Query: sc.Queries[1].ID},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// The surviving query's class still records completions in the
	// measurement window.
	class := 0
	for _, q := range sc.Queries {
		if q.ID == keep {
			class = q.Class
		}
	}
	if res.LatencyByClass[class].N == 0 {
		t.Fatal("surviving query produced no completions after the stops")
	}
}

func TestSetupSlotCostsEnergy(t *testing.T) {
	run := func(slot time.Duration) float64 {
		sc := dynScenario(5)
		sc.MeasureFrom = 2 * time.Second
		rng := rand.New(rand.NewSource(9))
		// Late phases so the setup slots fall inside the measured window.
		sc.Queries = []query.Spec{
			{ID: 0, Period: 2 * time.Second, Phase: 10 * time.Second, Class: 1},
			{ID: 1, Period: 3 * time.Second, Phase: 20 * time.Second, Class: 2},
		}
		_ = rng
		sc.SetupSlot = slot
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res.DutyCycle
	}
	without := run(0)
	with := run(2 * time.Second)
	if with <= without {
		t.Fatalf("setup slot should cost energy: duty %.4f (with) vs %.4f (without)", with, without)
	}
}

func TestStopUnknownQueryHarmless(t *testing.T) {
	sc := dynScenario(6)
	rng := rand.New(rand.NewSource(9))
	sc.Queries = QueryClasses(rng, 1.0, 1, 5*time.Second)
	sc.QueryStops = []QueryStop{{At: 10 * time.Second, Query: 999}}
	if _, err := Run(sc); err != nil {
		t.Fatal(err)
	}
}

func TestTraceCapacityRecordsEvents(t *testing.T) {
	sc := dynScenario(7)
	rng := rand.New(rand.NewSource(9))
	sc.Queries = QueryClasses(rng, 1.0, 1, 5*time.Second)
	sc.TraceCapacity = 64
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace events recorded")
	}
	if len(res.Trace) > 64 {
		t.Fatalf("trace exceeded capacity: %d", len(res.Trace))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].At < res.Trace[i-1].At {
			t.Fatal("trace not chronological")
		}
	}
}
