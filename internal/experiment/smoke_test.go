package experiment

import (
	"math/rand"
	"testing"
	"time"

	"github.com/essat/essat/internal/topology"
)

// smokeScenario is a scaled-down paper setup: 40 nodes, 30 s, one query
// per class at 1 Hz base rate.
func smokeScenario(p Protocol, seed int64) Scenario {
	sc := DefaultScenario(p, seed)
	sc.Topology = topology.Config{NumNodes: 40, AreaSide: 400, Range: 125}
	sc.Duration = 30 * time.Second
	sc.MeasureFrom = 5 * time.Second
	rng := rand.New(rand.NewSource(seed + 1000))
	sc.Queries = QueryClasses(rng, 1.0, 1, 4*time.Second)
	return sc
}

func TestSmokeAllProtocols(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			res, err := Run(smokeScenario(p, 42))
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: duty=%.1f%% latency(mean=%v p95=%v) coverage=%.1f/%d events=%d timeouts=%d passthru=%d shifts=%d macfail=%d",
				p, res.DutyCycle*100, res.Latency.Mean, res.Latency.P95,
				res.Coverage, res.TreeSize, res.Events, res.Timeouts, res.PassThroughs, res.PhaseShifts, res.MACFailed)
			t.Logf("  dutyByRank=%v", res.DutyByRank)
			if res.Latency.N == 0 {
				t.Fatal("no query latency samples reached the root")
			}
			if res.DutyCycle <= 0 || res.DutyCycle > 1 {
				t.Fatalf("duty cycle %v out of range", res.DutyCycle)
			}
			// PSM's per-hop beacon latency makes the root close intervals
			// with partial aggregates (deep data arrives as pass-throughs
			// afterwards), so only a loose bound applies there.
			minCoverage := float64(res.TreeSize) / 2
			if p == PSM {
				minCoverage = float64(res.TreeSize) / 8
			}
			if res.Coverage < minCoverage {
				t.Errorf("coverage %.1f below %.1f (tree %d)", res.Coverage, minCoverage, res.TreeSize)
			}
		})
	}
}
