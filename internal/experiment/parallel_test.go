package experiment

import (
	"strings"
	"testing"
	"time"
)

// parallelScenario is the smoke setup with auditing on (the digest is
// the determinism witness) and the given shard count.
func parallelScenario(p Protocol, seed int64, shards int) Scenario {
	sc := smokeScenario(p, seed)
	sc.Audit = true
	sc.Shards = shards
	return sc
}

// TestShardCountInvariance pins the parallel engine's determinism
// contract: a 1-shard run is byte-identical to the sequential engine
// (same digest, same event count), and every shard count is
// deterministic run-to-run — the digest depends on (seed, K, lookahead)
// only, never on goroutine interleaving.
func TestShardCountInvariance(t *testing.T) {
	seq, err := Run(parallelScenario(DTSSS, 42, 0))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Audit == nil || seq.Audit.Digest == "" {
		t.Fatal("sequential run produced no audit digest")
	}

	one, err := Run(parallelScenario(DTSSS, 42, 1))
	if err != nil {
		t.Fatal(err)
	}
	if one.Audit.Digest != seq.Audit.Digest {
		t.Errorf("shards=1 digest %s != sequential %s", one.Audit.Digest, seq.Audit.Digest)
	}
	if one.Events != seq.Events {
		t.Errorf("shards=1 events %d != sequential %d", one.Events, seq.Events)
	}

	for _, k := range []int{2, 3, 4} {
		k := k
		t.Run(string(rune('0'+k))+"shards", func(t *testing.T) {
			a, err := Run(parallelScenario(DTSSS, 42, k))
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(parallelScenario(DTSSS, 42, k))
			if err != nil {
				t.Fatal(err)
			}
			if a.Audit.Digest != b.Audit.Digest {
				t.Errorf("shards=%d not deterministic: %s vs %s", k, a.Audit.Digest, b.Audit.Digest)
			}
			if a.Events != b.Events {
				t.Errorf("shards=%d event counts differ: %d vs %d", k, a.Events, b.Events)
			}
			// The sharded run must still be a working network, not just a
			// deterministic one: reports cross shard boundaries and reach
			// the root.
			if a.Latency.N == 0 {
				t.Error("no query latency samples reached the root")
			}
			if a.Coverage < float64(a.TreeSize)/2 {
				t.Errorf("coverage %.1f below half the tree (%d)", a.Coverage, a.TreeSize)
			}
			if a.DutyCycle <= 0 || a.DutyCycle > 1 {
				t.Errorf("duty cycle %v out of range", a.DutyCycle)
			}
			t.Logf("shards=%d: digest=%s events=%d coverage=%.1f/%d duty=%.1f%%",
				k, a.Audit.Digest, a.Events, a.Coverage, a.TreeSize, a.DutyCycle*100)
		})
	}
}

// TestParallelAllProtocols smokes every registered protocol under the
// sharded engine: the stacks were written single-threaded, and shard
// confinement is what keeps them correct here.
func TestParallelAllProtocols(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			res, err := Run(parallelScenario(p, 42, 4))
			if err != nil {
				t.Fatal(err)
			}
			if res.Latency.N == 0 {
				t.Fatal("no query latency samples reached the root")
			}
		})
	}
}

// TestParallelLookaheadOverride: an explicit lookahead is honored and
// changes boundary timing (different digest than the derived default),
// while staying deterministic.
func TestParallelLookaheadOverride(t *testing.T) {
	sc := parallelScenario(DTSSS, 42, 4)
	sc.Lookahead = 2 * time.Millisecond
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Audit.Digest != b.Audit.Digest {
		t.Errorf("override not deterministic: %s vs %s", a.Audit.Digest, b.Audit.Digest)
	}
	if a.Latency.N == 0 {
		t.Error("no query latency samples reached the root")
	}
}

// TestParallelGates: features whose state crosses shard boundaries must
// fail the build with a clear error, not race at runtime.
func TestParallelGates(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"tracing", func(sc *Scenario) { sc.TraceCapacity = 64 }, "tracing"},
		{"dynamics", func(sc *Scenario) {
			sc.Dynamics = []Dynamic{{Kind: "crash"}}
		}, "dynamics"},
		{"failure-detector", func(sc *Scenario) { sc.QueryCfg.FailureThreshold = 3 }, "failure detector"},
		{"radio-sink", func(sc *Scenario) {
			sc.Sinks = []SinkChoice{{Name: "timeseries"}}
		}, "radio-observing"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sc := parallelScenario(DTSSS, 42, 2)
			tc.mut(&sc)
			_, err := Run(sc)
			if err == nil {
				t.Fatalf("%s: expected a build error with shards > 1", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
			}
		})
	}
}

// TestParallelBudget: the event budget terminates a sharded run at
// barrier granularity with the standard error type.
func TestParallelBudget(t *testing.T) {
	sm, err := Build(parallelScenario(DTSSS, 42, 4))
	if err != nil {
		t.Fatal(err)
	}
	err = sm.SimulateContext(t.Context(), Budget{MaxEvents: 10_000})
	be, ok := err.(*BudgetExceededError)
	if !ok {
		t.Fatalf("expected *BudgetExceededError, got %v", err)
	}
	if be.Resource != "events" || be.Events < 10_000 {
		t.Errorf("unexpected budget report: %+v", be)
	}
}
