package experiment

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/essat/essat/internal/baseline"
	"github.com/essat/essat/internal/mac"
)

// TestBuildRejectsMalformedConfigs: every config-validation failure a
// scenario can express must come back from Build as an error — never a
// panic — so a malformed corpus spec can never take down a campaign
// worker. One case per converted check (mac frame/timing, query report
// size, and the baseline T-MAC/SYNC/PSM window rules).
func TestBuildRejectsMalformedConfigs(t *testing.T) {
	base := func(p Protocol) Scenario {
		sc := DefaultScenario(p, 1)
		sc.Duration = 2 * time.Second
		sc.MeasureFrom = 0
		sc.Queries = QueryClasses(rand.New(rand.NewSource(7)), 2, 1, time.Second)
		return sc
	}

	cases := []struct {
		name string
		sc   Scenario
		want string
	}{
		{
			name: "mac ack frame size",
			sc: func() Scenario {
				sc := base(DTSSS)
				sc.MACCfg = mac.DefaultConfig()
				sc.MACCfg.AckBytes = 0
				return sc
			}(),
			want: "AckBytes",
		},
		{
			name: "mac contention window",
			sc: func() Scenario {
				sc := base(DTSSS)
				sc.MACCfg = mac.DefaultConfig()
				sc.MACCfg.CWMin = 8
				sc.MACCfg.CWMax = 4
				return sc
			}(),
			want: "CWMin",
		},
		{
			name: "query report bytes",
			sc: func() Scenario {
				sc := base(DTSSS)
				sc.QueryCfg.ReportBytes = -1
				return sc
			}(),
			want: "ReportBytes",
		},
		{
			name: "tmac window",
			sc: func() Scenario {
				sc := base(TMAC)
				sc.TmacCfg = baseline.TmacConfig{FramePeriod: 10 * time.Millisecond, TA: 20 * time.Millisecond}
				return sc
			}(),
			want: "T-MAC",
		},
		{
			name: "sync window",
			sc: func() Scenario {
				sc := base(SYNC)
				sc.SyncCfg = baseline.SyncConfig{Period: time.Second, ActiveWindow: 2 * time.Second}
				return sc
			}(),
			want: "SYNC",
		},
		{
			name: "psm windows",
			sc: func() Scenario {
				sc := base(PSM)
				sc.PsmCfg = baseline.PsmConfig{
					BeaconPeriod: 100 * time.Millisecond,
					AtimWindow:   80 * time.Millisecond,
					DataWindow:   80 * time.Millisecond,
					AtimBytes:    14,
				}
				return sc
			}(),
			want: "PSM",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Build(tc.sc)
			if err == nil {
				t.Fatalf("Build accepted a malformed %s config", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Build error %q does not mention %q", err, tc.want)
			}
		})
	}
}
