package experiment

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/essat/essat/internal/sim"
)

// Budget bounds one run's resource consumption, for embedding the
// engine in a long-running process where a single pathological scenario
// must not monopolize a worker. The zero value is unlimited.
type Budget struct {
	// WallClock bounds the wall-clock time Simulate may spend; 0 means
	// unlimited. The deadline is polled on the engine's amortized check
	// cadence (every few thousand events), so enforcement granularity
	// is roughly a millisecond.
	WallClock time.Duration
	// MaxEvents bounds the number of simulator events one run may fire;
	// 0 means unlimited. Unlike the wall-clock bound it is enforced
	// exactly and deterministically.
	MaxEvents uint64
}

// zero reports whether the budget imposes no bound.
func (b Budget) zero() bool { return b.WallClock == 0 && b.MaxEvents == 0 }

// BudgetExceededError reports a run terminated because it exhausted its
// resource budget. The run's engine is left mid-simulation; results
// were not collected.
type BudgetExceededError struct {
	// Resource is "wall-clock" or "events".
	Resource string
	// Budget is the bound that was exceeded.
	Budget Budget
	// Events is the number of events the run had fired when terminated;
	// Elapsed the wall-clock time it had spent.
	Events  uint64
	Elapsed time.Duration
}

func (e *BudgetExceededError) Error() string {
	switch e.Resource {
	case "wall-clock":
		return fmt.Sprintf("experiment: run exceeded its wall-clock budget %v (%d events in %v)",
			e.Budget.WallClock, e.Events, e.Elapsed.Round(time.Millisecond))
	default:
		return fmt.Sprintf("experiment: run exceeded its event budget %d (after %v)",
			e.Budget.MaxEvents, e.Elapsed.Round(time.Millisecond))
	}
}

// PanicError reports a run whose stack panicked mid-flight, converted
// into an error at the RunContext boundary so one bad scenario can
// never take down a process hosting many. It carries everything needed
// to reproduce the crash: the protocol, the seed, and — when the run
// came through the declarative spec layer — the spec JSON itself.
//
// The engine's internal panics (scheduling into the past, radio state
// machine violations, ...) indicate protocol-stack bugs, not user
// error; containment turns them into a reproducible bug report instead
// of a crashed server.
type PanicError struct {
	Protocol Protocol
	Seed     int64
	// Value is the recovered panic value; Stack the goroutine stack at
	// the panic site.
	Value any
	Stack []byte
	// SpecJSON is the declarative spec that produced the run, when it
	// came through RunSpecContext; nil for imperative scenarios.
	SpecJSON []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("experiment: run panicked (protocol %s, seed %d): %v", e.Protocol, e.Seed, e.Value)
}

// SimulateContext is Simulate with a cancellation context and a
// resource budget. It drains the event queue up to the scenario's
// duration unless ctx is canceled, ctx's deadline passes, or the budget
// runs out first, returning ctx.Err() or a *BudgetExceededError
// respectively. Like Simulate it must run at most once, between Build
// and Collect; on early termination the engine is left mid-run and
// Collect would see a truncated (but internally consistent) run.
//
// With a background context and a zero budget it is byte-for-byte
// Simulate: the engine runs the exact same uninstrumented loop.
func (s *Sim) SimulateContext(ctx context.Context, b Budget) error {
	done := ctx.Done()
	if done == nil && b.zero() {
		s.Simulate()
		return nil
	}
	start := time.Now()
	var budgetDeadline, ctxDeadline time.Time
	if b.WallClock > 0 {
		budgetDeadline = start.Add(b.WallClock)
	}
	if d, ok := ctx.Deadline(); ok {
		ctxDeadline = d
	}
	check := func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		now := time.Now()
		// The context's deadline is its own error even when observed
		// here a beat before the context's timer fires.
		if !ctxDeadline.IsZero() && now.After(ctxDeadline) {
			return context.DeadlineExceeded
		}
		if !budgetDeadline.IsZero() && now.After(budgetDeadline) {
			return &BudgetExceededError{
				Resource: "wall-clock",
				Budget:   b,
				Events:   s.processed(),
				Elapsed:  time.Since(start),
			}
		}
		return nil
	}
	var err error
	if len(s.engines) > 1 {
		// Parallel runs poll the budget at window barriers (the only
		// single-threaded points), so event-budget enforcement is
		// barrier-granular rather than exact.
		_, err = s.runner().RunChecked(s.Scenario.Duration, b.MaxEvents, check)
	} else {
		_, err = s.Eng.RunChecked(s.Scenario.Duration, b.MaxEvents, check)
	}
	if errors.Is(err, sim.ErrEventBudget) {
		err = &BudgetExceededError{
			Resource: "events",
			Budget:   b,
			Events:   s.processed(),
			Elapsed:  time.Since(start),
		}
	}
	return err
}

// RunContext is Run with the three robustness properties a long-running
// host needs: the run can be canceled through ctx, bounded by a
// resource budget, and a panic anywhere in Build, the event loop, or
// Collect is contained into a *PanicError instead of unwinding into the
// caller's process. Run delegates here with a background context and no
// budget, so its behavior — and every golden digest — is unchanged.
func RunContext(ctx context.Context, sc Scenario, b Budget) (*Result, error) {
	return RunContextWith(ctx, nil, sc, b)
}

// RunSpecContext compiles and runs a declarative spec under ctx and the
// budget. A contained panic's error carries the marshaled spec, making
// the failure reproducible from the error alone (essat-sim -scenario).
func RunSpecContext(ctx context.Context, s *Spec, b Budget) (*Result, error) {
	return RunSpecContextWith(ctx, nil, s, b)
}
