package experiment

import (
	"math/rand"
	"testing"
	"time"

	"github.com/essat/essat/internal/dynamics"
)

// FuzzDynamicsSpec is the dynamics layer's safety property: any *valid*
// injector configuration — whatever the fuzzer throws at the parameter
// space — must run to completion with a completely clean invariant
// audit. Raw fuzz inputs are clamped into each kind's valid range, so
// the property under test is "valid specs never trip an invariant",
// not input validation (which has its own table tests).
//
// Run `go test -fuzz FuzzDynamicsSpec ./internal/experiment` to explore
// beyond the seed corpus.
func FuzzDynamicsSpec(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(8000), uint16(6000), uint8(2), uint8(40), uint8(4), uint16(500), false)
	f.Add(int64(2), uint8(1), uint16(5000), uint16(9000), uint8(1), uint8(80), uint8(9), uint16(300), true)
	f.Add(int64(3), uint8(2), uint16(2000), uint16(4000), uint8(3), uint8(10), uint8(1), uint16(900), false)
	f.Add(int64(4), uint8(0), uint16(0), uint16(0), uint8(0), uint8(0), uint8(0), uint16(0), true)
	f.Add(int64(5), uint8(5), uint16(60000), uint16(60000), uint8(200), uint8(255), uint8(255), uint16(60000), true)

	f.Fuzz(func(t *testing.T, seed int64, kindSel uint8,
		atMs, durMs uint16, count, peakPct, steps uint8, periodMs uint16, permanent bool) {

		at := time.Duration(atMs%12000) * time.Millisecond     // within or past the run
		dur := time.Duration(1+durMs%10000) * time.Millisecond // 1ms..10s
		period := time.Duration(200+periodMs%2000) * time.Millisecond

		var d Dynamic
		switch kindSel % 3 {
		case 0:
			d = Dynamic{Kind: dynamics.KindCrash, Params: dynamics.Params{
				At: at, Count: 1 + int(count%5), Seed: seed,
			}}
			if !permanent {
				d.Params.Duration = dur
			}
		case 1:
			d = Dynamic{Kind: dynamics.KindLinkLoss, Params: dynamics.Params{
				At: at, Duration: dur, Peak: 0.05 + float64(peakPct%90)/100,
				Steps: 1 + int(steps%12), Seed: seed,
			}}
		case 2:
			if period > dur {
				dur = period // keep the spec valid: period <= burst length
			}
			d = Dynamic{Kind: dynamics.KindBurst, Params: dynamics.Params{
				At: at, Duration: dur, Period: period,
				Queries: 1 + int(count%3), Seed: seed,
			}}
		}

		sc := DefaultScenario(DTSSS, 1+seed%16)
		sc.Topology.NumNodes = 20
		sc.Topology.AreaSide = 250
		sc.Duration = 12 * time.Second
		sc.MeasureFrom = 2 * time.Second
		sc.QueryCfg.FailureThreshold = 3
		sc.Queries = QueryClasses(rand.New(rand.NewSource(seed*7919+1)), 1.0, 1, 3*time.Second)
		sc.Audit = true
		sc.Dynamics = []Dynamic{d}

		res, err := Run(sc)
		if err != nil {
			t.Fatalf("valid dynamics spec %+v failed to run: %v", d, err)
		}
		if res.Audit.Total != 0 {
			t.Fatalf("valid dynamics spec %+v tripped %d invariants, first: %s",
				d, res.Audit.Total, res.Audit.Violations[0])
		}
	})
}
