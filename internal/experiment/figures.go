package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/essat/essat/internal/stats"
)

// Options scales the figure drivers: the paper uses 200-second runs with
// 5 seeds per point; scaled-down settings keep benchmarks fast.
type Options struct {
	// Duration of each run (paper: 200 s).
	Duration time.Duration
	// Seeds per data point (paper: 5; node placement and query phases
	// vary per seed).
	Seeds int
	// Nodes in the deployment (paper: 80).
	Nodes int
	// Parallelism bounds concurrent runs; 0 means GOMAXPROCS.
	Parallelism int
}

// PaperOptions reproduces the paper's full experimental setting.
func PaperOptions() Options {
	return Options{Duration: 200 * time.Second, Seeds: 5, Nodes: 80}
}

// QuickOptions is a scaled-down setting for tests and benchmarks: same
// topology scale, shorter runs, fewer seeds.
func QuickOptions() Options {
	return Options{Duration: 40 * time.Second, Seeds: 2, Nodes: 80}
}

func (o Options) normalized() Options {
	if o.Duration <= 0 {
		o.Duration = 40 * time.Second
	}
	if o.Seeds <= 0 {
		o.Seeds = 2
	}
	if o.Nodes <= 0 {
		o.Nodes = 80
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Point is one aggregated data point of a figure series: the mean of a
// metric over seeds with its 90% confidence half-width.
type Point struct {
	X    float64
	Mean float64
	CI90 float64
	N    int
}

// Series is a named sequence of points (one line in a figure).
type Series struct {
	Name   string
	Points []Point
}

// Figure is a reproduced table/figure: a set of series over a labeled
// x-axis, ready to print.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carries reproduction caveats surfaced by the driver.
	Notes []string
}

// Fprint renders the figure as an aligned text table, one row per x value.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(w, "   (y = %s, mean ± 90%% CI over seeds)\n", f.YLabel)
	fmt.Fprintf(w, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %22s", s.Name)
	}
	fmt.Fprintln(w)

	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	for _, x := range sorted {
		fmt.Fprintf(w, "%-12.3g", x)
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%10.3f ±%8.3f", p.Mean, p.CI90)
					break
				}
			}
			fmt.Fprintf(w, " %22s", cell)
		}
		fmt.Fprintln(w)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
}

// runSeeds executes build(seed) for each seed in parallel and aggregates
// metric(result) into a Point at x.
func runSeeds(o Options, x float64, build func(seed int64) Scenario, metric func(*Result) float64) (Point, error) {
	results := make([]*Result, o.Seeds)
	errs := make([]error, o.Seeds)
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Parallelism)
	for i := 0; i < o.Seeds; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = Run(build(int64(i + 1)))
		}()
	}
	wg.Wait()
	var w stats.Welford
	for i := range results {
		if errs[i] != nil {
			return Point{}, errs[i]
		}
		w.Add(metric(results[i]))
	}
	return Point{X: x, Mean: w.Mean(), CI90: w.CI90(), N: w.N()}, nil
}

func (o Options) scenario(p Protocol, seed int64) Scenario {
	sc := DefaultScenario(p, seed)
	sc.Duration = o.Duration
	sc.Topology.NumNodes = o.Nodes
	if sc.MeasureFrom >= sc.Duration {
		sc.MeasureFrom = sc.Duration / 5
	}
	return sc
}

// Fig2Deadline reproduces Figure 2: the impact of the STS query deadline
// on STS-SS duty cycle and query latency, with three queries running.
// The paper observes a knee near D ≈ 0.12 s: below it latency is flat
// while duty falls; above it latency grows linearly with no duty gain.
func Fig2Deadline(o Options, deadlines []time.Duration) (*Figure, error) {
	o = o.normalized()
	if len(deadlines) == 0 {
		for d := 50 * time.Millisecond; d <= 800*time.Millisecond; d += 75 * time.Millisecond {
			deadlines = append(deadlines, d)
		}
	}
	const baseRate = 1.0
	duty := Series{Name: "duty cycle (%)"}
	lat := Series{Name: "query latency (s)"}
	for _, d := range deadlines {
		d := d
		var dw, lw stats.Welford
		for seed := int64(1); seed <= int64(o.Seeds); seed++ {
			sc := o.scenario(STSSS, seed)
			rng := rand.New(rand.NewSource(seed * 7919))
			sc.Queries = QueryClasses(rng, baseRate, 1, 10*time.Second)
			sc.STSDeadline = d
			res, err := Run(sc)
			if err != nil {
				return nil, err
			}
			dw.Add(res.DutyCycle * 100)
			lw.Add(res.Latency.Mean.Seconds())
		}
		x := d.Seconds()
		duty.Points = append(duty.Points, Point{X: x, Mean: dw.Mean(), CI90: dw.CI90(), N: dw.N()})
		lat.Points = append(lat.Points, Point{X: x, Mean: lw.Mean(), CI90: lw.CI90(), N: lw.N()})
	}
	return &Figure{
		ID:     "fig2",
		Title:  "Impact of query deadline on duty cycle and query latency of STS-SS",
		XLabel: "deadline (s)",
		YLabel: "duty cycle (%) / latency (s)",
		Series: []Series{duty, lat},
	}, nil
}

// protocolSweep runs every protocol across x values produced by build.
func protocolSweep(o Options, protos []Protocol, xs []float64,
	build func(p Protocol, x float64, seed int64) Scenario,
	metric func(*Result) float64) ([]Series, error) {

	var out []Series
	for _, p := range protos {
		s := Series{Name: string(p)}
		for _, x := range xs {
			p, x := p, x
			pt, err := runSeeds(o, x, func(seed int64) Scenario { return build(p, x, seed) }, metric)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, pt)
		}
		out = append(out, s)
	}
	return out, nil
}

// dutyProtocols are the protocols of Figures 3 and 4 (SYNC is omitted
// from the duty figures as in the paper: it is 20% by construction).
var dutyProtocols = []Protocol{DTSSS, STSSS, NTSSS, PSM, SPAN}

// Fig3DutyVsRate reproduces Figure 3: average duty cycle for three query
// classes as the base rate varies from 1 to 5 Hz.
func Fig3DutyVsRate(o Options, rates []float64) (*Figure, error) {
	o = o.normalized()
	if len(rates) == 0 {
		rates = []float64{1, 2, 3, 4, 5}
	}
	series, err := protocolSweep(o, dutyProtocols, rates,
		func(p Protocol, rate float64, seed int64) Scenario {
			sc := o.scenario(p, seed)
			rng := rand.New(rand.NewSource(seed * 7919))
			sc.Queries = QueryClasses(rng, rate, 1, 10*time.Second)
			return sc
		},
		func(r *Result) float64 { return r.DutyCycle * 100 })
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "fig3",
		Title:  "Average duty cycle for three query classes when varying base rate",
		XLabel: "base rate (Hz)",
		YLabel: "duty cycle (%)",
		Series: series,
		Notes:  []string{"SYNC is fixed at 20% duty by construction and omitted, as in the paper"},
	}, nil
}

// Fig4DutyVsQueries reproduces Figure 4: average duty cycle at a fixed
// 0.2 Hz base rate as the number of queries per class grows.
func Fig4DutyVsQueries(o Options, counts []int) (*Figure, error) {
	o = o.normalized()
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 6, 8, 10}
	}
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	series, err := protocolSweep(o, dutyProtocols, xs,
		func(p Protocol, x float64, seed int64) Scenario {
			sc := o.scenario(p, seed)
			rng := rand.New(rand.NewSource(seed * 104729))
			sc.Queries = QueryClasses(rng, 0.2, int(x), 10*time.Second)
			return sc
		},
		func(r *Result) float64 { return r.DutyCycle * 100 })
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "fig4",
		Title:  "Average duty cycle for three query classes when varying number of queries per class",
		XLabel: "queries/class",
		YLabel: "duty cycle (%)",
		Series: series,
	}, nil
}

// Fig5DutyByRank reproduces Figure 5: the distribution of duty cycles
// across tree ranks for the three ESSAT protocols at a 5 Hz base rate.
// NTS-SS grows linearly with rank (Eq. 1); STS-SS and DTS-SS stay flat.
func Fig5DutyByRank(o Options) (*Figure, error) {
	o = o.normalized()
	protos := []Protocol{DTSSS, STSSS, NTSSS}
	var out []Series
	for _, p := range protos {
		p := p
		byRank := make(map[int]*stats.Welford)
		for seed := int64(1); seed <= int64(o.Seeds); seed++ {
			sc := o.scenario(p, seed)
			rng := rand.New(rand.NewSource(seed * 7919))
			sc.Queries = QueryClasses(rng, 5, 1, 10*time.Second)
			res, err := Run(sc)
			if err != nil {
				return nil, err
			}
			for r, d := range res.DutyByRank {
				if byRank[r] == nil {
					byRank[r] = &stats.Welford{}
				}
				byRank[r].Add(d * 100)
			}
		}
		s := Series{Name: string(p)}
		ranks := make([]int, 0, len(byRank))
		for r := range byRank {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			s.Points = append(s.Points, Point{
				X: float64(r), Mean: byRank[r].Mean(), CI90: byRank[r].CI90(), N: byRank[r].N(),
			})
		}
		out = append(out, s)
	}
	return &Figure{
		ID:     "fig5",
		Title:  "Distribution of duty cycles at different ranks (base rate 5 Hz)",
		XLabel: "rank (0=leaf)",
		YLabel: "duty cycle (%)",
		Series: out,
	}, nil
}

// latencyProtocols are the protocols of Figures 6 and 7.
var latencyProtocols = []Protocol{DTSSS, STSSS, NTSSS, PSM, SPAN, SYNC}

// Fig6LatencyVsRate reproduces Figure 6: average query latency as the
// base rate varies (the paper plots it on a log scale).
func Fig6LatencyVsRate(o Options, rates []float64) (*Figure, error) {
	o = o.normalized()
	if len(rates) == 0 {
		rates = []float64{1, 2, 3, 4, 5}
	}
	series, err := protocolSweep(o, latencyProtocols, rates,
		func(p Protocol, rate float64, seed int64) Scenario {
			sc := o.scenario(p, seed)
			rng := rand.New(rand.NewSource(seed * 7919))
			sc.Queries = QueryClasses(rng, rate, 1, 10*time.Second)
			return sc
		},
		func(r *Result) float64 { return r.Latency.Mean.Seconds() })
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "fig6",
		Title:  "Query latency for three query classes when varying base rate",
		XLabel: "base rate (Hz)",
		YLabel: "query latency (s)",
		Series: series,
		Notes:  []string{"SYNC saturates at high rates (queueing): latencies grow with run length"},
	}, nil
}

// Fig7LatencyVsQueries reproduces Figure 7: average query latency at a
// 0.2 Hz base rate as the number of queries per class grows.
func Fig7LatencyVsQueries(o Options, counts []int) (*Figure, error) {
	o = o.normalized()
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 6, 8, 10}
	}
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	series, err := protocolSweep(o, latencyProtocols, xs,
		func(p Protocol, x float64, seed int64) Scenario {
			sc := o.scenario(p, seed)
			rng := rand.New(rand.NewSource(seed * 104729))
			sc.Queries = QueryClasses(rng, 0.2, int(x), 10*time.Second)
			return sc
		},
		func(r *Result) float64 { return r.Latency.Mean.Seconds() })
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "fig7",
		Title:  "Query latency for three query classes when varying the number of queries per class",
		XLabel: "queries/class",
		YLabel: "query latency (s)",
		Series: series,
	}, nil
}

// Fig8SleepHistogram reproduces Figure 8: the histogram of sleep-interval
// lengths with TBE = 0 for the three ESSAT protocols, in 25 ms bins up to
// 200 ms. The paper reads off the fraction of intervals shorter than the
// MICA2 break-even time (2.5 ms): 0.40% for NTS-SS, 0.85% for STS-SS and
// 6.33% for DTS-SS.
func Fig8SleepHistogram(o Options) (*Figure, []float64, error) {
	o = o.normalized()
	protos := []Protocol{DTSSS, STSSS, NTSSS}
	var out []Series
	var below25 []float64
	for _, p := range protos {
		hist := stats.NewHistogram(25*time.Millisecond, 8)
		for seed := int64(1); seed <= int64(o.Seeds); seed++ {
			sc := o.scenario(p, seed)
			rng := rand.New(rand.NewSource(seed * 7919))
			sc.Queries = QueryClasses(rng, 5, 1, 10*time.Second)
			sc.SSBreakEven = 0
			sc.RadioCfg.TurnOnDelay = 0
			sc.RadioCfg.TurnOffDelay = 0
			sc.RecordSleepIntervals = true
			res, err := Run(sc)
			if err != nil {
				return nil, nil, err
			}
			for _, d := range res.SleepIntervals {
				hist.Add(d)
			}
		}
		s := Series{Name: string(p)}
		for i, c := range hist.Counts() {
			s.Points = append(s.Points, Point{
				X:    (time.Duration(i+1) * hist.BinWidth()).Seconds() * 1000,
				Mean: float64(c),
				N:    int(hist.Total()),
			})
		}
		out = append(out, s)
		below25 = append(below25, hist.FractionBelow(2500*time.Microsecond)*100)
	}
	fig := &Figure{
		ID:     "fig8",
		Title:  "Histogram of sleep intervals (TBE=0, base rate 5 Hz)",
		XLabel: "sleep length (ms)",
		YLabel: "count per 25 ms bin",
		Series: out,
		Notes: []string{fmt.Sprintf("%% of sleeps < 2.5 ms: DTS-SS=%.2f%% STS-SS=%.2f%% NTS-SS=%.2f%% (paper: 6.33 / 0.85 / 0.40)",
			below25[0], below25[1], below25[2])},
	}
	return fig, below25, nil
}

// Fig9BreakEven reproduces Figure 9: DTS-SS duty cycle versus base rate
// for Safe Sleep break-even times of 0, 2.5, 10 and 40 ms (the figure's
// caption says STS-SS but the surrounding text analyzes DTS-SS, the
// protocol most sensitive to TBE; the driver follows the text).
func Fig9BreakEven(o Options, rates []float64) (*Figure, error) {
	o = o.normalized()
	if len(rates) == 0 {
		rates = []float64{1, 2, 3, 4, 5}
	}
	tbes := []time.Duration{0, 2500 * time.Microsecond, 10 * time.Millisecond, 40 * time.Millisecond}
	var out []Series
	for _, tbe := range tbes {
		tbe := tbe
		s := Series{Name: fmt.Sprintf("TBE=%v", tbe)}
		for _, rate := range rates {
			rate := rate
			pt, err := runSeeds(o, rate, func(seed int64) Scenario {
				sc := o.scenario(DTSSS, seed)
				rng := rand.New(rand.NewSource(seed * 7919))
				sc.Queries = QueryClasses(rng, rate, 1, 10*time.Second)
				sc.SSBreakEven = tbe
				return sc
			}, func(r *Result) float64 { return r.DutyCycle * 100 })
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, pt)
		}
		out = append(out, s)
	}
	return &Figure{
		ID:     "fig9",
		Title:  "Impact of break-even time on DTS-SS duty cycle",
		XLabel: "base rate (Hz)",
		YLabel: "duty cycle (%)",
		Series: out,
	}, nil
}

// OverheadPhaseUpdates reproduces the §4.2.3 measurement: DTS's phase-
// update overhead in piggybacked bits per data report across query rates
// (the paper reports less than one bit per report).
func OverheadPhaseUpdates(o Options, rates []float64) (*Figure, error) {
	o = o.normalized()
	if len(rates) == 0 {
		rates = []float64{1, 2, 3, 4, 5}
	}
	s := Series{Name: "DTS-SS phase bits/report"}
	for _, rate := range rates {
		rate := rate
		pt, err := runSeeds(o, rate, func(seed int64) Scenario {
			sc := o.scenario(DTSSS, seed)
			rng := rand.New(rand.NewSource(seed * 7919))
			sc.Queries = QueryClasses(rng, rate, 1, 10*time.Second)
			return sc
		}, func(r *Result) float64 { return r.PhaseUpdateBitsPerReport })
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, pt)
	}
	return &Figure{
		ID:     "overhead",
		Title:  "DTS phase-update overhead (§4.2.3; paper: <1 bit per data report)",
		XLabel: "base rate (Hz)",
		YLabel: "piggybacked bits per data report",
		Series: []Series{s},
	}, nil
}
