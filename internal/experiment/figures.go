package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/essat/essat/internal/stats"
)

// Options scales the figure drivers: the paper uses 200-second runs with
// 5 seeds per point; scaled-down settings keep benchmarks fast.
type Options struct {
	// Duration of each run (paper: 200 s).
	Duration time.Duration
	// Seeds per data point (paper: 5; node placement and query phases
	// vary per seed).
	Seeds int
	// Nodes in the deployment (paper: 80).
	Nodes int
	// Parallelism bounds concurrent runs; 0 means GOMAXPROCS.
	Parallelism int
	// Topology selects a placement generator by registry name; empty
	// keeps the paper's uniform-random deployment. TopologyParams passes
	// the generator's knobs (see internal/topology).
	Topology       string
	TopologyParams map[string]float64
	// Channel selects a propagation model by registry name; empty keeps
	// the paper's unit-disc channel. ChannelParams passes its knobs
	// (see internal/phy).
	Channel       string
	ChannelParams map[string]float64
	// RadioProfile selects a radio energy profile by registry name;
	// empty keeps the paper's cost model (see internal/radio).
	RadioProfile string
	// BaseSeed offsets the per-point seed range: each point runs seeds
	// BaseSeed..BaseSeed+Seeds-1. Zero selects 1, the paper's range.
	BaseSeed int64
	// Audit runs every scenario under the cross-layer invariant auditor
	// (pure observation: results are unchanged).
	Audit bool
	// DisableArena runs every scenario on a fresh engine, without the
	// per-worker memory arenas and the shared deployment cache the grid
	// otherwise reuses across runs. Results are byte-identical either
	// way; benchmarks flip this to measure the arenas' effect.
	DisableArena bool
}

// PaperOptions reproduces the paper's full experimental setting.
func PaperOptions() Options {
	return Options{Duration: 200 * time.Second, Seeds: 5, Nodes: 80}
}

// QuickOptions is a scaled-down setting for tests and benchmarks: same
// topology scale, shorter runs, fewer seeds.
func QuickOptions() Options {
	return Options{Duration: 40 * time.Second, Seeds: 2, Nodes: 80}
}

// EffectiveParallelism returns the worker-pool bound the figure drivers
// will use for these options: Parallelism, or GOMAXPROCS when unset.
// Benchmarking tools record this rather than re-deriving the default.
func (o Options) EffectiveParallelism() int { return o.normalized().Parallelism }

func (o Options) normalized() Options {
	if o.Duration <= 0 {
		o.Duration = 40 * time.Second
	}
	if o.Seeds <= 0 {
		o.Seeds = 2
	}
	if o.Nodes <= 0 {
		o.Nodes = 80
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.BaseSeed <= 0 {
		o.BaseSeed = 1
	}
	return o
}

// Point is one aggregated data point of a figure series: the mean of a
// metric over seeds with its 90% confidence half-width.
type Point struct {
	X    float64
	Mean float64
	CI90 float64
	N    int
}

// Series is a named sequence of points (one line in a figure).
type Series struct {
	Name   string
	Points []Point
}

// Figure is a reproduced table/figure: a set of series over a labeled
// x-axis, ready to print.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carries reproduction caveats surfaced by the driver.
	Notes []string
}

// Fprint renders the figure as an aligned text table, one row per x value.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(w, "   (y = %s, mean ± 90%% CI over seeds)\n", f.YLabel)
	fmt.Fprintf(w, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %22s", s.Name)
	}
	fmt.Fprintln(w)

	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	for _, x := range sorted {
		fmt.Fprintf(w, "%-12.3g", x)
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%10.3f ±%8.3f", p.Mean, p.CI90)
					break
				}
			}
			fmt.Fprintf(w, " %22s", cell)
		}
		fmt.Fprintln(w)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
}

// runJob is one scenario execution in a figure's job grid.
type runJob struct {
	build func() Scenario
	res   *Result
	err   error
}

// runGrid executes jobs on a bounded worker pool of o.Parallelism
// goroutines (each Run is single-goroutine and independent, so the whole
// (figure, protocol, x, seed) grid parallelizes). Results land in the job
// slots, so downstream aggregation happens in the caller's deterministic
// order regardless of worker count; the first error in job order wins.
func runGrid(o Options, jobs []*runJob) error {
	workers := o.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// Each worker owns one arena (engine + memory pools reused across the
	// runs it picks up); all workers share one deployment cache. Job →
	// worker assignment is dynamic and therefore nondeterministic under
	// parallelism, which is safe precisely because every run's result is
	// independent of its arena's history.
	newArena := func() *Arena { return nil }
	if !o.DisableArena {
		cache := NewDeployCache(0)
		newArena = func() *Arena { return NewArenaWithCache(cache) }
	}
	runOne := func(a *Arena, j *runJob) {
		if j.res, j.err = RunWith(a, j.build()); j.err == nil {
			j.err = auditErr(j.res)
		}
	}
	if workers <= 1 {
		a := newArena()
		for _, j := range jobs {
			runOne(a, j)
			if j.err != nil {
				return j.err
			}
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := newArena()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				runOne(a, jobs[i])
			}
		}()
	}
	wg.Wait()
	for _, j := range jobs {
		if j.err != nil {
			return j.err
		}
	}
	return nil
}

// auditErr surfaces invariant violations from an audited run as a hard
// error: a figure regenerated from a rule-breaking simulation is not
// data. Unaudited runs (Options.Audit off) always pass.
func auditErr(res *Result) error {
	if res.Audit == nil || res.Audit.Total == 0 {
		return nil
	}
	return fmt.Errorf("experiment: %s seed %d: %d invariant violations, first: %s",
		res.Protocol, res.Seed, res.Audit.Total, res.Audit.Violations[0])
}

// runMatrix runs build(i, seed) for every point index i and seed
// BaseSeed..BaseSeed+Seeds-1 through one pooled grid and returns
// results[i] in seed order.
func runMatrix(o Options, n int, build func(i int, seed int64) Scenario) ([][]*Result, error) {
	jobs := make([]*runJob, 0, n*o.Seeds)
	for i := 0; i < n; i++ {
		for s := 0; s < o.Seeds; s++ {
			// Every driver normalized o already, so BaseSeed is >= 1.
			i, seed := i, o.BaseSeed+int64(s)
			jobs = append(jobs, &runJob{build: func() Scenario { return build(i, seed) }})
		}
	}
	if err := runGrid(o, jobs); err != nil {
		return nil, err
	}
	out := make([][]*Result, n)
	k := 0
	for i := range out {
		out[i] = make([]*Result, o.Seeds)
		for s := 0; s < o.Seeds; s++ {
			out[i][s] = jobs[k].res
			k++
		}
	}
	return out, nil
}

// pointFrom aggregates metric over one point's seed-ordered results.
func pointFrom(x float64, results []*Result, metric func(*Result) float64) Point {
	var w stats.Welford
	for _, r := range results {
		w.Add(metric(r))
	}
	return Point{X: x, Mean: w.Mean(), CI90: w.CI90(), N: w.N()}
}

func (o Options) scenario(p Protocol, seed int64) Scenario {
	sc := DefaultScenario(p, seed)
	sc.Duration = o.Duration
	sc.Topology.NumNodes = o.Nodes
	sc.Topology.Generator = o.Topology
	sc.Topology.Params = o.TopologyParams
	sc.Propagation = o.Channel
	sc.PropagationParams = o.ChannelParams
	sc.RadioProfile = o.RadioProfile
	sc.Audit = o.Audit
	if sc.MeasureFrom >= sc.Duration {
		sc.MeasureFrom = sc.Duration / 5
	}
	return sc
}

// FigureInfo describes one figure driver for listings (essat-sim -list,
// essat-bench -fig).
type FigureInfo struct {
	ID    string
	Title string
}

// FigureCatalog lists every figure and study driver this package can
// regenerate, in presentation order.
func FigureCatalog() []FigureInfo {
	return []FigureInfo{
		{"fig2", "Impact of query deadline on duty cycle and query latency of STS-SS"},
		{"fig3", "Average duty cycle when varying base rate"},
		{"fig4", "Average duty cycle when varying queries per class"},
		{"fig5", "Distribution of duty cycles at different ranks"},
		{"fig6", "Query latency when varying base rate"},
		{"fig7", "Query latency when varying queries per class"},
		{"fig8", "Histogram of sleep intervals (TBE=0)"},
		{"fig9", "Impact of break-even time on DTS-SS duty cycle"},
		{"overhead", "DTS phase-update overhead (§4.2.3)"},
		{"ablation-guard", "Safe Sleep break-even guard vs naive sleep-any-gap"},
		{"ablation-buffering", "Early-report buffering vs greedy early send"},
		{"ablation-tree", "Setup-flood tree vs idealized BFS tree"},
		{"robustness-loss", "Root coverage under transient packet loss (§4.3)"},
		{"robustness-failures", "DTS-SS under mid-run node failures (§4.3)"},
		{"lifetime", "Network lifetime with finite batteries (§4.2.1)"},
	}
}

// Fig2Deadline reproduces Figure 2: the impact of the STS query deadline
// on STS-SS duty cycle and query latency, with three queries running.
// The paper observes a knee near D ≈ 0.12 s: below it latency is flat
// while duty falls; above it latency grows linearly with no duty gain.
func Fig2Deadline(o Options, deadlines []time.Duration) (*Figure, error) {
	o = o.normalized()
	if len(deadlines) == 0 {
		for d := 50 * time.Millisecond; d <= 800*time.Millisecond; d += 75 * time.Millisecond {
			deadlines = append(deadlines, d)
		}
	}
	const baseRate = 1.0
	results, err := runMatrix(o, len(deadlines), func(i int, seed int64) Scenario {
		sc := o.scenario(STSSS, seed)
		rng := rand.New(rand.NewSource(seed * 7919))
		sc.Queries = QueryClasses(rng, baseRate, 1, 10*time.Second)
		sc.STSDeadline = deadlines[i]
		return sc
	})
	if err != nil {
		return nil, err
	}
	duty := Series{Name: "duty cycle (%)"}
	lat := Series{Name: "query latency (s)"}
	for i, d := range deadlines {
		x := d.Seconds()
		duty.Points = append(duty.Points, pointFrom(x, results[i],
			func(r *Result) float64 { return r.DutyCycle * 100 }))
		lat.Points = append(lat.Points, pointFrom(x, results[i],
			func(r *Result) float64 { return r.Latency.Mean.Seconds() }))
	}
	return &Figure{
		ID:     "fig2",
		Title:  "Impact of query deadline on duty cycle and query latency of STS-SS",
		XLabel: "deadline (s)",
		YLabel: "duty cycle (%) / latency (s)",
		Series: []Series{duty, lat},
	}, nil
}

// protocolSweep runs every (protocol, x, seed) combination through one
// pooled job grid and aggregates metric per point.
func protocolSweep(o Options, protos []Protocol, xs []float64,
	build func(p Protocol, x float64, seed int64) Scenario,
	metric func(*Result) float64) ([]Series, error) {

	results, err := runMatrix(o, len(protos)*len(xs), func(i int, seed int64) Scenario {
		return build(protos[i/len(xs)], xs[i%len(xs)], seed)
	})
	if err != nil {
		return nil, err
	}
	var out []Series
	for pi, p := range protos {
		s := Series{Name: string(p)}
		for xi, x := range xs {
			s.Points = append(s.Points, pointFrom(x, results[pi*len(xs)+xi], metric))
		}
		out = append(out, s)
	}
	return out, nil
}

// dutyProtocols are the protocols of Figures 3 and 4 (SYNC is omitted
// from the duty figures as in the paper: it is 20% by construction).
var dutyProtocols = []Protocol{DTSSS, STSSS, NTSSS, PSM, SPAN}

// Fig3DutyVsRate reproduces Figure 3: average duty cycle for three query
// classes as the base rate varies from 1 to 5 Hz.
func Fig3DutyVsRate(o Options, rates []float64) (*Figure, error) {
	o = o.normalized()
	if len(rates) == 0 {
		rates = []float64{1, 2, 3, 4, 5}
	}
	series, err := protocolSweep(o, dutyProtocols, rates,
		func(p Protocol, rate float64, seed int64) Scenario {
			sc := o.scenario(p, seed)
			rng := rand.New(rand.NewSource(seed * 7919))
			sc.Queries = QueryClasses(rng, rate, 1, 10*time.Second)
			return sc
		},
		func(r *Result) float64 { return r.DutyCycle * 100 })
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "fig3",
		Title:  "Average duty cycle for three query classes when varying base rate",
		XLabel: "base rate (Hz)",
		YLabel: "duty cycle (%)",
		Series: series,
		Notes:  []string{"SYNC is fixed at 20% duty by construction and omitted, as in the paper"},
	}, nil
}

// Fig4DutyVsQueries reproduces Figure 4: average duty cycle at a fixed
// 0.2 Hz base rate as the number of queries per class grows.
func Fig4DutyVsQueries(o Options, counts []int) (*Figure, error) {
	o = o.normalized()
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 6, 8, 10}
	}
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	series, err := protocolSweep(o, dutyProtocols, xs,
		func(p Protocol, x float64, seed int64) Scenario {
			sc := o.scenario(p, seed)
			rng := rand.New(rand.NewSource(seed * 104729))
			sc.Queries = QueryClasses(rng, 0.2, int(x), 10*time.Second)
			return sc
		},
		func(r *Result) float64 { return r.DutyCycle * 100 })
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "fig4",
		Title:  "Average duty cycle for three query classes when varying number of queries per class",
		XLabel: "queries/class",
		YLabel: "duty cycle (%)",
		Series: series,
	}, nil
}

// Fig5DutyByRank reproduces Figure 5: the distribution of duty cycles
// across tree ranks for the three ESSAT protocols at a 5 Hz base rate.
// NTS-SS grows linearly with rank (Eq. 1); STS-SS and DTS-SS stay flat.
func Fig5DutyByRank(o Options) (*Figure, error) {
	o = o.normalized()
	protos := []Protocol{DTSSS, STSSS, NTSSS}
	results, err := runMatrix(o, len(protos), func(i int, seed int64) Scenario {
		sc := o.scenario(protos[i], seed)
		rng := rand.New(rand.NewSource(seed * 7919))
		sc.Queries = QueryClasses(rng, 5, 1, 10*time.Second)
		return sc
	})
	if err != nil {
		return nil, err
	}
	var out []Series
	for pi, p := range protos {
		byRank := make(map[int]*stats.Welford)
		for _, res := range results[pi] {
			for r, d := range res.DutyByRank {
				if byRank[r] == nil {
					byRank[r] = &stats.Welford{}
				}
				byRank[r].Add(d * 100)
			}
		}
		s := Series{Name: string(p)}
		ranks := make([]int, 0, len(byRank))
		for r := range byRank {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			s.Points = append(s.Points, Point{
				X: float64(r), Mean: byRank[r].Mean(), CI90: byRank[r].CI90(), N: byRank[r].N(),
			})
		}
		out = append(out, s)
	}
	return &Figure{
		ID:     "fig5",
		Title:  "Distribution of duty cycles at different ranks (base rate 5 Hz)",
		XLabel: "rank (0=leaf)",
		YLabel: "duty cycle (%)",
		Series: out,
	}, nil
}

// latencyProtocols are the protocols of Figures 6 and 7.
var latencyProtocols = []Protocol{DTSSS, STSSS, NTSSS, PSM, SPAN, SYNC}

// Fig6LatencyVsRate reproduces Figure 6: average query latency as the
// base rate varies (the paper plots it on a log scale).
func Fig6LatencyVsRate(o Options, rates []float64) (*Figure, error) {
	o = o.normalized()
	if len(rates) == 0 {
		rates = []float64{1, 2, 3, 4, 5}
	}
	series, err := protocolSweep(o, latencyProtocols, rates,
		func(p Protocol, rate float64, seed int64) Scenario {
			sc := o.scenario(p, seed)
			rng := rand.New(rand.NewSource(seed * 7919))
			sc.Queries = QueryClasses(rng, rate, 1, 10*time.Second)
			return sc
		},
		func(r *Result) float64 { return r.Latency.Mean.Seconds() })
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "fig6",
		Title:  "Query latency for three query classes when varying base rate",
		XLabel: "base rate (Hz)",
		YLabel: "query latency (s)",
		Series: series,
		Notes:  []string{"SYNC saturates at high rates (queueing): latencies grow with run length"},
	}, nil
}

// Fig7LatencyVsQueries reproduces Figure 7: average query latency at a
// 0.2 Hz base rate as the number of queries per class grows.
func Fig7LatencyVsQueries(o Options, counts []int) (*Figure, error) {
	o = o.normalized()
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 6, 8, 10}
	}
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	series, err := protocolSweep(o, latencyProtocols, xs,
		func(p Protocol, x float64, seed int64) Scenario {
			sc := o.scenario(p, seed)
			rng := rand.New(rand.NewSource(seed * 104729))
			sc.Queries = QueryClasses(rng, 0.2, int(x), 10*time.Second)
			return sc
		},
		func(r *Result) float64 { return r.Latency.Mean.Seconds() })
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "fig7",
		Title:  "Query latency for three query classes when varying the number of queries per class",
		XLabel: "queries/class",
		YLabel: "query latency (s)",
		Series: series,
	}, nil
}

// Fig8SleepHistogram reproduces Figure 8: the histogram of sleep-interval
// lengths with TBE = 0 for the three ESSAT protocols, in 25 ms bins up to
// 200 ms. The paper reads off the fraction of intervals shorter than the
// MICA2 break-even time (2.5 ms): 0.40% for NTS-SS, 0.85% for STS-SS and
// 6.33% for DTS-SS.
func Fig8SleepHistogram(o Options) (*Figure, []float64, error) {
	o = o.normalized()
	protos := []Protocol{DTSSS, STSSS, NTSSS}
	results, err := runMatrix(o, len(protos), func(i int, seed int64) Scenario {
		sc := o.scenario(protos[i], seed)
		rng := rand.New(rand.NewSource(seed * 7919))
		sc.Queries = QueryClasses(rng, 5, 1, 10*time.Second)
		sc.SSBreakEven = 0
		sc.RadioCfg.TurnOnDelay = 0
		sc.RadioCfg.TurnOffDelay = 0
		sc.RecordSleepIntervals = true
		return sc
	})
	if err != nil {
		return nil, nil, err
	}
	var out []Series
	var below25 []float64
	for pi, p := range protos {
		hist, err := stats.NewHistogram(25*time.Millisecond, 8)
		if err != nil {
			return nil, nil, err
		}
		for _, res := range results[pi] {
			for _, d := range res.SleepIntervals {
				hist.Add(d)
			}
		}
		s := Series{Name: string(p)}
		for i, c := range hist.Counts() {
			s.Points = append(s.Points, Point{
				X:    (time.Duration(i+1) * hist.BinWidth()).Seconds() * 1000,
				Mean: float64(c),
				N:    int(hist.Total()),
			})
		}
		out = append(out, s)
		below25 = append(below25, hist.FractionBelow(2500*time.Microsecond)*100)
	}
	fig := &Figure{
		ID:     "fig8",
		Title:  "Histogram of sleep intervals (TBE=0, base rate 5 Hz)",
		XLabel: "sleep length (ms)",
		YLabel: "count per 25 ms bin",
		Series: out,
		Notes: []string{fmt.Sprintf("%% of sleeps < 2.5 ms: DTS-SS=%.2f%% STS-SS=%.2f%% NTS-SS=%.2f%% (paper: 6.33 / 0.85 / 0.40)",
			below25[0], below25[1], below25[2])},
	}
	return fig, below25, nil
}

// Fig9BreakEven reproduces Figure 9: DTS-SS duty cycle versus base rate
// for Safe Sleep break-even times of 0, 2.5, 10 and 40 ms (the figure's
// caption says STS-SS but the surrounding text analyzes DTS-SS, the
// protocol most sensitive to TBE; the driver follows the text).
func Fig9BreakEven(o Options, rates []float64) (*Figure, error) {
	o = o.normalized()
	if len(rates) == 0 {
		rates = []float64{1, 2, 3, 4, 5}
	}
	tbes := []time.Duration{0, 2500 * time.Microsecond, 10 * time.Millisecond, 40 * time.Millisecond}
	results, err := runMatrix(o, len(tbes)*len(rates), func(i int, seed int64) Scenario {
		sc := o.scenario(DTSSS, seed)
		rng := rand.New(rand.NewSource(seed * 7919))
		sc.Queries = QueryClasses(rng, rates[i%len(rates)], 1, 10*time.Second)
		sc.SSBreakEven = tbes[i/len(rates)]
		return sc
	})
	if err != nil {
		return nil, err
	}
	var out []Series
	for ti, tbe := range tbes {
		s := Series{Name: fmt.Sprintf("TBE=%v", tbe)}
		for ri, rate := range rates {
			s.Points = append(s.Points, pointFrom(rate, results[ti*len(rates)+ri],
				func(r *Result) float64 { return r.DutyCycle * 100 }))
		}
		out = append(out, s)
	}
	return &Figure{
		ID:     "fig9",
		Title:  "Impact of break-even time on DTS-SS duty cycle",
		XLabel: "base rate (Hz)",
		YLabel: "duty cycle (%)",
		Series: out,
	}, nil
}

// OverheadPhaseUpdates reproduces the §4.2.3 measurement: DTS's phase-
// update overhead in piggybacked bits per data report across query rates
// (the paper reports less than one bit per report).
func OverheadPhaseUpdates(o Options, rates []float64) (*Figure, error) {
	o = o.normalized()
	if len(rates) == 0 {
		rates = []float64{1, 2, 3, 4, 5}
	}
	results, err := runMatrix(o, len(rates), func(i int, seed int64) Scenario {
		sc := o.scenario(DTSSS, seed)
		rng := rand.New(rand.NewSource(seed * 7919))
		sc.Queries = QueryClasses(rng, rates[i], 1, 10*time.Second)
		return sc
	})
	if err != nil {
		return nil, err
	}
	s := Series{Name: "DTS-SS phase bits/report"}
	for i, rate := range rates {
		s.Points = append(s.Points, pointFrom(rate, results[i],
			func(r *Result) float64 { return r.PhaseUpdateBitsPerReport }))
	}
	return &Figure{
		ID:     "overhead",
		Title:  "DTS phase-update overhead (§4.2.3; paper: <1 bit per data report)",
		XLabel: "base rate (Hz)",
		YLabel: "piggybacked bits per data report",
		Series: []Series{s},
	}, nil
}
