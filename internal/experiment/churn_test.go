package experiment

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/essat/essat/internal/dynamics"
	"github.com/essat/essat/internal/node"
	"github.com/essat/essat/internal/protocol"
)

// churnScenario is a small, fast deployment for dynamics-layer tests.
func churnScenario(p Protocol, seed int64) Scenario {
	sc := DefaultScenario(p, seed)
	sc.Topology.NumNodes = 40
	sc.Topology.AreaSide = 400
	sc.Duration = 30 * time.Second
	sc.MeasureFrom = 5 * time.Second
	sc.QueryCfg.FailureThreshold = 3
	sc.Queries = QueryClasses(rand.New(rand.NewSource(seed*7919)), 1.0, 1, 5*time.Second)
	return sc
}

// TestDynamicsScenariosAuditCleanAllProtocols is the acceptance matrix:
// one scenario per injector kind, run under every registered protocol
// with the full invariant audit — exactly what `essat-sim -scenario
// testdata/dynamics_*.json -audit` does.
func TestDynamicsScenariosAuditCleanAllProtocols(t *testing.T) {
	files := []string{"dynamics_crash.json", "dynamics_linkloss.json", "dynamics_burst.json"}
	for _, f := range files {
		spec, err := LoadSpec(filepath.Join("../../testdata", f))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range protocol.All() {
			p := p
			t.Run(f+"/"+string(p), func(t *testing.T) {
				run := *spec
				run.Protocol = string(p)
				res, err := RunSpec(&run)
				if err != nil {
					t.Fatal(err)
				}
				if res.Audit == nil {
					t.Fatal("scenario file did not enable the audit")
				}
				if res.Audit.Total != 0 {
					t.Fatalf("%d invariant violations, first: %s", res.Audit.Total, res.Audit.Violations[0])
				}
				if res.Coverage <= 0 {
					t.Fatal("no coverage at all under dynamics")
				}
			})
		}
	}
}

// TestAuditorIsPure: a run with the auditor enabled must be
// byte-identical to the same run without it — the observer can watch
// but never act.
func TestAuditorIsPure(t *testing.T) {
	sc := churnScenario(DTSSS, 3)
	sc.Dynamics = []Dynamic{
		{Kind: dynamics.KindCrash, Params: dynamics.Params{At: 8 * time.Second, Duration: 8 * time.Second, Count: 2}},
		{Kind: dynamics.KindBurst, Params: dynamics.Params{At: 12 * time.Second, Duration: 6 * time.Second, Period: 250 * time.Millisecond}},
	}
	plain, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Audit = true
	audited, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if audited.Audit == nil || audited.Audit.Total != 0 {
		t.Fatalf("audited run not clean: %+v", audited.Audit)
	}
	if plain.Audit != nil {
		t.Fatal("unaudited run carries an audit summary")
	}
	audited.Audit = nil
	if !reflect.DeepEqual(plain, audited) {
		t.Fatalf("auditor changed the run:\nplain   %+v\naudited %+v", plain, audited)
	}
}

// TestCrashRecoveryRestoresReporting: with recovery, crashed nodes
// come back and the run ends with full membership reporting; the same
// crashes made permanent lose those sources for good.
func TestCrashRecoveryRestoresReporting(t *testing.T) {
	base := churnScenario(DTSSS, 5)
	base.Audit = true

	recovered := base
	recovered.Dynamics = []Dynamic{{Kind: dynamics.KindCrash,
		Params: dynamics.Params{At: 8 * time.Second, Duration: 5 * time.Second, Count: 3}}}
	permanent := base
	permanent.Dynamics = []Dynamic{{Kind: dynamics.KindCrash,
		Params: dynamics.Params{At: 8 * time.Second, Count: 3}}}

	rec, err := Run(recovered)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := Run(permanent)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{rec, perm} {
		if r.Audit.Total != 0 {
			t.Fatalf("violations under churn: %v", r.Audit.Violations)
		}
	}
	if rec.Coverage <= perm.Coverage {
		t.Fatalf("recovery did not help coverage: recovered %.2f <= permanent %.2f",
			rec.Coverage, perm.Coverage)
	}
}

// TestBurstRaisesTraffic: the load-burst injector must visibly increase
// MAC traffic during the run, and the extra queries must not outlive
// the burst (the workload returns to baseline).
func TestBurstRaisesTraffic(t *testing.T) {
	base := churnScenario(DTSSS, 7)
	quiet, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	bursty := base
	bursty.Audit = true
	bursty.Dynamics = []Dynamic{{Kind: dynamics.KindBurst,
		Params: dynamics.Params{At: 10 * time.Second, Duration: 10 * time.Second, Period: 250 * time.Millisecond, Queries: 2}}}
	loud, err := Run(bursty)
	if err != nil {
		t.Fatal(err)
	}
	if loud.Audit.Total != 0 {
		t.Fatalf("violations under burst: %v", loud.Audit.Violations)
	}
	if loud.MACSent <= quiet.MACSent {
		t.Fatalf("burst did not raise traffic: %d <= %d", loud.MACSent, quiet.MACSent)
	}
}

// TestLinkLossRampDropsFrames: the ramp injects real per-link drops and
// clears them by the end of the episode.
func TestLinkLossRampDropsFrames(t *testing.T) {
	sc := churnScenario(DTSSS, 9)
	sc.Audit = true
	sc.Dynamics = []Dynamic{{Kind: dynamics.KindLinkLoss,
		Params: dynamics.Params{At: 8 * time.Second, Duration: 12 * time.Second, Peak: 0.5, Steps: 6}}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit.Total != 0 {
		t.Fatalf("violations under link loss: %v", res.Audit.Violations)
	}
	if res.Channel.LinkDrops == 0 {
		t.Fatal("link-loss ramp dropped nothing")
	}
}

// TestDynamicsDeterminism: the same dynamics scenario runs to the same
// trace digest every time.
func TestDynamicsDeterminism(t *testing.T) {
	build := func() Scenario {
		sc := churnScenario(STSSS, 11)
		sc.Audit = true
		sc.Dynamics = []Dynamic{
			{Kind: dynamics.KindCrash, Params: dynamics.Params{At: 6 * time.Second, Duration: 6 * time.Second, Count: 2}},
			{Kind: dynamics.KindLinkLoss, Params: dynamics.Params{At: 10 * time.Second, Duration: 8 * time.Second, Peak: 0.3}},
			{Kind: dynamics.KindBurst, Params: dynamics.Params{At: 15 * time.Second, Duration: 8 * time.Second, Period: 500 * time.Millisecond}},
		}
		return sc
	}
	a, err := Run(build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(build())
	if err != nil {
		t.Fatal(err)
	}
	if a.Audit.Digest != b.Audit.Digest {
		t.Fatalf("digests differ across identical runs: %s vs %s", a.Audit.Digest, b.Audit.Digest)
	}
}

// TestSpecDynamicsValidation: unknown kinds and bad parameters are
// rejected at spec-compile or build time.
func TestSpecDynamicsValidation(t *testing.T) {
	spec := &Spec{
		Protocol: "DTS-SS",
		Workload: &WorkloadSpec{BaseRate: 1, PerClass: 1},
		Dynamics: []DynamicsSpec{{Kind: "meteor"}},
	}
	if _, err := spec.Scenario(); err == nil {
		t.Fatal("unknown dynamics kind accepted")
	}
	sc := churnScenario(DTSSS, 1)
	sc.Dynamics = []Dynamic{{Kind: dynamics.KindLinkLoss, Params: dynamics.Params{At: time.Second}}}
	if _, err := Build(sc); err == nil {
		t.Fatal("invalid linkloss params accepted at build")
	}
}

// TestPermanentFailureWinsOverCrashRecovery: a configured (permanent)
// failure that strikes while its victim is dynamics-crashed must still
// kill the node for good — the later recovery event must not resurrect
// it.
func TestPermanentFailureWinsOverCrashRecovery(t *testing.T) {
	// Probe the deterministic topology once to pick a non-root member.
	probe, err := Build(churnScenario(DTSSS, 13))
	if err != nil {
		t.Fatal(err)
	}
	var victim int = -1
	for _, id := range probe.Tree.Members() {
		if id != probe.Tree.Root() {
			victim = int(id)
			break
		}
	}
	if victim < 0 {
		t.Fatal("no non-root member")
	}

	sc := churnScenario(DTSSS, 13)
	sc.Audit = true
	sc.Dynamics = []Dynamic{{Kind: dynamics.KindCrash,
		Params: dynamics.Params{At: 8 * time.Second, Duration: 8 * time.Second, Node: &victim}}}
	sc.Failures = []Failure{{At: 10 * time.Second, Node: node.NodeID(victim)}}
	s, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	s.Simulate()
	res := s.Collect()
	if res.Audit.Total != 0 {
		t.Fatalf("violations: %v", res.Audit.Violations)
	}
	v := node.NodeID(victim)
	if !s.Nodes[v].Killed() {
		t.Fatal("crash recovery resurrected a permanently failed node")
	}
	if !s.Channel.Disabled(v) {
		t.Fatal("failed node not permanently disabled on the channel")
	}
}

// TestQueryStopReachesCrashedNodes: a network-wide query stop that
// fires while a node is crashed must still deregister the query there,
// or the node resumes reporting a dead query after recovery.
func TestQueryStopReachesCrashedNodes(t *testing.T) {
	probe, err := Build(churnScenario(DTSSS, 17))
	if err != nil {
		t.Fatal(err)
	}
	var victim int = -1
	for _, id := range probe.Tree.Members() {
		if id != probe.Tree.Root() {
			victim = int(id)
			break
		}
	}

	sc := churnScenario(DTSSS, 17)
	sc.Audit = true
	sc.QueryStops = []QueryStop{{At: 12 * time.Second, Query: 0}}
	sc.Dynamics = []Dynamic{{Kind: dynamics.KindCrash,
		Params: dynamics.Params{At: 8 * time.Second, Duration: 8 * time.Second, Node: &victim}}}
	s, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	s.Simulate()
	res := s.Collect()
	if res.Audit.Total != 0 {
		t.Fatalf("violations: %v", res.Audit.Violations)
	}
	n := s.Nodes[node.NodeID(victim)]
	if n.Killed() {
		t.Fatal("victim did not recover")
	}
	for _, q := range n.Agent.Queries() {
		if q == 0 {
			t.Fatal("stopped query still registered on the recovered node")
		}
	}
}
