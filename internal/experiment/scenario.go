// Package experiment builds and runs the paper's evaluation scenarios
// (§5): 80 nodes in 500×500 m², three query classes with rate ratio
// 6:3:2, five protocols, 200-second runs — and provides one driver per
// figure of the paper plus the ablation studies from DESIGN.md.
package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/essat/essat/internal/baseline"
	"github.com/essat/essat/internal/check"
	"github.com/essat/essat/internal/core"
	"github.com/essat/essat/internal/dynamics"
	"github.com/essat/essat/internal/mac"
	"github.com/essat/essat/internal/node"
	"github.com/essat/essat/internal/phy"
	"github.com/essat/essat/internal/protocol"
	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/routing"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/stats"
	"github.com/essat/essat/internal/topology"
	"github.com/essat/essat/internal/trace"
)

// Protocol selects the power-management protocol under test. The
// implemented protocols live in the internal/protocol registry; this
// package re-exports the names for convenience.
type Protocol = protocol.Protocol

// The five protocols of the paper's evaluation plus SYNC, plus T-MAC
// from the paper's related-work discussion (§2, reference [12]).
const (
	NTSSS = protocol.NTSSS
	STSSS = protocol.STSSS
	DTSSS = protocol.DTSSS
	SPAN  = protocol.SPAN
	PSM   = protocol.PSM
	SYNC  = protocol.SYNC
	TMAC  = protocol.TMAC
)

// AllProtocols lists every registered protocol in presentation order.
// (TMAC is excluded from the paper's figures, which predate it in this
// harness, but participates in smoke tests and examples.)
var AllProtocols = protocol.All()

// QueryStop deregisters a query at a given time, shrinking the workload.
type QueryStop struct {
	At    time.Duration
	Query query.ID
}

// setupAnnounce is the flooded in-band query setup request (energy and
// contention realism only; registration itself is direct).
type setupAnnounce struct {
	Query query.ID
}

// Failure kills a node at a given time (§4.3 robustness experiments).
type Failure struct {
	// At is when the node dies.
	At time.Duration
	// Node selects the victim. Negative means "a random live non-root,
	// non-leaf member", the interesting case for recovery.
	Node node.NodeID
}

// Dynamic is one configured fault/load injector: a registered kind from
// the internal/dynamics registry ("crash", "linkloss", "burst") plus
// its parameters.
type Dynamic struct {
	Kind string
	dynamics.Params
}

// Scenario fully describes one simulation run.
type Scenario struct {
	Protocol Protocol
	Seed     int64

	// Topology: the paper uses 80 nodes, 500×500 m², 125 m range, tree
	// limited to 300 m around the central root.
	Topology    topology.Config
	TreeMaxDist float64
	// BFSTree selects idealized min-hop tree construction instead of the
	// default simulated setup flood (§5: the root floods a setup request;
	// contention makes flood trees deeper and less regular).
	BFSTree bool

	// Queries registered at every tree node before the run.
	Queries []query.Spec

	// Duration of the run; metrics are measured from MeasureFrom.
	Duration    time.Duration
	MeasureFrom time.Duration

	// RadioProfile selects the radio energy profile by registry name
	// ("paper", "cc1000", "cc2420"); empty keeps the paper's §4.1 cost
	// model. The profile supplies the transition latencies, the
	// per-state power draw behind every energy metric (battery
	// exhaustion, lifetime, the auditor's energy invariant), and Safe
	// Sleep's derived break-even time.
	RadioProfile string
	// RadioCfg overrides the profile's transition latencies when
	// non-zero; leave zero to use the profile's hardware numbers.
	RadioCfg radio.Config
	// SSBreakEven is the Safe Sleep tBE parameter; negative selects the
	// radio's intrinsic break-even time (Fig. 8/9 sweep it explicitly).
	SSBreakEven time.Duration
	// DisableSafeSleep turns SS off on every node (ablation: shaping
	// without sleeping).
	DisableSafeSleep bool

	// STSDeadline is the STS deadline D; zero selects D = query period
	// (the §5 configuration). Fig. 2 sweeps it.
	STSDeadline time.Duration
	// NoBuffering disables STS/DTS early-report buffering (ablation).
	NoBuffering bool

	// MAC and channel parameters; zero values select the defaults.
	MACCfg     mac.Config
	ChannelCfg phy.Config
	// Propagation selects the channel propagation model by registry name
	// ("disc", "shadowing", "dual-disc"); empty keeps the unit-disc
	// channel of the paper. PropagationParams passes the model's knobs
	// (shadowing "sigma"/"pathloss", dual-disc "inner"/"outer").
	Propagation       string
	PropagationParams map[string]float64
	// LossRate injects independent per-delivery loss.
	LossRate float64

	// QueryCfg tunes the agent; zero FailureThreshold disables failure
	// detection (the paper's main experiments have no failures).
	QueryCfg query.Config

	// Failures to inject.
	Failures []Failure

	// RecordSleepIntervals enables the Fig. 8 histogram collection.
	RecordSleepIntervals bool

	// TraceCapacity, when positive, records the last N structured events
	// (radio transitions, failure recovery) across all nodes.
	TraceCapacity int

	// BatteryJ, when positive, gives every non-root node a finite energy
	// budget in joules (MICA2-class power profile): a node whose radio
	// consumption exceeds it dies, exercising the paper's §4.2.1 network-
	// lifetime concern. The root (base station) is assumed powered.
	BatteryJ float64

	// Dissemination adds periodic root-to-leaves flows (the §3 extension).
	// Flow IDs must not collide with query IDs.
	Dissemination []core.DisseminationSpec

	// PeerFlows adds periodic peer-to-peer flows routed through the tree
	// (the §3 extension). Negative Src/Dst pick random distinct members.
	// Flow IDs must not collide with query or dissemination IDs.
	PeerFlows []core.P2PSpec

	// SetupSlot models the paper's in-band query setup (§4.1): for this
	// long before each query's phase, every ESSAT node holds its radio on
	// and the setup request is flooded over the air. Zero disables (the
	// default: queries pre-disseminated, like the routing tree).
	SetupSlot time.Duration

	// QueryStops deregister queries mid-run (workload adaptation).
	QueryStops []QueryStop

	// Dynamics lists fault/load injectors perturbing the run mid-flight:
	// node crash/recovery schedules, per-link loss ramps, traffic bursts.
	Dynamics []Dynamic

	// Audit enables the cross-layer invariant auditor (internal/check):
	// a pure observer validating physics and protocol rules every event
	// and producing the canonical trace digest in Result.Audit. Same-seed
	// runs are byte-identical with the auditor on or off.
	Audit bool

	// Shards enables the sharded parallel engine when > 1: the
	// deployment is cut into that many spatial shards (topology
	// partitioner), each running its own engine + channel lane on its
	// own goroutine inside conservative windows of the cross-shard
	// lookahead, with boundary traffic exchanged at window barriers
	// (phy.Mesh). Cross-shard links behave as if they had `Lookahead`
	// of propagation delay — the standard federated-simulation
	// approximation — so results are deterministic per (seed, Shards,
	// Lookahead) but not bit-identical across shard counts; Shards <= 1
	// is the unmodified sequential engine. Tracing, dynamics injectors,
	// the §4.3 failure detector, and radio-observing sinks are not yet
	// supported in parallel mode and fail the build.
	Shards int
	// Lookahead overrides the derived cross-shard latency; zero derives
	// DIFS + worst-case propagation from the MAC and topology (see
	// phy.CrossShardLookahead). Larger values cut barrier overhead at
	// the cost of more boundary-timing distortion.
	Lookahead time.Duration

	// Sinks selects additional metric sinks from the stats registry
	// ("timeseries", "energy", "jsonl", ...) to observe the run; the
	// spec layer's results block compiles here. The root
	// latency/coverage recorder is always attached first, so an empty
	// list is the historical default. Sinks are pure observers — trace
	// digests and all legacy Result fields are identical with any
	// selection — and their records land in Result.Records in this
	// order.
	Sinks []SinkChoice

	// SyncCfg, PsmCfg and TmacCfg tune the baselines; zero values select
	// defaults.
	SyncCfg baseline.SyncConfig
	PsmCfg  baseline.PsmConfig
	TmacCfg baseline.TmacConfig
}

// SinkChoice names one metric sink plus its parameters (validated by
// the sink's builder at build time).
type SinkChoice struct {
	Name   string
	Params map[string]float64
}

// DefaultScenario returns the paper's experimental setup with the given
// protocol and seed (queries must still be added).
func DefaultScenario(p Protocol, seed int64) Scenario {
	return Scenario{
		Protocol:    p,
		Seed:        seed,
		Topology:    topology.DefaultConfig(),
		TreeMaxDist: 300,
		Duration:    200 * time.Second,
		MeasureFrom: 10 * time.Second,
		SSBreakEven: -1,
		MACCfg:      mac.DefaultConfig(),
		ChannelCfg:  phy.DefaultConfig(),
		QueryCfg:    query.Config{ReportBytes: 52, PhaseBytes: 4},
	}
}

// QueryClasses builds the paper's workload: perClass queries in each of
// three classes whose rates are in the ratio 6:3:2 (Q1 at baseRate Hz),
// each starting at a random phase in [0, phaseMax).
//
// Invalid arguments (non-positive baseRate, perClass, or phaseMax)
// yield an empty workload, which Build rejects with "no queries
// configured" — the imperative analogue of the spec layer's validation,
// and a returned error rather than a panic, so no request path can
// crash a hosting process.
func QueryClasses(rng *rand.Rand, baseRate float64, perClass int, phaseMax time.Duration) []query.Spec {
	if baseRate <= 0 || perClass <= 0 || phaseMax <= 0 {
		return nil
	}
	ratios := []float64{1, 2, 3} // periods scale as 1, 2, 3 → rates 6:3:2
	var specs []query.Spec
	id := query.ID(0)
	for class := 0; class < 3; class++ {
		period := time.Duration(ratios[class] / baseRate * float64(time.Second))
		for i := 0; i < perClass; i++ {
			phase := time.Duration(rng.Int63n(int64(phaseMax)))
			specs = append(specs, query.Spec{
				ID:     id,
				Period: period,
				Phase:  phase,
				Class:  class + 1,
			})
			id++
		}
	}
	return specs
}

// Result aggregates one run's metrics.
type Result struct {
	Protocol Protocol
	Seed     int64

	// DutyCycle is the mean duty cycle over tree members, in [0,1],
	// measured over [MeasureFrom, Duration].
	DutyCycle float64
	// DutyByRank maps node rank → mean duty cycle of nodes at that rank.
	DutyByRank map[int]float64

	// Latency summarizes per-interval query completion latency.
	Latency stats.DurationStats
	// LatencyByClass groups it per query class (1..3).
	LatencyByClass map[int]stats.DurationStats

	// Coverage is the mean number of source samples in the root's
	// aggregate per interval (tree size would be perfect).
	Coverage float64
	// TreeSize is the number of tree members; MaxRank is M.
	TreeSize int
	MaxRank  int

	// SleepIntervals collects every completed radio off-period across
	// members, when enabled.
	SleepIntervals []time.Duration

	// PhaseUpdateBitsPerReport is DTS's piggyback overhead amortized over
	// all scheduled reports (the paper reports < 1 bit/report).
	PhaseUpdateBitsPerReport float64
	// PhaseShifts counts DTS phase shifts across all nodes.
	PhaseShifts uint64

	// Channel and aggregate MAC statistics.
	Channel phy.Stats
	MACSent, MACFailed, MACRetries,
	Timeouts, PassThroughs uint64

	// Events is the number of simulator events executed.
	Events uint64

	// Trace holds the retained structured events when TraceCapacity > 0.
	Trace []trace.Event

	// DisseminationDelivery is the fraction of expected downstream
	// command receptions that arrived (non-root members × intervals),
	// and DisseminationLatency the mean release→reception delay.
	DisseminationDelivery float64
	DisseminationLatency  time.Duration

	// P2PDelivery is the fraction of released peer messages consumed at
	// their destinations; P2PLatency the mean release→consumption delay.
	P2PDelivery float64
	P2PLatency  time.Duration

	// FirstDeath is when the first node exhausted its battery (0 = none
	// died); BatteryDeaths counts nodes that died of exhaustion.
	FirstDeath    time.Duration
	BatteryDeaths int

	// Audit is the invariant auditor's report (trace digest, audited
	// event count, violations); nil unless Scenario.Audit was set.
	Audit *check.Summary

	// Records holds the structured outputs of the metric sinks selected
	// by Scenario.Sinks (the spec's results block), in configuration
	// order. Empty on default runs: the always-on root recorder feeds
	// Latency/LatencyByClass/Coverage instead of emitting a record.
	Records []stats.Record

	// EnergyMean and EnergyMax are per-node radio energy over the
	// measurement window in joules, under a MICA2-class power profile.
	// NetworkLifetime extrapolates the worst node's draw against a 20 kJ
	// battery — the paper's "nodes close to the root run out of energy
	// faster" concern, quantified.
	EnergyMean, EnergyMax float64
	NetworkLifetime       time.Duration
}

// Run executes the scenario and collects metrics. It is the composition
// of the three explicit stages: Build (wire the deployment and protocol
// stacks, schedule the workload), Sim.Simulate (drain the event queue),
// and Sim.Collect (aggregate metrics). It delegates to RunContext with
// a background context and no budget, which executes the identical
// event loop (golden digests are unchanged) while containing a
// panicking protocol stack into a returned *PanicError.
func Run(sc Scenario) (*Result, error) {
	return RunContext(context.Background(), sc, Budget{})
}

// Sim is one fully built scenario, paused at time zero: engine,
// topology, routing tree, channel, and per-node protocol stacks wired,
// with the workload, failure injections, and measurement snapshots
// already in the event queue. Callers may inspect or instrument the
// exported pieces before Simulate.
type Sim struct {
	Scenario Scenario
	// Eng is the (first) engine; parallel runs have one per shard, with
	// Eng == engines[0]. Channel is likewise the first lane.
	Eng     *sim.Engine
	Topo    *topology.Topology
	Tree    *routing.Tree
	Channel *phy.Channel
	Nodes   map[node.NodeID]*node.Node

	engines   []*sim.Engine
	chans     []*phy.Channel
	mesh      *phy.Mesh
	part      *topology.Partition
	lookahead time.Duration

	sink      *stats.RootSink
	fan       *stats.Fanout
	tracer    *trace.Tracer
	auditors  []*check.Auditor
	profile   radio.PowerProfile
	activeAt0 []time.Duration
	energyAt0 []float64

	battery []shardBattery
}

// shardBattery is one shard's battery-exhaustion accounting (written
// only by that shard's goroutine); sequential runs use a single entry.
type shardBattery struct {
	firstDeath time.Duration
	deaths     int
}

// Build constructs the scenario's simulation without running it: place
// the topology (via the generator registry), build the routing tree,
// attach the protocol stack to every member (via the protocol
// registry), and schedule queries, stops, flows, failures, and the
// warm-up snapshot.
func Build(sc Scenario) (*Sim, error) { return build(sc, nil) }

// BuildWith is Build executing on a reusable Arena: the engine (event
// freelist, typed memory pools) is reset and reused instead of
// reallocated, and deployments (topology + routing-tree template) are
// served from the arena's cache when an identical placement was built
// before. Results are byte-identical to Build — the arena changes where
// memory comes from, never what the run computes. A nil arena is plain
// Build.
func BuildWith(a *Arena, sc Scenario) (*Sim, error) { return build(sc, a) }

func build(sc Scenario, a *Arena) (*Sim, error) {
	if len(sc.Queries) == 0 {
		return nil, fmt.Errorf("experiment: no queries configured")
	}
	if sc.Duration <= 0 {
		return nil, fmt.Errorf("experiment: non-positive duration %v", sc.Duration)
	}
	K := 1
	if sc.Shards > 1 {
		K = sc.Shards
		// Features whose state is shared across nodes of different
		// shards (and therefore across goroutines) are gated until they
		// grow a parallel-safe path.
		switch {
		case sc.TraceCapacity > 0:
			return nil, fmt.Errorf("experiment: tracing is not supported with shards > 1")
		case len(sc.Dynamics) > 0:
			return nil, fmt.Errorf("experiment: dynamics injectors are not supported with shards > 1")
		case sc.QueryCfg.FailureThreshold > 0:
			return nil, fmt.Errorf("experiment: the failure detector (tree re-parenting) is not supported with shards > 1")
		}
	}
	builder, ok := protocol.Lookup(sc.Protocol)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown protocol %q (registered: %v)", sc.Protocol, protocol.All())
	}
	// Resolve the pluggable hardware models first: the propagation model
	// shapes the candidate graph and both channels (setup flood and
	// run), the energy profile everything that meters joules.
	prop, err := phy.NewPropagation(sc.Propagation, sc.PropagationParams)
	if err != nil {
		return nil, err
	}
	if sc.ChannelCfg.Propagation != nil {
		// An explicitly wired model (imperative API) wins over the name.
		prop = sc.ChannelCfg.Propagation
	}
	profName := sc.RadioProfile
	if profName == "" {
		profName = radio.Paper
	}
	prof, ok := radio.LookupProfile(profName)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown radio profile %q (registered: %v)", sc.RadioProfile, radio.ProfileNames())
	}
	rcfg := sc.RadioCfg
	if rcfg == (radio.Config{}) {
		rcfg = prof.Config()
	}
	// Shard 0's engine is the arena's reusable one and carries all
	// build-time randomness (placement, victim picks, flow endpoints),
	// so a 1-shard build is bit-identical to the historical sequential
	// path. Additional shards get fresh engines with their own arenas —
	// per-shard freelists and slabs are what keep the hot path
	// allocation-free without cross-goroutine sharing — and decorrelated
	// rng streams.
	engines := make([]*sim.Engine, K)
	engines[0] = a.engine(sc.Seed)
	for s := 1; s < K; s++ {
		e := sim.New(sc.Seed ^ int64(s)*-0x61c8864680b583eb)
		e.SetArena(sim.NewArena())
		engines[s] = e
	}
	eng := engines[0]

	// Gray-zone models deliver past the nominal range: widen the
	// candidate-neighbor graph to the model's conservative maximum.
	sc.Topology.NeighborRange = prop.MaxRange(sc.Topology.Range)

	// Placement and tree construction depend only on the deployment key
	// fields (seed, topology config, tree policy, propagation model), so
	// an arena with a cache can reuse a previous build's topology and
	// tree template. The run engine's rng stream must stay identical
	// either way: on a hit, Replay burns exactly the draws the generator
	// would have consumed. Caching is skipped when an imperative
	// ChannelCfg.Propagation override is wired in — that model has no
	// name to key on.
	var (
		topo *topology.Topology
		tree *routing.Tree
	)
	cache := a.deployCache()
	if cache != nil && sc.ChannelCfg.Propagation != nil {
		cache = nil
	}
	var key string
	if cache != nil {
		key = deployKey(sc)
		if d, ok := cache.lookup(key); ok {
			if err := topology.Replay(eng.Rand(), sc.Topology); err != nil {
				return nil, err
			}
			topo, tree = d.topo, d.tree.Clone()
		}
	}
	if topo == nil {
		topo, err = topology.New(eng.Rand(), sc.Topology)
		if err != nil {
			return nil, err
		}
	}
	root := topo.CentralNode()

	chCfg := sc.ChannelCfg
	if chCfg.BitRate == 0 {
		chCfg = phy.DefaultConfig()
	}
	chCfg.LossRate = sc.LossRate
	chCfg.Propagation = prop

	if tree == nil {
		if sc.BFSTree {
			tree, err = routing.BuildBFS(topo, root, sc.TreeMaxDist)
		} else {
			fcfg := routing.DefaultFloodConfig()
			fcfg.MaxDist = sc.TreeMaxDist
			fcfg.ChannelCfg.Propagation = prop
			if !phy.IsDisc(prop) {
				// Probabilistic links can strand first-round stragglers;
				// extra flood rounds keep tree construction converging.
				fcfg.Rounds = 3
			}
			tree, err = routing.BuildFlood(sc.Seed+1, topo, root, fcfg)
		}
		if err != nil {
			return nil, err
		}
		if cache != nil {
			// Store a pristine template: the tree handed to this run is
			// about to be mutated by failures and re-parenting.
			cache.store(key, &deployment{topo: topo, tree: tree.Clone()})
		}
	}

	// Parallel mode: partition the plane and give every shard its own
	// channel lane over the shared topology. Sequentially there is one
	// lane and no partition.
	var part *topology.Partition
	if K > 1 {
		part, err = topology.PartitionGrid(topo, K)
		if err != nil {
			return nil, err
		}
	}
	chans := make([]*phy.Channel, K)
	for s := 0; s < K; s++ {
		chans[s], err = phy.NewChannel(engines[s], topo, chCfg)
		if err != nil {
			return nil, err
		}
	}
	ch := chans[0]

	macCfg := sc.MACCfg
	if macCfg.SlotTime == 0 {
		macCfg = mac.DefaultConfig()
	}
	// Validate the MAC and query configs here, after defaulting: the
	// constructors only panic on invalid configs (a backstop against
	// imperative misuse), and a malformed scenario must surface as a
	// returned build error, never a crashed worker.
	if err := macCfg.Validate(); err != nil {
		return nil, err
	}

	// Mesh the lanes: boundary transmissions cross with `lookahead` of
	// latency, deep-copied so pooled sender-side framing and payloads
	// are never aliased across goroutines.
	var mesh *phy.Mesh
	lookahead := sc.Lookahead
	if K > 1 {
		if lookahead <= 0 {
			lookahead = phy.CrossShardLookahead(topo, macCfg.DIFS)
		}
		mesh, err = phy.NewMesh(chans, part.Assign, lookahead, func(p any) any {
			return mac.TransitClone(p, cloneTransitPayload)
		})
		if err != nil {
			return nil, err
		}
	}
	engOf := func(id node.NodeID) *sim.Engine {
		if part == nil {
			return eng
		}
		return engines[part.Assign[id]]
	}
	chOf := func(id node.NodeID) *phy.Channel {
		if part == nil {
			return ch
		}
		return chans[part.Assign[id]]
	}
	qCfg := sc.QueryCfg
	if qCfg.ReportBytes == 0 {
		qCfg.ReportBytes = 52
		qCfg.PhaseBytes = 4
	}
	if err := qCfg.Validate(); err != nil {
		return nil, err
	}

	// The results pipeline: the root recorder comes off the sink
	// registry like any other sink (proving the port), extra sinks
	// follow in configuration order, and a fanout dispatches every hook
	// to all of them. Sinks are pure observers, so the run itself is
	// byte-identical with any selection.
	sinkCfg := stats.SinkConfig{
		Queries:     sc.Queries,
		Duration:    sc.Duration,
		MeasureFrom: sc.MeasureFrom,
	}
	rootObs, err := stats.NewSink(stats.SinkRoot, sinkCfg)
	if err != nil {
		return nil, err
	}
	sink := rootObs.(*stats.RootSink)
	observers := []stats.Sink{sink}
	for _, choice := range sc.Sinks {
		if choice.Name == stats.SinkRoot {
			continue // always attached first
		}
		cfg := sinkCfg
		cfg.Params = choice.Params
		extra, err := stats.NewSink(choice.Name, cfg)
		if err != nil {
			return nil, err
		}
		observers = append(observers, extra)
	}
	fan := stats.NewFanout(observers...)
	if K > 1 && fan.WantsRadio() {
		return nil, fmt.Errorf("experiment: radio-observing sinks are not supported with shards > 1")
	}

	var tracer *trace.Tracer
	if sc.TraceCapacity > 0 {
		tracer = trace.New(sc.TraceCapacity, eng.Now)
	}

	// The invariant auditor observes every layer but never acts: with it
	// enabled, the run stays byte-identical. All hooks installed here and
	// in the per-node loop below are nil (and free) when auditing is off.
	// Parallel runs get one auditor per shard, each observing its own
	// engine and lane; Collect folds the summaries (check.Combine).
	var auditors []*check.Auditor
	auditProfile := prof.Power
	if sc.Audit {
		auditors = make([]*check.Auditor, K)
		for s := range auditors {
			ad := check.New(engines[s].Now)
			engines[s].SetObserver(ad)
			chans[s].SetObserver(ad)
			for _, q := range sc.Queries {
				ad.RegisterQuery(q)
			}
			auditors[s] = ad
		}
	}
	auditorOf := func(id node.NodeID) *check.Auditor {
		if auditors == nil {
			return nil
		}
		if part == nil {
			return auditors[0]
		}
		return auditors[part.Assign[id]]
	}

	params := protocol.Params{
		SSBreakEven:      sc.SSBreakEven,
		DisableSafeSleep: sc.DisableSafeSleep,
		STSDeadline:      sc.STSDeadline,
		NoBuffering:      sc.NoBuffering,
		SyncCfg:          sc.SyncCfg,
		PsmCfg:           sc.PsmCfg,
		TmacCfg:          sc.TmacCfg,
	}
	// Safe Sleep's intrinsic tBE comes from the energy profile (the
	// paper's equal-power assumption makes it tON+tOFF; radios with
	// cheaper transitions break even sooner). An explicit RadioCfg keeps
	// the historical radio-intrinsic fallback.
	if params.SSBreakEven < 0 && sc.RadioCfg == (radio.Config{}) {
		params.SSBreakEven = prof.BreakEven()
	}
	nodes := make(map[node.NodeID]*node.Node, tree.Size())
	for _, id := range tree.Members() {
		ne := engOf(id)
		n := node.New(ne, id, tree, chOf(id), rcfg, macCfg)
		if sc.RecordSleepIntervals {
			n.Radio.RecordSleepIntervals()
		}
		if tracer != nil {
			n.SetTracer(tracer)
		}
		adt := auditorOf(id)
		var s query.Sink
		if id == root {
			s = fan
			if adt != nil {
				s = adt.WrapSink(s)
			}
		}
		if adt != nil {
			n.MAC.SetObserver(adt)
			adt.WatchRadio(id, n.Radio, auditProfile)
		}
		if mesh != nil {
			// A cross-shard unicast's ACK pays the mesh latency twice
			// (data out, ACK back); widen the sender's ACK timeout so
			// boundary links don't read as loss.
			my := part.Assign[id]
			slack := 2 * mesh.Latency()
			n.MAC.SetAckSlack(func(dst phy.NodeID) time.Duration {
				if dst >= 0 && part.Assign[dst] != my {
					return slack
				}
				return 0
			})
		}
		if fan.WantsRadio() {
			id := id
			n.Radio.Subscribe(func(old, new radio.State) {
				fan.RadioChanged(int(id), old, new, ne.Now())
			})
		}
		if err := builder.Build(&protocol.BuildContext{
			Eng:      ne,
			Node:     n,
			Tree:     tree,
			Sink:     s,
			QueryCfg: qCfg,
			Params:   params,
		}); err != nil {
			return nil, err
		}
		nodes[id] = n
	}
	// Nodes outside the tree exist physically but take no part: attach a
	// dark station so the channel's station table is complete.
	for i := 0; i < topo.NumNodes(); i++ {
		id := node.NodeID(i)
		if _, ok := nodes[id]; ok {
			continue
		}
		r := radio.New(engOf(id), rcfg)
		darkMAC := mac.New(engOf(id), chOf(id), id, r, macCfg, discard{})
		_ = darkMAC
		r.TurnOff()
	}

	// The build-time member list split by shard (one list, in tree-member
	// order, when sequential). Global workload events — setup slots,
	// stops, battery polls, the warm-up snapshot — schedule per shard
	// over these lists so every engine touches only its own nodes.
	shardMembers := make([][]node.NodeID, K)
	for _, id := range tree.Members() {
		s := 0
		if part != nil {
			s = int(part.Assign[id])
		}
		shardMembers[s] = append(shardMembers[s], id)
	}

	for _, spec := range sc.Queries {
		for _, id := range tree.Members() {
			if err := nodes[id].Agent.Register(spec); err != nil {
				return nil, err
			}
		}
		if sc.SetupSlot > 0 {
			for s, members := range shardMembers {
				if len(members) > 0 {
					scheduleSetupSlot(engines[s], members, nodes, spec, sc.SetupSlot)
				}
			}
		}
	}
	// Stops sweep the build-time member list, not tree.Members() at stop
	// time: a node the failure detector has (perhaps falsely) marked dead
	// — or one the dynamics layer crashed — must still forget the query,
	// or it resumes reporting it after recovery. Only permanently dead
	// nodes (channel-disabled) are skipped.
	for _, stop := range sc.QueryStops {
		stop := stop
		for s, members := range shardMembers {
			if len(members) == 0 {
				continue
			}
			members := members
			engines[s].Schedule(stop.At, func() {
				for _, id := range members {
					if !chOf(id).Disabled(id) {
						nodes[id].Agent.Deregister(stop.Query)
					}
				}
			})
		}
	}
	if len(sc.PeerFlows) > 0 {
		for _, id := range tree.Members() {
			nodes[id].InstallP2P(nil)
		}
		members := tree.Members()
		for i := range sc.PeerFlows {
			fl := sc.PeerFlows[i]
			if fl.Src < 0 || fl.Dst < 0 {
				fl.Src = members[eng.Rand().Intn(len(members))]
				for {
					fl.Dst = members[eng.Rand().Intn(len(members))]
					if fl.Dst != fl.Src {
						break
					}
				}
				sc.PeerFlows[i] = fl
			}
			path := tree.Path(fl.Src, fl.Dst)
			if path == nil {
				return nil, fmt.Errorf("experiment: no path for peer flow %d (%d→%d)", fl.ID, fl.Src, fl.Dst)
			}
			for _, id := range tree.Members() {
				if err := nodes[id].Peer.Register(fl, path); err != nil {
					return nil, err
				}
			}
		}
	}
	if len(sc.Dissemination) > 0 {
		for _, id := range tree.Members() {
			nodes[id].InstallDisseminator(nil)
		}
		for _, ds := range sc.Dissemination {
			for _, q := range sc.Queries {
				if q.ID == ds.ID {
					return nil, fmt.Errorf("experiment: dissemination flow %d collides with a query ID", ds.ID)
				}
			}
			for _, id := range tree.Members() {
				if err := nodes[id].Diss.Register(ds); err != nil {
					return nil, err
				}
			}
		}
	}
	if auditors != nil {
		// Safe Sleep schedulers exist only after the protocol builders ran.
		for _, id := range tree.Members() {
			if ss := nodes[id].SS; ss != nil {
				ss.SetObserver(id, auditorOf(id))
			}
		}
	}

	// Start in member (ID) order: map iteration order would vary the seq
	// tie-break of same-instant events and break run determinism.
	for _, id := range tree.Members() {
		nodes[id].Start()
	}

	// Failure injection.
	for _, f := range sc.Failures {
		victim := f.Node
		if victim < 0 {
			victim = pickVictim(eng.Rand(), tree)
		}
		if victim == routing.None || victim == root {
			continue
		}
		v := victim
		fch := chOf(v)
		engOf(v).Schedule(f.At, func() {
			// Guard on permanent disablement, not Killed(): a node the
			// dynamics layer has temporarily crashed still reads as killed,
			// but a configured failure must make its death permanent (the
			// channel refuses to Resume a Disabled station).
			if n, ok := nodes[v]; ok && !fch.Disabled(v) {
				n.Kill()
				fch.Disable(v)
			}
		})
	}

	// Dynamics layer: build every configured injector from the registry
	// and let it schedule its disturbances. Injector choices draw from
	// private seed-derived streams, so this neither consumes the engine's
	// rng nor perturbs anything before the first injected event fires.
	if len(sc.Dynamics) > 0 {
		h := &dynHost{
			eng:     eng,
			tree:    tree,
			ch:      ch,
			topo:    topo,
			nodes:   nodes,
			nodeIDs: append([]node.NodeID(nil), tree.Members()...),
			auditor: auditorOf(root),
			crashed: make(map[node.NodeID]bool),
		}
		for i, d := range sc.Dynamics {
			inj, err := dynamics.Build(d.Kind, d.Params, sc.Seed, i)
			if err != nil {
				return nil, err
			}
			if err := inj.Schedule(h); err != nil {
				return nil, err
			}
		}
	}

	sm := &Sim{
		Scenario:  sc,
		Eng:       eng,
		Topo:      topo,
		Tree:      tree,
		Channel:   ch,
		Nodes:     nodes,
		engines:   engines,
		chans:     chans,
		mesh:      mesh,
		part:      part,
		lookahead: lookahead,
		sink:      sink,
		fan:       fan,
		tracer:    tracer,
		auditors:  auditors,
		profile:   prof.Power,
	}

	// Battery exhaustion: poll each node's consumption once per simulated
	// second and kill nodes that drained their budget. One poll loop per
	// shard, each writing its own accounting slot; Collect merges.
	if sc.BatteryJ > 0 {
		prof := sm.profile
		sm.battery = make([]shardBattery, K)
		for s := range engines {
			members := shardMembers[s]
			if len(members) == 0 {
				continue
			}
			b := &sm.battery[s]
			e := engines[s]
			var check func()
			check = func() {
				for _, id := range members {
					n := nodes[id]
					if id == root || n.Killed() {
						continue
					}
					if n.Radio.Energy(prof) >= sc.BatteryJ {
						if b.firstDeath == 0 {
							b.firstDeath = e.Now()
						}
						b.deaths++
						n.Kill()
						chOf(id).Disable(id)
					}
				}
				e.After(time.Second, check)
			}
			e.After(time.Second, check)
		}
	}

	// Snapshot radio accounting at MeasureFrom for warm-up exclusion.
	// NodeID-indexed slices: shards write disjoint entries concurrently.
	sm.activeAt0 = make([]time.Duration, topo.NumNodes())
	sm.energyAt0 = make([]float64, topo.NumNodes())
	profile := sm.profile
	for s := range engines {
		members := shardMembers[s]
		if len(members) == 0 {
			continue
		}
		engines[s].Schedule(sc.MeasureFrom, func() {
			for _, id := range members {
				n := nodes[id]
				sm.activeAt0[id] = n.Radio.ActiveTime()
				sm.energyAt0[id] = n.Radio.Energy(profile)
			}
		})
	}

	return sm, nil
}

// Simulate drains the event queue up to the scenario's duration. It
// must run exactly once, between Build and Collect. Parallel builds run
// every shard's engine on its own goroutine inside conservative windows
// of the cross-shard lookahead (sim.ShardRunner).
func (s *Sim) Simulate() {
	if len(s.engines) > 1 {
		s.runner().Run(s.Scenario.Duration)
		return
	}
	s.Eng.Run(s.Scenario.Duration)
}

// Shards reports how many engine shards this build executes on
// (1 = the sequential path).
func (s *Sim) Shards() int {
	if len(s.engines) > 1 {
		return len(s.engines)
	}
	return 1
}

// ShardLookahead reports the cross-shard lookahead of a parallel
// build, zero for sequential ones.
func (s *Sim) ShardLookahead() time.Duration {
	if len(s.engines) > 1 {
		return s.lookahead
	}
	return 0
}

// runner builds the conservative window runner for a parallel Sim.
func (s *Sim) runner() *sim.ShardRunner {
	return sim.NewShardRunner(s.engines, s.lookahead, s.mesh.Exchange)
}

// processed sums the executed-event counts over all shard engines.
func (s *Sim) processed() uint64 {
	var events uint64
	for _, e := range s.engines {
		events += e.Processed()
	}
	return events
}

// Collect aggregates the run's metrics into a Result. Call it after
// Simulate.
func (s *Sim) Collect() *Result {
	var chStats phy.Stats
	for _, c := range s.chans {
		chStats.Add(c.Stats())
	}
	res := collect(s.Scenario, s.processed(), chStats, s.Tree, s.Nodes, s.sink, s.fan, s.profile, s.activeAt0, s.energyAt0)
	countRun(s.Scenario, res.Events)
	for _, b := range s.battery {
		if b.firstDeath > 0 && (res.FirstDeath == 0 || b.firstDeath < res.FirstDeath) {
			res.FirstDeath = b.firstDeath
		}
		res.BatteryDeaths += b.deaths
	}
	if s.tracer != nil {
		res.Trace = s.tracer.Events()
	}
	if s.auditors != nil {
		parts := make([]*check.Summary, len(s.auditors))
		for i, ad := range s.auditors {
			parts[i] = ad.Summary()
		}
		res.Audit = check.Combine(parts)
	}
	return res
}

// dynHost adapts the built simulation to the dynamics.Host surface.
type dynHost struct {
	eng   *sim.Engine
	tree  *routing.Tree
	ch    *phy.Channel
	topo  *topology.Topology
	nodes map[node.NodeID]*node.Node
	// nodeIDs is the build-time member list in ID order — unlike
	// tree.Members(), it keeps nodes the failure detector later marks
	// dead, which RemoveQuery must still reach.
	nodeIDs []node.NodeID
	auditor *check.Auditor
	// crashed tracks nodes this layer took down, so Recover never
	// resurrects a node killed by other means (failure injection,
	// battery exhaustion).
	crashed map[node.NodeID]bool
}

var _ dynamics.Host = (*dynHost)(nil)

func (h *dynHost) Eng() *sim.Engine                               { return h.eng }
func (h *dynHost) Members() []topology.NodeID                     { return h.tree.Members() }
func (h *dynHost) Root() topology.NodeID                          { return h.tree.Root() }
func (h *dynHost) Neighbors(id topology.NodeID) []topology.NodeID { return h.topo.Neighbors(id) }

func (h *dynHost) Crash(id topology.NodeID) {
	n := h.nodes[id]
	if n == nil || n.Killed() || id == h.tree.Root() {
		return
	}
	n.Crash()
	h.ch.Suspend(id)
	h.crashed[id] = true
}

func (h *dynHost) Recover(id topology.NodeID) {
	n := h.nodes[id]
	if n == nil || !h.crashed[id] {
		return
	}
	delete(h.crashed, id)
	if h.ch.Disabled(id) {
		// Permanently failed (failure injection, battery exhaustion)
		// while it was down: the crash outage does not end in recovery.
		return
	}
	h.ch.Resume(id)
	n.Recover()
}

func (h *dynHost) SetLinkLoss(a, b topology.NodeID, p float64) {
	// The injector validated its peak < 1 at build time, so the only
	// error SetLinkLoss can return is unreachable from here.
	_ = h.ch.SetLinkLoss(a, b, p)
}

func (h *dynHost) AddQuery(spec query.Spec) error {
	if h.auditor != nil {
		h.auditor.RegisterQuery(spec)
	}
	for _, id := range h.nodeIDs {
		n := h.nodes[id]
		if n.Killed() {
			continue // offline during setup: it misses the query
		}
		if err := n.Agent.Register(spec); err != nil {
			return err
		}
	}
	return nil
}

func (h *dynHost) RemoveQuery(id query.ID) {
	// Deregister everywhere, crashed nodes included: a node recovering
	// after the burst ended must not keep producing burst reports.
	for _, nid := range h.nodeIDs {
		h.nodes[nid].Agent.Deregister(id)
	}
}

// scheduleSetupSlot arranges the paper's setup-slot behavior for one
// query: all ESSAT nodes hold their radios on during
// [phase−slot, phase], and the setup request floods down the tree on the
// air (each member rebroadcasts once, jittered inside the slot).
func scheduleSetupSlot(eng *sim.Engine, members []node.NodeID, nodes map[node.NodeID]*node.Node, spec query.Spec, slot time.Duration) {
	start := spec.Phase - slot
	if start < 0 {
		start = 0
	}
	eng.Schedule(start, func() {
		for _, id := range members {
			n := nodes[id]
			if n.Killed() || n.SS == nil {
				continue
			}
			n.SS.HoldAwake(spec.Phase)
		}
		// In-band flood: every member rebroadcasts the request once at a
		// random offset inside the first half of the slot.
		for _, id := range members {
			n := nodes[id]
			if n.Killed() {
				continue
			}
			jitter := time.Duration(eng.Rand().Int63n(int64(slot/2) + 1))
			eng.Schedule(eng.Now()+jitter, func() {
				if !n.Killed() && n.Radio.IsOn() {
					n.MAC.Send(phy.Broadcast, setupAnnounce{Query: spec.ID}, 14, nil)
				}
			})
		}
	})
}

// cloneTransitPayload deep-copies the inner (above-MAC) payload of a
// frame crossing shards. Reports are pooled (the sender recycles them
// as soon as its own completion fires) and must be copied; commands and
// peer messages are heap-shared across the sender's forwarding chain,
// and copying them too keeps the no-cross-goroutine-aliasing rule
// simple. All three are flat scalar structs, so a shallow copy is deep.
// Everything else (JoinMsg, PhaseRequest, setupAnnounce, baseline
// control markers) already travels by value.
func cloneTransitPayload(p any) any {
	switch v := p.(type) {
	case *query.Report:
		c := *v
		return &c
	case *core.Command:
		c := *v
		return &c
	case *core.P2PMessage:
		c := *v
		return &c
	}
	return p
}

// discard is the upper layer for dark (non-member) nodes.
type discard struct{}

func (discard) Deliver(phy.NodeID, any, int) {}

// pickVictim chooses a random live non-root node, preferring non-leaves
// (whose failure exercises both recovery paths).
func pickVictim(rng *rand.Rand, tree *routing.Tree) node.NodeID {
	var inner, leaves []node.NodeID
	for _, id := range tree.Members() {
		if id == tree.Root() {
			continue
		}
		if tree.IsLeaf(id) {
			leaves = append(leaves, id)
		} else {
			inner = append(inner, id)
		}
	}
	if len(inner) > 0 {
		return inner[rng.Intn(len(inner))]
	}
	if len(leaves) > 0 {
		return leaves[rng.Intn(len(leaves))]
	}
	return routing.None
}

func collect(sc Scenario, events uint64, chStats phy.Stats, tree *routing.Tree,
	nodes map[node.NodeID]*node.Node, sink *stats.RootSink, fan *stats.Fanout, profile radio.PowerProfile,
	activeAt0 []time.Duration, energyAt0 []float64) *Result {

	res := &Result{
		Protocol:       sc.Protocol,
		Seed:           sc.Seed,
		DutyByRank:     make(map[int]float64),
		LatencyByClass: make(map[int]stats.DurationStats),
		TreeSize:       tree.Size(),
		MaxRank:        tree.MaxRank(),
		Channel:        chStats,
		Events:         events,
	}

	window := float64(sc.Duration - sc.MeasureFrom)
	var duty, energy stats.Welford
	dutyRank := make(map[int]*stats.Welford)
	var reports, phaseUpdates uint64
	// Iterate in ID order so float accumulation is deterministic.
	for _, id := range tree.Members() {
		n, ok := nodes[id]
		if !ok || n.Killed() {
			continue
		}
		active := float64(n.Radio.ActiveTime() - activeAt0[id])
		dc := active / window
		duty.Add(dc)
		e := n.Radio.Energy(profile) - energyAt0[id]
		energy.Add(e)
		if e > res.EnergyMax {
			res.EnergyMax = e
		}
		r := tree.Rank(id)
		if dutyRank[r] == nil {
			dutyRank[r] = &stats.Welford{}
		}
		dutyRank[r].Add(dc)

		ast := n.Agent.Stats()
		reports += ast.ReportsSent
		phaseUpdates += ast.PhaseUpdatesSent
		res.Timeouts += ast.Timeouts
		res.PassThroughs += ast.PassThroughsSent

		mst := n.MAC.Stats()
		res.MACSent += mst.Sent
		res.MACFailed += mst.Failed
		res.MACRetries += mst.Retries

		if sc.RecordSleepIntervals {
			res.SleepIntervals = append(res.SleepIntervals, n.Radio.SleepIntervals()...)
		}
		if dts, ok := n.Agent.Shaper().(*core.DTS); ok {
			res.PhaseShifts += dts.Stats().PhaseShifts
		}

		fan.NodeDone(stats.NodeSummary{Node: int(id), Rank: r, Duty: dc, EnergyJ: e})
	}
	res.DutyCycle = duty.Mean()
	for r, w := range dutyRank {
		res.DutyByRank[r] = w.Mean()
	}
	if reports > 0 {
		bits := float64(phaseUpdates) * float64(qPhaseBytes(sc)) * 8
		res.PhaseUpdateBitsPerReport = bits / float64(reports)
	}

	res.Latency = stats.SummarizeDurations(sink.Latencies())
	for class, ls := range sink.LatencyByClass() {
		res.LatencyByClass[class] = stats.SummarizeDurations(ls)
	}
	res.Coverage = sink.MeanCoverage()
	res.Records = fan.Records(stats.RunMeta{
		Protocol:    string(sc.Protocol),
		Seed:        sc.Seed,
		Duration:    sc.Duration,
		MeasureFrom: sc.MeasureFrom,
		TreeSize:    tree.Size(),
	})
	res.EnergyMean = energy.Mean()
	if res.EnergyMax > 0 {
		// 20 kJ ≈ a pair of AA cells' usable energy at sensor loads. The
		// network lives until its hungriest node (typically near the root)
		// drains, at the draw observed in the measurement window.
		const batteryJ = 20_000.0
		drawWatts := res.EnergyMax / time.Duration(window).Seconds()
		res.NetworkLifetime = time.Duration(batteryJ / drawWatts * float64(time.Second))
	}

	if len(sc.PeerFlows) > 0 {
		var consumed, originated uint64
		var latSum time.Duration
		for _, id := range tree.Members() {
			n, ok := nodes[id]
			if !ok || n.Peer == nil {
				continue
			}
			st := n.Peer.Stats()
			consumed += st.Consumed
			originated += st.Originated
			latSum += st.LatencySum
		}
		if originated > 0 {
			res.P2PDelivery = float64(consumed) / float64(originated)
		}
		if consumed > 0 {
			res.P2PLatency = latSum / time.Duration(consumed)
		}
	}
	if len(sc.Dissemination) > 0 {
		var received uint64
		var latSum time.Duration
		var expected uint64
		for _, id := range tree.Members() {
			n, ok := nodes[id]
			if !ok || n.Killed() || n.Diss == nil {
				continue
			}
			ds := n.Diss.Stats()
			received += ds.Received
			latSum += ds.LatencySum
			if id != tree.Root() {
				for _, fl := range sc.Dissemination {
					if fl.Phase >= sc.Duration {
						continue
					}
					// Commands are released at Phase + k·Period < Duration.
					intervals := int64((sc.Duration-fl.Phase-1)/fl.Period) + 1
					expected += uint64(intervals)
				}
			}
		}
		if expected > 0 {
			res.DisseminationDelivery = float64(received) / float64(expected)
		}
		if received > 0 {
			res.DisseminationLatency = latSum / time.Duration(received)
		}
	}
	return res
}

func qPhaseBytes(sc Scenario) int {
	if sc.QueryCfg.PhaseBytes > 0 {
		return sc.QueryCfg.PhaseBytes
	}
	return 4
}
