package experiment

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/essat/essat/internal/radio"
)

// modelScenario is a small audited scenario under the given propagation
// model and energy profile.
func modelScenario(p Protocol, channel string, chParams map[string]float64, profile string) Scenario {
	sc := DefaultScenario(p, 11)
	sc.Duration = 12 * time.Second
	sc.MeasureFrom = 2 * time.Second
	sc.Topology.NumNodes = 40
	sc.Topology.AreaSide = 400
	sc.Propagation = channel
	sc.PropagationParams = chParams
	sc.RadioProfile = profile
	sc.Audit = true
	rng := rand.New(rand.NewSource(99))
	sc.Queries = QueryClasses(rng, 1.0, 1, 3*time.Second)
	return sc
}

// TestChannelRadioMatrix runs every protocol under both gray-zone
// propagation models on a non-default energy profile, twice each, and
// checks same-seed determinism plus a clean invariant audit: lossy
// links and different hardware must break neither physics nor protocol
// rules anywhere in the stack.
func TestChannelRadioMatrix(t *testing.T) {
	models := []struct {
		channel string
		params  map[string]float64
		profile string
	}{
		{"shadowing", map[string]float64{"sigma": 6}, "cc2420"},
		{"dual-disc", map[string]float64{"inner": 0.6, "outer": 1.3}, "cc1000"},
	}
	for _, p := range AllProtocols {
		p := p
		for _, m := range models {
			m := m
			t.Run(string(p)+"/"+m.channel, func(t *testing.T) {
				t.Parallel()
				r1, err := Run(modelScenario(p, m.channel, m.params, m.profile))
				if err != nil {
					t.Fatal(err)
				}
				r2, err := Run(modelScenario(p, m.channel, m.params, m.profile))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(r1, r2) {
					t.Fatalf("same seed produced different results:\n%+v\nvs\n%+v", r1, r2)
				}
				if r1.Audit == nil || r1.Audit.Total != 0 {
					t.Fatalf("invariant violations under %s/%s: %+v", m.channel, m.profile, r1.Audit)
				}
				if r1.Channel.FadeDrops == 0 {
					t.Errorf("gray-zone model %s never dropped a delivery", m.channel)
				}
				if r1.DutyCycle <= 0 || r1.DutyCycle > 1 {
					t.Errorf("duty cycle %v out of (0,1]", r1.DutyCycle)
				}
			})
		}
	}
}

// TestDiscModelNeverFades pins the fast path: under the default model
// the propagation verdict must not run at all, so FadeDrops stays zero
// and no extra rng draws can perturb the trace.
func TestDiscModelNeverFades(t *testing.T) {
	res, err := Run(modelScenario(DTSSS, "", nil, ""))
	if err != nil {
		t.Fatal(err)
	}
	if res.Channel.FadeDrops != 0 {
		t.Errorf("disc model recorded %d fade drops", res.Channel.FadeDrops)
	}
}

// TestBFSTreeAvoidsGrayZoneLinks pins the idealized tree builder's
// gray-zone behavior: even though the candidate graph reaches out to
// the model's MaxRange, a min-hop tree must not ride the longest,
// weakest links — every parent edge stays within the nominal range.
func TestBFSTreeAvoidsGrayZoneLinks(t *testing.T) {
	sc := modelScenario(DTSSS, "shadowing", map[string]float64{"sigma": 6}, "")
	sc.BFSTree = true
	s, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Topo.NeighborRange() <= s.Topo.Range() {
		t.Fatalf("candidate radius %g not widened beyond nominal %g", s.Topo.NeighborRange(), s.Topo.Range())
	}
	for _, id := range s.Tree.Members() {
		if id == s.Tree.Root() {
			continue
		}
		p := s.Tree.Parent(id)
		if !s.Topo.Position(id).InRange(s.Topo.Position(p), s.Topo.Range()) {
			t.Errorf("tree edge %d→%d longer than the nominal range", id, p)
		}
	}
}

// TestBuildRejectsBadModels surfaces registry and parameter errors as
// Build failures rather than panics.
func TestBuildRejectsBadModels(t *testing.T) {
	sc := modelScenario(DTSSS, "warp-drive", nil, "")
	if _, err := Run(sc); err == nil {
		t.Error("unknown propagation model did not fail Build")
	}
	sc = modelScenario(DTSSS, "shadowing", map[string]float64{"sigma": -2}, "")
	if _, err := Run(sc); err == nil {
		t.Error("bad shadowing sigma did not fail Build")
	}
	sc = modelScenario(DTSSS, "", nil, "tr1001")
	if _, err := Run(sc); err == nil {
		t.Error("unknown radio profile did not fail Build")
	}
	sc = modelScenario(DTSSS, "", nil, "")
	sc.LossRate = 1.5
	if _, err := Run(sc); err == nil {
		t.Error("out-of-range loss rate did not fail Build")
	}
}

// TestProfileDrivesBreakEven checks that the resolved energy profile
// reaches Safe Sleep: with the radio-intrinsic setting (SSBreakEven<0)
// the cc2420's much shorter derived tBE must let nodes sleep through
// gaps the paper radio would idle through, cutting duty cycle.
func TestProfileDrivesBreakEven(t *testing.T) {
	base := func(profile string) Scenario {
		sc := modelScenario(DTSSS, "", nil, profile)
		sc.Audit = false
		return sc
	}
	paper, err := Run(base(""))
	if err != nil {
		t.Fatal(err)
	}
	cc2420, err := Run(base("cc2420"))
	if err != nil {
		t.Fatal(err)
	}
	if cc2420.DutyCycle >= paper.DutyCycle {
		t.Errorf("cc2420 duty %v not below paper duty %v despite tBE %v vs %v",
			cc2420.DutyCycle, paper.DutyCycle,
			mustProfile(t, radio.CC2420).BreakEven(), mustProfile(t, radio.Paper).BreakEven())
	}
}

func mustProfile(t *testing.T, name string) radio.EnergyProfile {
	t.Helper()
	p, ok := radio.LookupProfile(name)
	if !ok {
		t.Fatalf("profile %q not registered", name)
	}
	return p
}

// TestSpecChannelRadioBlocks exercises the declarative path: the JSON
// blocks compile onto the scenario, and bad names or knobs fail the
// compile with an error instead of crashing the run.
func TestSpecChannelRadioBlocks(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"protocol": "DTS-SS",
		"duration": "10s",
		"workload": {"base_rate": 1, "per_class": 1},
		"channel": {"model": "shadowing", "params": {"sigma": 5}},
		"radio": {"profile": "cc2420"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Propagation != "shadowing" || sc.PropagationParams["sigma"] != 5 {
		t.Errorf("channel block not compiled: %q %v", sc.Propagation, sc.PropagationParams)
	}
	if sc.RadioProfile != "cc2420" {
		t.Errorf("radio block not compiled: %q", sc.RadioProfile)
	}

	bad := []string{
		`{"protocol": "DTS-SS", "workload": {"base_rate": 1, "per_class": 1}, "channel": {"model": "nope"}}`,
		`{"protocol": "DTS-SS", "workload": {"base_rate": 1, "per_class": 1}, "channel": {"model": "shadowing", "params": {"sigma": -1}}}`,
		`{"protocol": "DTS-SS", "workload": {"base_rate": 1, "per_class": 1}, "channel": {"model": "disc", "params": {"huh": 1}}}`,
		`{"protocol": "DTS-SS", "workload": {"base_rate": 1, "per_class": 1}, "radio": {"profile": "nope"}}`,
	}
	for _, b := range bad {
		spec, err := ParseSpec([]byte(b))
		if err != nil {
			t.Fatalf("parse %s: %v", b, err)
		}
		if _, err := spec.Scenario(); err == nil {
			t.Errorf("spec compiled despite bad model/profile: %s", b)
		}
	}
}
