package experiment

import (
	"math/rand"
	"testing"
	"time"

	"github.com/essat/essat/internal/protocol"
)

func arenaScenario(p Protocol, seed int64) Scenario {
	sc := DefaultScenario(p, seed)
	sc.Topology.NumNodes = 40
	sc.Topology.AreaSide = 350
	sc.Duration = 10 * time.Second
	sc.MeasureFrom = 2 * time.Second
	sc.Queries = QueryClasses(rand.New(rand.NewSource(seed*7919)), 1.0, 1, 3*time.Second)
	sc.Audit = true
	return sc
}

// TestArenaResetDigestMatch is the arena's core correctness contract:
// N back-to-back runs on one reused arena — engine reset, memory pools
// rewound, deployments served from cache — produce exactly the audit
// digests of N fresh runs, for every registered protocol. The arena
// changes where memory comes from, never what a run computes.
func TestArenaResetDigestMatch(t *testing.T) {
	const repeats = 3
	a := NewArenaWithCache(NewDeployCache(0))
	for _, p := range protocol.All() {
		sc := arenaScenario(p, 7)
		fresh, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: fresh run: %v", p, err)
		}
		if fresh.Audit == nil || fresh.Audit.Digest == "" {
			t.Fatalf("%s: fresh run has no audit digest", p)
		}
		for i := 0; i < repeats; i++ {
			got, err := RunWith(a, sc)
			if err != nil {
				t.Fatalf("%s: arena run %d: %v", p, i, err)
			}
			if got.Audit.Digest != fresh.Audit.Digest {
				t.Fatalf("%s: arena run %d digest %s, want %s",
					p, i, got.Audit.Digest, fresh.Audit.Digest)
			}
			if got.Audit.Total != 0 {
				t.Fatalf("%s: arena run %d: %d invariant violations", p, i, got.Audit.Total)
			}
		}
	}
	// All protocols share one seed, hence one deployment: everything
	// after the first build must come from the cache.
	hits, misses := a.cache.Stats()
	if misses != 1 {
		t.Errorf("deploy cache misses = %d, want 1 (one deployment shape)", misses)
	}
	if want := uint64(len(protocol.All())*repeats - 1); hits != want {
		t.Errorf("deploy cache hits = %d, want %d", hits, want)
	}
}

// TestArenaCacheKeyedBySeed checks distinct deployments don't collide:
// two seeds through one arena still match their fresh-run digests and
// occupy separate cache entries.
func TestArenaCacheKeyedBySeed(t *testing.T) {
	a := NewArenaWithCache(NewDeployCache(0))
	for _, seed := range []int64{3, 4, 3} {
		sc := arenaScenario(DTSSS, seed)
		fresh, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d: fresh run: %v", seed, err)
		}
		got, err := RunWith(a, sc)
		if err != nil {
			t.Fatalf("seed %d: arena run: %v", seed, err)
		}
		if got.Audit.Digest != fresh.Audit.Digest {
			t.Fatalf("seed %d: arena digest %s, want %s", seed, got.Audit.Digest, fresh.Audit.Digest)
		}
	}
	if n := a.cache.Len(); n != 2 {
		t.Errorf("cache holds %d deployments, want 2", n)
	}
	hits, misses := a.cache.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 1/2", hits, misses)
	}
}

// TestDisableArenaOptionMatches pins the benchmark baseline path:
// running a figure grid with DisableArena set produces the same results
// as the default arena-pooled grid.
func TestDisableArenaOptionMatches(t *testing.T) {
	sc := arenaScenario(NTSSS, 5)
	jobsFor := func(disable bool) []*runJob {
		jobs := []*runJob{
			{build: func() Scenario { return sc }},
			{build: func() Scenario { return arenaScenario(NTSSS, 6) }},
		}
		o := Options{Parallelism: 2, DisableArena: disable}
		if err := runGrid(o, jobs); err != nil {
			t.Fatalf("runGrid(disable=%t): %v", disable, err)
		}
		return jobs
	}
	pooled, classic := jobsFor(false), jobsFor(true)
	for i := range pooled {
		if pooled[i].res.Audit.Digest != classic[i].res.Audit.Digest {
			t.Fatalf("job %d: pooled digest %s != classic %s",
				i, pooled[i].res.Audit.Digest, classic[i].res.Audit.Digest)
		}
	}
}
