package experiment

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/essat/essat/internal/routing"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

// Arena is reusable per-run state for repeated scenario execution: one
// simulation engine whose event freelist and typed memory pools survive
// across runs (reset, not freed), plus an optional shared deployment
// cache. A sweep that replays the same scenario shape through one arena
// reaches steady-state zero heap growth across sweep points.
//
// An Arena is single-threaded: one run at a time. Concurrent sweeps use
// one Arena per worker, optionally sharing a DeployCache (which is
// safe for concurrent use).
//
// Results are byte-identical with or without an arena; it changes where
// memory comes from, never what a run computes.
type Arena struct {
	eng   *sim.Engine
	cache *DeployCache
}

// NewArena returns an arena with no deployment cache: the engine and
// its memory pools are reused across runs, but every run still builds
// its own topology and tree.
func NewArena() *Arena { return &Arena{} }

// NewArenaWithCache returns an arena that additionally serves
// deployments (topology + tree template) from cache. Several arenas may
// share one cache.
func NewArenaWithCache(cache *DeployCache) *Arena { return &Arena{cache: cache} }

// Discard drops the arena's engine (keeping the deployment cache), so
// the next run builds a fresh one. Hosts call it after a contained
// panic: a stack that panicked mid-event may have left engine state
// inconsistent in ways Reset cannot see.
func (a *Arena) Discard() {
	if a != nil {
		a.eng = nil
	}
}

// engine returns the arena's reusable engine reset to seed, creating it
// (with an attached sim.Arena) on first use. A nil *Arena returns a
// fresh classic engine, preserving Build's historical behavior exactly.
func (a *Arena) engine(seed int64) *sim.Engine {
	if a == nil {
		return sim.New(seed)
	}
	if a.eng == nil {
		a.eng = sim.New(seed)
		a.eng.SetArena(sim.NewArena())
		return a.eng
	}
	a.eng.Reset(seed)
	return a.eng
}

// deployCache returns the arena's cache, nil-safe.
func (a *Arena) deployCache() *DeployCache {
	if a == nil {
		return nil
	}
	return a.cache
}

// deployment is one cached placement: the immutable topology (shared by
// reference — runs never mutate it) and a pristine routing-tree
// template (cloned per run — runs mutate their tree).
type deployment struct {
	topo *topology.Topology
	tree *routing.Tree
}

// DefaultDeployCacheSize bounds NewDeployCache(0). A sweep varies seeds
// and scales far more often than it varies placements per seed, so a
// few dozen entries cover the working set of every figure driver.
const DefaultDeployCacheSize = 64

// DeployCache is a bounded LRU cache of built deployments keyed by the
// canonical deployment key (seed, topology config, tree policy,
// propagation model). It is safe for concurrent use; hit and miss
// counts are exposed for observability.
type DeployCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheEntry struct {
	key string
	dep *deployment
}

// NewDeployCache returns a cache bounded to max deployments; max <= 0
// selects DefaultDeployCacheSize.
func NewDeployCache(max int) *DeployCache {
	if max <= 0 {
		max = DefaultDeployCacheSize
	}
	return &DeployCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Stats returns the lifetime hit and miss counts.
func (c *DeployCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached deployments.
func (c *DeployCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *DeployCache) lookup(key string) (*deployment, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).dep, true
}

func (c *DeployCache) store(key string, dep *deployment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Two workers raced on the same miss; either build is correct
		// (deployments are deterministic in the key), keep the newer.
		el.Value.(*cacheEntry).dep = dep
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, dep: dep})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// deployKey canonicalizes exactly the scenario fields that determine
// placement and tree construction: the seed (placement draws and the
// flood's derived seed), the topology config, the tree policy, and the
// propagation model name + params (candidate radius, flood channel
// model, flood round count). Everything else — duration, queries, MAC
// and channel tuning, loss rate, radio profile, failures — shapes the
// run, not the deployment. Callers must set Topology.NeighborRange
// before keying (build does, from the resolved model's MaxRange).
func deployKey(sc Scenario) string {
	var b strings.Builder
	fmt.Fprintf(&b, "s=%d n=%d a=%g r=%g nr=%g g=%s d=%g bfs=%t p=%s",
		sc.Seed, sc.Topology.NumNodes, sc.Topology.AreaSide,
		sc.Topology.Range, sc.Topology.NeighborRange,
		sc.Topology.Generator, sc.TreeMaxDist, sc.BFSTree, sc.Propagation)
	writeSortedParams(&b, "tp", sc.Topology.Params)
	writeSortedParams(&b, "pp", sc.PropagationParams)
	return b.String()
}

func writeSortedParams(b *strings.Builder, label string, params map[string]float64) {
	if len(params) == 0 {
		return
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, " %s.%s=%g", label, k, params[k])
	}
}

// RunWith is Run executing on a reusable arena; see BuildWith. A nil
// arena is plain Run.
func RunWith(a *Arena, sc Scenario) (*Result, error) {
	return RunContextWith(context.Background(), a, sc, Budget{})
}

// RunContextWith is RunContext executing on a reusable arena. The
// panic-containment boundary is identical; after a contained panic the
// caller should Discard the arena before reusing it.
func RunContextWith(ctx context.Context, a *Arena, sc Scenario, b Budget) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &PanicError{Protocol: sc.Protocol, Seed: sc.Seed, Value: r, Stack: debug.Stack()}
		}
	}()
	s, err := build(sc, a)
	if err != nil {
		return nil, err
	}
	if err := s.SimulateContext(ctx, b); err != nil {
		return nil, err
	}
	return s.Collect(), nil
}

// RunSpecWith compiles and runs a declarative spec on a reusable arena.
func RunSpecWith(a *Arena, s *Spec) (*Result, error) {
	return RunSpecContextWith(context.Background(), a, s, Budget{})
}

// RunSpecContextWith is RunSpecContext executing on a reusable arena.
func RunSpecContextWith(ctx context.Context, a *Arena, s *Spec, b Budget) (*Result, error) {
	sc, err := s.Scenario()
	if err != nil {
		return nil, err
	}
	res, err := RunContextWith(ctx, a, sc, b)
	var pe *PanicError
	if errors.As(err, &pe) && pe.SpecJSON == nil {
		if data, jerr := json.Marshal(s); jerr == nil {
			pe.SpecJSON = data
		}
	}
	return res, err
}
