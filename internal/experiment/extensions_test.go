package experiment

import (
	"math/rand"
	"testing"
	"time"

	"github.com/essat/essat/internal/core"
	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/topology"
)

func extScenario(seed int64) Scenario {
	sc := DefaultScenario(DTSSS, seed)
	sc.Topology = topology.Config{NumNodes: 40, AreaSide: 400, Range: 125}
	sc.Duration = 30 * time.Second
	sc.MeasureFrom = 5 * time.Second
	rng := rand.New(rand.NewSource(seed * 31))
	sc.Queries = QueryClasses(rng, 1.0, 1, 5*time.Second)
	return sc
}

func TestDisseminationThroughScenario(t *testing.T) {
	sc := extScenario(1)
	sc.Dissemination = []core.DisseminationSpec{{
		ID:     -1,
		Period: 2 * time.Second,
		Phase:  6 * time.Second,
	}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DisseminationDelivery < 0.95 {
		t.Fatalf("dissemination delivery = %.3f, want ≥ 0.95", res.DisseminationDelivery)
	}
	if res.DisseminationLatency <= 0 || res.DisseminationLatency > time.Second {
		t.Fatalf("dissemination latency = %v, implausible", res.DisseminationLatency)
	}
}

func TestDisseminationIDCollisionRejected(t *testing.T) {
	sc := extScenario(2)
	sc.Dissemination = []core.DisseminationSpec{{
		ID:     sc.Queries[0].ID, // collides
		Period: time.Second,
	}}
	if _, err := Run(sc); err == nil {
		t.Fatal("ID collision between query and dissemination accepted")
	}
}

func TestPeerFlowsThroughScenario(t *testing.T) {
	sc := extScenario(3)
	for i := 0; i < 3; i++ {
		sc.PeerFlows = append(sc.PeerFlows, core.P2PSpec{
			ID:     query.ID(-(i + 1)),
			Src:    -1,
			Dst:    -1,
			Period: time.Second,
			Phase:  6 * time.Second,
		})
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.P2PDelivery < 0.85 {
		t.Fatalf("p2p delivery = %.3f, want ≥ 0.85", res.P2PDelivery)
	}
	if res.P2PLatency <= 0 || res.P2PLatency > time.Second {
		t.Fatalf("p2p latency = %v, implausible", res.P2PLatency)
	}
}

func TestPeerFlowRandomEndpointsAreDistinctMembers(t *testing.T) {
	sc := extScenario(4)
	sc.PeerFlows = []core.P2PSpec{{ID: -1, Src: -1, Dst: -1, Period: time.Second, Phase: 6 * time.Second}}
	if _, err := Run(sc); err != nil {
		t.Fatal(err)
	}
	fl := sc.PeerFlows[0]
	if fl.Src < 0 || fl.Dst < 0 || fl.Src == fl.Dst {
		t.Fatalf("random endpoints not resolved: %d→%d", fl.Src, fl.Dst)
	}
}

func TestExtensionsCoexistWithFailures(t *testing.T) {
	sc := extScenario(5)
	sc.QueryCfg.FailureThreshold = 3
	sc.Failures = []Failure{{At: 12 * time.Second, Node: -1}}
	sc.Dissemination = []core.DisseminationSpec{{ID: -1, Period: 2 * time.Second, Phase: 6 * time.Second}}
	sc.PeerFlows = []core.P2PSpec{{ID: -2, Src: -1, Dst: -1, Period: time.Second, Phase: 6 * time.Second}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// The run completes and queries still flow; extension flows may lose
	// messages if the victim was on their path, which is fine.
	if res.Latency.N == 0 {
		t.Fatal("no query results with extensions + failure")
	}
}
