package experiment

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestSpecScenarioMatchesImperativeBuild(t *testing.T) {
	spec := &Spec{
		Protocol: "DTS-SS",
		Seed:     5,
		Duration: Dur(25 * time.Second),
		Workload: &WorkloadSpec{BaseRate: 1.0, PerClass: 1, PhaseMax: Dur(5 * time.Second), Seed: 85},
	}
	got, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}

	want := DefaultScenario(DTSSS, 5)
	want.Duration = 25 * time.Second
	rng := rand.New(rand.NewSource(85))
	want.Queries = QueryClasses(rng, 1.0, 1, 5*time.Second)

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("spec compiled to\n%+v\nwant\n%+v", got, want)
	}
}

func TestSpecDefaults(t *testing.T) {
	spec := &Spec{Protocol: "STS-SS", Workload: &WorkloadSpec{BaseRate: 2, PerClass: 1}}
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 1 {
		t.Errorf("default seed = %d, want 1", sc.Seed)
	}
	if sc.Duration != 200*time.Second || sc.MeasureFrom != 10*time.Second {
		t.Errorf("defaults not the paper's: duration=%v measureFrom=%v", sc.Duration, sc.MeasureFrom)
	}
	if sc.SSBreakEven != -1 {
		t.Errorf("omitted break_even should keep the radio default (-1), got %v", sc.SSBreakEven)
	}
	if sc.Topology.NumNodes != 80 || sc.Topology.AreaSide != 500 {
		t.Errorf("topology defaults wrong: %+v", sc.Topology)
	}
	// Workload seed derives from the scenario seed like the figure
	// drivers (seed × 7919).
	rng := rand.New(rand.NewSource(1 * 7919))
	want := QueryClasses(rng, 2, 1, 10*time.Second)
	if !reflect.DeepEqual(sc.Queries, want) {
		t.Errorf("derived workload differs from the seed*7919 convention")
	}
	// Short runs clamp MeasureFrom.
	spec.Duration = Dur(5 * time.Second)
	sc, err = spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.MeasureFrom != time.Second {
		t.Errorf("MeasureFrom not clamped to Duration/5: %v", sc.MeasureFrom)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	be := Dur(2500 * time.Microsecond)
	mf := Dur(5 * time.Second)
	victim := 12
	src := 3
	orig := &Spec{
		Protocol:         "DTS-SS",
		Seed:             9,
		Nodes:            40,
		Area:             400,
		Topology:         "clusters",
		TopologyParams:   map[string]float64{"clusters": 3, "spread": 60},
		Duration:         Dur(30 * time.Second),
		MeasureFrom:      &mf,
		Workload:         &WorkloadSpec{BaseRate: 1, PerClass: 2, PhaseMax: Dur(4 * time.Second)},
		Queries:          []QueryJSON{{ID: 100, Period: Dur(time.Second), Class: 1}},
		BreakEven:        &be,
		Loss:             0.05,
		FailureThreshold: 3,
		Failures:         []FailureSpec{{At: Dur(10 * time.Second), Node: &victim}, {At: Dur(15 * time.Second)}},
		QueryStops:       []QueryStopSpec{{At: Dur(20 * time.Second), Query: 2}},
		Peers:            []FlowSpec{{ID: -1, Src: &src, Period: Dur(time.Second)}},
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\njson: %s", err, data)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip changed the spec:\n%+v\nvs\n%+v", orig, back)
	}
}

func TestSpecDurationForms(t *testing.T) {
	s, err := ParseSpec([]byte(`{"protocol":"DTS-SS","duration":"1m30s","workload":{"base_rate":1,"per_class":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Duration.D() != 90*time.Second {
		t.Errorf("string duration = %v, want 1m30s", s.Duration.D())
	}
	// Bare numbers are nanoseconds, time.Duration's own JSON form.
	s, err = ParseSpec([]byte(`{"protocol":"DTS-SS","duration":1000000000,"workload":{"base_rate":1,"per_class":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Duration.D() != time.Second {
		t.Errorf("numeric duration = %v, want 1s", s.Duration.D())
	}
}

func TestSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"unknown field", `{"protocol":"DTS-SS","workloads":{}}`},
		{"bad duration", `{"protocol":"DTS-SS","duration":"ten seconds"}`},
	}
	for _, c := range cases {
		if _, err := ParseSpec([]byte(c.json)); err == nil {
			t.Errorf("%s: ParseSpec accepted %s", c.name, c.json)
		}
	}
	compile := []struct {
		name string
		spec Spec
	}{
		{"unknown protocol", Spec{Protocol: "XYZ", Workload: &WorkloadSpec{BaseRate: 1, PerClass: 1}}},
		{"unknown topology", Spec{Protocol: "DTS-SS", Topology: "moebius", Workload: &WorkloadSpec{BaseRate: 1, PerClass: 1}}},
		{"no queries", Spec{Protocol: "DTS-SS"}},
		{"measure_from past duration", Spec{Protocol: "DTS-SS", Duration: Dur(30 * time.Second),
			MeasureFrom: durPtr(60 * time.Second), Workload: &WorkloadSpec{BaseRate: 1, PerClass: 1}}},
		{"negative measure_from", Spec{Protocol: "DTS-SS",
			MeasureFrom: durPtr(-5 * time.Second), Workload: &WorkloadSpec{BaseRate: 1, PerClass: 1}}},
		{"bad workload", Spec{Protocol: "DTS-SS", Workload: &WorkloadSpec{BaseRate: -1, PerClass: 1}}},
		{"bad query period", Spec{Protocol: "DTS-SS", Queries: []QueryJSON{{ID: 1}}}},
	}
	for _, c := range compile {
		if _, err := c.spec.Scenario(); err == nil {
			t.Errorf("%s: Scenario() accepted %+v", c.name, c.spec)
		}
	}
}

func durPtr(d time.Duration) *Duration {
	v := Dur(d)
	return &v
}

func TestSpecRunEndToEnd(t *testing.T) {
	res, err := RunSpec(&Spec{
		Protocol: "NTS-SS",
		Nodes:    30,
		Area:     350,
		Topology: "corridor",
		Duration: Dur(10 * time.Second),
		Workload: &WorkloadSpec{BaseRate: 1, PerClass: 1, PhaseMax: Dur(2 * time.Second)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DutyCycle <= 0 || res.Latency.N == 0 {
		t.Fatalf("spec run produced implausible result: %+v", res)
	}
}
