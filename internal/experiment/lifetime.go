package experiment

import (
	"math/rand"
	"time"
)

// Lifetime quantifies the paper's §4.2.1 scalability argument: "large
// variations in the energy conserved at different nodes limits the
// lifetime of the network. The nodes close to the root that have higher
// ranks will run out of energy faster than the others." Every non-root
// node gets a small battery; the experiment measures the time until the
// first battery death under each ESSAT protocol (plus SPAN, whose
// backbone dies almost immediately at this scale).
//
// The battery is sized so deaths occur within the run: at a 5 Hz base
// rate a high-rank NTS-SS node draws a few milliwatts average, so a
// budget of a fraction of a joule dies within tens of seconds.
func Lifetime(o Options, batteryJ float64) (*Figure, error) {
	o = o.normalized()
	if batteryJ <= 0 {
		batteryJ = 0.5
	}
	protos := []Protocol{DTSSS, STSSS, NTSSS, SPAN}
	results, err := runMatrix(o, len(protos), func(i int, seed int64) Scenario {
		sc := o.scenario(protos[i], seed)
		rng := rand.New(rand.NewSource(seed * 7919))
		sc.Queries = QueryClasses(rng, 5, 1, 10*time.Second)
		sc.BatteryJ = batteryJ
		// Failure detection on: survivors must route around the dead.
		sc.QueryCfg.FailureThreshold = 3
		return sc
	})
	if err != nil {
		return nil, err
	}
	first := Series{Name: "first death (s)"}
	deaths := Series{Name: "deaths by run end"}
	for i := range protos {
		x := float64(i + 1)
		first.Points = append(first.Points, pointFrom(x, results[i], func(r *Result) float64 {
			if r.FirstDeath == 0 {
				return o.Duration.Seconds() // survived the whole run
			}
			return r.FirstDeath.Seconds()
		}))
		deaths.Points = append(deaths.Points, pointFrom(x, results[i],
			func(r *Result) float64 { return float64(r.BatteryDeaths) }))
	}
	return &Figure{
		ID:     "lifetime",
		Title:  "Network lifetime with finite batteries (§4.2.1; x: 1=DTS-SS 2=STS-SS 3=NTS-SS 4=SPAN)",
		XLabel: "protocol",
		YLabel: "first battery death (s) / deaths",
		Series: []Series{first, deaths},
		Notes: []string{
			"batteries are deliberately tiny so deaths occur within the run; the paper's",
			"claim is about the ORDER: rank-skewed protocols lose their first node sooner",
		},
	}, nil
}
