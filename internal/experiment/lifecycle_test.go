package experiment

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/essat/essat/internal/protocol"
)

// panicProto wires a normal NTS-SS stack and then schedules a panic
// mid-run — the shape of a protocol bug that must never take down a
// process hosting many runs.
type panicProto struct{ delegate protocol.Builder }

const panicProtoName protocol.Protocol = "panic-mid-run"

func (p *panicProto) Protocol() protocol.Protocol { return panicProtoName }

func (p *panicProto) Build(ctx *protocol.BuildContext) error {
	if err := p.delegate.Build(ctx); err != nil {
		return err
	}
	ctx.Eng.After(2*time.Second, func() { panic("injected protocol bug") })
	return nil
}

func init() {
	d, ok := protocol.Lookup(NTSSS)
	if !ok {
		panic("NTS-SS not registered")
	}
	protocol.RegisterUnlisted(&panicProto{delegate: d})
}

// lifecycleScenario is a small, fast run for the lifecycle tests.
func lifecycleScenario(p Protocol, seed int64) Scenario {
	sc := DefaultScenario(p, seed)
	sc.Topology.NumNodes = 40
	sc.Topology.AreaSide = 350
	sc.Duration = 10 * time.Second
	sc.MeasureFrom = 2 * time.Second
	sc.Queries = QueryClasses(rand.New(rand.NewSource(seed*7919)), 1.0, 1, 3*time.Second)
	return sc
}

func TestPanicContainment(t *testing.T) {
	sc := lifecycleScenario(panicProtoName, 5)
	res, err := RunContext(context.Background(), sc, Budget{})
	if res != nil {
		t.Fatalf("panicking run returned a result")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Protocol != panicProtoName || pe.Seed != 5 {
		t.Errorf("PanicError repro info = (%s, %d), want (%s, 5)", pe.Protocol, pe.Seed, panicProtoName)
	}
	if pe.Value != "injected protocol bug" {
		t.Errorf("PanicError.Value = %v, want the panic value", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "panicProto") {
		t.Errorf("PanicError.Stack does not point at the panic site")
	}

	// The process — and the package — must be fully usable afterwards.
	if _, err := Run(lifecycleScenario(DTSSS, 5)); err != nil {
		t.Fatalf("run after contained panic failed: %v", err)
	}
}

func TestRunContainsPanics(t *testing.T) {
	// The compat entry points delegate to RunContext and therefore
	// contain panics too.
	var pe *PanicError
	if _, err := Run(lifecycleScenario(panicProtoName, 2)); !errors.As(err, &pe) {
		t.Fatalf("Run: err = %v, want *PanicError", err)
	}
	spec := &Spec{Protocol: string(panicProtoName), Seed: 2, Duration: Dur(10 * time.Second),
		Nodes: 40, Area: 350, Workload: &WorkloadSpec{BaseRate: 1, PerClass: 1}}
	pe = nil
	if _, err := RunSpec(spec); !errors.As(err, &pe) {
		t.Fatalf("RunSpec: err = %v, want *PanicError", err)
	} else if len(pe.SpecJSON) == 0 || !strings.Contains(string(pe.SpecJSON), string(panicProtoName)) {
		t.Errorf("RunSpec's PanicError does not carry the repro spec: %q", pe.SpecJSON)
	}
}

func TestBudgetMaxEvents(t *testing.T) {
	sc := lifecycleScenario(DTSSS, 1)
	res, err := RunContext(context.Background(), sc, Budget{MaxEvents: 1000})
	if res != nil {
		t.Fatalf("budget-terminated run returned a result")
	}
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v (%T), want *BudgetExceededError", err, err)
	}
	if be.Resource != "events" || be.Events != 1000 {
		t.Errorf("BudgetExceededError = {Resource: %q, Events: %d}, want {events, 1000}", be.Resource, be.Events)
	}
}

func TestBudgetWallClock(t *testing.T) {
	sc := lifecycleScenario(DTSSS, 1)
	_, err := RunContext(context.Background(), sc, Budget{WallClock: time.Nanosecond})
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v (%T), want *BudgetExceededError", err, err)
	}
	if be.Resource != "wall-clock" {
		t.Errorf("Resource = %q, want wall-clock", be.Resource)
	}
}

func TestCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := lifecycleScenario(DTSSS, 1)
	if _, err := RunContext(ctx, sc, Budget{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx: err = %v, want context.Canceled", err)
	}

	// A deadline that can only fire mid-run terminates with the
	// context's own error.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	if _, err := RunContext(ctx2, lifecycleScenario(DTSSS, 2), Budget{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline ctx: err = %v, want context.DeadlineExceeded", err)
	}

	// The engine is single-goroutine: cancellation mid-run must leave
	// nothing behind. Allow slack for runtime/test goroutines.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if i > 50 {
			t.Fatalf("goroutines leaked by canceled runs: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCanceledThenRerunDigest verifies a terminated run leaves no state
// behind that could perturb a later run: the rerun's audit digest
// matches a run that never shared a process with a cancellation.
func TestCanceledThenRerunDigest(t *testing.T) {
	sc := lifecycleScenario(DTSSS, 9)
	sc.Audit = true

	ref, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Audit.Total != 0 {
		t.Fatalf("reference run has %d invariant violations", ref.Audit.Total)
	}

	if _, err := RunContext(context.Background(), sc, Budget{MaxEvents: 5000}); err == nil {
		t.Fatal("budget run unexpectedly completed")
	}

	rerun, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Audit.Digest != ref.Audit.Digest {
		t.Fatalf("digest after canceled run %s != reference %s", rerun.Audit.Digest, ref.Audit.Digest)
	}
}

func TestQueryClassesInvalidArgsYieldError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		rate     float64
		perClass int
		phaseMax time.Duration
	}{{0, 1, time.Second}, {-1, 1, time.Second}, {1, 0, time.Second}, {1, 1, 0}} {
		if got := QueryClasses(rng, tc.rate, tc.perClass, tc.phaseMax); got != nil {
			t.Errorf("QueryClasses(%g, %d, %v) = %d specs, want none", tc.rate, tc.perClass, tc.phaseMax, len(got))
		}
	}
	// And the empty workload surfaces as a Build error, not a crash.
	sc := DefaultScenario(DTSSS, 1)
	sc.Queries = QueryClasses(rng, 0, 1, time.Second)
	if _, err := Run(sc); err == nil {
		t.Fatal("Run with an invalid workload succeeded")
	}
}
