package experiment

import (
	"math/rand"
	"time"
)

// The ablation drivers isolate the design choices DESIGN.md calls out:
// the Safe Sleep break-even guard, the shapers' early-report buffering,
// and the flood-vs-BFS tree construction. RobustnessLoss sweeps transient
// packet loss against the §4.3 maintenance mechanisms.

// AblationBreakEvenGuard compares DTS-SS with the Safe Sleep break-even
// guard enabled (tBE = the radio's real break-even time) against a naive
// scheduler that sleeps through any free gap (tBE = 0) on the same
// MICA2-like radio. Without the guard, short sleeps cost more energy than
// they save and late wake-ups turn into MAC retries.
func AblationBreakEvenGuard(o Options) (*Figure, error) {
	o = o.normalized()
	variants := []struct {
		name string
		tbe  time.Duration
	}{
		{"guarded (tBE=radio)", -1},
		{"naive (tBE=0)", 0},
	}
	rates := []float64{1, 3, 5}
	var series []Series
	for _, v := range variants {
		v := v
		s := Series{Name: v.name}
		for _, rate := range rates {
			rate := rate
			pt, err := runSeeds(o, rate, func(seed int64) Scenario {
				sc := o.scenario(DTSSS, seed)
				rng := rand.New(rand.NewSource(seed * 7919))
				sc.Queries = QueryClasses(rng, rate, 1, 10*time.Second)
				sc.SSBreakEven = v.tbe
				return sc
			}, func(r *Result) float64 { return r.DutyCycle * 100 })
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, pt)
		}
		series = append(series, s)
	}
	return &Figure{
		ID:     "ablation-guard",
		Title:  "Safe Sleep break-even guard vs naive sleep-any-gap (DTS-SS duty cycle)",
		XLabel: "base rate (Hz)",
		YLabel: "duty cycle (%)",
		Series: series,
	}, nil
}

// AblationBuffering compares DTS-SS with and without buffering early
// reports until their expected send time. Buffering is what keeps senders
// aligned with their parents' wake-ups; without it, early transmissions
// find sleeping receivers and burn retries (measured here as MAC failures
// per 1000 sends, alongside the duty cost).
func AblationBuffering(o Options) (*Figure, error) {
	o = o.normalized()
	variants := []struct {
		name string
		off  bool
	}{
		{"buffered (paper)", false},
		{"greedy early send", true},
	}
	var duty, fails []Series
	for _, v := range variants {
		v := v
		sd := Series{Name: v.name + " duty%"}
		sf := Series{Name: v.name + " fails/1k"}
		for _, rate := range []float64{1, 3, 5} {
			rate := rate
			build := func(seed int64) Scenario {
				sc := o.scenario(DTSSS, seed)
				rng := rand.New(rand.NewSource(seed * 7919))
				sc.Queries = QueryClasses(rng, rate, 1, 10*time.Second)
				sc.NoBuffering = v.off
				return sc
			}
			pd, err := runSeeds(o, rate, build, func(r *Result) float64 { return r.DutyCycle * 100 })
			if err != nil {
				return nil, err
			}
			pf, err := runSeeds(o, rate, build, func(r *Result) float64 {
				total := r.MACSent + r.MACFailed
				if total == 0 {
					return 0
				}
				return float64(r.MACFailed) / float64(total) * 1000
			})
			if err != nil {
				return nil, err
			}
			sd.Points = append(sd.Points, pd)
			sf.Points = append(sf.Points, pf)
		}
		duty = append(duty, sd)
		fails = append(fails, sf)
	}
	return &Figure{
		ID:     "ablation-buffering",
		Title:  "Early-report buffering vs greedy early send (DTS-SS)",
		XLabel: "base rate (Hz)",
		YLabel: "duty cycle (%) / MAC failures per 1000 sends",
		Series: append(duty, fails...),
	}, nil
}

// AblationTreeConstruction compares the simulated setup flood (the
// paper's construction, deeper and less regular) against an idealized
// min-hop BFS tree for DTS-SS.
func AblationTreeConstruction(o Options) (*Figure, error) {
	o = o.normalized()
	variants := []struct {
		name string
		bfs  bool
	}{
		{"flood tree (paper)", false},
		{"min-hop BFS tree", true},
	}
	var series []Series
	for _, v := range variants {
		v := v
		s := Series{Name: v.name}
		for _, rate := range []float64{1, 3, 5} {
			rate := rate
			pt, err := runSeeds(o, rate, func(seed int64) Scenario {
				sc := o.scenario(DTSSS, seed)
				rng := rand.New(rand.NewSource(seed * 7919))
				sc.Queries = QueryClasses(rng, rate, 1, 10*time.Second)
				sc.BFSTree = v.bfs
				return sc
			}, func(r *Result) float64 { return r.DutyCycle * 100 })
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, pt)
		}
		series = append(series, s)
	}
	return &Figure{
		ID:     "ablation-tree",
		Title:  "Setup-flood tree vs idealized BFS tree (DTS-SS duty cycle)",
		XLabel: "base rate (Hz)",
		YLabel: "duty cycle (%)",
		Series: series,
	}, nil
}

// RobustnessLoss sweeps transient packet loss (§4.3) for the three ESSAT
// protocols at a 1 Hz base rate and reports root coverage: how much of
// the network's data still reaches the root per interval, as a fraction
// of the tree size. DTS pays for its adaptivity with resynchronization
// traffic but keeps coverage close to NTS/STS.
func RobustnessLoss(o Options, lossRates []float64) (*Figure, error) {
	o = o.normalized()
	if len(lossRates) == 0 {
		lossRates = []float64{0, 0.05, 0.1, 0.2}
	}
	protos := []Protocol{DTSSS, STSSS, NTSSS}
	var series []Series
	for _, p := range protos {
		p := p
		s := Series{Name: string(p) + " coverage%"}
		for _, loss := range lossRates {
			loss := loss
			pt, err := runSeeds(o, loss*100, func(seed int64) Scenario {
				sc := o.scenario(p, seed)
				rng := rand.New(rand.NewSource(seed * 7919))
				sc.Queries = QueryClasses(rng, 1, 1, 10*time.Second)
				sc.LossRate = loss
				sc.QueryCfg.FailureThreshold = 3
				return sc
			}, func(r *Result) float64 { return r.Coverage / float64(r.TreeSize) * 100 })
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, pt)
		}
		series = append(series, s)
	}
	return &Figure{
		ID:     "robustness-loss",
		Title:  "Root coverage under transient packet loss (§4.3 maintenance)",
		XLabel: "loss rate (%)",
		YLabel: "root coverage (% of tree)",
		Series: series,
	}, nil
}

// RobustnessFailures kills a growing number of random non-leaf nodes
// mid-run under DTS-SS and reports coverage among survivors: the §4.3
// recovery (parent-side dependency removal, child-side re-parenting with
// Join + phase update) should keep surviving nodes' data flowing.
func RobustnessFailures(o Options, failureCounts []int) (*Figure, error) {
	o = o.normalized()
	if len(failureCounts) == 0 {
		failureCounts = []int{0, 1, 2, 4}
	}
	var cov, duty Series
	cov.Name = "coverage % of survivors"
	duty.Name = "duty cycle %"
	for _, fc := range failureCounts {
		fc := fc
		build := func(seed int64) Scenario {
			sc := o.scenario(DTSSS, seed)
			rng := rand.New(rand.NewSource(seed * 7919))
			sc.Queries = QueryClasses(rng, 1, 1, 10*time.Second)
			sc.QueryCfg.FailureThreshold = 3
			for i := 0; i < fc; i++ {
				sc.Failures = append(sc.Failures, Failure{
					At:   sc.Duration/4 + time.Duration(i)*sc.Duration/8,
					Node: -1,
				})
			}
			return sc
		}
		pc, err := runSeeds(o, float64(fc), build, func(r *Result) float64 {
			alive := float64(r.TreeSize - fc)
			if alive <= 0 {
				return 0
			}
			return r.Coverage / alive * 100
		})
		if err != nil {
			return nil, err
		}
		pd, err := runSeeds(o, float64(fc), build, func(r *Result) float64 { return r.DutyCycle * 100 })
		if err != nil {
			return nil, err
		}
		cov.Points = append(cov.Points, pc)
		duty.Points = append(duty.Points, pd)
	}
	return &Figure{
		ID:     "robustness-failures",
		Title:  "DTS-SS under mid-run node failures (§4.3 recovery)",
		XLabel: "failed nodes",
		YLabel: "coverage (% of survivors) / duty cycle (%)",
		Series: []Series{cov, duty},
		Notes: []string{
			"values above 100% are expected: victims contribute before dying, and during",
			"re-parent handoffs a report can reach the root via both the old and new parent",
		},
	}, nil
}
