package experiment

import (
	"math/rand"
	"time"
)

// The ablation drivers isolate the design choices DESIGN.md calls out:
// the Safe Sleep break-even guard, the shapers' early-report buffering,
// and the flood-vs-BFS tree construction. RobustnessLoss sweeps transient
// packet loss against the §4.3 maintenance mechanisms.

// AblationBreakEvenGuard compares DTS-SS with the Safe Sleep break-even
// guard enabled (tBE = the radio's real break-even time) against a naive
// scheduler that sleeps through any free gap (tBE = 0) on the same
// MICA2-like radio. Without the guard, short sleeps cost more energy than
// they save and late wake-ups turn into MAC retries.
func AblationBreakEvenGuard(o Options) (*Figure, error) {
	o = o.normalized()
	variants := []struct {
		name string
		tbe  time.Duration
	}{
		{"guarded (tBE=radio)", -1},
		{"naive (tBE=0)", 0},
	}
	rates := []float64{1, 3, 5}
	results, err := runMatrix(o, len(variants)*len(rates), func(i int, seed int64) Scenario {
		sc := o.scenario(DTSSS, seed)
		rng := rand.New(rand.NewSource(seed * 7919))
		sc.Queries = QueryClasses(rng, rates[i%len(rates)], 1, 10*time.Second)
		sc.SSBreakEven = variants[i/len(rates)].tbe
		return sc
	})
	if err != nil {
		return nil, err
	}
	var series []Series
	for vi, v := range variants {
		s := Series{Name: v.name}
		for ri, rate := range rates {
			s.Points = append(s.Points, pointFrom(rate, results[vi*len(rates)+ri],
				func(r *Result) float64 { return r.DutyCycle * 100 }))
		}
		series = append(series, s)
	}
	return &Figure{
		ID:     "ablation-guard",
		Title:  "Safe Sleep break-even guard vs naive sleep-any-gap (DTS-SS duty cycle)",
		XLabel: "base rate (Hz)",
		YLabel: "duty cycle (%)",
		Series: series,
	}, nil
}

// AblationBuffering compares DTS-SS with and without buffering early
// reports until their expected send time. Buffering is what keeps senders
// aligned with their parents' wake-ups; without it, early transmissions
// find sleeping receivers and burn retries (measured here as MAC failures
// per 1000 sends, alongside the duty cost).
func AblationBuffering(o Options) (*Figure, error) {
	o = o.normalized()
	variants := []struct {
		name string
		off  bool
	}{
		{"buffered (paper)", false},
		{"greedy early send", true},
	}
	rates := []float64{1, 3, 5}
	results, err := runMatrix(o, len(variants)*len(rates), func(i int, seed int64) Scenario {
		sc := o.scenario(DTSSS, seed)
		rng := rand.New(rand.NewSource(seed * 7919))
		sc.Queries = QueryClasses(rng, rates[i%len(rates)], 1, 10*time.Second)
		sc.NoBuffering = variants[i/len(rates)].off
		return sc
	})
	if err != nil {
		return nil, err
	}
	var duty, fails []Series
	for vi, v := range variants {
		sd := Series{Name: v.name + " duty%"}
		sf := Series{Name: v.name + " fails/1k"}
		for ri, rate := range rates {
			rs := results[vi*len(rates)+ri]
			sd.Points = append(sd.Points, pointFrom(rate, rs,
				func(r *Result) float64 { return r.DutyCycle * 100 }))
			sf.Points = append(sf.Points, pointFrom(rate, rs, func(r *Result) float64 {
				total := r.MACSent + r.MACFailed
				if total == 0 {
					return 0
				}
				return float64(r.MACFailed) / float64(total) * 1000
			}))
		}
		duty = append(duty, sd)
		fails = append(fails, sf)
	}
	return &Figure{
		ID:     "ablation-buffering",
		Title:  "Early-report buffering vs greedy early send (DTS-SS)",
		XLabel: "base rate (Hz)",
		YLabel: "duty cycle (%) / MAC failures per 1000 sends",
		Series: append(duty, fails...),
	}, nil
}

// AblationTreeConstruction compares the simulated setup flood (the
// paper's construction, deeper and less regular) against an idealized
// min-hop BFS tree for DTS-SS.
func AblationTreeConstruction(o Options) (*Figure, error) {
	o = o.normalized()
	variants := []struct {
		name string
		bfs  bool
	}{
		{"flood tree (paper)", false},
		{"min-hop BFS tree", true},
	}
	rates := []float64{1, 3, 5}
	results, err := runMatrix(o, len(variants)*len(rates), func(i int, seed int64) Scenario {
		sc := o.scenario(DTSSS, seed)
		rng := rand.New(rand.NewSource(seed * 7919))
		sc.Queries = QueryClasses(rng, rates[i%len(rates)], 1, 10*time.Second)
		sc.BFSTree = variants[i/len(rates)].bfs
		return sc
	})
	if err != nil {
		return nil, err
	}
	var series []Series
	for vi, v := range variants {
		s := Series{Name: v.name}
		for ri, rate := range rates {
			s.Points = append(s.Points, pointFrom(rate, results[vi*len(rates)+ri],
				func(r *Result) float64 { return r.DutyCycle * 100 }))
		}
		series = append(series, s)
	}
	return &Figure{
		ID:     "ablation-tree",
		Title:  "Setup-flood tree vs idealized BFS tree (DTS-SS duty cycle)",
		XLabel: "base rate (Hz)",
		YLabel: "duty cycle (%)",
		Series: series,
	}, nil
}

// RobustnessLoss sweeps transient packet loss (§4.3) for the three ESSAT
// protocols at a 1 Hz base rate and reports root coverage: how much of
// the network's data still reaches the root per interval, as a fraction
// of the tree size. DTS pays for its adaptivity with resynchronization
// traffic but keeps coverage close to NTS/STS.
func RobustnessLoss(o Options, lossRates []float64) (*Figure, error) {
	o = o.normalized()
	if len(lossRates) == 0 {
		lossRates = []float64{0, 0.05, 0.1, 0.2}
	}
	protos := []Protocol{DTSSS, STSSS, NTSSS}
	results, err := runMatrix(o, len(protos)*len(lossRates), func(i int, seed int64) Scenario {
		sc := o.scenario(protos[i/len(lossRates)], seed)
		rng := rand.New(rand.NewSource(seed * 7919))
		sc.Queries = QueryClasses(rng, 1, 1, 10*time.Second)
		sc.LossRate = lossRates[i%len(lossRates)]
		sc.QueryCfg.FailureThreshold = 3
		return sc
	})
	if err != nil {
		return nil, err
	}
	var series []Series
	for pi, p := range protos {
		s := Series{Name: string(p) + " coverage%"}
		for li, loss := range lossRates {
			s.Points = append(s.Points, pointFrom(loss*100, results[pi*len(lossRates)+li],
				func(r *Result) float64 { return r.Coverage / float64(r.TreeSize) * 100 }))
		}
		series = append(series, s)
	}
	return &Figure{
		ID:     "robustness-loss",
		Title:  "Root coverage under transient packet loss (§4.3 maintenance)",
		XLabel: "loss rate (%)",
		YLabel: "root coverage (% of tree)",
		Series: series,
	}, nil
}

// RobustnessFailures kills a growing number of random non-leaf nodes
// mid-run under DTS-SS and reports coverage among survivors: the §4.3
// recovery (parent-side dependency removal, child-side re-parenting with
// Join + phase update) should keep surviving nodes' data flowing.
func RobustnessFailures(o Options, failureCounts []int) (*Figure, error) {
	o = o.normalized()
	if len(failureCounts) == 0 {
		failureCounts = []int{0, 1, 2, 4}
	}
	results, err := runMatrix(o, len(failureCounts), func(i int, seed int64) Scenario {
		fc := failureCounts[i]
		sc := o.scenario(DTSSS, seed)
		rng := rand.New(rand.NewSource(seed * 7919))
		sc.Queries = QueryClasses(rng, 1, 1, 10*time.Second)
		sc.QueryCfg.FailureThreshold = 3
		for j := 0; j < fc; j++ {
			sc.Failures = append(sc.Failures, Failure{
				At:   sc.Duration/4 + time.Duration(j)*sc.Duration/8,
				Node: -1,
			})
		}
		return sc
	})
	if err != nil {
		return nil, err
	}
	var cov, duty Series
	cov.Name = "coverage % of survivors"
	duty.Name = "duty cycle %"
	for i, fc := range failureCounts {
		cov.Points = append(cov.Points, pointFrom(float64(fc), results[i], func(r *Result) float64 {
			alive := float64(r.TreeSize - fc)
			if alive <= 0 {
				return 0
			}
			return r.Coverage / alive * 100
		}))
		duty.Points = append(duty.Points, pointFrom(float64(fc), results[i],
			func(r *Result) float64 { return r.DutyCycle * 100 }))
	}
	return &Figure{
		ID:     "robustness-failures",
		Title:  "DTS-SS under mid-run node failures (§4.3 recovery)",
		XLabel: "failed nodes",
		YLabel: "coverage (% of survivors) / duty cycle (%)",
		Series: []Series{cov, duty},
		Notes: []string{
			"values above 100% are expected: victims contribute before dying, and during",
			"re-parent handoffs a report can reach the root via both the old and new parent",
		},
	}, nil
}
