package experiment

import (
	"sync/atomic"
	"time"
)

// runCounters aggregates simulator work across Run calls so benchmarking
// tools (cmd/essat-bench) can report events/sec and simulated-seconds/sec
// for a whole figure sweep without threading collectors through every
// driver. Counters are atomic: figure sweeps run scenarios in parallel.
var runCounters struct {
	runs   atomic.Uint64
	events atomic.Uint64
	simNS  atomic.Int64
}

// ResetRunCounters zeroes the global run counters.
func ResetRunCounters() {
	runCounters.runs.Store(0)
	runCounters.events.Store(0)
	runCounters.simNS.Store(0)
}

// RunCounters returns the number of Run invocations, simulator events
// executed, and simulated seconds elapsed since the last reset.
func RunCounters() (runs, events uint64, simSeconds float64) {
	runs = runCounters.runs.Load()
	events = runCounters.events.Load()
	simSeconds = time.Duration(runCounters.simNS.Load()).Seconds()
	return
}

func countRun(sc Scenario, events uint64) {
	runCounters.runs.Add(1)
	runCounters.events.Add(events)
	runCounters.simNS.Add(int64(sc.Duration))
}
