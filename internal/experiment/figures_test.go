package experiment

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/essat/essat/internal/topology"
)

func TestFigureFprint(t *testing.T) {
	f := &Figure{
		ID:     "test",
		Title:  "A test figure",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 1, Mean: 10, CI90: 0.5, N: 3}, {X: 2, Mean: 20, CI90: 1, N: 3}}},
			{Name: "b", Points: []Point{{X: 2, Mean: 5, CI90: 0.1, N: 3}}},
		},
		Notes: []string{"a note"},
	}
	var sb strings.Builder
	f.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"test", "A test figure", "a note", "10.000", "20.000", "5.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	// Row for x=1 must leave series b's cell empty, not misaligned.
	lines := strings.Split(out, "\n")
	var x1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "1") {
			x1 = l
		}
	}
	if strings.Contains(x1, "5.000") {
		t.Errorf("x=1 row contains series b's x=2 value: %q", x1)
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	if o.Duration <= 0 || o.Seeds <= 0 || o.Nodes <= 0 || o.Parallelism <= 0 {
		t.Fatalf("normalized zero options invalid: %+v", o)
	}
	p := PaperOptions()
	if p.Duration != 200*time.Second || p.Seeds != 5 || p.Nodes != 80 {
		t.Fatalf("PaperOptions = %+v", p)
	}
}

func TestRunMatrixParallelAggregation(t *testing.T) {
	o := Options{Duration: 6 * time.Second, Seeds: 3, Nodes: 25, Parallelism: 3}.normalized()
	results, err := runMatrix(o, 1, func(i int, seed int64) Scenario {
		sc := DefaultScenario(DTSSS, seed)
		sc.Topology = topology.Config{NumNodes: o.Nodes, AreaSide: 300, Range: 125}
		sc.Duration = o.Duration
		sc.MeasureFrom = time.Second
		rng := rand.New(rand.NewSource(seed))
		sc.Queries = QueryClasses(rng, 1, 1, time.Second)
		return sc
	})
	if err != nil {
		t.Fatal(err)
	}
	pt := pointFrom(42, results[0], func(r *Result) float64 { return r.DutyCycle })
	if pt.X != 42 || pt.N != 3 {
		t.Fatalf("point = %+v", pt)
	}
	if pt.Mean <= 0 || pt.Mean > 1 {
		t.Fatalf("mean duty = %v", pt.Mean)
	}
}

// TestParallelSweepDeterminism is the worker-count invariance regression:
// the figure-sweep runner must produce byte-identical output whether the
// job grid runs on one worker or eight, because aggregation happens in
// job order after all runs complete and each run is seed-deterministic.
func TestParallelSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Fig. 3 sweep twice; skipped with -short")
	}
	render := func(workers int) string {
		o := QuickOptions()
		o.Parallelism = workers
		fig, err := Fig3DutyVsRate(o, []float64{1, 5})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		fig.Fprint(&sb)
		return sb.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("figure output differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
}

func TestDisableSafeSleepAblation(t *testing.T) {
	sc := DefaultScenario(DTSSS, 1)
	sc.Topology = topology.Config{NumNodes: 30, AreaSide: 350, Range: 125}
	sc.Duration = 15 * time.Second
	sc.MeasureFrom = 3 * time.Second
	rng := rand.New(rand.NewSource(5))
	sc.Queries = QueryClasses(rng, 1, 1, 3*time.Second)
	sc.DisableSafeSleep = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Shaping without sleeping: radios stay on the whole time.
	if res.DutyCycle < 0.99 {
		t.Fatalf("duty = %.3f with Safe Sleep disabled, want ~1.0", res.DutyCycle)
	}
	// But latency is unaffected (still shaped, still delivered).
	if res.Latency.N == 0 || res.Latency.Mean > time.Second {
		t.Fatalf("latency broken without SS: %+v", res.Latency)
	}
}

func TestBFSTreeScenario(t *testing.T) {
	sc := DefaultScenario(STSSS, 1)
	sc.Topology = topology.Config{NumNodes: 30, AreaSide: 350, Range: 125}
	sc.Duration = 15 * time.Second
	sc.MeasureFrom = 3 * time.Second
	sc.BFSTree = true
	rng := rand.New(rand.NewSource(5))
	sc.Queries = QueryClasses(rng, 1, 1, 3*time.Second)
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.N == 0 {
		t.Fatal("BFS-tree scenario produced no results")
	}
}
