package experiment

import (
	"math/rand"
	"testing"
	"time"

	"github.com/essat/essat/internal/topology"
)

func TestBatteryDeathsOccurAndNetworkSurvives(t *testing.T) {
	sc := DefaultScenario(DTSSS, 2)
	sc.Topology = topology.Config{NumNodes: 40, AreaSide: 400, Range: 125}
	sc.Duration = 40 * time.Second
	sc.MeasureFrom = 5 * time.Second
	rng := rand.New(rand.NewSource(3))
	sc.Queries = QueryClasses(rng, 5, 1, 5*time.Second)
	sc.BatteryJ = 0.15 // tiny: guarantees deaths within the run
	sc.QueryCfg.FailureThreshold = 3

	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatteryDeaths == 0 {
		t.Fatal("no battery deaths with a 0.15 J budget at 5 Hz")
	}
	if res.FirstDeath <= 0 || res.FirstDeath > sc.Duration {
		t.Fatalf("FirstDeath = %v, out of range", res.FirstDeath)
	}
	// The root and survivors keep producing: some latency samples must
	// exist and coverage stays positive.
	if res.Latency.N == 0 {
		t.Fatal("network collapsed entirely after battery deaths")
	}
	if res.Coverage <= 1 {
		t.Fatalf("coverage = %.1f, want > 1", res.Coverage)
	}
}

func TestNoBatteryMeansNoDeaths(t *testing.T) {
	sc := DefaultScenario(DTSSS, 2)
	sc.Topology = topology.Config{NumNodes: 30, AreaSide: 350, Range: 125}
	sc.Duration = 20 * time.Second
	sc.MeasureFrom = 5 * time.Second
	rng := rand.New(rand.NewSource(3))
	sc.Queries = QueryClasses(rng, 1, 1, 5*time.Second)

	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatteryDeaths != 0 || res.FirstDeath != 0 {
		t.Fatalf("deaths without batteries: %d at %v", res.BatteryDeaths, res.FirstDeath)
	}
	if res.EnergyMean <= 0 || res.EnergyMax < res.EnergyMean {
		t.Fatalf("energy accounting wrong: mean %.3f max %.3f", res.EnergyMean, res.EnergyMax)
	}
	if res.NetworkLifetime <= 0 {
		t.Fatal("no lifetime estimate")
	}
}

func TestSpanDiesFirst(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison")
	}
	firstDeath := func(p Protocol) time.Duration {
		sc := DefaultScenario(p, 4)
		sc.Topology = topology.Config{NumNodes: 40, AreaSide: 400, Range: 125}
		sc.Duration = 60 * time.Second
		sc.MeasureFrom = 5 * time.Second
		rng := rand.New(rand.NewSource(3))
		sc.Queries = QueryClasses(rng, 5, 1, 5*time.Second)
		sc.BatteryJ = 0.5
		sc.QueryCfg.FailureThreshold = 3
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.FirstDeath == 0 {
			return sc.Duration
		}
		return res.FirstDeath
	}
	span := firstDeath(SPAN)
	dts := firstDeath(DTSSS)
	if span >= dts {
		t.Fatalf("SPAN's always-on backbone (first death %v) should drain before DTS-SS (%v)", span, dts)
	}
}
