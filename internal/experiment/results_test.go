package experiment

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"github.com/essat/essat/internal/stats"
)

// sinkScenario is a fast NTS-SS run with every optional sink attached.
func sinkScenario(seed int64) Scenario {
	sc := smokeScenario(NTSSS, seed)
	sc.Duration = 10 * time.Second
	sc.MeasureFrom = 2 * time.Second
	sc.Sinks = []SinkChoice{
		{Name: stats.SinkTimeseries, Params: map[string]float64{"bucket_ms": 500}},
		{Name: stats.SinkEnergy},
		{Name: stats.SinkJSONL},
	}
	return sc
}

func TestDefaultRunHasNoRecords(t *testing.T) {
	sc := smokeScenario(NTSSS, 42)
	sc.Duration = 5 * time.Second
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("default run produced %d records, want 0", len(res.Records))
	}
}

func TestResultsSpecErrors(t *testing.T) {
	base := func() Spec {
		return Spec{Protocol: "NTS-SS", Workload: &WorkloadSpec{BaseRate: 1, PerClass: 1}}
	}
	cases := []struct {
		name string
		res  *ResultsSpec
	}{
		{"empty-sinks", &ResultsSpec{}},
		{"unknown-sink", &ResultsSpec{Sinks: []SinkSpec{{Name: "flamegraph"}}}},
		{"duplicate-sink", &ResultsSpec{Sinks: []SinkSpec{{Name: "energy"}, {Name: "energy"}}}},
		{"bad-params", &ResultsSpec{Sinks: []SinkSpec{{Name: "timeseries", Params: map[string]float64{"bucket_ms": -1}}}}},
		{"unknown-param", &ResultsSpec{Sinks: []SinkSpec{{Name: "jsonl", Params: map[string]float64{"x": 1}}}}},
	}
	for _, c := range cases {
		s := base()
		s.Results = c.res
		if _, err := s.Scenario(); err == nil {
			t.Errorf("%s: Scenario() accepted %+v", c.name, c.res)
		}
	}
	// The happy path compiles into Scenario.Sinks in declaration order.
	s := base()
	s.Results = &ResultsSpec{Sinks: []SinkSpec{{Name: "energy"}, {Name: "jsonl"}}}
	sc, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Sinks) != 2 || sc.Sinks[0].Name != "energy" || sc.Sinks[1].Name != "jsonl" {
		t.Fatalf("compiled sinks = %+v", sc.Sinks)
	}
}

// Sinks must be pure observers: attaching every registered sink may not
// perturb the simulation (same audit digest) or any legacy result field.
func TestSinkPurity(t *testing.T) {
	plain := smokeScenario(NTSSS, 42)
	plain.Duration = 10 * time.Second
	plain.MeasureFrom = 2 * time.Second
	plain.Audit = true
	sinked := sinkScenario(42)
	sinked.Audit = true

	resPlain, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	resSinked, err := Run(sinked)
	if err != nil {
		t.Fatal(err)
	}
	if resPlain.Audit.Digest != resSinked.Audit.Digest {
		t.Fatalf("sinks changed the trace digest: %s != %s",
			resSinked.Audit.Digest, resPlain.Audit.Digest)
	}
	if len(resSinked.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(resSinked.Records))
	}
	// Strip the records and the remaining Result must be byte-identical.
	resSinked.Records = nil
	a, err := json.Marshal(resPlain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(resSinked)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("legacy result fields differ with sinks attached:\n%s\n%s", a, b)
	}
}

// Exporter output must not depend on how many runs share the process:
// the same scenario run alone and run alongside concurrent neighbors
// yields byte-identical marshaled records.
func TestRecordsWorkerCountInvariant(t *testing.T) {
	marshalRecords := func(res *Result) []byte {
		b, err := json.Marshal(res.Records)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ref, err := Run(sinkScenario(42))
	if err != nil {
		t.Fatal(err)
	}
	want := marshalRecords(ref)
	for _, rec := range ref.Records {
		rec := rec
		if err := stats.ValidateRecord(&rec); err != nil {
			t.Fatalf("record from sink %q invalid: %v", rec.Sink, err)
		}
	}

	const workers = 4
	got := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Run(sinkScenario(42))
			if err != nil {
				t.Error(err)
				return
			}
			got[w] = marshalRecords(res)
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for w, b := range got {
		if string(b) != string(want) {
			t.Fatalf("worker %d records differ from solo run", w)
		}
	}
}
