package experiment

import (
	"testing"
	"time"
)

// Shape-regression tests: scaled-down versions of the paper's figures
// asserting the qualitative results the reproduction is built around.
// They guard against protocol changes silently inverting a paper claim.

func shapeOptions() Options {
	return Options{Duration: 25 * time.Second, Seeds: 2, Nodes: 60}
}

func TestShapeFig2Knee(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	fig, err := Fig2Deadline(shapeOptions(), []time.Duration{
		50 * time.Millisecond, 200 * time.Millisecond, 700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	duty, lat := fig.Series[0].Points, fig.Series[1].Points
	// Below the knee duty is elevated; past it duty is flat.
	if duty[0].Mean <= duty[1].Mean {
		t.Errorf("duty at D=50ms (%.2f) should exceed duty at 200ms (%.2f)", duty[0].Mean, duty[1].Mean)
	}
	if diff := duty[1].Mean - duty[2].Mean; diff > 1.0 || diff < -1.0 {
		t.Errorf("duty should be flat past the knee: %.2f vs %.2f", duty[1].Mean, duty[2].Mean)
	}
	// Latency grows roughly linearly with D past the knee.
	if lat[2].Mean <= lat[1].Mean*1.5 {
		t.Errorf("latency at D=700ms (%.3f) should be well above 200ms (%.3f)", lat[2].Mean, lat[1].Mean)
	}
}

func TestShapeFig3Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	fig, err := Fig3DutyVsRate(shapeOptions(), []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	duty := map[string]float64{}
	for _, s := range fig.Series {
		duty[s.Name] = s.Points[0].Mean
	}
	// Every ESSAT protocol beats every baseline.
	for _, e := range []string{"DTS-SS", "STS-SS", "NTS-SS"} {
		for _, b := range []string{"PSM", "SPAN"} {
			if duty[e] >= duty[b] {
				t.Errorf("%s duty (%.1f) not below %s (%.1f)", e, duty[e], b, duty[b])
			}
		}
	}
	// The headline band: DTS-SS at least 38%% below SPAN.
	if duty["DTS-SS"] > duty["SPAN"]*0.62 {
		t.Errorf("DTS-SS (%.1f) not 38%%+ below SPAN (%.1f)", duty["DTS-SS"], duty["SPAN"])
	}
	// Shaped protocols beat unshaped.
	if duty["DTS-SS"] >= duty["NTS-SS"] {
		t.Errorf("DTS-SS (%.1f) not below NTS-SS (%.1f)", duty["DTS-SS"], duty["NTS-SS"])
	}
}

func TestShapeFig5RankTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	o := shapeOptions()
	fig, err := Fig5DutyByRank(o)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]Point{}
	for _, s := range fig.Series {
		byName[s.Name] = s.Points
	}
	slope := func(pts []Point) float64 {
		if len(pts) < 2 {
			t.Fatal("too few rank buckets")
		}
		first, last := pts[0], pts[len(pts)-1]
		return (last.Mean - first.Mean) / (last.X - first.X)
	}
	nts := slope(byName["NTS-SS"])
	dts := slope(byName["DTS-SS"])
	if nts <= 0 {
		t.Errorf("NTS-SS duty should grow with rank, slope = %.2f", nts)
	}
	// Eq. 1: NTS grows faster with rank than the shaped protocol.
	if nts <= dts {
		t.Errorf("NTS-SS rank slope (%.2f) should exceed DTS-SS (%.2f)", nts, dts)
	}
}

func TestShapeFig6STSLatencyFallsWithRate(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	fig, err := Fig6LatencyVsRate(shapeOptions(), []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		switch s.Name {
		case "STS-SS":
			if s.Points[1].Mean >= s.Points[0].Mean {
				t.Errorf("STS-SS latency should fall with rate: %.3f → %.3f",
					s.Points[0].Mean, s.Points[1].Mean)
			}
		case "DTS-SS":
			// DTS stays well below STS at low rate and under 0.5 s always.
			if s.Points[0].Mean > 0.5 || s.Points[1].Mean > 0.5 {
				t.Errorf("DTS-SS latency out of band: %v", s.Points)
			}
		}
	}
}

func TestShapeOverheadSubBit(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	// Phase shifts concentrate in the startup transient while schedules
	// converge, so the amortized overhead falls with run length: the
	// paper-scale 200 s runs measure 0.15–0.36 bits/report. This scaled
	// 80 s run tolerates the residual transient but still catches any
	// regression toward per-report synchronization (32 bits).
	o := shapeOptions()
	o.Duration = 80 * time.Second
	o.Seeds = 1
	fig, err := OverheadPhaseUpdates(o, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig.Series[0].Points {
		if p.Mean >= 1.5 {
			t.Errorf("phase overhead at %.0f Hz = %.2f bits/report, paper claims < 1 at steady state", p.X, p.Mean)
		}
	}
}
