package stats

import (
	"sort"
	"time"

	"github.com/essat/essat/internal/query"
)

// intervalRec tracks one query interval as seen from the root.
type intervalRec struct {
	lastArrival time.Duration // max report latency observed (completion time)
	coverage    int           // coverage at close (root aggregate)
	closed      bool
}

// queryRec accumulates one query's root-side observations.
type queryRec struct {
	spec      query.Spec
	intervals map[int]*intervalRec
}

// RootSink records per-report and per-interval observations at the tree
// root. Query latency follows the paper's definition — the maximum time
// for any source's data to reach the root — measured per interval as the
// latency of the last report arriving for that interval, then averaged.
type RootSink struct {
	queries map[query.ID]*queryRec
	// MeasureFrom discards intervals whose nominal start precedes this
	// time (warm-up exclusion).
	MeasureFrom time.Duration
}

var (
	_ query.Sink = (*RootSink)(nil)
	_ Sink       = (*RootSink)(nil)
)

// Name implements Sink; the root recorder registers as SinkRoot.
func (s *RootSink) Name() string { return SinkRoot }

// NodeDone implements Sink. The root recorder observes only root-side
// report/interval hooks; per-node accounting flows to other sinks.
func (s *RootSink) NodeDone(NodeSummary) {}

// Finish implements Sink. The root recorder feeds the legacy Result
// fields (latency summaries, coverage) rather than emitting a record,
// so default runs serialize exactly as they did before the registry
// existed.
func (s *RootSink) Finish(RunMeta) *Record { return nil }

// NewRootSink creates a sink for the given query specs.
func NewRootSink(specs []query.Spec) *RootSink {
	s := &RootSink{queries: make(map[query.ID]*queryRec)}
	for _, spec := range specs {
		s.queries[spec.ID] = &queryRec{spec: spec, intervals: make(map[int]*intervalRec)}
	}
	return s
}

func (s *RootSink) rec(q query.ID, k int) (*queryRec, *intervalRec, bool) {
	qr, ok := s.queries[q]
	if !ok {
		return nil, nil, false
	}
	if qr.spec.IntervalStart(k) < s.MeasureFrom {
		return qr, nil, false
	}
	ir, ok := qr.intervals[k]
	if !ok {
		ir = &intervalRec{}
		qr.intervals[k] = ir
	}
	return qr, ir, true
}

// ReportArrived implements query.Sink.
func (s *RootSink) ReportArrived(q query.ID, k int, latency time.Duration, coverage int) {
	_, ir, ok := s.rec(q, k)
	if !ok {
		return
	}
	if latency > ir.lastArrival {
		ir.lastArrival = latency
	}
}

// IntervalClosed implements query.Sink.
func (s *RootSink) IntervalClosed(q query.ID, k int, latency time.Duration, coverage int) {
	_, ir, ok := s.rec(q, k)
	if !ok {
		return
	}
	ir.closed = true
	ir.coverage = coverage
}

// sortedQueries returns the query records in ID order, and forEach
// visits one query's intervals in index order. Aggregation must not
// follow map order: float accumulation and slice order would then vary
// between identical runs.
func (s *RootSink) sortedQueries() []*queryRec {
	out := make([]*queryRec, 0, len(s.queries))
	for _, qr := range s.queries {
		out = append(out, qr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].spec.ID < out[j].spec.ID })
	return out
}

func (qr *queryRec) forEach(fn func(*intervalRec)) {
	ks := make([]int, 0, len(qr.intervals))
	for k := range qr.intervals {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		fn(qr.intervals[k])
	}
}

// LatencyByClass returns per-interval completion latencies grouped by
// query class. Intervals with no arrivals at all (total data loss) are
// skipped.
func (s *RootSink) LatencyByClass() map[int][]time.Duration {
	out := make(map[int][]time.Duration)
	for _, qr := range s.sortedQueries() {
		qr := qr
		qr.forEach(func(ir *intervalRec) {
			if ir.lastArrival > 0 {
				out[qr.spec.Class] = append(out[qr.spec.Class], ir.lastArrival)
			}
		})
	}
	return out
}

// Latencies returns all per-interval completion latencies.
func (s *RootSink) Latencies() []time.Duration {
	var out []time.Duration
	for _, qr := range s.sortedQueries() {
		qr.forEach(func(ir *intervalRec) {
			if ir.lastArrival > 0 {
				out = append(out, ir.lastArrival)
			}
		})
	}
	return out
}

// MeanCoverage returns the average root coverage of closed intervals:
// how many source samples the root's aggregate folded in per interval.
func (s *RootSink) MeanCoverage() float64 {
	var w Welford
	for _, qr := range s.sortedQueries() {
		qr.forEach(func(ir *intervalRec) {
			if ir.closed {
				w.Add(float64(ir.coverage))
			}
		})
	}
	return w.Mean()
}

// ClosedIntervals returns the number of intervals the root closed.
func (s *RootSink) ClosedIntervals() int {
	n := 0
	for _, qr := range s.queries {
		for _, ir := range qr.intervals {
			if ir.closed {
				n++
			}
		}
	}
	return n
}
