// Package statstest holds the nearest-rank percentile test table shared
// by internal/stats and cmd/essat-load, so the engine's DurationStats
// and the load driver's report stay pinned to the same definition.
package statstest

import "time"

// PercentileCase is one nearest-rank expectation: Sorted must already be
// in ascending order, as both implementations require.
type PercentileCase struct {
	Name   string
	Sorted []time.Duration
	P      float64
	Want   time.Duration
}

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// PercentileCases covers the empty/single/clamp edges plus the N=2 P95
// regression: the old floor-index formula returned the minimum there.
var PercentileCases = []PercentileCase{
	{Name: "empty", Sorted: nil, P: 0.95, Want: 0},
	{Name: "single-p50", Sorted: []time.Duration{ms(7)}, P: 0.50, Want: ms(7)},
	{Name: "single-p95", Sorted: []time.Duration{ms(7)}, P: 0.95, Want: ms(7)},
	{Name: "two-p50", Sorted: []time.Duration{ms(10), ms(20)}, P: 0.50, Want: ms(10)},
	{Name: "two-p95-regression", Sorted: []time.Duration{ms(10), ms(20)}, P: 0.95, Want: ms(20)},
	{Name: "five-p25", Sorted: []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5)}, P: 0.25, Want: ms(2)},
	{Name: "five-p50", Sorted: []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5)}, P: 0.50, Want: ms(3)},
	{Name: "five-p95", Sorted: []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5)}, P: 0.95, Want: ms(5)},
	{Name: "clamp-low", Sorted: []time.Duration{ms(1), ms(2), ms(3)}, P: -0.5, Want: ms(1)},
	{Name: "p-zero", Sorted: []time.Duration{ms(1), ms(2), ms(3)}, P: 0, Want: ms(1)},
	{Name: "p-one", Sorted: []time.Duration{ms(1), ms(2), ms(3)}, P: 1, Want: ms(3)},
	{Name: "clamp-high", Sorted: []time.Duration{ms(1), ms(2), ms(3)}, P: 1.5, Want: ms(3)},
	{Name: "twenty-p95", Sorted: seq(20), P: 0.95, Want: ms(19)},
	{Name: "hundred-p95", Sorted: seq(100), P: 0.95, Want: ms(95)},
	{Name: "hundred-p99", Sorted: seq(100), P: 0.99, Want: ms(99)},
}

// seq returns [1ms, 2ms, ..., n ms].
func seq(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = ms(i + 1)
	}
	return out
}
