package stats

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/query"
)

func sinkSpecs() []query.Spec {
	return []query.Spec{
		{ID: 1, Period: time.Second, Phase: 0, Class: 1},
		{ID: 2, Period: 2 * time.Second, Phase: 500 * time.Millisecond, Class: 2},
	}
}

func TestRootSinkLatencyIsMaxArrival(t *testing.T) {
	s := NewRootSink(sinkSpecs())
	s.ReportArrived(1, 0, 30*time.Millisecond, 1)
	s.ReportArrived(1, 0, 80*time.Millisecond, 3)
	s.ReportArrived(1, 0, 50*time.Millisecond, 2)
	got := s.LatencyByClass()[1]
	if len(got) != 1 || got[0] != 80*time.Millisecond {
		t.Fatalf("latencies = %v, want [80ms] (max arrival)", got)
	}
}

func TestRootSinkGroupsByClass(t *testing.T) {
	s := NewRootSink(sinkSpecs())
	s.ReportArrived(1, 0, 10*time.Millisecond, 1)
	s.ReportArrived(2, 0, 20*time.Millisecond, 1)
	by := s.LatencyByClass()
	if len(by[1]) != 1 || len(by[2]) != 1 {
		t.Fatalf("by class = %v", by)
	}
	if got := len(s.Latencies()); got != 2 {
		t.Fatalf("Latencies() = %d entries, want 2", got)
	}
}

func TestRootSinkMeasureFromExcludesWarmup(t *testing.T) {
	s := NewRootSink(sinkSpecs())
	s.MeasureFrom = 5 * time.Second
	s.ReportArrived(1, 2, 40*time.Millisecond, 1) // interval start 2s < 5s
	s.ReportArrived(1, 7, 40*time.Millisecond, 1) // interval start 7s >= 5s
	if got := len(s.Latencies()); got != 1 {
		t.Fatalf("latencies = %d, want 1 (warm-up excluded)", got)
	}
}

func TestRootSinkCoverage(t *testing.T) {
	s := NewRootSink(sinkSpecs())
	s.IntervalClosed(1, 0, 100*time.Millisecond, 10)
	s.IntervalClosed(1, 1, 100*time.Millisecond, 20)
	if got := s.MeanCoverage(); got != 15 {
		t.Fatalf("MeanCoverage = %v, want 15", got)
	}
	if got := s.ClosedIntervals(); got != 2 {
		t.Fatalf("ClosedIntervals = %d, want 2", got)
	}
}

func TestRootSinkUnknownQueryIgnored(t *testing.T) {
	s := NewRootSink(sinkSpecs())
	s.ReportArrived(99, 0, time.Millisecond, 1)
	s.IntervalClosed(99, 0, time.Millisecond, 1)
	if len(s.Latencies()) != 0 || s.ClosedIntervals() != 0 {
		t.Fatal("unknown query leaked into metrics")
	}
}
