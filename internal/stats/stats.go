// Package stats provides the metric primitives the evaluation harness
// needs: streaming mean/variance, small-sample confidence intervals,
// duration histograms, and the root-side latency recorder.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Welford accumulates a streaming mean and variance.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// t90 holds two-sided 90% Student-t critical values by degrees of freedom
// (1-based index); beyond the table the normal value 1.645 applies.
var t90 = []float64{0, 6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
	1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725}

// CI90 returns the half-width of the two-sided 90% confidence interval of
// the mean, using Student's t for small samples. Zero with fewer than two
// samples.
func (w *Welford) CI90() float64 {
	if w.n < 2 {
		return 0
	}
	df := w.n - 1
	t := 1.645
	if df < len(t90) {
		t = t90[df]
	}
	return t * w.Std() / math.Sqrt(float64(w.n))
}

// Histogram counts durations in fixed-width bins [0,w), [w,2w), ...
type Histogram struct {
	binWidth time.Duration
	counts   []uint64
	total    uint64
	overflow uint64
}

// NewHistogram creates a histogram with the given bin width and bin
// count; values beyond the last bin are counted as overflow. Invalid
// shapes are errors, not panics, so histogram parameters wired from
// configuration surface as build failures instead of crashes.
func NewHistogram(binWidth time.Duration, bins int) (*Histogram, error) {
	if binWidth <= 0 || bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin width and count, got %v and %d", binWidth, bins)
	}
	return &Histogram{binWidth: binWidth, counts: make([]uint64, bins)}, nil
}

// Add records d. Negative durations count into the first bin.
func (h *Histogram) Add(d time.Duration) {
	h.total++
	if d < 0 {
		h.counts[0]++
		return
	}
	i := int(d / h.binWidth)
	if i >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[i]++
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []uint64 { return append([]uint64(nil), h.counts...) }

// BinWidth returns the bin width.
func (h *Histogram) BinWidth() time.Duration { return h.binWidth }

// Total returns the number of recorded values, including overflow.
func (h *Histogram) Total() uint64 { return h.total }

// Overflow returns the count of values beyond the last bin.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// FractionBelow returns the fraction of recorded values strictly below d,
// approximated at bin granularity (partial bins prorated linearly). The
// overflow bucket is an unbounded bin starting at the histogram range
// end: its values count in full once d clears the range (they cannot be
// prorated — only their lower bound is known), so the fraction is
// monotone in d and reaches 1.0 for thresholds beyond the range.
func (h *Histogram) FractionBelow(d time.Duration) float64 {
	if h.total == 0 {
		return 0
	}
	var below float64
	for i, c := range h.counts {
		lo := time.Duration(i) * h.binWidth
		hi := lo + h.binWidth
		switch {
		case hi <= d:
			below += float64(c)
		case lo < d:
			below += float64(c) * float64(d-lo) / float64(h.binWidth)
		}
	}
	if d > time.Duration(len(h.counts))*h.binWidth {
		below += float64(h.overflow)
	}
	return below / float64(h.total)
}

// DurationStats summarizes a set of durations.
type DurationStats struct {
	N    int
	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	Max  time.Duration
}

// SummarizeDurations computes summary statistics of ds (ds is not
// modified).
func SummarizeDurations(ds []time.Duration) DurationStats {
	if len(ds) == 0 {
		return DurationStats{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return DurationStats{
		N:    len(sorted),
		Mean: sum / time.Duration(len(sorted)),
		P50:  Percentile(sorted, 0.50),
		P95:  Percentile(sorted, 0.95),
		Max:  sorted[len(sorted)-1],
	}
}

// Percentile returns the nearest-rank p-th percentile of sorted
// (ascending) durations: the smallest element with at least ceil(p·n)
// values at or below it. Unlike a floor-index pick, nearest-rank never
// collapses the tail — P95 of two samples is the max, not the min. p is
// clamped to [0, 1]; an empty slice yields 0.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}
