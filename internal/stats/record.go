package stats

import (
	"errors"
	"fmt"
)

// SchemaVersion is the version stamped into every Record. Consumers
// (the campaign merger, external dashboards, the CI schema check)
// reject records from a different version instead of misreading them;
// bump it whenever a field changes meaning or shape.
const SchemaVersion = 1

// Record kinds: the payload shape a record carries.
const (
	// KindTimeseries carries per-node bucketed series (Series set).
	KindTimeseries = "timeseries"
	// KindHistogram carries one binned distribution (Histogram set).
	KindHistogram = "histogram"
	// KindEvents carries the raw observation stream (Events set).
	KindEvents = "events"
)

// Record is one metric sink's structured output for one run — the
// mergeable unit the server returns, the campaign journals, and the
// JSONL exporter writes one-per-line. Identity fields (Schema, Sink,
// Protocol, Seed) are stamped by the Fanout dispatcher; sinks fill only
// Kind and the payload matching it. Every field is deterministic for a
// given (spec, seed): no wall-clock content, and map keys marshal
// sorted, so records are byte-comparable across processes and worker
// counts.
type Record struct {
	Schema   int    `json:"schema"`
	Sink     string `json:"sink"`
	Kind     string `json:"kind"`
	Protocol string `json:"protocol,omitempty"`
	Seed     int64  `json:"seed,omitempty"`

	// Scalars holds named summary values (any kind may carry them).
	Scalars map[string]float64 `json:"scalars,omitempty"`
	// Series holds per-node bucketed time series (KindTimeseries).
	Series []Series `json:"series,omitempty"`
	// Histogram holds one binned distribution (KindHistogram).
	Histogram *HistogramRecord `json:"histogram,omitempty"`
	// Events holds the raw observation stream (KindEvents).
	Events []Event `json:"events,omitempty"`
}

// Series is one node's bucketed time series.
type Series struct {
	Node     int       `json:"node"`
	Rank     int       `json:"rank"`
	BucketMs float64   `json:"bucket_ms"`
	Values   []float64 `json:"values"`
}

// HistogramRecord is the serialized form of a binned distribution.
// Overflow counts values beyond the last bin; Counts plus Overflow must
// sum to Total.
type HistogramRecord struct {
	Unit     string   `json:"unit"`
	BinWidth float64  `json:"bin_width"`
	Counts   []uint64 `json:"counts"`
	Overflow uint64   `json:"overflow,omitempty"`
	Total    uint64   `json:"total"`
}

// Event kinds mirror the hook bus: report arrivals, interval closes,
// and per-node end-of-run summaries.
const (
	EventReport   = "report"
	EventInterval = "interval"
	EventNode     = "node"
)

// Event is one hook-bus observation. Which fields are meaningful
// depends on Kind: report/interval events carry query, interval,
// latency and coverage; node events carry node, rank, duty cycle and
// energy.
type Event struct {
	Kind      string  `json:"kind"`
	Query     int64   `json:"query,omitempty"`
	Interval  int     `json:"interval,omitempty"`
	LatencyNs int64   `json:"latency_ns,omitempty"`
	Coverage  int     `json:"coverage,omitempty"`
	Node      int     `json:"node,omitempty"`
	Rank      int     `json:"rank,omitempty"`
	DutyCycle float64 `json:"duty_cycle,omitempty"`
	EnergyJ   float64 `json:"energy_j,omitempty"`
}

// ValidateRecord checks a record against the versioned schema: correct
// schema version, named sink, a known kind, and a payload consistent
// with that kind. The CI exporter smoke runs every emitted record
// through this before accepting it.
func ValidateRecord(r *Record) error {
	if r == nil {
		return errors.New("stats: nil record")
	}
	if r.Schema != SchemaVersion {
		return fmt.Errorf("stats: record schema %d, want %d", r.Schema, SchemaVersion)
	}
	if r.Sink == "" {
		return errors.New("stats: record has no sink name")
	}
	switch r.Kind {
	case KindTimeseries:
		if r.Histogram != nil || r.Events != nil {
			return fmt.Errorf("stats: %s record from %q carries a foreign payload", r.Kind, r.Sink)
		}
		for i, s := range r.Series {
			if s.BucketMs <= 0 {
				return fmt.Errorf("stats: %s record from %q: series %d has bucket_ms %g", r.Kind, r.Sink, i, s.BucketMs)
			}
		}
	case KindHistogram:
		if r.Histogram == nil {
			return fmt.Errorf("stats: %s record from %q has no histogram", r.Kind, r.Sink)
		}
		if r.Series != nil || r.Events != nil {
			return fmt.Errorf("stats: %s record from %q carries a foreign payload", r.Kind, r.Sink)
		}
		h := r.Histogram
		if h.BinWidth <= 0 {
			return fmt.Errorf("stats: %s record from %q: bin width %g", r.Kind, r.Sink, h.BinWidth)
		}
		var sum uint64
		for _, c := range h.Counts {
			sum += c
		}
		if sum+h.Overflow != h.Total {
			return fmt.Errorf("stats: %s record from %q: counts %d + overflow %d != total %d",
				r.Kind, r.Sink, sum, h.Overflow, h.Total)
		}
	case KindEvents:
		if r.Series != nil || r.Histogram != nil {
			return fmt.Errorf("stats: %s record from %q carries a foreign payload", r.Kind, r.Sink)
		}
		for i, e := range r.Events {
			switch e.Kind {
			case EventReport, EventInterval, EventNode:
			default:
				return fmt.Errorf("stats: %s record from %q: event %d has unknown kind %q", r.Kind, r.Sink, i, e.Kind)
			}
		}
	default:
		return fmt.Errorf("stats: record from %q has unknown kind %q", r.Sink, r.Kind)
	}
	return nil
}
