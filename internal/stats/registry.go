package stats

import (
	"fmt"
	"time"

	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/registry"
)

// Registered sink names, in rank order.
const (
	// SinkRoot is the always-on latency/coverage recorder feeding the
	// legacy Result fields.
	SinkRoot = "root"
	// SinkTimeseries emits per-node radio awake-fraction series.
	SinkTimeseries = "timeseries"
	// SinkEnergy emits an energy histogram plus lifetime scalars.
	SinkEnergy = "energy"
	// SinkJSONL captures the raw observation stream for line-oriented
	// export.
	SinkJSONL = "jsonl"
)

// Sink is a streaming metric observer. Sinks subscribe to the same
// hook bus the invariant auditor uses — report arrivals and interval
// closes at the root, radio state transitions (via the optional
// RadioObserver interface), and per-node energy accounting at collect
// time — and must be pure observers: they may not influence the
// simulation, so trace digests are identical with any sink set.
//
// Hook order is deterministic: ReportArrived/IntervalClosed follow the
// engine's event order, NodeDone is called once per live member in
// node-ID order, and Finish runs last, once.
type Sink interface {
	// Name returns the sink's registered name.
	Name() string
	// ReportArrived observes one report reaching the root.
	ReportArrived(q query.ID, interval int, latency time.Duration, coverage int)
	// IntervalClosed observes the root closing a query interval.
	IntervalClosed(q query.ID, interval int, latency time.Duration, coverage int)
	// NodeDone observes one node's end-of-run summary.
	NodeDone(n NodeSummary)
	// Finish produces the sink's record, or nil for sinks that feed
	// results through another channel (the root recorder).
	Finish(m RunMeta) *Record
}

// RadioObserver is implemented by sinks that want per-transition radio
// state changes. Radios are only subscribed when at least one
// configured sink implements it, so default runs pay nothing.
type RadioObserver interface {
	RadioChanged(node int, from, to radio.State, at time.Duration)
}

// NodeSummary is one node's end-of-run accounting, as computed by
// Sim.Collect over the measurement window.
type NodeSummary struct {
	Node    int
	Rank    int
	Duty    float64
	EnergyJ float64
}

// RunMeta identifies the finished run a record describes.
type RunMeta struct {
	Protocol    string
	Seed        int64
	Duration    time.Duration
	MeasureFrom time.Duration
	TreeSize    int
}

// SinkConfig is everything a builder needs to construct a sink for one
// run. Params carries the sink-specific knobs from the spec's results
// block; builders must reject unknown keys and invalid values so typos
// fail the spec compile, not the run.
type SinkConfig struct {
	Queries     []query.Spec
	Duration    time.Duration
	MeasureFrom time.Duration
	Params      map[string]float64
}

// SinkBuilder constructs a sink for one run.
type SinkBuilder func(cfg SinkConfig) (Sink, error)

var sinks = registry.New[string, SinkBuilder]("metric sink")

// RegisterSink registers a sink builder under name. Rank orders listing
// output; registration panics on duplicates (miswired init).
func RegisterSink(name string, rank int, b SinkBuilder) { sinks.Register(name, rank, b) }

// LookupSink returns the builder registered under name.
func LookupSink(name string) (SinkBuilder, bool) { return sinks.Lookup(name) }

// SinkNames lists registered sinks in rank order.
func SinkNames() []string { return sinks.Names() }

// NewSink builds the named sink, or an error naming the registered
// sinks for an unknown name.
func NewSink(name string, cfg SinkConfig) (Sink, error) {
	b, ok := sinks.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("stats: unknown metric sink %q (registered: %v)", name, SinkNames())
	}
	return b(cfg)
}

// checkParams rejects parameter keys a sink does not understand.
func checkParams(sink string, params map[string]float64, known ...string) error {
	for k := range params {
		ok := false
		for _, kk := range known {
			if k == kk {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("stats: sink %q: unknown param %q (known: %v)", sink, k, known)
		}
	}
	return nil
}

// Fanout dispatches each hook to every configured sink in configuration
// order — the one ordering that is fixed by the spec, so exporter
// output is byte-identical regardless of how many workers share the
// process. It implements query.Sink so the root node's report/interval
// hooks reach all sinks through the same wrapper chain the auditor
// taps.
type Fanout struct {
	sinks []Sink
	radio []RadioObserver
}

var _ query.Sink = (*Fanout)(nil)

// NewFanout builds a dispatcher over sinks, collecting the subset that
// wants radio transitions.
func NewFanout(s ...Sink) *Fanout {
	f := &Fanout{sinks: s}
	for _, sk := range s {
		if ro, ok := sk.(RadioObserver); ok {
			f.radio = append(f.radio, ro)
		}
	}
	return f
}

// ReportArrived implements query.Sink.
func (f *Fanout) ReportArrived(q query.ID, k int, latency time.Duration, coverage int) {
	for _, s := range f.sinks {
		s.ReportArrived(q, k, latency, coverage)
	}
}

// IntervalClosed implements query.Sink.
func (f *Fanout) IntervalClosed(q query.ID, k int, latency time.Duration, coverage int) {
	for _, s := range f.sinks {
		s.IntervalClosed(q, k, latency, coverage)
	}
}

// NodeDone forwards one node's end-of-run summary to every sink.
func (f *Fanout) NodeDone(n NodeSummary) {
	for _, s := range f.sinks {
		s.NodeDone(n)
	}
}

// RadioChanged forwards a radio transition to the sinks that observe
// them.
func (f *Fanout) RadioChanged(node int, from, to radio.State, at time.Duration) {
	for _, o := range f.radio {
		o.RadioChanged(node, from, to, at)
	}
}

// WantsRadio reports whether any configured sink observes radio
// transitions; Build skips radio subscriptions entirely when not.
func (f *Fanout) WantsRadio() bool { return len(f.radio) > 0 }

// Records finishes every sink in configuration order and returns the
// non-nil records, stamping the identity fields so sinks only fill
// payloads.
func (f *Fanout) Records(m RunMeta) []Record {
	var out []Record
	for _, s := range f.sinks {
		rec := s.Finish(m)
		if rec == nil {
			continue
		}
		rec.Schema = SchemaVersion
		rec.Sink = s.Name()
		rec.Protocol = m.Protocol
		rec.Seed = m.Seed
		out = append(out, *rec)
	}
	return out
}
