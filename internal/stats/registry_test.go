package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
)

func TestSinkNamesRankOrder(t *testing.T) {
	want := []string{SinkRoot, SinkTimeseries, SinkEnergy, SinkJSONL}
	if got := SinkNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SinkNames() = %v, want %v", got, want)
	}
}

func TestNewSinkUnknownNameListsRegistry(t *testing.T) {
	_, err := NewSink("flamegraph", SinkConfig{Duration: time.Second})
	if err == nil {
		t.Fatal("unknown sink accepted")
	}
	for _, name := range SinkNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered sink %q", err, name)
		}
	}
}

func TestSinkParamValidation(t *testing.T) {
	cases := []struct {
		name   string
		sink   string
		params map[string]float64
		ok     bool
	}{
		{"root-rejects-params", SinkRoot, map[string]float64{"bucket_ms": 100}, false},
		{"jsonl-rejects-params", SinkJSONL, map[string]float64{"x": 1}, false},
		{"timeseries-default", SinkTimeseries, nil, true},
		{"timeseries-valid-bucket", SinkTimeseries, map[string]float64{"bucket_ms": 250}, true},
		{"timeseries-zero-bucket", SinkTimeseries, map[string]float64{"bucket_ms": 0}, false},
		{"timeseries-negative-bucket", SinkTimeseries, map[string]float64{"bucket_ms": -5}, false},
		{"timeseries-nan-bucket", SinkTimeseries, map[string]float64{"bucket_ms": math.NaN()}, false},
		{"timeseries-unknown-key", SinkTimeseries, map[string]float64{"bucketms": 100}, false},
		{"energy-valid", SinkEnergy, map[string]float64{"bin_j": 0.5, "bins": 10}, true},
		{"energy-fractional-bins", SinkEnergy, map[string]float64{"bins": 2.5}, false},
		{"energy-zero-bins", SinkEnergy, map[string]float64{"bins": 0}, false},
		{"energy-huge-bins", SinkEnergy, map[string]float64{"bins": 1 << 30}, false},
		{"energy-negative-bin-width", SinkEnergy, map[string]float64{"bin_j": -1}, false},
	}
	for _, c := range cases {
		_, err := NewSink(c.sink, SinkConfig{Duration: time.Second, Params: c.params})
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid params accepted", c.name)
		}
	}
}

// feedScript drives a fixed observation sequence through a fanout: two
// report/interval pairs, a sleep/wake radio cycle on node 1, and three
// node summaries.
func feedScript(f *Fanout) {
	f.ReportArrived(query.ID(3), 0, 12*time.Millisecond, 7)
	f.IntervalClosed(query.ID(3), 0, 15*time.Millisecond, 9)
	f.RadioChanged(1, radio.Idle, radio.Off, 400*time.Millisecond)
	f.RadioChanged(1, radio.Off, radio.Idle, 1200*time.Millisecond)
	f.ReportArrived(query.ID(5), 1, 8*time.Millisecond, 4)
	f.IntervalClosed(query.ID(5), 1, 9*time.Millisecond, 4)
	f.NodeDone(NodeSummary{Node: 0, Rank: 2, Duty: 0.9, EnergyJ: 1.5})
	f.NodeDone(NodeSummary{Node: 1, Rank: 1, Duty: 0.4, EnergyJ: 0.6})
	f.NodeDone(NodeSummary{Node: 2, Rank: 0, Duty: 0.1, EnergyJ: 30})
}

func buildFanout(t *testing.T) *Fanout {
	t.Helper()
	cfg := SinkConfig{Duration: 2 * time.Second, MeasureFrom: 0}
	var obs []Sink
	for _, name := range []string{SinkTimeseries, SinkEnergy, SinkJSONL} {
		s, err := NewSink(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, s)
	}
	return NewFanout(obs...)
}

// Fanout must emit records in configuration order, stamp identity
// fields, and be byte-deterministic across identical runs.
func TestFanoutDeterministicRecords(t *testing.T) {
	meta := RunMeta{Protocol: "DTS-SS", Seed: 42, Duration: 2 * time.Second, TreeSize: 3}
	marshal := func() []byte {
		f := buildFanout(t)
		if !f.WantsRadio() {
			t.Fatal("timeseries sink should register as a RadioObserver")
		}
		feedScript(f)
		recs := f.Records(meta)
		if len(recs) != 3 {
			t.Fatalf("got %d records, want 3", len(recs))
		}
		order := []string{SinkTimeseries, SinkEnergy, SinkJSONL}
		for i, r := range recs {
			if r.Sink != order[i] {
				t.Fatalf("record %d from sink %q, want %q (configuration order)", i, r.Sink, order[i])
			}
			if r.Schema != SchemaVersion || r.Protocol != "DTS-SS" || r.Seed != 42 {
				t.Fatalf("record %d identity = %+v", i, r)
			}
			if err := ValidateRecord(&r); err != nil {
				t.Fatalf("record %d invalid: %v", i, err)
			}
		}
		b, err := json.Marshal(recs)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := marshal(), marshal()
	if string(a) != string(b) {
		t.Fatalf("identical runs marshaled differently:\n%s\n%s", a, b)
	}
}

func TestJSONLSinkCapturesStream(t *testing.T) {
	s, err := NewSink(SinkJSONL, SinkConfig{Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFanout(s)
	feedScript(f)
	rec := s.Finish(RunMeta{})
	if rec.Kind != KindEvents {
		t.Fatalf("kind = %q", rec.Kind)
	}
	// Radio transitions are not events — only report/interval/node hooks
	// are captured: 2 reports + 2 closes + 3 summaries.
	if len(rec.Events) != 7 {
		t.Fatalf("got %d events, want 7", len(rec.Events))
	}
	if rec.Scalars["events"] != 7 {
		t.Fatalf("events scalar = %v, want 7", rec.Scalars["events"])
	}
	first := rec.Events[0]
	if first.Kind != EventReport || first.Query != 3 || first.Interval != 0 ||
		first.LatencyNs != (12*time.Millisecond).Nanoseconds() || first.Coverage != 7 {
		t.Fatalf("first event = %+v", first)
	}
	last := rec.Events[6]
	if last.Kind != EventNode || last.Node != 2 || last.Rank != 0 || last.EnergyJ != 30 {
		t.Fatalf("last event = %+v", last)
	}
}

func TestEnergySinkHistogram(t *testing.T) {
	s, err := NewSink(SinkEnergy, SinkConfig{
		Duration: 10 * time.Second, MeasureFrom: 2 * time.Second,
		Params: map[string]float64{"bin_j": 1, "bins": 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []float64{0.5, 1.5, 1.6, 3.2, 10} { // bins 0,1,1,3 + overflow
		s.NodeDone(NodeSummary{EnergyJ: e})
	}
	rec := s.Finish(RunMeta{})
	if rec.Kind != KindHistogram {
		t.Fatalf("kind = %q", rec.Kind)
	}
	h := rec.Histogram
	if !reflect.DeepEqual(h.Counts, []uint64{1, 2, 0, 1}) || h.Overflow != 1 || h.Total != 5 {
		t.Fatalf("histogram = %+v", h)
	}
	// Finish leaves identity fields to the fanout; stamp them so the
	// payload can be schema-checked.
	rec.Schema, rec.Sink = SchemaVersion, SinkEnergy
	if err := ValidateRecord(rec); err != nil {
		t.Fatal(err)
	}
	if rec.Scalars["nodes"] != 5 || rec.Scalars["max_j"] != 10 {
		t.Fatalf("scalars = %v", rec.Scalars)
	}
	// 20 kJ battery at 10 J over an 8 s measurement window.
	wantDays := 20_000.0 / (10.0 / 8.0) / 86_400
	if math.Abs(rec.Scalars["lifetime_days"]-wantDays) > 1e-9 {
		t.Fatalf("lifetime_days = %v, want %v", rec.Scalars["lifetime_days"], wantDays)
	}
}

// A node awake for [0,400ms) and [1200ms,2s) with 1 s buckets over a
// 2 s run has awake fractions 0.4 and 0.8.
func TestTimeseriesBucketing(t *testing.T) {
	f := func() (*Fanout, Sink) {
		s, err := NewSink(SinkTimeseries, SinkConfig{Duration: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return NewFanout(s), s
	}
	fan, s := f()
	feedScript(fan)
	rec := s.Finish(RunMeta{})
	if rec.Kind != KindTimeseries || len(rec.Series) != 3 {
		t.Fatalf("record = %+v", rec)
	}
	sleeper := rec.Series[1]
	if sleeper.Node != 1 || sleeper.Rank != 1 || sleeper.BucketMs != 1000 {
		t.Fatalf("series[1] = %+v", sleeper)
	}
	want := []float64{0.4, 0.8}
	if len(sleeper.Values) != 2 || math.Abs(sleeper.Values[0]-want[0]) > 1e-9 ||
		math.Abs(sleeper.Values[1]-want[1]) > 1e-9 {
		t.Fatalf("node 1 awake fractions = %v, want %v", sleeper.Values, want)
	}
	// Nodes with no transitions are awake throughout.
	for _, i := range []int{0, 2} {
		for _, v := range rec.Series[i].Values {
			if v != 1.0 {
				t.Fatalf("series[%d] values = %v, want all 1.0", i, rec.Series[i].Values)
			}
		}
	}
}

// A partial final bucket normalizes by its real width, not the bucket
// width, so an always-awake node still reads 1.0 there.
func TestTimeseriesPartialFinalBucket(t *testing.T) {
	s, err := NewSink(SinkTimeseries, SinkConfig{
		Duration: 2500 * time.Millisecond,
		Params:   map[string]float64{"bucket_ms": 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.NodeDone(NodeSummary{Node: 4, Rank: 1})
	rec := s.Finish(RunMeta{})
	vals := rec.Series[0].Values
	if len(vals) != 3 {
		t.Fatalf("values = %v, want 3 buckets", vals)
	}
	for i, v := range vals {
		if math.Abs(v-1.0) > 1e-9 {
			t.Fatalf("bucket %d = %v, want 1.0", i, v)
		}
	}
}

func TestValidateRecord(t *testing.T) {
	valid := func() *Record {
		return &Record{
			Schema: SchemaVersion, Sink: SinkEnergy, Kind: KindHistogram,
			Histogram: &HistogramRecord{Unit: "J", BinWidth: 1, Counts: []uint64{2, 1}, Overflow: 1, Total: 4},
		}
	}
	if err := ValidateRecord(valid()); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Record)
	}{
		{"bad-schema", func(r *Record) { r.Schema = 99 }},
		{"empty-sink", func(r *Record) { r.Sink = "" }},
		{"unknown-kind", func(r *Record) { r.Kind = "scatter" }},
		{"count-mismatch", func(r *Record) { r.Histogram.Total = 7 }},
		{"foreign-payload", func(r *Record) { r.Events = []Event{{Kind: EventReport}} }},
		{"missing-payload", func(r *Record) { r.Histogram = nil }},
	}
	for _, c := range cases {
		r := valid()
		c.mut(r)
		if err := ValidateRecord(r); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	bad := &Record{Schema: SchemaVersion, Sink: SinkTimeseries, Kind: KindTimeseries,
		Series: []Series{{BucketMs: 0, Values: []float64{1}}}}
	if err := ValidateRecord(bad); err == nil {
		t.Error("zero bucket_ms series accepted")
	}
	badEv := &Record{Schema: SchemaVersion, Sink: SinkJSONL, Kind: KindEvents,
		Events: []Event{{Kind: "teleport"}}}
	if err := ValidateRecord(badEv); err == nil {
		t.Error("unknown event kind accepted")
	}
}
