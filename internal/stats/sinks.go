package stats

import (
	"fmt"
	"math"
	"time"

	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
)

func init() {
	RegisterSink(SinkRoot, 0, func(cfg SinkConfig) (Sink, error) {
		if err := checkParams(SinkRoot, cfg.Params); err != nil {
			return nil, err
		}
		s := NewRootSink(cfg.Queries)
		s.MeasureFrom = cfg.MeasureFrom
		return s, nil
	})
	RegisterSink(SinkTimeseries, 1, newTimeseriesSink)
	RegisterSink(SinkEnergy, 2, newEnergySink)
	RegisterSink(SinkJSONL, 3, newJSONLSink)
}

// timeseriesSink integrates each node's radio awake time into
// fixed-width buckets and emits one awake-fraction series per live
// member. Series cover nodes that reach end-of-run accounting: a node
// killed mid-run never gets a NodeDone and is omitted.
type timeseriesSink struct {
	bucket   time.Duration
	duration time.Duration
	nodes    map[int]*nodeTimeline
	series   []Series
}

// nodeTimeline is one node's awake-time integration state. Radios start
// Idle at time zero, so a node is awake until its first observed
// transition says otherwise.
type nodeTimeline struct {
	lastAt  time.Duration
	awake   bool
	buckets []time.Duration // awake time accumulated per bucket
}

func newTimeseriesSink(cfg SinkConfig) (Sink, error) {
	if err := checkParams(SinkTimeseries, cfg.Params, "bucket_ms"); err != nil {
		return nil, err
	}
	bucket := time.Second
	if v, ok := cfg.Params["bucket_ms"]; ok {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("stats: sink %q: bucket_ms must be positive, got %g", SinkTimeseries, v)
		}
		bucket = time.Duration(v * float64(time.Millisecond))
	}
	return &timeseriesSink{bucket: bucket, duration: cfg.Duration, nodes: make(map[int]*nodeTimeline)}, nil
}

func (t *timeseriesSink) Name() string { return SinkTimeseries }

func (t *timeseriesSink) ReportArrived(q query.ID, k int, latency time.Duration, coverage int)  {}
func (t *timeseriesSink) IntervalClosed(q query.ID, k int, latency time.Duration, coverage int) {}

// RadioChanged implements RadioObserver.
func (t *timeseriesSink) RadioChanged(node int, from, to radio.State, at time.Duration) {
	tl := t.timeline(node)
	tl.advance(t.bucket, at)
	tl.awake = to != radio.Off
}

func (t *timeseriesSink) timeline(node int) *nodeTimeline {
	tl, ok := t.nodes[node]
	if !ok {
		tl = &nodeTimeline{awake: true}
		t.nodes[node] = tl
	}
	return tl
}

// advance integrates awake time from the last observation up to now,
// splitting across bucket boundaries. Buckets grow on demand so the
// sink needs no up-front duration.
func (tl *nodeTimeline) advance(bucket, now time.Duration) {
	if now < tl.lastAt {
		now = tl.lastAt
	}
	if tl.awake {
		for at := tl.lastAt; at < now; {
			i := int(at / bucket)
			end := time.Duration(i+1) * bucket
			if end > now {
				end = now
			}
			for len(tl.buckets) <= i {
				tl.buckets = append(tl.buckets, 0)
			}
			tl.buckets[i] += end - at
			at = end
		}
	}
	tl.lastAt = now
}

// NodeDone finalizes the node's timeline to the run duration and emits
// its series. Collect calls this in node-ID order, so series order is
// deterministic.
func (t *timeseriesSink) NodeDone(n NodeSummary) {
	tl := t.timeline(n.Node)
	tl.advance(t.bucket, t.duration)
	want := 0
	if t.duration > 0 {
		want = int((t.duration + t.bucket - 1) / t.bucket)
	}
	for len(tl.buckets) < want {
		tl.buckets = append(tl.buckets, 0)
	}
	values := make([]float64, len(tl.buckets))
	for i, a := range tl.buckets {
		w := t.bucket
		if end := time.Duration(i+1) * t.bucket; t.duration > 0 && end > t.duration {
			w = t.duration - time.Duration(i)*t.bucket // final partial bucket
		}
		if w > 0 {
			values[i] = float64(a) / float64(w)
		}
	}
	t.series = append(t.series, Series{
		Node:     n.Node,
		Rank:     n.Rank,
		BucketMs: float64(t.bucket) / float64(time.Millisecond),
		Values:   values,
	})
}

func (t *timeseriesSink) Finish(m RunMeta) *Record {
	return &Record{Kind: KindTimeseries, Series: t.series}
}

// energySink bins per-node energy consumption over the measurement
// window into a histogram and derives the lifetime scalars Collect
// computes for the legacy aggregate, so campaign dashboards get the
// full distribution rather than mean/max alone.
type energySink struct {
	binJ     float64
	counts   []uint64
	overflow uint64
	total    uint64
	window   time.Duration
	mean     Welford
	maxJ     float64
}

func newEnergySink(cfg SinkConfig) (Sink, error) {
	if err := checkParams(SinkEnergy, cfg.Params, "bin_j", "bins"); err != nil {
		return nil, err
	}
	binJ, bins := 0.25, 40
	if v, ok := cfg.Params["bin_j"]; ok {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("stats: sink %q: bin_j must be positive, got %g", SinkEnergy, v)
		}
		binJ = v
	}
	if v, ok := cfg.Params["bins"]; ok {
		if v < 1 || v != math.Trunc(v) || v > 1<<20 {
			return nil, fmt.Errorf("stats: sink %q: bins must be a positive integer, got %g", SinkEnergy, v)
		}
		bins = int(v)
	}
	window := cfg.Duration - cfg.MeasureFrom
	if window < 0 {
		window = 0
	}
	return &energySink{binJ: binJ, counts: make([]uint64, bins), window: window}, nil
}

func (e *energySink) Name() string { return SinkEnergy }

func (e *energySink) ReportArrived(q query.ID, k int, latency time.Duration, coverage int)  {}
func (e *energySink) IntervalClosed(q query.ID, k int, latency time.Duration, coverage int) {}

func (e *energySink) NodeDone(n NodeSummary) {
	e.total++
	e.mean.Add(n.EnergyJ)
	if n.EnergyJ > e.maxJ {
		e.maxJ = n.EnergyJ
	}
	i := 0
	if n.EnergyJ > 0 {
		i = int(n.EnergyJ / e.binJ)
	}
	if i >= len(e.counts) {
		e.overflow++
		return
	}
	e.counts[i]++
}

func (e *energySink) Finish(m RunMeta) *Record {
	scalars := map[string]float64{
		"nodes":  float64(e.total),
		"mean_j": e.mean.Mean(),
		"max_j":  e.maxJ,
	}
	// Same lifetime model as Collect: a 20 kJ battery drained at the
	// worst node's average draw over the measurement window.
	if e.maxJ > 0 && e.window > 0 {
		const batteryJ = 20_000.0
		draw := e.maxJ / e.window.Seconds()
		scalars["lifetime_days"] = batteryJ / draw / 86_400
	}
	return &Record{
		Kind:    KindHistogram,
		Scalars: scalars,
		Histogram: &HistogramRecord{
			Unit:     "J",
			BinWidth: e.binJ,
			Counts:   append([]uint64(nil), e.counts...),
			Overflow: e.overflow,
			Total:    e.total,
		},
	}
}

// jsonlSink captures every hook-bus observation verbatim, in arrival
// order — the raw stream downstream tooling can re-aggregate any way it
// likes. Event order is the engine's deterministic event order followed
// by node-ID-ordered summaries, so the marshaled record is
// byte-identical across processes and worker counts.
type jsonlSink struct {
	events []Event
}

func newJSONLSink(cfg SinkConfig) (Sink, error) {
	if err := checkParams(SinkJSONL, cfg.Params); err != nil {
		return nil, err
	}
	return &jsonlSink{}, nil
}

func (j *jsonlSink) Name() string { return SinkJSONL }

func (j *jsonlSink) ReportArrived(q query.ID, k int, latency time.Duration, coverage int) {
	j.events = append(j.events, Event{
		Kind: EventReport, Query: int64(q), Interval: k,
		LatencyNs: latency.Nanoseconds(), Coverage: coverage,
	})
}

func (j *jsonlSink) IntervalClosed(q query.ID, k int, latency time.Duration, coverage int) {
	j.events = append(j.events, Event{
		Kind: EventInterval, Query: int64(q), Interval: k,
		LatencyNs: latency.Nanoseconds(), Coverage: coverage,
	})
}

func (j *jsonlSink) NodeDone(n NodeSummary) {
	j.events = append(j.events, Event{
		Kind: EventNode, Node: n.Node, Rank: n.Rank,
		DutyCycle: n.Duty, EnergyJ: n.EnergyJ,
	})
}

func (j *jsonlSink) Finish(m RunMeta) *Record {
	return &Record{
		Kind:    KindEvents,
		Scalars: map[string]float64{"events": float64(len(j.events))},
		Events:  j.events,
	}
}
