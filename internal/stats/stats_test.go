package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/essat/essat/internal/stats/statstest"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.CI90() != 0 {
		t.Fatal("zero-value Welford should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v, want %v", w.Var(), 32.0/7.0)
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(50)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 100
			w.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		directVar := ss / float64(n-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Var()-directVar) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCI90SmallSample(t *testing.T) {
	var w Welford
	for _, x := range []float64{10, 12, 14, 16, 18} {
		w.Add(x)
	}
	// n=5, df=4, t=2.132; s = sqrt(10); CI = 2.132*sqrt(10)/sqrt(5).
	want := 2.132 * math.Sqrt(10) / math.Sqrt(5)
	if math.Abs(w.CI90()-want) > 1e-9 {
		t.Fatalf("CI90 = %v, want %v", w.CI90(), want)
	}
}

func TestCI90LargeSampleUsesNormal(t *testing.T) {
	var w Welford
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		w.Add(rng.Float64())
	}
	want := 1.645 * w.Std() / math.Sqrt(1000)
	if math.Abs(w.CI90()-want) > 1e-12 {
		t.Fatalf("CI90 = %v, want normal-based %v", w.CI90(), want)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(25*time.Millisecond, 8)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(10 * time.Millisecond)  // bin 0
	h.Add(25 * time.Millisecond)  // bin 1 (boundary goes up)
	h.Add(70 * time.Millisecond)  // bin 2
	h.Add(300 * time.Millisecond) // overflow
	h.Add(-time.Millisecond)      // clamped to bin 0

	counts := h.Counts()
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if h.Overflow() != 1 {
		t.Fatalf("Overflow = %d, want 1", h.Overflow())
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h, err := NewHistogram(10*time.Millisecond, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Add(time.Duration(i*10+5) * time.Millisecond) // one per bin
	}
	if got := h.FractionBelow(50 * time.Millisecond); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("FractionBelow(50ms) = %v, want 0.5", got)
	}
	// Partial bin prorated: 25ms covers bins 0,1 fully... bin 0 and half
	// of bin 1 and beyond: 1 + 0.5 of bin 2? 25ms = bin 0 (0-10), bin 1
	// (10-20), half of bin 2 (20-30): (1 + 1 + 0.5)/10.
	if got := h.FractionBelow(25 * time.Millisecond); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("FractionBelow(25ms) = %v, want 0.25", got)
	}
	if got := h.FractionBelow(0); got != 0 {
		t.Fatalf("FractionBelow(0) = %v, want 0", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 5); err == nil {
		t.Error("invalid histogram accepted")
	}
	if _, err := NewHistogram(time.Millisecond, 0); err == nil {
		t.Error("zero-bin histogram accepted")
	}
}

func TestSummarizeDurations(t *testing.T) {
	ds := []time.Duration{
		5 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond,
		2 * time.Millisecond, 4 * time.Millisecond,
	}
	s := SummarizeDurations(ds)
	if s.N != 5 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 3*time.Millisecond {
		t.Fatalf("Mean = %v, want 3ms", s.Mean)
	}
	if s.P50 != 3*time.Millisecond {
		t.Fatalf("P50 = %v, want 3ms", s.P50)
	}
	if s.Max != 5*time.Millisecond {
		t.Fatalf("Max = %v, want 5ms", s.Max)
	}
	// Input must not be reordered.
	if ds[0] != 5*time.Millisecond {
		t.Fatal("SummarizeDurations mutated its input")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := SummarizeDurations(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

// Regression: FractionBelow ignored the overflow bin entirely, so a
// histogram with any overflowed samples could never report 1.0 and a
// threshold past the binned range undercounted by overflow/total.
func TestFractionBelowCountsOverflow(t *testing.T) {
	h, err := NewHistogram(10*time.Millisecond, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		h.Add(time.Duration(i*10+5) * time.Millisecond) // bins 0..4
	}
	for i := 0; i < 5; i++ {
		h.Add(500 * time.Millisecond) // overflow
	}
	// Within the binned range overflow must not leak in.
	if got := h.FractionBelow(50 * time.Millisecond); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("FractionBelow(50ms) = %v, want 0.5", got)
	}
	// At exactly the range end the unbounded overflow bin has zero
	// width covered, so it still contributes nothing.
	if got := h.FractionBelow(100 * time.Millisecond); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("FractionBelow(100ms) = %v, want 0.5", got)
	}
	// Past the range end overflow counts in full: the fraction reaches 1.
	if got := h.FractionBelow(101 * time.Millisecond); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("FractionBelow(101ms) = %v, want 1.0", got)
	}
	if got := h.FractionBelow(time.Hour); got != 1.0 {
		t.Fatalf("FractionBelow(1h) = %v, want 1.0", got)
	}
}

func TestFractionBelowAllOverflow(t *testing.T) {
	h, err := NewHistogram(time.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		h.Add(time.Second)
	}
	if got := h.FractionBelow(4 * time.Millisecond); got != 0 {
		t.Fatalf("FractionBelow(range end) = %v, want 0", got)
	}
	if got := h.FractionBelow(5 * time.Millisecond); got != 1.0 {
		t.Fatalf("FractionBelow(past range) = %v, want 1.0", got)
	}
}

// FractionBelow must be monotone non-decreasing in the threshold even
// across the binned-range boundary where overflow starts counting.
func TestFractionBelowMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h, err := NewHistogram(5*time.Millisecond, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		h.Add(time.Duration(rng.Intn(200)) * time.Millisecond)
	}
	prev := -1.0
	for d := time.Duration(0); d <= 250*time.Millisecond; d += time.Millisecond {
		got := h.FractionBelow(d)
		if got < prev-1e-12 {
			t.Fatalf("FractionBelow not monotone at %v: %v < %v", d, got, prev)
		}
		prev = got
	}
	if prev != 1.0 {
		t.Fatalf("FractionBelow beyond all samples = %v, want 1.0", prev)
	}
}

// TestPercentileNearestRank pins Percentile to the shared table; the
// essat-load driver runs the same cases against its report helper.
func TestPercentileNearestRank(t *testing.T) {
	for _, c := range statstest.PercentileCases {
		if got := Percentile(c.Sorted, c.P); got != c.Want {
			t.Errorf("%s: Percentile(p=%g) = %v, want %v", c.Name, c.P, got, c.Want)
		}
	}
}

// Regression: the old floor-index formula made P95 of a two-sample set
// equal its minimum.
func TestSummarizeDurationsTwoSampleP95(t *testing.T) {
	s := SummarizeDurations([]time.Duration{20 * time.Millisecond, 10 * time.Millisecond})
	if s.P95 != 20*time.Millisecond {
		t.Fatalf("P95 = %v, want 20ms (nearest-rank)", s.P95)
	}
	if s.P50 != 10*time.Millisecond {
		t.Fatalf("P50 = %v, want 10ms", s.P50)
	}
}
