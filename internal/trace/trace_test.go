package trace

import (
	"strings"
	"testing"
	"time"
)

func fixedClock(at *time.Duration) func() time.Duration {
	return func() time.Duration { return *at }
}

func TestDisabledTracerIsNoOp(t *testing.T) {
	var nilTracer *Tracer
	nilTracer.Record(1, RadioSleep, "")
	if nilTracer.Enabled() || nilTracer.Total() != 0 || nilTracer.Events() != nil {
		t.Fatal("nil tracer should be fully inert")
	}
	zero := &Tracer{}
	zero.Record(1, RadioSleep, "")
	if zero.Enabled() || zero.Total() != 0 {
		t.Fatal("zero-value tracer should be disabled")
	}
}

func TestRecordAndEvents(t *testing.T) {
	at := time.Duration(0)
	tr := New(10, fixedClock(&at))
	at = time.Second
	tr.Record(3, RadioSleep, "")
	at = 2 * time.Second
	tr.Recordf(4, PhaseShift, "s(k+1)=%v", 2500*time.Millisecond)

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Kind != RadioSleep || evs[0].Node != 3 || evs[0].At != time.Second {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if !strings.Contains(evs[1].Detail, "2.5s") {
		t.Fatalf("formatted detail = %q", evs[1].Detail)
	}
	if tr.Total() != 2 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

func TestRingBufferEviction(t *testing.T) {
	at := time.Duration(0)
	tr := New(3, fixedClock(&at))
	for i := 0; i < 5; i++ {
		at = time.Duration(i) * time.Second
		tr.Record(1, MACSend, "")
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	// Chronological order with the oldest two evicted.
	if evs[0].At != 2*time.Second || evs[2].At != 4*time.Second {
		t.Fatalf("events = %v", evs)
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d, want 5", tr.Total())
	}
}

func TestFilterAndCount(t *testing.T) {
	at := time.Duration(0)
	tr := New(10, fixedClock(&at))
	tr.Record(1, MACSend, "")
	tr.Record(2, MACSend, "")
	tr.Record(1, MACRetry, "")
	if got := tr.Count(MACSend); got != 2 {
		t.Fatalf("Count(MACSend) = %d", got)
	}
	if got := tr.Filter(MACSend, 1); len(got) != 1 {
		t.Fatalf("Filter(MACSend, 1) = %v", got)
	}
	if got := tr.Filter(MACSend, -1); len(got) != 2 {
		t.Fatalf("Filter(MACSend, any) = %v", got)
	}
}

func TestDump(t *testing.T) {
	at := time.Second
	tr := New(4, fixedClock(&at))
	tr.Record(7, Reparented, "under 3")
	var sb strings.Builder
	tr.Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "reparented") || !strings.Contains(out, "under 3") {
		t.Fatalf("dump output = %q", out)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{RadioSleep, RadioWake, MACSend, MACRetry, MACDrop,
		ReportGenerated, ReportAggregated, ReportDelivered, IntervalTimeout,
		PhaseShift, PhaseRequest, NodeFailed, Reparented}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if Kind(200).String() != "kind(200)" {
		t.Error("unknown kind fallback broken")
	}
}

func TestInvalidConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity accepted")
		}
	}()
	New(0, func() time.Duration { return 0 })
}
