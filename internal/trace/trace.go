// Package trace provides a lightweight structured event log for
// simulations: protocol implementations record typed events into a
// bounded ring buffer that tools and tests can filter, count, and render.
//
// Tracing is designed to be cheap enough to leave wired in: a disabled
// Tracer (the zero value or nil) drops events without allocation.
package trace

import (
	"fmt"
	"io"
	"time"

	"github.com/essat/essat/internal/topology"
)

// Kind classifies trace events.
type Kind uint8

// Event kinds covering the stack: radio power transitions, MAC outcomes,
// query progress, and ESSAT protocol actions.
const (
	RadioSleep Kind = iota + 1
	RadioWake
	MACSend
	MACRetry
	MACDrop
	ReportGenerated
	ReportAggregated
	ReportDelivered
	IntervalTimeout
	PhaseShift
	PhaseRequest
	NodeFailed
	Reparented
	Recovered
)

// String returns the event kind's name.
func (k Kind) String() string {
	switch k {
	case RadioSleep:
		return "radio-sleep"
	case RadioWake:
		return "radio-wake"
	case MACSend:
		return "mac-send"
	case MACRetry:
		return "mac-retry"
	case MACDrop:
		return "mac-drop"
	case ReportGenerated:
		return "report-generated"
	case ReportAggregated:
		return "report-aggregated"
	case ReportDelivered:
		return "report-delivered"
	case IntervalTimeout:
		return "interval-timeout"
	case PhaseShift:
		return "phase-shift"
	case PhaseRequest:
		return "phase-request"
	case NodeFailed:
		return "node-failed"
	case Reparented:
		return "reparented"
	case Recovered:
		return "recovered"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	At   time.Duration
	Node topology.NodeID
	Kind Kind
	// Detail is a small free-form annotation (e.g. the peer node or the
	// shifted phase).
	Detail string
}

// String renders the event on one line.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%12v node=%-3d %s", e.At, e.Node, e.Kind)
	}
	return fmt.Sprintf("%12v node=%-3d %-18s %s", e.At, e.Node, e.Kind, e.Detail)
}

// Tracer records events into a bounded ring buffer. The zero value is a
// disabled tracer; use New to enable recording.
type Tracer struct {
	enabled bool
	buf     []Event
	next    int
	wrapped bool
	total   uint64
	clock   func() time.Duration
}

// New returns a Tracer retaining the most recent capacity events,
// timestamped with clock.
func New(capacity int, clock func() time.Duration) *Tracer {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	if clock == nil {
		panic("trace: nil clock")
	}
	return &Tracer{enabled: true, buf: make([]Event, capacity), clock: clock}
}

// Enabled reports whether the tracer records events. A nil Tracer is
// disabled.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// Record appends an event. On a disabled tracer it is a no-op.
func (t *Tracer) Record(node topology.NodeID, kind Kind, detail string) {
	if !t.Enabled() {
		return
	}
	t.buf[t.next] = Event{At: t.clock(), Node: node, Kind: kind, Detail: detail}
	t.next++
	t.total++
	if t.next == len(t.buf) {
		t.next = 0
		t.wrapped = true
	}
}

// Recordf appends an event with a formatted detail string. The format
// arguments are not evaluated on a disabled tracer.
func (t *Tracer) Recordf(node topology.NodeID, kind Kind, format string, args ...any) {
	if !t.Enabled() {
		return
	}
	t.Record(node, kind, fmt.Sprintf(format, args...))
}

// Total returns the number of events recorded, including evicted ones.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if !t.Enabled() {
		return nil
	}
	if !t.wrapped {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Filter returns the retained events matching kind (any node) or, with
// node >= 0, only that node's.
func (t *Tracer) Filter(kind Kind, node topology.NodeID) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Kind != kind {
			continue
		}
		if node >= 0 && e.Node != node {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Count returns how many retained events match kind.
func (t *Tracer) Count(kind Kind) int {
	n := 0
	for _, e := range t.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Dump writes the retained events to w, one per line.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintln(w, e)
	}
}
