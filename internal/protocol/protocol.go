// Package protocol is the registry of power-management stacks the
// harness can attach to a sensor node. Each protocol is a Builder that
// wires a traffic shaper, sleep scheduler, and query agent onto one
// node.Node; builders self-register by name at init time, so the
// experiment layer, the public API, and the CLIs all share a single
// source of truth for "which protocols exist".
//
// To add a protocol, implement Builder and call Register from an init
// function; it immediately becomes runnable from scenarios, JSON specs,
// and essat-sim without touching the experiment package.
package protocol

import (
	"fmt"
	"time"

	"github.com/essat/essat/internal/baseline"
	"github.com/essat/essat/internal/core"
	"github.com/essat/essat/internal/node"
	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/registry"
	"github.com/essat/essat/internal/routing"
	"github.com/essat/essat/internal/sim"
)

// Protocol names a registered power-management stack.
type Protocol string

// The five protocols of the paper's evaluation plus SYNC, plus T-MAC
// from the paper's related-work discussion (§2, reference [12]).
const (
	NTSSS Protocol = "NTS-SS"
	STSSS Protocol = "STS-SS"
	DTSSS Protocol = "DTS-SS"
	SPAN  Protocol = "SPAN"
	PSM   Protocol = "PSM"
	SYNC  Protocol = "SYNC"
	TMAC  Protocol = "TMAC"
)

// Params carries the protocol-tuning knobs of a scenario, shared by all
// builders. Zero values select each protocol's defaults, with one
// exception inherited from Safe Sleep: SSBreakEven zero means a literal
// tBE of zero (sleep through any gap); negative selects the radio's
// intrinsic break-even time.
type Params struct {
	// SSBreakEven is the Safe Sleep tBE parameter (negative = radio
	// intrinsic).
	SSBreakEven time.Duration
	// DisableSafeSleep turns SS off on every node (ablation: shaping
	// without sleeping).
	DisableSafeSleep bool
	// STSDeadline is the STS deadline D; zero selects D = query period.
	STSDeadline time.Duration
	// NoBuffering disables STS/DTS early-report buffering (ablation).
	NoBuffering bool
	// SyncCfg, PsmCfg and TmacCfg tune the baselines; zero values select
	// defaults.
	SyncCfg baseline.SyncConfig
	PsmCfg  baseline.PsmConfig
	TmacCfg baseline.TmacConfig
}

// BuildContext is everything a Builder may use to attach a protocol
// stack to one node. The same context fields are passed for every node
// of a run except Node and Sink.
type BuildContext struct {
	Eng  *sim.Engine
	Node *node.Node
	Tree *routing.Tree
	// Sink receives completed query intervals; non-nil only at the root.
	Sink query.Sink
	// QueryCfg tunes the node's query agent.
	QueryCfg query.Config
	Params   Params
}

// Builder attaches one protocol's stack (shaper + sleep scheduler +
// query agent, or a baseline power manager) to a node.
type Builder interface {
	// Protocol is the registry key and display name.
	Protocol() Protocol
	// Build wires the stack onto ctx.Node. It is called once per tree
	// member, before the simulation starts.
	Build(ctx *BuildContext) error
}

var builders = registry.New[Protocol, Builder]("protocol")

// Register adds b under its protocol name. rank orders All() for
// presentation (lower first, the paper's figure ordering); ties break by
// name. Register panics on duplicates: protocols are identities, not
// overridable hooks.
func Register(rank int, b Builder) {
	builders.Register(b.Protocol(), rank, b)
}

// RegisterUnlisted adds b so it resolves through Lookup (and therefore
// runs from scenarios and specs) without appearing in All(). Test
// doubles — like the deliberately panicking protocol the lifecycle
// tests use to exercise containment — register this way so
// every-protocol sweeps and CLI listings see only real stacks.
func RegisterUnlisted(b Builder) {
	builders.RegisterUnlisted(b.Protocol(), b)
}

// Lookup returns the builder registered under p.
func Lookup(p Protocol) (Builder, bool) { return builders.Lookup(p) }

// All lists every registered protocol in presentation order.
func All() []Protocol { return builders.Names() }

// Build looks up p and attaches its stack to ctx.Node.
func Build(p Protocol, ctx *BuildContext) error {
	b, ok := Lookup(p)
	if !ok {
		return fmt.Errorf("protocol: unknown protocol %q (registered: %v)", p, All())
	}
	return b.Build(ctx)
}

// newSafeSleep builds the node's Safe Sleep scheduler with the
// context's tBE parameter, honoring the global disable switch.
func newSafeSleep(ctx *BuildContext, disabled bool) *core.SafeSleep {
	n := ctx.Node
	return core.NewSafeSleep(ctx.Eng, n.Radio, core.SafeSleepOptions{
		BreakEven: ctx.Params.SSBreakEven,
		WakeAhead: -1,
		MACBusy:   n.MAC,
		Disabled:  disabled || ctx.Params.DisableSafeSleep,
	})
}
