package protocol

import (
	"github.com/essat/essat/internal/baseline"
)

// The paper's duty-cycling baselines (PSM, SYNC) plus T-MAC from its
// related-work discussion. Each installs a PowerManager driving the
// radio directly and a greedy (unshaped) forwarding agent whose timeout
// budget matches the baseline's per-hop delay.

func init() {
	Register(40, psmBuilder{})
	Register(60, syncBuilder{})
	Register(70, tmacBuilder{})
}

type psmBuilder struct{}

func (psmBuilder) Protocol() Protocol { return PSM }

func (psmBuilder) Build(ctx *BuildContext) error {
	n := ctx.Node
	cfg := ctx.Params.PsmCfg
	if cfg.BeaconPeriod == 0 {
		cfg = baseline.DefaultPsmConfig()
	}
	pm, err := baseline.NewPsmPM(ctx.Eng, n.ID(), n.Radio, n.MAC, cfg)
	if err != nil {
		return err
	}
	n.InstallPM(pm)
	g := baseline.NewGreedy(n.Rank)
	g.PerHopDelay = cfg.BeaconPeriod
	n.InstallAgent(g, ctx.Sink, ctx.QueryCfg)
	return nil
}

type syncBuilder struct{}

func (syncBuilder) Protocol() Protocol { return SYNC }

func (syncBuilder) Build(ctx *BuildContext) error {
	n := ctx.Node
	cfg := ctx.Params.SyncCfg
	if cfg.Period == 0 {
		cfg = baseline.DefaultSyncConfig()
	}
	pm, err := baseline.NewSyncPM(ctx.Eng, n.Radio, cfg)
	if err != nil {
		return err
	}
	n.InstallPM(pm)
	g := baseline.NewGreedy(n.Rank)
	g.PerHopDelay = cfg.Period
	n.InstallAgent(g, ctx.Sink, ctx.QueryCfg)
	return nil
}

type tmacBuilder struct{}

func (tmacBuilder) Protocol() Protocol { return TMAC }

func (tmacBuilder) Build(ctx *BuildContext) error {
	n := ctx.Node
	cfg := ctx.Params.TmacCfg
	if cfg.FramePeriod == 0 {
		cfg = baseline.DefaultTmacConfig()
	}
	pm, err := baseline.NewTmacPM(ctx.Eng, n.Radio, n.MAC, cfg)
	if err != nil {
		return err
	}
	n.InstallPM(pm)
	g := baseline.NewGreedy(n.Rank)
	g.PerHopDelay = cfg.FramePeriod
	n.InstallAgent(g, ctx.Sink, ctx.QueryCfg)
	return nil
}
