package protocol

import (
	"github.com/essat/essat/internal/core"
)

// The ESSAT family: Safe Sleep paired with one of the paper's three
// traffic shapers (§4.2), plus SPAN, which the paper configures as an
// always-on backbone with NTS-SS leaves (§5).

func init() {
	Register(10, dtsBuilder{})
	Register(20, stsBuilder{})
	Register(30, ntsBuilder{})
	Register(50, spanBuilder{})
}

type ntsBuilder struct{}

func (ntsBuilder) Protocol() Protocol { return NTSSS }

func (ntsBuilder) Build(ctx *BuildContext) error {
	n := ctx.Node
	ss := newSafeSleep(ctx, false)
	n.InstallSleep(ss)
	n.InstallAgent(core.NewNTS(n, ss), ctx.Sink, ctx.QueryCfg)
	return nil
}

type stsBuilder struct{}

func (stsBuilder) Protocol() Protocol { return STSSS }

func (stsBuilder) Build(ctx *BuildContext) error {
	n := ctx.Node
	ss := newSafeSleep(ctx, false)
	n.InstallSleep(ss)
	sts := core.NewSTS(n, ss, ctx.Params.STSDeadline)
	sts.NoBuffering = ctx.Params.NoBuffering
	n.InstallAgent(sts, ctx.Sink, ctx.QueryCfg)
	return nil
}

type dtsBuilder struct{}

func (dtsBuilder) Protocol() Protocol { return DTSSS }

func (dtsBuilder) Build(ctx *BuildContext) error {
	n := ctx.Node
	ss := newSafeSleep(ctx, false)
	n.InstallSleep(ss)
	dts := core.NewDTS(n, ss)
	dts.NoBuffering = ctx.Params.NoBuffering
	n.InstallAgent(dts, ctx.Sink, ctx.QueryCfg)
	return nil
}

type spanBuilder struct{}

func (spanBuilder) Protocol() Protocol { return SPAN }

func (spanBuilder) Build(ctx *BuildContext) error {
	// Backbone (non-leaf) nodes always on; leaves run NTS-SS.
	n := ctx.Node
	ss := newSafeSleep(ctx, !ctx.Tree.IsLeaf(n.ID()))
	n.InstallSleep(ss)
	n.InstallAgent(core.NewNTS(n, ss), ctx.Sink, ctx.QueryCfg)
	return nil
}
