package protocol

import (
	"reflect"
	"testing"
)

func TestRegistryContents(t *testing.T) {
	want := []Protocol{DTSSS, STSSS, NTSSS, PSM, SPAN, SYNC, TMAC}
	if got := All(); !reflect.DeepEqual(got, want) {
		t.Fatalf("All() = %v, want %v", got, want)
	}
	for _, p := range want {
		b, ok := Lookup(p)
		if !ok {
			t.Fatalf("protocol %q not registered", p)
		}
		if b.Protocol() != p {
			t.Fatalf("builder for %q reports name %q", p, b.Protocol())
		}
	}
	if _, ok := Lookup("NO-SUCH"); ok {
		t.Error("Lookup accepted an unregistered name")
	}
}

func TestBuildUnknownProtocol(t *testing.T) {
	if err := Build("NO-SUCH", &BuildContext{}); err == nil {
		t.Fatal("Build accepted an unregistered protocol")
	}
}

type fakeBuilder struct{ name Protocol }

func (f fakeBuilder) Protocol() Protocol        { return f.name }
func (f fakeBuilder) Build(*BuildContext) error { return nil }

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(99, fakeBuilder{name: DTSSS})
}
