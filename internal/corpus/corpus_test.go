package corpus

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/essat/essat/internal/experiment"
)

// TestGenerateDeterministic: the corpus contract — the same config
// always yields byte-identical specs, so a campaign can regenerate its
// workload anywhere instead of shipping spec files.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Count: 40}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("item %d: ID %q vs %q", i, a[i].ID, b[i].ID)
		}
		aj, _ := json.Marshal(a[i].Spec)
		bj, _ := json.Marshal(b[i].Spec)
		if !bytes.Equal(aj, bj) {
			t.Fatalf("item %d: specs differ:\n%s\n%s", i, aj, bj)
		}
	}

	// A different seed must actually change the corpus.
	c, err := Generate(Config{Seed: 43, Count: 40})
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := json.Marshal(c[0].Spec)
	aj, _ := json.Marshal(a[0].Spec)
	if bytes.Equal(aj, cj) {
		t.Fatal("different seeds produced identical first specs")
	}
}

// TestGenerateCoversCrossProduct: one full 252-item corpus hits every
// protocol × topology generator × propagation model × radio profile
// cell exactly once.
func TestGenerateCoversCrossProduct(t *testing.T) {
	items, err := Generate(Config{Seed: 1, Count: 252})
	if err != nil {
		t.Fatal(err)
	}
	cells := make(map[[4]string]int)
	for _, it := range items {
		gen, prop, prof := "uniform", "disc", "paper"
		if it.Spec.Topology != "" {
			gen = it.Spec.Topology
		}
		if it.Spec.Channel != nil {
			prop = it.Spec.Channel.Model
		}
		if it.Spec.Radio != nil {
			prof = it.Spec.Radio.Profile
		}
		cells[[4]string{it.Spec.Protocol, gen, prop, prof}]++
	}
	if len(cells) != 252 {
		t.Fatalf("corpus covers %d distinct cells, want 252 (7×4×3×3)", len(cells))
	}
	for cell, n := range cells {
		if n != 1 {
			t.Errorf("cell %v drawn %d times, want exactly once", cell, n)
		}
	}
}

// TestWriteLoadRoundTrip: a written corpus loads back identically, and
// Load refuses a spec file whose bytes no longer match the manifest.
func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seed: 9, Count: 8}
	items, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(dir, cfg, items, 3); err != nil {
		t.Fatal(err)
	}

	man, loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Seed != 9 || man.Count != 8 || man.Shards != 3 {
		t.Fatalf("manifest = {seed %d, count %d, shards %d}, want {9, 8, 3}", man.Seed, man.Count, man.Shards)
	}
	if len(loaded) != len(items) {
		t.Fatalf("loaded %d items, want %d", len(loaded), len(items))
	}
	for i := range items {
		want, _ := json.Marshal(items[i].Spec)
		got, _ := json.Marshal(loaded[i].Spec)
		if loaded[i].ID != items[i].ID || !bytes.Equal(want, got) {
			t.Fatalf("item %d did not round-trip", i)
		}
	}

	// Tamper with one spec file: Load must detect the hash mismatch.
	path := filepath.Join(dir, man.Specs[2].File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, ' '), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir); err == nil {
		t.Fatal("Load accepted a corrupted spec file")
	}
}

// FuzzCorpusSpec: every spec the generator can emit strict-parses and
// builds without error — the guarantee that lets a campaign trust its
// workload blindly. The fuzzer explores the seed space; each iteration
// checks a small corpus end to end through experiment.Build.
func FuzzCorpusSpec(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(1 << 40))
	f.Fuzz(func(t *testing.T, seed int64) {
		items, err := Generate(Config{Seed: seed, Count: 5, MaxNodes: 24, MaxDuration: 3 * time.Second})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, it := range items {
			data, err := json.Marshal(it.Spec)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := experiment.ParseSpec(data)
			if err != nil {
				t.Fatalf("%s does not strict-parse: %v", it.ID, err)
			}
			sc, err := spec.Scenario()
			if err != nil {
				t.Fatalf("%s does not compile: %v", it.ID, err)
			}
			if _, err := experiment.Build(sc); err != nil {
				t.Fatalf("%s does not build: %v", it.ID, err)
			}
		}
	})
}
