// Package corpus generates seeded, reproducible workload corpora:
// randomized-but-valid declarative scenario specs covering the full
// registry cross-product (every protocol × topology generator ×
// propagation model × radio profile × dynamics pattern) with
// fuzzed-but-bounded knobs.
//
// A corpus is the campaign layer's workload (the ReqBench workload.py
// analogue): Generate is pure and deterministic in its Config — the
// same seed and count always produce byte-identical specs — so a
// campaign can be regenerated, sharded, or resumed anywhere without
// shipping the spec files themselves. Every emitted spec is strictly
// valid by construction: it round-trips through the strict JSON parser
// and compiles through Spec.Scenario, a property Generate re-checks
// item by item (and FuzzCorpusSpec extends to experiment.Build).
package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/essat/essat/internal/experiment"
	"github.com/essat/essat/internal/phy"
	"github.com/essat/essat/internal/protocol"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/stats"
	"github.com/essat/essat/internal/topology"
)

// Config parameterizes one corpus.
type Config struct {
	// Seed drives every random choice; 0 selects 1. The same (Seed,
	// Count) always generates the identical corpus.
	Seed int64
	// Count is the number of specs to generate; 0 selects 252, one full
	// protocol × topology × propagation × radio cross-product.
	Count int
	// MaxNodes bounds deployment scale (default 48; minimum scale is 24
	// nodes). Campaigns trade per-run depth for run count.
	MaxNodes int
	// MaxDuration bounds simulated time per run (default 6s, minimum
	// 3s). Short runs keep a 10k-run campaign tractable.
	MaxDuration time.Duration
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Count <= 0 {
		c.Count = 252
	}
	if c.MaxNodes < 24 {
		c.MaxNodes = 48
	}
	if c.MaxDuration < 3*time.Second {
		c.MaxDuration = 6 * time.Second
	}
	return c
}

// Item is one generated workload: a spec plus its stable identity
// within the corpus.
type Item struct {
	// Index is the item's position in the corpus (0-based). It orders
	// the campaign's merged result set.
	Index int
	// ID is the human-readable identity: index plus the dimension names
	// ("0012-dts-ss-grid-shadowing-cc1000-crash").
	ID string
	// Spec is the generated scenario, strictly valid by construction.
	Spec *experiment.Spec
}

// The dynamics patterns the generator cycles through. "calm" runs
// undisturbed; the rest exercise each injector and one composition.
var dynPatterns = []string{"calm", "crash", "linkloss", "burst", "crash+burst"}

// Generate produces the corpus cfg describes. It is deterministic:
// equal configs yield byte-identical specs (same JSON encoding, same
// order). Every item is verified to strict-parse and compile before
// being returned; a verification failure reports a generator bug.
func Generate(cfg Config) ([]Item, error) {
	cfg = cfg.withDefaults()
	protos := protocol.All()
	gens := topology.GeneratorNames()
	props := phy.PropagationNames()
	radios := radio.ProfileNames()

	items := make([]Item, 0, cfg.Count)
	for idx := 0; idx < cfg.Count; idx++ {
		// Walk the cross-product in mixed-radix order so any prefix of
		// the corpus covers the fastest-varying dimensions evenly and a
		// full 7×4×3×3 block (252 items) covers every combination.
		p := protos[idx%len(protos)]
		gen := gens[(idx/len(protos))%len(gens)]
		prop := props[(idx/(len(protos)*len(gens)))%len(props)]
		prof := radios[(idx/(len(protos)*len(gens)*len(props)))%len(radios)]
		dyn := dynPatterns[idx%len(dynPatterns)]

		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(idx)*7919))
		spec := buildSpec(rng, cfg, idx, string(p), gen, prop, prof, dyn)
		if err := Verify(spec); err != nil {
			return nil, fmt.Errorf("corpus: generated item %d invalid (generator bug): %w", idx, err)
		}
		items = append(items, Item{
			Index: idx,
			ID:    itemID(idx, string(p), gen, prop, prof, dyn),
			Spec:  spec,
		})
	}
	return items, nil
}

// buildSpec draws one randomized-but-bounded spec for the given
// cross-product cell. Every knob range is chosen so the spec compiles
// and builds cleanly: densities keep deployments connected, phases and
// injector times stay inside the run, probabilities stay in (0,1).
func buildSpec(rng *rand.Rand, cfg Config, idx int, proto, gen, prop, prof, dyn string) *experiment.Spec {
	nodes := 24 + rng.Intn(cfg.MaxNodes-24+1)
	// Scale the area with the node count so density stays at or above
	// the paper's 80 nodes per 500 m² with a 125 m range — sparse enough
	// to be multihop, dense enough that trees reach most nodes.
	area := round2(500 * math.Sqrt(float64(nodes)/80.0) * (0.85 + 0.2*rng.Float64()))
	durSecs := 3 + rng.Intn(int(cfg.MaxDuration/time.Second)-2)
	duration := time.Duration(durSecs) * time.Second

	spec := &experiment.Spec{
		Protocol: proto,
		Seed:     cfg.Seed*1_000_000 + int64(idx) + 1,
		Nodes:    nodes,
		Area:     area,
		Duration: experiment.Dur(duration),
		Workload: &experiment.WorkloadSpec{
			BaseRate: round2(1 + 2*rng.Float64()),
			PerClass: 1 + rng.Intn(2),
			PhaseMax: experiment.Dur(time.Duration(500+rng.Intn(1000)) * time.Millisecond),
		},
		Audit: true,
	}

	if gen != topology.Uniform {
		spec.Topology = gen
		switch gen {
		case topology.Grid:
			spec.TopologyParams = map[string]float64{"jitter": round2(25 * rng.Float64())}
		case topology.Clusters:
			spec.TopologyParams = map[string]float64{
				"clusters": float64(3 + rng.Intn(4)),
				"spread":   round2(area/10 + rng.Float64()*area/10),
			}
		case topology.Corridor:
			spec.TopologyParams = map[string]float64{"width": round2(area/5 + rng.Float64()*area/5)}
		}
	}

	switch prop {
	case phy.Shadowing:
		spec.Channel = &experiment.ChannelSpec{Model: prop, Params: map[string]float64{
			"sigma":    round2(2 + 4*rng.Float64()),
			"pathloss": round2(2.5 + 1.5*rng.Float64()),
		}}
	case phy.DualDisc:
		spec.Channel = &experiment.ChannelSpec{Model: prop, Params: map[string]float64{
			"inner": round2(0.6 + 0.3*rng.Float64()),
			"outer": round2(1.0 + 0.4*rng.Float64()),
		}}
	}
	if prof != radio.Paper {
		spec.Radio = &experiment.RadioSpec{Profile: prof}
	}

	// Dynamics: every injected disturbance starts after the first second
	// and ends inside the run.
	half := duration / 2
	at := func() experiment.Duration {
		return experiment.Dur(time.Second + time.Duration(rng.Int63n(int64(half))))
	}
	addCrash := func() {
		spec.Dynamics = append(spec.Dynamics, experiment.DynamicsSpec{
			Kind:     "crash",
			At:       at(),
			Duration: experiment.Dur(time.Duration(500+rng.Intn(1500)) * time.Millisecond),
			Count:    1 + rng.Intn(2),
		})
	}
	addBurst := func() {
		burstLen := time.Duration(1500+rng.Intn(1500)) * time.Millisecond
		spec.Dynamics = append(spec.Dynamics, experiment.DynamicsSpec{
			Kind:     "burst",
			At:       at(),
			Duration: experiment.Dur(burstLen),
			Period:   experiment.Dur(time.Duration(300+rng.Intn(700)) * time.Millisecond),
			Queries:  1 + rng.Intn(2),
		})
	}
	switch dyn {
	case "crash":
		addCrash()
	case "linkloss":
		spec.Dynamics = append(spec.Dynamics, experiment.DynamicsSpec{
			Kind:     "linkloss",
			At:       at(),
			Duration: experiment.Dur(time.Duration(1000+rng.Intn(2000)) * time.Millisecond),
			Peak:     round2(0.2 + 0.6*rng.Float64()),
			Steps:    4 + rng.Intn(5),
		})
	case "burst":
		addBurst()
	case "crash+burst":
		addCrash()
		addBurst()
	}

	// Results pipeline coverage: half the corpus requests metric sinks,
	// so campaign runs continuously prove sink records survive
	// journaling, sharding, and merges byte-identically. The draw comes
	// after every existing one, keeping pre-results corpora reproducible
	// from the same seeds.
	switch idx % 4 {
	case 1:
		spec.Results = &experiment.ResultsSpec{Sinks: []experiment.SinkSpec{
			{Name: stats.SinkEnergy},
			{Name: stats.SinkTimeseries, Params: map[string]float64{
				"bucket_ms": float64(250 * (1 + rng.Intn(4))),
			}},
		}}
	case 3:
		spec.Results = &experiment.ResultsSpec{Sinks: []experiment.SinkSpec{{Name: stats.SinkJSONL}}}
	}

	// Parallel-engine coverage: calm, sink-free items run under the
	// sharded conservative-window engine (alternating 2 and 4 shards),
	// so campaigns continuously prove the parallel path journals,
	// retries, and merges exactly like the sequential one. Items with
	// features the parallel build gates (dynamics, radio-observing
	// sinks) stay sequential. The condition is deterministic in idx —
	// no rng draw — so pre-parallel corpora regenerate identically.
	if dyn == "calm" && idx%4 != 1 && idx%4 != 3 {
		spec.Parallelism = &experiment.ParallelismSpec{Shards: 2 + 2*(idx/10%2)}
	}
	return spec
}

// Verify checks the invariant every corpus item promises: the spec's
// strict-JSON encoding round-trips through the strict parser and the
// result compiles through Spec.Scenario. (experiment.Build is heavier;
// FuzzCorpusSpec covers it.)
func Verify(spec *experiment.Spec) error {
	data, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	parsed, err := experiment.ParseSpec(data)
	if err != nil {
		return err
	}
	if _, err := parsed.Scenario(); err != nil {
		return err
	}
	return nil
}

func itemID(idx int, parts ...string) string {
	slug := strings.ToLower(strings.Join(parts, "-"))
	slug = strings.ReplaceAll(slug, "+", "-")
	return fmt.Sprintf("%04d-%s", idx, slug)
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// Manifest records a written corpus: its generation parameters and the
// identity + content hash of every spec file, so a loader can detect a
// corrupted or hand-edited corpus before a campaign runs against it.
type Manifest struct {
	Version int   `json:"version"`
	Seed    int64 `json:"seed"`
	Count   int   `json:"count"`
	// Shards is the number of shards the corpus is intended to run as
	// (item i belongs to shard i mod Shards); 1 when unsharded.
	Shards int             `json:"shards"`
	Specs  []ManifestEntry `json:"specs"`
}

// ManifestEntry names one spec file and pins its content.
type ManifestEntry struct {
	Index  int    `json:"index"`
	ID     string `json:"id"`
	File   string `json:"file"`
	SHA256 string `json:"sha256"`
}

// ManifestName is the manifest's filename inside a corpus directory.
const ManifestName = "manifest.json"

// specDir is the subdirectory holding the spec files.
const specDir = "specs"

// Write materializes a corpus: one strict-JSON spec file per item under
// dir/specs plus dir/manifest.json. shards records the intended shard
// count (<=0 selects 1).
func Write(dir string, cfg Config, items []Item, shards int) error {
	cfg = cfg.withDefaults()
	if shards <= 0 {
		shards = 1
	}
	if err := os.MkdirAll(filepath.Join(dir, specDir), 0o755); err != nil {
		return err
	}
	m := Manifest{Version: 1, Seed: cfg.Seed, Count: len(items), Shards: shards}
	for _, it := range items {
		data, err := json.MarshalIndent(it.Spec, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		rel := filepath.Join(specDir, it.ID+".json")
		if err := os.WriteFile(filepath.Join(dir, rel), data, 0o644); err != nil {
			return err
		}
		sum := sha256.Sum256(data)
		m.Specs = append(m.Specs, ManifestEntry{
			Index:  it.Index,
			ID:     it.ID,
			File:   rel,
			SHA256: hex.EncodeToString(sum[:]),
		})
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), append(data, '\n'), 0o644)
}

// Load reads a written corpus back: the manifest plus every spec file,
// verifying content hashes and strict validity. The returned items are
// in manifest (index) order.
func Load(dir string) (*Manifest, []Item, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, nil, fmt.Errorf("corpus: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, nil, fmt.Errorf("corpus: %s: %w", ManifestName, err)
	}
	if m.Version != 1 {
		return nil, nil, fmt.Errorf("corpus: unsupported manifest version %d", m.Version)
	}
	items := make([]Item, 0, len(m.Specs))
	for _, e := range m.Specs {
		raw, err := os.ReadFile(filepath.Join(dir, e.File))
		if err != nil {
			return nil, nil, fmt.Errorf("corpus: %w", err)
		}
		if sum := sha256.Sum256(raw); hex.EncodeToString(sum[:]) != e.SHA256 {
			return nil, nil, fmt.Errorf("corpus: %s does not match its manifest hash (corrupted or edited?)", e.File)
		}
		spec, err := experiment.ParseSpec(raw)
		if err != nil {
			return nil, nil, fmt.Errorf("corpus: %s: %w", e.File, err)
		}
		items = append(items, Item{Index: e.Index, ID: e.ID, Spec: spec})
	}
	return &m, items, nil
}
