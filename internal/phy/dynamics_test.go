package phy

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/radio"
)

func TestLinkLossDropsOnlyConfiguredLink(t *testing.T) {
	eng, ch, _, rxs := testNet(t, 3, DefaultConfig())
	// Certain loss is not allowed; use a probability high enough that 50
	// frames dropping through would be (1-0.999)^50 — impossible in a
	// deterministic run that draws uniforms from seed 1.
	ch.SetLinkLoss(0, 1, 0.999)
	for i := 0; i < 50; i++ {
		ch.StartTx(0, 1, 52, "x")
		eng.Run(eng.Now() + 10*time.Millisecond)
	}
	if got := len(rxs[1].delivered); got == 50 {
		t.Fatalf("lossy link delivered all %d frames", got)
	}
	if ch.Stats().LinkDrops == 0 {
		t.Fatal("no LinkDrops counted")
	}
	// The reverse direction is untouched.
	drops := ch.Stats().LinkDrops
	for i := 0; i < 20; i++ {
		ch.StartTx(1, 0, 52, "y")
		eng.Run(eng.Now() + 10*time.Millisecond)
	}
	if got := len(rxs[0].delivered); got != 20 {
		t.Fatalf("clean reverse link delivered %d of 20", got)
	}
	if ch.Stats().LinkDrops != drops {
		t.Fatal("reverse link counted drops")
	}
}

func TestLinkLossClearedRestoresDelivery(t *testing.T) {
	eng, ch, _, rxs := testNet(t, 2, DefaultConfig())
	ch.SetLinkLoss(0, 1, 0.999)
	ch.SetLinkLoss(0, 1, 0)
	if got := ch.LinkLoss(0, 1); got != 0 {
		t.Fatalf("LinkLoss after clear = %g", got)
	}
	for i := 0; i < 20; i++ {
		ch.StartTx(0, 1, 52, "x")
		eng.Run(eng.Now() + 10*time.Millisecond)
	}
	if got := len(rxs[1].delivered); got != 20 {
		t.Fatalf("cleared link delivered %d of 20", got)
	}
}

func TestSuspendResumeRestoresReception(t *testing.T) {
	eng, ch, radios, rxs := testNet(t, 2, DefaultConfig())
	ch.Suspend(1)
	if radios[1].State() != radio.Off || !radios[1].Dead() {
		t.Fatalf("suspended radio state %v dead=%v", radios[1].State(), radios[1].Dead())
	}
	ch.StartTx(0, 1, 52, "lost")
	eng.Run(eng.Now() + 10*time.Millisecond)
	if len(rxs[1].delivered) != 0 {
		t.Fatal("suspended node received a frame")
	}
	ch.Resume(1)
	radios[1].TurnOn()
	eng.Run(eng.Now() + 10*time.Millisecond)
	ch.StartTx(0, 1, 52, "back")
	eng.Run(eng.Now() + 10*time.Millisecond)
	if len(rxs[1].delivered) != 1 || rxs[1].delivered[0].Payload != "back" {
		t.Fatalf("resumed node delivered %v", rxs[1].delivered)
	}
}

func TestResumeRebuildsCarrierCount(t *testing.T) {
	eng, ch, radios, _ := testNet(t, 3, DefaultConfig())
	ch.Suspend(1)
	// Node 0 starts a long frame while node 1 is down; node 1 resumes
	// mid-frame and must sense the ongoing transmission.
	ch.StartTx(0, 2, 1000, "long")
	eng.Run(eng.Now() + 100*time.Microsecond) // frame still in the air (8ms+)
	ch.Resume(1)
	radios[1].TurnOn()
	eng.Run(eng.Now() + time.Microsecond)
	if !ch.CarrierBusy(1) {
		t.Fatal("resumed node does not sense the in-flight transmission")
	}
	// When the frame ends the carrier count must return to zero, not
	// underflow.
	eng.Run(eng.Now() + time.Second)
	if ch.CarrierBusy(1) {
		t.Fatal("carrier stuck busy after the frame ended")
	}
	ch.StartTx(2, 1, 52, "later")
	eng.Run(eng.Now() + 10*time.Millisecond)
	if ch.CarrierBusy(1) {
		t.Fatal("carrier count drifted negative across suspend/resume")
	}
}

// observerRecorder counts phy.Observer callbacks.
type observerRecorder struct {
	tx, delivered int
	lastState     radio.State
	lastEnabled   bool
}

func (o *observerRecorder) TxStarted(f *Frame, s radio.State, enabled bool) {
	o.tx++
	o.lastState, o.lastEnabled = s, enabled
}
func (o *observerRecorder) Delivered(f *Frame, dst NodeID) { o.delivered++ }

func TestChannelObserverSeesTxAndDeliveries(t *testing.T) {
	eng, ch, _, _ := testNet(t, 3, DefaultConfig())
	rec := &observerRecorder{}
	ch.SetObserver(rec)
	ch.StartTx(0, 1, 52, "x")
	eng.Run(eng.Now() + 10*time.Millisecond)
	if rec.tx != 1 || rec.delivered != 1 {
		t.Fatalf("observer saw tx=%d delivered=%d, want 1/1", rec.tx, rec.delivered)
	}
	if rec.lastState != radio.Idle || !rec.lastEnabled {
		t.Fatalf("observer state=%v enabled=%v at tx start", rec.lastState, rec.lastEnabled)
	}
}
