// Cross-shard channel routing for the sharded parallel engine.
//
// Under parallel execution the deployment is cut into K spatial shards;
// each shard gets its own engine and its own Channel ("lane") sharing
// the one topology, with only the shard's stations attached. A
// transmission whose source has candidate neighbors in other shards is
// additionally routed through the Mesh: a deep-copied frame is dropped
// into the per-shard-pair outbox, and at the next window barrier the
// runner drains the outboxes — single-threaded, in deterministic
// (arrival, frame ID) order — scheduling a replay on each destination
// lane. The replay raises carrier, locks receivers, and delivers
// exactly like a local transmission, shifted by the mesh latency.
//
// The latency is the conservative lookahead: cross-shard links behave
// as if they had a propagation delay of `latency`, the standard
// federated-simulation approximation (links crossing a federate border
// must carry at least the lookahead). Runs are deterministic for a
// fixed (seed, shard count, latency), independent of GOMAXPROCS and
// worker scheduling; shard count 1 is the unmodified sequential path.
package phy

import (
	"fmt"
	"sort"
	"time"

	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

// remoteTx is one cross-shard transmission parked in an outbox: the
// cloned frame plus its arrival instant and airtime at the receiving
// lane.
type remoteTx struct {
	at    time.Duration
	dur   time.Duration
	frame Frame
}

// remoteStart carries an inbound transmission from the barrier exchange
// to its start event on the destination lane's engine.
type remoteStart struct {
	ch    *Channel
	dur   time.Duration
	frame Frame
}

// remoteStartFire is the shared dispatcher for inbound cross-shard
// transmissions.
func remoteStartFire(x any) {
	r := x.(*remoteStart)
	r.ch.startRemote(r)
}

// Mesh connects the per-shard channel lanes of one parallel run.
type Mesh struct {
	lanes   []*Channel
	part    []int32 // NodeID -> lane
	latency time.Duration
	// clone deep-copies a frame payload for transit: sender-side MAC
	// headers and pooled upper payloads are recycled as soon as the
	// sender's completion fires, which under the mesh latency is before
	// the remote delivery.
	clone func(any) any
	// outbox[src][dst] holds the frames lane src produced for lane dst
	// since the last barrier. Only the owning lane's goroutine appends
	// between barriers; the exchange drains single-threaded.
	outbox  [][][]remoteTx
	scratch []remoteTx
}

// NewMesh wires the lanes of one parallel run together. part maps every
// node to its lane; latency is the conservative cross-shard lookahead
// and must be positive; clone must deep-copy any payload that crosses
// (nil keeps payloads aliased, which is only safe for immutable,
// non-pooled payloads). The mesh installs itself into each lane and
// gives each lane a disjoint frame-ID space.
func NewMesh(lanes []*Channel, part []int32, latency time.Duration, clone func(any) any) (*Mesh, error) {
	if len(lanes) < 2 {
		return nil, fmt.Errorf("phy: mesh needs at least 2 lanes, got %d", len(lanes))
	}
	if len(lanes) > 64 {
		return nil, fmt.Errorf("phy: mesh supports at most 64 lanes, got %d", len(lanes))
	}
	if latency <= 0 {
		return nil, fmt.Errorf("phy: mesh latency must be positive, got %v", latency)
	}
	m := &Mesh{
		lanes:   lanes,
		part:    part,
		latency: latency,
		clone:   clone,
		outbox:  make([][][]remoteTx, len(lanes)),
	}
	for i := range m.outbox {
		m.outbox[i] = make([][]remoteTx, len(lanes))
	}
	for i, c := range lanes {
		if c.mesh != nil {
			return nil, fmt.Errorf("phy: lane %d already meshed", i)
		}
		c.mesh = m
		c.lane = int32(i)
		// Disjoint ID spaces keep frame IDs unique run-wide; lane 0
		// starts at 0 so a 1-lane configuration would be bit-compatible
		// with the sequential channel.
		c.nextID = uint64(i) << 48
	}
	return m, nil
}

// Latency returns the mesh's cross-shard lookahead.
func (m *Mesh) Latency() time.Duration { return m.latency }

// route forks a transmission into the outboxes of every other lane that
// holds candidate neighbors of the source. Called from StartTx on the
// owning lane's goroutine.
func (m *Mesh) route(c *Channel, tx *activeTx, dur time.Duration) {
	var mask uint64
	me := c.lane
	for _, nb := range c.neighbors(tx.frame.Src) {
		if l := m.part[nb]; l != me {
			mask |= 1 << uint(l)
		}
	}
	if mask == 0 {
		return
	}
	at := c.eng.Now() + m.latency
	var payload any
	if m.clone != nil {
		payload = m.clone(tx.frame.Payload)
	} else {
		payload = tx.frame.Payload
	}
	for l := 0; mask != 0; l++ {
		if mask&(1<<uint(l)) == 0 {
			continue
		}
		mask &^= 1 << uint(l)
		f := tx.frame
		f.Payload = payload
		m.outbox[me][l] = append(m.outbox[me][l], remoteTx{at: at, dur: dur, frame: f})
	}
}

// Exchange drains every outbox, scheduling the parked transmissions on
// their destination lanes. It must run single-threaded at a window
// barrier at time `now`; every parked arrival is at or after now by the
// lookahead argument, so the destination engines only ever see
// future-or-present schedules. Arrivals are ordered by (at, frame ID) before
// scheduling, which pins their engine sequence numbers — and therefore
// the whole run — independent of worker interleaving.
func (m *Mesh) Exchange(now time.Duration) {
	for d := range m.lanes {
		buf := m.scratch[:0]
		for s := range m.lanes {
			buf = append(buf, m.outbox[s][d]...)
			m.outbox[s][d] = m.outbox[s][d][:0]
		}
		if len(buf) == 0 {
			continue
		}
		sort.Slice(buf, func(a, b int) bool {
			if buf[a].at != buf[b].at {
				return buf[a].at < buf[b].at
			}
			return buf[a].frame.ID < buf[b].frame.ID
		})
		lane := m.lanes[d]
		for i := range buf {
			lane.scheduleRemote(&buf[i])
		}
		m.scratch = buf
	}
}

// scheduleRemote parks one inbound transmission for its start instant.
func (c *Channel) scheduleRemote(rt *remoteTx) {
	r := sim.TakeLast(&c.freeRemote)
	if r == nil {
		r = sim.ArenaGrab[remoteStart](c.eng, "phy.remote")
	}
	r.ch, r.dur, r.frame = c, rt.dur, rt.frame
	c.eng.ScheduleArg(rt.at, remoteStartFire, r)
}

// startRemote replays a cross-shard transmission on this lane: carrier
// rises at every local station in range of the (remote) source, idle
// receivers lock on, and the completion event delivers — the
// receiver-side half of StartTx. Source-side bookkeeping (radio, stats,
// TxStarted observation) happened on the source lane.
func (c *Channel) startRemote(r *remoteStart) {
	tx := sim.TakeLast(&c.freeTx)
	if tx == nil {
		tx = sim.ArenaGrab[activeTx](c.eng, "phy.tx")
		tx.ch = c
	}
	tx.remote = true
	tx.frame = r.frame
	dur := r.dur
	*r = remoteStart{}
	c.freeRemote = append(c.freeRemote, r)

	c.active = append(c.active, tx)
	for _, nb := range c.neighbors(tx.frame.Src) {
		rst := &c.stations[nb]
		if !rst.enabled {
			// Foreign-lane stations are never attached here, so this
			// also confines the replay to the lane's own shard.
			continue
		}
		rst.carriers++
		if rst.carriers == 1 {
			rst.rx.CarrierChanged(true)
		}
		switch {
		case rst.receiving != nil:
			rst.corrupted = true
			c.stats.Collisions++
		case rst.radio.CanReceive():
			rst.receiving = tx
			rst.corrupted = false
			rst.radio.BeginRx()
		default:
			c.stats.MissedAsleep++
		}
	}
	c.eng.AfterArg(dur, activeTxEnd, tx)
}

// CrossShardLookahead derives the default mesh latency for a
// deployment: the DCF interframe space plus the propagation delay over
// the widest candidate link (distance / c). The DIFS term is what makes
// the lookahead usable — raw propagation over sensor ranges is under
// 2 µs — and is physically defensible: no station may react to the
// channel faster than DIFS.
func CrossShardLookahead(t *topology.Topology, difs time.Duration) time.Duration {
	const speedOfLight = 299_792_458.0 // m/s
	prop := time.Duration(t.NeighborRange() / speedOfLight * float64(time.Second))
	if prop < time.Microsecond {
		prop = time.Microsecond
	}
	return difs + prop
}
