package phy

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

// TestChannelConservationProperty drives random traffic over random
// topologies and checks the channel's accounting invariants:
//
//   - every transmission is accounted: per receiver, a frame is either
//     delivered/overheard, corrupted, dropped by loss injection, or
//     missed (radio unable);
//   - carrier counts return to zero at quiescence;
//   - no frame is ever delivered to a station out of range.
func TestChannelConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.New(seed)
		topo, err := topology.NewRandom(eng.Rand(), topology.Config{
			NumNodes: 12, AreaSide: 300, Range: 125,
		})
		if err != nil {
			return false
		}
		ch, _ := NewChannel(eng, topo, DefaultConfig())
		rxs := make([]*mockRx, topo.NumNodes())
		radios := make([]*radio.Radio, topo.NumNodes())
		for i := range rxs {
			rxs[i] = &mockRx{}
			radios[i] = radio.New(eng, radio.Config{})
			ch.Attach(NodeID(i), radios[i], rxs[i])
		}
		// Random transmissions at random times; some radios toggled off.
		for i := 0; i < 60; i++ {
			src := NodeID(rng.Intn(topo.NumNodes()))
			at := time.Duration(rng.Intn(50)) * time.Millisecond
			var dst NodeID = Broadcast
			if rng.Intn(2) == 0 {
				dst = NodeID(rng.Intn(topo.NumNodes()))
				if dst == src {
					dst = Broadcast
				}
			}
			src, dst, i := src, dst, i
			eng.Schedule(at, func() {
				if radios[src].IsListening() && ch.Enabled(src) {
					ch.StartTx(src, dst, 20+rng.Intn(60), i)
				}
			})
		}
		for i := 0; i < 6; i++ {
			n := NodeID(rng.Intn(topo.NumNodes()))
			at := time.Duration(rng.Intn(50)) * time.Millisecond
			eng.Schedule(at, func() { radios[n].TurnOff() })
			eng.Schedule(at+10*time.Millisecond, func() { radios[n].TurnOn() })
		}
		eng.Run(time.Second)

		// Quiescent: no station senses carrier.
		for i := range rxs {
			if radios[i].IsOn() && ch.CarrierBusy(NodeID(i)) {
				return false
			}
		}
		// Delivered frames respect topology.
		for i, rx := range rxs {
			for _, fr := range rx.delivered {
				if !topo.Connected(NodeID(i), fr.Src) {
					return false
				}
			}
		}
		// Counter sanity: deliveries+overheard+drops cannot exceed
		// transmissions × max neighbors.
		st := ch.Stats()
		maxNb := 0
		for i := 0; i < topo.NumNodes(); i++ {
			if d := topo.Degree(NodeID(i)); d > maxNb {
				maxNb = d
			}
		}
		total := st.Deliveries + st.Overheard + st.RandomDrops
		return total <= st.Transmissions*uint64(maxNb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRadioTimeConservationProperty checks that the per-state time
// accounting always sums to the elapsed simulation time.
func TestRadioTimeConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.New(seed)
		r := radio.New(eng, radio.Config{
			TurnOnDelay:  time.Duration(rng.Intn(3000)) * time.Microsecond,
			TurnOffDelay: time.Duration(rng.Intn(1000)) * time.Microsecond,
		})
		// Random plausible transitions.
		for i := 0; i < 40; i++ {
			at := time.Duration(rng.Intn(100)) * time.Millisecond
			op := rng.Intn(4)
			eng.Schedule(at, func() {
				switch op {
				case 0:
					r.TurnOff()
				case 1:
					r.TurnOn()
				case 2:
					if r.CanReceive() {
						r.BeginRx()
					}
				case 3:
					r.EndRx()
				}
			})
		}
		eng.Run(200 * time.Millisecond)
		var sum time.Duration
		for _, s := range []radio.State{radio.Off, radio.TurningOn, radio.Idle,
			radio.Rx, radio.Tx, radio.TurningOff} {
			sum += r.TimeIn(s)
		}
		return sum == eng.Now()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
