package phy

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/geom"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

type mockRx struct {
	delivered []Frame // copies: delivered *Frames are only valid in the callback
	carrier   []bool
}

func (m *mockRx) FrameDelivered(f *Frame)  { m.delivered = append(m.delivered, *f) }
func (m *mockRx) CarrierChanged(busy bool) { m.carrier = append(m.carrier, busy) }

// testNet builds a channel over a chain of n nodes spaced 100m apart with
// 125m range (so only adjacent nodes hear each other).
func testNet(t *testing.T, n int, cfg Config) (*sim.Engine, *Channel, []*radio.Radio, []*mockRx) {
	t.Helper()
	eng := sim.New(1)
	topo, err := topology.FromPositions(geom.LinePlacement(n, 100), 125)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := NewChannel(eng, topo, cfg)
	radios := make([]*radio.Radio, n)
	rxs := make([]*mockRx, n)
	for i := 0; i < n; i++ {
		radios[i] = radio.New(eng, radio.Config{})
		rxs[i] = &mockRx{}
		ch.Attach(NodeID(i), radios[i], rxs[i])
	}
	return eng, ch, radios, rxs
}

func TestFrameDuration(t *testing.T) {
	eng := sim.New(1)
	topo, _ := topology.FromPositions(geom.LinePlacement(2, 100), 125)
	ch, _ := NewChannel(eng, topo, Config{BitRate: 1_000_000, PerFrameOverhead: 192 * time.Microsecond})
	// 52 bytes at 1 Mbps = 416 µs + 192 µs preamble.
	if got := ch.FrameDuration(52); got != 608*time.Microsecond {
		t.Fatalf("FrameDuration(52) = %v, want 608µs", got)
	}
}

func TestUnicastDelivery(t *testing.T) {
	eng, ch, _, rxs := testNet(t, 3, DefaultConfig())
	ch.StartTx(0, 1, 52, "hello")
	eng.Run(time.Second)

	if len(rxs[1].delivered) != 1 {
		t.Fatalf("node 1 got %d frames, want 1", len(rxs[1].delivered))
	}
	if got := rxs[1].delivered[0].Payload; got != "hello" {
		t.Fatalf("payload = %v, want hello", got)
	}
	// Node 2 is out of range of node 0.
	if len(rxs[2].delivered) != 0 {
		t.Fatalf("node 2 got %d frames, want 0 (out of range)", len(rxs[2].delivered))
	}
	st := ch.Stats()
	if st.Transmissions != 1 || st.Deliveries != 1 {
		t.Fatalf("stats = %+v, want 1 tx 1 delivery", st)
	}
}

func TestOverheardUnicastReportedForNAV(t *testing.T) {
	eng, ch, _, rxs := testNet(t, 3, DefaultConfig())
	// 1 -> 2; node 0 is in range of 1 but not the destination. The channel
	// still reports the decode so the MAC can set its NAV; the Overheard
	// counter distinguishes it from a real delivery.
	ch.StartTx(1, 2, 52, "x")
	eng.Run(time.Second)
	if len(rxs[0].delivered) != 1 {
		t.Fatal("node 0 should decode (overhear) the unicast for NAV purposes")
	}
	if len(rxs[2].delivered) != 1 {
		t.Fatal("node 2 missed its unicast")
	}
	st := ch.Stats()
	if st.Deliveries != 1 || st.Overheard != 1 {
		t.Fatalf("stats = %+v, want 1 delivery and 1 overheard", st)
	}
}

func TestBroadcastDelivery(t *testing.T) {
	eng, ch, _, rxs := testNet(t, 3, DefaultConfig())
	ch.StartTx(1, Broadcast, 52, "b")
	eng.Run(time.Second)
	if len(rxs[0].delivered) != 1 || len(rxs[2].delivered) != 1 {
		t.Fatalf("broadcast deliveries = %d,%d, want 1,1",
			len(rxs[0].delivered), len(rxs[2].delivered))
	}
}

func TestSleepingReceiverMissesFrame(t *testing.T) {
	eng, ch, radios, rxs := testNet(t, 2, DefaultConfig())
	radios[1].TurnOff()
	ch.StartTx(0, 1, 52, "x")
	eng.Run(time.Second)
	if len(rxs[1].delivered) != 0 {
		t.Fatal("sleeping node received a frame")
	}
	if ch.Stats().MissedAsleep != 1 {
		t.Fatalf("MissedAsleep = %d, want 1", ch.Stats().MissedAsleep)
	}
}

func TestRadioOffMidFrameLosesFrame(t *testing.T) {
	eng, ch, radios, rxs := testNet(t, 2, DefaultConfig())
	ch.StartTx(0, 1, 52, "x")
	// Turn the receiver off halfway through the frame.
	eng.Schedule(300*time.Microsecond, func() { radios[1].TurnOff() })
	eng.Run(time.Second)
	if len(rxs[1].delivered) != 0 {
		t.Fatal("frame delivered despite radio powering down mid-reception")
	}
}

func TestCollisionCorruptsBothFrames(t *testing.T) {
	// Nodes 0 and 2 both in range of 1; simultaneous tx collide at 1.
	eng, ch, _, rxs := testNet(t, 3, DefaultConfig())
	ch.StartTx(0, 1, 52, "a")
	ch.StartTx(2, 1, 52, "b")
	eng.Run(time.Second)
	if len(rxs[1].delivered) != 0 {
		t.Fatalf("node 1 received %d frames despite collision", len(rxs[1].delivered))
	}
	if ch.Stats().Collisions == 0 {
		t.Fatal("no collisions recorded")
	}
}

func TestPartialOverlapCollides(t *testing.T) {
	eng, ch, _, rxs := testNet(t, 3, DefaultConfig())
	ch.StartTx(0, 1, 52, "a")
	// Second frame starts before the first ends.
	eng.Schedule(100*time.Microsecond, func() { ch.StartTx(2, 1, 52, "b") })
	eng.Run(time.Second)
	if len(rxs[1].delivered) != 0 {
		t.Fatal("partial overlap should corrupt the reception")
	}
}

func TestHiddenTerminalNoInterferenceOutOfRange(t *testing.T) {
	// Chain 0-1-2-3: tx 0->1 and 3->2 do not interfere (0 and 3 are 300m
	// apart, receivers 1 and 2 are each in range of only one transmitter).
	eng, ch, _, rxs := testNet(t, 4, DefaultConfig())
	ch.StartTx(0, 1, 52, "a")
	ch.StartTx(3, 2, 52, "b")
	eng.Run(time.Second)
	if len(rxs[1].delivered) != 1 {
		t.Fatalf("node 1 deliveries = %d, want 1", len(rxs[1].delivered))
	}
	if len(rxs[2].delivered) != 1 {
		t.Fatalf("node 2 deliveries = %d, want 1", len(rxs[2].delivered))
	}
}

func TestExposedReceiverHearsBothAndCollides(t *testing.T) {
	// Chain 0-1-2: 0 and 2 are hidden from each other but node 1 hears
	// both. This is the classic hidden-terminal collision.
	eng, ch, _, rxs := testNet(t, 3, DefaultConfig())
	ch.StartTx(0, 1, 52, "a")
	eng.Schedule(50*time.Microsecond, func() { ch.StartTx(2, Broadcast, 14, "b") })
	eng.Run(time.Second)
	if len(rxs[1].delivered) != 0 {
		t.Fatal("hidden-terminal overlap should collide at the common receiver")
	}
}

func TestCarrierEdges(t *testing.T) {
	eng, ch, _, rxs := testNet(t, 2, DefaultConfig())
	ch.StartTx(0, 1, 52, "x")
	if !ch.CarrierBusy(1) {
		t.Fatal("node 1 should sense carrier during tx")
	}
	eng.Run(time.Second)
	if ch.CarrierBusy(1) {
		t.Fatal("carrier still busy after tx end")
	}
	if len(rxs[1].carrier) != 2 || rxs[1].carrier[0] != true || rxs[1].carrier[1] != false {
		t.Fatalf("carrier edges = %v, want [true false]", rxs[1].carrier)
	}
}

func TestCarrierNotSensedWhileOff(t *testing.T) {
	_, ch, radios, _ := testNet(t, 2, DefaultConfig())
	radios[1].TurnOff()
	ch.StartTx(0, 1, 52, "x")
	if ch.CarrierBusy(1) {
		t.Fatal("powered-down radio senses carrier")
	}
}

func TestOwnTransmissionIsBusy(t *testing.T) {
	_, ch, _, _ := testNet(t, 2, DefaultConfig())
	ch.StartTx(0, 1, 52, "x")
	if !ch.CarrierBusy(0) {
		t.Fatal("transmitter should report busy during its own tx")
	}
}

func TestLossInjection(t *testing.T) {
	eng := sim.New(1)
	topo, _ := topology.FromPositions(geom.LinePlacement(2, 100), 125)
	cfg := DefaultConfig()
	cfg.LossRate = 0.5
	ch, _ := NewChannel(eng, topo, cfg)
	radios := []*radio.Radio{radio.New(eng, radio.Config{}), radio.New(eng, radio.Config{})}
	rxs := []*mockRx{{}, {}}
	ch.Attach(0, radios[0], rxs[0])
	ch.Attach(1, radios[1], rxs[1])

	const n = 400
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 2 * time.Millisecond
		eng.Schedule(at, func() { ch.StartTx(0, 1, 52, i) })
	}
	eng.Run(time.Duration(n+1) * 2 * time.Millisecond)
	got := len(rxs[1].delivered)
	if got < n*3/10 || got > n*7/10 {
		t.Fatalf("delivered %d of %d with 50%% loss, want roughly half", got, n)
	}
	if int(ch.Stats().RandomDrops)+got != n {
		t.Fatalf("drops (%d) + deliveries (%d) != %d", ch.Stats().RandomDrops, got, n)
	}
}

func TestDisableRemovesNode(t *testing.T) {
	eng, ch, radios, rxs := testNet(t, 2, DefaultConfig())
	ch.Disable(1)
	if ch.Enabled(1) {
		t.Fatal("node still enabled after Disable")
	}
	if radios[1].State() != radio.Off {
		t.Fatal("disabled node's radio should be off")
	}
	ch.StartTx(0, 1, 52, "x")
	eng.Run(time.Second)
	if len(rxs[1].delivered) != 0 {
		t.Fatal("disabled node received a frame")
	}
}

func TestWakeMidFrameCannotReceive(t *testing.T) {
	eng, ch, radios, rxs := testNet(t, 2, DefaultConfig())
	radios[1].TurnOff()
	ch.StartTx(0, 1, 52, "x")
	// Wake instantly mid-frame: missed the preamble, cannot lock on,
	// but carrier should be audible.
	eng.Schedule(100*time.Microsecond, func() {
		radios[1].TurnOn()
		if !ch.CarrierBusy(1) {
			t.Error("woken radio should sense ongoing transmission")
		}
	})
	eng.Run(time.Second)
	if len(rxs[1].delivered) != 0 {
		t.Fatal("node received a frame whose start it missed")
	}
}

func TestAttachTwicePanics(t *testing.T) {
	eng := sim.New(1)
	topo, _ := topology.FromPositions(geom.LinePlacement(2, 100), 125)
	ch, _ := NewChannel(eng, topo, DefaultConfig())
	r := radio.New(eng, radio.Config{})
	ch.Attach(0, r, &mockRx{})
	defer func() {
		if recover() == nil {
			t.Error("double attach did not panic")
		}
	}()
	ch.Attach(0, r, &mockRx{})
}
