// Package phy simulates the shared wireless channel: frame serialization
// at the channel bitrate, a pluggable propagation model (unit-disc by
// default; see Propagation), per-receiver collision detection, and
// carrier sensing.
//
// The model is intentionally at the granularity a CSMA/CA MAC needs:
//
//   - A frame occupies the channel at every node within range of the
//     transmitter for its full serialization time.
//   - A node receives a frame only if its radio was Idle when the frame
//     started; a second overlapping frame at the same receiver corrupts
//     the reception (no capture effect).
//   - Carrier sense reports whether any in-range transmission is ongoing;
//     like a real radio, a node only senses while its radio is powered.
//
// Propagation delay over ≤500 m is under 2 µs — three orders of magnitude
// below the slot time — and is ignored, as in most WSN simulations.
package phy

import (
	"fmt"
	"time"

	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

// NodeID aliases the topology node identifier: the channel, MAC and upper
// layers all share one ID space.
type NodeID = topology.NodeID

// Broadcast is the destination address for frames delivered to every
// listening neighbor.
const Broadcast NodeID = -1

// Frame is one unit of channel occupancy.
//
// Frames are pooled by the channel: a delivered *Frame is valid only for
// the duration of the FrameDelivered callback and must not be retained
// (copy it if needed). The MAC consumes frames synchronously, so this
// only constrains direct channel users.
type Frame struct {
	// ID is unique per transmission attempt (retransmissions get new IDs).
	ID uint64
	// Src is the transmitting node.
	Src NodeID
	// Dst is the intended receiver, or Broadcast.
	Dst NodeID
	// Bytes is the on-air size of the frame.
	Bytes int
	// Payload is the MAC-layer content; the channel does not inspect it.
	Payload any
}

// Receiver is the MAC-side interface for channel callbacks.
type Receiver interface {
	// FrameDelivered is invoked for every frame this node decoded in full
	// without collision — including unicast frames addressed to other
	// nodes, which a CSMA/CA MAC uses for virtual carrier sense (NAV).
	// The receiver must check Frame.Dst itself.
	FrameDelivered(f *Frame)
	// CarrierChanged signals the rising (busy=true) and falling edge of
	// channel energy audible at this node. It fires regardless of radio
	// power state; the MAC must gate on its own radio.
	CarrierChanged(busy bool)
}

// Observer is notified of channel activity, synchronously and in event
// order. Observers must be pure — no scheduling, no state mutation, no
// random draws — so an observed run stays byte-identical to an
// unobserved one. The invariant auditor (internal/check) uses TxStarted
// to verify no frame leaves a sleeping or crashed radio, and both hooks
// to fold channel activity into the trace digest.
type Observer interface {
	// TxStarted fires at the start of every transmission, before the
	// source radio enters Tx: state is the radio state at that instant
	// and enabled whether the station is alive on the channel.
	TxStarted(f *Frame, state radio.State, enabled bool)
	// Delivered fires for every successful frame decode at dst, before
	// the receiver's FrameDelivered callback.
	Delivered(f *Frame, dst NodeID)
}

// Stats counts channel-level outcomes.
type Stats struct {
	// Transmissions is the number of frames put on the air.
	Transmissions uint64
	// Deliveries is the number of successful frame deliveries to their
	// addressees (a broadcast may count several times, once per receiver).
	Deliveries uint64
	// Overheard counts decoded frames addressed to someone else.
	Overheard uint64
	// Collisions is the number of receptions corrupted by overlap.
	Collisions uint64
	// RandomDrops is the number of deliveries suppressed by loss injection.
	RandomDrops uint64
	// LinkDrops is the number of deliveries suppressed by per-link loss
	// (the dynamics layer's link-degradation injector).
	LinkDrops uint64
	// FadeDrops is the number of deliveries suppressed by the propagation
	// model's per-link decode verdict (gray-zone models; the default disc
	// model never drops).
	FadeDrops uint64
	// MissedAsleep is the number of frame arrivals at a receiver whose
	// radio could not receive (off, transitioning, or mid-reception of
	// the same frame start).
	MissedAsleep uint64
	// BytesSent is the total payload bytes put on the air.
	BytesSent uint64
}

// Add accumulates o into s, merging the per-lane statistics of a
// parallel run. A cross-shard transmission counts Transmissions and
// BytesSent once (on its source lane) and its receiver-side outcomes on
// whichever lanes delivered it, so the merged totals balance exactly
// like a sequential run's.
func (s *Stats) Add(o Stats) {
	s.Transmissions += o.Transmissions
	s.Deliveries += o.Deliveries
	s.Overheard += o.Overheard
	s.Collisions += o.Collisions
	s.RandomDrops += o.RandomDrops
	s.LinkDrops += o.LinkDrops
	s.FadeDrops += o.FadeDrops
	s.MissedAsleep += o.MissedAsleep
	s.BytesSent += o.BytesSent
}

// activeTx is one in-flight transmission. The struct embeds its Frame
// and its owning channel so the completion event can carry the struct
// itself (no per-transmission closure); the whole footprint is recycled
// through the channel's freelist and the steady state of StartTx is
// allocation-free.
type activeTx struct {
	frame Frame
	ch    *Channel
	// remote marks a transmission replayed from another shard's lane:
	// the source station lives elsewhere, so only the receiver-side
	// bookkeeping applies here.
	remote bool
}

// activeTxEnd is the completion dispatcher shared by every transmission.
func activeTxEnd(x any) {
	tx := x.(*activeTx)
	tx.ch.endTx(tx)
}

type station struct {
	id      NodeID
	radio   *radio.Radio
	rx      Receiver
	enabled bool
	// disabled marks a permanent Disable (node death): unlike a
	// Suspend, it can never be Resumed.
	disabled bool

	carriers  int       // in-range ongoing transmissions
	receiving *activeTx // frame this station is locked onto
	corrupted bool      // receiving frame got hit by overlap
}

// linkKey identifies one directed link for per-link loss injection.
type linkKey struct {
	src, dst NodeID
}

// Channel is the shared medium connecting all attached stations.
type Channel struct {
	eng      *sim.Engine
	topo     *topology.Topology
	bitrate  int64 // bits per second
	overhead time.Duration
	lossRate float64
	// stations is a dense, by-value (SoA-style) table indexed by NodeID:
	// one cache-friendly slab instead of N pointer-linked objects. It is
	// sized once at construction and never grows, so interior pointers
	// (&c.stations[i]) stay valid for the run. Arena-backed when the
	// engine carries an arena.
	stations  []station
	nextID    uint64
	stats     Stats
	neighbors func(NodeID) []NodeID
	obs       Observer
	// prop is the propagation model; discFast marks the unit-disc
	// default, whose neighbor-candidate graph already equals the
	// deliverable set, so the per-delivery verdict is skipped entirely.
	prop     Propagation
	discFast bool
	// linkLoss holds per-directed-link drop probabilities (dynamics
	// layer); nil/empty costs nothing on the delivery path.
	linkLoss map[linkKey]float64
	// active tracks in-flight transmissions so Resume can rebuild a
	// returning station's carrier count; a handful at any instant.
	active []*activeTx
	// freeTx recycles activeTx structs (frame + completion callback);
	// bounded by the peak number of concurrent transmissions.
	freeTx []*activeTx
	// mesh/lane connect this channel to its siblings under sharded
	// parallel execution: the channel then carries only the stations of
	// shard `lane`, and boundary transmissions are routed through the
	// mesh. Both are nil/zero on sequential runs.
	mesh *Mesh
	lane int32
	// freeRemote recycles the envelopes carrying inbound cross-shard
	// transmissions from the mesh barrier to their start instant.
	freeRemote []*remoteStart
}

// Config parameterizes the channel.
type Config struct {
	// BitRate is the channel rate in bits per second. The paper uses 1 Mbps.
	BitRate int64
	// PerFrameOverhead is fixed per-frame airtime (PHY preamble + header).
	PerFrameOverhead time.Duration
	// LossRate is an independent probability of dropping each otherwise
	// successful delivery, for transient-loss experiments. Zero disables.
	LossRate float64
	// Propagation selects the delivery model; nil selects the unit-disc
	// model, the paper's channel. Gray-zone models veto individual
	// deliveries by distance-dependent probability, composing with
	// LossRate and the per-link loss injection.
	Propagation Propagation
}

// DefaultConfig returns the paper's channel: 1 Mbps with a 96 µs PHY
// preamble (802.11 short preamble).
func DefaultConfig() Config {
	return Config{BitRate: 1_000_000, PerFrameOverhead: 96 * time.Microsecond}
}

// NewChannel creates a channel over the given topology. Stations must be
// attached for every node before the simulation starts. Configuration
// errors (bad bitrate, loss rate out of range) are returned, not
// panicked, so a bad scenario spec surfaces as a build failure.
func NewChannel(eng *sim.Engine, topo *topology.Topology, cfg Config) (*Channel, error) {
	if cfg.BitRate <= 0 {
		return nil, fmt.Errorf("phy: bitrate must be positive, got %d", cfg.BitRate)
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		return nil, fmt.Errorf("phy: loss rate must be in [0,1), got %g", cfg.LossRate)
	}
	prop := cfg.Propagation
	if prop == nil {
		prop = discModel{}
	}
	c := &Channel{
		eng:      eng,
		topo:     topo,
		bitrate:  cfg.BitRate,
		overhead: cfg.PerFrameOverhead,
		lossRate: cfg.LossRate,
		stations: sim.ArenaSlice[station](eng, "phy.stations", topo.NumNodes()),
		prop:     prop,
		discFast: IsDisc(prop),
		// A handful of transmissions are in flight at any instant; seed the
		// tracking and recycling lists with arena-backed capacity.
		active: sim.ArenaSlice[*activeTx](eng, "phy.active", 8)[:0],
		freeTx: sim.ArenaSlice[*activeTx](eng, "phy.freetx", 8)[:0],
	}
	c.neighbors = topo.Neighbors
	return c, nil
}

// Propagation returns the channel's propagation model.
func (c *Channel) Propagation() Propagation { return c.prop }

// Attach registers node id with its radio and MAC receiver. The channel
// subscribes to radio state changes so that a radio powering down
// mid-reception drops the frame.
func (c *Channel) Attach(id NodeID, r *radio.Radio, rx Receiver) {
	st := &c.stations[id]
	if st.rx != nil {
		panic(fmt.Sprintf("phy: node %d attached twice", id))
	}
	*st = station{id: id, radio: r, rx: rx, enabled: true}
	r.SubscribeState(st)
}

// RadioStateChanged implements radio.StateListener: leaving a listening
// state mid-frame loses the frame.
func (st *station) RadioStateChanged(old, new radio.State) {
	if st.receiving != nil && new != radio.Rx {
		st.receiving = nil
		st.corrupted = false
	}
}

// Stats returns a copy of the channel counters.
func (c *Channel) Stats() Stats { return c.stats }

// SetObserver installs a channel activity observer (nil disables).
func (c *Channel) SetObserver(o Observer) { c.obs = o }

// SetLinkLoss sets the drop probability of the directed link src→dst.
// p <= 0 removes the entry; p must be below 1 or an error is returned.
// The dynamics layer uses this for deterministic link-degradation ramps.
func (c *Channel) SetLinkLoss(src, dst NodeID, p float64) error {
	if p >= 1 {
		return fmt.Errorf("phy: link loss must be below 1, got %g", p)
	}
	k := linkKey{src: src, dst: dst}
	if p <= 0 {
		delete(c.linkLoss, k)
		return nil
	}
	if c.linkLoss == nil {
		c.linkLoss = make(map[linkKey]float64)
	}
	c.linkLoss[k] = p
	return nil
}

// LinkLoss returns the configured drop probability of src→dst (0 = none).
func (c *Channel) LinkLoss(src, dst NodeID) float64 {
	return c.linkLoss[linkKey{src: src, dst: dst}]
}

// NumStations returns the size of the channel's dense station ID space.
// MACs use it to size per-peer bookkeeping slices.
func (c *Channel) NumStations() int { return len(c.stations) }

// Neighbors returns the candidate-neighbor list of node id, sorted
// ascending — the exact set of stations frames from id can reach (and,
// by range symmetry, the set id can receive from). MACs use it to size
// and index per-peer bookkeeping by neighbor position instead of by
// the full station ID space. The returned slice is shared, read-only.
func (c *Channel) Neighbors(id NodeID) []NodeID { return c.neighbors(id) }

// FrameDuration returns the airtime of a frame with the given payload size.
func (c *Channel) FrameDuration(bytes int) time.Duration {
	bits := int64(bytes) * 8
	return c.overhead + time.Duration(bits*int64(time.Second)/c.bitrate)
}

// CarrierBusy reports whether node id currently senses energy on the
// channel. A powered-down radio senses nothing.
func (c *Channel) CarrierBusy(id NodeID) bool {
	st := &c.stations[id]
	if !st.radio.IsListening() && st.radio.State() != radio.Tx {
		return false
	}
	return st.carriers > 0 || st.radio.State() == radio.Tx
}

// Disable removes node id from the channel permanently (node failure):
// it no longer receives frames or generates carrier at others. Its radio
// is shut down for good, so stale wake-ups cannot resurrect the node.
func (c *Channel) Disable(id NodeID) {
	st := &c.stations[id]
	st.enabled = false
	st.disabled = true
	st.receiving = nil
	st.radio.Shutdown()
}

// Enabled reports whether node id is still alive on the channel.
func (c *Channel) Enabled(id NodeID) bool { return c.stations[id].enabled }

// Disabled reports whether node id was permanently disabled (node
// death); a Suspended node is not Disabled and may be Resumed.
func (c *Channel) Disabled(id NodeID) bool { return c.stations[id].disabled }

// Suspend removes node id from the channel temporarily (a crash the
// dynamics layer may later recover): it stops receiving frames and
// generating carrier, and its radio hardware goes down until Resume.
// Unlike Disable, the outage is reversible.
func (c *Channel) Suspend(id NodeID) {
	st := &c.stations[id]
	st.enabled = false
	st.receiving = nil
	st.corrupted = false
	st.carriers = 0
	st.radio.Shutdown()
}

// Resume returns a suspended node to the channel: its radio hardware is
// restored (still off — the caller wakes it) and its carrier count is
// rebuilt from the transmissions in flight at this instant, since
// carrier edges during the outage were not delivered to it. A
// permanently Disabled node cannot be resumed.
func (c *Channel) Resume(id NodeID) {
	st := &c.stations[id]
	if st.enabled || st.disabled {
		return
	}
	st.enabled = true
	st.radio.Restore()
	st.carriers = 0
	for _, tx := range c.active {
		if c.topo.Connected(tx.frame.Src, id) {
			st.carriers++
		}
	}
}

// StartTx puts a frame on the air from src and returns its airtime. The
// source radio must be powered. Delivery and carrier bookkeeping at every
// in-range station happen automatically; the transmission completes (and
// the source radio returns to Idle) after the returned duration.
func (c *Channel) StartTx(src NodeID, dst NodeID, bytes int, payload any) (time.Duration, *Frame) {
	st := &c.stations[src]
	if !st.enabled {
		panic(fmt.Sprintf("phy: disabled node %d transmitting", src))
	}
	tx := sim.TakeLast(&c.freeTx)
	if tx == nil {
		tx = sim.ArenaGrab[activeTx](c.eng, "phy.tx")
		tx.ch = c
	}
	tx.frame = Frame{ID: c.nextID, Src: src, Dst: dst, Bytes: bytes, Payload: payload}
	c.nextID++
	dur := c.FrameDuration(bytes)

	c.stats.Transmissions++
	c.stats.BytesSent += uint64(bytes)
	if c.obs != nil {
		c.obs.TxStarted(&tx.frame, st.radio.State(), st.enabled)
	}
	c.active = append(c.active, tx)

	st.radio.BeginTx()
	for _, nb := range c.neighbors(src) {
		rst := &c.stations[nb]
		if !rst.enabled {
			continue
		}
		rst.carriers++
		if rst.carriers == 1 {
			rst.rx.CarrierChanged(true)
		}
		switch {
		case rst.receiving != nil:
			// Already locked onto another frame: that reception is now
			// corrupted. The new frame is lost at this receiver too.
			rst.corrupted = true
			c.stats.Collisions++
		case rst.radio.CanReceive():
			rst.receiving = tx
			rst.corrupted = false
			rst.radio.BeginRx()
		default:
			c.stats.MissedAsleep++
		}
	}

	if c.mesh != nil {
		c.mesh.route(c, tx, dur)
	}
	c.eng.AfterArg(dur, activeTxEnd, tx)
	return dur, &tx.frame
}

func (c *Channel) endTx(tx *activeTx) {
	src := tx.frame.Src
	if !tx.remote {
		st := &c.stations[src]
		if st.radio.State() == radio.Tx {
			st.radio.EndTx()
		}
	}
	for _, nb := range c.neighbors(src) {
		rst := &c.stations[nb]
		if !rst.enabled {
			continue
		}
		rst.carriers--
		if rst.receiving == tx {
			corrupted := rst.corrupted
			rst.receiving = nil
			rst.corrupted = false
			// Deliver before EndRx: the MAC records the ACK it owes during
			// delivery, so a sleep scheduler re-evaluating on the Rx→Idle
			// transition sees the pending work and keeps the radio on.
			if !corrupted {
				c.deliver(rst, &tx.frame)
			}
			rst.radio.EndRx()
		}
		if rst.carriers == 0 {
			rst.rx.CarrierChanged(false)
		}
	}
	// Every station has detached from this transmission: recycle it. The
	// payload reference is dropped so the pool does not pin MAC headers.
	for i, a := range c.active {
		if a == tx {
			last := len(c.active) - 1
			c.active[i] = c.active[last]
			c.active[last] = nil
			c.active = c.active[:last]
			break
		}
	}
	tx.frame.Payload = nil
	tx.remote = false
	c.freeTx = append(c.freeTx, tx)
}

func (c *Channel) deliver(rst *station, f *Frame) {
	// Propagation verdict first: link quality decides the decode before
	// any injected loss. The disc default skips this entirely — its
	// candidate graph equals the deliverable set — and models only draw
	// rng inside their gray zone, so hard regions stay deterministic.
	if !c.discFast {
		d := c.topo.Position(f.Src).Dist(c.topo.Position(rst.id))
		switch p := c.prop.DeliveryProb(d, c.topo.Range()); {
		case p >= 1:
		case p <= 0 || c.eng.Rand().Float64() >= p:
			c.stats.FadeDrops++
			return
		}
	}
	if c.lossRate > 0 && c.eng.Rand().Float64() < c.lossRate {
		c.stats.RandomDrops++
		return
	}
	if len(c.linkLoss) > 0 {
		if p := c.linkLoss[linkKey{src: f.Src, dst: rst.id}]; p > 0 && c.eng.Rand().Float64() < p {
			c.stats.LinkDrops++
			return
		}
	}
	if f.Dst == Broadcast || f.Dst == rst.id {
		c.stats.Deliveries++
	} else {
		c.stats.Overheard++
	}
	if c.obs != nil {
		c.obs.Delivered(f, rst.id)
	}
	rst.rx.FrameDelivered(f)
}
