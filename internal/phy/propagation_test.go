package phy

import (
	"math"
	"testing"

	"github.com/essat/essat/internal/geom"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

func newTestEngineTopo(t *testing.T) (*sim.Engine, *topology.Topology) {
	t.Helper()
	topo, err := topology.FromPositions(geom.LinePlacement(2, 100), 125)
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(1), topo
}

func TestPropagationRegistry(t *testing.T) {
	names := PropagationNames()
	want := []string{Disc, Shadowing, DualDisc}
	if len(names) < len(want) {
		t.Fatalf("PropagationNames() = %v, want at least %v", names, want)
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("PropagationNames()[%d] = %q, want %q", i, names[i], w)
		}
	}
	if _, err := NewPropagation("warp", nil); err == nil {
		t.Error("unknown model did not error")
	}
	m, err := NewPropagation("", nil)
	if err != nil {
		t.Fatalf("empty name: %v", err)
	}
	if m.Name() != Disc {
		t.Errorf("empty name resolved to %q, want disc", m.Name())
	}
}

func TestPropagationUnknownParamsRejected(t *testing.T) {
	for _, name := range []string{Disc, Shadowing, DualDisc} {
		if _, err := NewPropagation(name, map[string]float64{"bogus": 1}); err == nil {
			t.Errorf("%s accepted unknown param", name)
		}
	}
}

func TestPropagationParamValidation(t *testing.T) {
	bad := []struct {
		model  string
		params map[string]float64
	}{
		{Shadowing, map[string]float64{"sigma": 0}},
		{Shadowing, map[string]float64{"sigma": -1}},
		{Shadowing, map[string]float64{"pathloss": 0}},
		{DualDisc, map[string]float64{"inner": 0}},
		{DualDisc, map[string]float64{"inner": 1.5, "outer": 1.0}},
	}
	for _, b := range bad {
		if _, err := NewPropagation(b.model, b.params); err == nil {
			t.Errorf("%s accepted %v", b.model, b.params)
		}
	}
}

func TestDiscModel(t *testing.T) {
	m, err := NewPropagation(Disc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MaxRange(125); got != 125 {
		t.Errorf("MaxRange(125) = %g, want 125", got)
	}
	if p := m.DeliveryProb(125, 125); p != 1 {
		t.Errorf("in-range prob = %g, want 1", p)
	}
	if p := m.DeliveryProb(125.01, 125); p != 0 {
		t.Errorf("out-of-range prob = %g, want 0", p)
	}
}

func TestShadowingModel(t *testing.T) {
	m, err := NewPropagation(Shadowing, map[string]float64{"sigma": 4, "pathloss": 3})
	if err != nil {
		t.Fatal(err)
	}
	// At the nominal range the decode margin is zero: a coin flip.
	if p := m.DeliveryProb(125, 125); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("prob at nominal range = %g, want 0.5", p)
	}
	// Monotone non-increasing in distance, bounded in [0,1].
	last := 1.0
	for d := 1.0; d < 400; d += 1 {
		p := m.DeliveryProb(d, 125)
		if p < 0 || p > 1 {
			t.Fatalf("prob(%g) = %g out of [0,1]", d, p)
		}
		if p > last+1e-12 {
			t.Fatalf("prob increased at %g: %g > %g", d, p, last)
		}
		last = p
	}
	// The candidate cutoff is where PDR ≈ 1%: just inside, the link must
	// still be plausible; the cutoff grows with sigma.
	max := m.MaxRange(125)
	if max <= 125 {
		t.Errorf("MaxRange = %g, want beyond the nominal range", max)
	}
	if p := m.DeliveryProb(max, 125); math.Abs(p-0.01) > 1e-3 {
		t.Errorf("prob at MaxRange = %g, want ~0.01", p)
	}
	wide, _ := NewPropagation(Shadowing, map[string]float64{"sigma": 8})
	if wide.MaxRange(125) <= max {
		t.Error("larger sigma did not widen MaxRange")
	}
}

func TestDualDiscModel(t *testing.T) {
	m, err := NewPropagation(DualDisc, map[string]float64{"inner": 0.6, "outer": 1.2})
	if err != nil {
		t.Fatal(err)
	}
	const r = 100.0
	if got := m.MaxRange(r); got != 120 {
		t.Errorf("MaxRange = %g, want 120", got)
	}
	if p := m.DeliveryProb(60, r); p != 1 {
		t.Errorf("inner prob = %g, want 1", p)
	}
	if p := m.DeliveryProb(120, r); p != 0 {
		t.Errorf("outer prob = %g, want 0", p)
	}
	if p := m.DeliveryProb(90, r); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("band midpoint prob = %g, want 0.5", p)
	}
}

func TestNewChannelConfigErrors(t *testing.T) {
	eng, topoDummy := newTestEngineTopo(t)
	if _, err := NewChannel(eng, topoDummy, Config{BitRate: 0}); err == nil {
		t.Error("zero bitrate did not error")
	}
	if _, err := NewChannel(eng, topoDummy, Config{BitRate: 1_000_000, LossRate: 1}); err == nil {
		t.Error("loss rate 1 did not error")
	}
	ch, err := NewChannel(eng, topoDummy, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.SetLinkLoss(0, 1, 1.0); err == nil {
		t.Error("link loss 1 did not error")
	}
	if err := ch.SetLinkLoss(0, 1, 0.5); err != nil {
		t.Errorf("valid link loss errored: %v", err)
	}
}
