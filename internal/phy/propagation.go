package phy

import (
	"fmt"
	"math"

	"github.com/essat/essat/internal/registry"
)

// The registered propagation models. Disc is the unit-disc channel of
// the paper's evaluation (the default); the others model the lossy
// gray-zone links real deployments measure: log-normal shadowing and a
// two-radius disc with a probabilistic outer band.
const (
	Disc      = "disc"
	Shadowing = "shadowing"
	DualDisc  = "dual-disc"
)

// Propagation decides which transmissions a receiver can decode. A
// model is consulted twice: MaxRange bounds the neighbor-candidate
// graph at build time (topology's spatial hash), and DeliveryProb gives
// the per-link decode probability the channel draws against on every
// otherwise-successful delivery. Implementations must be pure functions
// of their arguments so runs stay deterministic: all randomness lives
// in the channel's single rng draw.
type Propagation interface {
	// Name is the registry key ("disc", "shadowing", "dual-disc").
	Name() string
	// MaxRange returns a conservative radius, given the nominal
	// communication range, beyond which delivery probability is
	// negligible. Topology builds neighbor candidates from it; a pair
	// farther apart never hears each other at all.
	MaxRange(nominal float64) float64
	// DeliveryProb returns the probability in [0,1] that a frame over a
	// link of length dist is decoded, given the nominal range. The
	// channel skips its rng draw when the result is exactly 0 or 1, so
	// models with hard regions (disc everywhere, dual-disc inside the
	// inner radius) consume no randomness there.
	DeliveryProb(dist, nominal float64) float64
}

// PropagationBuilder constructs a model from its knobs. Builders must
// reject unknown parameter keys so typos in scenario files fail loudly.
type PropagationBuilder func(params map[string]float64) (Propagation, error)

var propagations = registry.New[string, PropagationBuilder]("propagation model")

// RegisterPropagation adds a model builder under name. rank orders
// PropagationNames() for presentation (lower first); ties break by
// name. It panics on duplicates.
func RegisterPropagation(rank int, name string, b PropagationBuilder) {
	propagations.Register(name, rank, b)
}

// NewPropagation builds the model registered under name with the given
// knobs. An empty name selects disc, the paper's unit-disc channel.
func NewPropagation(name string, params map[string]float64) (Propagation, error) {
	if name == "" {
		name = Disc
	}
	b, ok := propagations.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("phy: unknown propagation model %q (registered: %v)", name, PropagationNames())
	}
	return b(params)
}

// PropagationNames lists every registered model in presentation order.
func PropagationNames() []string { return propagations.Names() }

// IsDisc reports whether p is the built-in unit-disc model (or nil, its
// shorthand). Fast paths key on the model's identity, not its Name(),
// so a custom Propagation that happens to answer "disc" still gets its
// DeliveryProb consulted.
func IsDisc(p Propagation) bool {
	if p == nil {
		return true
	}
	_, ok := p.(discModel)
	return ok
}

// paramReader pops knobs off a params map and reports leftovers, so
// every builder gets strict parsing for free.
type paramReader struct {
	model string
	left  map[string]float64
}

func newParamReader(model string, params map[string]float64) *paramReader {
	left := make(map[string]float64, len(params))
	for k, v := range params {
		left[k] = v
	}
	return &paramReader{model: model, left: left}
}

func (r *paramReader) get(key string, def float64) float64 {
	if v, ok := r.left[key]; ok {
		delete(r.left, key)
		return v
	}
	return def
}

func (r *paramReader) finish() error {
	if len(r.left) == 0 {
		return nil
	}
	keys := make([]string, 0, len(r.left))
	for k := range r.left {
		keys = append(keys, k)
	}
	return fmt.Errorf("phy/%s: unknown params %v", r.model, keys)
}

func init() {
	RegisterPropagation(10, Disc, newDisc)
	RegisterPropagation(20, Shadowing, newShadowing)
	RegisterPropagation(30, DualDisc, newDualDisc)
}

// discModel is the unit-disc channel: every frame within the nominal
// range is decoded, nothing beyond it. No params. Because MaxRange
// equals the nominal range, the neighbor-candidate graph already IS the
// deliverable set and the channel bypasses the per-delivery verdict
// entirely — the refactor costs the default configuration nothing.
type discModel struct{}

func newDisc(params map[string]float64) (Propagation, error) {
	if err := newParamReader(Disc, params).finish(); err != nil {
		return nil, err
	}
	return discModel{}, nil
}

func (discModel) Name() string                     { return Disc }
func (discModel) MaxRange(nominal float64) float64 { return nominal }

func (discModel) DeliveryProb(dist, nominal float64) float64 {
	if dist <= nominal {
		return 1
	}
	return 0
}

// shadowingModel is the log-normal shadowing channel: the decode margin
// at distance d is 10·pathloss·log10(R/d) dB (zero at the nominal range
// R, where delivery is a coin flip), perturbed by zero-mean Gaussian
// shadowing of standard deviation sigma dB, so
//
//	PDR(d) = Φ(10·n·log10(R/d) / σ).
//
// This produces the measured gray zone: near-perfect links well inside
// R, a wide band of intermediate-quality links around it, and a long
// unreliable tail beyond. Knobs: "sigma" (dB, default 4) and "pathloss"
// (exponent n, default 3).
type shadowingModel struct {
	sigma, pathloss float64
	maxFactor       float64 // MaxRange = maxFactor · nominal
}

func newShadowing(params map[string]float64) (Propagation, error) {
	r := newParamReader(Shadowing, params)
	m := shadowingModel{
		sigma:    r.get("sigma", 4),
		pathloss: r.get("pathloss", 3),
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	if m.sigma <= 0 {
		return nil, fmt.Errorf("phy/shadowing: sigma must be positive, got %g", m.sigma)
	}
	if m.pathloss <= 0 {
		return nil, fmt.Errorf("phy/shadowing: pathloss must be positive, got %g", m.pathloss)
	}
	// Cut the candidate graph where PDR falls below 1%: a margin of
	// −2.3263·σ (the 1% normal quantile), i.e. d = R·10^(2.3263σ/(10n)).
	m.maxFactor = math.Pow(10, 2.3263*m.sigma/(10*m.pathloss))
	return m, nil
}

func (shadowingModel) Name() string { return Shadowing }

func (m shadowingModel) MaxRange(nominal float64) float64 {
	return nominal * m.maxFactor
}

func (m shadowingModel) DeliveryProb(dist, nominal float64) float64 {
	if dist <= 0 {
		return 1
	}
	margin := 10 * m.pathloss * math.Log10(nominal/dist)
	// Φ(margin/σ) via erfc for numerical stability in both tails.
	return 0.5 * math.Erfc(-margin/(m.sigma*math.Sqrt2))
}

// dualDiscModel is the two-radius approximation of the gray zone: links
// shorter than inner·R always decode, links beyond outer·R never do,
// and delivery probability falls linearly across the band between.
// Knobs: "inner" (fraction of R, default 0.7) and "outer" (fraction of
// R, default 1.25).
type dualDiscModel struct {
	inner, outer float64 // fractions of the nominal range
}

func newDualDisc(params map[string]float64) (Propagation, error) {
	r := newParamReader(DualDisc, params)
	m := dualDiscModel{
		inner: r.get("inner", 0.7),
		outer: r.get("outer", 1.25),
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	if m.inner <= 0 || m.outer < m.inner {
		return nil, fmt.Errorf("phy/dual-disc: need 0 < inner <= outer, got inner %g, outer %g", m.inner, m.outer)
	}
	return m, nil
}

func (dualDiscModel) Name() string { return DualDisc }

func (m dualDiscModel) MaxRange(nominal float64) float64 {
	return nominal * m.outer
}

func (m dualDiscModel) DeliveryProb(dist, nominal float64) float64 {
	in, out := m.inner*nominal, m.outer*nominal
	switch {
	case dist <= in:
		return 1
	case dist >= out:
		return 0
	default:
		return (out - dist) / (out - in)
	}
}
