// Package campaign turns a generated workload corpus into a crash-safe
// batch run: a write-ahead JSONL journal records every spec's outcome
// as it happens, so a campaign killed at run 7,312 resumes without
// redoing or corrupting anything, and the merged result set it finally
// produces is byte-identical to an uninterrupted run's — a property the
// engine's bit-reproducible same-seed runs make provable (see
// TestCampaignResumeDigestMatch) rather than hopeful.
package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"github.com/essat/essat/internal/stats"
)

// Journal record operations.
const (
	// OpClaim marks a spec as picked up by a worker (attempt n). A claim
	// without a matching terminal record means the run was in flight
	// when the process died: resume reruns it.
	OpClaim = "claim"
	// OpDone records a completed run and its deterministic summary.
	OpDone = "done"
	// OpFail records a terminal failure (panic → quarantined, budget →
	// retries exhausted, build → spec refused). The spec is not rerun on
	// resume.
	OpFail = "fail"
)

// Failure kinds for OpFail records.
const (
	FailPanic  = "panic"
	FailBudget = "budget"
	FailBuild  = "build"
)

// ResultRecord is the deterministic summary of one spec's terminal
// outcome — exactly the fields that are reproducible across processes
// and machines (digests, event counts, metrics), never wall-clock
// measurements. The merged results.jsonl is a sequence of these, which
// is what makes "interrupted+resumed equals uninterrupted" a
// byte-equality statement.
type ResultRecord struct {
	Index    int    `json:"idx"`
	ID       string `json:"id"`
	Protocol string `json:"protocol,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	// Status is "ok" or "failed".
	Status string `json:"status"`

	// Completed-run summary (Status "ok"). Digest is the invariant
	// auditor's canonical trace digest — the strongest cross-process
	// equality check one line can carry.
	Digest        string  `json:"digest,omitempty"`
	Events        uint64  `json:"events,omitempty"`
	TreeSize      int     `json:"tree_size,omitempty"`
	MaxRank       int     `json:"max_rank,omitempty"`
	Coverage      float64 `json:"coverage,omitempty"`
	DutyCycle     float64 `json:"duty_cycle,omitempty"`
	LatencyMeanNs int64   `json:"latency_mean_ns,omitempty"`
	Violations    int     `json:"violations,omitempty"`

	// Records holds the metric-sink records the spec's results block
	// requested (versioned schema; see stats.SchemaVersion). Absent for
	// specs without one, keeping record-less campaigns byte-identical
	// to earlier journals. The records are deterministic per (spec,
	// seed), so they merge and compare like every other field here.
	Records []stats.Record `json:"records,omitempty"`

	// Failure summary (Status "failed"). Error is normalized to be
	// deterministic (no wall-clock content); Quarantine is the repro
	// bundle's directory relative to the campaign root, for panics.
	FailKind   string `json:"fail_kind,omitempty"`
	Error      string `json:"error,omitempty"`
	Quarantine string `json:"quarantine,omitempty"`
}

// Record is one journal line: an operation plus, for terminal
// operations, the result summary.
type Record struct {
	Op      string `json:"op"`
	Attempt int    `json:"attempt,omitempty"`
	ResultRecord
}

// Journal is an append-only JSONL write-ahead log. Appends are buffered
// and fsync'd in batches (every SyncEvery records) — crash-durable
// enough that at most a batch of already-finished work is rerun, cheap
// enough that journaling never gates run throughput. The file format is
// torn-write tolerant: a reader drops a torn final line — exactly the
// state a SIGKILL mid-write leaves behind — and reopening for append
// truncates it so resumed records never concatenate onto it.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	pending int
	every   int
}

// DefaultSyncEvery is the fsync batch size.
const DefaultSyncEvery = 16

// OpenJournal opens (creating or appending to) the journal at path.
// syncEvery <= 0 selects DefaultSyncEvery; syncEvery == 1 fsyncs every
// record.
//
// Before opening for append it truncates any torn tail left by a crash
// mid-write: appending after a partial final line would concatenate
// the first new record onto it, turning a tolerated torn tail into a
// corrupt non-final line that poisons every later read.
func OpenJournal(path string, syncEvery int) (*Journal, error) {
	if syncEvery <= 0 {
		syncEvery = DefaultSyncEvery
	}
	_, durable, err := readJournal(path)
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(path); err == nil && fi.Size() > durable {
		if err := os.Truncate(path, durable); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f), every: syncEvery}, nil
}

// Append journals one record. The record reaches the OS in this call
// (buffered writes are flushed per record boundary when the batch
// fills); it reaches the disk at the next batch fsync, Sync, or Close.
func (j *Journal) Append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	j.pending++
	if j.pending >= j.every {
		return j.syncLocked()
	}
	return nil
}

func (j *Journal) syncLocked() error {
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	j.pending = 0
	return nil
}

// Sync flushes buffered records and fsyncs the file — the checkpoint
// operation SIGINT/SIGTERM handling calls before exiting resumable.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	if err := j.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// ReadJournal reads every durable record from the journal at path. A
// missing file is an empty journal. The final line is allowed to be
// torn (a partial write from a crash): if it fails to parse or lacks
// its terminating newline it is dropped; an unparseable line anywhere
// earlier is corruption and an error. Records are returned in file
// order.
func ReadJournal(path string) ([]Record, error) {
	recs, _, err := readJournal(path)
	return recs, err
}

// readJournal reads the journal plus its durable prefix length: the
// byte offset just past the last record that is both parseable and
// newline-terminated. Everything beyond that offset is a torn tail,
// which OpenJournal truncates before appending.
func readJournal(path string) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("campaign: %w", err)
	}
	var recs []Record
	var durable int64
	off, lineno := 0, 0
	for off < len(data) {
		lineno++
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Newline-less tail: a write cut short by a crash. Even if it
			// happens to parse, counting it durable would let an append
			// land on the same line — treat it as torn.
			break
		}
		line := bytes.TrimSpace(data[off : off+nl])
		end := off + nl + 1
		if len(line) == 0 {
			durable = int64(end)
			off = end
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// Only the final non-empty content may be torn.
			if len(bytes.TrimSpace(data[end:])) != 0 {
				return nil, 0, fmt.Errorf("campaign: %s:%d: corrupt journal line: %w", path, lineno, err)
			}
			break
		}
		recs = append(recs, rec)
		durable = int64(end)
		off = end
	}
	return recs, durable, nil
}

// Progress is the per-spec state reconstructed from a journal replay.
type Progress struct {
	// Terminal maps spec index → its first terminal record (done or
	// fail). Duplicate terminal records — possible only through journal
	// surgery or a rerun against an already-complete campaign — are
	// tolerated: the first wins, deterministically.
	Terminal map[int]Record
	// Claims counts claim records per spec index (attempts started).
	Claims map[int]int
}

// Replay folds journal records into per-spec progress.
func Replay(recs []Record) *Progress {
	p := &Progress{Terminal: make(map[int]Record), Claims: make(map[int]int)}
	for _, rec := range recs {
		switch rec.Op {
		case OpClaim:
			p.Claims[rec.Index]++
		case OpDone, OpFail:
			if _, dup := p.Terminal[rec.Index]; !dup {
				p.Terminal[rec.Index] = rec
			}
		}
	}
	return p
}
