package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"github.com/essat/essat/internal/corpus"
	"github.com/essat/essat/internal/experiment"
)

// ErrInterrupted reports a run stopped by context cancellation
// (SIGINT/SIGTERM in the CLI) after checkpointing the journal. The
// campaign is resumable; nothing was lost.
var ErrInterrupted = errors.New("campaign: interrupted (journal checkpointed, resume to continue)")

// ErrJournalExists reports a fresh run pointed at a campaign that has
// already started; the caller wants resume, not a restart that would
// redo finished work.
var ErrJournalExists = errors.New("campaign: journal already has records; use resume")

// ErrIncomplete reports a merge attempted before every spec in every
// shard has a terminal record.
var ErrIncomplete = errors.New("campaign: not all specs have terminal records yet")

// ResultsName is the merged result set's filename inside a campaign
// directory.
const ResultsName = "results.jsonl"

// quarantineDir is the subdirectory collecting panic repro bundles.
const quarantineDir = "quarantine"

// journalName returns the journal filename for one shard.
func journalName(shard int) string { return fmt.Sprintf("journal-%03d.jsonl", shard) }

// RunConfig parameterizes one shard run.
type RunConfig struct {
	// Shard selects which shard of the corpus manifest to run (0-based);
	// item i belongs to shard i mod manifest.Shards.
	Shard int
	// Workers is the bounded worker pool size; <=0 selects GOMAXPROCS.
	Workers int
	// Budget bounds each run; the zero value is unlimited. Campaigns
	// should set at least MaxEvents so one pathological spec cannot
	// wedge a worker forever.
	Budget experiment.Budget
	// MaxRetries caps budget-exceeded retries per spec (attempts beyond
	// the first); <0 selects DefaultMaxRetries.
	MaxRetries int
	// RetryBackoff is the base backoff before a retry, grown
	// exponentially and jittered; <=0 selects DefaultRetryBackoff and
	// values above MaxRetryBackoff are clamped to it.
	RetryBackoff time.Duration
	// SyncEvery is the journal's fsync batch size; <=0 selects
	// DefaultSyncEvery.
	SyncEvery int
	// Resume permits running against a journal that already has records
	// (skipping completed specs). A fresh run with an existing journal
	// fails with ErrJournalExists.
	Resume bool
	// Log, when non-nil, receives one human-readable progress line per
	// terminal record.
	Log io.Writer
	// OnRecord, when non-nil, is called after each terminal record is
	// journaled — a deterministic hook for tests to observe (and
	// interrupt) a campaign mid-flight.
	OnRecord func(Record)
}

// DefaultMaxRetries caps budget retries; DefaultRetryBackoff is the
// base delay before the first retry; MaxRetryBackoff caps the
// exponential growth so a user-settable retry count can never shift
// the delay into overflow.
const (
	DefaultMaxRetries   = 2
	DefaultRetryBackoff = 50 * time.Millisecond
	MaxRetryBackoff     = 30 * time.Second
)

func (c RunConfig) withDefaults() RunConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	if c.RetryBackoff > MaxRetryBackoff {
		c.RetryBackoff = MaxRetryBackoff
	}
	return c
}

// retryDelay is the jittered exponential backoff before retry number
// attempt+1: base × 2^(attempt-1) capped at MaxRetryBackoff, plus up
// to 100% jitter. Growth is by doubling under the cap, not shifting —
// a shift by a user-settable attempt count overflows to a non-positive
// duration and panics the jitter draw.
func retryDelay(base time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base
	for i := 1; i < attempt && d < MaxRetryBackoff; i++ {
		d *= 2
	}
	if d > MaxRetryBackoff {
		d = MaxRetryBackoff
	}
	return d + time.Duration(rng.Int63n(int64(d)+1))
}

// Summary reports what one Run did.
type Summary struct {
	Shard int
	// Total is the shard's spec count; Skipped how many already had
	// terminal records when the run started (resume).
	Total   int
	Skipped int
	// Completed and Failed count terminal records written by this
	// process; Quarantined (⊆ Failed) counts panic repro bundles;
	// Retries counts budget-retry attempts beyond the first.
	Completed   int
	Failed      int
	Quarantined int
	Retries     int
	// Interrupted reports the run stopped on context cancellation with
	// work remaining; the journal is checkpointed and resumable.
	Interrupted bool
	// ResultsPath is the merged result set, written when this run
	// brought the whole campaign (all shards) to completion.
	ResultsPath string
}

// Run executes one shard of the corpus campaign at dir on a bounded
// worker pool, journaling every outcome. Each worker owns a reusable
// experiment arena; all workers share one deployment cache. Audit is
// forced on for every run so each done record carries the invariant
// auditor's trace digest.
//
// Failure policy: a *BudgetExceededError retries with jittered
// exponential backoff up to MaxRetries, then journals a terminal
// budget failure; a *PanicError writes a repro bundle (spec + seed +
// stack) under quarantine/ and journals a terminal panic failure; a
// build error journals immediately. The campaign always continues past
// individual failures. Context cancellation checkpoints the journal
// and returns ErrInterrupted.
//
// When the run completes the final outstanding spec of the final shard
// it also writes the merged result set (see Merge).
func Run(ctx context.Context, dir string, cfg RunConfig) (*Summary, error) {
	cfg = cfg.withDefaults()
	man, items, err := corpus.Load(dir)
	if err != nil {
		return nil, err
	}
	shards := man.Shards
	if shards <= 0 {
		shards = 1
	}
	if cfg.Shard < 0 || cfg.Shard >= shards {
		return nil, fmt.Errorf("campaign: shard %d outside [0,%d)", cfg.Shard, shards)
	}

	jpath := filepath.Join(dir, journalName(cfg.Shard))
	recs, err := ReadJournal(jpath)
	if err != nil {
		return nil, err
	}
	if len(recs) > 0 && !cfg.Resume {
		return nil, fmt.Errorf("%w: %s has %d records", ErrJournalExists, jpath, len(recs))
	}
	prog := Replay(recs)

	sum := &Summary{Shard: cfg.Shard}
	var pending []corpus.Item
	for _, it := range items {
		if it.Index%shards != cfg.Shard {
			continue
		}
		sum.Total++
		if _, done := prog.Terminal[it.Index]; done {
			sum.Skipped++
			continue
		}
		pending = append(pending, it)
	}

	j, err := OpenJournal(jpath, cfg.SyncEvery)
	if err != nil {
		return nil, err
	}
	defer j.Close()

	if len(pending) > 0 {
		if err := runPool(ctx, dir, cfg, j, pending, sum); err != nil {
			return nil, err
		}
	}

	// Checkpoint: every journaled record is durable before we either
	// report interruption or attempt the merge.
	if err := j.Sync(); err != nil {
		return nil, err
	}
	if sum.Interrupted {
		return sum, ErrInterrupted
	}
	// This shard is complete; if every shard is, write the merged
	// result set. Racing shard processes both observing completion is
	// benign: Merge is deterministic and writes atomically.
	if path, err := Merge(dir); err == nil {
		sum.ResultsPath = path
	} else if !errors.Is(err, ErrIncomplete) {
		return nil, err
	}
	return sum, nil
}

// runPool drains pending through cfg.Workers workers, accumulating
// into sum (guarded by a mutex shared with the journal's own).
func runPool(ctx context.Context, dir string, cfg RunConfig, j *Journal, pending []corpus.Item, sum *Summary) error {
	cache := experiment.NewDeployCache(0)
	work := make(chan corpus.Item)
	// stop is closed when a worker bails (error or interrupt) so the
	// feed loop never blocks sending to a pool with no receivers left —
	// with one worker that block would otherwise be a guaranteed hang.
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		halt()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := experiment.NewArenaWithCache(cache)
			for it := range work {
				rec, err := runOne(ctx, dir, cfg, j, arena, it)
				if err != nil {
					fail(err)
					return
				}
				if rec == nil {
					// Interrupted mid-spec: no terminal record; resume
					// reruns it.
					mu.Lock()
					sum.Interrupted = true
					mu.Unlock()
					halt()
					return
				}
				mu.Lock()
				switch {
				case rec.Op == OpDone:
					sum.Completed++
				default:
					sum.Failed++
					if rec.FailKind == FailPanic {
						sum.Quarantined++
					}
				}
				sum.Retries += rec.Attempt - 1
				mu.Unlock()
				if cfg.Log != nil {
					detail := rec.Digest
					if rec.Op == OpFail {
						detail = rec.FailKind
					}
					fmt.Fprintf(cfg.Log, "%-4s %s %s\n", rec.Op, rec.ID, detail)
				}
				if cfg.OnRecord != nil {
					cfg.OnRecord(*rec)
				}
			}
		}()
	}

feed:
	for _, it := range pending {
		select {
		case work <- it:
		case <-ctx.Done():
			mu.Lock()
			sum.Interrupted = true
			mu.Unlock()
			break feed
		case <-stop:
			break feed
		}
	}
	close(work)
	wg.Wait()
	return firstErr
}

// runOne runs one spec to a terminal record, retrying budget overruns
// and quarantining panics. It returns (nil, nil) when interrupted by
// ctx before reaching a terminal state.
func runOne(ctx context.Context, dir string, cfg RunConfig, j *Journal, arena *experiment.Arena, it corpus.Item) (*Record, error) {
	// Jittered backoff seeded per spec: reproducible scheduling in
	// tests without coordination between workers.
	rng := rand.New(rand.NewSource(it.Spec.Seed))
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			return nil, nil
		}
		if err := j.Append(Record{Op: OpClaim, Attempt: attempt, ResultRecord: ResultRecord{Index: it.Index, ID: it.ID}}); err != nil {
			return nil, err
		}

		// Force the auditor on: done records must carry the trace
		// digest, whatever the spec says.
		spec := *it.Spec
		spec.Audit = true
		res, runErr := experiment.RunSpecContextWith(ctx, arena, &spec, cfg.Budget)

		var rec Record
		switch {
		case runErr == nil:
			rec = Record{Op: OpDone, Attempt: attempt, ResultRecord: ResultRecord{
				Index:         it.Index,
				ID:            it.ID,
				Protocol:      string(res.Protocol),
				Seed:          res.Seed,
				Status:        "ok",
				Digest:        res.Audit.Digest,
				Events:        res.Events,
				TreeSize:      res.TreeSize,
				MaxRank:       res.MaxRank,
				Coverage:      res.Coverage,
				DutyCycle:     res.DutyCycle,
				LatencyMeanNs: res.Latency.Mean.Nanoseconds(),
				Violations:    res.Audit.Total,
				Records:       res.Records,
			}}

		case errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded):
			return nil, nil

		default:
			var pe *experiment.PanicError
			var be *experiment.BudgetExceededError
			switch {
			case errors.As(runErr, &pe):
				// A panicked stack may have left the arena's engine
				// inconsistent; drop it before the next run.
				arena.Discard()
				qdir, qerr := quarantine(dir, it, attempt, pe)
				if qerr != nil {
					return nil, qerr
				}
				rec = Record{Op: OpFail, Attempt: attempt, ResultRecord: ResultRecord{
					Index: it.Index, ID: it.ID,
					Protocol: string(pe.Protocol), Seed: pe.Seed,
					Status: "failed", FailKind: FailPanic,
					Error:      pe.Error(),
					Quarantine: qdir,
				}}
			case errors.As(runErr, &be):
				if attempt <= cfg.MaxRetries {
					select {
					case <-time.After(retryDelay(cfg.RetryBackoff, attempt, rng)):
						continue
					case <-ctx.Done():
						return nil, nil
					}
				}
				// Normalized message: BudgetExceededError.Error() embeds
				// wall-clock elapsed time, which would break merged-result
				// byte-identity across runs.
				rec = Record{Op: OpFail, Attempt: attempt, ResultRecord: ResultRecord{
					Index: it.Index, ID: it.ID,
					Protocol: it.Spec.Protocol, Seed: it.Spec.Seed,
					Status: "failed", FailKind: FailBudget,
					Error: fmt.Sprintf("exceeded %s budget after %d attempts", be.Resource, attempt),
				}}
			default:
				rec = Record{Op: OpFail, Attempt: attempt, ResultRecord: ResultRecord{
					Index: it.Index, ID: it.ID,
					Protocol: it.Spec.Protocol, Seed: it.Spec.Seed,
					Status: "failed", FailKind: FailBuild,
					Error: runErr.Error(),
				}}
			}
		}
		if err := j.Append(rec); err != nil {
			return nil, err
		}
		return &rec, nil
	}
}

// quarantine writes a panic repro bundle under dir/quarantine/<id>/:
// spec.json (runnable via essat-sim -scenario), panic.txt (value +
// stack), and meta.json. It returns the bundle directory relative to
// the campaign root.
func quarantine(root string, it corpus.Item, attempt int, pe *experiment.PanicError) (string, error) {
	rel := filepath.Join(quarantineDir, it.ID)
	dir := filepath.Join(root, rel)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("campaign: %w", err)
	}
	specJSON := pe.SpecJSON
	if specJSON == nil {
		data, err := json.MarshalIndent(it.Spec, "", "  ")
		if err != nil {
			return "", fmt.Errorf("campaign: %w", err)
		}
		specJSON = data
	}
	if err := os.WriteFile(filepath.Join(dir, "spec.json"), append(specJSON, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("campaign: %w", err)
	}
	body := fmt.Sprintf("panic: %v\n\nprotocol: %s\nseed: %d\nattempt: %d\n\n%s",
		pe.Value, pe.Protocol, pe.Seed, attempt, pe.Stack)
	if err := os.WriteFile(filepath.Join(dir, "panic.txt"), []byte(body), 0o644); err != nil {
		return "", fmt.Errorf("campaign: %w", err)
	}
	meta := map[string]any{
		"id": it.ID, "index": it.Index,
		"protocol": string(pe.Protocol), "seed": pe.Seed,
		"attempt": attempt, "value": fmt.Sprint(pe.Value),
	}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return "", fmt.Errorf("campaign: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("campaign: %w", err)
	}
	return rel, nil
}

// Merge folds every shard journal into the campaign's merged result
// set, dir/results.jsonl: one deterministic ResultRecord line per spec
// in manifest (index) order. It fails with ErrIncomplete if any spec
// lacks a terminal record. The file is written atomically (temp +
// rename), and its bytes depend only on the terminal outcomes — never
// on worker interleaving, retries, restarts, or resumes — which is the
// campaign layer's core crash-safety guarantee.
func Merge(dir string) (string, error) {
	man, err := readManifest(dir)
	if err != nil {
		return "", err
	}
	shards := man.Shards
	if shards <= 0 {
		shards = 1
	}
	terminal := make(map[int]Record)
	for s := 0; s < shards; s++ {
		recs, err := ReadJournal(filepath.Join(dir, journalName(s)))
		if err != nil {
			return "", err
		}
		for idx, rec := range Replay(recs).Terminal {
			if _, dup := terminal[idx]; !dup {
				terminal[idx] = rec
			}
		}
	}

	var buf []byte
	for _, e := range man.Specs {
		rec, ok := terminal[e.Index]
		if !ok {
			return "", fmt.Errorf("%w: spec %d (%s)", ErrIncomplete, e.Index, e.ID)
		}
		line, err := json.Marshal(rec.ResultRecord)
		if err != nil {
			return "", fmt.Errorf("campaign: %w", err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}

	// A unique temp file per caller: racing shard processes can both
	// reach Merge, and a shared temp path would let their truncates and
	// writes interleave. Rename is atomic and both write identical
	// bytes, so whichever lands last is still correct.
	path := filepath.Join(dir, ResultsName)
	tmp, err := os.CreateTemp(dir, ResultsName+".tmp-")
	if err != nil {
		return "", fmt.Errorf("campaign: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("campaign: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("campaign: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("campaign: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("campaign: %w", err)
	}
	return path, nil
}

// Status summarizes a campaign directory's progress per shard.
type Status struct {
	Specs  int
	Shards int
	// Done, Failed, and Pending count specs by terminal state across
	// all shard journals; PerShard breaks pending down by shard.
	Done     int
	Failed   int
	Pending  int
	PerShard []ShardStatus
	// Merged reports whether results.jsonl exists.
	Merged bool
}

// ShardStatus is one shard's progress.
type ShardStatus struct {
	Shard, Total, Done, Failed, Pending int
}

// ReadStatus reads the manifest and every shard journal at dir.
func ReadStatus(dir string) (*Status, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	shards := man.Shards
	if shards <= 0 {
		shards = 1
	}
	st := &Status{Specs: len(man.Specs), Shards: shards}
	for s := 0; s < shards; s++ {
		recs, err := ReadJournal(filepath.Join(dir, journalName(s)))
		if err != nil {
			return nil, err
		}
		prog := Replay(recs)
		ss := ShardStatus{Shard: s}
		for _, e := range man.Specs {
			if e.Index%shards != s {
				continue
			}
			ss.Total++
			rec, ok := prog.Terminal[e.Index]
			switch {
			case !ok:
				ss.Pending++
			case rec.Op == OpDone:
				ss.Done++
			default:
				ss.Failed++
			}
		}
		st.Done += ss.Done
		st.Failed += ss.Failed
		st.Pending += ss.Pending
		st.PerShard = append(st.PerShard, ss)
	}
	if _, err := os.Stat(filepath.Join(dir, ResultsName)); err == nil {
		st.Merged = true
	}
	return st, nil
}

// readManifest reads just the corpus manifest (no spec files).
func readManifest(dir string) (*corpus.Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, corpus.ManifestName))
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	var m corpus.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", corpus.ManifestName, err)
	}
	return &m, nil
}
