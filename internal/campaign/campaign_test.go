package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/essat/essat/internal/corpus"
	"github.com/essat/essat/internal/experiment"
	"github.com/essat/essat/internal/protocol"
)

// campaignPanicProto wires a normal NTS-SS stack and then panics
// mid-run — the shape of a protocol bug a campaign must quarantine
// rather than die from.
type campaignPanicProto struct{ delegate protocol.Builder }

const campaignPanicName protocol.Protocol = "campaign-panic"

func (p *campaignPanicProto) Protocol() protocol.Protocol { return campaignPanicName }

func (p *campaignPanicProto) Build(ctx *protocol.BuildContext) error {
	if err := p.delegate.Build(ctx); err != nil {
		return err
	}
	ctx.Eng.After(500*time.Millisecond, func() { panic("injected campaign bug") })
	return nil
}

func init() {
	d, ok := protocol.Lookup(protocol.NTSSS)
	if !ok {
		panic("NTS-SS not registered")
	}
	protocol.RegisterUnlisted(&campaignPanicProto{delegate: d})
}

// genCorpus writes a small fast corpus (24-node, 3s runs) to a temp
// dir and returns the dir.
func genCorpus(t *testing.T, count, shards int) string {
	t.Helper()
	dir := t.TempDir()
	cfg := corpus.Config{Seed: 7, Count: count, MaxNodes: 24, MaxDuration: 3 * time.Second}
	items, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := corpus.Write(dir, cfg, items, shards); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestJournalTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Op: OpClaim, Attempt: 1, ResultRecord: ResultRecord{Index: 0, ID: "a"}},
		{Op: OpDone, Attempt: 1, ResultRecord: ResultRecord{Index: 0, ID: "a", Status: "ok", Digest: "deadbeefdeadbeef"}},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a SIGKILL mid-write: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","idx":1,"id":"b","st`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn final line must be tolerated, got %v", err)
	}
	if len(recs) != len(want) {
		t.Fatalf("read %d records, want %d (torn line dropped)", len(recs), len(want))
	}
	for i := range want {
		if recs[i].Op != want[i].Op || recs[i].Index != want[i].Index || recs[i].Digest != want[i].Digest {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}

	// Corruption anywhere earlier is NOT tolerated: truncating a middle
	// line must fail loudly instead of silently dropping records.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := bytes.Replace(data, []byte(`{"op":"claim"`), []byte(`{"op:"claim"`), 1)
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil {
		t.Fatal("ReadJournal accepted a corrupt non-final line")
	}
}

// TestJournalResumeAfterTornTail: reopening a journal whose final line
// is torn must truncate the tail before appending — with O_APPEND the
// first resumed record would otherwise concatenate onto the partial
// line, turning a tolerated torn tail into corruption that poisons
// every later read (merge, status, further resumes).
func TestJournalResumeAfterTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	pre := []Record{
		{Op: OpClaim, Attempt: 1, ResultRecord: ResultRecord{Index: 0, ID: "a"}},
		{Op: OpDone, Attempt: 1, ResultRecord: ResultRecord{Index: 0, ID: "a", Status: "ok", Digest: "d0"}},
	}
	for _, rec := range pre {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// SIGKILL mid-write: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","idx":1,"id":"b","st`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resume with the default batched config, as a real resume would.
	j2, err := OpenJournal(path, DefaultSyncEvery)
	if err != nil {
		t.Fatal(err)
	}
	post := []Record{
		{Op: OpClaim, Attempt: 1, ResultRecord: ResultRecord{Index: 1, ID: "b"}},
		{Op: OpDone, Attempt: 1, ResultRecord: ResultRecord{Index: 1, ID: "b", Status: "ok", Digest: "d1"}},
	}
	for _, rec := range post {
		if err := j2.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("journal unreadable after resuming past a torn tail: %v", err)
	}
	if len(recs) != len(pre)+len(post) {
		t.Fatalf("read %d records, want %d (torn tail truncated, resumed records intact)", len(recs), len(pre)+len(post))
	}
	prog := Replay(recs)
	if prog.Terminal[0].Digest != "d0" || prog.Terminal[1].Digest != "d1" {
		t.Fatalf("replay terminals = %+v, want digests d0 and d1", prog.Terminal)
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	recs, err := ReadJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || recs != nil {
		t.Fatalf("missing journal = (%v, %v), want (nil, nil)", recs, err)
	}
}

// TestReplayDuplicateTerminal: duplicate done-records resolve
// deterministically — the first wins.
func TestReplayDuplicateTerminal(t *testing.T) {
	prog := Replay([]Record{
		{Op: OpClaim, ResultRecord: ResultRecord{Index: 3}},
		{Op: OpDone, ResultRecord: ResultRecord{Index: 3, Status: "ok", Digest: "first"}},
		{Op: OpDone, ResultRecord: ResultRecord{Index: 3, Status: "ok", Digest: "second"}},
		{Op: OpFail, ResultRecord: ResultRecord{Index: 3, Status: "failed"}},
	})
	rec, ok := prog.Terminal[3]
	if !ok || rec.Digest != "first" {
		t.Fatalf("Terminal[3] = %+v, want the first done record", rec)
	}
	if prog.Claims[3] != 1 {
		t.Fatalf("Claims[3] = %d, want 1", prog.Claims[3])
	}
}

// TestCampaignResumeDigestMatch is the tentpole's core guarantee: a
// campaign interrupted mid-flight and resumed produces a merged result
// set byte-identical to an uninterrupted run of the same corpus.
func TestCampaignResumeDigestMatch(t *testing.T) {
	const count = 4

	// Reference: uninterrupted.
	refDir := genCorpus(t, count, 1)
	refSum, err := Run(context.Background(), refDir, RunConfig{Workers: 2, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if refSum.Completed != count || refSum.ResultsPath == "" {
		t.Fatalf("reference run = %+v, want %d completed and a merged result set", refSum, count)
	}
	refResults, err := os.ReadFile(refSum.ResultsPath)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: cancel after the first terminal record, mid-campaign.
	intDir := genCorpus(t, count, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var terminal atomic.Int32
	_, err = Run(ctx, intDir, RunConfig{
		Workers:   2,
		SyncEvery: 1,
		OnRecord: func(Record) {
			if terminal.Add(1) == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	recs, err := ReadJournal(filepath.Join(intDir, journalName(0)))
	if err != nil {
		t.Fatal(err)
	}
	prog := Replay(recs)
	if len(prog.Terminal) == 0 || len(prog.Terminal) >= count {
		t.Fatalf("interrupted journal has %d terminal records, want mid-campaign (0 < n < %d)", len(prog.Terminal), count)
	}

	// Resume: skips completed specs, finishes the rest, merges.
	resSum, err := Run(context.Background(), intDir, RunConfig{Workers: 2, SyncEvery: 1, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resSum.Skipped != len(prog.Terminal) {
		t.Fatalf("resume skipped %d specs, want %d (the journaled ones)", resSum.Skipped, len(prog.Terminal))
	}
	if resSum.ResultsPath == "" {
		t.Fatal("resume did not merge a complete campaign")
	}
	gotResults, err := os.ReadFile(resSum.ResultsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotResults, refResults) {
		t.Fatalf("merged results after interrupt+resume differ from uninterrupted reference:\n--- resumed\n%s--- reference\n%s", gotResults, refResults)
	}
}

// TestCampaignRefusesStaleJournal: a fresh `run` against a campaign
// that already has journal records must refuse, pointing at resume.
func TestCampaignRefusesStaleJournal(t *testing.T) {
	dir := genCorpus(t, 1, 1)
	if _, err := Run(context.Background(), dir, RunConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), dir, RunConfig{Workers: 1}); !errors.Is(err, ErrJournalExists) {
		t.Fatalf("rerun without Resume returned %v, want ErrJournalExists", err)
	}
	// Resume against the complete campaign is a no-op that still merges.
	sum, err := Run(context.Background(), dir, RunConfig{Workers: 1, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Skipped != 1 || sum.Completed != 0 || sum.ResultsPath == "" {
		t.Fatalf("resume of complete campaign = %+v, want 1 skipped, 0 run, merged", sum)
	}
}

// TestCampaignBudgetRetry: a spec that exhausts its event budget
// retries up to the cap with backoff, then lands a terminal budget
// failure with a deterministic (wall-clock-free) message.
func TestCampaignBudgetRetry(t *testing.T) {
	dir := genCorpus(t, 1, 1)
	sum, err := Run(context.Background(), dir, RunConfig{
		Workers:      1,
		Budget:       experiment.Budget{MaxEvents: 200},
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		SyncEvery:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 || sum.Retries != 2 || sum.Quarantined != 0 {
		t.Fatalf("summary = %+v, want 1 failed after 2 retries, none quarantined", sum)
	}
	recs, err := ReadJournal(filepath.Join(dir, journalName(0)))
	if err != nil {
		t.Fatal(err)
	}
	prog := Replay(recs)
	if prog.Claims[0] != 3 {
		t.Fatalf("journal has %d claims, want 3 (1 + 2 retries)", prog.Claims[0])
	}
	rec := prog.Terminal[0]
	if rec.Op != OpFail || rec.FailKind != FailBudget {
		t.Fatalf("terminal record = %+v, want a budget failure", rec)
	}
	if rec.Error != "exceeded events budget after 3 attempts" {
		t.Fatalf("budget failure message %q is not the normalized deterministic form", rec.Error)
	}
}

// TestCampaignQuarantine: a panicking spec leaves a complete repro
// bundle in quarantine/ while the campaign runs to completion and
// merges, with the failure recorded in the result set.
func TestCampaignQuarantine(t *testing.T) {
	dir := t.TempDir()
	specs := []*experiment.Spec{
		{Protocol: string(campaignPanicName), Seed: 3, Nodes: 30, Area: 300,
			Duration: experiment.Dur(2 * time.Second),
			Workload: &experiment.WorkloadSpec{BaseRate: 1, PerClass: 1}},
		{Protocol: string(protocol.NTSSS), Seed: 4, Nodes: 30, Area: 300,
			Duration: experiment.Dur(2 * time.Second),
			Workload: &experiment.WorkloadSpec{BaseRate: 1, PerClass: 1}},
	}
	items := []corpus.Item{
		{Index: 0, ID: "0000-campaign-panic", Spec: specs[0]},
		{Index: 1, ID: "0001-nts-ss", Spec: specs[1]},
	}
	if err := corpus.Write(dir, corpus.Config{Seed: 3, Count: 2}, items, 1); err != nil {
		t.Fatal(err)
	}

	sum, err := Run(context.Background(), dir, RunConfig{Workers: 2, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 1 || sum.Failed != 1 || sum.Quarantined != 1 {
		t.Fatalf("summary = %+v, want 1 completed, 1 quarantined failure", sum)
	}
	if sum.ResultsPath == "" {
		t.Fatal("campaign with a quarantined spec did not complete and merge")
	}

	// The repro bundle: spec + stack, enough to replay the crash.
	qdir := filepath.Join(dir, quarantineDir, "0000-campaign-panic")
	specJSON, err := os.ReadFile(filepath.Join(qdir, "spec.json"))
	if err != nil {
		t.Fatalf("quarantine bundle missing spec.json: %v", err)
	}
	respec, err := experiment.ParseSpec(specJSON)
	if err != nil {
		t.Fatalf("quarantined spec.json does not parse: %v", err)
	}
	if respec.Protocol != string(campaignPanicName) || respec.Seed != 3 {
		t.Fatalf("quarantined spec = (%s, %d), want the panicking spec", respec.Protocol, respec.Seed)
	}
	stack, err := os.ReadFile(filepath.Join(qdir, "panic.txt"))
	if err != nil {
		t.Fatalf("quarantine bundle missing panic.txt: %v", err)
	}
	if !strings.Contains(string(stack), "injected campaign bug") || !strings.Contains(string(stack), "campaignPanicProto") {
		t.Fatalf("panic.txt does not carry the panic value and stack:\n%s", stack)
	}
	if _, err := os.Stat(filepath.Join(qdir, "meta.json")); err != nil {
		t.Fatalf("quarantine bundle missing meta.json: %v", err)
	}

	// The merged result set records the failure and points at the bundle.
	data, err := os.ReadFile(sum.ResultsPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte{'\n'})
	if len(lines) != 2 {
		t.Fatalf("results.jsonl has %d lines, want 2", len(lines))
	}
	var failed ResultRecord
	if err := json.Unmarshal(lines[0], &failed); err != nil {
		t.Fatal(err)
	}
	if failed.Status != "failed" || failed.FailKind != FailPanic || failed.Quarantine == "" {
		t.Fatalf("failed result line = %+v, want a quarantined panic failure", failed)
	}
}

// TestCampaignWorkerErrorNoDeadlock: when every worker bails on an
// infrastructure error (here: the quarantine directory is unwritable)
// while the context is still live, the feed loop must stop instead of
// blocking forever on the work channel — with one worker that block is
// a guaranteed hang, turning a reportable error into a wedged process.
func TestCampaignWorkerErrorNoDeadlock(t *testing.T) {
	dir := t.TempDir()
	specs := []*experiment.Spec{
		{Protocol: string(campaignPanicName), Seed: 3, Nodes: 30, Area: 300,
			Duration: experiment.Dur(2 * time.Second),
			Workload: &experiment.WorkloadSpec{BaseRate: 1, PerClass: 1}},
		{Protocol: string(protocol.NTSSS), Seed: 4, Nodes: 30, Area: 300,
			Duration: experiment.Dur(2 * time.Second),
			Workload: &experiment.WorkloadSpec{BaseRate: 1, PerClass: 1}},
	}
	items := []corpus.Item{
		{Index: 0, ID: "0000-campaign-panic", Spec: specs[0]},
		{Index: 1, ID: "0001-nts-ss", Spec: specs[1]},
	}
	if err := corpus.Write(dir, corpus.Config{Seed: 3, Count: 2}, items, 1); err != nil {
		t.Fatal(err)
	}
	// A regular file where the quarantine directory belongs makes the
	// panic spec's repro-bundle write fail, which errors the worker out.
	if err := os.WriteFile(filepath.Join(dir, quarantineDir), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	type result struct {
		sum *Summary
		err error
	}
	done := make(chan result, 1)
	go func() {
		sum, err := Run(context.Background(), dir, RunConfig{Workers: 1, SyncEvery: 1})
		done <- result{sum, err}
	}()
	select {
	case res := <-done:
		if res.err == nil {
			t.Fatalf("Run = %+v, want the quarantine write error", res.sum)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run deadlocked after the worker errored out")
	}
}

// TestRetryDelayOverflowSafe: user-settable retry counts must never
// shift the backoff into overflow — a non-positive duration panics the
// jitter draw, crashing the worker on the very path retries absorb.
func TestRetryDelayOverflowSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, attempt := range []int{1, 2, 10, 62, 63, 64, 100, 1 << 20} {
		d := retryDelay(DefaultRetryBackoff, attempt, rng)
		if d <= 0 || d > 2*MaxRetryBackoff {
			t.Fatalf("retryDelay(attempt=%d) = %v, want in (0, %v]", attempt, d, 2*MaxRetryBackoff)
		}
	}
}

// TestCampaignSharded: a sharded campaign merges only once every shard
// completes, and Merge alone reports incompleteness before that.
func TestCampaignSharded(t *testing.T) {
	dir := genCorpus(t, 4, 2)
	if _, err := Merge(dir); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("Merge of unstarted campaign returned %v, want ErrIncomplete", err)
	}
	sum0, err := Run(context.Background(), dir, RunConfig{Shard: 0, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum0.Total != 2 || sum0.ResultsPath != "" {
		t.Fatalf("shard 0 = %+v, want 2 specs and no premature merge", sum0)
	}
	st, err := ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 2 || st.Pending != 2 || st.Merged {
		t.Fatalf("status after shard 0 = %+v, want 2 done, 2 pending, unmerged", st)
	}
	sum1, err := Run(context.Background(), dir, RunConfig{Shard: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum1.ResultsPath == "" {
		t.Fatal("final shard did not merge the campaign")
	}
	data, err := os.ReadFile(sum1.ResultsPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte{'\n'}); n != 4 {
		t.Fatalf("merged result set has %d lines, want 4", n)
	}
}

// TestCampaignMergeShardInvariant runs the same records-bearing corpus
// unsharded and split across two shards (completed out of order) and
// requires byte-identical merged results — the property CI's shard-merge
// step enforces end to end.
func TestCampaignMergeShardInvariant(t *testing.T) {
	read := func(dir string, shards int) []byte {
		t.Helper()
		ctx := context.Background()
		var path string
		if shards == 1 {
			sum, err := Run(ctx, dir, RunConfig{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			path = sum.ResultsPath
		} else {
			// Finish shards in reverse order: merge output is pinned to
			// manifest order, not completion order.
			for s := shards - 1; s >= 0; s-- {
				sum, err := Run(ctx, dir, RunConfig{Shard: s, Workers: 2})
				if err != nil {
					t.Fatal(err)
				}
				path = sum.ResultsPath
			}
		}
		if path == "" {
			t.Fatal("campaign did not merge")
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	// genCorpus seeds both dirs identically, so the specs match and a
	// quarter of them carry results blocks (corpus attaches sinks to
	// every 4th spec in two flavors).
	plain := read(genCorpus(t, 8, 1), 1)
	sharded := read(genCorpus(t, 8, 2), 2)
	if !bytes.Equal(plain, sharded) {
		t.Fatalf("sharded merge differs from unsharded:\n%s\n---\n%s", plain, sharded)
	}
	if !bytes.Contains(plain, []byte(`"records"`)) {
		t.Fatal("merged results carry no sink records; corpus should attach sinks")
	}
}
