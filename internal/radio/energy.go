package radio

import "time"

// PowerProfile gives the radio's power draw per state, in watts. Duty
// cycle is a hardware-independent proxy; the profile turns state
// residency into joules for lifetime estimates.
type PowerProfile struct {
	// Sleep is the draw while Off.
	Sleep float64
	// Idle is the draw while listening with no frame in the air.
	Idle float64
	// Rx is the draw while receiving.
	Rx float64
	// Tx is the draw while transmitting.
	Tx float64
	// Transition is the draw while turning on or off.
	Transition float64
}

// Mica2Power returns a CC1000-class profile at 3 V: ~10 mA listening and
// receiving, ~27 mA transmitting at full power, <2 µA in sleep, and
// transition draw comparable to listening.
func Mica2Power() PowerProfile {
	return PowerProfile{
		Sleep:      6e-6,
		Idle:       0.030,
		Rx:         0.030,
		Tx:         0.081,
		Transition: 0.030,
	}
}

// Energy returns the joules consumed so far under profile p, from the
// radio's per-state residency times.
func (r *Radio) Energy(p PowerProfile) float64 {
	sec := func(d time.Duration) float64 { return d.Seconds() }
	return sec(r.TimeIn(Off))*p.Sleep +
		sec(r.TimeIn(Idle))*p.Idle +
		sec(r.TimeIn(Rx))*p.Rx +
		sec(r.TimeIn(Tx))*p.Tx +
		(sec(r.TimeIn(TurningOn))+sec(r.TimeIn(TurningOff)))*p.Transition
}

// AveragePower returns the mean draw in watts since time zero, or the
// idle draw if no time has elapsed.
func (r *Radio) AveragePower(p PowerProfile) float64 {
	elapsed := r.eng.Now().Seconds()
	if elapsed <= 0 {
		return p.Idle
	}
	return r.Energy(p) / elapsed
}

// Lifetime estimates how long a node with the given battery capacity
// (joules) would last at the radio's observed average power draw. A pair
// of AA cells holds roughly 20 kJ usable. Returns a very large value for
// a draw of effectively zero.
func (r *Radio) Lifetime(p PowerProfile, capacityJoules float64) time.Duration {
	draw := r.AveragePower(p)
	if draw <= 0 {
		return time.Duration(1<<63 - 1)
	}
	seconds := capacityJoules / draw
	const maxSec = float64(1<<63-1) / float64(time.Second)
	if seconds >= maxSec {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(seconds * float64(time.Second))
}
