package radio

import (
	"testing"
	"time"
)

func TestProfileRegistry(t *testing.T) {
	names := ProfileNames()
	want := []string{Paper, CC1000, CC2420}
	if len(names) < len(want) {
		t.Fatalf("ProfileNames() = %v, want at least %v", names, want)
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("ProfileNames()[%d] = %q, want %q", i, names[i], w)
		}
	}
	if _, ok := LookupProfile("vaporware"); ok {
		t.Error("unknown profile looked up")
	}
}

// TestPaperProfileMatchesLegacyConstants pins the default profile to
// the package's historical constants: swapping the hardcoded Mica2
// pair for the registry must not move a single number.
func TestPaperProfileMatchesLegacyConstants(t *testing.T) {
	p := PaperProfile()
	if p.Config() != Mica2Config() {
		t.Errorf("paper profile config %+v != Mica2Config %+v", p.Config(), Mica2Config())
	}
	if p.Power != Mica2Power() {
		t.Errorf("paper profile power %+v != Mica2Power %+v", p.Power, Mica2Power())
	}
	// Under the equal-power assumption the derived break-even time is
	// exactly tOFF→ON + tON→OFF, the paper's §4.1 rule — and exactly
	// what Safe Sleep historically read from the radio config.
	if got, want := p.BreakEven(), Mica2Config().BreakEven(); got != want {
		t.Errorf("paper break-even %v, want %v", got, want)
	}
}

// TestBreakEvenDerivation checks the energy-balance formula
// tBE = (tON+tOFF)·(Ptrans−Psleep)/(Pidle−Psleep) on each profile.
func TestBreakEvenDerivation(t *testing.T) {
	for _, name := range ProfileNames() {
		p, _ := LookupProfile(name)
		tr := p.TurnOnDelay + p.TurnOffDelay
		want := time.Duration(float64(tr) * (p.Power.Transition - p.Power.Sleep) / (p.Power.Idle - p.Power.Sleep))
		if got := p.BreakEven(); got != want {
			t.Errorf("%s: BreakEven() = %v, want %v", name, got, want)
		}
		if got := p.BreakEven(); got <= 0 || got > tr {
			t.Errorf("%s: BreakEven() = %v outside (0, %v] — transition draw above idle?", name, got, tr)
		}
	}
	// The CC2420's regulator-limited startup draws far below idle, so it
	// must break even an order of magnitude sooner than the paper radio.
	paper, _ := LookupProfile(Paper)
	cc2420, _ := LookupProfile(CC2420)
	if cc2420.BreakEven() >= paper.BreakEven()/10 {
		t.Errorf("cc2420 tBE %v not well below paper tBE %v", cc2420.BreakEven(), paper.BreakEven())
	}
}

func TestBreakEvenDegenerateProfiles(t *testing.T) {
	// Idle draw not above sleep: sleeping can never lose; fall back to
	// the transition-time bound rather than dividing by zero.
	p := EnergyProfile{
		Power:        PowerProfile{Sleep: 0.03, Idle: 0.03, Transition: 0.03},
		TurnOnDelay:  time.Millisecond,
		TurnOffDelay: time.Millisecond,
	}
	if got := p.BreakEven(); got != 2*time.Millisecond {
		t.Errorf("degenerate profile BreakEven() = %v, want 2ms", got)
	}
	// Transition cheaper than sleep clamps at zero, not negative.
	p.Power = PowerProfile{Sleep: 0.01, Idle: 0.03, Transition: 0.001}
	if got := p.BreakEven(); got != 0 {
		t.Errorf("clamped BreakEven() = %v, want 0", got)
	}
}
