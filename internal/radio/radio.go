// Package radio models a sensor-node radio as a power-state machine with
// energy accounting.
//
// The model follows the ESSAT paper's cost model (§4.1, after Benini et
// al.): the radio is either active (listening, receiving, transmitting),
// off, or transitioning between the two. Transitions take configurable
// times tOFF→ON and tON→OFF. When the transition power is no higher than
// the active power, the break-even time — the minimum sleep length for
// which turning the radio off saves energy without delay penalties — is
// tOFF→ON + tON→OFF.
//
// Duty cycle is the fraction of time the radio is not Off; transition
// states count as active, which is the conservative accounting the
// break-even analysis assumes.
package radio

import (
	"fmt"
	"time"

	"github.com/essat/essat/internal/sim"
)

// State is the radio power state.
type State int

// Radio power states. Idle means powered and listening.
const (
	Off State = iota + 1
	TurningOn
	Idle
	Rx
	Tx
	TurningOff
)

const numStates = int(TurningOff) + 1

// String returns a short human-readable state name.
func (s State) String() string {
	switch s {
	case Off:
		return "off"
	case TurningOn:
		return "turning-on"
	case Idle:
		return "idle"
	case Rx:
		return "rx"
	case Tx:
		return "tx"
	case TurningOff:
		return "turning-off"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config holds the radio's transition latencies.
type Config struct {
	// TurnOnDelay is tOFF→ON, the time to go from Off to Idle.
	TurnOnDelay time.Duration
	// TurnOffDelay is tON→OFF, the time to go from Idle to Off.
	TurnOffDelay time.Duration
}

// Mica2Config returns transition latencies representative of the MICA2
// CC1000 radio: the paper cites 2.5 ms as its average wake-up delay.
func Mica2Config() Config {
	return Config{TurnOnDelay: 2500 * time.Microsecond, TurnOffDelay: 500 * time.Microsecond}
}

// BreakEven returns the break-even time tBE for this radio under the
// equal-power assumption: tOFF→ON + tON→OFF.
func (c Config) BreakEven() time.Duration {
	return c.TurnOnDelay + c.TurnOffDelay
}

// Listener observes radio state changes.
type Listener func(old, new State)

// RadioStateChanged implements StateListener, so a bare func can be
// subscribed via Subscribe.
func (l Listener) RadioStateChanged(old, new State) { l(old, new) }

// StateListener observes radio state changes through an interface
// method. Hot subscribers (the channel, the MAC, Safe Sleep) implement
// it directly so subscribing stores an existing object instead of
// allocating a closure per node per run.
type StateListener interface {
	RadioStateChanged(old, new State)
}

// Radio is a simulated radio attached to a sim.Engine.
// It starts in the Idle (on, listening) state at time zero.
type Radio struct {
	eng *sim.Engine
	cfg Config

	state      State
	lastChange time.Duration
	timeIn     [numStates]time.Duration

	listeners []StateListener

	transition *sim.Event
	pendingOff bool // TurnOff requested during Tx; applied at EndTx
	pendingOn  bool // TurnOn requested during TurningOff; applied at Off

	recordSleep    bool
	sleepStart     time.Duration
	sleepIntervals []time.Duration

	dead bool
}

// Transition-complete dispatchers, shared by every radio: transitions
// happen thousands of times per run, so the events carry the radio as
// their argument instead of a per-radio closure.
func turnOnDone(x any) {
	r := x.(*Radio)
	r.transition = nil
	r.setState(Idle)
}

func turnOffDone(x any) {
	r := x.(*Radio)
	r.transition = nil
	r.setState(Off)
	r.afterOff()
}

// New returns a radio in the Idle state.
func New(eng *sim.Engine, cfg Config) *Radio {
	if cfg.TurnOnDelay < 0 || cfg.TurnOffDelay < 0 {
		panic("radio: negative transition delay")
	}
	r := sim.ArenaGrab[Radio](eng, "radio.radio")
	*r = Radio{eng: eng, cfg: cfg, state: Idle, lastChange: eng.Now(),
		// A node's stack subscribes a handful of listeners (channel, MAC,
		// Safe Sleep, optionally a tracer); seed with arena-backed capacity.
		listeners: sim.ArenaSlice[StateListener](eng, "radio.listeners", 4)[:0]}
	return r
}

// Config returns the radio's configuration.
func (r *Radio) Config() Config { return r.cfg }

// State returns the current power state.
func (r *Radio) State() State { return r.state }

// IsOn reports whether the radio is powered and usable (Idle, Rx or Tx).
func (r *Radio) IsOn() bool { return r.state == Idle || r.state == Rx || r.state == Tx }

// IsListening reports whether the radio can currently sense or receive
// energy on the channel (Idle or Rx).
func (r *Radio) IsListening() bool { return r.state == Idle || r.state == Rx }

// CanReceive reports whether the radio can begin receiving a new frame.
func (r *Radio) CanReceive() bool { return r.state == Idle }

// Subscribe registers a listener func for state changes. Listeners are
// invoked synchronously in registration order. Boxing the func allocates;
// hot per-node subscribers should implement StateListener and use
// SubscribeState instead.
func (r *Radio) Subscribe(l Listener) { r.SubscribeState(l) }

// SubscribeState registers a StateListener for state changes, sharing
// the registration order with Subscribe.
func (r *Radio) SubscribeState(l StateListener) { r.listeners = append(r.listeners, l) }

// RecordSleepIntervals enables recording of completed Off-period lengths,
// used for the paper's sleep-interval histogram (Fig. 8).
func (r *Radio) RecordSleepIntervals() { r.recordSleep = true }

// SleepIntervals returns the recorded completed Off periods. The returned
// slice is owned by the radio; callers must not modify it.
func (r *Radio) SleepIntervals() []time.Duration { return r.sleepIntervals }

func (r *Radio) setState(s State) {
	if s == r.state {
		return
	}
	now := r.eng.Now()
	r.timeIn[r.state] += now - r.lastChange
	old := r.state
	r.state = s
	r.lastChange = now

	if r.recordSleep {
		if s == Off {
			r.sleepStart = now
		} else if old == Off {
			r.sleepIntervals = append(r.sleepIntervals, now-r.sleepStart)
		}
	}
	for _, l := range r.listeners {
		l.RadioStateChanged(old, s)
	}
}

// Shutdown forces the radio off: a dead or crashed node's hardware. Any
// in-flight transmission or reception is cut, and all future TurnOn calls
// are ignored (stale wake-ups from sleep schedulers or power managers).
// Shutdown is permanent unless Restore is called (node recovery).
func (r *Radio) Shutdown() {
	r.dead = true
	r.pendingOn = false
	r.pendingOff = false
	if r.transition != nil {
		r.transition.Cancel()
		r.transition = nil
	}
	if r.state != Off {
		r.setState(Off)
	}
}

// Restore reverses a Shutdown: the hardware is usable again, still Off.
// The caller decides when to TurnOn. No-op on a live radio.
func (r *Radio) Restore() { r.dead = false }

// Dead reports whether the radio was shut down and not restored.
func (r *Radio) Dead() bool { return r.dead }

// TurnOn initiates the Off→Idle transition. It is a no-op if the radio is
// already on or turning on, or if the radio was shut down. If called
// while turning off, the radio will turn back on as soon as it reaches
// Off.
func (r *Radio) TurnOn() {
	if r.dead {
		return
	}
	switch r.state {
	case Idle, Rx, Tx, TurningOn:
		r.pendingOff = false
		return
	case TurningOff:
		r.pendingOn = true
		return
	case Off:
	}
	r.pendingOn = false
	if r.cfg.TurnOnDelay == 0 {
		r.setState(Idle)
		return
	}
	r.setState(TurningOn)
	r.transition = r.eng.AfterArg(r.cfg.TurnOnDelay, turnOnDone, r)
}

// TurnOff initiates the Idle→Off transition. Called during Rx it aborts
// the reception (the channel observes the state change and drops the
// frame). Called during Tx the transition is deferred until the
// transmission completes. No-op if already off or turning off.
func (r *Radio) TurnOff() {
	switch r.state {
	case Off, TurningOff:
		r.pendingOn = false
		return
	case TurningOn:
		// Cancel the power-up and fall back to Off immediately; the
		// radio never reached an active state.
		if r.transition != nil {
			r.transition.Cancel()
			r.transition = nil
		}
		r.setState(Off)
		r.afterOff()
		return
	case Tx:
		r.pendingOff = true
		return
	case Idle, Rx:
	}
	r.pendingOff = false
	if r.cfg.TurnOffDelay == 0 {
		r.setState(Off)
		r.afterOff()
		return
	}
	r.setState(TurningOff)
	r.transition = r.eng.AfterArg(r.cfg.TurnOffDelay, turnOffDone, r)
}

func (r *Radio) afterOff() {
	if r.pendingOn {
		r.pendingOn = false
		r.TurnOn()
	}
}

// BeginTx moves the radio into Tx. The radio must be Idle or Rx; beginning
// a transmission while receiving aborts the reception (capture by the
// transmitter's own frame). Panics if the radio is off: callers must
// ensure the radio is powered, as a real MAC driver would.
func (r *Radio) BeginTx() {
	if r.state != Idle && r.state != Rx {
		panic(fmt.Sprintf("radio: BeginTx in state %v", r.state))
	}
	r.setState(Tx)
}

// EndTx completes a transmission, returning to Idle, then applies a
// deferred TurnOff if one was requested mid-transmission.
func (r *Radio) EndTx() {
	if r.state != Tx {
		panic(fmt.Sprintf("radio: EndTx in state %v", r.state))
	}
	r.setState(Idle)
	if r.pendingOff {
		r.pendingOff = false
		r.TurnOff()
	}
}

// BeginRx moves the radio from Idle into Rx.
func (r *Radio) BeginRx() {
	if r.state != Idle {
		panic(fmt.Sprintf("radio: BeginRx in state %v", r.state))
	}
	r.setState(Rx)
}

// EndRx completes a reception, returning to Idle. It is a no-op if the
// radio already left Rx (e.g. it was turned off mid-frame or captured by
// a transmission): the channel calls EndRx unconditionally at frame end.
func (r *Radio) EndRx() {
	if r.state != Rx {
		return
	}
	r.setState(Idle)
}

// TimeIn returns the cumulative time spent in state s up to now.
func (r *Radio) TimeIn(s State) time.Duration {
	d := r.timeIn[s]
	if r.state == s {
		d += r.eng.Now() - r.lastChange
	}
	return d
}

// ActiveTime returns the cumulative time the radio was not Off.
func (r *Radio) ActiveTime() time.Duration {
	return r.eng.Now() - r.TimeIn(Off)
}

// DutyCycle returns the fraction of elapsed time the radio was active
// (not Off), in [0,1]. It returns 1 if no time has elapsed.
func (r *Radio) DutyCycle() float64 {
	total := r.eng.Now()
	if total <= 0 {
		return 1
	}
	return float64(r.ActiveTime()) / float64(total)
}
