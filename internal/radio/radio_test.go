package radio

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/sim"
)

func newTestRadio(t *testing.T, cfg Config) (*sim.Engine, *Radio) {
	t.Helper()
	eng := sim.New(1)
	return eng, New(eng, cfg)
}

func TestStartsIdle(t *testing.T) {
	_, r := newTestRadio(t, Mica2Config())
	if r.State() != Idle {
		t.Fatalf("initial state = %v, want idle", r.State())
	}
	if !r.IsOn() || !r.IsListening() || !r.CanReceive() {
		t.Fatal("idle radio should be on, listening, and able to receive")
	}
}

func TestTurnOffOn(t *testing.T) {
	eng, r := newTestRadio(t, Mica2Config())
	r.TurnOff()
	if r.State() != TurningOff {
		t.Fatalf("state = %v, want turning-off", r.State())
	}
	eng.Run(time.Second)
	if r.State() != Off {
		t.Fatalf("state = %v, want off", r.State())
	}
	r.TurnOn()
	if r.State() != TurningOn {
		t.Fatalf("state = %v, want turning-on", r.State())
	}
	eng.Run(2 * time.Second)
	if r.State() != Idle {
		t.Fatalf("state = %v, want idle", r.State())
	}
}

func TestZeroDelayTransitionsAreImmediate(t *testing.T) {
	_, r := newTestRadio(t, Config{})
	r.TurnOff()
	if r.State() != Off {
		t.Fatalf("state = %v, want off immediately", r.State())
	}
	r.TurnOn()
	if r.State() != Idle {
		t.Fatalf("state = %v, want idle immediately", r.State())
	}
}

func TestTurnOnWhileTurningOffQueues(t *testing.T) {
	eng, r := newTestRadio(t, Mica2Config())
	r.TurnOff()
	r.TurnOn() // queued until Off is reached
	eng.Run(time.Second)
	if r.State() != Idle {
		t.Fatalf("state = %v, want idle after queued turn-on", r.State())
	}
}

func TestTurnOffDuringTurningOnRevertsImmediately(t *testing.T) {
	eng, r := newTestRadio(t, Mica2Config())
	r.TurnOff()
	eng.Run(time.Second)
	r.TurnOn()
	r.TurnOff()
	if r.State() != Off {
		t.Fatalf("state = %v, want off", r.State())
	}
	// The canceled power-up event must not fire later.
	eng.Run(2 * time.Second)
	if r.State() != Off {
		t.Fatalf("state = %v, want off (canceled transition fired)", r.State())
	}
}

func TestTurnOffDuringTxIsDeferred(t *testing.T) {
	eng, r := newTestRadio(t, Config{TurnOffDelay: time.Millisecond})
	r.BeginTx()
	r.TurnOff()
	if r.State() != Tx {
		t.Fatalf("state = %v, want tx (turn-off deferred)", r.State())
	}
	eng.After(time.Millisecond, func() { r.EndTx() })
	eng.Run(time.Second)
	if r.State() != Off {
		t.Fatalf("state = %v, want off after deferred turn-off", r.State())
	}
}

func TestTurnOffDuringRxAborts(t *testing.T) {
	_, r := newTestRadio(t, Config{})
	r.BeginRx()
	r.TurnOff()
	if r.State() != Off {
		t.Fatalf("state = %v, want off", r.State())
	}
	// EndRx after abort must be a harmless no-op.
	r.EndRx()
	if r.State() != Off {
		t.Fatalf("state = %v after EndRx, want off", r.State())
	}
}

func TestBeginTxWhileRxCaptures(t *testing.T) {
	_, r := newTestRadio(t, Config{})
	r.BeginRx()
	r.BeginTx()
	if r.State() != Tx {
		t.Fatalf("state = %v, want tx", r.State())
	}
}

func TestBeginTxWhileOffPanics(t *testing.T) {
	_, r := newTestRadio(t, Config{})
	r.TurnOff()
	defer func() {
		if recover() == nil {
			t.Error("BeginTx while off did not panic")
		}
	}()
	r.BeginTx()
}

func TestAccounting(t *testing.T) {
	eng, r := newTestRadio(t, Config{TurnOnDelay: 2 * time.Millisecond, TurnOffDelay: time.Millisecond})
	// 10ms idle, then off for ~50ms, then on again.
	eng.Schedule(10*time.Millisecond, func() { r.TurnOff() })
	eng.Schedule(61*time.Millisecond, func() { r.TurnOn() })
	eng.Run(100 * time.Millisecond)

	if got := r.TimeIn(Off); got != 50*time.Millisecond {
		t.Errorf("TimeIn(Off) = %v, want 50ms", got)
	}
	if got := r.TimeIn(TurningOff); got != time.Millisecond {
		t.Errorf("TimeIn(TurningOff) = %v, want 1ms", got)
	}
	if got := r.TimeIn(TurningOn); got != 2*time.Millisecond {
		t.Errorf("TimeIn(TurningOn) = %v, want 2ms", got)
	}
	if got := r.ActiveTime(); got != 50*time.Millisecond {
		t.Errorf("ActiveTime = %v, want 50ms", got)
	}
	if got := r.DutyCycle(); got != 0.5 {
		t.Errorf("DutyCycle = %v, want 0.5", got)
	}
}

func TestAccountingIncludesCurrentState(t *testing.T) {
	eng, r := newTestRadio(t, Config{})
	eng.Run(10 * time.Millisecond)
	if got := r.TimeIn(Idle); got != 10*time.Millisecond {
		t.Errorf("TimeIn(Idle) = %v, want 10ms (open interval)", got)
	}
}

func TestDutyCycleAtTimeZero(t *testing.T) {
	_, r := newTestRadio(t, Config{})
	if got := r.DutyCycle(); got != 1 {
		t.Errorf("DutyCycle at t=0 = %v, want 1", got)
	}
}

func TestSleepIntervalRecording(t *testing.T) {
	eng, r := newTestRadio(t, Config{})
	r.RecordSleepIntervals()
	eng.Schedule(10*time.Millisecond, func() { r.TurnOff() })
	eng.Schedule(40*time.Millisecond, func() { r.TurnOn() })
	eng.Schedule(50*time.Millisecond, func() { r.TurnOff() })
	eng.Schedule(52*time.Millisecond, func() { r.TurnOn() })
	eng.Run(100 * time.Millisecond)

	got := r.SleepIntervals()
	if len(got) != 2 {
		t.Fatalf("recorded %d intervals, want 2: %v", len(got), got)
	}
	if got[0] != 30*time.Millisecond || got[1] != 2*time.Millisecond {
		t.Fatalf("intervals = %v, want [30ms 2ms]", got)
	}
}

func TestListeners(t *testing.T) {
	_, r := newTestRadio(t, Config{})
	var transitions []State
	r.Subscribe(func(_, s State) { transitions = append(transitions, s) })
	r.BeginRx()
	r.EndRx()
	r.TurnOff()
	want := []State{Rx, Idle, Off}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions[%d] = %v, want %v", i, transitions[i], want[i])
		}
	}
}

func TestBreakEven(t *testing.T) {
	cfg := Config{TurnOnDelay: 2500 * time.Microsecond, TurnOffDelay: 500 * time.Microsecond}
	if got := cfg.BreakEven(); got != 3*time.Millisecond {
		t.Errorf("BreakEven = %v, want 3ms", got)
	}
}

func TestRedundantTurnOnOffAreNoOps(t *testing.T) {
	eng, r := newTestRadio(t, Mica2Config())
	r.TurnOn() // already idle
	if r.State() != Idle {
		t.Fatalf("state = %v, want idle", r.State())
	}
	r.TurnOff()
	r.TurnOff() // already turning off
	eng.Run(time.Second)
	if r.State() != Off {
		t.Fatalf("state = %v, want off", r.State())
	}
	r.TurnOff() // already off
	if r.State() != Off {
		t.Fatalf("state = %v, want off", r.State())
	}
}

func TestTurnOnCancelsPendingOff(t *testing.T) {
	eng, r := newTestRadio(t, Config{TurnOffDelay: time.Millisecond})
	r.BeginTx()
	r.TurnOff() // deferred
	r.TurnOn()  // cancels the deferred off
	eng.After(time.Millisecond, func() { r.EndTx() })
	eng.Run(time.Second)
	if r.State() != Idle {
		t.Fatalf("state = %v, want idle (pending off should be canceled)", r.State())
	}
}
