package radio

import (
	"time"

	"github.com/essat/essat/internal/registry"
)

// The registered radio energy profiles. Paper is the ESSAT paper's §4.1
// cost model (the default); the others are real sensor-node radios from
// the WSN power-management literature: the CC1000 (MICA2) and the
// CC2420 (MICAZ/TelosB), whose very different transition costs shift
// where sleeping starts to pay off.
const (
	Paper  = "paper"
	CC1000 = "cc1000"
	CC2420 = "cc2420"
)

// EnergyProfile bundles one radio hardware's energy model: per-state
// power draw, the state-transition latencies, and the break-even time
// derived from both. Every consumer of radio energy — Safe Sleep's
// break-even rule, battery exhaustion, the lifetime estimates, and the
// auditor's energy-conservation invariant — reads a profile instead of
// package constants, so swapping hardware is one registry lookup.
type EnergyProfile struct {
	// Name is the registry key ("paper", "cc1000", "cc2420").
	Name string
	// Power is the per-state draw in watts.
	Power PowerProfile
	// TurnOnDelay is tOFF→ON and TurnOffDelay tON→OFF.
	TurnOnDelay, TurnOffDelay time.Duration
}

// Config returns the radio state-machine configuration (the transition
// latencies) for this hardware.
func (p EnergyProfile) Config() Config {
	return Config{TurnOnDelay: p.TurnOnDelay, TurnOffDelay: p.TurnOffDelay}
}

// BreakEven derives the profile's break-even time tBE: the minimum sleep
// length for which turning the radio off saves energy. Staying idle for
// t costs Pidle·t; a sleep cycle costs Ptrans·(tON+tOFF) plus
// Psleep·(t − tON − tOFF), so
//
//	tBE = (tON + tOFF) · (Ptrans − Psleep) / (Pidle − Psleep).
//
// Under the paper's equal-power assumption (Ptrans = Pidle) this reduces
// to tOFF→ON + tON→OFF, the §4.1 rule. A radio whose transition draw is
// below idle (the CC2420's regulator-limited startup) breaks even on
// much shorter gaps.
func (p EnergyProfile) BreakEven() time.Duration {
	t := p.TurnOnDelay + p.TurnOffDelay
	denom := p.Power.Idle - p.Power.Sleep
	if denom <= 0 {
		return t
	}
	ratio := (p.Power.Transition - p.Power.Sleep) / denom
	if ratio < 0 {
		ratio = 0
	}
	return time.Duration(float64(t) * ratio)
}

var profiles = registry.New[string, EnergyProfile]("radio energy profile")

// RegisterProfile adds p under its name. rank orders ProfileNames() for
// presentation (lower first); ties break by name. It panics on
// duplicates.
func RegisterProfile(rank int, p EnergyProfile) {
	profiles.Register(p.Name, rank, p)
}

// LookupProfile returns the profile registered under name.
func LookupProfile(name string) (EnergyProfile, bool) { return profiles.Lookup(name) }

// ProfileNames lists every registered profile in presentation order.
func ProfileNames() []string { return profiles.Names() }

// PaperProfile returns the default profile: the paper's cost model,
// byte-identical to the historical Mica2Config + Mica2Power pair.
func PaperProfile() EnergyProfile {
	p, _ := LookupProfile(Paper)
	return p
}

func init() {
	// paper: the constants the harness has always used — the §4.1 model
	// with the 2.5 ms MICA2 wake-up the paper cites, Ptrans = Pidle, and
	// the CC1000-class draw of Mica2Power.
	RegisterProfile(10, EnergyProfile{
		Name:         Paper,
		Power:        Mica2Power(),
		TurnOnDelay:  2500 * time.Microsecond,
		TurnOffDelay: 500 * time.Microsecond,
	})
	// cc1000: the MICA2 radio from its datasheet at 3 V: 9.6 mA rx,
	// 25.4 mA tx at +5 dBm, 0.2 µA sleep, ~2 ms crystal/PLL startup
	// drawing roughly the rx current. tBE = 2.25 ms.
	RegisterProfile(20, EnergyProfile{
		Name: CC1000,
		Power: PowerProfile{
			Sleep:      6e-7,
			Idle:       0.0288,
			Rx:         0.0288,
			Tx:         0.0762,
			Transition: 0.0288,
		},
		TurnOnDelay:  2000 * time.Microsecond,
		TurnOffDelay: 250 * time.Microsecond,
	})
	// cc2420: the MICAZ/TelosB 802.15.4 radio at 3 V: 18.8 mA rx,
	// 17.4 mA tx at 0 dBm, ~1 µA power-down, and a voltage-regulator +
	// oscillator startup (~1.4 ms) that draws far less than listening —
	// so its derived break-even time (~124 µs) is an order of magnitude
	// below the paper radio's, and Safe Sleep sleeps through much
	// shorter gaps.
	RegisterProfile(30, EnergyProfile{
		Name: CC2420,
		Power: PowerProfile{
			Sleep:      3e-6,
			Idle:       0.0564,
			Rx:         0.0564,
			Tx:         0.0522,
			Transition: 0.0044,
		},
		TurnOnDelay:  1400 * time.Microsecond,
		TurnOffDelay: 200 * time.Microsecond,
	})
}
