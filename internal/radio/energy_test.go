package radio

import (
	"math"
	"testing"
	"time"

	"github.com/essat/essat/internal/sim"
)

func TestEnergyAccounting(t *testing.T) {
	eng := sim.New(1)
	r := New(eng, Config{})
	p := PowerProfile{Sleep: 0.001, Idle: 0.030, Rx: 0.040, Tx: 0.080, Transition: 0.030}

	// 1s idle, 1s rx, 1s tx, 7s off.
	eng.Schedule(1*time.Second, func() { r.BeginRx() })
	eng.Schedule(2*time.Second, func() { r.EndRx(); r.BeginTx() })
	eng.Schedule(3*time.Second, func() { r.EndTx(); r.TurnOff() })
	eng.Run(10 * time.Second)

	want := 1*0.030 + 1*0.040 + 1*0.080 + 7*0.001
	if got := r.Energy(p); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Energy = %v J, want %v J", got, want)
	}
	if got := r.AveragePower(p); math.Abs(got-want/10) > 1e-12 {
		t.Fatalf("AveragePower = %v W, want %v W", got, want/10)
	}
}

func TestEnergyIncludesTransitions(t *testing.T) {
	eng := sim.New(1)
	r := New(eng, Config{TurnOnDelay: time.Second, TurnOffDelay: time.Second})
	p := PowerProfile{Transition: 0.5, Sleep: 0, Idle: 0}
	eng.Schedule(0, func() { r.TurnOff() })
	eng.Schedule(5*time.Second, func() { r.TurnOn() })
	eng.Run(10 * time.Second)
	// 1s turning off + 1s turning on at 0.5W = 1J.
	if got := r.Energy(p); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Energy = %v J, want 1 J", got)
	}
}

func TestLifetime(t *testing.T) {
	eng := sim.New(1)
	r := New(eng, Config{})
	p := PowerProfile{Idle: 0.030}
	eng.Run(10 * time.Second) // always idle at 30mW
	// 300 J at 30 mW = 10_000 s.
	if got := r.Lifetime(p, 300); got != 10_000*time.Second {
		t.Fatalf("Lifetime = %v, want 10000s", got)
	}
}

func TestLifetimeZeroDraw(t *testing.T) {
	eng := sim.New(1)
	r := New(eng, Config{})
	r.TurnOff()
	eng.Run(10 * time.Second)
	p := PowerProfile{Sleep: 0}
	if got := r.Lifetime(p, 1); got < time.Duration(1<<62) {
		t.Fatalf("Lifetime at zero draw = %v, want effectively infinite", got)
	}
}

func TestMica2PowerOrdering(t *testing.T) {
	p := Mica2Power()
	if !(p.Sleep < p.Idle && p.Idle <= p.Rx && p.Rx < p.Tx) {
		t.Fatalf("implausible power ordering: %+v", p)
	}
}

func TestAveragePowerAtTimeZero(t *testing.T) {
	eng := sim.New(1)
	r := New(eng, Config{})
	p := Mica2Power()
	if got := r.AveragePower(p); got != p.Idle {
		t.Fatalf("AveragePower at t=0 = %v, want idle draw", got)
	}
}
