package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-3, -4}, Point{0, 0}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{ax, ay}, Point{bx, by}
		return p.Dist(q) == q.Dist(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDist2MatchesDistSquared(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		p := Point{rng.Float64() * 100, rng.Float64() * 100}
		q := Point{rng.Float64() * 100, rng.Float64() * 100}
		d := p.Dist(q)
		if math.Abs(p.Dist2(q)-d*d) > 1e-6 {
			t.Fatalf("Dist2(%v,%v) = %v, want %v", p, q, p.Dist2(q), d*d)
		}
	}
}

func TestInRange(t *testing.T) {
	p := Point{0, 0}
	if !p.InRange(Point{125, 0}, 125) {
		t.Error("boundary point should be in range (inclusive)")
	}
	if p.InRange(Point{125.01, 0}, 125) {
		t.Error("point beyond range reported in range")
	}
}

func TestUniformPlacementBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := UniformPlacement(rng, 500, 500)
	if len(pts) != 500 {
		t.Fatalf("got %d points, want 500", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X >= 500 || p.Y < 0 || p.Y >= 500 {
			t.Fatalf("point %v outside [0,500)²", p)
		}
	}
}

func TestUniformPlacementDeterministic(t *testing.T) {
	a := UniformPlacement(rand.New(rand.NewSource(9)), 50, 100)
	b := UniformPlacement(rand.New(rand.NewSource(9)), 50, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGridPlacement(t *testing.T) {
	pts := GridPlacement(2, 3, 10)
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	want := Point{20, 10}
	if pts[5] != want {
		t.Fatalf("pts[5] = %v, want %v", pts[5], want)
	}
}

func TestLinePlacement(t *testing.T) {
	pts := LinePlacement(4, 100)
	for i, p := range pts {
		if p.X != float64(i)*100 || p.Y != 0 {
			t.Fatalf("pts[%d] = %v", i, p)
		}
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	if got := Centroid(pts); got != (Point{1, 1}) {
		t.Fatalf("Centroid = %v, want (1,1)", got)
	}
}

func TestCentroidEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Centroid(nil) did not panic")
		}
	}()
	Centroid(nil)
}

func TestClosest(t *testing.T) {
	pts := []Point{{0, 0}, {10, 10}, {5, 5}}
	if got := Closest(pts, Point{6, 6}); got != 2 {
		t.Fatalf("Closest = %d, want 2", got)
	}
	// Tie broken by lowest index.
	pts = []Point{{1, 0}, {-1, 0}}
	if got := Closest(pts, Point{0, 0}); got != 0 {
		t.Fatalf("Closest tie = %d, want 0", got)
	}
}

func TestMidpoint(t *testing.T) {
	if got := (Point{0, 0}).Midpoint(Point{4, 6}); got != (Point{2, 3}) {
		t.Fatalf("Midpoint = %v, want (2,3)", got)
	}
}
