// Package geom provides the 2-D geometry primitives used to place sensor
// nodes and reason about radio range.
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a position in the deployment plane, in meters.
type Point struct {
	X, Y float64
}

// String renders the point as "(x, y)" with centimeter precision.
func (p Point) String() string {
	return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y)
}

// Dist returns the Euclidean distance between p and q in meters.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared distance between p and q. It avoids the square
// root when callers only compare against a squared threshold.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// InRange reports whether q lies within radius r of p (inclusive).
func (p Point) InRange(q Point, r float64) bool {
	return p.Dist2(q) <= r*r
}

// Midpoint returns the point halfway between p and q.
func (p Point) Midpoint(q Point) Point {
	return Point{X: (p.X + q.X) / 2, Y: (p.Y + q.Y) / 2}
}

// UniformPlacement returns n points drawn uniformly at random from the
// side×side square with origin (0,0), using rng for reproducibility.
func UniformPlacement(rng *rand.Rand, n int, side float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return pts
}

// GridPlacement returns points on a rows×cols grid with the given spacing,
// starting at origin. It is useful for deterministic examples and tests.
func GridPlacement(rows, cols int, spacing float64) []Point {
	pts := make([]Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return pts
}

// LinePlacement returns n collinear points with the given spacing,
// producing an n-hop chain when spacing is just under the radio range.
func LinePlacement(n int, spacing float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: float64(i) * spacing}
	}
	return pts
}

// Centroid returns the arithmetic mean of pts. It panics on an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: centroid of empty point set")
	}
	var cx, cy float64
	for _, p := range pts {
		cx += p.X
		cy += p.Y
	}
	n := float64(len(pts))
	return Point{X: cx / n, Y: cy / n}
}

// Closest returns the index of the point in pts nearest to target,
// breaking ties by lowest index. It panics on an empty slice.
func Closest(pts []Point, target Point) int {
	if len(pts) == 0 {
		panic("geom: closest point in empty point set")
	}
	best, bestD := 0, math.Inf(1)
	for i, p := range pts {
		if d := p.Dist2(target); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
