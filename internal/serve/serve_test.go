package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/essat/essat/internal/experiment"
	"github.com/essat/essat/internal/protocol"
)

// slowProto delegates to a real stack and then keeps the run busy by
// scheduling a dense self-perpetuating event chain, so concurrency
// tests can hold worker slots long enough to observe shedding.
type slowProto struct{ delegate protocol.Builder }

const slowProtoName protocol.Protocol = "slow-serve-test"

func (p *slowProto) Protocol() protocol.Protocol { return slowProtoName }

func (p *slowProto) Build(ctx *protocol.BuildContext) error {
	if err := p.delegate.Build(ctx); err != nil {
		return err
	}
	// Only once per run (the builder runs per node): the root — the one
	// node handed a sink — anchors the chain.
	if ctx.Sink != nil {
		var tick func()
		tick = func() {
			time.Sleep(10 * time.Millisecond) // real wall-clock cost per event
			ctx.Eng.After(10*time.Millisecond, tick)
		}
		ctx.Eng.After(time.Millisecond, tick)
	}
	return nil
}

// servePanicProto panics mid-run, exercising the 500 path.
type servePanicProto struct{ delegate protocol.Builder }

const servePanicName protocol.Protocol = "panic-serve-test"

func (p *servePanicProto) Protocol() protocol.Protocol { return servePanicName }

func (p *servePanicProto) Build(ctx *protocol.BuildContext) error {
	if err := p.delegate.Build(ctx); err != nil {
		return err
	}
	if ctx.Sink != nil {
		ctx.Eng.After(500*time.Millisecond, func() { panic("injected serve bug") })
	}
	return nil
}

func init() {
	d, ok := protocol.Lookup(protocol.NTSSS)
	if !ok {
		panic("NTS-SS not registered")
	}
	protocol.RegisterUnlisted(&slowProto{delegate: d})
	protocol.RegisterUnlisted(&servePanicProto{delegate: d})
}

// specJSON is a small fast run: ~1s simulated on 30 nodes.
func specJSON(proto string) string {
	return fmt.Sprintf(`{"protocol":%q,"nodes":30,"area":300,"duration":"1s","workload":{"base_rate":1,"per_class":1}}`, proto)
}

func postRun(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestRunEndpoint(t *testing.T) {
	s := New(Config{Workers: 2, Audit: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postRun(t, ts, "/run", specJSON("DTS-SS"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	if rr.Protocol != "DTS-SS" || rr.TreeSize == 0 || rr.Events == 0 {
		t.Errorf("implausible result: %+v", rr)
	}
	if rr.Seed == 0 {
		t.Errorf("server did not assign a per-request seed")
	}
	if rr.Audit == nil || rr.Audit.Digest == "" {
		t.Errorf("audit summary missing despite Config.Audit")
	}
	if rr.Audit != nil && rr.Audit.Violations != 0 {
		t.Errorf("run had %d invariant violations", rr.Audit.Violations)
	}

	// Distinct requests get distinct seeds.
	resp2, body2 := postRun(t, ts, "/run", specJSON("DTS-SS"))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run status = %d", resp2.StatusCode)
	}
	var rr2 RunResponse
	_ = json.Unmarshal(body2, &rr2)
	if rr2.Seed == rr.Seed {
		t.Errorf("two seedless requests shared seed %d", rr.Seed)
	}
}

func TestBadSpecs(t *testing.T) {
	s := New(Config{Workers: 1, MaxNodes: 100, MaxBodyBytes: 4096})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body, wantKind string
	}{
		{"malformed JSON", `{"protocol": `, "bad_spec"},
		{"unknown field", `{"protocol":"DTS-SS","bogus":1}`, "bad_spec"},
		{"unknown protocol", specJSON("NO-SUCH"), "bad_spec"},
		{"no workload", `{"protocol":"DTS-SS"}`, "bad_spec"},
		{"too many nodes", `{"protocol":"DTS-SS","nodes":5000,"workload":{"base_rate":1,"per_class":1}}`, "too_large"},
		{"oversized body", `{"protocol":"DTS-SS","queries":[` + strings.Repeat(`{"id":1,"period":"1s"},`, 400) + `]}`, "bad_spec"},
	}
	for _, tc := range cases {
		resp, body := postRun(t, ts, "/run", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", tc.name, resp.StatusCode, body)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Kind != tc.wantKind {
			t.Errorf("%s: kind = %q (err %v), want %q", tc.name, er.Kind, err, tc.wantKind)
		}
	}
	if got := s.Stats().BadSpec; got != uint64(len(cases)) {
		t.Errorf("bad_spec counter = %d, want %d", got, len(cases))
	}

	// GET is not a run.
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run status = %d, want 405", resp.StatusCode)
	}
}

// TestParallelSpecs: a parallelism block runs through the server like
// any other spec knob, and MaxShards rejects oversized requests before
// any work happens.
func TestParallelSpecs(t *testing.T) {
	s := New(Config{Workers: 1, MaxShards: 4, Audit: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sharded := `{"protocol":"DTS-SS","nodes":30,"area":300,"duration":"1s",` +
		`"workload":{"base_rate":1,"per_class":1},"parallelism":{"shards":2}}`
	resp, body := postRun(t, ts, "/run", sharded)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded run status = %d, body %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	if rr.Events == 0 || rr.Audit == nil || rr.Audit.Violations != 0 {
		t.Errorf("implausible sharded result: %+v", rr)
	}

	over := strings.Replace(sharded, `"shards":2`, `"shards":8`, 1)
	resp, body = postRun(t, ts, "/run", over)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-shard status = %d, want 400 (body %s)", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Kind != "too_large" {
		t.Errorf("over-shard error = %+v (err %v), want kind too_large", er, err)
	}
}

func TestBudgetResponses(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Per-request event budget terminates the run with 422.
	resp, body := postRun(t, ts, "/run?max_events=1000", specJSON("DTS-SS"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (body %s)", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Kind != "budget" {
		t.Fatalf("kind = %q, want budget", er.Kind)
	}
	if er.Seed == 0 || er.Protocol != "DTS-SS" {
		t.Errorf("budget error lacks repro info: %+v", er)
	}

	// Bad budget parameters are 400s.
	for _, q := range []string{"?max_events=0", "?max_events=x", "?deadline=-1s", "?deadline=x"} {
		resp, _ := postRun(t, ts, "/run"+q, specJSON("DTS-SS"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", q, resp.StatusCode)
		}
	}

	// A server-wide budget applies without query parameters.
	s2 := New(Config{Workers: 1, Budget: experiment.Budget{MaxEvents: 1000}})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp2, _ := postRun(t, ts2, "/run", specJSON("DTS-SS"))
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("server-budget status = %d, want 422", resp2.StatusCode)
	}
}

func TestPanicContained(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postRun(t, ts, "/run", specJSON(string(servePanicName)))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "panic" || er.Seed == 0 || !strings.Contains(string(er.Spec), string(servePanicName)) {
		t.Errorf("panic response lacks repro info: kind=%q seed=%d spec=%s", er.Kind, er.Seed, er.Spec)
	}

	// The worker slot was released and the server still serves.
	resp2, body2 := postRun(t, ts, "/run", specJSON("DTS-SS"))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("run after panic: status = %d (body %s)", resp2.StatusCode, body2)
	}
	if st := s.Stats(); st.Panics != 1 || st.OK != 1 {
		t.Errorf("stats = %+v, want 1 panic and 1 ok", st)
	}
}

func TestLoadShedding(t *testing.T) {
	// One worker, one queue slot: a burst of slow runs must shed the
	// overflow with 429 + Retry-After.
	s := New(Config{Workers: 1, Queue: 1, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const burst = 8
	statuses := make(chan int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/run", "application/json",
				strings.NewReader(specJSON(string(slowProtoName))))
			if err != nil {
				statuses <- -1
				return
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				if ra := resp.Header.Get("Retry-After"); ra != "2" {
					t.Errorf("Retry-After = %q, want \"2\"", ra)
				}
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(statuses)

	counts := map[int]int{}
	for st := range statuses {
		counts[st]++
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Errorf("no request was shed under a %d-deep burst: %v", burst, counts)
	}
	if counts[http.StatusOK] == 0 {
		t.Errorf("no request completed: %v", counts)
	}
	if got := int(s.Stats().Shed); got != counts[http.StatusTooManyRequests] {
		t.Errorf("shed counter = %d, responses = %d", got, counts[http.StatusTooManyRequests])
	}
}

func TestDrain(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Ready before drain...
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain = %d", resp.StatusCode)
	}

	s.BeginDrain()
	s.BeginDrain() // idempotent

	// ...503 after: both readiness and new runs.
	resp, body := postRun(t, ts, "/run", specJSON("DTS-SS"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/run while draining = %d (body %s)", resp.StatusCode, body)
	}
	resp2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d", resp2.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil || !st.Draining {
		t.Errorf("/readyz draining flag: %+v (err %v)", st, err)
	}

	// Liveness is unaffected.
	resp3, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("/healthz while draining = %d", resp3.StatusCode)
	}
}

func TestClientCancelMidRun(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run",
		strings.NewReader(specJSON(string(slowProtoName))))
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatalf("slow run finished before the client deadline: %d", resp.StatusCode)
	}

	// The abandoned run's worker slot must come back: a fresh request
	// succeeds promptly.
	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(specJSON("DTS-SS")))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	select {
	case st := <-done:
		if st != http.StatusOK {
			t.Fatalf("run after client cancel: status %d", st)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker slot not released after client cancellation")
	}

	// No goroutines may leak from the canceled run (allow slack for
	// httptest/transport helpers to wind down).
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before+4 {
			break
		}
		if i > 100 {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
