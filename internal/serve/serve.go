// Package serve embeds the simulation engine in a long-running HTTP
// service: scenario specs in, result summaries out, heavy concurrent
// traffic in between. The design goal is graceful degradation — under
// any load or input the server answers quickly and stays up:
//
//   - Runs execute on a bounded worker pool (a counting semaphore over
//     the handler goroutines) with a bounded wait queue; when both are
//     full, requests are shed immediately with 429 + Retry-After
//     instead of queueing unboundedly.
//   - Every run carries the request's context and a resource budget
//     (wall-clock deadline, max events), so a pathological spec cannot
//     monopolize a worker — it terminates with a typed error mapped to
//     an HTTP status.
//   - A panicking run is contained by the experiment lifecycle layer
//     into a 500 carrying the repro seed and spec; the worker slot is
//     released and subsequent requests are unaffected.
//   - BeginDrain flips the server into draining: /readyz turns 503 so
//     load balancers stop routing here, new runs are refused, and
//     in-flight runs finish (http.Server.Shutdown waits on them).
//
// The API contract is the existing strict JSON Spec: POST /run with a
// spec body. Malformed or invalid specs — unknown fields included —
// are 400s, never crashes.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/essat/essat/internal/experiment"
	"github.com/essat/essat/internal/stats"
)

// Config tunes one Server. Zero values select the documented defaults.
type Config struct {
	// Workers bounds concurrently executing runs; default GOMAXPROCS
	// (runs are CPU-bound).
	Workers int
	// Queue bounds requests waiting for a worker; beyond it requests
	// are shed with 429. Default 2×Workers; negative means no waiting
	// (shed as soon as all workers are busy).
	Queue int
	// Budget is the default per-run resource budget. Requests may lower
	// (never raise) it via the deadline / max_events query parameters.
	Budget experiment.Budget
	// MaxBodyBytes caps the request body; default 1 MiB.
	MaxBodyBytes int64
	// MaxNodes rejects specs whose deployments exceed this scale with a
	// 400 (0 = unlimited). A resource guard, like Budget, but decided
	// before any work happens.
	MaxNodes int
	// MaxShards rejects specs whose parallelism block asks for more
	// engine shards than this (0 = unlimited). Each shard is one
	// goroutine per run, multiplying the worker pool's effective
	// CPU footprint — a server sizes this against Workers.
	MaxShards int
	// BaseSeed seeds the per-request sequence assigned to specs that
	// omit a seed; default 1.
	BaseSeed int64
	// RetryAfter is the hint returned with 429 responses; default 1s.
	RetryAfter time.Duration
	// Audit forces the cross-layer invariant auditor on every run, so
	// each response carries a trace digest.
	Audit bool
	// Sinks names metric sinks (stats.SinkNames) attached to every run
	// whose spec has no results block of its own, so each response
	// carries their records. Names must be validated by the caller
	// (essat-serve does it at startup); an invalid name fails runs with
	// bad_spec.
	Sinks []string
	// Log receives one line per completed run and per shed/panic; nil
	// disables logging.
	Log *log.Logger
}

// Stats is a snapshot of the server's request counters, exposed on
// /readyz.
type Stats struct {
	OK       uint64 `json:"ok"`
	BadSpec  uint64 `json:"bad_spec"`
	Shed     uint64 `json:"shed"`
	Budget   uint64 `json:"budget"`
	Panics   uint64 `json:"panics"`
	Canceled uint64 `json:"canceled"`
	InFlight int64  `json:"in_flight"`
	Queued   int64  `json:"queued"`
	Draining bool   `json:"draining"`
	// CacheHits and CacheMisses count deployment-cache outcomes across
	// all workers: a hit means the run skipped topology placement and
	// tree construction because an identical deployment was built before.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// RunResponse is the JSON body of a successful POST /run.
type RunResponse struct {
	Protocol      string  `json:"protocol"`
	Seed          int64   `json:"seed"`
	TreeSize      int     `json:"tree_size"`
	MaxRank       int     `json:"max_rank"`
	DutyCycle     float64 `json:"duty_cycle"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyP95Ms  float64 `json:"latency_p95_ms"`
	Coverage      float64 `json:"coverage"`
	Events        uint64  `json:"events"`
	ElapsedMs     float64 `json:"elapsed_ms"`
	Audit         *Audit  `json:"audit,omitempty"`
	// Records carries the metric-sink records (versioned schema; see
	// stats.SchemaVersion) when the spec's results block or the server's
	// -sinks flag selected sinks; absent otherwise, so sink-less
	// responses are byte-identical to earlier servers'.
	Records []stats.Record `json:"records,omitempty"`
}

// Audit is the response form of the invariant auditor's summary.
type Audit struct {
	Digest     string `json:"digest"`
	Events     uint64 `json:"events"`
	Violations int    `json:"violations"`
}

// ErrorResponse is the JSON body of every non-200. Kind is machine-
// readable: bad_spec, too_large, shed, draining, budget, panic,
// canceled.
type ErrorResponse struct {
	Kind  string `json:"kind"`
	Error string `json:"error"`
	// Seed and Protocol identify the run for reproduction (panic and
	// budget errors).
	Seed     int64  `json:"seed,omitempty"`
	Protocol string `json:"protocol,omitempty"`
	// Spec echoes the failing spec on panics: together with Seed it is
	// a complete repro (essat-sim -scenario).
	Spec json.RawMessage `json:"spec,omitempty"`
	// RetryAfterMs accompanies shed responses.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// Server is the simulation service. Create with New, mount Handler,
// call BeginDrain on shutdown.
type Server struct {
	cfg Config

	// slots is the worker pool: a buffered channel used as a counting
	// semaphore, Workers deep. waiting bounds the run requests parked
	// on a full pool; overflow is shed.
	slots   chan struct{}
	waiting chan struct{}

	draining  chan struct{}
	drainOnce sync.Once

	seedCtr  atomic.Int64
	inFlight atomic.Int64
	queued   atomic.Int64

	ok, badSpec, shed, budget, panics, canceled atomic.Uint64

	// arenas pools one reusable experiment.Arena per worker slot; all
	// arenas share cache, so repeated identical specs skip deployment
	// construction regardless of which worker picks them up.
	arenas chan *experiment.Arena
	cache  *experiment.DeployCache

	mux *http.ServeMux
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.Queue < 0:
		cfg.Queue = 0
	case cfg.Queue == 0:
		cfg.Queue = 2 * cfg.Workers
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.BaseSeed == 0 {
		cfg.BaseSeed = 1
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{
		cfg:      cfg,
		slots:    make(chan struct{}, cfg.Workers),
		waiting:  make(chan struct{}, cfg.Queue),
		draining: make(chan struct{}),
		arenas:   make(chan *experiment.Arena, cfg.Workers),
		cache:    experiment.NewDeployCache(0),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.arenas <- experiment.NewArenaWithCache(s.cache)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Workers reports the worker-pool size after defaulting.
func (s *Server) Workers() int { return cap(s.slots) }

// QueueDepth reports the wait-queue bound after defaulting.
func (s *Server) QueueDepth() int { return cap(s.waiting) }

// BeginDrain flips the server into draining mode: /readyz answers 503,
// new and queued runs are refused with 503, in-flight runs continue.
// Follow with http.Server.Shutdown, which waits for them. Idempotent.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() { close(s.draining) })
}

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Stats snapshots the request counters.
func (s *Server) Stats() Stats {
	hits, misses := s.cache.Stats()
	return Stats{
		OK:          s.ok.Load(),
		BadSpec:     s.badSpec.Load(),
		Shed:        s.shed.Load(),
		Budget:      s.budget.Load(),
		Panics:      s.panics.Load(),
		Canceled:    s.canceled.Load(),
		InFlight:    s.inFlight.Load(),
		Queued:      s.queued.Load(),
		Draining:    s.Draining(),
		CacheHits:   hits,
		CacheMisses: misses,
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	status := http.StatusOK
	if st.Draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, st)
}

// acquire claims a worker slot, waiting in the bounded queue if the
// pool is busy. It returns a release func on success, or writes the
// shed/drain/cancel response and returns nil.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request) func() {
	release := func() { <-s.slots }
	select {
	case s.slots <- struct{}{}:
		return release
	default:
	}
	// Pool busy: park in the bounded wait queue, or shed.
	select {
	case s.waiting <- struct{}{}:
	default:
		s.shed.Add(1)
		s.logf("shed: pool and queue full (in-flight %d, queued %d)", s.inFlight.Load(), s.queued.Load())
		retry := s.cfg.RetryAfter
		w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Kind:         "shed",
			Error:        "all workers busy and wait queue full; retry later",
			RetryAfterMs: retry.Milliseconds(),
		})
		return nil
	}
	s.queued.Add(1)
	defer func() { s.queued.Add(-1); <-s.waiting }()
	select {
	case s.slots <- struct{}{}:
		return release
	case <-s.draining:
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Kind:  "draining",
			Error: "server is draining; no new runs accepted",
		})
		return nil
	case <-r.Context().Done():
		s.canceled.Add(1)
		// 499: client closed request (nginx convention); the client is
		// gone, the status is for the access log.
		w.WriteHeader(499)
		return nil
	}
}

// requestBudget derives the run budget from the server default and the
// request's deadline / max_events query parameters, which may only
// tighten it.
func (s *Server) requestBudget(r *http.Request) (experiment.Budget, error) {
	b := s.cfg.Budget
	q := r.URL.Query()
	if v := q.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return b, fmt.Errorf("invalid deadline %q", v)
		}
		if b.WallClock == 0 || d < b.WallClock {
			b.WallClock = d
		}
	}
	if v := q.Get("max_events"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n == 0 {
			return b, fmt.Errorf("invalid max_events %q", v)
		}
		if b.MaxEvents == 0 || n < b.MaxEvents {
			b.MaxEvents = n
		}
	}
	return b, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Kind: "bad_spec", Error: "POST a JSON scenario spec"})
		return
	}
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Kind:  "draining",
			Error: "server is draining; no new runs accepted",
		})
		return
	}

	body, err := readAll(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		s.badSpec.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Kind: "bad_spec", Error: err.Error()})
		return
	}
	spec, err := experiment.ParseSpec(body)
	if err != nil {
		s.badSpec.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Kind: "bad_spec", Error: err.Error()})
		return
	}
	if s.cfg.MaxNodes > 0 && spec.Nodes > s.cfg.MaxNodes {
		s.badSpec.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Kind:  "too_large",
			Error: fmt.Sprintf("spec requests %d nodes; this server caps deployments at %d", spec.Nodes, s.cfg.MaxNodes),
		})
		return
	}
	if s.cfg.MaxShards > 0 && spec.Parallelism != nil && spec.Parallelism.Shards > s.cfg.MaxShards {
		s.badSpec.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Kind:  "too_large",
			Error: fmt.Sprintf("spec requests %d engine shards; this server caps parallelism at %d", spec.Parallelism.Shards, s.cfg.MaxShards),
		})
		return
	}
	budget, err := s.requestBudget(r)
	if err != nil {
		s.badSpec.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Kind: "bad_spec", Error: err.Error()})
		return
	}
	// Per-request seeds: a spec without one gets a fresh seed from the
	// server's sequence, echoed in the response for reproduction.
	if spec.Seed == 0 {
		spec.Seed = s.cfg.BaseSeed + s.seedCtr.Add(1)
	}
	if s.cfg.Audit {
		spec.Audit = true
	}
	if len(s.cfg.Sinks) > 0 && spec.Results == nil {
		rs := &experiment.ResultsSpec{}
		for _, name := range s.cfg.Sinks {
			rs.Sinks = append(rs.Sinks, experiment.SinkSpec{Name: name})
		}
		spec.Results = rs
	}

	release := s.acquire(w, r)
	if release == nil {
		return
	}
	defer release()

	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	// One pooled arena per worker slot: the semaphore guarantees at most
	// Workers goroutines reach this point, so the receive never blocks.
	arena := <-s.arenas
	defer func() { s.arenas <- arena }()

	start := time.Now()
	res, err := experiment.RunSpecContextWith(r.Context(), arena, spec, budget)
	elapsed := time.Since(start)

	if err != nil {
		var pe *experiment.PanicError
		var be *experiment.BudgetExceededError
		switch {
		case errors.As(err, &pe):
			// A stack that panicked mid-event may have left the pooled
			// engine inconsistent in ways Reset cannot repair; drop it.
			arena.Discard()
			s.panics.Add(1)
			s.logf("panic: protocol %s seed %d: %v\n%s", pe.Protocol, pe.Seed, pe.Value, pe.Stack)
			writeJSON(w, http.StatusInternalServerError, ErrorResponse{
				Kind:     "panic",
				Error:    pe.Error(),
				Seed:     pe.Seed,
				Protocol: string(pe.Protocol),
				Spec:     json.RawMessage(pe.SpecJSON),
			})
		case errors.As(err, &be):
			s.budget.Add(1)
			s.logf("budget: protocol %s seed %d: %v", spec.Protocol, spec.Seed, err)
			writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{
				Kind:     "budget",
				Error:    be.Error(),
				Seed:     spec.Seed,
				Protocol: spec.Protocol,
			})
		case errors.Is(err, r.Context().Err()) && r.Context().Err() != nil:
			s.canceled.Add(1)
			w.WriteHeader(499)
		default:
			// Everything else is a spec the compile/build stage refused.
			s.badSpec.Add(1)
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Kind: "bad_spec", Error: err.Error()})
		}
		return
	}

	s.ok.Add(1)
	s.logf("run: protocol %s seed %d: %d events in %v", spec.Protocol, spec.Seed, res.Events, elapsed.Round(time.Millisecond))
	resp := RunResponse{
		Protocol:      string(res.Protocol),
		Seed:          res.Seed,
		TreeSize:      res.TreeSize,
		MaxRank:       res.MaxRank,
		DutyCycle:     res.DutyCycle,
		LatencyMeanMs: float64(res.Latency.Mean) / float64(time.Millisecond),
		LatencyP95Ms:  float64(res.Latency.P95) / float64(time.Millisecond),
		Coverage:      res.Coverage,
		Events:        res.Events,
		ElapsedMs:     float64(elapsed) / float64(time.Millisecond),
	}
	if res.Audit != nil {
		resp.Audit = &Audit{Digest: res.Audit.Digest, Events: res.Audit.Events, Violations: res.Audit.Total}
	}
	resp.Records = res.Records
	writeJSON(w, http.StatusOK, resp)
}

// readAll reads the request body under the configured cap, translating
// the limiter's error into something actionable.
func readAll(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	lr := http.MaxBytesReader(w, r.Body, limit)
	defer lr.Close()
	data, err := io.ReadAll(lr)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, fmt.Errorf("request body exceeds %d bytes", limit)
		}
		return nil, err
	}
	return data, nil
}
