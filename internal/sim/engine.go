// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components share a single Engine. Virtual time is a
// time.Duration measured from the start of the simulation; no wall-clock
// time is involved. Events scheduled for the same instant fire in the
// order they were scheduled, which makes runs bit-for-bit reproducible
// for a given seed.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Event is a handle to a scheduled callback. It may be canceled before it
// fires. The zero value is not useful; Events are created by Engine.Schedule
// and Engine.After.
//
// Once an event has fired or a canceled event has been discarded, its
// struct is recycled by the engine and handed out again by a later
// Schedule. Holders must therefore drop their handle when the callback
// runs (conventionally by clearing the field that stores it as the first
// statement of the callback) and must not call Cancel or inspect a handle
// after its event fired: it may alias a newer, unrelated event.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	canceled bool
}

// At returns the virtual time at which the event is scheduled to fire.
func (ev *Event) At() time.Duration { return ev.at }

// Canceled reports whether Cancel was called on the event.
func (ev *Event) Canceled() bool { return ev.canceled }

// Cancel prevents the event from firing. Canceling an event that already
// fired or was already canceled is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// eventQueue is a binary min-heap ordered by (at, seq), implemented
// directly (no container/heap) to avoid interface dispatch on the
// simulator's hottest operations. Cancellation is lazy, so events are
// only ever pushed and popped from the root — no index bookkeeping.
type eventQueue []*Event

// less orders events by (at, seq): earlier time first, FIFO at ties.
func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

// push appends ev and restores the heap by sifting it up.
func (q *eventQueue) push(ev *Event) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The queue must be non-empty.
func (q *eventQueue) pop() *Event {
	h := *q
	n := len(h) - 1
	ev := h[0]
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	// Sift the displaced element down.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && h.less(right, left) {
			min = right
		}
		if !h.less(min, i) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return ev
}

// Engine is a discrete-event scheduler with a virtual clock.
// It is not safe for concurrent use; a simulation runs on one goroutine.
type Engine struct {
	now       time.Duration
	queue     eventQueue
	seq       uint64
	rng       *rand.Rand
	processed uint64
	// free holds fired and discarded Event structs for reuse, keeping the
	// steady state of Schedule/After allocation-free. Its length is bounded
	// by the peak number of concurrently pending events.
	free []*Event
}

// New returns an Engine whose random stream is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled,
// including canceled events that have not yet been discarded.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule registers fn to run at virtual time at. Scheduling in the past
// panics: it always indicates a protocol bug, and silently reordering
// time would corrupt every downstream metric.
func (e *Engine) Schedule(at time.Duration, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := TakeLast(&e.free)
	if ev != nil {
		ev.at, ev.seq, ev.fn, ev.canceled = at, e.seq, fn, false
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn}
	}
	e.seq++
	e.queue.push(ev)
	return ev
}

// release returns a popped event to the freelist. The callback reference
// is dropped so captured state is not kept alive by the pool.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// After registers fn to run d from now. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.Schedule(e.now+d, fn)
}

// Step executes the next pending event, if any, advancing the clock to its
// timestamp. It reports whether an event was executed. Canceled events are
// discarded without executing and without counting as a step.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.queue.pop()
		if ev.canceled {
			e.release(ev)
			continue
		}
		e.now = ev.at
		e.processed++
		fn := ev.fn
		e.release(ev)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the next event is
// scheduled after until. The clock is left at until (or at the last event
// time if that is later, which cannot happen by construction). Run returns
// the number of events executed.
func (e *Engine) Run(until time.Duration) uint64 {
	start := e.processed
	for len(e.queue) > 0 {
		// Peek without popping so a too-late event stays queued.
		next := e.queue[0]
		if next.canceled {
			e.queue.pop()
			e.release(next)
			continue
		}
		if next.at > until {
			break
		}
		e.queue.pop()
		e.now = next.at
		e.processed++
		fn := next.fn
		e.release(next)
		fn()
	}
	if e.now < until {
		e.now = until
	}
	return e.processed - start
}

// RunAll executes events until the queue is empty. It is intended for
// tests; production scenarios should bound execution with Run.
func (e *Engine) RunAll() uint64 {
	start := e.processed
	for e.Step() {
	}
	return e.processed - start
}
