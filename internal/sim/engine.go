// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components share a single Engine. Virtual time is a
// time.Duration measured from the start of the simulation; no wall-clock
// time is involved. Events scheduled for the same instant fire in the
// order they were scheduled, which makes runs bit-for-bit reproducible
// for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a handle to a scheduled callback. It may be canceled before it
// fires. The zero value is not useful; Events are created by Engine.Schedule
// and Engine.After.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	index    int
	canceled bool
}

// At returns the virtual time at which the event is scheduled to fire.
func (ev *Event) At() time.Duration { return ev.at }

// Canceled reports whether Cancel was called on the event.
func (ev *Event) Canceled() bool { return ev.canceled }

// Cancel prevents the event from firing. Canceling an event that already
// fired or was already canceled is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// eventQueue is a binary min-heap ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event scheduler with a virtual clock.
// It is not safe for concurrent use; a simulation runs on one goroutine.
type Engine struct {
	now       time.Duration
	queue     eventQueue
	seq       uint64
	rng       *rand.Rand
	processed uint64
}

// New returns an Engine whose random stream is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled,
// including canceled events that have not yet been discarded.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule registers fn to run at virtual time at. Scheduling in the past
// panics: it always indicates a protocol bug, and silently reordering
// time would corrupt every downstream metric.
func (e *Engine) Schedule(at time.Duration, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After registers fn to run d from now. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.Schedule(e.now+d, fn)
}

// Step executes the next pending event, if any, advancing the clock to its
// timestamp. It reports whether an event was executed. Canceled events are
// discarded without executing and without counting as a step.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the next event is
// scheduled after until. The clock is left at until (or at the last event
// time if that is later, which cannot happen by construction). Run returns
// the number of events executed.
func (e *Engine) Run(until time.Duration) uint64 {
	start := e.processed
	for len(e.queue) > 0 {
		// Peek without popping so a too-late event stays queued.
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.processed++
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
	return e.processed - start
}

// RunAll executes events until the queue is empty. It is intended for
// tests; production scenarios should bound execution with Run.
func (e *Engine) RunAll() uint64 {
	start := e.processed
	for e.Step() {
	}
	return e.processed - start
}
