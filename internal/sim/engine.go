// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components share a single Engine. Virtual time is a
// time.Duration measured from the start of the simulation; no wall-clock
// time is involved. Events scheduled for the same instant fire in the
// order they were scheduled, which makes runs bit-for-bit reproducible
// for a given seed.
//
// The scheduler is a hierarchical timer wheel (Varghese–Lauck) with a
// far-future overflow heap, sized for the simulator's workload: short-
// horizon, high-churn MAC timers that are frequently canceled or moved.
// Schedule, Cancel, and RescheduleTo are O(1) amortized; canceled events
// are unlinked immediately (no tombstones drag through the queue) and
// their structs recycled through a freelist, so the steady state of
// schedule/fire/cancel is allocation-free.
package sim

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"time"
)

// Scheduler geometry. Virtual time is bucketed into ticks of 2^tickShift
// nanoseconds; each wheel level has numSlots slots, and level l covers an
// aligned block of numSlots^(l+1) ticks around the cursor. Events beyond
// the top level's block (~73 minutes with this geometry) wait in the
// overflow heap until the cursor's block reaches them.
const (
	tickShift = 10 // one tick = 1024 ns ≈ 1 µs
	slotBits  = 8
	numSlots  = 1 << slotBits
	slotMask  = numSlots - 1
	numLevels = 4
	// horizonBits is how many tick bits the wheels resolve; ticks that
	// differ from the cursor above this go to the overflow heap.
	horizonBits = slotBits * numLevels
)

// Event locations. A scheduled event lives either in a wheel slot's
// intrusive list or in the overflow heap; locNone (the zero value) means
// fired, canceled, or pooled.
const (
	locNone uint8 = iota
	locWheel
	locHeap
)

// Event is a handle to a scheduled callback. It may be canceled or
// rescheduled before it fires. The zero value is not useful; Events are
// created by Engine.Schedule and Engine.After.
//
// Once an event has fired or was canceled, its struct is recycled by the
// engine and handed out again by a later Schedule. Holders must therefore
// drop their handle when the callback runs (conventionally by clearing
// the field that stores it as the first statement of the callback) and
// must not call Cancel/RescheduleTo or inspect a handle after its event
// fired or was canceled: it may alias a newer, unrelated event.
type Event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// fnA/arg are the arg-carrying form (ScheduleArg/AfterArg): fnA is a
	// shared (typically package-level) dispatcher and arg its receiver, so
	// high-churn callers need no per-object closure. Exactly one of fn and
	// fnA is set on a live event.
	fnA func(any)
	arg any
	eng *Engine

	// Location state: intrusive doubly-linked slot list when in a wheel,
	// index when in the overflow heap.
	next, prev *Event
	heapIdx    int32
	level      uint8
	slot       uint8
	where      uint8
	canceled   bool
}

// At returns the virtual time at which the event is scheduled to fire.
func (ev *Event) At() time.Duration { return ev.at }

// Canceled reports whether Cancel was called on the event.
func (ev *Event) Canceled() bool { return ev.canceled }

// Cancel prevents the event from firing. The event is unlinked from the
// scheduler immediately — O(1), no tombstone — and its struct becomes
// eligible for reuse by the next Schedule, so the handle is dead after
// Cancel returns. Canceling an event that already fired or was already
// canceled is a no-op.
func (ev *Event) Cancel() {
	if ev.where == locNone {
		return
	}
	e := ev.eng
	e.detach(ev)
	ev.canceled = true
	e.live--
	e.release(ev)
}

// RescheduleTo moves a still-pending event to fire at virtual time at,
// behaving exactly like Cancel followed by re-scheduling the same
// callback (in particular, the event is ordered as the newest event at
// its new instant). It is the allocation- and tombstone-free form of the
// cancel-and-rearm pattern MAC/NAV-style timers use. Rescheduling an
// event that is not pending, or into the past, panics.
func (ev *Event) RescheduleTo(at time.Duration) {
	if ev.where == locNone {
		panic("sim: RescheduleTo on an event that is not scheduled")
	}
	e := ev.eng
	if at < e.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, e.now))
	}
	e.detach(ev)
	ev.at = at
	ev.seq = e.seq
	e.seq++
	e.insert(ev)
}

// slotList is one wheel slot: an intrusive doubly-linked event list kept
// sorted by (at, seq), so its head is the slot's earliest event. A level-0
// slot holds a single tick, but a tick (2^tickShift ns) is coarser than
// virtual time, so same-slot events may still differ in at.
type slotList struct {
	head, tail *Event
}

// Observer is notified of every event execution, in order, before the
// event's callback runs. Observers must be pure: they may not schedule,
// cancel, or touch the engine's random stream, so that an observed run
// is indistinguishable from an unobserved one. The invariant auditor
// (internal/check) uses this to verify that pops are monotone in
// (at, seq) and to fold the event stream into a trace digest.
type Observer interface {
	EventFired(at time.Duration, seq uint64)
}

// Engine is a discrete-event scheduler with a virtual clock.
// It is not safe for concurrent use; a simulation runs on one goroutine.
type Engine struct {
	now       time.Duration
	seq       uint64
	rng       *rand.Rand
	obs       Observer
	processed uint64
	// live is the number of scheduled (not yet fired, not canceled)
	// events.
	live int

	// cursor is the scheduler's current tick: every live event's tick is
	// >= cursor, and the wheel level an event lives on is determined by
	// the highest block in which its tick and the cursor differ.
	cursor   uint64
	wheels   [numLevels][numSlots]slotList
	occupied [numLevels][numSlots / 64]uint64 // per-level slot bitmaps
	overflow []*Event                         // min-heap by (at, seq)

	// free holds fired and canceled Event structs for reuse, keeping the
	// steady state of Schedule/After/Cancel allocation-free. Its length is
	// bounded by the peak number of concurrently pending events.
	free []*Event

	// arena, when attached, supplies per-run memory to the layers built
	// on this engine; Reset reclaims it together with the scheduler
	// state (see arena.go).
	arena *Arena
}

// New returns an Engine whose random stream is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Reset returns the engine to the state of New(seed) while keeping its
// allocated capacity: pending events are drained into the freelist
// (callback references dropped), the overflow heap and occupancy
// bitmaps are cleared, the clock, sequence counter, cursor and
// processed count rewind to zero, the observer is detached, the random
// stream is reseeded (bit-identical to a fresh New(seed) stream), and
// the attached arena — if any — reclaims its slabs. A run on a reset
// engine is therefore byte-identical to a run on a fresh engine, but
// reaches steady-state zero heap growth across repeated runs because
// the event freelist and arena backing memory survive.
func (e *Engine) Reset(seed int64) {
	for l := 0; l < numLevels; l++ {
		for i := range e.wheels[l] {
			ev := e.wheels[l][i].head
			for ev != nil {
				nxt := ev.next
				ev.next, ev.prev = nil, nil
				ev.where = locNone
				ev.canceled = false
				e.release(ev)
				ev = nxt
			}
			e.wheels[l][i] = slotList{}
		}
		for w := range e.occupied[l] {
			e.occupied[l][w] = 0
		}
	}
	for i, ev := range e.overflow {
		ev.where = locNone
		ev.heapIdx = -1
		ev.canceled = false
		e.release(ev)
		e.overflow[i] = nil
	}
	e.overflow = e.overflow[:0]
	e.now, e.seq, e.cursor = 0, 0, 0
	e.processed, e.live = 0, 0
	e.obs = nil
	e.rng.Seed(seed)
	if e.arena != nil {
		e.arena.reset()
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetObserver installs an execution observer (nil disables). The
// disabled path costs one nil check per event, which is what keeps the
// auditor free when it is off.
func (e *Engine) SetObserver(o Observer) { e.obs = o }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of live events currently scheduled. Canceled
// events are unlinked eagerly and never counted.
func (e *Engine) Pending() int { return e.live }

// Schedule registers fn to run at virtual time at. Scheduling in the past
// panics: it always indicates a protocol bug, and silently reordering
// time would corrupt every downstream metric.
func (e *Engine) Schedule(at time.Duration, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := TakeLast(&e.free)
	if ev != nil {
		ev.at, ev.seq, ev.fn, ev.canceled = at, e.seq, fn, false
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn, eng: e, heapIdx: -1}
	}
	e.seq++
	if e.live == 0 {
		// Empty scheduler: snap the cursor to the present so the event
		// lands on the finest wheel its delay allows.
		e.cursor = uint64(e.now) >> tickShift
	}
	e.live++
	e.insert(ev)
	return ev
}

// After registers fn to run d from now. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.Schedule(e.now+d, fn)
}

// ScheduleArg registers fn(arg) to run at virtual time at. It is the
// closure-free form of Schedule for hot callers: fn is typically a
// package-level dispatcher shared by every event of one kind, and arg
// (usually a pointer) carries the per-event state, so scheduling does
// not allocate a captured-variable closure per object.
func (e *Engine) ScheduleArg(at time.Duration, fn func(any), arg any) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := TakeLast(&e.free)
	if ev != nil {
		ev.at, ev.seq, ev.fnA, ev.arg, ev.canceled = at, e.seq, fn, arg, false
	} else {
		ev = &Event{at: at, seq: e.seq, fnA: fn, arg: arg, eng: e, heapIdx: -1}
	}
	e.seq++
	if e.live == 0 {
		e.cursor = uint64(e.now) >> tickShift
	}
	e.live++
	e.insert(ev)
	return ev
}

// AfterArg registers fn(arg) to run d from now. Negative d panics.
func (e *Engine) AfterArg(d time.Duration, fn func(any), arg any) *Event {
	return e.ScheduleArg(e.now+d, fn, arg)
}

// release returns a detached event to the freelist. The callback and
// argument references are dropped so captured state is not kept alive by
// the pool.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.fnA = nil
	ev.arg = nil
	e.free = append(e.free, ev)
}

// insert places a live event on the wheel level (or the overflow heap)
// implied by its tick's distance from the cursor.
func (e *Engine) insert(ev *Event) {
	t := uint64(ev.at) >> tickShift
	c := e.cursor
	var level uint
	switch {
	case t>>slotBits == c>>slotBits:
		level = 0
	case t>>(2*slotBits) == c>>(2*slotBits):
		level = 1
	case t>>(3*slotBits) == c>>(3*slotBits):
		level = 2
	case t>>(4*slotBits) == c>>(4*slotBits):
		level = 3
	default:
		e.heapPush(ev)
		return
	}
	idx := int(t>>(level*slotBits)) & slotMask
	ev.level, ev.slot, ev.where = uint8(level), uint8(idx), locWheel
	s := &e.wheels[level][idx]
	// Sorted insert, scanning from the tail: a newly scheduled event has
	// the largest seq, so it lands at the tail unless an earlier-at event
	// was inserted after later-at ones (possible across cascades).
	cur := s.tail
	for cur != nil && evLess(ev, cur) {
		cur = cur.prev
	}
	if cur == nil {
		ev.prev, ev.next = nil, s.head
		if s.head != nil {
			s.head.prev = ev
		} else {
			s.tail = ev
		}
		s.head = ev
	} else {
		ev.prev, ev.next = cur, cur.next
		cur.next = ev
		if ev.next != nil {
			ev.next.prev = ev
		} else {
			s.tail = ev
		}
	}
	e.occupied[level][idx>>6] |= 1 << (uint(idx) & 63)
}

// detach unlinks a live event from its wheel slot or the overflow heap.
func (e *Engine) detach(ev *Event) {
	if ev.where == locHeap {
		e.heapRemove(int(ev.heapIdx))
		ev.where = locNone
		return
	}
	s := &e.wheels[ev.level][ev.slot]
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		s.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		s.tail = ev.prev
	}
	ev.next, ev.prev = nil, nil
	if s.head == nil {
		e.occupied[ev.level][ev.slot>>6] &^= 1 << (uint(ev.slot) & 63)
	}
	ev.where = locNone
}

// firstSlot returns the index of the level's earliest occupied slot, or
// -1. Slots the cursor has passed are always empty, so the first set bit
// is the earliest future slot.
func (e *Engine) firstSlot(level int) int {
	for w := 0; w < numSlots/64; w++ {
		if word := e.occupied[level][w]; word != 0 {
			return w*64 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// drainOverflow moves overflow events that now fall inside the wheels'
// horizon onto the wheels. The cursor only advances, so each overflow
// event is drained at most once.
func (e *Engine) drainOverflow() {
	horizon := ((e.cursor >> horizonBits) + 1) << horizonBits
	for len(e.overflow) > 0 {
		min := e.overflow[0]
		if uint64(min.at)>>tickShift >= horizon {
			return
		}
		e.heapRemove(0)
		min.where = locNone
		e.insert(min)
	}
}

// next returns the earliest live event without detaching it, advancing
// the cursor (cascading coarse slots onto finer wheels, pulling overflow
// events into the wheels) as needed. It returns nil when nothing is
// scheduled.
func (e *Engine) next() *Event {
	return e.nextWithin(^uint64(0))
}

// nextWithin is next bounded by a tick limit: the cursor never advances
// past limit, and nil is returned when the earliest event's tick is
// beyond it. The bound matters for Run's deadline peek: events may later
// be scheduled at any instant >= now, and insert assumes their ticks are
// >= cursor, so peeking past a deadline must not drag the cursor beyond
// the region future schedules can still target. An event with tick <=
// limit always lives in a slot whose span starts at or before its tick,
// so the bound never hides an in-limit event. Cascading only relocates
// events, so a peek that stops at the limit is harmless.
func (e *Engine) nextWithin(limit uint64) *Event {
	for {
		e.drainOverflow()
		if idx := e.firstSlot(0); idx >= 0 {
			return e.wheels[0][idx].head
		}
		cascaded := false
		for level := 1; level < numLevels; level++ {
			idx := e.firstSlot(level)
			if idx < 0 {
				continue
			}
			// Advance the cursor to the start of that slot's span and
			// redistribute its events; each lands on a finer level, so
			// this terminates.
			shift := uint(level) * slotBits
			cur := (e.cursor>>(shift+slotBits))<<(shift+slotBits) | uint64(idx)<<shift
			if cur > limit {
				return nil // every remaining event fires after the limit
			}
			e.cursor = cur
			s := &e.wheels[level][idx]
			ev := s.head
			s.head, s.tail = nil, nil
			e.occupied[level][idx>>6] &^= 1 << (uint(idx) & 63)
			for ev != nil {
				nxt := ev.next
				ev.next, ev.prev = nil, nil
				ev.where = locNone
				e.insert(ev)
				ev = nxt
			}
			cascaded = true
			break
		}
		if cascaded {
			continue
		}
		if len(e.overflow) > 0 {
			// Everything lives beyond the horizon: jump the cursor to the
			// overflow minimum's top-level block and drain.
			cur := (uint64(e.overflow[0].at) >> tickShift >> horizonBits) << horizonBits
			if cur > limit {
				return nil
			}
			e.cursor = cur
			continue
		}
		return nil
	}
}

// fire detaches ev, advances the clock to it, and executes its callback.
func (e *Engine) fire(ev *Event) {
	if e.obs != nil {
		e.obs.EventFired(ev.at, ev.seq)
	}
	e.detach(ev)
	e.now = ev.at
	e.cursor = uint64(ev.at) >> tickShift
	e.processed++
	e.live--
	fn, fnA, arg := ev.fn, ev.fnA, ev.arg
	e.release(ev)
	if fnA != nil {
		fnA(arg)
	} else {
		fn()
	}
}

// Step executes the next pending event, if any, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	ev := e.next()
	if ev == nil {
		return false
	}
	e.fire(ev)
	return true
}

// Run executes events until the queue is empty or the next event is
// scheduled after until. The clock is left at until (or at the last event
// time if that is later, which cannot happen by construction). Run returns
// the number of events executed.
func (e *Engine) Run(until time.Duration) uint64 {
	n, _ := e.RunChecked(until, 0, nil)
	return n
}

// ErrEventBudget is returned by RunChecked when the run fired its
// maximum number of events before draining the queue.
var ErrEventBudget = errors.New("sim: event budget exhausted")

// checkMask amortizes RunChecked's interruption polls: check runs once
// every checkMask+1 fired events, so the per-event cost of being
// cancellable is one masked compare — at the engine's multi-million
// events/s throughput the poll granularity is on the order of a
// millisecond of wall time.
const checkMask = 1<<12 - 1

// RunChecked is Run with two interruption mechanisms for embedding the
// engine in a long-running process:
//
//   - maxEvents, when non-zero, bounds the number of events this call
//     may fire; hitting the bound stops the loop exactly there (the
//     bound is checked per event, deterministically) and returns
//     ErrEventBudget.
//   - check, when non-nil, is polled every checkMask+1 events; a
//     non-nil return stops the loop and is returned verbatim. Callers
//     use it for context cancellation and wall-clock deadlines.
//
// On early termination the virtual clock stays at the last fired
// event's instant — it is NOT advanced to until — and all remaining
// events stay queued, so a diagnostic Collect over the partial run sees
// a consistent (if truncated) simulation. With maxEvents zero and a nil
// check, RunChecked is exactly Run.
func (e *Engine) RunChecked(until time.Duration, maxEvents uint64, check func() error) (uint64, error) {
	if until < e.now {
		return 0, nil
	}
	start := e.processed
	limit := uint64(until) >> tickShift
	for {
		// Peek without detaching — and without letting the deadline peek
		// advance the cursor past until — so a too-late event stays
		// queued where later, nearer schedules can still be placed.
		ev := e.nextWithin(limit)
		if ev == nil || ev.at > until {
			break
		}
		e.fire(ev)
		fired := e.processed - start
		if maxEvents != 0 && fired >= maxEvents {
			return fired, ErrEventBudget
		}
		if check != nil && fired&checkMask == 0 {
			if err := check(); err != nil {
				return fired, err
			}
		}
	}
	if e.now < until {
		e.now = until
	}
	return e.processed - start, nil
}

// PeekNext returns the timestamp of the earliest pending event at or
// before limit, without firing it. Like Run's deadline peek, the
// internal cursor never advances past limit, so events may still be
// scheduled at any instant > limit afterwards — but schedules at
// instants <= limit may be misfiled once this returns, so callers must
// only peek up to a bound they will never schedule below. The shard
// runner peeks exactly to the window end: cross-shard arrivals land at
// or after it, so the bounded peek can never be invalidated.
func (e *Engine) PeekNext(limit time.Duration) (time.Duration, bool) {
	ev := e.nextWithin(uint64(limit) >> tickShift)
	if ev == nil || ev.at > limit {
		return 0, false
	}
	return ev.at, true
}

// NextLowerBound returns a conservative lower bound on the earliest
// pending event's instant. Unlike PeekNext it is read-only — the cursor
// and the wheels are untouched, so schedules at any instant >= now stay
// valid afterwards. The bound is the earliest occupied slot's span
// start (exact to the tick when the earliest event lives on the finest
// level, coarsening to its containing block otherwise); a bounded peek
// that comes up empty cascades coarse slots and thereby refines the
// next call's bound. Returns false when nothing is pending.
func (e *Engine) NextLowerBound() (time.Duration, bool) {
	if e.live == 0 {
		return 0, false
	}
	best := ^uint64(0)
	for level := 0; level < numLevels; level++ {
		if idx := e.firstSlot(level); idx >= 0 {
			shift := uint(level) * slotBits
			span := (e.cursor>>(shift+slotBits))<<(shift+slotBits) | uint64(idx)<<shift
			if span < best {
				best = span
			}
		}
	}
	if len(e.overflow) > 0 {
		if t := uint64(e.overflow[0].at) >> tickShift; t < best {
			best = t
		}
	}
	lb := time.Duration(best << tickShift)
	if lb < e.now {
		lb = e.now
	}
	return lb, true
}

// RunAll executes events until the queue is empty. It is intended for
// tests; production scenarios should bound execution with Run.
func (e *Engine) RunAll() uint64 {
	start := e.processed
	for e.Step() {
	}
	return e.processed - start
}

// --- overflow heap ---------------------------------------------------------

// evLess orders events by (at, seq): earlier time first, FIFO at ties.
func evLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(ev *Event) {
	ev.where = locHeap
	ev.heapIdx = int32(len(e.overflow))
	e.overflow = append(e.overflow, ev)
	e.heapUp(int(ev.heapIdx))
}

// heapRemove deletes the event at index i, keeping heap order and the
// events' heapIdx fields consistent.
func (e *Engine) heapRemove(i int) {
	h := e.overflow
	n := len(h) - 1
	h[i] = h[n]
	h[i].heapIdx = int32(i)
	h[n] = nil
	e.overflow = h[:n]
	if i < n {
		e.heapDown(i)
		e.heapUp(i)
	}
}

func (e *Engine) heapUp(i int) {
	h := e.overflow
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].heapIdx, h[parent].heapIdx = int32(i), int32(parent)
		i = parent
	}
}

func (e *Engine) heapDown(i int) {
	h := e.overflow
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && evLess(h[right], h[left]) {
			min = right
		}
		if !evLess(h[min], h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		h[i].heapIdx, h[min].heapIdx = int32(i), int32(min)
		i = min
	}
}
