package sim

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// crossMsg is one synthetic cross-shard message parked for a barrier.
type crossMsg struct {
	at  time.Duration
	dst int
	fn  func()
}

// testMesh is a minimal outbox/exchange pair mirroring the phy mesh's
// contract: workers append to their own outbox between barriers, the
// barrier drains single-threaded.
type testMesh struct {
	engines []*Engine
	outbox  [][]crossMsg // indexed by source engine
}

func (m *testMesh) exchange(now time.Duration) {
	for s := range m.outbox {
		for _, msg := range m.outbox[s] {
			msg := msg
			m.engines[msg.dst].Schedule(msg.at, msg.fn)
		}
		m.outbox[s] = m.outbox[s][:0]
	}
}

// TestShardRunnerPingPong bounces a message between two engines through
// the exchange with the lookahead latency, the minimal end-to-end use of
// the conservative window protocol.
func TestShardRunnerPingPong(t *testing.T) {
	const lookahead = time.Millisecond
	engines := []*Engine{New(1), New(2)}
	mesh := &testMesh{engines: engines, outbox: make([][]crossMsg, 2)}

	var hops atomic.Int64
	var bounce func(me int)
	send := func(me int) {
		other := 1 - me
		mesh.outbox[me] = append(mesh.outbox[me], crossMsg{
			at:  engines[me].Now() + lookahead,
			dst: other,
			fn:  func() { bounce(other) },
		})
	}
	bounce = func(me int) {
		hops.Add(1)
		send(me)
	}
	engines[0].Schedule(0, func() { send(0) })

	r := NewShardRunner(engines, lookahead, mesh.exchange)
	r.Run(10 * time.Millisecond)

	// Hop k lands at k·lookahead; Run is inclusive of the horizon, so
	// hops at 1..10 ms fire and the 11 ms one is dropped with the run.
	if got := hops.Load(); got != 10 {
		t.Fatalf("got %d hops, want 10", got)
	}
	for i, e := range engines {
		if e.Now() != 10*time.Millisecond {
			t.Errorf("engine %d clock %v, want 10ms", i, e.Now())
		}
	}
}

// TestShardRunnerDeterminism: same seeds and workload, same total event
// count and per-engine clocks, run after run.
func TestShardRunnerDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		engines := []*Engine{New(7), New(8), New(9)}
		for i, e := range engines {
			e := e
			step := time.Duration(i+1) * 100 * time.Microsecond
			var tick func()
			tick = func() { e.After(step, tick) }
			e.After(step, tick)
		}
		r := NewShardRunner(engines, 250*time.Microsecond, nil)
		total := r.Run(50 * time.Millisecond)
		return total, r.Processed()
	}
	t1, p1 := run()
	t2, p2 := run()
	if t1 != t2 || p1 != p2 {
		t.Fatalf("runs differ: (%d,%d) vs (%d,%d)", t1, p1, t2, p2)
	}
	if t1 == 0 {
		t.Fatal("no events ran")
	}
}

// TestShardRunnerEventBudget: the budget trips at barrier granularity
// with ErrEventBudget, and engines stop at a consistent barrier.
func TestShardRunnerEventBudget(t *testing.T) {
	engines := []*Engine{New(1), New(2)}
	for _, e := range engines {
		e := e
		var tick func()
		tick = func() { e.After(10*time.Microsecond, tick) }
		e.After(10*time.Microsecond, tick)
	}
	r := NewShardRunner(engines, 100*time.Microsecond, nil)
	n, err := r.RunChecked(time.Second, 500, nil)
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("got %v, want ErrEventBudget", err)
	}
	if n < 500 {
		t.Errorf("stopped after %d events, below the 500 budget", n)
	}
	if engines[0].Now() != engines[1].Now() {
		t.Errorf("engines stopped at different barriers: %v vs %v", engines[0].Now(), engines[1].Now())
	}
}

// TestShardRunnerCheckError: a check failure surfaces verbatim.
func TestShardRunnerCheckError(t *testing.T) {
	sentinel := errors.New("stop")
	e := New(1)
	var tick func()
	tick = func() { e.After(time.Millisecond, tick) }
	e.After(time.Millisecond, tick)
	r := NewShardRunner([]*Engine{e}, time.Millisecond, nil)
	calls := 0
	_, err := r.RunChecked(time.Second, 0, func() error {
		calls++
		if calls > 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}

// TestShardRunnerIdleJump: engines with nothing scheduled finish in a
// handful of barriers, not one per lookahead window.
func TestShardRunnerIdleJump(t *testing.T) {
	engines := []*Engine{New(1), New(2)}
	barriers := 0
	r := NewShardRunner(engines, time.Microsecond, func(time.Duration) { barriers++ })
	r.Run(time.Hour)
	if barriers > 4 {
		t.Errorf("idle run took %d barriers, want a constant handful", barriers)
	}
	for _, e := range engines {
		if e.Now() != time.Hour {
			t.Errorf("idle engine clock %v, want 1h", e.Now())
		}
	}
}

// TestShardRunnerValidation: constructor contract.
func TestShardRunnerValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero window", func() { NewShardRunner([]*Engine{New(1)}, 0, nil) })
	mustPanic("no engines", func() { NewShardRunner(nil, time.Millisecond, nil) })
}

// TestNextLowerBound: the read-only bound never exceeds the true next
// event, refines after a bounded peek cascades, and leaves scheduling
// below a previously-peeked horizon valid.
func TestNextLowerBound(t *testing.T) {
	e := New(1)
	if _, ok := e.NextLowerBound(); ok {
		t.Fatal("empty engine reported a bound")
	}
	target := 1900 * time.Millisecond
	e.Schedule(target, func() {})
	lb, ok := e.NextLowerBound()
	if !ok || lb > target {
		t.Fatalf("bound %v (ok=%v) exceeds next event %v", lb, ok, target)
	}
	// A bounded peek below the event must come up empty without dragging
	// the cursor past its own limit...
	if _, ok := e.PeekNext(time.Second); ok {
		t.Fatal("peek found an event below the first schedule")
	}
	// ...so a later schedule below the event but above the peek limit
	// still fires in order.
	early := 1500 * time.Millisecond
	fired := make([]time.Duration, 0, 2)
	e.Schedule(early, func() { fired = append(fired, e.Now()) })
	lb2, ok := e.NextLowerBound()
	if !ok || lb2 > early {
		t.Fatalf("refined bound %v exceeds new next %v", lb2, early)
	}
	e.Run(2 * time.Second)
	if len(fired) != 1 || fired[0] != early {
		t.Fatalf("late-scheduled event fired at %v, want %v", fired, early)
	}
}
