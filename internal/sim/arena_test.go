package sim

import (
	"testing"
	"time"
)

// TestResetMatchesFreshEngine replays the DeterminismAcrossRuns trace
// shape on a reset engine and checks it is identical to a fresh one:
// clock, rng stream, sequence numbers, and event order all rewind.
func TestResetMatchesFreshEngine(t *testing.T) {
	trace := func(e *Engine) []time.Duration {
		var out []time.Duration
		var step func()
		step = func() {
			out = append(out, e.Now())
			if len(out) < 50 {
				jitter := time.Duration(e.Rand().Intn(1000)) * time.Microsecond
				e.After(jitter+time.Microsecond, step)
			}
		}
		e.Schedule(0, step)
		e.RunAll()
		return out
	}
	fresh := trace(New(42))
	e := New(7) // different seed, then reset to 42
	trace(e)
	e.Reset(42)
	if e.Now() != 0 || e.Pending() != 0 || e.Processed() != 0 {
		t.Fatalf("Reset left now=%v pending=%d processed=%d, want zeros",
			e.Now(), e.Pending(), e.Processed())
	}
	reused := trace(e)
	if len(fresh) != len(reused) {
		t.Fatalf("trace lengths differ: fresh %d vs reset %d", len(fresh), len(reused))
	}
	for i := range fresh {
		if fresh[i] != reused[i] {
			t.Fatalf("trace diverges at %d: fresh %v vs reset %v", i, fresh[i], reused[i])
		}
	}
}

// TestResetDrainsPendingEvents resets an engine with events parked on
// every wheel level and the overflow heap, and checks none of them fire
// and all structs are recycled through the freelist.
func TestResetDrainsPendingEvents(t *testing.T) {
	e := New(1)
	fired := 0
	fn := func() { fired++ }
	delays := []time.Duration{
		50 * time.Microsecond, // level 0
		10 * time.Millisecond, // level 1
		5 * time.Second,       // level 2
		30 * time.Minute,      // level 3
		3 * time.Hour,         // overflow heap
	}
	for _, d := range delays {
		e.Schedule(d, fn)
	}
	e.Reset(1)
	if got := len(e.free); got != len(delays) {
		t.Fatalf("freelist holds %d events after Reset, want %d", got, len(delays))
	}
	if n := e.RunAll(); n != 0 || fired != 0 {
		t.Fatalf("reset engine fired %d events (%d callbacks), want 0", n, fired)
	}
	// The recycled structs must come back clean.
	ev := e.Schedule(time.Second, fn)
	if ev.Canceled() {
		t.Fatal("recycled event inherited a stale canceled flag across Reset")
	}
	e.RunAll()
	if fired != 1 {
		t.Fatalf("post-reset schedule fired %d times, want 1", fired)
	}
}

// TestSteadyStateZeroAllocAcrossResets is the cross-run extension of
// TestSteadyStateZeroAlloc: once the freelist and arena slabs are warm,
// an entire Reset → populate → drain cycle — the shape of one sweep
// point in a repeated-spec sweep — must not allocate.
func TestSteadyStateZeroAllocAcrossResets(t *testing.T) {
	e := New(1)
	e.SetArena(NewArena())
	fn := func() {}
	cycle := func() {
		e.Reset(1)
		for i := 0; i < 64; i++ {
			_ = ArenaSlice[uint64](e, "test.slice", 32)
			_ = ArenaGrab[Event](e, "test.slab")
			e.Schedule(time.Duration(i)*time.Microsecond, fn)
		}
		e.RunAll()
	}
	cycle() // warm-up: populate freelist, slabs, and backing arrays
	allocs := testing.AllocsPerRun(100, cycle)
	if allocs != 0 {
		t.Errorf("steady-state Reset+run cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// TestArenaSliceZeroedAndSized checks arena slices come back zeroed and
// correctly sized across reuse, including size-mismatch replacement.
func TestArenaSliceZeroedAndSized(t *testing.T) {
	e := New(1)
	e.SetArena(NewArena())
	s := ArenaSlice[int](e, "t", 8)
	if len(s) != 8 {
		t.Fatalf("len = %d, want 8", len(s))
	}
	for i := range s {
		s[i] = i + 1
	}
	e.Reset(1)
	s2 := ArenaSlice[int](e, "t", 8)
	if &s[0] != &s2[0] {
		t.Fatal("same-size request after Reset did not reuse the backing array")
	}
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("reused slice not zeroed at %d: %d", i, v)
		}
	}
	e.Reset(1)
	s3 := ArenaSlice[int](e, "t", 16) // larger: must be replaced, still zeroed
	if len(s3) != 16 {
		t.Fatalf("len = %d, want 16", len(s3))
	}
	for i, v := range s3 {
		if v != 0 {
			t.Fatalf("grown slice not zeroed at %d: %d", i, v)
		}
	}
}

// TestArenaGrabZeroedAcrossReset checks slab pointers are recycled
// zeroed after a reset, and distinct within a run.
func TestArenaGrabZeroedAcrossReset(t *testing.T) {
	type rec struct{ a, b int }
	e := New(1)
	e.SetArena(NewArena())
	p1 := ArenaGrab[rec](e, "t")
	p2 := ArenaGrab[rec](e, "t")
	if p1 == p2 {
		t.Fatal("two grabs in one run returned the same pointer")
	}
	p1.a, p1.b = 3, 4
	e.Reset(1)
	q := ArenaGrab[rec](e, "t")
	if q != p1 {
		t.Fatal("first grab after Reset did not reuse the slab slot")
	}
	if q.a != 0 || q.b != 0 {
		t.Fatalf("recycled slab slot not zeroed: %+v", *q)
	}
}

// TestArenaFallbackWithoutArena checks the helpers degrade to plain
// allocation when no arena is attached (and on a nil engine).
func TestArenaFallbackWithoutArena(t *testing.T) {
	e := New(1)
	s := ArenaSlice[int](e, "t", 4)
	if len(s) != 4 {
		t.Fatalf("len = %d, want 4", len(s))
	}
	if p := ArenaGrab[int](e, "t"); p == nil || *p != 0 {
		t.Fatal("ArenaGrab fallback returned nil or non-zero")
	}
	if s := ArenaSlice[int](nil, "t", 4); len(s) != 4 {
		t.Fatal("nil-engine ArenaSlice fallback broken")
	}
}
