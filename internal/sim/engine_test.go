package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewEngineStartsAtZero(t *testing.T) {
	e := New(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndStep(t *testing.T) {
	e := New(1)
	var fired []int
	e.Schedule(10*time.Millisecond, func() { fired = append(fired, 1) })
	e.Schedule(5*time.Millisecond, func() { fired = append(fired, 2) })

	if !e.Step() {
		t.Fatal("Step() = false, want true")
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", e.Now())
	}
	if !e.Step() {
		t.Fatal("Step() = false, want true")
	}
	if e.Step() {
		t.Fatal("Step() = true on empty queue")
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 1 {
		t.Fatalf("fired = %v, want [2 1]", fired)
	}
}

func TestFIFOOrderingAtSameInstant(t *testing.T) {
	e := New(1)
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { fired = append(fired, i) })
	}
	e.RunAll()
	for i, v := range fired {
		if v != i {
			t.Fatalf("fired[%d] = %d, want %d (FIFO tie-break violated)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.Schedule(3*time.Second, func() {
		e.After(2*time.Second, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 5*time.Second {
		t.Fatalf("nested After fired at %v, want 5s", at)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	e.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	e := New(1)
	ev := e.Schedule(time.Second, func() {})
	ev.Cancel()
	ev.Cancel()
	if n := e.RunAll(); n != 0 {
		t.Fatalf("RunAll() = %d events, want 0", n)
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	for _, at := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	n := e.Run(2 * time.Second)
	if n != 2 {
		t.Fatalf("Run executed %d events, want 2", n)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	// The remaining event still fires on a later Run.
	e.Run(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("Now() = %v, want clock advanced to 10s", e.Now())
	}
}

func TestRunAdvancesClockWithEmptyQueue(t *testing.T) {
	e := New(1)
	e.Run(7 * time.Second)
	if e.Now() != 7*time.Second {
		t.Fatalf("Now() = %v, want 7s", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.Schedule(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(500*time.Millisecond, func() {})
	})
	e.RunAll()
}

func TestNilCallbackPanics(t *testing.T) {
	e := New(1)
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	e.Schedule(time.Second, nil)
}

func TestEventsScheduledDuringExecution(t *testing.T) {
	e := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.RunAll()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 99*time.Millisecond {
		t.Fatalf("Now() = %v, want 99ms", e.Now())
	}
}

func TestProcessedCounts(t *testing.T) {
	e := New(1)
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {})
	}
	e.RunAll()
	if e.Processed() != 5 {
		t.Fatalf("Processed() = %d, want 5", e.Processed())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []time.Duration {
		e := New(seed)
		var out []time.Duration
		var step func()
		step = func() {
			out = append(out, e.Now())
			if len(out) < 50 {
				jitter := time.Duration(e.Rand().Intn(1000)) * time.Microsecond
				e.After(jitter+time.Microsecond, step)
			}
		}
		e.Schedule(0, step)
		e.RunAll()
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := true
	for i := range a {
		if i >= len(c) || a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestEventOrderInvariant checks with random schedules that execution
// order is always sorted by (time, insertion order).
func TestEventOrderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New(seed)
		n := 200
		type rec struct {
			at  time.Duration
			seq int
		}
		scheduled := make([]rec, 0, n)
		var fired []rec
		for i := 0; i < n; i++ {
			at := time.Duration(rng.Intn(50)) * time.Millisecond
			r := rec{at: at, seq: i}
			scheduled = append(scheduled, r)
			e.Schedule(at, func() { fired = append(fired, r) })
		}
		e.RunAll()
		if len(fired) != n {
			return false
		}
		for i := 1; i < n; i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestEventRecycledAfterFire checks that a fired event's struct is reused
// by the next Schedule instead of being garbage.
func TestEventRecycledAfterFire(t *testing.T) {
	e := New(1)
	ev1 := e.Schedule(time.Millisecond, func() {})
	e.RunAll()
	ev2 := e.Schedule(time.Second, func() {})
	if ev1 != ev2 {
		t.Fatal("fired event was not recycled by the next Schedule")
	}
	if ev2.Canceled() {
		t.Fatal("recycled event inherited a stale canceled flag")
	}
	if ev2.At() != time.Second {
		t.Fatalf("recycled event At() = %v, want 1s", ev2.At())
	}
}

// TestEventRecycledAfterCancel checks that canceled events are recycled
// once the queue discards them, with the canceled flag reset.
func TestEventRecycledAfterCancel(t *testing.T) {
	e := New(1)
	ev1 := e.Schedule(time.Millisecond, func() { t.Error("canceled event fired") })
	ev1.Cancel()
	e.RunAll() // discards the canceled event
	fired := false
	ev2 := e.Schedule(time.Second, func() { fired = true })
	if ev1 != ev2 {
		t.Fatal("canceled event was not recycled by the next Schedule")
	}
	if ev2.Canceled() {
		t.Fatal("recycled event inherited a stale canceled flag")
	}
	e.RunAll()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// TestFIFOOrderingAcrossReuse checks the same-instant FIFO tie-break is
// preserved when the queue is built from recycled Event structs.
func TestFIFOOrderingAcrossReuse(t *testing.T) {
	e := New(1)
	// Populate and drain the freelist.
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.RunAll()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { fired = append(fired, i) })
	}
	// Interleave a cancellation to exercise discard + reuse in one pass.
	ev := e.Schedule(time.Second, func() { t.Error("canceled event fired") })
	ev.Cancel()
	e.RunAll()
	if len(fired) != 10 {
		t.Fatalf("fired %d events, want 10", len(fired))
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("fired[%d] = %d, want %d (FIFO tie-break violated across reuse)", i, v, i)
		}
	}
}

// TestRescheduleInsideCallbackReusesEvent checks the hot-path pattern: a
// self-rescheduling timer runs allocation-free because the struct released
// before the callback is immediately reused by the After inside it.
func TestRescheduleInsideCallbackReusesEvent(t *testing.T) {
	e := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 1000 {
			e.After(time.Microsecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.RunAll()
	if count != 1000 {
		t.Fatalf("count = %d, want 1000", count)
	}
	if got := len(e.free); got != 1 {
		t.Fatalf("freelist holds %d events after drain, want 1 (one struct recycled throughout)", got)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New(1)
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j)*time.Microsecond, func() {})
		}
		e.RunAll()
	}
}

// TestSteadyStateZeroAlloc is the enforcing guard for the freelist's
// zero-alloc property: after warm-up, scheduling and firing events must
// not allocate. (BenchmarkEngineThroughput reports the same property but
// a benchmark cannot fail CI on a regression.)
func TestSteadyStateZeroAlloc(t *testing.T) {
	e := New(1)
	fn := func() {}
	// Warm up the freelist and the queue's backing array.
	for i := 0; i < 64; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, fn)
	}
	e.RunAll()
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(time.Microsecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule+fire allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkEngineThroughput measures steady-state event throughput with a
// population of concurrent self-rescheduling timers, the shape of a busy
// simulation. With the event freelist the steady state is allocation-free:
// b.ReportAllocs guards the zero-alloc property.
func BenchmarkEngineThroughput(b *testing.B) {
	const timers = 64
	e := New(1)
	remaining := b.N
	ticks := make([]func(), timers)
	for i := 0; i < timers; i++ {
		i := i
		ticks[i] = func() {
			remaining--
			if remaining > 0 {
				// Deterministic pseudo-jitter keeps the heap shuffled.
				d := time.Duration(1+(remaining*7919)%64) * time.Microsecond
				e.After(d, ticks[i])
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < timers && i < b.N; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, ticks[i])
	}
	e.RunAll()
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(e.Processed())/b.Elapsed().Seconds(), "events/sec")
	}
}

func BenchmarkTimerWheelChurn(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.RunAll()
}
