package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestNewEngineStartsAtZero(t *testing.T) {
	e := New(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndStep(t *testing.T) {
	e := New(1)
	var fired []int
	e.Schedule(10*time.Millisecond, func() { fired = append(fired, 1) })
	e.Schedule(5*time.Millisecond, func() { fired = append(fired, 2) })

	if !e.Step() {
		t.Fatal("Step() = false, want true")
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", e.Now())
	}
	if !e.Step() {
		t.Fatal("Step() = false, want true")
	}
	if e.Step() {
		t.Fatal("Step() = true on empty queue")
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 1 {
		t.Fatalf("fired = %v, want [2 1]", fired)
	}
}

func TestFIFOOrderingAtSameInstant(t *testing.T) {
	e := New(1)
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { fired = append(fired, i) })
	}
	e.RunAll()
	for i, v := range fired {
		if v != i {
			t.Fatalf("fired[%d] = %d, want %d (FIFO tie-break violated)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.Schedule(3*time.Second, func() {
		e.After(2*time.Second, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 5*time.Second {
		t.Fatalf("nested After fired at %v, want 5s", at)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	e.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	e := New(1)
	ev := e.Schedule(time.Second, func() {})
	ev.Cancel()
	ev.Cancel()
	if n := e.RunAll(); n != 0 {
		t.Fatalf("RunAll() = %d events, want 0", n)
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	for _, at := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	n := e.Run(2 * time.Second)
	if n != 2 {
		t.Fatalf("Run executed %d events, want 2", n)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	// The remaining event still fires on a later Run.
	e.Run(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("Now() = %v, want clock advanced to 10s", e.Now())
	}
}

func TestRunAdvancesClockWithEmptyQueue(t *testing.T) {
	e := New(1)
	e.Run(7 * time.Second)
	if e.Now() != 7*time.Second {
		t.Fatalf("Now() = %v, want 7s", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.Schedule(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(500*time.Millisecond, func() {})
	})
	e.RunAll()
}

func TestNilCallbackPanics(t *testing.T) {
	e := New(1)
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	e.Schedule(time.Second, nil)
}

func TestEventsScheduledDuringExecution(t *testing.T) {
	e := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.RunAll()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 99*time.Millisecond {
		t.Fatalf("Now() = %v, want 99ms", e.Now())
	}
}

func TestProcessedCounts(t *testing.T) {
	e := New(1)
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {})
	}
	e.RunAll()
	if e.Processed() != 5 {
		t.Fatalf("Processed() = %d, want 5", e.Processed())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []time.Duration {
		e := New(seed)
		var out []time.Duration
		var step func()
		step = func() {
			out = append(out, e.Now())
			if len(out) < 50 {
				jitter := time.Duration(e.Rand().Intn(1000)) * time.Microsecond
				e.After(jitter+time.Microsecond, step)
			}
		}
		e.Schedule(0, step)
		e.RunAll()
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := true
	for i := range a {
		if i >= len(c) || a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestEventOrderInvariant checks with random schedules that execution
// order is always sorted by (time, insertion order).
func TestEventOrderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New(seed)
		n := 200
		type rec struct {
			at  time.Duration
			seq int
		}
		scheduled := make([]rec, 0, n)
		var fired []rec
		for i := 0; i < n; i++ {
			at := time.Duration(rng.Intn(50)) * time.Millisecond
			r := rec{at: at, seq: i}
			scheduled = append(scheduled, r)
			e.Schedule(at, func() { fired = append(fired, r) })
		}
		e.RunAll()
		if len(fired) != n {
			return false
		}
		for i := 1; i < n; i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestEventRecycledAfterFire checks that a fired event's struct is reused
// by the next Schedule instead of being garbage.
func TestEventRecycledAfterFire(t *testing.T) {
	e := New(1)
	ev1 := e.Schedule(time.Millisecond, func() {})
	e.RunAll()
	ev2 := e.Schedule(time.Second, func() {})
	if ev1 != ev2 {
		t.Fatal("fired event was not recycled by the next Schedule")
	}
	if ev2.Canceled() {
		t.Fatal("recycled event inherited a stale canceled flag")
	}
	if ev2.At() != time.Second {
		t.Fatalf("recycled event At() = %v, want 1s", ev2.At())
	}
}

// TestEventRecycledAfterCancel checks that canceled events are recycled
// once the queue discards them, with the canceled flag reset.
func TestEventRecycledAfterCancel(t *testing.T) {
	e := New(1)
	ev1 := e.Schedule(time.Millisecond, func() { t.Error("canceled event fired") })
	ev1.Cancel()
	e.RunAll() // discards the canceled event
	fired := false
	ev2 := e.Schedule(time.Second, func() { fired = true })
	if ev1 != ev2 {
		t.Fatal("canceled event was not recycled by the next Schedule")
	}
	if ev2.Canceled() {
		t.Fatal("recycled event inherited a stale canceled flag")
	}
	e.RunAll()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// TestFIFOOrderingAcrossReuse checks the same-instant FIFO tie-break is
// preserved when the queue is built from recycled Event structs.
func TestFIFOOrderingAcrossReuse(t *testing.T) {
	e := New(1)
	// Populate and drain the freelist.
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.RunAll()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { fired = append(fired, i) })
	}
	// Interleave a cancellation to exercise discard + reuse in one pass.
	ev := e.Schedule(time.Second, func() { t.Error("canceled event fired") })
	ev.Cancel()
	e.RunAll()
	if len(fired) != 10 {
		t.Fatalf("fired %d events, want 10", len(fired))
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("fired[%d] = %d, want %d (FIFO tie-break violated across reuse)", i, v, i)
		}
	}
}

// TestRescheduleInsideCallbackReusesEvent checks the hot-path pattern: a
// self-rescheduling timer runs allocation-free because the struct released
// before the callback is immediately reused by the After inside it.
func TestRescheduleInsideCallbackReusesEvent(t *testing.T) {
	e := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 1000 {
			e.After(time.Microsecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.RunAll()
	if count != 1000 {
		t.Fatalf("count = %d, want 1000", count)
	}
	if got := len(e.free); got != 1 {
		t.Fatalf("freelist holds %d events after drain, want 1 (one struct recycled throughout)", got)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New(1)
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j)*time.Microsecond, func() {})
		}
		e.RunAll()
	}
}

// TestSteadyStateZeroAlloc is the enforcing guard for the freelist's
// zero-alloc property: after warm-up, scheduling and firing events must
// not allocate. (BenchmarkEngineThroughput reports the same property but
// a benchmark cannot fail CI on a regression.)
func TestSteadyStateZeroAlloc(t *testing.T) {
	e := New(1)
	fn := func() {}
	// Warm up the freelist and the queue's backing array.
	for i := 0; i < 64; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, fn)
	}
	e.RunAll()
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(time.Microsecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule+fire allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkEngineThroughput measures steady-state event throughput with a
// population of concurrent self-rescheduling timers, the shape of a busy
// simulation. With the event freelist the steady state is allocation-free:
// b.ReportAllocs guards the zero-alloc property.
func BenchmarkEngineThroughput(b *testing.B) {
	const timers = 64
	e := New(1)
	remaining := b.N
	ticks := make([]func(), timers)
	for i := 0; i < timers; i++ {
		i := i
		ticks[i] = func() {
			remaining--
			if remaining > 0 {
				// Deterministic pseudo-jitter keeps the heap shuffled.
				d := time.Duration(1+(remaining*7919)%64) * time.Microsecond
				e.After(d, ticks[i])
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < timers && i < b.N; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, ticks[i])
	}
	e.RunAll()
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(e.Processed())/b.Elapsed().Seconds(), "events/sec")
	}
}

func BenchmarkTimerWheelChurn(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.RunAll()
}

// TestPendingCountsLiveEventsOnly is the regression test for Pending():
// it must report live events, not raw queue length — canceled events are
// unlinked eagerly and never counted.
func TestPendingCountsLiveEventsOnly(t *testing.T) {
	e := New(1)
	evs := make([]*Event, 5)
	for i := range evs {
		evs[i] = e.Schedule(time.Duration(i+1)*time.Millisecond, func() {})
	}
	if got := e.Pending(); got != 5 {
		t.Fatalf("Pending() = %d, want 5", got)
	}
	evs[1].Cancel()
	evs[3].Cancel()
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending() = %d after 2 cancels, want 3", got)
	}
	e.Step()
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending() = %d after a fire, want 2", got)
	}
	// A far-future (overflow-heap) event counts too, and uncounts on cancel.
	far := e.Schedule(5*time.Hour, func() {})
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending() = %d with overflow event, want 3", got)
	}
	far.Cancel()
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending() = %d after overflow cancel, want 2", got)
	}
	e.RunAll()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", got)
	}
}

// TestCancelThenFireSameTick cancels one of several events sharing a
// scheduler tick (sub-tick at differences) and checks the survivors fire
// in exact (at, seq) order.
func TestCancelThenFireSameTick(t *testing.T) {
	e := New(1)
	var fired []int
	// All three land in the same 1024ns tick but differ in at.
	a := e.Schedule(900*time.Nanosecond, func() { fired = append(fired, 0) })
	e.Schedule(200*time.Nanosecond, func() { fired = append(fired, 1) })
	e.Schedule(500*time.Nanosecond, func() { fired = append(fired, 2) })
	_ = a
	a.Cancel()
	e.RunAll()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [1 2] (sub-tick order with mid-slot cancel)", fired)
	}
	if e.Now() != 500*time.Nanosecond {
		t.Fatalf("Now() = %v, want 500ns", e.Now())
	}
}

// TestRescheduleAcrossWheelLevels moves one event between delays that
// live on different wheel levels (and the overflow heap) and checks it
// fires exactly once, at the final time.
func TestRescheduleAcrossWheelLevels(t *testing.T) {
	e := New(1)
	var firedAt []time.Duration
	ev := e.Schedule(50*time.Microsecond, func() { firedAt = append(firedAt, e.Now()) }) // level 0
	ev.RescheduleTo(10 * time.Millisecond)                                               // level 1
	ev.RescheduleTo(5 * time.Second)                                                     // level 2
	ev.RescheduleTo(3 * time.Hour)                                                       // overflow heap
	ev.RescheduleTo(30 * time.Minute)                                                    // back onto the wheels
	if ev.At() != 30*time.Minute {
		t.Fatalf("At() = %v after reschedules, want 30m", ev.At())
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1 (reschedule must not duplicate)", got)
	}
	e.RunAll()
	if len(firedAt) != 1 || firedAt[0] != 30*time.Minute {
		t.Fatalf("firedAt = %v, want exactly [30m]", firedAt)
	}
}

// TestRescheduleOrdersAsNewest checks RescheduleTo is equivalent to
// cancel+schedule for FIFO tie-breaks: a rescheduled event fires after
// events already scheduled at its new instant.
func TestRescheduleOrdersAsNewest(t *testing.T) {
	e := New(1)
	var fired []string
	a := e.Schedule(time.Second, func() { fired = append(fired, "a") })
	e.Schedule(time.Second, func() { fired = append(fired, "b") })
	a.RescheduleTo(time.Second) // same instant, but now the newest
	e.RunAll()
	if len(fired) != 2 || fired[0] != "b" || fired[1] != "a" {
		t.Fatalf("fired = %v, want [b a]", fired)
	}
}

// TestRescheduleUnscheduledPanics documents that RescheduleTo is only
// valid on a pending event.
func TestRescheduleUnscheduledPanics(t *testing.T) {
	e := New(1)
	ev := e.Schedule(time.Millisecond, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Error("RescheduleTo on a fired event did not panic")
		}
	}()
	ev.RescheduleTo(time.Second)
}

// TestZeroDelaySelfReschedule chains After(0, ...) callbacks: each must
// fire at the same instant, in scheduling order, without livelocking the
// current tick's slot.
func TestZeroDelaySelfReschedule(t *testing.T) {
	e := New(1)
	e.Schedule(time.Millisecond, func() {}) // move now off zero first
	e.RunAll()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 500 {
			e.After(0, tick)
		}
	}
	e.After(0, tick)
	e.RunAll()
	if count != 500 {
		t.Fatalf("count = %d, want 500", count)
	}
	if e.Now() != time.Millisecond {
		t.Fatalf("Now() = %v, want 1ms (zero-delay chain must not advance time)", e.Now())
	}
}

// TestOverflowHeapPromotion schedules events beyond the wheels' ~73 min
// horizon and checks they are promoted onto the wheels and fired in
// order, interleaved correctly with near events scheduled later.
func TestOverflowHeapPromotion(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	record := func() { fired = append(fired, e.Now()) }
	times := []time.Duration{
		90 * time.Minute, // beyond horizon at schedule time
		2 * time.Hour,
		100 * time.Minute,
		time.Second, // near
	}
	for _, at := range times {
		at := at
		e.Schedule(at, record)
	}
	// An event scheduled from a callback close to a promoted one must
	// still order correctly.
	e.Schedule(89*time.Minute, func() {
		e.After(time.Minute+time.Millisecond, record) // 90min+1ms
	})
	e.RunAll()
	want := []time.Duration{
		time.Second,
		90 * time.Minute,
		90*time.Minute + time.Millisecond,
		100 * time.Minute,
		2 * time.Hour,
	}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired[%d] = %v, want %v", i, fired[i], want[i])
		}
	}
}

// TestCancelInOverflowHeap cancels events parked in the overflow heap,
// including the heap minimum, and checks the survivors still fire.
func TestCancelInOverflowHeap(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	record := func() { fired = append(fired, e.Now()) }
	evs := make([]*Event, 6)
	for i := range evs {
		evs[i] = e.Schedule(time.Duration(i+2)*time.Hour, record)
	}
	evs[0].Cancel() // heap minimum
	evs[3].Cancel() // interior
	evs[5].Cancel() // last
	e.RunAll()
	want := []time.Duration{3 * time.Hour, 4 * time.Hour, 6 * time.Hour}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired[%d] = %v, want %v", i, fired[i], want[i])
		}
	}
}

// TestWheelStress drives a randomized schedule/cancel mix with delays
// spanning every wheel level and the overflow heap, and checks execution
// order against a sorted (at, seq) reference.
func TestWheelStress(t *testing.T) {
	g := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New(seed)
		type item struct {
			ev       *Event
			at       time.Duration
			seq      int
			canceled bool
		}
		var items []*item
		var fired []int
		seq := 0
		for i := 0; i < 200; i++ {
			if rng.Intn(10) < 7 || len(items) == 0 {
				mag := time.Duration(1) << uint(rng.Intn(42))
				at := e.Now() + time.Duration(rng.Int63n(int64(mag))) + 1
				it := &item{at: at, seq: seq}
				seq++
				it.ev = e.Schedule(at, func() { fired = append(fired, it.seq) })
				items = append(items, it)
			} else {
				live := make([]*item, 0, len(items))
				for _, it := range items {
					if !it.canceled {
						live = append(live, it)
					}
				}
				if len(live) == 0 {
					continue
				}
				it := live[rng.Intn(len(live))]
				it.ev.Cancel()
				it.canceled = true
			}
		}
		e.RunAll()
		// Expected: live items sorted by (at, seq).
		var want []*item
		for _, it := range items {
			if !it.canceled {
				want = append(want, it)
			}
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].at != want[b].at {
				return want[a].at < want[b].at
			}
			return want[a].seq < want[b].seq
		})
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkCancelHeavyChurn measures the MAC-exchange shape: timers that
// are armed and then canceled or moved before firing (NAV, ACK waits,
// frozen backoffs). The wheel makes cancel O(1) with no tombstones to
// drag through later pops.
func BenchmarkCancelHeavyChurn(b *testing.B) {
	e := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Arm four exchange timers, move one, cancel three — only the
		// last survives to fire, as in a typical CSMA/CA exchange.
		difs := e.After(50*time.Microsecond, fn)
		backoff := e.After(300*time.Microsecond, fn)
		nav := e.After(500*time.Microsecond, fn)
		ack := e.After(700*time.Microsecond, fn)
		nav.RescheduleTo(e.Now() + 900*time.Microsecond)
		difs.Cancel()
		backoff.Cancel()
		nav.Cancel()
		_ = ack
		e.Step() // fire the ACK timeout
	}
}

// TestScheduleNearAfterDeadlinePeek is the regression test for the
// cursor-overrun bug: Run's deadline peek of a far-future event must not
// advance the wheel cursor past `until`, or a later Schedule of a nearer
// event lands below the cursor — mis-leveled at best (events fire out of
// order), livelocked in the overflow drain at worst.
func TestScheduleNearAfterDeadlinePeek(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	record := func() { fired = append(fired, e.Now()) }

	// A far event (beyond the wheel horizon) forces the peek to consider
	// jumping the cursor to its block.
	e.Schedule(100*time.Minute, record)
	if n := e.Run(time.Millisecond); n != 0 {
		t.Fatalf("Run fired %d events before the deadline, want 0", n)
	}
	// Schedule nearer events after the bounded peek; they must fire
	// first, in time order.
	e.Schedule(2*time.Millisecond, record)
	e.Schedule(90*time.Minute, record)
	done := make(chan uint64, 1)
	go func() { done <- e.RunAll() }()
	select {
	case n := <-done:
		if n != 3 {
			t.Fatalf("RunAll fired %d events, want 3", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunAll livelocked (cursor advanced past now by the deadline peek)")
	}
	want := []time.Duration{2 * time.Millisecond, 90 * time.Minute, 100 * time.Minute}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired[%d] = %v, want %v (order violated)", i, fired[i], want[i])
		}
	}
	// Repeated bounded Runs interleaved with schedules stay consistent.
	e.Schedule(e.Now()+time.Hour, record)
	e.Run(e.Now() + time.Minute)
	e.Schedule(e.Now()+time.Second, record)
	e.RunAll()
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
	if fired[3] >= fired[4] {
		t.Fatalf("interleaved deadline runs fired out of order: %v", fired[3:])
	}
}

// Differential test (folded in from the PR-3 review scratch file):
// engine vs a naive sorted-list reference, mixing bounded Run calls,
// between-run and in-callback schedules, cancels, and reschedules
// across all wheel levels and the overflow heap.
func TestDifferentialAgainstSortedModel(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := New(seed)

		type ref struct {
			at       time.Duration
			seq      uint64
			id       int
			canceled bool
		}
		var model []*ref
		handles := map[int]*Event{}
		var fired, want []int
		nextID := 0
		var mseq uint64

		schedule := func(at time.Duration) {
			id := nextID
			nextID++
			r := &ref{at: at, seq: mseq, id: id}
			mseq++
			model = append(model, r)
			handles[id] = e.Schedule(at, func() {
				delete(handles, id)
				fired = append(fired, id)
			})
		}

		randomAt := func() time.Duration {
			mag := time.Duration(1) << uint(rng.Intn(44)) // up to ~4.8h, past horizon
			return e.Now() + time.Duration(rng.Int63n(int64(mag)))
		}

		// Run the model forward to `until`, appending fired ids to want.
		runModel := func(until time.Duration) {
			for {
				live := model[:0:0]
				for _, r := range model {
					if !r.canceled {
						live = append(live, r)
					}
				}
				if len(live) == 0 {
					return
				}
				sort.Slice(live, func(a, b int) bool {
					if live[a].at != live[b].at {
						return live[a].at < live[b].at
					}
					return live[a].seq < live[b].seq
				})
				r := live[0]
				if r.at > until {
					return
				}
				r.canceled = true // consumed
				want = append(want, r.id)
			}
		}

		for round := 0; round < 30; round++ {
			for op := 0; op < 10; op++ {
				switch rng.Intn(4) {
				case 0, 1:
					schedule(randomAt())
				case 2: // cancel a random live event
					for id, ev := range handles {
						ev.Cancel()
						delete(handles, id)
						for _, r := range model {
							if r.id == id {
								r.canceled = true
							}
						}
						break
					}
				case 3: // reschedule a random live event
					for id, ev := range handles {
						at := randomAt()
						ev.RescheduleTo(at)
						for _, r := range model {
							if r.id == id {
								r.at = at
								r.seq = mseq
								mseq++
							}
						}
						break
					}
				}
			}
			until := e.Now() + time.Duration(rng.Int63n(int64(90*time.Minute)))
			e.Run(until)
			runModel(until)
			if len(fired) != len(want) {
				t.Fatalf("seed %d round %d: fired %d events, model fired %d", seed, round, len(fired), len(want))
			}
			for i := range want {
				if fired[i] != want[i] {
					t.Fatalf("seed %d round %d: fired[%d] = %d, want %d", seed, round, i, fired[i], want[i])
				}
			}
			if e.Pending() != len(handles) {
				t.Fatalf("seed %d round %d: Pending() = %d, want %d", seed, round, e.Pending(), len(handles))
			}
		}
		// Drain everything.
		e.RunAll()
		runModel(1 << 62)
		if len(fired) != len(want) {
			t.Fatalf("seed %d drain: fired %d events, model fired %d", seed, len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("seed %d drain: fired[%d] = %d, want %d", seed, i, fired[i], want[i])
			}
		}
	}
}

// popRecorder records every observed pop for the observer tests.
type popRecorder struct {
	ats  []time.Duration
	seqs []uint64
}

func (p *popRecorder) EventFired(at time.Duration, seq uint64) {
	p.ats = append(p.ats, at)
	p.seqs = append(p.seqs, seq)
}

func TestObserverSeesEveryPopInOrder(t *testing.T) {
	e := New(1)
	rec := &popRecorder{}
	e.SetObserver(rec)
	var fired []time.Duration
	for _, d := range []time.Duration{30, 10, 20} {
		d := d * time.Millisecond
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	// An event scheduled from a callback is observed too.
	e.Schedule(5*time.Millisecond, func() {
		e.After(time.Millisecond, func() {})
	})
	e.RunAll()
	if len(rec.ats) != 5 {
		t.Fatalf("observer saw %d pops, want 5", len(rec.ats))
	}
	for i := 1; i < len(rec.ats); i++ {
		if rec.ats[i] < rec.ats[i-1] || (rec.ats[i] == rec.ats[i-1] && rec.seqs[i] <= rec.seqs[i-1]) {
			t.Fatalf("observer pops out of (at, seq) order at %d: %v/%v after %v/%v",
				i, rec.ats[i], rec.seqs[i], rec.ats[i-1], rec.seqs[i-1])
		}
	}
	// Disabling the observer stops the stream.
	e.SetObserver(nil)
	e.Schedule(e.Now()+time.Millisecond, func() {})
	e.RunAll()
	if len(rec.ats) != 5 {
		t.Fatalf("disabled observer still saw pops: %d", len(rec.ats))
	}
}
