package sim

// Arena is a per-run memory arena: a set of typed free-slab pools that
// are *reset*, not freed, between runs. A sweep that replays the same
// (or a similar) scenario shape through one engine reaches steady-state
// zero heap growth across runs: the first run populates the slabs, and
// every later run re-slices the same backing memory.
//
// An Arena is attached to an Engine (Engine.SetArena); layers that hold
// the engine obtain memory through the package-level generics
// ArenaSlice and ArenaGrab, which fall back to plain make/new when no
// arena is attached, so every classic entry point is untouched.
//
// Ownership rule: memory handed out by an arena is valid until the next
// Engine.Reset. Resetting invalidates every slice and pointer from the
// previous run — callers must treat a reset like the end of the
// process for per-run state. Returned memory is always zeroed, so an
// arena-backed run is bit-identical to a make/new-backed one.
type Arena struct {
	pools map[string]resettable
}

// resettable is the type-erased face of the typed pools: reclaim
// everything handed out, keep the backing memory.
type resettable interface{ reset() }

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{pools: make(map[string]resettable)}
}

// reset reclaims every pool. Pools are independent, so map order does
// not matter.
func (a *Arena) reset() {
	for _, p := range a.pools {
		p.reset()
	}
}

// SetArena attaches an arena to the engine (nil detaches). The arena is
// reset by Engine.Reset together with the scheduler state.
func (e *Engine) SetArena(a *Arena) { e.arena = a }

// Arena returns the attached arena, or nil.
func (e *Engine) Arena() *Arena { return e.arena }

// ArenaSlice returns a zeroed slice of n elements from the engine's
// arena pool named tag, or a fresh make([]T, n) when the engine has no
// arena. Each tag must always be used with the same element type.
//
// Requests are satisfied in first-run order: a repeated identical run
// re-issues the same sequence of (tag, n) requests and hits the same
// backing arrays, allocation-free. A size mismatch (different spec
// shape) replaces just that entry.
func ArenaSlice[T any](e *Engine, tag string, n int) []T {
	if e == nil || e.arena == nil {
		return make([]T, n)
	}
	return slicePoolFor[T](e.arena, tag).get(n)
}

// ArenaGrab returns a pointer to a zeroed T from the engine's arena
// slab named tag, or new(T) when the engine has no arena. Each tag must
// always be used with the same type.
func ArenaGrab[T any](e *Engine, tag string) *T {
	if e == nil || e.arena == nil {
		return new(T)
	}
	return slabFor[T](e.arena, tag).get()
}

// --- typed slice pool ------------------------------------------------------

// slicePool hands out []T in request order. all holds every slice ever
// allocated under this tag, in the order the first run requested them;
// next is the cursor of the current run.
type slicePool[T any] struct {
	all  [][]T
	next int
}

func (p *slicePool[T]) reset() { p.next = 0 }

func (p *slicePool[T]) get(n int) []T {
	if p.next < len(p.all) {
		s := p.all[p.next]
		if cap(s) >= n {
			p.next++
			s = s[:n]
			clear(s)
			return s
		}
		s = make([]T, n)
		p.all[p.next] = s
		p.next++
		return s
	}
	s := make([]T, n)
	p.all = append(p.all, s)
	p.next++
	return s
}

func slicePoolFor[T any](a *Arena, tag string) *slicePool[T] {
	if p, ok := a.pools[tag]; ok {
		sp, ok := p.(*slicePool[T])
		if !ok {
			panic("sim: arena tag " + tag + " reused with a different element type")
		}
		return sp
	}
	sp := &slicePool[T]{}
	a.pools[tag] = sp
	return sp
}

// --- typed struct slab -----------------------------------------------------

// slabBlockSize is the number of T per slab block. Blocks are never
// freed; reset rewinds the cursor to the first block.
const slabBlockSize = 256

type structSlab[T any] struct {
	blocks [][]T
	block  int
	idx    int
}

func (p *structSlab[T]) reset() { p.block, p.idx = 0, 0 }

func (p *structSlab[T]) get() *T {
	if p.block >= len(p.blocks) {
		p.blocks = append(p.blocks, make([]T, slabBlockSize))
	}
	b := p.blocks[p.block]
	ptr := &b[p.idx]
	var zero T
	*ptr = zero
	p.idx++
	if p.idx == len(b) {
		p.block++
		p.idx = 0
	}
	return ptr
}

func slabFor[T any](a *Arena, tag string) *structSlab[T] {
	if p, ok := a.pools[tag]; ok {
		sl, ok := p.(*structSlab[T])
		if !ok {
			panic("sim: arena tag " + tag + " reused with a different type")
		}
		return sl
	}
	sl := &structSlab[T]{}
	a.pools[tag] = sl
	return sl
}
