package sim

import (
	"errors"
	"testing"
	"time"
)

// ticker schedules a self-rechaining event every step, producing an
// unbounded deterministic workload for interruption tests.
func startTicker(e *Engine, step time.Duration) {
	var tick func()
	tick = func() { e.After(step, tick) }
	e.After(step, tick)
}

func TestRunCheckedEventBudget(t *testing.T) {
	e := New(1)
	startTicker(e, time.Millisecond)
	n, err := e.RunChecked(time.Hour, 100, nil)
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
	if n != 100 {
		t.Fatalf("fired %d events, want exactly 100", n)
	}
	if e.Processed() != 100 {
		t.Fatalf("Processed() = %d, want 100", e.Processed())
	}
	// The clock must sit at the last fired event, not at until.
	if want := 100 * time.Millisecond; e.Now() != want {
		t.Fatalf("Now() = %v, want %v (clock must not jump to until)", e.Now(), want)
	}
	// The chain's next event is still queued: the run is resumable.
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestRunCheckedCancel(t *testing.T) {
	e := New(1)
	startTicker(e, time.Microsecond)
	calls := 0
	stop := errors.New("stop")
	n, err := e.RunChecked(time.Hour, 0, func() error {
		calls++
		if calls == 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want the check's error", err)
	}
	// The poll is amortized: the third call lands at 3·(checkMask+1)
	// fired events.
	if want := uint64(3 * (checkMask + 1)); n != want {
		t.Fatalf("fired %d events before stop, want %d", n, want)
	}
	if calls != 3 {
		t.Fatalf("check called %d times, want 3", calls)
	}
}

func TestRunCheckedCheckAmortization(t *testing.T) {
	e := New(1)
	startTicker(e, time.Millisecond)
	calls := 0
	n, err := e.RunChecked(10*time.Second, 10_000, func() error { calls++; return nil })
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
	want := int(n / (checkMask + 1))
	if calls != want {
		t.Fatalf("check called %d times over %d events, want %d (every %d events)",
			calls, n, want, checkMask+1)
	}
}

// TestRunCheckedNilMatchesRun pins RunChecked(until, 0, nil) to Run:
// same events fired, same clock, for the same seeded workload.
func TestRunCheckedNilMatchesRun(t *testing.T) {
	workload := func(e *Engine) {
		// A randomized but seed-deterministic event chain that
		// occasionally branches, bounded to a few thousand events.
		scheduled := 0
		var spawn func()
		spawn = func() {
			if e.Now() > 500*time.Millisecond || scheduled > 5000 {
				return
			}
			kids := 1
			if e.Rand().Intn(8) == 0 {
				kids = 2
			}
			for i := 0; i < kids; i++ {
				scheduled++
				e.After(time.Duration(e.Rand().Intn(10_000)+1)*time.Microsecond, spawn)
			}
		}
		e.After(0, spawn)
	}
	a, b := New(7), New(7)
	workload(a)
	workload(b)
	na := a.Run(time.Second)
	nb, err := b.RunChecked(time.Second, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || a.Now() != b.Now() || a.Pending() != b.Pending() {
		t.Fatalf("Run (%d events, now %v, pending %d) diverged from RunChecked (%d, %v, %d)",
			na, a.Now(), a.Pending(), nb, b.Now(), b.Pending())
	}
}

// TestRunCheckedResume verifies that a budget-terminated run can be
// driven to completion by a later Run and lands in the same state as an
// uninterrupted run.
func TestRunCheckedResume(t *testing.T) {
	a, b := New(3), New(3)
	startTicker(a, time.Millisecond)
	startTicker(b, time.Millisecond)

	na := a.Run(time.Second)

	var nb uint64
	for {
		n, err := b.RunChecked(time.Second, 64, nil)
		nb += n
		if err == nil {
			break
		}
		if !errors.Is(err, ErrEventBudget) {
			t.Fatal(err)
		}
	}
	if na != nb || a.Now() != b.Now() {
		t.Fatalf("resumed run (%d events, now %v) diverged from plain run (%d, %v)",
			nb, b.Now(), na, a.Now())
	}
}
