package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// Differential test: engine vs a naive sorted-list reference, mixing
// bounded Run calls, between-run and in-callback schedules, cancels, and
// reschedules across all wheel levels and the overflow heap.
func TestReviewDifferential(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := New(seed)

		type ref struct {
			at       time.Duration
			seq      uint64
			id       int
			canceled bool
		}
		var model []*ref
		handles := map[int]*Event{}
		var fired, want []int
		nextID := 0
		var mseq uint64

		schedule := func(at time.Duration) {
			id := nextID
			nextID++
			r := &ref{at: at, seq: mseq, id: id}
			mseq++
			model = append(model, r)
			var ev *Event
			ev = e.Schedule(at, func() {
				delete(handles, id)
				fired = append(fired, id)
				// Sometimes schedule a follow-up from inside the callback.
				_ = ev
			})
			handles[id] = ev
		}

		randomAt := func() time.Duration {
			mag := time.Duration(1) << uint(rng.Intn(44)) // up to ~4.8h, past horizon
			return e.Now() + time.Duration(rng.Int63n(int64(mag)))
		}

		// Run the model forward to `until`, appending fired ids to want.
		runModel := func(until time.Duration) {
			for {
				live := model[:0:0]
				for _, r := range model {
					if !r.canceled {
						live = append(live, r)
					}
				}
				if len(live) == 0 {
					return
				}
				sort.Slice(live, func(a, b int) bool {
					if live[a].at != live[b].at {
						return live[a].at < live[b].at
					}
					return live[a].seq < live[b].seq
				})
				r := live[0]
				if r.at > until {
					return
				}
				r.canceled = true // consumed
				want = append(want, r.id)
			}
		}

		for round := 0; round < 30; round++ {
			for op := 0; op < 10; op++ {
				switch rng.Intn(4) {
				case 0, 1:
					schedule(randomAt())
				case 2: // cancel a random live event
					for id, ev := range handles {
						ev.Cancel()
						delete(handles, id)
						for _, r := range model {
							if r.id == id {
								r.canceled = true
							}
						}
						break
					}
				case 3: // reschedule a random live event
					for id, ev := range handles {
						at := randomAt()
						ev.RescheduleTo(at)
						for _, r := range model {
							if r.id == id {
								r.at = at
								r.seq = mseq
								mseq++
							}
						}
						break
					}
				}
			}
			until := e.Now() + time.Duration(rng.Int63n(int64(90*time.Minute)))
			e.Run(until)
			runModel(until)
			if len(fired) != len(want) {
				t.Fatalf("seed %d round %d: fired %d events, model fired %d", seed, round, len(fired), len(want))
			}
			for i := range want {
				if fired[i] != want[i] {
					t.Fatalf("seed %d round %d: fired[%d] = %d, want %d", seed, round, i, fired[i], want[i])
				}
			}
			if e.Pending() != len(handles) {
				t.Fatalf("seed %d round %d: Pending() = %d, want %d", seed, round, e.Pending(), len(handles))
			}
		}
		// Drain everything.
		e.RunAll()
		runModel(1 << 62)
		if len(fired) != len(want) {
			t.Fatalf("seed %d drain: fired %d events, model fired %d", seed, len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("seed %d drain: fired[%d] = %d, want %d", seed, i, fired[i], want[i])
			}
		}
	}
}
