package sim

// TakeLast pops and returns the last element of *s, zeroing the vacated
// slot so the backing array does not pin it, or returns the zero value
// when the slice is empty. It is the shared take-from-freelist idiom of
// the simulator's object pools (events, frames, MAC headers, query
// intervals and reports); callers compare against nil and allocate on a
// miss.
func TakeLast[T any](s *[]T) T {
	old := *s
	n := len(old)
	var zero T
	if n == 0 {
		return zero
	}
	v := old[n-1]
	old[n-1] = zero
	*s = old[:n-1]
	return v
}
