// Conservative sharded execution: several engines — one per spatial
// shard, each owning a disjoint set of nodes — advance together through
// synchronized safe windows. Within a window every engine runs on its
// own goroutine; windows are sized to the cross-shard lookahead, the
// minimum latency of any interaction between shards, so nothing an
// engine does inside a window can affect another engine within the same
// window. At each barrier a single-threaded exchange callback moves
// cross-shard traffic (scheduling it onto the destination engines),
// which keeps the whole run deterministic: shard-local execution is
// sequential, and the exchange order is fixed by the caller regardless
// of how the worker goroutines interleave.
package sim

import "time"

// ShardRunner drives K engines through lookahead-synchronized windows.
type ShardRunner struct {
	engines []*Engine
	// window is the conservative lookahead: any event executed in one
	// shard can influence another shard no earlier than this far in the
	// future. Every window runs at least this wide.
	window time.Duration
	// exchange is invoked single-threaded at every barrier with the
	// barrier time; it must schedule all pending cross-shard work onto
	// the destination engines, at instants no earlier than the barrier.
	exchange func(now time.Duration)
}

// NewShardRunner wires a runner over the given engines. window must be
// positive — it is the conservative lookahead bound; exchange may be nil
// when the shards are fully decoupled.
func NewShardRunner(engines []*Engine, window time.Duration, exchange func(now time.Duration)) *ShardRunner {
	if window <= 0 {
		panic("sim: shard window must be positive")
	}
	if len(engines) == 0 {
		panic("sim: shard runner needs at least one engine")
	}
	return &ShardRunner{engines: engines, window: window, exchange: exchange}
}

// Run advances every engine to until. Equivalent to RunChecked with no
// budget and no check.
func (r *ShardRunner) Run(until time.Duration) uint64 {
	n, _ := r.RunChecked(until, 0, nil)
	return n
}

// Processed sums the events fired across all engines.
func (r *ShardRunner) Processed() uint64 {
	var n uint64
	for _, e := range r.engines {
		n += e.Processed()
	}
	return n
}

// shardJob is one worker's epoch instruction; zero target means exit.
type shardJob struct {
	target time.Duration
}

// RunChecked is Run with the engine's two interruption mechanisms,
// enforced at window barriers: maxEvents bounds the total events fired
// across all shards (granularity one window — the budget may overshoot
// by up to one window's worth of events — returning ErrEventBudget),
// and check is polled once per barrier. On early termination the
// engines are left mid-run at the last barrier, a consistent global
// state: every cross-shard message due by then has been delivered.
func (r *ShardRunner) RunChecked(until time.Duration, maxEvents uint64, check func() error) (uint64, error) {
	start := r.Processed()

	// Persistent workers: one goroutine per engine, fed barrier targets
	// over its own channel. Channel handoffs give the exchange callback
	// happens-before edges with every engine in both directions.
	work := make([]chan shardJob, len(r.engines))
	done := make(chan int, len(r.engines))
	for i := range r.engines {
		work[i] = make(chan shardJob)
		go func(i int) {
			for job := range work[i] {
				r.engines[i].Run(job.target)
				done <- i
			}
		}(i)
	}
	defer func() {
		for i := range work {
			close(work[i])
		}
	}()

	now := time.Duration(0)
	var err error
	for now < until {
		if r.exchange != nil {
			r.exchange(now)
		}
		if check != nil {
			if err = check(); err != nil {
				break
			}
		}
		if maxEvents != 0 && r.Processed()-start >= maxEvents {
			err = ErrEventBudget
			break
		}

		// Window sizing: the conservative bound end = next + lookahead,
		// where next is a lower bound on the earliest pending instant
		// across all shards. Every event this window executes fires at
		// t >= next, so its cross-shard effects land at t + lookahead >=
		// end — at or after the barrier, never behind a destination
		// clock. The bound scan is read-only (NextLowerBound): a peek
		// past the window end would drag an engine's queue cursor beyond
		// instants the next exchanges may still schedule, misfiling
		// them. A stale (too-low) bound only shrinks the window; the
		// bounded dispatch peeks below refine it for the next barrier.
		// When every shard is idle nothing can generate traffic, and the
		// run finishes in one hop.
		next := time.Duration(-1)
		for _, e := range r.engines {
			if t, ok := e.NextLowerBound(); ok {
				if next < 0 || t < next {
					next = t
				}
			}
		}
		end := until
		if next >= 0 {
			if next < now {
				// Bounds coarser than the barrier are stale: everything
				// at or before the barrier has already run.
				next = now
			}
			if w := next + r.window; w >= next && w < until { // overflow-safe
				end = w
			}
		}

		// Dispatch every engine with pending work in the window — the
		// only peeks, bounded exactly by the barrier we advance to; idle
		// engines' clocks are advanced at the end of the run instead.
		dispatched := 0
		for i, e := range r.engines {
			if _, ok := e.PeekNext(end); ok {
				work[i] <- shardJob{target: end}
				dispatched++
			}
		}
		for ; dispatched > 0; dispatched-- {
			<-done
		}
		now = end
	}

	if err == nil && r.exchange != nil {
		// Final barrier: cross-shard messages generated in the last
		// window arrive after `until` and are dropped with it, exactly as
		// a sequential run drops events scheduled past its horizon.
		r.exchange(until)
	}
	// Leave every clock at the final barrier so time-integrated state
	// (radio on-time, energy) reads consistently at collection.
	final := until
	if err != nil {
		final = now
	}
	for _, e := range r.engines {
		e.Run(final)
	}
	return r.Processed() - start, err
}
