package query

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/geom"
	"github.com/essat/essat/internal/routing"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

// stubShaper is a minimal recording shaper: greedy send, fixed timeout
// fraction, hook call log.
type stubShaper struct {
	calls    []string
	deadline func(q ID, k int) time.Duration
	specs    map[ID]Spec
}

func newStubShaper() *stubShaper { return &stubShaper{specs: make(map[ID]Spec)} }

func (s *stubShaper) log(ev string) { s.calls = append(s.calls, ev) }

func (s *stubShaper) Name() string { return "stub" }
func (s *stubShaper) QueryAdded(spec Spec, children []NodeID) {
	s.specs[spec.ID] = spec
	s.log("added")
}
func (s *stubShaper) ReportReady(q ID, k int, readyAt time.Duration) (time.Duration, time.Duration) {
	s.log("ready")
	return readyAt, NoPhase
}
func (s *stubShaper) ReportSent(q ID, k int)   { s.log("sent") }
func (s *stubShaper) ReportFailed(q ID, k int) { s.log("failed") }
func (s *stubShaper) ReportReceived(q ID, c NodeID, k int, phase time.Duration) {
	s.log("received")
}
func (s *stubShaper) IntervalClosed(q ID, k int, missing []NodeID) {
	if len(missing) > 0 {
		s.log("closed-missing")
	} else {
		s.log("closed")
	}
}
func (s *stubShaper) CollectDeadline(q ID, k int) time.Duration {
	if s.deadline != nil {
		return s.deadline(q, k)
	}
	spec := s.specs[q]
	return spec.IntervalStart(k) + spec.Period*3/4
}
func (s *stubShaper) QueryRemoved(q ID)                    { s.log("query-removed") }
func (s *stubShaper) ChildAdded(q ID, c NodeID)            { s.log("child-added") }
func (s *stubShaper) ChildRemoved(q ID, c NodeID)          { s.log("child-removed") }
func (s *stubShaper) ParentChanged(q ID)                   { s.log("parent-changed") }
func (s *stubShaper) ControlReceived(from NodeID, msg any) { s.log("control") }

func (s *stubShaper) count(ev string) int {
	n := 0
	for _, c := range s.calls {
		if c == ev {
			n++
		}
	}
	return n
}

// sentRec records agent submissions instead of a real MAC.
type sentRec struct {
	dst   NodeID
	rep   *Report
	bytes int
	cb    func(bool)
}

type testSink struct {
	arrivals  []time.Duration
	closures  []int // coverage per closed interval
	latencies []time.Duration
}

func (s *testSink) ReportArrived(q ID, k int, latency time.Duration, coverage int) {
	s.arrivals = append(s.arrivals, latency)
}

func (s *testSink) IntervalClosed(q ID, k int, latency time.Duration, coverage int) {
	s.closures = append(s.closures, coverage)
	s.latencies = append(s.latencies, latency)
}

// chainFixture builds a 3-node chain tree (0=root, 1 middle, 2 leaf) and
// an agent for the middle node with captured sends. Tests hook failure
// detection by setting the returned host's handler fields.
func chainFixture(t *testing.T) (*sim.Engine, *routing.Tree, *Agent, *stubShaper, *[]sentRec, *HostFuncs) {
	t.Helper()
	eng := sim.New(1)
	topo, err := topology.FromPositions(geom.LinePlacement(3, 100), 125)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.BuildBFS(topo, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sh := newStubShaper()
	var sent []sentRec
	host := &HostFuncs{Send: func(dst NodeID, payload any, bytes int, cb func(bool)) {
		sent = append(sent, sentRec{dst: dst, rep: payload.(*Report), bytes: bytes, cb: cb})
	}}
	a := NewAgent(eng, 1, tree, sh, host, nil, DefaultConfig())
	return eng, tree, a, sh, &sent, host
}

var spec = Spec{ID: 1, Period: time.Second, Phase: 100 * time.Millisecond, Class: 1}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{ID: 1, Period: 0}).Validate(); err == nil {
		t.Error("zero period accepted")
	}
	if err := (Spec{ID: 1, Period: time.Second, Phase: -1}).Validate(); err == nil {
		t.Error("negative phase accepted")
	}
	if err := spec.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestIntervalStart(t *testing.T) {
	if got := spec.IntervalStart(3); got != 3100*time.Millisecond {
		t.Fatalf("IntervalStart(3) = %v, want 3.1s", got)
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	_, _, a, _, _, _ := chainFixture(t)
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	if err := a.Register(spec); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestAggregationAndForwarding(t *testing.T) {
	eng, _, a, sh, sent, _ := chainFixture(t)
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	// Child 2's report for interval 0 arrives 50ms into the interval.
	eng.Schedule(150*time.Millisecond, func() {
		a.HandleReport(2, &Report{Query: 1, Interval: 0, Coverage: 1, Value: 42, Phase: NoPhase})
	})
	eng.Run(300 * time.Millisecond)

	if len(*sent) != 1 {
		t.Fatalf("sent %d reports, want 1", len(*sent))
	}
	rep := (*sent)[0].rep
	if rep.Coverage != 2 {
		t.Fatalf("coverage = %d, want 2 (own sample + child)", rep.Coverage)
	}
	if rep.Value != 42 {
		t.Fatalf("value = %v, want max(1, 42) = 42", rep.Value)
	}
	if (*sent)[0].dst != 0 {
		t.Fatalf("sent to %d, want parent 0", (*sent)[0].dst)
	}
	if sh.count("received") != 1 || sh.count("ready") != 1 {
		t.Fatalf("shaper calls = %v", sh.calls)
	}
	// MAC confirms → ReportSent.
	(*sent)[0].cb(true)
	if sh.count("sent") != 1 {
		t.Fatal("ReportSent not invoked on MAC success")
	}
}

func TestTimeoutSendsPartialAggregate(t *testing.T) {
	eng, _, a, sh, sent, _ := chainFixture(t)
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	// The child never reports; the 0.75P deadline fires at 850ms.
	eng.Run(time.Second)
	if len(*sent) == 0 {
		t.Fatal("no report sent after collection timeout")
	}
	if (*sent)[0].rep.Coverage != 1 {
		t.Fatalf("coverage = %d, want 1 (own sample only)", (*sent)[0].rep.Coverage)
	}
	if sh.count("closed-missing") == 0 {
		t.Fatal("IntervalClosed not told about the missing child")
	}
	if a.Stats().Timeouts == 0 {
		t.Fatal("timeout not counted")
	}
}

func TestLateReportForwardedAsPassThrough(t *testing.T) {
	eng, _, a, _, sent, _ := chainFixture(t)
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	// Child's interval-0 report arrives after the interval timed out.
	eng.Schedule(950*time.Millisecond, func() {
		a.HandleReport(2, &Report{Query: 1, Interval: 0, Coverage: 5, Value: 9, Phase: NoPhase})
	})
	eng.Run(time.Second)
	var passThroughs int
	for _, s := range *sent {
		if s.rep.PassThrough {
			passThroughs++
			if s.rep.Coverage != 5 {
				t.Fatalf("pass-through coverage = %d, want 5", s.rep.Coverage)
			}
		}
	}
	if passThroughs != 1 {
		t.Fatalf("pass-throughs = %d, want 1", passThroughs)
	}
	if a.Stats().LateReports != 1 {
		t.Fatalf("LateReports = %d, want 1", a.Stats().LateReports)
	}
}

func TestPassThroughMergedIntoOpenInterval(t *testing.T) {
	eng, _, a, _, sent, _ := chainFixture(t)
	longDeadline := newStubShaper()
	longDeadline.deadline = func(q ID, k int) time.Duration {
		return spec.IntervalStart(k) + 900*time.Millisecond
	}
	a.shaper = longDeadline
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	// A pass-through from a grandchild arrives while interval 0 is open:
	// it must merge, not forward separately.
	eng.Schedule(200*time.Millisecond, func() {
		a.HandleReport(2, &Report{Query: 1, Interval: 0, Coverage: 3, Value: 7, PassThrough: true, Phase: NoPhase})
	})
	// Then the child's own report closes the interval.
	eng.Schedule(300*time.Millisecond, func() {
		a.HandleReport(2, &Report{Query: 1, Interval: 0, Coverage: 1, Value: 2, Phase: NoPhase})
	})
	eng.Run(time.Second)
	if len(*sent) != 1 {
		t.Fatalf("sent %d reports, want 1 merged aggregate", len(*sent))
	}
	rep := (*sent)[0].rep
	if rep.Coverage != 5 { // own 1 + pass-through 3 + child 1
		t.Fatalf("coverage = %d, want 5", rep.Coverage)
	}
	if rep.PassThrough {
		t.Fatal("merged aggregate must not be marked pass-through")
	}
}

func TestReportFailedHookAndFailureDetection(t *testing.T) {
	eng, _, a, sh, sent, host := chainFixture(t)
	parentFailures := 0
	host.OnParentFailed = func() { parentFailures++ }
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	// Three intervals: the child reports each time, the interval closes,
	// and each submitted report fails at the MAC — three consecutive
	// delivery failures, each on its own report, as the real MAC
	// produces them.
	for k := 0; k < 3; k++ {
		k := k
		eng.Schedule(spec.IntervalStart(k)+50*time.Millisecond, func() {
			a.HandleReport(2, &Report{Query: 1, Interval: k, Coverage: 1, Value: 1, Phase: NoPhase})
		})
	}
	for k := 0; k < 3; k++ {
		eng.Run(spec.IntervalStart(k) + 100*time.Millisecond)
		if len(*sent) != k+1 {
			t.Fatalf("after interval %d: sent = %d, want %d", k, len(*sent), k+1)
		}
		(*sent)[k].cb(false)
	}
	if sh.count("failed") != 3 {
		t.Fatalf("ReportFailed calls = %d, want 3", sh.count("failed"))
	}
	if parentFailures != 1 {
		t.Fatalf("parent failure handler calls = %d, want 1", parentFailures)
	}
	if a.Stats().SendFailures != 3 {
		t.Fatalf("SendFailures = %d, want 3", a.Stats().SendFailures)
	}
}

func TestChildFailureDetection(t *testing.T) {
	eng, _, a, _, _, host := chainFixture(t)
	var failedChildren []NodeID
	host.OnChildFailed = func(c NodeID) { failedChildren = append(failedChildren, c) }
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	// Three intervals with the child silent → child declared failed.
	eng.Run(3100 * time.Millisecond)
	if len(failedChildren) != 1 || failedChildren[0] != 2 {
		t.Fatalf("failed children = %v, want [2]", failedChildren)
	}
}

func TestChildRemovedClosesWaitingInterval(t *testing.T) {
	eng, _, a, _, sent, _ := chainFixture(t)
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	// Interval 0 starts at 100ms and waits for child 2. Removing the
	// child must close it immediately with the node's own sample.
	eng.Schedule(200*time.Millisecond, func() { a.ChildRemoved(2) })
	eng.Run(300 * time.Millisecond)
	if len(*sent) != 1 {
		t.Fatalf("sent = %d, want 1 (interval closed on child removal)", len(*sent))
	}
	if (*sent)[0].rep.Coverage != 1 {
		t.Fatalf("coverage = %d, want 1", (*sent)[0].rep.Coverage)
	}
}

func TestRootRecordsArrivalsAndClosures(t *testing.T) {
	eng := sim.New(1)
	topo, _ := topology.FromPositions(geom.LinePlacement(2, 100), 125)
	tree, _ := routing.BuildBFS(topo, 0, 0)
	sink := &testSink{}
	sh := newStubShaper()
	a := NewAgent(eng, 0, tree, sh, &HostFuncs{Send: func(NodeID, any, int, func(bool)) {
		t.Fatal("root must not send reports")
	}}, sink, DefaultConfig())
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(160*time.Millisecond, func() {
		a.HandleReport(1, &Report{Query: 1, Interval: 0, Coverage: 1, Value: 3, Phase: NoPhase})
	})
	eng.Run(500 * time.Millisecond)
	if len(sink.arrivals) != 1 || sink.arrivals[0] != 60*time.Millisecond {
		t.Fatalf("arrivals = %v, want [60ms]", sink.arrivals)
	}
	if len(sink.closures) != 1 || sink.closures[0] != 2 {
		t.Fatalf("closures = %v, want [2]", sink.closures)
	}
}

func TestStalePayloadFromNonChildNotTreatedAsScheduled(t *testing.T) {
	eng, tree, a, sh, _, _ := chainFixture(t)
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	// Node 0 is our parent, not a child: its report must not feed the
	// shaper's per-child schedule.
	_ = tree
	eng.Schedule(150*time.Millisecond, func() {
		a.HandleReport(0, &Report{Query: 1, Interval: 0, Coverage: 1, Value: 1, Phase: NoPhase})
	})
	eng.Run(200 * time.Millisecond)
	if sh.count("received") != 0 {
		t.Fatal("non-child report updated the shaper's child schedule")
	}
}

func TestStopHaltsGeneration(t *testing.T) {
	eng, _, a, _, sent, _ := chainFixture(t)
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	a.Stop()
	eng.Run(3 * time.Second)
	if len(*sent) != 0 {
		t.Fatalf("stopped agent sent %d reports", len(*sent))
	}
}

func TestUnknownQueryIgnored(t *testing.T) {
	eng, _, a, _, _, _ := chainFixture(t)
	a.HandleReport(2, &Report{Query: 99, Interval: 0, Coverage: 1, Phase: NoPhase})
	eng.Run(time.Millisecond) // no panic
}

func TestPhaseBytesAddedWhenPiggybacking(t *testing.T) {
	eng := sim.New(1)
	topo, _ := topology.FromPositions(geom.LinePlacement(3, 100), 125)
	tree, _ := routing.BuildBFS(topo, 0, 0)
	// Leaf agent (node 2) with a shaper that always piggybacks.
	sh := newStubShaper()
	var sent []sentRec
	phaseShaper := &phaseStub{stubShaper: sh}
	a := NewAgent(eng, 2, tree, phaseShaper, &HostFuncs{Send: func(dst NodeID, payload any, bytes int, cb func(bool)) {
		sent = append(sent, sentRec{dst: dst, rep: payload.(*Report), bytes: bytes, cb: cb})
	}}, nil, DefaultConfig())
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	eng.Run(200 * time.Millisecond)
	if len(sent) != 1 {
		t.Fatalf("sent = %d, want 1", len(sent))
	}
	if sent[0].bytes != 56 {
		t.Fatalf("bytes = %d, want 52 + 4 phase", sent[0].bytes)
	}
	if a.Stats().PhaseUpdatesSent != 1 {
		t.Fatalf("PhaseUpdatesSent = %d, want 1", a.Stats().PhaseUpdatesSent)
	}
}

type phaseStub struct{ *stubShaper }

func (p *phaseStub) ReportReady(q ID, k int, readyAt time.Duration) (time.Duration, time.Duration) {
	return readyAt, readyAt + time.Second
}

func TestMaxAgg(t *testing.T) {
	if MaxAgg(3, 5) != 5 || MaxAgg(5, 3) != 5 {
		t.Fatal("MaxAgg broken")
	}
}

func TestStopBreaksAndResumeRestartsIntervalChain(t *testing.T) {
	eng, _, a, _, sent, _ := chainFixture(t)
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	// Leaf-like behavior: no child reports, so intervals close by
	// deadline (spec.Period*3/4) and submit immediately.
	eng.Run(spec.IntervalStart(1)) // interval 0 closed and sent
	before := len(*sent)
	if before == 0 {
		t.Fatal("no report before the outage")
	}

	a.Stop()
	eng.Run(spec.IntervalStart(4)) // ticks 1..3 fire into the stopped agent
	if got := len(*sent); got != before {
		t.Fatalf("stopped agent submitted %d new reports", got-before)
	}

	a.Resume()
	eng.Run(spec.IntervalStart(8))
	after := len(*sent)
	if after <= before {
		t.Fatal("resumed agent produced no reports")
	}
	// The restarted chain begins at the next interval boundary after the
	// resume point, skipping the missed ones.
	first := (*sent)[before].rep.Interval
	if first < 4 {
		t.Fatalf("first post-resume interval = %d, want >= 4 (missed intervals must be skipped)", first)
	}
}

func TestResumeWithoutStopIsNoOp(t *testing.T) {
	eng, _, a, _, sent, _ := chainFixture(t)
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	a.Resume() // not stopped: must not double-schedule the chain
	eng.Run(spec.IntervalStart(2))
	for i := 1; i < len(*sent); i++ {
		if (*sent)[i].rep.Interval == (*sent)[i-1].rep.Interval {
			t.Fatalf("interval %d reported twice", (*sent)[i].rep.Interval)
		}
	}
}
