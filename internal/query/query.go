// Package query implements the paper's workload model (§3): a generic
// query service in which every node in a routing tree produces a data
// report each query period, aggregates its children's reports with its
// own sample, and forwards the aggregate toward the root.
//
// The Agent is deliberately power-management agnostic: all timing policy
// is delegated to a Shaper (traffic shaper + sleep-scheduler bookkeeping),
// which is where the ESSAT protocols (NTS/STS/DTS + Safe Sleep) and the
// baselines plug in. The agent handles the mechanics every protocol
// shares: interval bookkeeping, aggregation, collection timeouts,
// late-report pass-through, and failure counting.
package query

import (
	"fmt"
	"sort"
	"time"

	"github.com/essat/essat/internal/routing"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

// NodeID aliases the shared node identifier.
type NodeID = topology.NodeID

// ID identifies a registered query.
type ID int

// NoPhase marks the absence of a piggybacked phase update in a report.
const NoPhase = time.Duration(-1)

// Spec describes a query as issued by the user: report period P, start
// time φ, and a class label used only for result grouping (Q1/Q2/Q3).
type Spec struct {
	ID     ID
	Period time.Duration
	Phase  time.Duration
	Class  int
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Period <= 0 {
		return fmt.Errorf("query %d: period must be positive, got %v", s.ID, s.Period)
	}
	if s.Phase < 0 {
		return fmt.Errorf("query %d: negative phase %v", s.ID, s.Phase)
	}
	return nil
}

// IntervalStart returns φ + k·P, the nominal start of interval k.
func (s Spec) IntervalStart(k int) time.Duration {
	return s.Phase + time.Duration(k)*s.Period
}

// Report is one (possibly aggregated) data report traveling up the tree.
type Report struct {
	Query    ID
	Interval int
	// Coverage counts the source samples folded into this aggregate.
	Coverage int
	// Value is the aggregate value (max-aggregation by default).
	Value float64
	// Phase is a DTS phase update piggybacked on the report: the sender's
	// expected send time of its next report. NoPhase when absent.
	Phase time.Duration
	// PassThrough marks a late partial aggregate being forwarded without
	// further aggregation.
	PassThrough bool
}

// Shaper is the per-node traffic-shaping and sleep-bookkeeping policy.
// The ESSAT shapers update Safe Sleep's expected send/receive times from
// these hooks; baseline policies mostly leave them empty.
type Shaper interface {
	// Name identifies the shaper in results ("NTS", "STS", "DTS", ...).
	Name() string
	// QueryAdded informs the shaper of a newly registered query and the
	// node's current children for it.
	QueryAdded(spec Spec, children []NodeID)
	// ReportReady is called when this node's aggregate for interval k is
	// ready. It returns when the report should be submitted to the MAC
	// (>= now; early reports are buffered until their expected send time)
	// and the phase update to piggyback, or NoPhase.
	ReportReady(q ID, k int, readyAt time.Duration) (sendAt time.Duration, phase time.Duration)
	// ReportSent is called when the MAC confirmed delivery of interval
	// k's report; the shaper computes s(k+1) here (§4.1).
	ReportSent(q ID, k int)
	// ReportFailed is called when the MAC exhausted its retries for
	// interval k's report. The shaper must still advance its schedule so
	// the node does not stay pinned awake on a stale expected send time.
	ReportFailed(q ID, k int)
	// ReportReceived is called for each scheduled (non-pass-through)
	// report received from a child, with any piggybacked phase; the
	// shaper computes r(q, k+1, c) here (§4.1).
	ReportReceived(q ID, child NodeID, k int, phase time.Duration)
	// IntervalClosed is called when interval k is closed (all children
	// reported, or the collection deadline fired) with the children that
	// did not report in time.
	IntervalClosed(q ID, k int, missing []NodeID)
	// CollectDeadline returns the absolute time at which the node stops
	// waiting for children's interval-k reports (§4.3 timeout policy).
	CollectDeadline(q ID, k int) time.Duration
	// QueryRemoved tells the shaper a query was deregistered: all its
	// schedule state (including Safe Sleep expectations) must be dropped.
	QueryRemoved(q ID)
	// ChildAdded and ChildRemoved track dependency changes from topology
	// maintenance (§4.3).
	ChildAdded(q ID, child NodeID)
	ChildRemoved(q ID, child NodeID)
	// ParentChanged signals that the node was re-parented.
	ParentChanged(q ID)
	// ControlReceived delivers shaper-level control traffic (e.g. DTS
	// phase requests).
	ControlReceived(from NodeID, msg any)
}

// Sink receives root-side observations for metrics.
type Sink interface {
	// ReportArrived fires for every report reaching the root: latency is
	// measured from the interval's nominal start φ+kP.
	ReportArrived(q ID, interval int, latency time.Duration, coverage int)
	// IntervalClosed fires when the root closes interval k with the total
	// coverage it managed to collect.
	IntervalClosed(q ID, interval int, latency time.Duration, coverage int)
}

// SendFunc submits a payload toward dst; cb reports MAC-level success.
type SendFunc func(dst NodeID, payload any, bytes int, cb func(ok bool))

// AggFunc folds two aggregate values. The default is max, typical for
// threshold-detection queries.
type AggFunc func(a, b float64) float64

// MaxAgg is the default aggregation function.
func MaxAgg(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Config parameterizes an Agent.
type Config struct {
	// ReportBytes is the on-air size of a data report (52 in the paper).
	ReportBytes int
	// PhaseBytes is the extra size of a piggybacked phase update.
	PhaseBytes int
	// FailureThreshold is the number of consecutive missed intervals
	// (child side) or failed transmissions (parent side) before the node
	// declares its neighbor failed. Zero disables failure detection.
	FailureThreshold int
	// Agg is the aggregation function; nil means MaxAgg.
	Agg AggFunc
	// Sampler produces this node's local measurement for interval k.
	// Nil installs a deterministic default.
	Sampler func(q ID, k int) float64
}

// DefaultConfig matches the paper's setup: 52-byte reports, 4-byte phase
// piggyback, failure declared after 3 consecutive misses.
func DefaultConfig() Config {
	return Config{ReportBytes: 52, PhaseBytes: 4, FailureThreshold: 3}
}

// Stats counts agent-level outcomes at one node.
type Stats struct {
	// Samples is the number of local measurements produced.
	Samples uint64
	// ReportsSent counts scheduled aggregate reports submitted to the MAC.
	ReportsSent uint64
	// PassThroughsSent counts late partials forwarded unaggregated.
	PassThroughsSent uint64
	// Timeouts counts intervals closed by deadline with children missing.
	Timeouts uint64
	// SendFailures counts MAC-level delivery failures.
	SendFailures uint64
	// PhaseUpdatesSent counts reports that carried a phase piggyback.
	PhaseUpdatesSent uint64
	// LateReports counts child reports that arrived after their interval
	// was closed.
	LateReports uint64
}

// interval is one collection round. Intervals are pooled by the Agent:
// expected/got are parallel slices (children owed, and who reported) whose
// capacity survives recycling, and timeoutFn is the prebound deadline
// callback, so steady-state interval turnover is allocation-free.
type interval struct {
	k        int
	value    float64
	coverage int
	expected []NodeID // children owed for this interval
	got      []bool   // parallel to expected
	extraGot []NodeID // reporters outside expected (mid-recovery edges)
	closed   bool
	timeout  *sim.Event

	rt        *runtime // owning query runtime, for the prebound callback
	timeoutFn func()
}

// expectedIdx returns c's position in expected, or -1.
func (iv *interval) expectedIdx(c NodeID) int {
	for i, e := range iv.expected {
		if e == c {
			return i
		}
	}
	return -1
}

type runtime struct {
	spec        Spec
	intervals   map[int]*interval
	consecMiss  map[NodeID]int
	lastClosedK int

	// tickFn starts interval tickK: the prebound self-rescheduling chain
	// (exactly one tick is outstanding per query).
	tickFn func()
	tickK  int
	// chainDead marks a broken tick chain: a tick fired while the agent
	// was stopped (node crashed) and did not reschedule itself. Resume
	// restarts dead chains at the next interval boundary.
	chainDead bool
}

// sortedIntervalKs returns the open-interval keys in ascending order.
// Every site that walks rt.intervals with side effects (closing may
// submit reports, canceling/releasing feeds the pools) iterates in this
// order: map order would vary the seq tie-break of same-instant events
// and break run determinism.
func (rt *runtime) sortedIntervalKs() []int {
	ks := make([]int, 0, len(rt.intervals))
	for k := range rt.intervals {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// txReport is a pooled in-flight report: the Report payload plus the
// prebound submit timer and MAC-completion callbacks that reference it.
type txReport struct {
	rep      Report
	rt       *runtime
	submitFn func()
	cbFn     func(ok bool)
}

// Agent runs the query service at one node.
type Agent struct {
	eng    *sim.Engine
	id     NodeID
	tree   *routing.Tree
	shaper Shaper
	send   SendFunc
	sink   Sink
	cfg    Config
	agg    AggFunc

	queries map[ID]*runtime
	stats   Stats

	// Freelists and scratch space for the per-interval hot path.
	ivFree      []*interval
	trFree      []*txReport
	missScratch []NodeID

	consecSendFail int
	onChildFailed  func(child NodeID)
	onParentFailed func()
	stopped        bool
}

// newInterval takes an interval from the pool (or allocates one, creating
// its prebound timeout callback) and resets it for (rt, k).
func (a *Agent) newInterval(rt *runtime, k int) *interval {
	iv := sim.TakeLast(&a.ivFree)
	if iv == nil {
		iv = &interval{}
		ivp := iv
		iv.timeoutFn = func() {
			ivp.timeout = nil
			a.stats.Timeouts++
			a.closeInterval(ivp.rt, ivp)
		}
	}
	iv.k = k
	iv.value = 0
	iv.coverage = 0
	iv.expected = iv.expected[:0]
	iv.got = iv.got[:0]
	iv.extraGot = iv.extraGot[:0]
	iv.closed = false
	iv.timeout = nil
	iv.rt = rt
	return iv
}

// releaseInterval recycles a closed interval with no pending timeout.
func (a *Agent) releaseInterval(iv *interval) {
	iv.rt = nil
	a.ivFree = append(a.ivFree, iv)
}

// newTxReport takes a report from the pool (or allocates one, creating
// its prebound callbacks) and binds it to rt.
func (a *Agent) newTxReport(rt *runtime) *txReport {
	tr := sim.TakeLast(&a.trFree)
	if tr == nil {
		tr = &txReport{}
		trp := tr
		tr.submitFn = func() { a.submit(trp.rt, trp) }
		tr.cbFn = func(ok bool) { a.sendDone(trp, ok) }
	}
	tr.rt = rt
	return tr
}

func (a *Agent) releaseTxReport(tr *txReport) {
	tr.rt = nil
	a.trFree = append(a.trFree, tr)
}

// NewAgent wires a query agent. sink may be nil (non-root nodes); send
// must deliver to the MAC or a power manager's gate.
func NewAgent(eng *sim.Engine, id NodeID, tree *routing.Tree, shaper Shaper, send SendFunc, sink Sink, cfg Config) *Agent {
	if cfg.ReportBytes <= 0 {
		panic("query: ReportBytes must be positive")
	}
	agg := cfg.Agg
	if agg == nil {
		agg = MaxAgg
	}
	if cfg.Sampler == nil {
		cfg.Sampler = func(q ID, k int) float64 { return float64(id) }
	}
	return &Agent{
		eng:     eng,
		id:      id,
		tree:    tree,
		shaper:  shaper,
		send:    send,
		sink:    sink,
		cfg:     cfg,
		agg:     agg,
		queries: make(map[ID]*runtime),
	}
}

// Stats returns a copy of the agent counters.
func (a *Agent) Stats() Stats { return a.stats }

// Shaper returns the agent's shaper.
func (a *Agent) Shaper() Shaper { return a.shaper }

// SetFailureHandlers installs node-level callbacks fired when failure
// detection trips: onChildFailed when a child missed FailureThreshold
// consecutive intervals, onParentFailed when FailureThreshold consecutive
// transmissions to the parent failed.
func (a *Agent) SetFailureHandlers(onChildFailed func(child NodeID), onParentFailed func()) {
	a.onChildFailed = onChildFailed
	a.onParentFailed = onParentFailed
}

// Stop halts interval generation (used when a node is killed or
// crashes). Pending tick events fire but do nothing, breaking each
// query's tick chain; Resume restarts them.
func (a *Agent) Stop() { a.stopped = true }

// Resume restarts a stopped agent (node recovery): every query whose
// tick chain broke while the node was down is rescheduled at its next
// interval boundary. Intervals missed during the outage are skipped —
// their data is simply gone, as on real hardware.
func (a *Agent) Resume() {
	if !a.stopped {
		return
	}
	a.stopped = false
	now := a.eng.Now()
	for _, qid := range a.sortedQueryIDs() {
		rt := a.queries[qid]
		if !rt.chainDead {
			continue
		}
		rt.chainDead = false
		k := 0
		if now > rt.spec.Phase {
			k = int((now-rt.spec.Phase)/rt.spec.Period) + 1
		}
		rt.tickK = k
		a.eng.Schedule(rt.spec.IntervalStart(k), rt.tickFn)
	}
}

// Register installs a query at this node and schedules its intervals.
// Must be called before the query's phase.
func (a *Agent) Register(spec Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if _, dup := a.queries[spec.ID]; dup {
		return fmt.Errorf("query %d: already registered", spec.ID)
	}
	rt := &runtime{
		spec:        spec,
		intervals:   make(map[int]*interval),
		consecMiss:  make(map[NodeID]int),
		lastClosedK: -1,
	}
	rt.tickFn = func() { a.startInterval(rt, rt.tickK) }
	a.queries[spec.ID] = rt
	a.shaper.QueryAdded(spec, a.tree.Children(a.id))
	rt.tickK = 0
	a.eng.Schedule(spec.Phase, rt.tickFn)
	return nil
}

func (a *Agent) startInterval(rt *runtime, k int) {
	if a.stopped {
		rt.chainDead = true
		return
	}
	if _, ok := a.queries[rt.spec.ID]; !ok {
		return // deregistered
	}
	// Schedule the next interval first so the chain never breaks.
	rt.tickK = k + 1
	a.eng.Schedule(rt.spec.IntervalStart(k+1), rt.tickFn)

	iv := a.newInterval(rt, k)
	iv.value = a.cfg.Sampler(rt.spec.ID, k)
	iv.coverage = 1
	a.stats.Samples++
	rt.intervals[k] = iv
	for _, c := range a.tree.Children(a.id) {
		iv.expected = append(iv.expected, c)
		iv.got = append(iv.got, false)
	}
	if len(iv.expected) == 0 {
		a.closeInterval(rt, iv)
		return
	}
	deadline := a.shaper.CollectDeadline(rt.spec.ID, k)
	if now := a.eng.Now(); deadline < now {
		deadline = now
	}
	iv.timeout = a.eng.Schedule(deadline, iv.timeoutFn)
}

// closeInterval finalizes interval k: informs the shaper of missing
// children, updates failure counters, and routes the aggregate.
func (a *Agent) closeInterval(rt *runtime, iv *interval) {
	if iv.closed {
		return
	}
	iv.closed = true
	if iv.timeout != nil {
		iv.timeout.Cancel()
		iv.timeout = nil
	}
	if iv.k > rt.lastClosedK {
		rt.lastClosedK = iv.k
	}
	// Prune far-past intervals; anything arriving for them is treated as
	// late and forwarded as a pass-through. A pruned interval is recycled
	// once it is closed with no timeout pending (the normal case: its
	// deadline is bounded by roughly one period).
	if old, ok := rt.intervals[iv.k-8]; ok {
		delete(rt.intervals, iv.k-8)
		if old.closed && old.timeout == nil {
			a.releaseInterval(old)
		}
	}

	// Detach the scratch buffer while in use: onChildFailed can re-enter
	// closeInterval (child removal closes other intervals), and the nested
	// call must not clobber this one's missing list.
	missing := a.missScratch[:0]
	a.missScratch = nil
	for i, c := range iv.expected {
		if !iv.got[i] {
			missing = append(missing, c)
		}
	}
	a.shaper.IntervalClosed(rt.spec.ID, iv.k, missing)
	for _, c := range missing {
		rt.consecMiss[c]++
		if a.cfg.FailureThreshold > 0 && rt.consecMiss[c] >= a.cfg.FailureThreshold && a.onChildFailed != nil {
			rt.consecMiss[c] = 0
			a.onChildFailed(c)
		}
	}
	a.missScratch = missing[:0]

	if a.id == a.tree.Root() {
		latency := a.eng.Now() - rt.spec.IntervalStart(iv.k)
		if a.sink != nil {
			a.sink.IntervalClosed(rt.spec.ID, iv.k, latency, iv.coverage)
		}
		return
	}

	tr := a.newTxReport(rt)
	tr.rep = Report{Query: rt.spec.ID, Interval: iv.k, Coverage: iv.coverage, Value: iv.value}
	sendAt, phase := a.shaper.ReportReady(rt.spec.ID, iv.k, a.eng.Now())
	tr.rep.Phase = phase
	if now := a.eng.Now(); sendAt < now {
		sendAt = now
	}
	a.eng.Schedule(sendAt, tr.submitFn)
}

func (a *Agent) submit(rt *runtime, tr *txReport) {
	rep := &tr.rep
	if a.stopped {
		a.releaseTxReport(tr)
		return
	}
	if cur, ok := a.queries[rep.Query]; !ok || cur != rt {
		// The query was deregistered (mid-run stop, burst teardown) while
		// this report waited for its send time: drop it silently — the
		// shaper's schedule state for it is already gone.
		a.releaseTxReport(tr)
		return
	}
	parent := a.tree.Parent(a.id)
	if parent == routing.None {
		// Orphaned: our parent detached us (possibly a false-positive
		// failure detection on a congested link). The report is lost;
		// treat it as a send failure so the parent-failure path kicks in
		// and re-attaches us to the tree.
		a.stats.SendFailures++
		if !rep.PassThrough {
			a.shaper.ReportFailed(rep.Query, rep.Interval)
		}
		a.consecSendFail++
		if a.cfg.FailureThreshold > 0 && a.consecSendFail >= a.cfg.FailureThreshold && a.onParentFailed != nil {
			a.consecSendFail = 0
			a.onParentFailed()
		}
		a.releaseTxReport(tr)
		return
	}
	bytes := a.cfg.ReportBytes
	if rep.Phase != NoPhase {
		bytes += a.cfg.PhaseBytes
		a.stats.PhaseUpdatesSent++
	}
	if rep.PassThrough {
		a.stats.PassThroughsSent++
	} else {
		a.stats.ReportsSent++
	}
	a.send(parent, rep, bytes, tr.cbFn)
}

// sendDone is the MAC-completion path for a submitted report. The MAC is
// finished with the payload when it runs, so the txReport is recycled on
// every exit.
func (a *Agent) sendDone(tr *txReport, ok bool) {
	rep := &tr.rep
	if a.stopped {
		a.releaseTxReport(tr)
		return
	}
	if cur, reg := a.queries[rep.Query]; !reg || cur != tr.rt {
		// Deregistered while the MAC held the frame: the delivery already
		// happened (or failed) on the air, but the shaper must not see
		// hooks for a query it has forgotten.
		a.releaseTxReport(tr)
		return
	}
	if !ok {
		a.stats.SendFailures++
		a.consecSendFail++
		if !rep.PassThrough {
			a.shaper.ReportFailed(rep.Query, rep.Interval)
		}
		if a.cfg.FailureThreshold > 0 && a.consecSendFail >= a.cfg.FailureThreshold && a.onParentFailed != nil {
			a.consecSendFail = 0
			a.onParentFailed()
		}
		a.releaseTxReport(tr)
		return
	}
	a.consecSendFail = 0
	if !rep.PassThrough {
		a.shaper.ReportSent(rep.Query, rep.Interval)
	}
	a.releaseTxReport(tr)
}

// HandleReport processes a report received from a child (via the node's
// MAC dispatcher).
func (a *Agent) HandleReport(from NodeID, rep *Report) {
	rt, ok := a.queries[rep.Query]
	if !ok {
		return // query not registered here (should not happen in-tree)
	}
	if a.id == a.tree.Root() && a.sink != nil {
		latency := a.eng.Now() - rt.spec.IntervalStart(rep.Interval)
		a.sink.ReportArrived(rep.Query, rep.Interval, latency, rep.Coverage)
	}
	if rep.PassThrough {
		a.handleLate(rt, rep)
		return
	}
	if a.tree.Parent(from) != a.id {
		// Stale edge: a node we no longer parent (or never did) is still
		// sending to us mid-recovery. Keep its data flowing but do not
		// feed the per-child schedule.
		a.handleLate(rt, rep)
		return
	}

	rt.consecMiss[from] = 0
	a.shaper.ReportReceived(rep.Query, from, rep.Interval, rep.Phase)

	iv, open := rt.intervals[rep.Interval]
	if !open || iv.closed {
		a.stats.LateReports++
		a.handleLate(rt, rep)
		return
	}
	if i := iv.expectedIdx(from); i >= 0 {
		if iv.got[i] {
			return // duplicate scheduled report (should be filtered by MAC)
		}
		iv.got[i] = true
	} else {
		// Not among the children owed (added mid-interval): aggregate but
		// do not let it close the interval.
		for _, c := range iv.extraGot {
			if c == from {
				return // duplicate
			}
		}
		iv.extraGot = append(iv.extraGot, from)
	}
	iv.value = a.agg(iv.value, rep.Value)
	iv.coverage += rep.Coverage

	for i := range iv.expected {
		if !iv.got[i] {
			return // still waiting
		}
	}
	a.closeInterval(rt, iv)
}

// handleLate merges a late or pass-through report into a still-open
// interval if possible, otherwise forwards it upstream unchanged. This
// keeps deep sources' data flowing to the root even when intermediate
// deadlines fired, so root-side latency reflects true end-to-end delay.
func (a *Agent) handleLate(rt *runtime, rep *Report) {
	if iv, open := rt.intervals[rep.Interval]; open && !iv.closed {
		iv.value = a.agg(iv.value, rep.Value)
		iv.coverage += rep.Coverage
		return
	}
	if a.id == a.tree.Root() {
		return // already recorded by the sink
	}
	tr := a.newTxReport(rt)
	tr.rep = Report{
		Query:       rep.Query,
		Interval:    rep.Interval,
		Coverage:    rep.Coverage,
		Value:       rep.Value,
		Phase:       NoPhase,
		PassThrough: true,
	}
	a.submit(rt, tr)
}

// HandleControl routes shaper control traffic.
func (a *Agent) HandleControl(from NodeID, msg any) {
	a.shaper.ControlReceived(from, msg)
}

// sortedQueryIDs returns the registered query IDs in ascending order.
// Maintenance hooks iterate queries in this order because they mutate
// shaper and sleep state (and may schedule events): map order would vary
// the seq tie-break of same-instant events and break run determinism.
func (a *Agent) sortedQueryIDs() []ID {
	ids := make([]ID, 0, len(a.queries))
	for id := range a.queries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ChildAdded registers a new dependency on child (it was re-parented
// under this node). It takes effect from the next interval of each query.
func (a *Agent) ChildAdded(child NodeID) {
	for _, qid := range a.sortedQueryIDs() {
		a.shaper.ChildAdded(qid, child)
	}
}

// ChildRemoved drops the dependency on child: open intervals stop waiting
// for it and the shaper forgets its expected reception times.
func (a *Agent) ChildRemoved(child NodeID) {
	for _, qid := range a.sortedQueryIDs() {
		rt := a.queries[qid]
		a.shaper.ChildRemoved(qid, child)
		delete(rt.consecMiss, child)
		for _, k := range rt.sortedIntervalKs() {
			iv := rt.intervals[k]
			if iv.closed {
				continue
			}
			i := iv.expectedIdx(child)
			if i < 0 {
				continue
			}
			iv.expected = append(iv.expected[:i], iv.expected[i+1:]...)
			iv.got = append(iv.got[:i], iv.got[i+1:]...)
			done := true
			for j := range iv.expected {
				if !iv.got[j] {
					done = false
					break
				}
			}
			if done {
				a.closeInterval(rt, iv)
			}
		}
	}
}

// ParentChanged informs the shaper the node was re-parented.
func (a *Agent) ParentChanged() {
	for _, qid := range a.sortedQueryIDs() {
		a.shaper.ParentChanged(qid)
	}
	a.consecSendFail = 0
}

// Deregister removes query q from this node: interval generation stops,
// open intervals are abandoned, and the shaper forgets the schedule so
// Safe Sleep no longer wakes the node for it. Unknown IDs are no-ops.
func (a *Agent) Deregister(q ID) {
	rt, ok := a.queries[q]
	if !ok {
		return
	}
	// Ascending k, not map order: Deregister runs on the event path
	// (mid-run query stops).
	for _, k := range rt.sortedIntervalKs() {
		iv := rt.intervals[k]
		if iv.timeout != nil {
			iv.timeout.Cancel()
			iv.timeout = nil
		}
		iv.closed = true
		a.releaseInterval(iv)
	}
	delete(a.queries, q)
	a.shaper.QueryRemoved(q)
}

// Queries returns the IDs of registered queries in unspecified order.
func (a *Agent) Queries() []ID {
	out := make([]ID, 0, len(a.queries))
	for id := range a.queries {
		out = append(out, id)
	}
	return out
}
