// Package query implements the paper's workload model (§3): a generic
// query service in which every node in a routing tree produces a data
// report each query period, aggregates its children's reports with its
// own sample, and forwards the aggregate toward the root.
//
// The Agent is deliberately power-management agnostic: all timing policy
// is delegated to a Shaper (traffic shaper + sleep-scheduler bookkeeping),
// which is where the ESSAT protocols (NTS/STS/DTS + Safe Sleep) and the
// baselines plug in. The agent handles the mechanics every protocol
// shares: interval bookkeeping, aggregation, collection timeouts,
// late-report pass-through, and failure counting.
package query

import (
	"fmt"
	"time"

	"github.com/essat/essat/internal/routing"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

// NodeID aliases the shared node identifier.
type NodeID = topology.NodeID

// ID identifies a registered query.
type ID int

// NoPhase marks the absence of a piggybacked phase update in a report.
const NoPhase = time.Duration(-1)

// Spec describes a query as issued by the user: report period P, start
// time φ, and a class label used only for result grouping (Q1/Q2/Q3).
type Spec struct {
	ID     ID
	Period time.Duration
	Phase  time.Duration
	Class  int
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Period <= 0 {
		return fmt.Errorf("query %d: period must be positive, got %v", s.ID, s.Period)
	}
	if s.Phase < 0 {
		return fmt.Errorf("query %d: negative phase %v", s.ID, s.Phase)
	}
	return nil
}

// IntervalStart returns φ + k·P, the nominal start of interval k.
func (s Spec) IntervalStart(k int) time.Duration {
	return s.Phase + time.Duration(k)*s.Period
}

// Report is one (possibly aggregated) data report traveling up the tree.
type Report struct {
	Query    ID
	Interval int
	// Coverage counts the source samples folded into this aggregate.
	Coverage int
	// Value is the aggregate value (max-aggregation by default).
	Value float64
	// Phase is a DTS phase update piggybacked on the report: the sender's
	// expected send time of its next report. NoPhase when absent.
	Phase time.Duration
	// PassThrough marks a late partial aggregate being forwarded without
	// further aggregation.
	PassThrough bool
}

// Shaper is the per-node traffic-shaping and sleep-bookkeeping policy.
// The ESSAT shapers update Safe Sleep's expected send/receive times from
// these hooks; baseline policies mostly leave them empty.
type Shaper interface {
	// Name identifies the shaper in results ("NTS", "STS", "DTS", ...).
	Name() string
	// QueryAdded informs the shaper of a newly registered query and the
	// node's current children for it.
	QueryAdded(spec Spec, children []NodeID)
	// ReportReady is called when this node's aggregate for interval k is
	// ready. It returns when the report should be submitted to the MAC
	// (>= now; early reports are buffered until their expected send time)
	// and the phase update to piggyback, or NoPhase.
	ReportReady(q ID, k int, readyAt time.Duration) (sendAt time.Duration, phase time.Duration)
	// ReportSent is called when the MAC confirmed delivery of interval
	// k's report; the shaper computes s(k+1) here (§4.1).
	ReportSent(q ID, k int)
	// ReportFailed is called when the MAC exhausted its retries for
	// interval k's report. The shaper must still advance its schedule so
	// the node does not stay pinned awake on a stale expected send time.
	ReportFailed(q ID, k int)
	// ReportReceived is called for each scheduled (non-pass-through)
	// report received from a child, with any piggybacked phase; the
	// shaper computes r(q, k+1, c) here (§4.1).
	ReportReceived(q ID, child NodeID, k int, phase time.Duration)
	// IntervalClosed is called when interval k is closed (all children
	// reported, or the collection deadline fired) with the children that
	// did not report in time.
	IntervalClosed(q ID, k int, missing []NodeID)
	// CollectDeadline returns the absolute time at which the node stops
	// waiting for children's interval-k reports (§4.3 timeout policy).
	CollectDeadline(q ID, k int) time.Duration
	// QueryRemoved tells the shaper a query was deregistered: all its
	// schedule state (including Safe Sleep expectations) must be dropped.
	QueryRemoved(q ID)
	// ChildAdded and ChildRemoved track dependency changes from topology
	// maintenance (§4.3).
	ChildAdded(q ID, child NodeID)
	ChildRemoved(q ID, child NodeID)
	// ParentChanged signals that the node was re-parented.
	ParentChanged(q ID)
	// ControlReceived delivers shaper-level control traffic (e.g. DTS
	// phase requests).
	ControlReceived(from NodeID, msg any)
}

// Sink receives root-side observations for metrics.
type Sink interface {
	// ReportArrived fires for every report reaching the root: latency is
	// measured from the interval's nominal start φ+kP.
	ReportArrived(q ID, interval int, latency time.Duration, coverage int)
	// IntervalClosed fires when the root closes interval k with the total
	// coverage it managed to collect.
	IntervalClosed(q ID, interval int, latency time.Duration, coverage int)
}

// SendFunc submits a payload toward dst; cb reports MAC-level success.
type SendFunc func(dst NodeID, payload any, bytes int, cb func(ok bool))

// Host is the node-side environment of an Agent: the transmit path and
// the failure-detection notifications. The node implements it directly,
// so wiring an agent stores one interface value instead of binding a
// send closure and two failure-handler closures per node per run.
type Host interface {
	// SendReport submits a payload toward dst; cb reports MAC-level
	// success.
	SendReport(dst NodeID, payload any, bytes int, cb func(ok bool))
	// ChildFailed fires when a child missed FailureThreshold consecutive
	// intervals.
	ChildFailed(child NodeID)
	// ParentFailed fires when FailureThreshold consecutive transmissions
	// to the parent failed.
	ParentFailed()
}

// HostFuncs adapts plain funcs to Host (tests, ad-hoc wiring). Nil
// failure handlers are no-ops; Send must be set.
type HostFuncs struct {
	Send           SendFunc
	OnChildFailed  func(child NodeID)
	OnParentFailed func()
}

// SendReport implements Host.
func (h *HostFuncs) SendReport(dst NodeID, payload any, bytes int, cb func(ok bool)) {
	h.Send(dst, payload, bytes, cb)
}

// ChildFailed implements Host.
func (h *HostFuncs) ChildFailed(child NodeID) {
	if h.OnChildFailed != nil {
		h.OnChildFailed(child)
	}
}

// ParentFailed implements Host.
func (h *HostFuncs) ParentFailed() {
	if h.OnParentFailed != nil {
		h.OnParentFailed()
	}
}

// AggFunc folds two aggregate values. The default is max, typical for
// threshold-detection queries.
type AggFunc func(a, b float64) float64

// MaxAgg is the default aggregation function.
func MaxAgg(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Config parameterizes an Agent.
type Config struct {
	// ReportBytes is the on-air size of a data report (52 in the paper).
	ReportBytes int
	// PhaseBytes is the extra size of a piggybacked phase update.
	PhaseBytes int
	// FailureThreshold is the number of consecutive missed intervals
	// (child side) or failed transmissions (parent side) before the node
	// declares its neighbor failed. Zero disables failure detection.
	FailureThreshold int
	// Agg is the aggregation function; nil means MaxAgg.
	Agg AggFunc
	// Sampler produces this node's local measurement for interval k.
	// Nil installs a deterministic default.
	Sampler func(q ID, k int) float64
}

// DefaultConfig matches the paper's setup: 52-byte reports, 4-byte phase
// piggyback, failure declared after 3 consecutive misses.
func DefaultConfig() Config {
	return Config{ReportBytes: 52, PhaseBytes: 4, FailureThreshold: 3}
}

// Validate reports whether the configuration is runnable: a report must
// occupy at least one on-air byte, and the piggyback / failure knobs
// must be non-negative. Hosts that accept configs from untrusted input
// validate before construction so a bad config surfaces as a build
// error; NewAgent panics on an invalid config only as a backstop
// against imperative misuse.
func (c Config) Validate() error {
	if c.ReportBytes <= 0 {
		return fmt.Errorf("query: ReportBytes must be positive, got %d", c.ReportBytes)
	}
	if c.PhaseBytes < 0 {
		return fmt.Errorf("query: negative PhaseBytes %d", c.PhaseBytes)
	}
	if c.FailureThreshold < 0 {
		return fmt.Errorf("query: negative FailureThreshold %d", c.FailureThreshold)
	}
	return nil
}

// Stats counts agent-level outcomes at one node.
type Stats struct {
	// Samples is the number of local measurements produced.
	Samples uint64
	// ReportsSent counts scheduled aggregate reports submitted to the MAC.
	ReportsSent uint64
	// PassThroughsSent counts late partials forwarded unaggregated.
	PassThroughsSent uint64
	// Timeouts counts intervals closed by deadline with children missing.
	Timeouts uint64
	// SendFailures counts MAC-level delivery failures.
	SendFailures uint64
	// PhaseUpdatesSent counts reports that carried a phase piggyback.
	PhaseUpdatesSent uint64
	// LateReports counts child reports that arrived after their interval
	// was closed.
	LateReports uint64
}

// interval is one collection round. Intervals are pooled by the Agent:
// the struct and its expected/got slices come from the per-run arena,
// their capacity survives recycling, and the deadline timer dispatches
// through a shared package-level func carrying the interval as its
// event argument, so steady-state interval turnover is allocation-free.
type interval struct {
	k        int
	value    float64
	coverage int
	expected []NodeID // children owed for this interval
	got      []bool   // parallel to expected
	extraGot []NodeID // reporters outside expected (mid-recovery edges)
	closed   bool
	timeout  *sim.Event

	rt *runtime // owning query runtime
}

// intervalTimeout is the collection-deadline dispatcher shared by every
// interval: events carry the interval instead of a per-interval closure.
func intervalTimeout(x any) {
	iv := x.(*interval)
	a := iv.rt.a
	iv.timeout = nil
	a.stats.Timeouts++
	a.closeInterval(iv.rt, iv)
}

// expectedIdx returns c's position in expected, or -1.
func (iv *interval) expectedIdx(c NodeID) int {
	for i, e := range iv.expected {
		if e == c {
			return i
		}
	}
	return -1
}

// missEntry is one child's consecutive-miss counter.
type missEntry struct {
	id NodeID
	n  int
}

type runtime struct {
	a    *Agent // owning agent, for the shared event dispatchers
	spec Spec
	// intervals holds the open collection rounds in ascending k: ticks
	// create intervals in increasing order and removals preserve order,
	// so every walk with side effects (closing may submit reports,
	// releasing feeds the pools) is deterministic. At most a handful are
	// open (far-past rounds are pruned), so linear lookups win over a map.
	intervals []*interval
	// consecMiss is the per-child consecutive-miss table, a small linear
	// slice for the same reason.
	consecMiss  []missEntry
	lastClosedK int

	// tickK is the interval the next tick starts: the self-rescheduling
	// chain (exactly one tick is outstanding per query).
	tickK int
	// chainDead marks a broken tick chain: a tick fired while the agent
	// was stopped (node crashed) and did not reschedule itself. Resume
	// restarts dead chains at the next interval boundary.
	chainDead bool
}

// queryTick is the interval-start dispatcher shared by every query:
// events carry the runtime instead of a per-query closure.
func queryTick(x any) {
	rt := x.(*runtime)
	rt.a.startInterval(rt, rt.tickK)
}

// interval returns the open interval k, or nil.
func (rt *runtime) interval(k int) *interval {
	for _, iv := range rt.intervals {
		if iv.k == k {
			return iv
		}
	}
	return nil
}

// removeInterval detaches interval k, preserving ascending order.
func (rt *runtime) removeInterval(k int) *interval {
	for i, iv := range rt.intervals {
		if iv.k == k {
			rt.intervals = append(rt.intervals[:i], rt.intervals[i+1:]...)
			return iv
		}
	}
	return nil
}

// intervalAfter returns the open interval with the smallest k greater
// than prev, or nil. Iterating with it is safe under re-entrant
// mutation (closing an interval can prune others via failure handlers),
// which a direct range over the slice is not.
func (rt *runtime) intervalAfter(prev int) *interval {
	for _, iv := range rt.intervals {
		if iv.k > prev {
			return iv
		}
	}
	return nil
}

// bumpMiss increments c's consecutive-miss counter and returns it.
func (rt *runtime) bumpMiss(c NodeID) int {
	for i := range rt.consecMiss {
		if rt.consecMiss[i].id == c {
			rt.consecMiss[i].n++
			return rt.consecMiss[i].n
		}
	}
	rt.consecMiss = append(rt.consecMiss, missEntry{id: c, n: 1})
	return 1
}

// zeroMiss resets c's counter; absent entries are already zero.
func (rt *runtime) zeroMiss(c NodeID) {
	for i := range rt.consecMiss {
		if rt.consecMiss[i].id == c {
			rt.consecMiss[i].n = 0
			return
		}
	}
}

// dropMiss forgets c entirely (child removed).
func (rt *runtime) dropMiss(c NodeID) {
	for i := range rt.consecMiss {
		if rt.consecMiss[i].id == c {
			rt.consecMiss = append(rt.consecMiss[:i], rt.consecMiss[i+1:]...)
			return
		}
	}
}

// txReport is a pooled in-flight report: the Report payload plus the
// prebound MAC-completion callback that references it. The submit timer
// dispatches through a shared package-level func.
type txReport struct {
	rep  Report
	rt   *runtime
	cbFn func(ok bool)
}

// txSubmit is the send-time dispatcher shared by every in-flight report.
func txSubmit(x any) {
	tr := x.(*txReport)
	tr.rt.a.submit(tr.rt, tr)
}

// Agent runs the query service at one node.
type Agent struct {
	eng    *sim.Engine
	id     NodeID
	tree   *routing.Tree
	shaper Shaper
	host   Host
	sink   Sink
	cfg    Config
	agg    AggFunc

	// queries holds the registered runtimes in ascending spec.ID, so
	// every maintenance walk (which mutates shaper and sleep state, and
	// may schedule events) iterates deterministically. Nodes carry a
	// handful of queries; linear lookups win over a map.
	queries []*runtime
	stats   Stats

	// Freelists and scratch space for the per-interval hot path.
	ivFree      []*interval
	trFree      []*txReport
	missScratch []NodeID

	consecSendFail int
	stopped        bool
}

// runtimeFor returns the runtime registered for q, or nil.
func (a *Agent) runtimeFor(q ID) *runtime {
	for _, rt := range a.queries {
		if rt.spec.ID == q {
			return rt
		}
	}
	return nil
}

// firstQuery and queryAfterID iterate the registered queries in
// ascending ID, robustly against re-entrant registration changes
// (failure handlers can deregister mid-walk).
func (a *Agent) firstQuery() *runtime {
	if len(a.queries) == 0 {
		return nil
	}
	return a.queries[0]
}

func (a *Agent) queryAfterID(prev ID) *runtime {
	for _, rt := range a.queries {
		if rt.spec.ID > prev {
			return rt
		}
	}
	return nil
}

// newInterval takes an interval from the pool (or grabs an arena slab
// with arena-backed row capacity) and resets it for (rt, k).
func (a *Agent) newInterval(rt *runtime, k int) *interval {
	iv := sim.TakeLast(&a.ivFree)
	if iv == nil {
		iv = sim.ArenaGrab[interval](a.eng, "query.interval")
		iv.expected = sim.ArenaSlice[NodeID](a.eng, "query.iv.expected", 8)
		iv.got = sim.ArenaSlice[bool](a.eng, "query.iv.got", 8)
		iv.extraGot = sim.ArenaSlice[NodeID](a.eng, "query.iv.extra", 2)
	}
	iv.k = k
	iv.value = 0
	iv.coverage = 0
	iv.expected = iv.expected[:0]
	iv.got = iv.got[:0]
	iv.extraGot = iv.extraGot[:0]
	iv.closed = false
	iv.timeout = nil
	iv.rt = rt
	return iv
}

// releaseInterval recycles a closed interval with no pending timeout.
func (a *Agent) releaseInterval(iv *interval) {
	iv.rt = nil
	a.ivFree = append(a.ivFree, iv)
}

// newTxReport takes a report from the pool (or grabs an arena slab,
// creating its prebound MAC callback) and binds it to rt.
func (a *Agent) newTxReport(rt *runtime) *txReport {
	tr := sim.TakeLast(&a.trFree)
	if tr == nil {
		tr = sim.ArenaGrab[txReport](a.eng, "query.txreport")
		trp := tr
		tr.cbFn = func(ok bool) { a.sendDone(trp, ok) }
	}
	tr.rt = rt
	return tr
}

func (a *Agent) releaseTxReport(tr *txReport) {
	tr.rt = nil
	a.trFree = append(a.trFree, tr)
}

// NewAgent wires a query agent. sink may be nil (non-root nodes); host
// must deliver reports to the MAC or a power manager's gate.
func NewAgent(eng *sim.Engine, id NodeID, tree *routing.Tree, shaper Shaper, host Host, sink Sink, cfg Config) *Agent {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	agg := cfg.Agg
	if agg == nil {
		agg = MaxAgg
	}
	if cfg.Sampler == nil {
		cfg.Sampler = func(q ID, k int) float64 { return float64(id) }
	}
	a := sim.ArenaGrab[Agent](eng, "query.agent")
	*a = Agent{
		eng:     eng,
		id:      id,
		tree:    tree,
		shaper:  shaper,
		host:    host,
		sink:    sink,
		cfg:     cfg,
		agg:     agg,
		queries: sim.ArenaSlice[*runtime](eng, "query.queries", 4)[:0],
	}
	return a
}

// Stats returns a copy of the agent counters.
func (a *Agent) Stats() Stats { return a.stats }

// Shaper returns the agent's shaper.
func (a *Agent) Shaper() Shaper { return a.shaper }

// Stop halts interval generation (used when a node is killed or
// crashes). Pending tick events fire but do nothing, breaking each
// query's tick chain; Resume restarts them.
func (a *Agent) Stop() { a.stopped = true }

// Resume restarts a stopped agent (node recovery): every query whose
// tick chain broke while the node was down is rescheduled at its next
// interval boundary. Intervals missed during the outage are skipped —
// their data is simply gone, as on real hardware.
func (a *Agent) Resume() {
	if !a.stopped {
		return
	}
	a.stopped = false
	now := a.eng.Now()
	for rt := a.firstQuery(); rt != nil; rt = a.queryAfterID(rt.spec.ID) {
		if !rt.chainDead {
			continue
		}
		rt.chainDead = false
		k := 0
		if now > rt.spec.Phase {
			k = int((now-rt.spec.Phase)/rt.spec.Period) + 1
		}
		rt.tickK = k
		a.eng.ScheduleArg(rt.spec.IntervalStart(k), queryTick, rt)
	}
}

// Register installs a query at this node and schedules its intervals.
// Must be called before the query's phase.
func (a *Agent) Register(spec Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if a.runtimeFor(spec.ID) != nil {
		return fmt.Errorf("query %d: already registered", spec.ID)
	}
	rt := sim.ArenaGrab[runtime](a.eng, "query.runtime")
	*rt = runtime{
		a:           a,
		spec:        spec,
		intervals:   sim.ArenaSlice[*interval](a.eng, "query.rt.intervals", 8)[:0],
		consecMiss:  sim.ArenaSlice[missEntry](a.eng, "query.rt.miss", 4)[:0],
		lastClosedK: -1,
	}
	// Insert keeping ascending spec.ID order.
	a.queries = append(a.queries, rt)
	for i := len(a.queries) - 1; i > 0 && a.queries[i-1].spec.ID > rt.spec.ID; i-- {
		a.queries[i-1], a.queries[i] = a.queries[i], a.queries[i-1]
	}
	a.shaper.QueryAdded(spec, a.tree.Children(a.id))
	rt.tickK = 0
	a.eng.ScheduleArg(spec.Phase, queryTick, rt)
	return nil
}

func (a *Agent) startInterval(rt *runtime, k int) {
	if a.stopped {
		rt.chainDead = true
		return
	}
	if a.runtimeFor(rt.spec.ID) != rt {
		return // deregistered
	}
	// Schedule the next interval first so the chain never breaks.
	rt.tickK = k + 1
	a.eng.ScheduleArg(rt.spec.IntervalStart(k+1), queryTick, rt)

	iv := a.newInterval(rt, k)
	iv.value = a.cfg.Sampler(rt.spec.ID, k)
	iv.coverage = 1
	a.stats.Samples++
	rt.intervals = append(rt.intervals, iv)
	for _, c := range a.tree.Children(a.id) {
		iv.expected = append(iv.expected, c)
		iv.got = append(iv.got, false)
	}
	if len(iv.expected) == 0 {
		a.closeInterval(rt, iv)
		return
	}
	deadline := a.shaper.CollectDeadline(rt.spec.ID, k)
	if now := a.eng.Now(); deadline < now {
		deadline = now
	}
	iv.timeout = a.eng.ScheduleArg(deadline, intervalTimeout, iv)
}

// closeInterval finalizes interval k: informs the shaper of missing
// children, updates failure counters, and routes the aggregate.
func (a *Agent) closeInterval(rt *runtime, iv *interval) {
	if iv.closed {
		return
	}
	iv.closed = true
	if iv.timeout != nil {
		iv.timeout.Cancel()
		iv.timeout = nil
	}
	if iv.k > rt.lastClosedK {
		rt.lastClosedK = iv.k
	}
	// Prune far-past intervals; anything arriving for them is treated as
	// late and forwarded as a pass-through. A pruned interval is recycled
	// once it is closed with no timeout pending (the normal case: its
	// deadline is bounded by roughly one period).
	if old := rt.removeInterval(iv.k - 8); old != nil {
		if old.closed && old.timeout == nil {
			a.releaseInterval(old)
		}
	}

	// Detach the scratch buffer while in use: onChildFailed can re-enter
	// closeInterval (child removal closes other intervals), and the nested
	// call must not clobber this one's missing list.
	missing := a.missScratch[:0]
	a.missScratch = nil
	for i, c := range iv.expected {
		if !iv.got[i] {
			missing = append(missing, c)
		}
	}
	a.shaper.IntervalClosed(rt.spec.ID, iv.k, missing)
	for _, c := range missing {
		if n := rt.bumpMiss(c); a.cfg.FailureThreshold > 0 && n >= a.cfg.FailureThreshold {
			rt.zeroMiss(c)
			a.host.ChildFailed(c)
		}
	}
	a.missScratch = missing[:0]

	if a.id == a.tree.Root() {
		latency := a.eng.Now() - rt.spec.IntervalStart(iv.k)
		if a.sink != nil {
			a.sink.IntervalClosed(rt.spec.ID, iv.k, latency, iv.coverage)
		}
		return
	}

	tr := a.newTxReport(rt)
	tr.rep = Report{Query: rt.spec.ID, Interval: iv.k, Coverage: iv.coverage, Value: iv.value}
	sendAt, phase := a.shaper.ReportReady(rt.spec.ID, iv.k, a.eng.Now())
	tr.rep.Phase = phase
	if now := a.eng.Now(); sendAt < now {
		sendAt = now
	}
	a.eng.ScheduleArg(sendAt, txSubmit, tr)
}

func (a *Agent) submit(rt *runtime, tr *txReport) {
	rep := &tr.rep
	if a.stopped {
		a.releaseTxReport(tr)
		return
	}
	if a.runtimeFor(rep.Query) != rt {
		// The query was deregistered (mid-run stop, burst teardown) while
		// this report waited for its send time: drop it silently — the
		// shaper's schedule state for it is already gone.
		a.releaseTxReport(tr)
		return
	}
	parent := a.tree.Parent(a.id)
	if parent == routing.None {
		// Orphaned: our parent detached us (possibly a false-positive
		// failure detection on a congested link). The report is lost;
		// treat it as a send failure so the parent-failure path kicks in
		// and re-attaches us to the tree.
		a.stats.SendFailures++
		if !rep.PassThrough {
			a.shaper.ReportFailed(rep.Query, rep.Interval)
		}
		a.consecSendFail++
		if a.cfg.FailureThreshold > 0 && a.consecSendFail >= a.cfg.FailureThreshold {
			a.consecSendFail = 0
			a.host.ParentFailed()
		}
		a.releaseTxReport(tr)
		return
	}
	bytes := a.cfg.ReportBytes
	if rep.Phase != NoPhase {
		bytes += a.cfg.PhaseBytes
		a.stats.PhaseUpdatesSent++
	}
	if rep.PassThrough {
		a.stats.PassThroughsSent++
	} else {
		a.stats.ReportsSent++
	}
	a.host.SendReport(parent, rep, bytes, tr.cbFn)
}

// sendDone is the MAC-completion path for a submitted report. The MAC is
// finished with the payload when it runs, so the txReport is recycled on
// every exit.
func (a *Agent) sendDone(tr *txReport, ok bool) {
	rep := &tr.rep
	if a.stopped {
		a.releaseTxReport(tr)
		return
	}
	if a.runtimeFor(rep.Query) != tr.rt {
		// Deregistered while the MAC held the frame: the delivery already
		// happened (or failed) on the air, but the shaper must not see
		// hooks for a query it has forgotten.
		a.releaseTxReport(tr)
		return
	}
	if !ok {
		a.stats.SendFailures++
		a.consecSendFail++
		if !rep.PassThrough {
			a.shaper.ReportFailed(rep.Query, rep.Interval)
		}
		if a.cfg.FailureThreshold > 0 && a.consecSendFail >= a.cfg.FailureThreshold {
			a.consecSendFail = 0
			a.host.ParentFailed()
		}
		a.releaseTxReport(tr)
		return
	}
	a.consecSendFail = 0
	if !rep.PassThrough {
		a.shaper.ReportSent(rep.Query, rep.Interval)
	}
	a.releaseTxReport(tr)
}

// HandleReport processes a report received from a child (via the node's
// MAC dispatcher).
func (a *Agent) HandleReport(from NodeID, rep *Report) {
	rt := a.runtimeFor(rep.Query)
	if rt == nil {
		return // query not registered here (should not happen in-tree)
	}
	if a.id == a.tree.Root() && a.sink != nil {
		latency := a.eng.Now() - rt.spec.IntervalStart(rep.Interval)
		a.sink.ReportArrived(rep.Query, rep.Interval, latency, rep.Coverage)
	}
	if rep.PassThrough {
		a.handleLate(rt, rep)
		return
	}
	if a.tree.Parent(from) != a.id {
		// Stale edge: a node we no longer parent (or never did) is still
		// sending to us mid-recovery. Keep its data flowing but do not
		// feed the per-child schedule.
		a.handleLate(rt, rep)
		return
	}

	rt.zeroMiss(from)
	a.shaper.ReportReceived(rep.Query, from, rep.Interval, rep.Phase)

	iv := rt.interval(rep.Interval)
	if iv == nil || iv.closed {
		a.stats.LateReports++
		a.handleLate(rt, rep)
		return
	}
	if i := iv.expectedIdx(from); i >= 0 {
		if iv.got[i] {
			return // duplicate scheduled report (should be filtered by MAC)
		}
		iv.got[i] = true
	} else {
		// Not among the children owed (added mid-interval): aggregate but
		// do not let it close the interval.
		for _, c := range iv.extraGot {
			if c == from {
				return // duplicate
			}
		}
		iv.extraGot = append(iv.extraGot, from)
	}
	iv.value = a.agg(iv.value, rep.Value)
	iv.coverage += rep.Coverage

	for i := range iv.expected {
		if !iv.got[i] {
			return // still waiting
		}
	}
	a.closeInterval(rt, iv)
}

// handleLate merges a late or pass-through report into a still-open
// interval if possible, otherwise forwards it upstream unchanged. This
// keeps deep sources' data flowing to the root even when intermediate
// deadlines fired, so root-side latency reflects true end-to-end delay.
func (a *Agent) handleLate(rt *runtime, rep *Report) {
	if iv := rt.interval(rep.Interval); iv != nil && !iv.closed {
		iv.value = a.agg(iv.value, rep.Value)
		iv.coverage += rep.Coverage
		return
	}
	if a.id == a.tree.Root() {
		return // already recorded by the sink
	}
	tr := a.newTxReport(rt)
	tr.rep = Report{
		Query:       rep.Query,
		Interval:    rep.Interval,
		Coverage:    rep.Coverage,
		Value:       rep.Value,
		Phase:       NoPhase,
		PassThrough: true,
	}
	a.submit(rt, tr)
}

// HandleControl routes shaper control traffic.
func (a *Agent) HandleControl(from NodeID, msg any) {
	a.shaper.ControlReceived(from, msg)
}

// ChildAdded registers a new dependency on child (it was re-parented
// under this node). It takes effect from the next interval of each query.
func (a *Agent) ChildAdded(child NodeID) {
	for rt := a.firstQuery(); rt != nil; rt = a.queryAfterID(rt.spec.ID) {
		a.shaper.ChildAdded(rt.spec.ID, child)
	}
}

// ChildRemoved drops the dependency on child: open intervals stop waiting
// for it and the shaper forgets its expected reception times.
func (a *Agent) ChildRemoved(child NodeID) {
	for rt := a.firstQuery(); rt != nil; rt = a.queryAfterID(rt.spec.ID) {
		a.shaper.ChildRemoved(rt.spec.ID, child)
		rt.dropMiss(child)
		// intervalAfter, not a range: closing can prune intervals and
		// re-enter via the failure handlers.
		for iv := rt.intervalAfter(-1); iv != nil; iv = rt.intervalAfter(iv.k) {
			if iv.closed {
				continue
			}
			i := iv.expectedIdx(child)
			if i < 0 {
				continue
			}
			iv.expected = append(iv.expected[:i], iv.expected[i+1:]...)
			iv.got = append(iv.got[:i], iv.got[i+1:]...)
			done := true
			for j := range iv.expected {
				if !iv.got[j] {
					done = false
					break
				}
			}
			if done {
				a.closeInterval(rt, iv)
			}
		}
	}
}

// ParentChanged informs the shaper the node was re-parented.
func (a *Agent) ParentChanged() {
	for rt := a.firstQuery(); rt != nil; rt = a.queryAfterID(rt.spec.ID) {
		a.shaper.ParentChanged(rt.spec.ID)
	}
	a.consecSendFail = 0
}

// Deregister removes query q from this node: interval generation stops,
// open intervals are abandoned, and the shaper forgets the schedule so
// Safe Sleep no longer wakes the node for it. Unknown IDs are no-ops.
func (a *Agent) Deregister(q ID) {
	rt := a.runtimeFor(q)
	if rt == nil {
		return
	}
	// Ascending k (the slice order): Deregister runs on the event path
	// (mid-run query stops).
	for _, iv := range rt.intervals {
		if iv.timeout != nil {
			iv.timeout.Cancel()
			iv.timeout = nil
		}
		iv.closed = true
		a.releaseInterval(iv)
	}
	rt.intervals = rt.intervals[:0]
	for i, cur := range a.queries {
		if cur == rt {
			a.queries = append(a.queries[:i], a.queries[i+1:]...)
			break
		}
	}
	a.shaper.QueryRemoved(q)
}

// Queries returns the IDs of registered queries in ascending order.
func (a *Agent) Queries() []ID {
	out := make([]ID, 0, len(a.queries))
	for _, rt := range a.queries {
		out = append(out, rt.spec.ID)
	}
	return out
}
