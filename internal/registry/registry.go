// Package registry provides the rank-ordered, name-keyed registry
// shared by the pluggable layers (protocols, topology generators).
// Registries are written only from init functions; reads after init are
// concurrency-safe without locking.
package registry

import (
	"fmt"
	"sort"
)

// Registry maps names to values with a presentation rank.
type Registry[K ~string, V any] struct {
	kind    string
	entries map[K]entry[V]
}

type entry[V any] struct {
	rank     int
	unlisted bool
	v        V
}

// New creates an empty registry; kind names the layer in panic
// messages ("protocol", "topology generator").
func New[K ~string, V any](kind string) *Registry[K, V] {
	return &Registry[K, V]{kind: kind, entries: map[K]entry[V]{}}
}

// Register adds v under name. rank orders Names() for presentation
// (lower first); ties break by name. Register panics on duplicates:
// registered names are identities, not overridable hooks.
func (r *Registry[K, V]) Register(name K, rank int, v V) {
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("%s: duplicate registration of %q", r.kind, string(name)))
	}
	r.entries[name] = entry[V]{rank: rank, v: v}
}

// RegisterUnlisted adds v under name like Register, but keeps it out of
// Names(): the entry resolves through Lookup yet never appears in "all
// registered X" sweeps. Test doubles (e.g. a deliberately panicking
// protocol used to exercise containment) register this way so that
// every-protocol matrix tests and CLI listings stay confined to the
// real implementations.
func (r *Registry[K, V]) RegisterUnlisted(name K, v V) {
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("%s: duplicate registration of %q", r.kind, string(name)))
	}
	r.entries[name] = entry[V]{unlisted: true, v: v}
}

// Lookup returns the value registered under name.
func (r *Registry[K, V]) Lookup(name K) (V, bool) {
	e, ok := r.entries[name]
	return e.v, ok
}

// Names lists every listed registered name in presentation order;
// unlisted entries are omitted.
func (r *Registry[K, V]) Names() []K {
	out := make([]K, 0, len(r.entries))
	for name, e := range r.entries {
		if e.unlisted {
			continue
		}
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := r.entries[out[i]].rank, r.entries[out[j]].rank
		if ri != rj {
			return ri < rj
		}
		return out[i] < out[j]
	})
	return out
}
