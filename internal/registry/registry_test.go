package registry

import (
	"reflect"
	"testing"
)

func TestLookupReturnsRegisteredValue(t *testing.T) {
	r := New[string, int]("thing")
	r.Register("a", 0, 41)
	got, ok := r.Lookup("a")
	if !ok || got != 41 {
		t.Fatalf("Lookup(a) = %d, %v; want 41, true", got, ok)
	}
}

func TestLookupMiss(t *testing.T) {
	r := New[string, int]("thing")
	r.Register("a", 0, 1)
	if v, ok := r.Lookup("nope"); ok {
		t.Fatalf("Lookup(nope) = %d, true; want miss", v)
	}
	if v, ok := r.Lookup(""); ok {
		t.Fatalf("Lookup(\"\") = %d, true; want miss", v)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := New[string, int]("thing")
	r.Register("a", 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	r.Register("a", 1, 2)
}

func TestNamesOrderedByRankThenName(t *testing.T) {
	r := New[string, int]("thing")
	// Insert in scrambled order; Names must sort by (rank, name).
	r.Register("zeta", 0, 1)
	r.Register("beta", 2, 2)
	r.Register("alpha", 2, 3)
	r.Register("mid", 1, 4)
	want := []string{"zeta", "mid", "alpha", "beta"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	// Deterministic across calls (no map-order leakage).
	for i := 0; i < 10; i++ {
		if got := r.Names(); !reflect.DeepEqual(got, want) {
			t.Fatalf("Names() unstable on call %d: %v", i, got)
		}
	}
}

func TestNamedStringKeyTypes(t *testing.T) {
	type key string
	r := New[key, string]("typed")
	r.Register("x", 0, "vx")
	if v, ok := r.Lookup("x"); !ok || v != "vx" {
		t.Fatalf("typed-key Lookup = %q, %v", v, ok)
	}
}
