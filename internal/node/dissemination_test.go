package node

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/core"
	"github.com/essat/essat/internal/geom"
	"github.com/essat/essat/internal/mac"
	"github.com/essat/essat/internal/phy"
	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/routing"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

// TestDisseminationEndToEnd runs a downstream flow over the full stack on
// a 4-hop chain with Safe Sleep active and no upward queries: every node
// must receive every command, through radios that sleep between slots.
func TestDisseminationEndToEnd(t *testing.T) {
	eng := sim.New(1)
	topo, err := topology.FromPositions(geom.LinePlacement(5, 100), 125)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.BuildBFS(topo, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := phy.NewChannel(eng, topo, phy.DefaultConfig())

	spec := core.DisseminationSpec{
		ID:           -1,
		Period:       time.Second,
		Phase:        200 * time.Millisecond,
		HopAllowance: 30 * time.Millisecond,
	}

	received := make(map[NodeID][]int)
	nodes := make(map[NodeID]*Node)
	for _, id := range tree.Members() {
		id := id
		n := New(eng, id, tree, ch, radio.Config{TurnOnDelay: time.Millisecond, TurnOffDelay: 500 * time.Microsecond}, mac.DefaultConfig())
		ss := core.NewSafeSleep(eng, n.Radio, core.SafeSleepOptions{
			BreakEven: -1, WakeAhead: -1, MACBusy: n.MAC,
		})
		n.InstallSleep(ss)
		n.InstallAgent(core.NewDTS(n, ss), nil, query.DefaultConfig())
		n.InstallDisseminator(func(c *core.Command) {
			received[id] = append(received[id], c.Interval)
		})
		if err := n.Diss.Register(spec); err != nil {
			t.Fatal(err)
		}
		nodes[id] = n
	}
	eng.Run(5100 * time.Millisecond)

	// Commands k=0..4 released at 0.2s..4.2s; every node (root included,
	// via its own deliver) sees all 5.
	for _, id := range tree.Members() {
		if got := len(received[id]); got != 5 {
			t.Errorf("node %d received %d commands, want 5 (%v)", id, got, received[id])
		}
	}
	// Deep nodes must actually sleep between slots.
	leaf := nodes[4]
	if dc := leaf.Radio.DutyCycle(); dc > 0.2 {
		t.Errorf("leaf duty cycle %.3f during dissemination-only workload, want sleeping", dc)
	}
	// Per-level pipeline: node 4 (level 4) receives command k at roughly
	// release + 4·30ms; its stats should show no late arrivals.
	if late := leaf.Diss.Stats().Late; late != 0 {
		t.Errorf("leaf saw %d late commands on an uncontended chain", late)
	}
}
