package node

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/core"
	"github.com/essat/essat/internal/geom"
	"github.com/essat/essat/internal/mac"
	"github.com/essat/essat/internal/phy"
	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/routing"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/topology"
)

// TestP2PEndToEnd runs a peer flow between two leaves of a Y-shaped tree
// (through their common ancestor) over the full stack with Safe Sleep.
func TestP2PEndToEnd(t *testing.T) {
	eng := sim.New(1)
	// 0 — 1 — {2, 3}: peers 2 and 3 communicate through node 1.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}, {X: 100, Y: 100}}
	topo, err := topology.FromPositions(pts, 125)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.BuildBFS(topo, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := phy.NewChannel(eng, topo, phy.DefaultConfig())

	spec := core.P2PSpec{
		ID:           -10,
		Src:          2,
		Dst:          3,
		Period:       time.Second,
		Phase:        300 * time.Millisecond,
		HopAllowance: 30 * time.Millisecond,
	}

	var consumed []int
	nodes := make(map[NodeID]*Node)
	for _, id := range tree.Members() {
		id := id
		n := New(eng, id, tree, ch,
			radio.Config{TurnOnDelay: time.Millisecond, TurnOffDelay: 500 * time.Microsecond},
			mac.DefaultConfig())
		ss := core.NewSafeSleep(eng, n.Radio, core.SafeSleepOptions{
			BreakEven: -1, WakeAhead: -1, MACBusy: n.MAC,
		})
		n.InstallSleep(ss)
		n.InstallAgent(core.NewDTS(n, ss), nil, query.DefaultConfig())
		n.InstallP2P(func(m *core.P2PMessage) {
			if id == 3 {
				consumed = append(consumed, m.Interval)
			}
		})
		nodes[id] = n
	}
	path := tree.Path(spec.Src, spec.Dst)
	if len(path) != 3 || path[1] != 1 {
		t.Fatalf("Path = %v, want [2 1 3]", path)
	}
	for _, id := range tree.Members() {
		if err := nodes[id].Peer.Register(spec, path); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run(5400 * time.Millisecond)

	// Messages k=0..5 released at 0.3s..5.3s; allow the last to be in
	// flight: at least 5 must have been consumed, in order.
	if len(consumed) < 5 {
		t.Fatalf("destination consumed %d messages, want >= 5 (%v)", len(consumed), consumed)
	}
	for i, k := range consumed {
		if k != i {
			t.Fatalf("consumption order broken: %v", consumed)
		}
	}
	// The root (node 0) is off the path: it must not relay and may sleep
	// essentially the whole time.
	if st := nodes[0].Peer.Stats(); st.Relayed != 0 || st.Consumed != 0 {
		t.Fatalf("off-path node participated: %+v", st)
	}
	// (The off-path root carries no expectations at all, so Safe Sleep
	// leaves its radio on — expectation-less nodes never self-schedule.)
	// The relay slept between slots too.
	if dc := nodes[1].Radio.DutyCycle(); dc > 0.2 {
		t.Errorf("relay duty %.3f, want mostly asleep", dc)
	}
	// Destination latency ≈ 2 hops × 30 ms + MAC time.
	st := nodes[3].Peer.Stats()
	mean := st.LatencySum / time.Duration(st.Consumed)
	if mean < 30*time.Millisecond || mean > 120*time.Millisecond {
		t.Errorf("mean p2p latency %v, want ~60ms for 2 slotted hops", mean)
	}
}

func TestP2PValidation(t *testing.T) {
	eng := sim.New(1)
	topo, _ := topology.FromPositions(geom.LinePlacement(3, 100), 125)
	tree, _ := routing.BuildBFS(topo, 0, 0)
	ch, _ := phy.NewChannel(eng, topo, phy.DefaultConfig())
	n := New(eng, 1, tree, ch, radio.Config{}, mac.DefaultConfig())
	n.InstallAgent(core.NewDTS(n, core.NewSafeSleep(eng, n.Radio, core.SafeSleepOptions{Disabled: true})), nil, query.DefaultConfig())
	p := n.InstallP2P(nil)

	good := core.P2PSpec{ID: -1, Src: 2, Dst: 0, Period: time.Second}
	if err := p.Register(core.P2PSpec{ID: -1, Src: 2, Dst: 2, Period: time.Second}, nil); err == nil {
		t.Error("src==dst accepted")
	}
	if err := p.Register(good, []NodeID{2}); err == nil {
		t.Error("truncated path accepted")
	}
	path := tree.Path(2, 0)
	if err := p.Register(good, path); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(good, path); err == nil {
		t.Error("duplicate flow accepted")
	}
}
