package node

import (
	"testing"
	"time"

	"github.com/essat/essat/internal/core"
	"github.com/essat/essat/internal/geom"
	"github.com/essat/essat/internal/mac"
	"github.com/essat/essat/internal/phy"
	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/routing"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/stats"
	"github.com/essat/essat/internal/topology"
)

// buildNet wires a full ESSAT network over the given positions with the
// DTS shaper, returning the nodes indexed by ID.
func buildNet(t *testing.T, pts []geom.Point, failureThreshold int) (*sim.Engine, *phy.Channel, *routing.Tree, map[NodeID]*Node, *stats.RootSink) {
	t.Helper()
	eng := sim.New(1)
	topo, err := topology.FromPositions(pts, 125)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.BuildBFS(topo, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := phy.NewChannel(eng, topo, phy.DefaultConfig())

	specs := []query.Spec{{ID: 1, Period: 500 * time.Millisecond, Phase: 100 * time.Millisecond, Class: 1}}
	sink := stats.NewRootSink(specs)

	nodes := make(map[NodeID]*Node)
	for _, id := range tree.Members() {
		n := New(eng, id, tree, ch, radio.Config{TurnOnDelay: time.Millisecond, TurnOffDelay: 500 * time.Microsecond}, mac.DefaultConfig())
		ss := core.NewSafeSleep(eng, n.Radio, core.SafeSleepOptions{
			BreakEven: -1, WakeAhead: -1, MACBusy: n.MAC,
		})
		n.InstallSleep(ss)
		var s query.Sink
		if id == tree.Root() {
			s = sink
		}
		cfg := query.DefaultConfig()
		cfg.FailureThreshold = failureThreshold
		n.InstallAgent(core.NewDTS(n, ss), s, cfg)
		nodes[id] = n
	}
	for _, spec := range specs {
		for _, id := range tree.Members() {
			if err := nodes[id].Agent.Register(spec); err != nil {
				t.Fatal(err)
			}
		}
	}
	return eng, ch, tree, nodes, sink
}

// meshPositions gives node 3 two possible parents (1 and 2) so recovery
// has somewhere to go:
//
//	0 —— 1 —— 3
//	 \—— 2 ——/
func meshPositions() []geom.Point {
	return []geom.Point{
		{X: 0, Y: 0},
		{X: 100, Y: 0},
		{X: 60, Y: 90},
		{X: 140, Y: 80},
	}
}

func TestEndToEndReportsReachRoot(t *testing.T) {
	eng, _, tree, _, sink := buildNet(t, meshPositions(), 0)
	eng.Run(5 * time.Second)
	if got := sink.ClosedIntervals(); got < 8 {
		t.Fatalf("root closed %d intervals in 5s at 2Hz, want >= 8", got)
	}
	if cov := sink.MeanCoverage(); cov < float64(tree.Size())-0.5 {
		t.Fatalf("coverage = %.2f, want ~%d (full tree)", cov, tree.Size())
	}
	lats := sink.Latencies()
	summary := stats.SummarizeDurations(lats)
	if summary.Mean <= 0 || summary.Mean > 100*time.Millisecond {
		t.Fatalf("mean latency = %v, implausible for a 2-hop tree", summary.Mean)
	}
}

func TestNodesActuallySleep(t *testing.T) {
	eng, _, tree, nodes, _ := buildNet(t, meshPositions(), 0)
	eng.Run(5 * time.Second)
	for id, n := range nodes {
		if id == tree.Root() {
			continue
		}
		if dc := n.Radio.DutyCycle(); dc > 0.5 {
			t.Errorf("node %d duty cycle %.2f, want < 0.5 under DTS-SS", id, dc)
		}
	}
}

func TestParentFailureRecovery(t *testing.T) {
	eng, ch, tree, nodes, sink := buildNet(t, meshPositions(), 3)
	if tree.Parent(3) != 1 {
		t.Fatalf("precondition: Parent(3) = %d, want 1", tree.Parent(3))
	}
	// Kill node 1 at 2s. Node 3 must re-parent under node 2; node 0 must
	// drop its dependency on node 1.
	eng.Schedule(2*time.Second, func() {
		nodes[1].Kill()
		ch.Disable(1)
	})
	eng.Run(12 * time.Second)

	if got := tree.Parent(3); got != 2 {
		t.Fatalf("Parent(3) = %d after recovery, want 2", got)
	}
	if tree.Alive(1) {
		t.Fatal("dead node still has live tree edges")
	}
	// Node 0 no longer waits for node 1: it can still sleep.
	if nodes[0].Killed() {
		t.Fatal("root killed?")
	}
	// Data keeps flowing end to end after recovery: count closures in the
	// last 4 seconds by re-measuring latencies (root closed intervals
	// throughout; coverage should recover to 3 of the surviving nodes).
	if cov := sink.MeanCoverage(); cov < 2 {
		t.Fatalf("mean coverage = %.2f, want >= 2 post-failure", cov)
	}
	// And the re-parented child's reports arrive: the root's aggregate in
	// steady state covers all 3 surviving nodes. Spot-check via node 2's
	// children.
	found := false
	for _, c := range tree.Children(2) {
		if c == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("node 3 not among node 2's children after recovery")
	}
}

func TestChildFailureCleansUpDependencies(t *testing.T) {
	eng, ch, tree, nodes, _ := buildNet(t, meshPositions(), 3)
	// Kill leaf 3: its parent (1) must stop waiting for it within a few
	// intervals and keep sleeping normally.
	eng.Schedule(2*time.Second, func() {
		nodes[3].Kill()
		ch.Disable(3)
	})
	eng.Run(10 * time.Second)
	for _, c := range tree.Children(1) {
		if c == 3 {
			t.Fatal("dead child still among node 1's children")
		}
	}
	// After cleanup node 1 must not be pinned awake by the stale child:
	// measure duty over the post-cleanup window.
	active0 := nodes[1].Radio.ActiveTime()
	eng.Run(15 * time.Second)
	duty := float64(nodes[1].Radio.ActiveTime()-active0) / float64(5*time.Second)
	if duty > 0.6 {
		t.Fatalf("node 1 duty %.2f after child failure cleanup, want sleeping", duty)
	}
}

func TestKillStopsTraffic(t *testing.T) {
	eng, ch, _, nodes, _ := buildNet(t, meshPositions(), 0)
	eng.Schedule(time.Second, func() {
		nodes[3].Kill()
		ch.Disable(3)
	})
	eng.Run(3 * time.Second)
	sent := nodes[3].MAC.Stats().Sent
	eng.Run(6 * time.Second)
	if got := nodes[3].MAC.Stats().Sent; got != sent {
		t.Fatalf("killed node kept transmitting: %d -> %d", sent, got)
	}
	if !nodes[3].Killed() {
		t.Fatal("Killed() = false")
	}
}

func TestEnvImplementation(t *testing.T) {
	eng, _, tree, nodes, _ := buildNet(t, meshPositions(), 0)
	n := nodes[1]
	if n.Self() != 1 || n.IsRoot() {
		t.Fatal("Self/IsRoot wrong")
	}
	if !nodes[0].IsRoot() {
		t.Fatal("root's IsRoot() = false")
	}
	if n.Rank() != tree.Rank(1) || n.MaxRank() != tree.MaxRank() {
		t.Fatal("rank accessors disagree with the tree")
	}
	if n.RankOf(3) != tree.Rank(3) {
		t.Fatal("RankOf disagrees with the tree")
	}
	if n.Now() != eng.Now() {
		t.Fatal("Now() disagrees with the engine")
	}
}

func TestPhaseRequestViaAckReachesShaper(t *testing.T) {
	// Two-node chain: 0 (root) — 1. Drive the MAC directly: node 1 sends
	// a report; during delivery the root attaches a phase request to the
	// ACK; node 1's shaper must see it.
	eng := sim.New(1)
	topo, err := topology.FromPositions(geom.LinePlacement(2, 100), 125)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.BuildBFS(topo, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := phy.NewChannel(eng, topo, phy.DefaultConfig())

	spec := query.Spec{ID: 1, Period: time.Second, Phase: 100 * time.Millisecond, Class: 1}
	nodes := make(map[NodeID]*Node)
	var shapers []*core.DTS
	for _, id := range tree.Members() {
		n := New(eng, id, tree, ch, radio.Config{}, mac.DefaultConfig())
		ss := core.NewSafeSleep(eng, n.Radio, core.SafeSleepOptions{Disabled: true})
		d := core.NewDTS(n, ss)
		n.InstallAgent(d, nil, query.DefaultConfig())
		nodes[id] = n
		shapers = append(shapers, d)
		if err := n.Agent.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	// When the root delivers node 1's first report, request a phase update
	// through the ACK path.
	requested := false
	eng.Schedule(50*time.Millisecond, func() {
		// Hook: wrap via a goroutine-free poll at delivery time is hard;
		// instead invoke the env method during the simulation via a timer
		// set right after the expected first report (100ms + MAC delay).
		_ = requested
	})
	eng.Schedule(150*time.Millisecond, func() {
		nodes[0].RequestPhaseUpdate(1, 1)
	})
	eng.Run(3 * time.Second)
	// Node 1's next report must have carried a phase update.
	if shapers[1].Stats().PhaseUpdatesSent == 0 {
		t.Fatal("phase request never forced an update on the child")
	}
}
