// Package node composes a full sensor-node stack: radio, CSMA/CA MAC,
// query agent, traffic shaper / Safe Sleep, and an optional power manager
// (for the SYNC/PSM baselines). It implements the dispatching between the
// layers, the core.Env context the ESSAT protocols need, and the node-side
// coordination of the §4.3 failure-recovery procedures.
package node

import (
	"time"

	"github.com/essat/essat/internal/core"
	"github.com/essat/essat/internal/mac"
	"github.com/essat/essat/internal/phy"
	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/routing"
	"github.com/essat/essat/internal/sim"
	"github.com/essat/essat/internal/trace"
)

// NodeID aliases the shared node identifier.
type NodeID = phy.NodeID

// JoinMsg is sent by a re-parenting node to its new parent so the parent
// adds the dependency ("the new parent adds a dependency on the node",
// §4.3).
type JoinMsg struct{}

// PowerManager is a baseline power-management policy driving the radio
// directly (SYNC, PSM). ESSAT protocols do not use one: Safe Sleep plays
// this role.
type PowerManager interface {
	// Name identifies the policy.
	Name() string
	// Start begins the policy's schedule at simulation time zero.
	Start()
}

// ReportGate is an optional PowerManager capability: intercepting report
// submissions so they can be buffered until the protocol's transfer
// window (PSM's ATIM announcement cycle).
type ReportGate interface {
	SubmitReport(dst NodeID, payload any, bytes int, cb func(ok bool))
}

// ControlSink is an optional PowerManager capability: receiving the power
// manager's own control traffic (PSM's ATIM announcements).
type ControlSink interface {
	HandleControl(src NodeID, msg any)
}

// Node is one sensor node's full stack.
type Node struct {
	id   NodeID
	eng  *sim.Engine
	tree *routing.Tree

	Radio *radio.Radio
	MAC   *mac.MAC
	Agent *query.Agent
	SS    *core.SafeSleep    // nil for baseline power managers
	PM    PowerManager       // nil for ESSAT protocols
	Diss  *core.Disseminator // nil unless InstallDisseminator was called
	Peer  *core.P2P          // nil unless InstallP2P was called

	gate   ReportGate
	ctrl   ControlSink
	tracer *trace.Tracer
	killed bool
}

var _ mac.Upper = (*Node)(nil)
var _ mac.AckInfoSink = (*Node)(nil)
var _ query.Host = (*Node)(nil)
var _ core.Env = (*Node)(nil)
var _ core.DisseminationEnv = (*Node)(nil)

// New builds the bottom half of a node (radio + MAC) attached to the
// channel. InstallAgent must be called before the simulation starts.
func New(eng *sim.Engine, id NodeID, tree *routing.Tree, ch *phy.Channel, radioCfg radio.Config, macCfg mac.Config) *Node {
	n := sim.ArenaGrab[Node](eng, "node.node")
	*n = Node{id: id, eng: eng, tree: tree}
	n.Radio = radio.New(eng, radioCfg)
	n.MAC = mac.New(eng, ch, id, n.Radio, macCfg, n)
	return n
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// SetTracer attaches a structured event tracer recording this node's
// radio transitions and recovery actions. Pass before the run starts.
func (n *Node) SetTracer(tr *trace.Tracer) {
	n.tracer = tr
	if !tr.Enabled() {
		return
	}
	n.Radio.Subscribe(func(old, new radio.State) {
		switch {
		case new == radio.Off:
			tr.Record(n.id, trace.RadioSleep, "")
		case new == radio.Idle && (old == radio.TurningOn || old == radio.Off):
			tr.Record(n.id, trace.RadioWake, "")
		}
	})
}

// InstallSleep attaches a Safe Sleep scheduler and wires the MAC-drained
// notification into its state check.
func (n *Node) InstallSleep(ss *core.SafeSleep) {
	n.SS = ss
	n.MAC.SetIdleSink(ss)
}

// InstallAgent creates the query agent with the given shaper. sink is
// non-nil only at the root. The node itself is the agent's Host (send
// path + failure handlers) and the MAC's AckInfoSink, so the wiring
// allocates nothing per node.
func (n *Node) InstallAgent(shaper query.Shaper, sink query.Sink, cfg query.Config) {
	n.Agent = query.NewAgent(n.eng, n.id, n.tree, shaper, n, sink, cfg)
}

// AckInfo implements mac.AckInfoSink: information piggybacked on
// received ACKs (DTS phase requests) routes to the shaper.
func (n *Node) AckInfo(from NodeID, info any) {
	if !n.killed {
		n.Agent.HandleControl(from, info)
	}
}

// InstallDisseminator attaches the downstream dissemination handler
// (the §3 extension). deliver may be nil.
func (n *Node) InstallDisseminator(deliver func(*core.Command)) *core.Disseminator {
	n.Diss = core.NewDisseminator(n.eng, n, n.SS, func() int { return n.tree.Level(n.id) }, deliver)
	return n.Diss
}

// InstallP2P attaches the peer-to-peer flow handler (the §3 extension).
// deliver may be nil.
func (n *Node) InstallP2P(deliver func(*core.P2PMessage)) *core.P2P {
	n.Peer = core.NewP2P(n.eng, n, n.SS, deliver)
	return n.Peer
}

// InstallPM attaches a baseline power manager, discovering its optional
// gate and control capabilities.
func (n *Node) InstallPM(pm PowerManager) {
	n.PM = pm
	n.gate, _ = pm.(ReportGate)
	n.ctrl, _ = pm.(ControlSink)
}

// Start boots the power manager (if any). ESSAT nodes need no start: Safe
// Sleep acts on the shaper's first expectations.
func (n *Node) Start() {
	if n.PM != nil {
		n.PM.Start()
	}
}

// Kill silences the node: the agent stops producing and the stack ignores
// all future traffic. The caller is responsible for disabling the node on
// the channel (phy.Channel.Disable) so it also stops radiating.
func (n *Node) Kill() {
	n.killed = true
	if n.Agent != nil {
		n.Agent.Stop()
	}
}

// Killed reports whether the node is currently dead (killed or crashed
// and not yet recovered).
func (n *Node) Killed() bool { return n.killed }

// Crash silences the node like Kill, but recoverably: Recover undoes it.
// The caller is responsible for suspending the node on the channel
// (phy.Channel.Suspend), which also takes the radio hardware down.
func (n *Node) Crash() {
	n.killed = true
	if n.Agent != nil {
		n.Agent.Stop()
	}
	n.tracer.Recordf(n.id, trace.NodeFailed, "crashed")
}

// Recover brings a crashed node back: the stack accepts traffic again,
// the radio is woken, and the agent restarts its query intervals at the
// next boundary. The caller must have resumed the node on the channel
// (phy.Channel.Resume) first, or the wake-up is ignored.
func (n *Node) Recover() {
	if !n.killed {
		return
	}
	n.killed = false
	n.Radio.TurnOn()
	if n.Agent != nil {
		n.Agent.Resume()
	}
	n.tracer.Recordf(n.id, trace.Recovered, "recovered")
}

// SendReport implements query.Host, routing agent reports through the
// power manager's gate when one is installed.
func (n *Node) SendReport(dst NodeID, payload any, bytes int, cb func(ok bool)) {
	if n.killed {
		return
	}
	if n.gate != nil {
		n.gate.SubmitReport(dst, payload, bytes, cb)
		return
	}
	n.MAC.Send(dst, payload, bytes, cb)
}

// Deliver implements mac.Upper, dispatching received payloads to the
// query agent, the shaper, or the power manager.
func (n *Node) Deliver(src NodeID, payload any, bytes int) {
	if n.killed {
		return
	}
	switch msg := payload.(type) {
	case *query.Report:
		n.Agent.HandleReport(src, msg)
	case JoinMsg:
		n.Agent.ChildAdded(src)
	case core.PhaseRequest:
		n.Agent.HandleControl(src, msg)
	case *core.Command:
		if n.Diss != nil {
			n.Diss.HandleCommand(src, msg)
		}
	case *core.P2PMessage:
		if n.Peer != nil {
			n.Peer.HandleMessage(src, msg)
		}
	default:
		if n.ctrl != nil {
			n.ctrl.HandleControl(src, msg)
		}
	}
}

// --- core.Env --------------------------------------------------------------

// Now implements core.Env.
func (n *Node) Now() time.Duration { return n.eng.Now() }

// Self implements core.Env.
func (n *Node) Self() query.NodeID { return n.id }

// IsRoot implements core.Env.
func (n *Node) IsRoot() bool { return n.tree.Root() == n.id }

// Rank implements core.Env.
func (n *Node) Rank() int { return n.tree.Rank(n.id) }

// RankOf implements core.Env.
func (n *Node) RankOf(other query.NodeID) int { return n.tree.Rank(other) }

// MaxRank implements core.Env.
func (n *Node) MaxRank() int { return n.tree.MaxRank() }

// SendControl implements core.Env.
func (n *Node) SendControl(dst query.NodeID, msg any, bytes int) {
	if n.killed {
		return
	}
	n.MAC.Send(dst, msg, bytes, nil)
}

// RequestPhaseUpdate implements core.Env: piggyback the request on the
// acknowledgement of the report currently being delivered when possible,
// otherwise send an explicit control packet (§4.3).
func (n *Node) RequestPhaseUpdate(child query.NodeID, q query.ID) {
	if n.killed {
		return
	}
	req := core.PhaseRequest{Query: q}
	if n.MAC.AttachToAck(child, req) {
		return
	}
	n.MAC.Send(child, req, core.ControlBytes, nil)
}

// Children implements core.DisseminationEnv.
func (n *Node) Children() []query.NodeID { return n.tree.Children(n.id) }

// SendData implements core.DisseminationEnv.
func (n *Node) SendData(dst query.NodeID, payload any, bytes int, cb func(ok bool)) {
	if n.killed {
		return
	}
	n.MAC.Send(dst, payload, bytes, cb)
}

// --- §4.3 failure recovery --------------------------------------------------

// ChildFailed implements query.Host: the agent's failure detector
// declared a child dead (repeated missed reports). Remove the dependency
// and the stale expected times, and mark the node dead in the shared
// tree so nobody re-parents onto it.
func (n *Node) ChildFailed(child NodeID) {
	n.tracer.Recordf(n.id, trace.NodeFailed, "child %d declared dead", child)
	n.tree.MarkDead(child)
	n.Agent.ChildRemoved(child)
}

// ParentFailed implements query.Host: repeated transmissions to the
// parent failed. Pick a new parent (lowest-level live neighbor), update
// the tree, and announce ourselves with a Join so the new parent adds
// the dependency.
func (n *Node) ParentFailed() {
	old := n.tree.Parent(n.id)
	np := n.tree.FindNewParent(n.id, old)
	if np == routing.None {
		return // disconnected: keep trying the old parent
	}
	if err := n.tree.Reparent(n.id, np); err != nil {
		return
	}
	n.tracer.Recordf(n.id, trace.Reparented, "from %d to %d", old, np)
	n.Agent.ParentChanged()
	n.MAC.Send(np, JoinMsg{}, core.ControlBytes, nil)
}
