package essat_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// TestExamplesSmoke builds and runs every program under examples/, so
// `go test ./...` catches example rot (API drift, scenario files they
// depend on, panics mid-demo). Each example is a deterministic
// simulation that must exit 0. Skipped under -short: the race-detector
// CI job runs -short and the examples re-run every simulation.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}

	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		t.Fatal("no examples found")
	}

	bin := t.TempDir()
	for _, dir := range dirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			exe := filepath.Join(bin, dir)
			build := exec.Command("go", "build", "-o", exe, "./examples/"+dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			cmd := exec.Command(exe)
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				out, runErr = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatalf("example %s hung", dir)
			}
			if runErr != nil {
				t.Fatalf("run failed: %v\n%s", runErr, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", dir)
			}
		})
	}
}
