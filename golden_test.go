package essat_test

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"github.com/essat/essat"
)

// updateGolden regenerates testdata/golden.json instead of comparing
// against it:
//
//	go test . -run TestGoldenTraceDigests -update-golden
//
// Regenerate ONLY when an intentional behavior change is being made,
// and say so in the commit message: these digests are the semantic
// safety net over the whole stack (scheduler pops, every transmission
// and delivery, every radio transition, every root report). A digest
// change means the simulation executed a different event trace.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current implementation")

const goldenPath = "testdata/golden.json"

// goldenRun is one pinned scenario in the golden suite.
type goldenRun struct {
	label string
	build func(t *testing.T) essat.Scenario
}

// goldenSuite pins scaled-down versions of the fig3 and fig6 grids
// (same scenario construction as the figure drivers, 20-second runs,
// seed 1) plus the two checked-in scenario files. Every run executes
// under the full invariant audit; the digest is the auditor's canonical
// trace hash.
func goldenSuite() map[string][]goldenRun {
	figScenario := func(p essat.Protocol, rate float64) func(*testing.T) essat.Scenario {
		return func(*testing.T) essat.Scenario {
			sc := essat.DefaultScenario(p, 1)
			sc.Duration = 20 * time.Second
			// The figure drivers' workload convention: phase rng seeded
			// with seed × 7919.
			sc.Queries = essat.QueryClasses(rand.New(rand.NewSource(7919)), rate, 1, 10*time.Second)
			return sc
		}
	}
	fromFile := func(path string, duration time.Duration) func(*testing.T) essat.Scenario {
		return func(t *testing.T) essat.Scenario {
			spec, err := essat.LoadSpec(path)
			if err != nil {
				t.Fatal(err)
			}
			if duration > 0 {
				spec.Duration = essat.Dur(duration)
			}
			sc, err := spec.Scenario()
			if err != nil {
				t.Fatal(err)
			}
			return sc
		}
	}

	suite := map[string][]goldenRun{}
	fig3Protos := []essat.Protocol{essat.DTSSS, essat.STSSS, essat.NTSSS, essat.PSM, essat.SPAN}
	fig6Protos := append(append([]essat.Protocol(nil), fig3Protos...), essat.SYNC)
	for _, rate := range []float64{1, 5} {
		for _, p := range fig3Protos {
			suite["fig3"] = append(suite["fig3"], goldenRun{
				label: string(p) + "/rate=" + strconv.Itoa(int(rate)),
				build: figScenario(p, rate),
			})
		}
		for _, p := range fig6Protos {
			suite["fig6"] = append(suite["fig6"], goldenRun{
				label: string(p) + "/rate=" + strconv.Itoa(int(rate)),
				build: figScenario(p, rate),
			})
		}
	}
	suite["example.json"] = []goldenRun{{label: "as-checked-in", build: fromFile("testdata/example.json", 0)}}
	// The 1000-node tier, shortened exactly like the CI smoke run.
	suite["large.json"] = []goldenRun{{label: "5s-smoke", build: fromFile("testdata/large.json", 5*time.Second)}}
	// The 10000-node tier, shortened exactly like its CI smoke run. Five
	// simulated seconds is past the first query phases, so real traffic
	// (tens of thousands of frames across a rank-~47 tree) is pinned.
	suite["huge.json"] = []goldenRun{{label: "5s-smoke", build: fromFile("testdata/huge.json", 5*time.Second)}}
	// The lossy-channel tier: log-normal shadowing links on CC2420
	// hardware, pinning the gray-zone delivery draws, the widened
	// candidate graph, the flood retry rounds, and the profile-derived
	// break-even time.
	suite["shadowing.json"] = []goldenRun{{label: "as-checked-in", build: fromFile("testdata/shadowing.json", 0)}}
	return suite
}

// TestDiscModelMatchesLegacy pins the refactor's central promise: the
// explicit default models ("disc" propagation, "paper" energy profile)
// execute the exact event trace the hardwired pre-refactor path did.
// The golden digests were recorded before the model registries existed,
// so a match here proves the hooks are behavior-preserving, not merely
// self-consistent.
func TestDiscModelMatchesLegacy(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var golden map[string]map[string]string
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	for _, p := range []essat.Protocol{essat.DTSSS, essat.STSSS, essat.NTSSS, essat.PSM, essat.SPAN} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			t.Parallel()
			want := golden["fig3"][string(p)+"/rate=1"]
			if want == "" {
				t.Fatalf("no golden digest for %s", p)
			}
			sc := essat.DefaultScenario(p, 1)
			sc.Duration = 20 * time.Second
			sc.Queries = essat.QueryClasses(rand.New(rand.NewSource(7919)), 1, 1, 10*time.Second)
			sc.Propagation = "disc"
			sc.RadioProfile = "paper"
			sc.Audit = true
			res, err := essat.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Audit.Digest != want {
				t.Errorf("explicit disc+paper digest %s != legacy golden %s", res.Audit.Digest, want)
			}
		})
	}
}

// TestGoldenTraceDigests executes every pinned scenario under the
// invariant auditor and compares its trace digest against
// testdata/golden.json. A mismatch means a behavior change somewhere in
// the stack: either find the regression, or — for an intentional
// change — regenerate with -update-golden and justify it in the PR.
func TestGoldenTraceDigests(t *testing.T) {
	var golden map[string]map[string]string
	if !*updateGolden {
		data, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
		}
		if err := json.Unmarshal(data, &golden); err != nil {
			t.Fatal(err)
		}
	}

	got := map[string]map[string]string{}
	for name, runs := range goldenSuite() {
		got[name] = map[string]string{}
		for _, gr := range runs {
			sc := gr.build(t)
			sc.Audit = true
			res, err := essat.Run(sc)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, gr.label, err)
			}
			if res.Audit.Total != 0 {
				t.Errorf("%s/%s: %d invariant violations, first: %s",
					name, gr.label, res.Audit.Total, res.Audit.Violations[0])
			}
			got[name][gr.label] = res.Audit.Digest
		}
	}

	if *updateGolden {
		// Diff against the previous file first: -update-golden's log must
		// say exactly which digests an intentional change moved, so the
		// commit can justify each one (and an accidental full rewrite is
		// obvious immediately).
		prev := map[string]map[string]string{}
		if data, err := os.ReadFile(goldenPath); err == nil {
			if err := json.Unmarshal(data, &prev); err != nil {
				t.Logf("existing %s is unreadable (%v); treating every digest as new", goldenPath, err)
			}
		}
		changed := 0
		for name, runs := range got {
			for label, digest := range runs {
				switch old := prev[name][label]; {
				case old == "":
					changed++
					t.Logf("new digest   %s/%s: %s", name, label, digest)
				case old != digest:
					changed++
					t.Logf("changed      %s/%s: %s -> %s", name, label, old, digest)
				}
			}
		}
		for name, runs := range prev {
			for label := range runs {
				if _, ok := got[name][label]; !ok {
					changed++
					t.Logf("removed      %s/%s (was %s)", name, label, prev[name][label])
				}
			}
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(goldenPath, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d suites (%d digests added/changed/removed)", goldenPath, len(got), changed)
		return
	}

	for name, runs := range got {
		want, ok := golden[name]
		if !ok {
			t.Errorf("suite %q missing from %s (regenerate with -update-golden)", name, goldenPath)
			continue
		}
		for label, digest := range runs {
			if want[label] == "" {
				t.Errorf("%s/%s missing from %s (regenerate with -update-golden)", name, label, goldenPath)
			} else if digest != want[label] {
				t.Errorf("%s/%s: trace digest %s, golden %s — the simulation behaves differently",
					name, label, digest, want[label])
			}
		}
		for label := range want {
			if _, ok := runs[label]; !ok {
				t.Errorf("%s/%s in %s but not generated by the suite", name, label, goldenPath)
			}
		}
	}
}

// TestGoldenAuditPurity pins the companion guarantee the digests rely
// on: enabling the auditor does not change the run. The example
// scenario is executed with and without the auditor and every metric
// must match exactly.
func TestGoldenAuditPurity(t *testing.T) {
	spec, err := essat.LoadSpec("testdata/example.json")
	if err != nil {
		t.Fatal(err)
	}
	scPlain, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	scPlain.Audit = false
	scAudited := scPlain
	scAudited.Audit = true

	plain, err := essat.Run(scPlain)
	if err != nil {
		t.Fatal(err)
	}
	audited, err := essat.Run(scAudited)
	if err != nil {
		t.Fatal(err)
	}
	if audited.Audit == nil {
		t.Fatal("audited run has no summary")
	}
	audited.Audit = nil
	pj, _ := json.Marshal(plain)
	aj, _ := json.Marshal(audited)
	if string(pj) != string(aj) {
		t.Fatalf("auditor changed the run:\nplain   %s\naudited %s", pj, aj)
	}
}
