// Package essat is a faithful Go reproduction of "Efficient Power
// Management based on Application Timing Semantics for Wireless Sensor
// Networks" (Chipara, Lu, Roman — WUCSE-2004-26 / ICDCS 2005).
//
// ESSAT (Efficient Sleep Scheduling based on Application Timing) pairs a
// local just-in-time sleep scheduler, Safe Sleep, with an in-network
// traffic shaper that gives multi-hop query traffic predictable timing:
//
//   - NTS-SS: no shaping — forward greedily, wake everyone at period
//     boundaries. No delay penalty; energy grows linearly with tree rank.
//   - STS-SS: static shaping — pace transmissions by tree rank over an
//     assigned deadline D, with local deadline l = D/M.
//   - DTS-SS: dynamic shaping — Release-Guard-style self-tuning schedules
//     with piggybacked phase updates; the paper's headline protocol.
//
// The package bundles everything the paper's evaluation needs: a
// deterministic discrete-event simulator, a unit-disc wireless channel
// with collisions, a CSMA/CA (802.11 DCF style) MAC, flood-built
// aggregation trees, a periodic query service, the SPAN / PSM / SYNC
// baselines, and one driver per figure of the paper.
//
// # Quick start
//
// Declaratively, from a JSON-serializable spec (protocols and topology
// generators are named registry entries — see AllProtocols and
// TopologyGenerators):
//
//	res, err := essat.RunSpec(&essat.Spec{
//		Protocol: "DTS-SS",
//		Topology: "grid",
//		Duration: essat.Dur(60 * time.Second),
//		Workload: &essat.Workload{BaseRate: 1.0, PerClass: 1},
//	})
//	// res.DutyCycle, res.Latency, ...
//
// or imperatively, with full control over every Scenario knob:
//
//	sc := essat.DefaultScenario(essat.DTSSS, 1)
//	sc.Queries = essat.QueryClasses(rand.New(rand.NewSource(1)), 1.0, 1, 10*time.Second)
//	res, err := essat.Run(sc)
//
// See ARCHITECTURE.md for the layer stack and how to register new
// protocols or topology generators, examples/ for runnable programs,
// and cmd/essat-bench for the full figure suite. The figure drivers
// execute their (protocol, parameter, seed) grids on a bounded worker
// pool with deterministic aggregation — output is byte-identical for
// any worker count; see BENCHMARKS.md for the benchmark workflow and
// the BENCH_*.json throughput format.
package essat

import (
	"context"
	"io"
	"math/rand"
	"time"

	"github.com/essat/essat/internal/check"
	"github.com/essat/essat/internal/core"
	"github.com/essat/essat/internal/dynamics"
	"github.com/essat/essat/internal/experiment"
	"github.com/essat/essat/internal/phy"
	"github.com/essat/essat/internal/protocol"
	"github.com/essat/essat/internal/query"
	"github.com/essat/essat/internal/radio"
	"github.com/essat/essat/internal/stats"
	"github.com/essat/essat/internal/topology"
)

// Protocol selects a power-management protocol by its registry name.
type Protocol = protocol.Protocol

// The implemented protocols: the three ESSAT variants and the paper's
// three baselines (single source of truth: the internal/protocol
// registry).
const (
	// NTSSS is Safe Sleep without traffic shaping (§4.2.1).
	NTSSS = protocol.NTSSS
	// STSSS is Safe Sleep with the static traffic shaper (§4.2.2).
	STSSS = protocol.STSSS
	// DTSSS is Safe Sleep with the dynamic traffic shaper (§4.2.3).
	DTSSS = protocol.DTSSS
	// SPAN keeps a backbone of non-leaf tree nodes always on; leaves run
	// NTS-SS (the paper's §5 configuration of SPAN).
	SPAN = protocol.SPAN
	// PSM is IEEE 802.11 power-save with traffic advertisements.
	PSM = protocol.PSM
	// SYNC is a synchronized fixed 20% duty cycle.
	SYNC = protocol.SYNC
	// TMAC is the adaptive-active-window baseline from the paper's
	// related-work discussion (van Dam & Langendoen, reference [12]).
	TMAC = protocol.TMAC
)

// AllProtocols lists every registered protocol in presentation order.
func AllProtocols() []Protocol { return protocol.All() }

// TopologyGenerators lists every registered placement generator
// ("uniform", "grid", "clusters", "corridor", ...); select one via
// Spec.Topology or Scenario.Topology.Generator.
func TopologyGenerators() []string { return topology.GeneratorNames() }

// ChannelModels lists every registered channel propagation model
// ("disc", "shadowing", "dual-disc", ...); select one via Spec.Channel
// or Scenario.Propagation. The default disc model is the paper's
// unit-disc channel.
func ChannelModels() []string { return phy.PropagationNames() }

// RadioProfiles lists every registered radio energy profile ("paper",
// "cc1000", "cc2420", ...); select one via Spec.Radio or
// Scenario.RadioProfile. The default paper profile is the ESSAT
// paper's §4.1 cost model.
func RadioProfiles() []string { return radio.ProfileNames() }

// EnergyProfile bundles one radio hardware's energy model (per-state
// power, transition latencies, derived break-even time).
type EnergyProfile = radio.EnergyProfile

// LookupRadioProfile returns the energy profile registered under name.
func LookupRadioProfile(name string) (EnergyProfile, bool) { return radio.LookupProfile(name) }

// TopologyConfig describes a deployment: scale plus placement
// generator; it is the type of Scenario.Topology.
type TopologyConfig = topology.Config

// QuerySpec describes one periodic query: period P, start phase φ, and a
// class label for result grouping.
type QuerySpec = query.Spec

// QueryID identifies a query.
type QueryID = query.ID

// Scenario fully describes one simulation run; see DefaultScenario.
type Scenario = experiment.Scenario

// Result aggregates one run's metrics.
type Result = experiment.Result

// Failure schedules a node death for robustness experiments.
type Failure = experiment.Failure

// DisseminationSpec describes a periodic root-to-leaves flow (the §3
// "data dissemination" extension); assign it to Scenario.Dissemination.
// Flow IDs must be disjoint from query IDs (negative IDs work well).
type DisseminationSpec = core.DisseminationSpec

// P2PSpec describes a periodic peer-to-peer flow routed through the tree
// (the §3 "peer-to-peer communication" extension); assign it to
// Scenario.PeerFlows. Flow IDs must be disjoint from query and
// dissemination IDs.
type P2PSpec = core.P2PSpec

// QueryStop deregisters a query mid-run (workload adaptation); assign it
// to Scenario.QueryStops.
type QueryStop = experiment.QueryStop

// Dynamic is one configured fault/load injector (node crash/recovery,
// per-link loss ramp, traffic burst); assign it to Scenario.Dynamics.
type Dynamic = experiment.Dynamic

// DynamicsParams parameterizes a dynamics injector.
type DynamicsParams = dynamics.Params

// DynamicsKinds lists every registered fault/load injector kind
// ("crash", "linkloss", "burst", ...) in presentation order.
func DynamicsKinds() []string { return dynamics.Kinds() }

// AuditSummary is the invariant auditor's report: the canonical trace
// digest, the audited event count, and any invariant violations. It is
// attached to Result.Audit when Scenario.Audit (or Spec.Audit) is set.
type AuditSummary = check.Summary

// AuditViolation is one observed invariant breach.
type AuditViolation = check.Violation

// Figure is a reproduced table/figure ready to print.
type Figure = experiment.Figure

// Options scales the figure drivers (run duration, seeds, node count).
type Options = experiment.Options

// DefaultScenario returns the paper's §5 experimental setup (80 nodes in
// 500×500 m², 125 m range, flood-built tree within 300 m of the central
// root, MICA2-like radio, 200 s run) for the given protocol and seed.
// Queries must still be assigned; see QueryClasses.
func DefaultScenario(p Protocol, seed int64) Scenario {
	return experiment.DefaultScenario(p, seed)
}

// Run executes a scenario and returns its metrics.
func Run(sc Scenario) (*Result, error) { return experiment.Run(sc) }

// Budget bounds one run's resource consumption (wall-clock time, event
// count); the zero value is unlimited. See RunContext.
type Budget = experiment.Budget

// BudgetExceededError reports a run terminated by its Budget.
type BudgetExceededError = experiment.BudgetExceededError

// PanicError reports a run whose protocol stack panicked mid-flight,
// contained at the RunContext boundary. It carries the protocol, seed,
// stack, and (for spec runs) the spec JSON — everything needed to
// reproduce the crash.
type PanicError = experiment.PanicError

// RunContext is Run with cancellation, a resource budget, and panic
// containment: the run stops early when ctx is done or the budget runs
// out (returning ctx.Err() or a *BudgetExceededError), and a panicking
// protocol stack is returned as a *PanicError instead of unwinding into
// the caller. With a background context and zero budget it is exactly
// Run.
func RunContext(ctx context.Context, sc Scenario, b Budget) (*Result, error) {
	return experiment.RunContext(ctx, sc, b)
}

// RunSpecContext compiles and runs a declarative spec under ctx and the
// budget; a contained panic's error carries the marshaled spec.
func RunSpecContext(ctx context.Context, s *Spec, b Budget) (*Result, error) {
	return experiment.RunSpecContext(ctx, s, b)
}

// Sim is a fully built scenario paused at time zero; see Build.
type Sim = experiment.Sim

// Build constructs a scenario's simulation without running it, for
// callers that want to inspect or instrument the stack between the
// explicit build → simulate → collect stages:
//
//	s, err := essat.Build(sc)
//	s.Simulate()
//	res := s.Collect()
func Build(sc Scenario) (*Sim, error) { return experiment.Build(sc) }

// Spec is the declarative, JSON-serializable description of one
// scenario; see RunSpec, LoadSpec, and the Spec field docs.
type Spec = experiment.Spec

// Workload generates the paper's three-class workload from a Spec.
type Workload = experiment.WorkloadSpec

// FailureSpec, QueryStopSpec, FlowSpec, DynamicsSpec, ChannelSpec and
// RadioSpec are the Spec forms of failures, query stops,
// dissemination/peer flows, dynamics injectors, the channel propagation
// model, and the radio energy profile.
type (
	FailureSpec   = experiment.FailureSpec
	QueryStopSpec = experiment.QueryStopSpec
	FlowSpec      = experiment.FlowSpec
	DynamicsSpec  = experiment.DynamicsSpec
	ChannelSpec   = experiment.ChannelSpec
	RadioSpec     = experiment.RadioSpec
)

// ParallelismSpec is the Spec form of the sharded parallel engine:
// shard count and optional lookahead override. See the "Parallel event
// loop" section of ARCHITECTURE.md.
type ParallelismSpec = experiment.ParallelismSpec

// ResultsSpec and SinkSpec are the Spec forms of the results pipeline:
// a list of metric sinks from the stats registry observing the run,
// whose records land in Result.Records.
type (
	ResultsSpec = experiment.ResultsSpec
	SinkSpec    = experiment.SinkSpec
)

// SinkChoice is the Scenario form of one attached metric sink.
type SinkChoice = experiment.SinkChoice

// MetricRecord is one metric sink's structured output for one run —
// the mergeable unit the server returns, the campaign journals, and
// JSONL exports carry one-per-line.
type MetricRecord = stats.Record

// MetricSchemaVersion is the version stamped into every MetricRecord.
const MetricSchemaVersion = stats.SchemaVersion

// MetricSinks lists every registered metric sink in presentation order.
func MetricSinks() []string { return stats.SinkNames() }

// MetricSinkBuilder constructs a metric sink for one run.
type MetricSinkBuilder = stats.SinkBuilder

// LookupMetricSink returns the sink builder registered under name.
func LookupMetricSink(name string) (MetricSinkBuilder, bool) { return stats.LookupSink(name) }

// ValidateMetricRecord checks a record against the versioned schema:
// correct version, named sink, a known kind, and a payload consistent
// with that kind.
func ValidateMetricRecord(r *MetricRecord) error { return stats.ValidateRecord(r) }

// Duration is the JSON-friendly duration used throughout Spec; it
// marshals as a Go duration string ("250ms").
type Duration = experiment.Duration

// Dur converts a time.Duration to the Spec form.
func Dur(d time.Duration) Duration { return experiment.Dur(d) }

// ParseSpec decodes a JSON spec, rejecting unknown fields.
func ParseSpec(data []byte) (*Spec, error) { return experiment.ParseSpec(data) }

// LoadSpec reads and decodes a JSON spec file.
func LoadSpec(path string) (*Spec, error) { return experiment.LoadSpec(path) }

// RunSpec compiles and runs a declarative spec.
func RunSpec(s *Spec) (*Result, error) { return experiment.RunSpec(s) }

// Arena is reusable per-run state for repeated scenario execution: one
// engine whose event freelist and typed memory pools are reset — not
// freed — between runs, plus an optional shared deployment cache.
// Results are byte-identical with or without one; an arena changes
// where memory comes from, never what a run computes. Single-threaded:
// use one Arena per goroutine, sharing a DeployCache.
type Arena = experiment.Arena

// DeployCache is a bounded, concurrency-safe LRU cache of built
// deployments (topology + routing-tree template) keyed by the scenario
// fields that determine placement.
type DeployCache = experiment.DeployCache

// NewArena returns an arena without a deployment cache.
func NewArena() *Arena { return experiment.NewArena() }

// NewArenaWithCache returns an arena serving deployments from cache;
// several arenas may share one cache.
func NewArenaWithCache(c *DeployCache) *Arena { return experiment.NewArenaWithCache(c) }

// NewDeployCache returns a deployment cache bounded to max entries
// (<= 0 selects the default size).
func NewDeployCache(max int) *DeployCache { return experiment.NewDeployCache(max) }

// BuildWith is Build executing on a reusable arena.
func BuildWith(a *Arena, sc Scenario) (*Sim, error) { return experiment.BuildWith(a, sc) }

// RunWith is Run executing on a reusable arena; a nil arena is plain Run.
func RunWith(a *Arena, sc Scenario) (*Result, error) { return experiment.RunWith(a, sc) }

// RunSpecWith compiles and runs a declarative spec on a reusable arena.
func RunSpecWith(a *Arena, s *Spec) (*Result, error) { return experiment.RunSpecWith(a, s) }

// FigureInfo names one figure driver; see FigureCatalog.
type FigureInfo = experiment.FigureInfo

// FigureCatalog lists every figure and study driver in presentation
// order (the IDs accepted by essat-bench -fig).
func FigureCatalog() []FigureInfo { return experiment.FigureCatalog() }

// QueryClasses builds the paper's three-class workload with rate ratio
// Q1:Q2:Q3 = 6:3:2, Q1 at baseRate Hz, perClass queries per class, and
// random start phases in [0, phaseMax).
func QueryClasses(rng *rand.Rand, baseRate float64, perClass int, phaseMax time.Duration) []QuerySpec {
	return experiment.QueryClasses(rng, baseRate, perClass, phaseMax)
}

// PaperOptions reproduces the paper's full experimental setting
// (200-second runs, 5 seeds per point, 80 nodes).
func PaperOptions() Options { return experiment.PaperOptions() }

// QuickOptions is a scaled-down setting for exploration and CI.
func QuickOptions() Options { return experiment.QuickOptions() }

// Fig2Deadline regenerates Figure 2 (STS deadline sweep). A nil deadlines
// slice selects the paper's sweep range.
func Fig2Deadline(o Options, deadlines []time.Duration) (*Figure, error) {
	return experiment.Fig2Deadline(o, deadlines)
}

// Fig3DutyVsRate regenerates Figure 3 (duty cycle vs base rate).
func Fig3DutyVsRate(o Options, rates []float64) (*Figure, error) {
	return experiment.Fig3DutyVsRate(o, rates)
}

// Fig4DutyVsQueries regenerates Figure 4 (duty cycle vs queries/class).
func Fig4DutyVsQueries(o Options, counts []int) (*Figure, error) {
	return experiment.Fig4DutyVsQueries(o, counts)
}

// Fig5DutyByRank regenerates Figure 5 (duty cycle distribution by rank).
func Fig5DutyByRank(o Options) (*Figure, error) {
	return experiment.Fig5DutyByRank(o)
}

// Fig6LatencyVsRate regenerates Figure 6 (query latency vs base rate).
func Fig6LatencyVsRate(o Options, rates []float64) (*Figure, error) {
	return experiment.Fig6LatencyVsRate(o, rates)
}

// Fig7LatencyVsQueries regenerates Figure 7 (latency vs queries/class).
func Fig7LatencyVsQueries(o Options, counts []int) (*Figure, error) {
	return experiment.Fig7LatencyVsQueries(o, counts)
}

// Fig8SleepHistogram regenerates Figure 8 (sleep-interval histogram at
// TBE=0) and returns the percentage of sleeps shorter than 2.5 ms per
// ESSAT protocol (DTS, STS, NTS), the number the paper reads off it.
func Fig8SleepHistogram(o Options) (*Figure, []float64, error) {
	return experiment.Fig8SleepHistogram(o)
}

// Fig9BreakEven regenerates Figure 9 (DTS-SS duty cycle vs rate for
// Safe Sleep break-even times of 0, 2.5, 10 and 40 ms).
func Fig9BreakEven(o Options, rates []float64) (*Figure, error) {
	return experiment.Fig9BreakEven(o, rates)
}

// OverheadPhaseUpdates regenerates the §4.2.3 phase-update overhead
// measurement (paper: < 1 bit per data report).
func OverheadPhaseUpdates(o Options, rates []float64) (*Figure, error) {
	return experiment.OverheadPhaseUpdates(o, rates)
}

// AblationBreakEvenGuard compares the Safe Sleep break-even guard
// against naive sleep-any-gap scheduling (DESIGN.md ablation).
func AblationBreakEvenGuard(o Options) (*Figure, error) {
	return experiment.AblationBreakEvenGuard(o)
}

// AblationBuffering compares early-report buffering against greedy early
// sends (DESIGN.md ablation).
func AblationBuffering(o Options) (*Figure, error) {
	return experiment.AblationBuffering(o)
}

// AblationTreeConstruction compares the simulated setup-flood tree
// against an idealized min-hop BFS tree (DESIGN.md ablation).
func AblationTreeConstruction(o Options) (*Figure, error) {
	return experiment.AblationTreeConstruction(o)
}

// RobustnessLoss sweeps transient packet loss against the §4.3
// maintenance mechanisms. nil lossRates selects {0, 5, 10, 20}%.
func RobustnessLoss(o Options, lossRates []float64) (*Figure, error) {
	return experiment.RobustnessLoss(o, lossRates)
}

// RobustnessFailures kills growing numbers of random non-leaf nodes and
// measures survivor coverage under the §4.3 recovery procedures. nil
// failureCounts selects {0, 1, 2, 4}.
func RobustnessFailures(o Options, failureCounts []int) (*Figure, error) {
	return experiment.RobustnessFailures(o, failureCounts)
}

// Lifetime measures time-to-first-battery-death per protocol with finite
// node batteries (§4.2.1's network-lifetime argument). batteryJ <= 0
// selects a 0.5 J budget sized to the quick options.
func Lifetime(o Options, batteryJ float64) (*Figure, error) {
	return experiment.Lifetime(o, batteryJ)
}

// PrintFigure renders a figure as an aligned text table.
func PrintFigure(w io.Writer, f *Figure) { f.Fprint(w) }

// ResetRunCounters zeroes the global simulator-work counters used by
// benchmarking tools (see RunCounters).
func ResetRunCounters() { experiment.ResetRunCounters() }

// RunCounters returns the number of Run invocations, simulator events
// executed, and simulated seconds elapsed since the last ResetRunCounters,
// aggregated across all goroutines. cmd/essat-bench derives events/sec
// and simulated-seconds/sec from these for the BENCH_*.json reports.
func RunCounters() (runs, events uint64, simSeconds float64) {
	return experiment.RunCounters()
}
