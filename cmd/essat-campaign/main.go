// Command essat-campaign orchestrates crash-safe batch campaigns over
// generated workload corpora:
//
//	essat-campaign gen -dir corpus/ -seed 42 -count 252 [-shards 4]
//	essat-campaign run -dir corpus/ [-shard 0] [-workers 8] [-max-events 5000000]
//	essat-campaign resume -dir corpus/ [-shard 0]
//	essat-campaign status -dir corpus/
//	essat-campaign merge -dir corpus/
//
// gen writes a seeded, reproducible corpus (spec files + manifest);
// run executes one shard on a bounded worker pool, journaling every
// outcome to an append-only JSONL write-ahead log, fsync'd in batches.
// SIGINT/SIGTERM checkpoints the journal and exits resumable; resume
// replays the journal (tolerating a torn final line), skips completed
// specs, and finishes the rest. Whichever invocation completes the
// final spec merges every shard journal into results.jsonl — one
// deterministic line per spec, byte-identical whether the campaign ran
// uninterrupted or was killed and resumed any number of times.
//
// Specs that exhaust their budget retry with jittered backoff up to a
// cap; specs that panic leave a repro bundle (spec + seed + stack)
// under quarantine/ and the campaign carries on.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/essat/essat/internal/campaign"
	"github.com/essat/essat/internal/corpus"
	"github.com/essat/essat/internal/experiment"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:], false)
	case "resume":
		err = cmdRun(os.Args[2:], true)
	case "status":
		err = cmdStatus(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "essat-campaign: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, campaign.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, "essat-campaign: interrupted; journal checkpointed — rerun with `resume` to continue")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "essat-campaign: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: essat-campaign <command> [flags]

commands:
  gen     generate a seeded corpus (specs + manifest) into -dir
  run     run one shard of the campaign, journaling outcomes
  resume  continue an interrupted run from its journal
  status  report per-shard progress
  merge   write the merged result set (requires a complete campaign)

run 'essat-campaign <command> -h' for command flags
`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory to create (required)")
	seed := fs.Int64("seed", 1, "corpus seed; same seed+count regenerates identical specs")
	count := fs.Int("count", 252, "number of specs (252 = one full protocol×topology×propagation×radio cross-product)")
	shards := fs.Int("shards", 1, "shard count the campaign will run as")
	maxNodes := fs.Int("max-nodes", 48, "largest deployment size to draw")
	maxDur := fs.Duration("max-duration", 6*time.Second, "longest simulated duration to draw")
	fs.Parse(args)
	if *dir == "" {
		return errors.New("gen: -dir is required")
	}
	cfg := corpus.Config{Seed: *seed, Count: *count, MaxNodes: *maxNodes, MaxDuration: *maxDur}
	items, err := corpus.Generate(cfg)
	if err != nil {
		return err
	}
	if err := corpus.Write(*dir, cfg, items, *shards); err != nil {
		return err
	}
	fmt.Printf("wrote %d specs (%d shards) to %s\n", len(items), *shards, *dir)
	return nil
}

func cmdRun(args []string, resume bool) error {
	name := "run"
	if resume {
		name = "resume"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory (required)")
	shard := fs.Int("shard", 0, "shard to run (0-based)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	maxEvents := fs.Uint64("max-events", 20_000_000, "per-run event budget (0 = unlimited)")
	wallClock := fs.Duration("wall-clock", 0, "per-run wall-clock budget (0 = unlimited)")
	retries := fs.Int("retries", campaign.DefaultMaxRetries, "budget-exceeded retries per spec")
	syncEvery := fs.Int("sync-every", campaign.DefaultSyncEvery, "journal fsync batch size (1 = every record)")
	quiet := fs.Bool("q", false, "suppress per-spec progress lines")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("%s: -dir is required", name)
	}

	// SIGINT/SIGTERM cancel the context; the runner checkpoints the
	// journal and returns ErrInterrupted, which main maps to exit 130.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	cfg := campaign.RunConfig{
		Shard:      *shard,
		Workers:    *workers,
		Budget:     experiment.Budget{MaxEvents: *maxEvents, WallClock: *wallClock},
		MaxRetries: *retries,
		SyncEvery:  *syncEvery,
		Resume:     resume,
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	sum, err := campaign.Run(ctx, *dir, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("shard %d: %d specs, %d completed, %d failed (%d quarantined), %d skipped, %d retries\n",
		sum.Shard, sum.Total, sum.Completed, sum.Failed, sum.Quarantined, sum.Skipped, sum.Retries)
	if sum.ResultsPath != "" {
		fmt.Printf("campaign complete: merged results at %s\n", sum.ResultsPath)
	}
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory (required)")
	fs.Parse(args)
	if *dir == "" {
		return errors.New("status: -dir is required")
	}
	st, err := campaign.ReadStatus(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("%d specs across %d shard(s): %d done, %d failed, %d pending\n",
		st.Specs, st.Shards, st.Done, st.Failed, st.Pending)
	for _, ss := range st.PerShard {
		fmt.Printf("  shard %d: %d/%d done, %d failed, %d pending\n",
			ss.Shard, ss.Done, ss.Total, ss.Failed, ss.Pending)
	}
	if st.Merged {
		fmt.Println("merged: results.jsonl present")
	}
	return nil
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory (required)")
	fs.Parse(args)
	if *dir == "" {
		return errors.New("merge: -dir is required")
	}
	path, err := campaign.Merge(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("merged results at %s\n", path)
	return nil
}
