// Command essat-serve exposes the simulator as an HTTP service:
// POST a JSON scenario spec to /run and get the run's metrics back.
// Runs execute on a bounded worker pool with per-request seeds and
// resource budgets; when the pool and its wait queue are full the
// server sheds load with 429 + Retry-After instead of queueing
// unboundedly, and SIGINT/SIGTERM drains in-flight runs before exit.
//
// Endpoints:
//
//	POST /run?deadline=2s&max_events=1000000   run a spec (query params
//	                                           tighten the server budget)
//	GET  /healthz                              liveness
//	GET  /readyz                               readiness + counters JSON;
//	                                           503 while draining
//
// Examples:
//
//	essat-serve -addr :8080 -workers 4 -deadline 30s
//	curl -d '{"protocol":"DTS-SS","workload":{"base_rate":1,"per_class":1}}' localhost:8080/run
//	essat-load -url http://localhost:8080 -n 200 -c 16
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/essat/essat"
	"github.com/essat/essat/internal/experiment"
	"github.com/essat/essat/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "requests waiting for a worker before shedding (0 = 2x workers)")
		deadline  = flag.Duration("deadline", 60*time.Second, "default wall-clock budget per run (0 = unlimited)")
		maxEvents = flag.Uint64("max-events", 0, "default event budget per run (0 = unlimited)")
		maxNodes  = flag.Int("max-nodes", 2000, "reject specs larger than this many nodes (0 = unlimited)")
		maxShards = flag.Int("max-shards", 8, "reject specs asking for more parallel engine shards than this (0 = unlimited)")
		seed      = flag.Int64("seed", 1, "base seed for requests that omit one")
		audit     = flag.Bool("audit", false, "run the invariant auditor on every request")
		sinks     = flag.String("sinks", "", "comma-separated metric sinks attached to every run whose spec has no results block (timeseries, energy, jsonl); responses then carry records")
		drainFor  = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight runs")
		quiet     = flag.Bool("q", false, "suppress per-run logging")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "essat-serve: ", log.LstdFlags)
	var sinkNames []string
	if *sinks != "" {
		// Validate at startup: a typo must fail the boot, not every run.
		for _, name := range strings.Split(*sinks, ",") {
			name = strings.TrimSpace(name)
			if _, ok := essat.LookupMetricSink(name); !ok {
				fmt.Fprintf(os.Stderr, "essat-serve: unknown metric sink %q (registered: %v)\n", name, essat.MetricSinks())
				os.Exit(1)
			}
			sinkNames = append(sinkNames, name)
		}
	}
	cfg := serve.Config{
		Workers:   *workers,
		Queue:     *queue,
		Budget:    experiment.Budget{WallClock: *deadline, MaxEvents: *maxEvents},
		MaxNodes:  *maxNodes,
		MaxShards: *maxShards,
		BaseSeed:  *seed,
		Audit:     *audit,
		Sinks:     sinkNames,
		Log:       logger,
	}
	if *quiet {
		cfg.Log = nil
	}
	s := serve.New(cfg)

	// rootCtx backs every request context; canceling it is the hard
	// stop when the drain timeout expires with runs still in flight.
	rootCtx, hardStop := context.WithCancel(context.Background())
	defer hardStop()

	hs := &http.Server{
		Addr:        *addr,
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return rootCtx },
	}

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		sig := <-sigs
		logger.Printf("received %v; draining (up to %v)", sig, *drainFor)
		s.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logger.Printf("drain timeout: canceling in-flight runs (%v)", err)
			hardStop() // budgets/cancellation checks abort the runs
			_ = hs.Close()
			return
		}
		logger.Printf("drained cleanly")
	}()

	logger.Printf("listening on %s (%d workers, %d queue slots)", *addr, s.Workers(), s.QueueDepth())
	err := hs.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "essat-serve:", err)
		os.Exit(1)
	}
	<-done
}
