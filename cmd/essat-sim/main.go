// Command essat-sim runs one ESSAT simulation scenario and prints its
// metrics: duty cycle, per-rank duty distribution, query latency per
// class, coverage, and protocol overheads. The scenario comes either
// from flags or, declaratively, from a JSON spec file (-scenario);
// -list shows every registered protocol, topology generator, and
// figure driver.
//
// Examples:
//
//	essat-sim -protocol DTS-SS -rate 5 -duration 200s
//	essat-sim -protocol STS-SS -deadline 120ms -seeds 5
//	essat-sim -protocol DTS-SS -loss 0.1 -failures 2
//	essat-sim -topology corridor -protocol DTS-SS
//	essat-sim -channel shadowing -radio cc2420 -audit
//	essat-sim -channel dual-disc:inner=0.6,outer=1.3 -seed 42
//	essat-sim -protocol DTS-SS -churn 3 -burst 20s -audit
//	essat-sim -scenario testdata/dynamics_crash.json -audit
//	essat-sim -scenario testdata/example.json
//	essat-sim -list
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/essat/essat"
	"github.com/essat/essat/internal/stats"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "run a declarative JSON scenario spec from this file (replaces the shape flags; an explicit -duration still overrides the file)")
		list     = flag.Bool("list", false, "list registered protocols, topology generators, and figures, then exit")
		protocol = flag.String("protocol", "DTS-SS", "protocol: DTS-SS, STS-SS, NTS-SS, SPAN, PSM, SYNC, TMAC (see -list)")
		topo     = flag.String("topology", "", "topology generator: uniform, grid, clusters, corridor (empty = uniform)")
		channel  = flag.String("channel", "", "channel propagation model: disc, shadowing, dual-disc; knobs as model:key=value,... e.g. shadowing:sigma=6 (empty = disc)")
		radioPr  = flag.String("radio", "", "radio energy profile: paper, cc1000, cc2420 (empty = paper)")
		seedBase = flag.Int64("seed", 1, "base seed; runs use seeds seed..seed+seeds-1 (overrides a spec file's seed when set explicitly)")
		rate     = flag.Float64("rate", 1.0, "base rate of query class Q1 in Hz (Q1:Q2:Q3 = 6:3:2)")
		perClass = flag.Int("queries", 1, "queries per class")
		nodes    = flag.Int("nodes", 80, "number of nodes")
		area     = flag.Float64("area", 500, "deployment area side in meters")
		duration = flag.Duration("duration", 200*time.Second, "simulated duration")
		seeds    = flag.Int("seeds", 1, "number of seeds to average over")
		deadline = flag.Duration("deadline", 0, "STS deadline D (0 = query period)")
		tbe      = flag.Duration("tbe", -1, "Safe Sleep break-even time (-1 = radio default)")
		loss     = flag.Float64("loss", 0, "independent per-delivery loss probability")
		failures = flag.Int("failures", 0, "random non-leaf nodes to kill mid-run")
		bfs      = flag.Bool("bfs-tree", false, "use idealized BFS tree instead of simulated setup flood")
		verbose  = flag.Bool("v", false, "print per-rank duty cycles and channel stats")
		traceN   = flag.Int("trace", 0, "record and print the last N structured events (radio transitions, recovery)")
		dissem   = flag.Duration("dissem", 0, "add a downstream command flow with this period (0 = none)")
		peers    = flag.Int("peers", 0, "add N random peer-to-peer flows at 1 Hz")
		battery  = flag.Float64("battery", 0, "per-node battery budget in joules (0 = unlimited)")
		churn    = flag.Int("churn", 0, "crash N random nodes mid-run, each recovering after a quarter of the run (dynamics layer)")
		burst    = flag.Duration("burst", 0, "inject a traffic burst of this length at mid-run, reports every 250ms (dynamics layer)")
		audit    = flag.Bool("audit", false, "run the cross-layer invariant auditor and print the trace digest")
		sinks    = flag.String("sinks", "", "comma-separated metric sinks to attach (timeseries, energy, jsonl; see -list); overrides a spec file's results block. Sink params need a spec file")
		records  = flag.String("records", "", "write every run's metric-sink records to this file (\"-\" = stdout), schema-validated")
		recFmt   = flag.String("records-format", "jsonl", "records export format: jsonl (one JSON record per line) or csv (flattened long format, one value per row)")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget per run; a run exceeding it aborts with exit code 2 (0 = unlimited)")
		shards   = flag.Int("shards", 0, "run the engine sharded over N spatial partitions (0 = spec/default sequential; overrides a spec file's parallelism block)")
		lookahd  = flag.Duration("lookahead", 0, "cross-shard lookahead override for -shards > 1 (0 = derive from topology + MAC DIFS)")
	)
	flag.Parse()

	if *list {
		printRegistries()
		return
	}

	if *seeds <= 0 {
		fatal(fmt.Errorf("seeds must be positive, got %d", *seeds))
	}
	if *scenario == "" {
		// The spec layer treats non-positive overrides as "keep the
		// default"; explicit flag values must not be swallowed that way.
		if *duration <= 0 {
			fatal(fmt.Errorf("non-positive duration %v", *duration))
		}
		if *nodes <= 0 {
			fatal(fmt.Errorf("nodes must be positive, got %d", *nodes))
		}
		if *area <= 0 {
			fatal(fmt.Errorf("area must be positive, got %g", *area))
		}
	}
	chSpec, err := parseChannelFlag(*channel)
	if err != nil {
		fatal(err)
	}
	spec := specFromFlags(*protocol, *topo, *rate, *perClass, *nodes, *area,
		*duration, *deadline, *tbe, *loss, *failures, *bfs, *traceN, *dissem, *peers, *battery,
		*churn, *burst, chSpec, *radioPr)
	seedExplicit := false
	if *scenario != "" {
		loaded, err := essat.LoadSpec(*scenario)
		if err != nil {
			fatal(err)
		}
		// The file replaces the shape flags, with exceptions: explicitly
		// passed -duration, -channel, and -radio override it, so checked-in
		// specs can be smoke-tested under different durations and hardware
		// models (-scenario testdata/large.json -duration 5s -channel
		// shadowing) without editing them.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "duration":
				loaded.Duration = essat.Dur(*duration)
				if loaded.MeasureFrom != nil && loaded.MeasureFrom.D() >= *duration {
					loaded.MeasureFrom = nil
				}
			case "channel":
				loaded.Channel = chSpec
			case "radio":
				// -radio "" resets a spec's radio block to the paper
				// default, mirroring what -channel "" does for the model.
				if *radioPr == "" {
					loaded.Radio = nil
				} else {
					loaded.Radio = &essat.RadioSpec{Profile: *radioPr}
				}
			}
		})
		spec = loaded
	}
	if *audit {
		spec.Audit = true
	}
	if *shards > 0 {
		spec.Parallelism = &essat.ParallelismSpec{Shards: *shards, Lookahead: essat.Dur(*lookahd)}
	} else if *lookahd > 0 {
		fatal(errors.New("-lookahead requires -shards"))
	}
	if *sinks != "" {
		rs := &essat.ResultsSpec{}
		for _, name := range strings.Split(*sinks, ",") {
			rs.Sinks = append(rs.Sinks, essat.SinkSpec{Name: strings.TrimSpace(name)})
		}
		spec.Results = rs
	}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedExplicit = true
		}
	})

	var duty, lat stats.Welford
	var last, firstViolating *essat.Result
	var allRecords []essat.MetricRecord
	for i := int64(0); i < int64(*seeds); i++ {
		run := *spec
		// An explicitly passed -seed wins over a spec file's seed; the
		// historical default (seeds 1..N, a spec's own seed honored on
		// single-seed runs) is unchanged otherwise.
		if seedExplicit || *seeds > 1 || run.Seed == 0 {
			run.Seed = *seedBase + i
		}
		res, err := essat.RunSpecContext(context.Background(), &run, essat.Budget{WallClock: *timeout})
		if err != nil {
			var be *essat.BudgetExceededError
			if errors.As(err, &be) {
				// Distinct exit code so harnesses can tell "too slow"
				// from "invalid scenario".
				fmt.Fprintln(os.Stderr, "essat-sim:", err)
				os.Exit(2)
			}
			fatal(err)
		}
		duty.Add(res.DutyCycle * 100)
		lat.Add(res.Latency.Mean.Seconds())
		if res.Audit != nil && res.Audit.Total > 0 && firstViolating == nil {
			firstViolating = res
		}
		allRecords = append(allRecords, res.Records...)
		last = res
	}

	if *records != "" {
		if err := writeRecords(*records, *recFmt, allRecords); err != nil {
			fatal(err)
		}
	} else if *recFmt != "jsonl" {
		fatal(errors.New("-records-format requires -records"))
	}

	printResult(spec, last, duty, lat, *verbose)
	// A violation in ANY seed fails the run, not just one in the last
	// seed whose summary printResult showed. The diagnostic always goes
	// to stderr so pipelines capturing only stdout still surface it.
	if firstViolating != nil {
		a := firstViolating.Audit
		fmt.Fprintf(os.Stderr, "essat-sim: seed %d: %d invariant violations (digest %s):\n",
			firstViolating.Seed, a.Total, a.Digest)
		for _, v := range a.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "essat-sim:", err)
	os.Exit(1)
}

// writeRecords exports metric-sink records, validating each against
// the versioned schema first — the exporter refuses to write a record
// downstream tooling would reject. Formats: "jsonl" (one JSON record
// per line, payload structure preserved) and "csv" (flattened long
// format, one value per row — see writeRecordsCSV).
func writeRecords(path, format string, recs []essat.MetricRecord) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	for i := range recs {
		if err := essat.ValidateMetricRecord(&recs[i]); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
	}
	switch format {
	case "jsonl":
		for i := range recs {
			line, err := json.Marshal(recs[i])
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
				return err
			}
		}
		return nil
	case "csv":
		return writeRecordsCSV(w, recs)
	default:
		return fmt.Errorf("unknown records format %q (want jsonl or csv)", format)
	}
}

// writeRecordsCSV flattens records into a tidy long-format table: one
// value per row, with the payload dimensions (node, rank, query,
// interval, the series/histogram x-coordinate) as sparse columns.
// Scalars become field=<name> rows; series samples field="series" rows
// with x = bucket midpoint time in ms; histogram bins field="histogram"
// rows with x = bin lower edge (plus a "histogram_overflow" row when
// nonzero); events one row per populated measure. Row order follows
// the record slice, so output is as deterministic as the records.
func writeRecordsCSV(w io.Writer, recs []essat.MetricRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"sink", "kind", "protocol", "seed", "field",
		"node", "rank", "query", "interval", "x", "value", "unit",
	}); err != nil {
		return err
	}
	ftoa := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	itoa := strconv.Itoa
	for ri := range recs {
		r := &recs[ri]
		row := func(field, node, rank, query, interval, x, value, unit string) error {
			return cw.Write([]string{
				r.Sink, r.Kind, r.Protocol, strconv.FormatInt(r.Seed, 10),
				field, node, rank, query, interval, x, value, unit,
			})
		}
		names := make([]string, 0, len(r.Scalars))
		for name := range r.Scalars {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := row(name, "", "", "", "", "", ftoa(r.Scalars[name]), ""); err != nil {
				return err
			}
		}
		for _, s := range r.Series {
			for bi, v := range s.Values {
				x := (float64(bi) + 0.5) * s.BucketMs
				if err := row("series", itoa(s.Node), itoa(s.Rank), "", "", ftoa(x), ftoa(v), "ms"); err != nil {
					return err
				}
			}
		}
		if h := r.Histogram; h != nil {
			for bi, c := range h.Counts {
				lo := float64(bi) * h.BinWidth
				if err := row("histogram", "", "", "", "", ftoa(lo), strconv.FormatUint(c, 10), h.Unit); err != nil {
					return err
				}
			}
			if h.Overflow > 0 {
				lo := float64(len(h.Counts)) * h.BinWidth
				if err := row("histogram_overflow", "", "", "", "", ftoa(lo), strconv.FormatUint(h.Overflow, 10), h.Unit); err != nil {
					return err
				}
			}
		}
		for _, e := range r.Events {
			query := ""
			if e.Query != 0 {
				query = strconv.FormatInt(e.Query, 10)
			}
			switch e.Kind {
			case "report", "interval":
				if err := row(e.Kind+"_latency", "", "", query, itoa(e.Interval),
					"", strconv.FormatInt(e.LatencyNs, 10), "ns"); err != nil {
					return err
				}
				if e.Kind == "interval" {
					if err := row("interval_coverage", "", "", query, itoa(e.Interval),
						"", itoa(e.Coverage), ""); err != nil {
						return err
					}
				}
			case "node":
				if err := row("node_duty_cycle", itoa(e.Node), itoa(e.Rank), "", "", "", ftoa(e.DutyCycle), ""); err != nil {
					return err
				}
				if err := row("node_energy", itoa(e.Node), itoa(e.Rank), "", "", "", ftoa(e.EnergyJ), "J"); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// parseChannelFlag decodes the -channel flag: a model name with
// optional knobs, "shadowing:sigma=6,pathloss=2.7". An empty flag keeps
// the spec's channel (nil).
func parseChannelFlag(s string) (*essat.ChannelSpec, error) {
	if s == "" {
		return nil, nil
	}
	model, rest, hasParams := strings.Cut(s, ":")
	cs := &essat.ChannelSpec{Model: model}
	if !hasParams {
		return cs, nil
	}
	cs.Params = map[string]float64{}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("channel param %q is not key=value", kv)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("channel param %q: %v", kv, err)
		}
		cs.Params[k] = f
	}
	return cs, nil
}

// specFromFlags translates the classic flag interface into the same
// declarative spec the -scenario path uses, so both run identically.
func specFromFlags(protocol, topo string, rate float64, perClass, nodes int, area float64,
	duration, deadline, tbe time.Duration, loss float64, failures int, bfs bool,
	traceN int, dissem time.Duration, peers int, battery float64,
	churn int, burst time.Duration, channel *essat.ChannelSpec, radioProfile string) *essat.Spec {

	spec := &essat.Spec{
		Protocol:      protocol,
		Topology:      topo,
		Nodes:         nodes,
		Area:          area,
		Duration:      essat.Dur(duration),
		Deadline:      essat.Dur(deadline),
		Loss:          loss,
		BFSTree:       bfs,
		BatteryJ:      battery,
		TraceCapacity: traceN,
		Workload:      &essat.Workload{BaseRate: rate, PerClass: perClass},
		Channel:       channel,
	}
	if radioProfile != "" {
		spec.Radio = &essat.RadioSpec{Profile: radioProfile}
	}
	if tbe >= 0 {
		be := essat.Dur(tbe)
		spec.BreakEven = &be
	}
	if failures > 0 || loss > 0 {
		spec.FailureThreshold = 3
	}
	for i := 0; i < failures; i++ {
		spec.Failures = append(spec.Failures, essat.FailureSpec{
			At: essat.Dur(duration / 4 * time.Duration(i+1) / time.Duration(failures)),
		})
	}
	if dissem > 0 {
		spec.Dissemination = []essat.FlowSpec{{
			ID: -1, Period: essat.Dur(dissem), Phase: essat.Dur(5 * time.Second),
		}}
	}
	for i := 0; i < peers; i++ {
		spec.Peers = append(spec.Peers, essat.FlowSpec{
			ID: int64(-(i + 2)), Period: essat.Dur(time.Second), Phase: essat.Dur(5 * time.Second),
		})
	}
	if churn > 0 {
		spec.Dynamics = append(spec.Dynamics, essat.DynamicsSpec{
			Kind:     "crash",
			At:       essat.Dur(duration / 4),
			Duration: essat.Dur(duration / 4),
			Count:    churn,
		})
	}
	if burst > 0 {
		spec.Dynamics = append(spec.Dynamics, essat.DynamicsSpec{
			Kind:     "burst",
			At:       essat.Dur(duration / 2),
			Duration: essat.Dur(burst),
			Period:   essat.Dur(250 * time.Millisecond),
		})
	}
	return spec
}

func printRegistries() {
	fmt.Println("protocols:")
	for _, p := range essat.AllProtocols() {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println("\ntopology generators:")
	for _, g := range essat.TopologyGenerators() {
		fmt.Printf("  %s\n", g)
	}
	fmt.Println("\nchannel propagation models (spec \"channel\" block; -channel):")
	for _, m := range essat.ChannelModels() {
		fmt.Printf("  %s\n", m)
	}
	fmt.Println("\nradio energy profiles (spec \"radio\" block; -radio):")
	for _, p := range essat.RadioProfiles() {
		prof, _ := essat.LookupRadioProfile(p)
		fmt.Printf("  %-8s (tBE %v)\n", p, prof.BreakEven())
	}
	fmt.Println("\ndynamics injectors (spec \"dynamics\" block; -churn/-burst shortcuts):")
	for _, k := range essat.DynamicsKinds() {
		fmt.Printf("  %s\n", k)
	}
	fmt.Println("\nmetric sinks (spec \"results\" block; -sinks):")
	for _, s := range essat.MetricSinks() {
		fmt.Printf("  %s\n", s)
	}
	fmt.Println("\nfigures (essat-bench -fig):")
	for _, f := range essat.FigureCatalog() {
		fmt.Printf("  %-20s %s\n", f.ID, f.Title)
	}
}

func printResult(spec *essat.Spec, last *essat.Result, duty, lat stats.Welford, verbose bool) {
	fmt.Printf("protocol       %s\n", spec.Protocol)
	if spec.Topology != "" {
		fmt.Printf("topology       %s\n", spec.Topology)
	}
	if spec.Channel != nil {
		fmt.Printf("channel        %s\n", spec.Channel.Model)
	}
	if spec.Radio != nil {
		fmt.Printf("radio          %s\n", spec.Radio.Profile)
	}
	fmt.Printf("tree           %d members, max rank %d\n", last.TreeSize, last.MaxRank)
	fmt.Printf("duty cycle     %.2f%% ± %.2f (90%% CI over %d seeds)\n", duty.Mean(), duty.CI90(), duty.N())
	fmt.Printf("query latency  %.3fs ± %.3f (mean of per-interval max-source latency)\n", lat.Mean(), lat.CI90())
	fmt.Printf("coverage       %.1f of %d sources per interval (last seed)\n", last.Coverage, last.TreeSize)
	fmt.Printf("energy         mean %.2f J, worst node %.2f J over the window; est. lifetime %.1f days\n",
		last.EnergyMean, last.EnergyMax, last.NetworkLifetime.Hours()/24)
	if last.BatteryDeaths > 0 {
		fmt.Printf("battery        %d nodes exhausted; first death at %v\n",
			last.BatteryDeaths, last.FirstDeath.Round(time.Second))
	}
	if len(spec.Dissemination) > 0 {
		fmt.Printf("dissemination  %.1f%% delivery, %v mean latency\n",
			last.DisseminationDelivery*100, last.DisseminationLatency.Round(time.Millisecond))
	}
	if len(spec.Peers) > 0 {
		fmt.Printf("peer flows     %.1f%% delivery, %v mean latency\n",
			last.P2PDelivery*100, last.P2PLatency.Round(time.Millisecond))
	}
	if last.PhaseUpdateBitsPerReport > 0 {
		fmt.Printf("DTS overhead   %.3f piggybacked bits per data report, %d phase shifts\n",
			last.PhaseUpdateBitsPerReport, last.PhaseShifts)
	}
	fmt.Printf("traffic        %d MAC frames sent, %d failed, %d retries, %d timeouts, %d pass-throughs\n",
		last.MACSent, last.MACFailed, last.MACRetries, last.Timeouts, last.PassThroughs)
	if len(last.Records) > 0 {
		names := make([]string, len(last.Records))
		for i, r := range last.Records {
			names[i] = r.Sink
		}
		fmt.Printf("records        %d sink records per run (%s)\n", len(last.Records), strings.Join(names, ", "))
	}
	if a := last.Audit; a != nil {
		if a.Total == 0 {
			fmt.Printf("audit          clean: %d events, trace digest %s\n", a.Events, a.Digest)
		} else {
			fmt.Printf("audit          %d INVARIANT VIOLATIONS over %d events (digest %s):\n",
				a.Total, a.Events, a.Digest)
			for _, v := range a.Violations {
				fmt.Printf("  %s\n", v)
			}
		}
	}

	if verbose {
		fmt.Println("\nduty cycle by rank (last seed):")
		ranks := make([]int, 0, len(last.DutyByRank))
		for r := range last.DutyByRank {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			fmt.Printf("  rank %d: %6.2f%%\n", r, last.DutyByRank[r]*100)
		}
		fmt.Println("\nlatency by class (last seed):")
		classes := make([]int, 0, len(last.LatencyByClass))
		for c := range last.LatencyByClass {
			classes = append(classes, c)
		}
		sort.Ints(classes)
		for _, c := range classes {
			ds := last.LatencyByClass[c]
			fmt.Printf("  Q%d: mean=%v p95=%v max=%v (n=%d)\n", c,
				ds.Mean.Round(time.Millisecond), ds.P95.Round(time.Millisecond),
				ds.Max.Round(time.Millisecond), ds.N)
		}
		ch := last.Channel
		fmt.Printf("\nchannel: %d tx, %d delivered, %d overheard, %d collisions, %d missed-asleep\n",
			ch.Transmissions, ch.Deliveries, ch.Overheard, ch.Collisions, ch.MissedAsleep)
		fmt.Printf("events: %d simulator events\n", last.Events)
	}

	if len(last.Trace) > 0 {
		fmt.Printf("\nlast %d structured events (last seed):\n", len(last.Trace))
		for _, e := range last.Trace {
			fmt.Println(" ", e)
		}
	}
}
