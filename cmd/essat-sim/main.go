// Command essat-sim runs one ESSAT simulation scenario from flags and
// prints its metrics: duty cycle, per-rank duty distribution, query
// latency per class, coverage, and protocol overheads.
//
// Examples:
//
//	essat-sim -protocol DTS-SS -rate 5 -duration 200s
//	essat-sim -protocol STS-SS -deadline 120ms -seeds 5
//	essat-sim -protocol DTS-SS -loss 0.1 -failures 2
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"github.com/essat/essat"
	"github.com/essat/essat/internal/stats"
)

func main() {
	var (
		protocol = flag.String("protocol", "DTS-SS", "protocol: DTS-SS, STS-SS, NTS-SS, SPAN, PSM, SYNC")
		rate     = flag.Float64("rate", 1.0, "base rate of query class Q1 in Hz (Q1:Q2:Q3 = 6:3:2)")
		perClass = flag.Int("queries", 1, "queries per class")
		nodes    = flag.Int("nodes", 80, "number of nodes")
		area     = flag.Float64("area", 500, "deployment area side in meters")
		duration = flag.Duration("duration", 200*time.Second, "simulated duration")
		seeds    = flag.Int("seeds", 1, "number of seeds to average over")
		deadline = flag.Duration("deadline", 0, "STS deadline D (0 = query period)")
		tbe      = flag.Duration("tbe", -1, "Safe Sleep break-even time (-1 = radio default)")
		loss     = flag.Float64("loss", 0, "independent per-delivery loss probability")
		failures = flag.Int("failures", 0, "random non-leaf nodes to kill mid-run")
		bfs      = flag.Bool("bfs-tree", false, "use idealized BFS tree instead of simulated setup flood")
		verbose  = flag.Bool("v", false, "print per-rank duty cycles and channel stats")
		traceN   = flag.Int("trace", 0, "record and print the last N structured events (radio transitions, recovery)")
		dissem   = flag.Duration("dissem", 0, "add a downstream command flow with this period (0 = none)")
		peers    = flag.Int("peers", 0, "add N random peer-to-peer flows at 1 Hz")
		battery  = flag.Float64("battery", 0, "per-node battery budget in joules (0 = unlimited)")
	)
	flag.Parse()

	var duty, lat stats.Welford
	var last *essat.Result
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		sc := essat.DefaultScenario(essat.Protocol(*protocol), seed)
		sc.Topology.NumNodes = *nodes
		sc.Topology.AreaSide = *area
		sc.Duration = *duration
		if sc.MeasureFrom >= sc.Duration {
			sc.MeasureFrom = sc.Duration / 5
		}
		sc.STSDeadline = *deadline
		sc.SSBreakEven = *tbe
		sc.LossRate = *loss
		sc.BFSTree = *bfs
		sc.TraceCapacity = *traceN
		if *failures > 0 || *loss > 0 {
			sc.QueryCfg.FailureThreshold = 3
		}
		for i := 0; i < *failures; i++ {
			sc.Failures = append(sc.Failures, essat.Failure{
				At:   sc.Duration / 4 * time.Duration(i+1) / time.Duration(*failures),
				Node: -1,
			})
		}
		rng := rand.New(rand.NewSource(seed * 7919))
		sc.Queries = essat.QueryClasses(rng, *rate, *perClass, 10*time.Second)
		if *dissem > 0 {
			sc.Dissemination = []essat.DisseminationSpec{{
				ID: -1, Period: *dissem, Phase: 5 * time.Second,
			}}
		}
		for i := 0; i < *peers; i++ {
			sc.PeerFlows = append(sc.PeerFlows, essat.P2PSpec{
				ID: essat.QueryID(-(i + 2)), Src: -1, Dst: -1,
				Period: time.Second, Phase: 5 * time.Second,
			})
		}
		sc.BatteryJ = *battery

		res, err := essat.Run(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "essat-sim:", err)
			os.Exit(1)
		}
		duty.Add(res.DutyCycle * 100)
		lat.Add(res.Latency.Mean.Seconds())
		last = res
	}

	fmt.Printf("protocol       %s\n", *protocol)
	fmt.Printf("tree           %d members, max rank %d\n", last.TreeSize, last.MaxRank)
	fmt.Printf("duty cycle     %.2f%% ± %.2f (90%% CI over %d seeds)\n", duty.Mean(), duty.CI90(), duty.N())
	fmt.Printf("query latency  %.3fs ± %.3f (mean of per-interval max-source latency)\n", lat.Mean(), lat.CI90())
	fmt.Printf("coverage       %.1f of %d sources per interval (last seed)\n", last.Coverage, last.TreeSize)
	fmt.Printf("energy         mean %.2f J, worst node %.2f J over the window; est. lifetime %.1f days\n",
		last.EnergyMean, last.EnergyMax, last.NetworkLifetime.Hours()/24)
	if last.BatteryDeaths > 0 {
		fmt.Printf("battery        %d nodes exhausted; first death at %v\n",
			last.BatteryDeaths, last.FirstDeath.Round(time.Second))
	}
	if *dissem > 0 {
		fmt.Printf("dissemination  %.1f%% delivery, %v mean latency\n",
			last.DisseminationDelivery*100, last.DisseminationLatency.Round(time.Millisecond))
	}
	if *peers > 0 {
		fmt.Printf("peer flows     %.1f%% delivery, %v mean latency\n",
			last.P2PDelivery*100, last.P2PLatency.Round(time.Millisecond))
	}
	if last.PhaseUpdateBitsPerReport > 0 {
		fmt.Printf("DTS overhead   %.3f piggybacked bits per data report, %d phase shifts\n",
			last.PhaseUpdateBitsPerReport, last.PhaseShifts)
	}
	fmt.Printf("traffic        %d MAC frames sent, %d failed, %d retries, %d timeouts, %d pass-throughs\n",
		last.MACSent, last.MACFailed, last.MACRetries, last.Timeouts, last.PassThroughs)

	if *verbose {
		fmt.Println("\nduty cycle by rank (last seed):")
		ranks := make([]int, 0, len(last.DutyByRank))
		for r := range last.DutyByRank {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			fmt.Printf("  rank %d: %6.2f%%\n", r, last.DutyByRank[r]*100)
		}
		fmt.Println("\nlatency by class (last seed):")
		classes := make([]int, 0, len(last.LatencyByClass))
		for c := range last.LatencyByClass {
			classes = append(classes, c)
		}
		sort.Ints(classes)
		for _, c := range classes {
			ds := last.LatencyByClass[c]
			fmt.Printf("  Q%d: mean=%v p95=%v max=%v (n=%d)\n", c,
				ds.Mean.Round(time.Millisecond), ds.P95.Round(time.Millisecond),
				ds.Max.Round(time.Millisecond), ds.N)
		}
		ch := last.Channel
		fmt.Printf("\nchannel: %d tx, %d delivered, %d overheard, %d collisions, %d missed-asleep\n",
			ch.Transmissions, ch.Deliveries, ch.Overheard, ch.Collisions, ch.MissedAsleep)
		fmt.Printf("events: %d simulator events\n", last.Events)
	}

	if *traceN > 0 {
		fmt.Printf("\nlast %d structured events (last seed):\n", len(last.Trace))
		for _, e := range last.Trace {
			fmt.Println(" ", e)
		}
	}
}
