// Command essat-bench regenerates the data behind every figure of the
// paper's evaluation (Figures 2-9 plus the §4.2.3 overhead measurement)
// and prints each as an aligned text table. With -benchjson it also
// records simulator throughput (wall time, events/sec, simulated
// seconds/sec) per figure and for the whole suite, the format behind the
// checked-in BENCH_*.json files (see BENCHMARKS.md).
//
// Examples:
//
//	essat-bench                            # every figure, quick setting
//	essat-bench -paper                     # the paper's full 200s × 5-seed setting
//	essat-bench -fig 3 -fig 6              # just Figures 3 and 6
//	essat-bench -parallel 8                # bound the worker pool at 8
//	essat-bench -benchjson BENCH_after.json -scale testdata/large.json
//	essat-bench -fig 3 -cpuprofile cpu.prof -memprofile mem.prof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/essat/essat"
)

type figList []string

func (f *figList) String() string { return strings.Join(*f, ",") }

func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// figBench is one figure's throughput record in the -benchjson output.
// AllocsPerRun and BytesPerRun are process-wide heap-allocation deltas
// (runtime.MemStats Mallocs / TotalAlloc) divided by the figure's run
// count — the number the arena work drives down.
type figBench struct {
	ID           string  `json:"id"`
	WallSeconds  float64 `json:"wall_seconds"`
	Runs         uint64  `json:"runs"`
	Events       uint64  `json:"events"`
	SimSeconds   float64 `json:"sim_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	SimSecPerSec float64 `json:"sim_seconds_per_sec"`
	AllocsPerRun float64 `json:"allocs_per_run"`
	BytesPerRun  float64 `json:"bytes_per_run"`
}

// scaleBench records a scale-tier scenario's throughput: one timed run,
// with the deterministic Build stage (topology spatial hash, flood tree,
// per-node stacks) timed separately from the event-loop drain, followed
// by a repeated-spec sweep measuring steady-state allocations per run.
type scaleBench struct {
	Scenario     string  `json:"scenario"`
	Nodes        int     `json:"nodes"`
	TreeSize     int     `json:"tree_size"`
	BuildSeconds float64 `json:"build_seconds"`
	RunSeconds   float64 `json:"run_seconds"`
	Events       uint64  `json:"events"`
	SimSeconds   float64 `json:"sim_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	SimSecPerSec float64 `json:"sim_seconds_per_sec"`
	SweepRuns    int     `json:"sweep_runs"`
	AllocsPerRun float64 `json:"allocs_per_run"`
	BytesPerRun  float64 `json:"bytes_per_run"`
}

// parallelPoint is one shard count's timing in the parallel sweep.
// Events can differ across shard counts (the conservative mesh is a
// documented approximation, not trace-identical to sequential), so
// events_per_sec is each configuration's own throughput; speedup is
// the wall-time ratio against the sweep's shards=1 run.
type parallelPoint struct {
	Shards       int     `json:"shards"`
	LookaheadUs  float64 `json:"lookahead_us"`
	RunSeconds   float64 `json:"run_seconds"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup,omitempty"`
}

// parallelTier is one scale-tier scenario swept across shard counts.
type parallelTier struct {
	Scenario string          `json:"scenario"`
	Nodes    int             `json:"nodes"`
	Points   []parallelPoint `json:"points"`
}

// benchReport is the top-level -benchjson document.
type benchReport struct {
	GoVersion   string      `json:"go_version"`
	NumCPU      int         `json:"num_cpu"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Parallelism int         `json:"parallelism"` // effective worker bound (GOMAXPROCS when -parallel is 0)
	DurationSec float64     `json:"run_duration_seconds"`
	Seeds       int         `json:"seeds"`
	Nodes       int         `json:"nodes"`
	Arena       bool        `json:"arena"` // per-worker arenas + deployment cache enabled
	Figures     []figBench  `json:"figures"`
	Scale       *scaleBench `json:"scale,omitempty"`
	Huge        *scaleBench `json:"huge,omitempty"`
	// Parallel records the sharded-engine sweep (-shards) over the
	// -scale/-huge tiers; single-run multi-core speedup, honest to
	// num_cpu — on a 1-core host expect barrier overhead, not speedup.
	Parallel []parallelTier `json:"parallel,omitempty"`
	Total    figBench       `json:"total"`
}

// memCounters snapshots the process's cumulative heap-allocation
// counters (count and bytes). Both are monotonic, so deltas across a
// workload are exact regardless of garbage collection.
func memCounters() (mallocs, bytes uint64) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Mallocs, m.TotalAlloc
}

func main() {
	var figs figList
	var (
		paper    = flag.Bool("paper", false, "use the paper's full setting (200s runs, 5 seeds) instead of the quick one")
		duration = flag.Duration("duration", 0, "override run duration")
		seeds    = flag.Int("seeds", 0, "override seeds per point")
		parallel = flag.Int("parallel", 0, "max concurrent simulation runs (0 = GOMAXPROCS)")
		topo     = flag.String("topology", "", "topology generator for every run (empty = the paper's uniform placement; see essat-sim -list)")
		channel  = flag.String("channel", "", "channel propagation model for every run (empty = the paper's unit disc; see essat-sim -list)")
		radioPr  = flag.String("radio", "", "radio energy profile for every run (empty = the paper's cost model; see essat-sim -list)")
		seed     = flag.Int64("seed", 0, "base seed; every point runs seeds seed..seed+seeds-1 (0 = 1, the paper's range)")
		outJSON  = flag.String("benchjson", "", "write a throughput report (wall time, events/sec, sim-seconds/sec) to this file")
		scale    = flag.String("scale", "", "also run this scenario spec once (e.g. testdata/large.json) and record a 'scale' section in the report")
		huge     = flag.String("huge", "", "also run this 10k-node scenario spec (e.g. testdata/huge.json) and record a 'huge' section in the report")
		sweep    = flag.Int("sweep", 5, "repeated-spec sweep length for the -scale/-huge sections (steady-state allocs/run measurement)")
		shards   = flag.String("shards", "", "comma-separated shard counts (e.g. 1,2,4,8) to sweep the sharded parallel engine over the -scale/-huge tiers; records a 'parallel' report section")
		arena    = flag.Bool("arena", true, "reuse per-worker memory arenas and the shared deployment cache across runs (-arena=false measures the pre-arena path; results are identical)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
		audit    = flag.Bool("audit", false, "run every scenario under the cross-layer invariant auditor (results unchanged; violations abort)")
	)
	ablations := flag.Bool("ablations", false, "also run the DESIGN.md ablation and robustness studies")
	flag.Var(&figs, "fig", "figure to regenerate (2-9 or 'overhead'); repeatable, default all")
	flag.Parse()

	o := essat.QuickOptions()
	if *paper {
		o = essat.PaperOptions()
	}
	if *duration > 0 {
		o.Duration = *duration
	}
	if *seeds > 0 {
		o.Seeds = *seeds
	}
	o.Parallelism = *parallel
	o.Topology = *topo
	o.Channel = *channel
	o.RadioProfile = *radioPr
	o.BaseSeed = *seed
	o.Audit = *audit
	o.DisableArena = !*arena

	if len(figs) == 0 {
		figs = figList{"2", "3", "4", "5", "6", "7", "8", "9", "overhead"}
	}
	if *ablations {
		figs = append(figs, "ablation-guard", "ablation-buffering", "ablation-tree",
			"robustness-loss", "robustness-failures", "lifetime")
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	report := benchReport{
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: o.EffectiveParallelism(),
		DurationSec: o.Duration.Seconds(),
		Seeds:       o.Seeds,
		Nodes:       o.Nodes,
		Arena:       *arena,
	}

	start := time.Now()
	for _, f := range figs {
		var fig *essat.Figure
		var err error
		essat.ResetRunCounters()
		m0, b0 := memCounters()
		figStart := time.Now()
		// Accept both the short form ("3") and the catalog ID ("fig3")
		// printed by essat-sim -list.
		switch strings.TrimPrefix(f, "fig") {
		case "2":
			fig, err = essat.Fig2Deadline(o, nil)
		case "3":
			fig, err = essat.Fig3DutyVsRate(o, nil)
		case "4":
			fig, err = essat.Fig4DutyVsQueries(o, nil)
		case "5":
			fig, err = essat.Fig5DutyByRank(o)
		case "6":
			fig, err = essat.Fig6LatencyVsRate(o, nil)
		case "7":
			fig, err = essat.Fig7LatencyVsQueries(o, nil)
		case "8":
			fig, _, err = essat.Fig8SleepHistogram(o)
		case "9":
			fig, err = essat.Fig9BreakEven(o, nil)
		case "overhead":
			fig, err = essat.OverheadPhaseUpdates(o, nil)
		case "ablation-guard":
			fig, err = essat.AblationBreakEvenGuard(o)
		case "ablation-buffering":
			fig, err = essat.AblationBuffering(o)
		case "ablation-tree":
			fig, err = essat.AblationTreeConstruction(o)
		case "robustness-loss":
			fig, err = essat.RobustnessLoss(o, nil)
		case "robustness-failures":
			fig, err = essat.RobustnessFailures(o, nil)
		case "lifetime":
			fig, err = essat.Lifetime(o, 0)
		default:
			err = fmt.Errorf("unknown figure %q", f)
		}
		if err != nil {
			fatal(err)
		}
		fb := throughput(fig.ID, time.Since(figStart))
		m1, b1 := memCounters()
		if fb.Runs > 0 {
			fb.AllocsPerRun = float64(m1-m0) / float64(fb.Runs)
			fb.BytesPerRun = float64(b1-b0) / float64(fb.Runs)
		}
		report.Figures = append(report.Figures, fb)
		essat.PrintFigure(os.Stdout, fig)
		fmt.Println()
	}
	wall := time.Since(start)
	fmt.Printf("total wall time: %v\n", wall.Round(time.Second))

	if *scale != "" {
		sb, err := runScale(*scale, *arena, *sweep)
		if err != nil {
			fatal(err)
		}
		report.Scale = sb
		fmt.Printf("scale tier (%s): %d nodes, build %.2fs, run %.2fs, %.0f events/sec, %.0f allocs/run over %d sweep runs\n",
			sb.Scenario, sb.Nodes, sb.BuildSeconds, sb.RunSeconds, sb.EventsPerSec, sb.AllocsPerRun, sb.SweepRuns)
	}
	if *huge != "" {
		sb, err := runScale(*huge, *arena, *sweep)
		if err != nil {
			fatal(err)
		}
		report.Huge = sb
		fmt.Printf("huge tier (%s): %d nodes, build %.2fs, run %.2fs, %.0f events/sec, %.0f allocs/run over %d sweep runs\n",
			sb.Scenario, sb.Nodes, sb.BuildSeconds, sb.RunSeconds, sb.EventsPerSec, sb.AllocsPerRun, sb.SweepRuns)
	}

	if *shards != "" {
		counts, err := parseShardCounts(*shards)
		if err != nil {
			fatal(err)
		}
		tiers := []string{}
		if *scale != "" {
			tiers = append(tiers, *scale)
		}
		if *huge != "" {
			tiers = append(tiers, *huge)
		}
		if len(tiers) == 0 {
			fatal(fmt.Errorf("-shards needs at least one tier via -scale/-huge"))
		}
		for _, path := range tiers {
			pt, err := runParallelTier(path, counts)
			if err != nil {
				fatal(err)
			}
			report.Parallel = append(report.Parallel, *pt)
			for _, p := range pt.Points {
				fmt.Printf("parallel tier (%s) shards=%d: run %.2fs, %.0f events/sec, speedup %.2fx (on %d CPUs)\n",
					path, p.Shards, p.RunSeconds, p.EventsPerSec, p.Speedup, runtime.NumCPU())
			}
		}
	}

	if *outJSON != "" {
		report.Total = figBench{ID: "total", WallSeconds: wall.Seconds()}
		var totalAllocs, totalBytes float64
		for _, fb := range report.Figures {
			report.Total.Runs += fb.Runs
			report.Total.Events += fb.Events
			report.Total.SimSeconds += fb.SimSeconds
			totalAllocs += fb.AllocsPerRun * float64(fb.Runs)
			totalBytes += fb.BytesPerRun * float64(fb.Runs)
		}
		report.Total.EventsPerSec = float64(report.Total.Events) / wall.Seconds()
		report.Total.SimSecPerSec = report.Total.SimSeconds / wall.Seconds()
		if report.Total.Runs > 0 {
			report.Total.AllocsPerRun = totalAllocs / float64(report.Total.Runs)
			report.Total.BytesPerRun = totalBytes / float64(report.Total.Runs)
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*outJSON, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("throughput report written to %s\n", *outJSON)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func fatal(err error) {
	// os.Exit skips deferred handlers; flush any active CPU profile so a
	// late error does not truncate -cpuprofile output (no-op otherwise).
	pprof.StopCPUProfile()
	fmt.Fprintln(os.Stderr, "essat-bench:", err)
	os.Exit(1)
}

// runScale executes a scale-tier scenario once, timing the build stage
// (topology, tree, per-node stacks) separately from the event-loop
// drain — the same workload as the repo's BenchmarkLargeRun /
// BenchmarkHugeRun — then repeats the identical spec sweepRuns times,
// recording steady-state heap allocations per run. With useArena the
// sweep reuses one arena (the first, timed run warms it), which is the
// repeated-spec sweep the arenas were built for; without, every run
// allocates from scratch.
func runScale(path string, useArena bool, sweepRuns int) (*scaleBench, error) {
	spec, err := essat.LoadSpec(path)
	if err != nil {
		return nil, err
	}
	sc, err := spec.Scenario()
	if err != nil {
		return nil, err
	}
	var a *essat.Arena
	if useArena {
		a = essat.NewArenaWithCache(essat.NewDeployCache(0))
	}
	buildStart := time.Now()
	s, err := essat.BuildWith(a, sc)
	if err != nil {
		return nil, err
	}
	buildWall := time.Since(buildStart)
	runStart := time.Now()
	s.Simulate()
	res := s.Collect()
	runWall := time.Since(runStart)
	sb := &scaleBench{
		Scenario:     path,
		Nodes:        sc.Topology.NumNodes,
		TreeSize:     res.TreeSize,
		BuildSeconds: buildWall.Seconds(),
		RunSeconds:   runWall.Seconds(),
		Events:       res.Events,
		SimSeconds:   sc.Duration.Seconds(),
		EventsPerSec: float64(res.Events) / runWall.Seconds(),
		SimSecPerSec: sc.Duration.Seconds() / runWall.Seconds(),
	}
	if sweepRuns > 0 {
		m0, b0 := memCounters()
		for i := 0; i < sweepRuns; i++ {
			if _, err := essat.RunWith(a, sc); err != nil {
				return nil, err
			}
		}
		m1, b1 := memCounters()
		sb.SweepRuns = sweepRuns
		sb.AllocsPerRun = float64(m1-m0) / float64(sweepRuns)
		sb.BytesPerRun = float64(b1-b0) / float64(sweepRuns)
	}
	return sb, nil
}

// parseShardCounts decodes the -shards sweep list.
func parseShardCounts(s string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		var k int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &k); err != nil || k < 1 || k > 64 {
			return nil, fmt.Errorf("bad shard count %q (want integers in 1..64)", f)
		}
		counts = append(counts, k)
	}
	return counts, nil
}

// runParallelTier runs one scale-tier scenario once per shard count,
// timing the event-loop drain. Speedup is wall-time relative to the
// sweep's own shards=1 run; without a shards=1 point it is omitted.
// Runs build on the bare heap (no arena) — the sweep measures the
// conservative window engine, not the allocator.
func runParallelTier(path string, counts []int) (*parallelTier, error) {
	tier := &parallelTier{Scenario: path}
	var base float64
	for _, k := range counts {
		spec, err := essat.LoadSpec(path)
		if err != nil {
			return nil, err
		}
		spec.Parallelism = &essat.ParallelismSpec{Shards: k}
		sc, err := spec.Scenario()
		if err != nil {
			return nil, err
		}
		s, err := essat.Build(sc)
		if err != nil {
			return nil, err
		}
		tier.Nodes = sc.Topology.NumNodes
		runStart := time.Now()
		s.Simulate()
		res := s.Collect()
		runWall := time.Since(runStart).Seconds()
		pt := parallelPoint{
			Shards:       k,
			LookaheadUs:  float64(s.ShardLookahead().Nanoseconds()) / 1e3,
			RunSeconds:   runWall,
			Events:       res.Events,
			EventsPerSec: float64(res.Events) / runWall,
		}
		if k == 1 && base == 0 {
			base = runWall
		}
		if base > 0 {
			pt.Speedup = base / runWall
		}
		tier.Points = append(tier.Points, pt)
	}
	return tier, nil
}

// throughput snapshots the run counters accumulated since the last reset
// into one figure's bench record.
func throughput(id string, wall time.Duration) figBench {
	runs, events, simSec := essat.RunCounters()
	return figBench{
		ID:           id,
		WallSeconds:  wall.Seconds(),
		Runs:         runs,
		Events:       events,
		SimSeconds:   simSec,
		EventsPerSec: float64(events) / wall.Seconds(),
		SimSecPerSec: simSec / wall.Seconds(),
	}
}
