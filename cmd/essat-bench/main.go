// Command essat-bench regenerates the data behind every figure of the
// paper's evaluation (Figures 2-9 plus the §4.2.3 overhead measurement)
// and prints each as an aligned text table.
//
// Examples:
//
//	essat-bench                    # every figure, quick setting
//	essat-bench -paper             # the paper's full 200s × 5-seed setting
//	essat-bench -fig 3 -fig 6      # just Figures 3 and 6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/essat/essat"
)

type figList []string

func (f *figList) String() string { return strings.Join(*f, ",") }

func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var figs figList
	var (
		paper    = flag.Bool("paper", false, "use the paper's full setting (200s runs, 5 seeds) instead of the quick one")
		duration = flag.Duration("duration", 0, "override run duration")
		seeds    = flag.Int("seeds", 0, "override seeds per point")
	)
	ablations := flag.Bool("ablations", false, "also run the DESIGN.md ablation and robustness studies")
	flag.Var(&figs, "fig", "figure to regenerate (2-9 or 'overhead'); repeatable, default all")
	flag.Parse()

	o := essat.QuickOptions()
	if *paper {
		o = essat.PaperOptions()
	}
	if *duration > 0 {
		o.Duration = *duration
	}
	if *seeds > 0 {
		o.Seeds = *seeds
	}

	if len(figs) == 0 {
		figs = figList{"2", "3", "4", "5", "6", "7", "8", "9", "overhead"}
	}
	if *ablations {
		figs = append(figs, "ablation-guard", "ablation-buffering", "ablation-tree",
			"robustness-loss", "robustness-failures", "lifetime")
	}

	start := time.Now()
	for _, f := range figs {
		var fig *essat.Figure
		var err error
		switch f {
		case "2":
			fig, err = essat.Fig2Deadline(o, nil)
		case "3":
			fig, err = essat.Fig3DutyVsRate(o, nil)
		case "4":
			fig, err = essat.Fig4DutyVsQueries(o, nil)
		case "5":
			fig, err = essat.Fig5DutyByRank(o)
		case "6":
			fig, err = essat.Fig6LatencyVsRate(o, nil)
		case "7":
			fig, err = essat.Fig7LatencyVsQueries(o, nil)
		case "8":
			fig, _, err = essat.Fig8SleepHistogram(o)
		case "9":
			fig, err = essat.Fig9BreakEven(o, nil)
		case "overhead":
			fig, err = essat.OverheadPhaseUpdates(o, nil)
		case "ablation-guard":
			fig, err = essat.AblationBreakEvenGuard(o)
		case "ablation-buffering":
			fig, err = essat.AblationBuffering(o)
		case "ablation-tree":
			fig, err = essat.AblationTreeConstruction(o)
		case "robustness-loss":
			fig, err = essat.RobustnessLoss(o, nil)
		case "robustness-failures":
			fig, err = essat.RobustnessFailures(o, nil)
		case "lifetime":
			fig, err = essat.Lifetime(o, 0)
		default:
			err = fmt.Errorf("unknown figure %q", f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "essat-bench:", err)
			os.Exit(1)
		}
		essat.PrintFigure(os.Stdout, fig)
		fmt.Println()
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Second))
}
